// Property tests pinning FillN's contract: bit-for-bit identical state
// to the equivalent sequence of scalar fills, for every edge the scalar
// path handles — NaN, ±Inf, exact bin edges, out-of-range traffic,
// zero and negative weights. Bit-exactness (not approximate equality)
// is what lets bulk-filling and scalar-filling workers merge without
// last-ulp divergence, so the comparison is on gob-encoded state, which
// preserves float bit patterns and treats NaN as equal to itself.
package aida

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"
)

func gobBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fillSamples yields n coordinates for an axis [lo,hi): every edge the
// binning logic branches on, then random traffic straddling the range.
func fillSamples(n int, lo, hi float64, rng *rand.Rand) []float64 {
	xs := []float64{
		lo, hi, math.Nextafter(hi, lo), lo - 1, hi + 1,
		math.NaN(), math.Inf(1), math.Inf(-1), (lo + hi) / 2, -0.0,
	}
	for len(xs) < n {
		// ~20% under/overflow.
		xs = append(xs, lo+(hi-lo)*(1.4*rng.Float64()-0.2))
	}
	return xs
}

func fillWeights(n int, rng *rand.Rand) []float64 {
	ws := make([]float64, n)
	for i := range ws {
		switch i % 7 {
		case 0:
			ws[i] = 0
		case 1:
			ws[i] = -1.5
		default:
			ws[i] = 3 * rng.Float64()
		}
	}
	return ws
}

func TestFillNMatchesScalarHistogram1D(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := fillSamples(500, -5, 5, rng)
	ws := fillWeights(len(xs), rng)

	bulk := NewHistogram1D("h", "", 64, -5, 5)
	scalar := NewHistogram1D("h", "", 64, -5, 5)
	bulk.FillN(xs, ws)
	for i := range xs {
		scalar.FillW(xs[i], ws[i])
	}
	if !bytes.Equal(gobBytes(t, bulk.State()), gobBytes(t, scalar.State())) {
		t.Fatal("weighted FillN state diverges from scalar FillW sequence")
	}

	bulk = NewHistogram1D("h", "", 64, -5, 5)
	scalar = NewHistogram1D("h", "", 64, -5, 5)
	bulk.FillN(xs, nil)
	for _, x := range xs {
		scalar.Fill(x)
	}
	if !bytes.Equal(gobBytes(t, bulk.State()), gobBytes(t, scalar.State())) {
		t.Fatal("unweighted FillN state diverges from scalar Fill sequence")
	}
}

func TestFillNMatchesScalarHistogram2D(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := fillSamples(400, 0, 10, rng)
	ys := fillSamples(len(xs), -1, 1, rng)
	ws := fillWeights(len(xs), rng)

	bulk := NewHistogram2D("h2", "", 16, 0, 10, 12, -1, 1)
	scalar := NewHistogram2D("h2", "", 16, 0, 10, 12, -1, 1)
	bulk.FillN(xs, ys, ws)
	for i := range xs {
		scalar.FillW(xs[i], ys[i], ws[i])
	}
	if !bytes.Equal(gobBytes(t, bulk.State()), gobBytes(t, scalar.State())) {
		t.Fatal("weighted FillN state diverges from scalar FillW sequence")
	}

	bulk = NewHistogram2D("h2", "", 16, 0, 10, 12, -1, 1)
	scalar = NewHistogram2D("h2", "", 16, 0, 10, 12, -1, 1)
	bulk.FillN(xs, ys, nil)
	for i := range xs {
		scalar.Fill(xs[i], ys[i])
	}
	if !bytes.Equal(gobBytes(t, bulk.State()), gobBytes(t, scalar.State())) {
		t.Fatal("unweighted FillN state diverges from scalar Fill sequence")
	}
}

func TestFillNMatchesScalarProfile1D(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	xs := fillSamples(400, 0, 100, rng)
	ys := fillSamples(len(xs), -50, 50, rng)
	ws := fillWeights(len(xs), rng)

	bulk := NewProfile1D("p", "", 25, 0, 100)
	scalar := NewProfile1D("p", "", 25, 0, 100)
	bulk.FillN(xs, ys, ws)
	for i := range xs {
		scalar.FillW(xs[i], ys[i], ws[i])
	}
	if !bytes.Equal(gobBytes(t, bulk.State()), gobBytes(t, scalar.State())) {
		t.Fatal("weighted FillN state diverges from scalar FillW sequence")
	}

	bulk = NewProfile1D("p", "", 25, 0, 100)
	scalar = NewProfile1D("p", "", 25, 0, 100)
	bulk.FillN(xs, ys, nil)
	for i := range xs {
		scalar.Fill(xs[i], ys[i])
	}
	if !bytes.Equal(gobBytes(t, bulk.State()), gobBytes(t, scalar.State())) {
		t.Fatal("unweighted FillN state diverges from scalar Fill sequence")
	}
}

// TestFillNSplitInvariance: filling one big batch equals filling the
// same samples as many small batches — FillN holds no cross-batch
// state.
func TestFillNSplitInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	xs := fillSamples(600, -5, 5, rng)
	ws := fillWeights(len(xs), rng)

	whole := NewHistogram1D("h", "", 40, -5, 5)
	whole.FillN(xs, ws)
	split := NewHistogram1D("h", "", 40, -5, 5)
	for i := 0; i < len(xs); i += 37 {
		end := i + 37
		if end > len(xs) {
			end = len(xs)
		}
		split.FillN(xs[i:end], ws[i:end])
	}
	if !bytes.Equal(gobBytes(t, whole.State()), gobBytes(t, split.State())) {
		t.Fatal("batch splitting changed the filled state")
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic on slice length mismatch", what)
		}
	}()
	fn()
}

func TestFillNLengthMismatchPanics(t *testing.T) {
	xs := []float64{1, 2, 3}
	short := []float64{1}
	mustPanic(t, "H1D ws", func() { NewHistogram1D("h", "", 4, 0, 1).FillN(xs, short) })
	mustPanic(t, "H2D ys", func() { NewHistogram2D("h", "", 4, 0, 1, 4, 0, 1).FillN(xs, short, nil) })
	mustPanic(t, "H2D ws", func() { NewHistogram2D("h", "", 4, 0, 1, 4, 0, 1).FillN(xs, xs, short) })
	mustPanic(t, "P1D ys", func() { NewProfile1D("p", "", 4, 0, 1).FillN(xs, short, nil) })
	mustPanic(t, "P1D ws", func() { NewProfile1D("p", "", 4, 0, 1).FillN(xs, xs, short) })
}
