package aida

import (
	"encoding/xml"
	"fmt"
	"io"
	"math"
	"strconv"
)

// AIDA-XML interchange (the format JAS3/AIDA tools exchange, §3.7).
//
// The writer emits one element per object carrying its tree path; the
// reader reconstructs a Tree. Converted clouds serialize as histograms
// (annotated "aida.cloud=converted"), matching AIDA's own lossy cloud
// semantics; everything else round-trips exactly.

type xmlDoc struct {
	XMLName xml.Name `xml:"aida"`
	Version string   `xml:"version,attr"`
	H1      []xmlH1D `xml:"histogram1d"`
	H2      []xmlH2D `xml:"histogram2d"`
	P1      []xmlP1D `xml:"profile1d"`
	C1      []xmlC1D `xml:"cloud1d"`
	DPS     []xmlDPS `xml:"dataPointSet"`
}

type xmlAnn struct {
	Items []xmlAnnItem `xml:"item"`
}

type xmlAnnItem struct {
	Key   string `xml:"key,attr"`
	Value string `xml:"value,attr"`
}

func annToXML(kvs []KV) *xmlAnn {
	if len(kvs) == 0 {
		return nil
	}
	a := &xmlAnn{}
	for _, kv := range kvs {
		a.Items = append(a.Items, xmlAnnItem{kv.Key, kv.Value})
	}
	return a
}

func annFromXML(a *xmlAnn) []KV {
	if a == nil {
		return nil
	}
	var kvs []KV
	for _, it := range a.Items {
		kvs = append(kvs, KV{it.Key, it.Value})
	}
	return kvs
}

type xmlAxis struct {
	Direction string  `xml:"direction,attr"`
	Min       float64 `xml:"min,attr"`
	Max       float64 `xml:"max,attr"`
	NumBins   int     `xml:"numberOfBins,attr"`
}

type xmlBin1D struct {
	BinNum       string  `xml:"binNum,attr"`
	Entries      int64   `xml:"entries,attr"`
	Height       float64 `xml:"height,attr"`
	Error        float64 `xml:"error,attr"`
	WeightedMean float64 `xml:"weightedMeanX,attr"`
}

type xmlH1D struct {
	Name   string     `xml:"name,attr"`
	Path   string     `xml:"path,attr"`
	Ann    *xmlAnn    `xml:"annotation"`
	Axis   xmlAxis    `xml:"axis"`
	SumW   float64    `xml:"sumW,attr"`
	SumWX  float64    `xml:"sumWX,attr"`
	SumWX2 float64    `xml:"sumWX2,attr"`
	Bins   []xmlBin1D `xml:"data1d>bin1d"`
}

func binNumAttr(i, n int) string {
	switch i {
	case 0:
		return "UNDERFLOW"
	case n + 1:
		return "OVERFLOW"
	default:
		return strconv.Itoa(i - 1)
	}
}

func binNumParse(s string, n int) (int, error) {
	switch s {
	case "UNDERFLOW":
		return 0, nil
	case "OVERFLOW":
		return n + 1, nil
	default:
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 || v >= n {
			return 0, fmt.Errorf("aida: bad binNum %q", s)
		}
		return v + 1, nil
	}
}

func h1dToXML(path string, s *H1DState) xmlH1D {
	x := xmlH1D{
		Name: s.Name, Path: path, Ann: annToXML(s.Ann),
		Axis: xmlAxis{"x", s.Lo, s.Hi, s.Bins},
		SumW: s.SumW, SumWX: s.SumWX, SumWX2: s.SumWX2,
	}
	for i, b := range s.Data {
		if b.Entries == 0 && b.SumW == 0 {
			continue // sparse: skip empty bins like AIDA does
		}
		x.Bins = append(x.Bins, xmlBin1D{
			BinNum: binNumAttr(i, s.Bins), Entries: b.Entries,
			Height: b.SumW, Error: math.Sqrt(b.SumW2), WeightedMean: b.SumWX,
		})
	}
	return x
}

func h1dFromXML(x xmlH1D) (*H1DState, error) {
	s := &H1DState{
		Name: x.Name, Ann: annFromXML(x.Ann),
		Bins: x.Axis.NumBins, Lo: x.Axis.Min, Hi: x.Axis.Max,
		SumW: x.SumW, SumWX: x.SumWX, SumWX2: x.SumWX2,
	}
	if s.Bins <= 0 {
		return nil, fmt.Errorf("aida: histogram1d %q has no binning", x.Name)
	}
	s.Data = make([]BinState, s.Bins+2)
	for _, b := range x.Bins {
		slot, err := binNumParse(b.BinNum, s.Bins)
		if err != nil {
			return nil, err
		}
		s.Data[slot] = BinState{b.Entries, b.Height, b.Error * b.Error, b.WeightedMean}
	}
	return s, nil
}

type xmlBin2D struct {
	BinNumX       string  `xml:"binNumX,attr"`
	BinNumY       string  `xml:"binNumY,attr"`
	Entries       int64   `xml:"entries,attr"`
	Height        float64 `xml:"height,attr"`
	Error         float64 `xml:"error,attr"`
	WeightedMeanX float64 `xml:"weightedMeanX,attr"`
	WeightedMeanY float64 `xml:"weightedMeanY,attr"`
}

type xmlH2D struct {
	Name   string     `xml:"name,attr"`
	Path   string     `xml:"path,attr"`
	Ann    *xmlAnn    `xml:"annotation"`
	Axes   []xmlAxis  `xml:"axis"`
	SumW   float64    `xml:"sumW,attr"`
	SumWX  float64    `xml:"sumWX,attr"`
	SumWY  float64    `xml:"sumWY,attr"`
	SumWX2 float64    `xml:"sumWX2,attr"`
	SumWY2 float64    `xml:"sumWY2,attr"`
	Bins   []xmlBin2D `xml:"data2d>bin2d"`
}

func h2dToXML(path string, s *H2DState) xmlH2D {
	x := xmlH2D{
		Name: s.Name, Path: path, Ann: annToXML(s.Ann),
		Axes: []xmlAxis{{"x", s.XLo, s.XHi, s.NX}, {"y", s.YLo, s.YHi, s.NY}},
		SumW: s.SumW, SumWX: s.SumWX, SumWY: s.SumWY, SumWX2: s.SumWX2, SumWY2: s.SumWY2,
	}
	for ix := 0; ix < s.NX+2; ix++ {
		for iy := 0; iy < s.NY+2; iy++ {
			c := s.Cells[ix*(s.NY+2)+iy]
			if c.Entries == 0 && c.SumW == 0 {
				continue
			}
			x.Bins = append(x.Bins, xmlBin2D{
				BinNumX: binNumAttr(ix, s.NX), BinNumY: binNumAttr(iy, s.NY),
				Entries: c.Entries, Height: c.SumW, Error: math.Sqrt(c.SumW2),
				WeightedMeanX: c.SumWX, WeightedMeanY: c.SumWY,
			})
		}
	}
	return x
}

func h2dFromXML(x xmlH2D) (*H2DState, error) {
	s := &H2DState{Name: x.Name, Ann: annFromXML(x.Ann), SumW: x.SumW,
		SumWX: x.SumWX, SumWY: x.SumWY, SumWX2: x.SumWX2, SumWY2: x.SumWY2}
	for _, ax := range x.Axes {
		switch ax.Direction {
		case "x":
			s.NX, s.XLo, s.XHi = ax.NumBins, ax.Min, ax.Max
		case "y":
			s.NY, s.YLo, s.YHi = ax.NumBins, ax.Min, ax.Max
		}
	}
	if s.NX <= 0 || s.NY <= 0 {
		return nil, fmt.Errorf("aida: histogram2d %q lacks axes", x.Name)
	}
	s.Cells = make([]Bin2State, (s.NX+2)*(s.NY+2))
	for _, b := range x.Bins {
		ix, err := binNumParse(b.BinNumX, s.NX)
		if err != nil {
			return nil, err
		}
		iy, err := binNumParse(b.BinNumY, s.NY)
		if err != nil {
			return nil, err
		}
		s.Cells[ix*(s.NY+2)+iy] = Bin2State{b.Entries, b.Height, b.Error * b.Error, b.WeightedMeanX, b.WeightedMeanY}
	}
	return s, nil
}

type xmlProfBin struct {
	BinNum  string  `xml:"binNum,attr"`
	Entries int64   `xml:"entries,attr"`
	SumW    float64 `xml:"sumW,attr"`
	SumWY   float64 `xml:"sumWY,attr"`
	SumWY2  float64 `xml:"sumWY2,attr"`
}

type xmlP1D struct {
	Name string       `xml:"name,attr"`
	Path string       `xml:"path,attr"`
	Ann  *xmlAnn      `xml:"annotation"`
	Axis xmlAxis      `xml:"axis"`
	Bins []xmlProfBin `xml:"dataProfile>binProfile"`
}

func p1dToXML(path string, s *P1DState) xmlP1D {
	x := xmlP1D{Name: s.Name, Path: path, Ann: annToXML(s.Ann), Axis: xmlAxis{"x", s.Lo, s.Hi, s.Bins}}
	for i, b := range s.Data {
		if b.Entries == 0 && b.SumW == 0 {
			continue
		}
		x.Bins = append(x.Bins, xmlProfBin{binNumAttr(i, s.Bins), b.Entries, b.SumW, b.SumWY, b.SumWY2})
	}
	return x
}

func p1dFromXML(x xmlP1D) (*P1DState, error) {
	s := &P1DState{Name: x.Name, Ann: annFromXML(x.Ann), Bins: x.Axis.NumBins, Lo: x.Axis.Min, Hi: x.Axis.Max}
	if s.Bins <= 0 {
		return nil, fmt.Errorf("aida: profile1d %q has no binning", x.Name)
	}
	s.Data = make([]ProfBinState, s.Bins+2)
	for _, b := range x.Bins {
		slot, err := binNumParse(b.BinNum, s.Bins)
		if err != nil {
			return nil, err
		}
		s.Data[slot] = ProfBinState{b.Entries, b.SumW, b.SumWY, b.SumWY2}
	}
	return s, nil
}

type xmlEntry1D struct {
	Value  float64 `xml:"value,attr"`
	Weight float64 `xml:"weight,attr"`
}

type xmlC1D struct {
	Name    string       `xml:"name,attr"`
	Path    string       `xml:"path,attr"`
	Ann     *xmlAnn      `xml:"annotation"`
	Limit   int          `xml:"maxEntries,attr"`
	Entries []xmlEntry1D `xml:"entries1d>entry1d"`
}

type xmlMeasurement struct {
	Value      float64 `xml:"value,attr"`
	ErrorPlus  float64 `xml:"errorPlus,attr"`
	ErrorMinus float64 `xml:"errorMinus,attr"`
}

type xmlDataPoint struct {
	Measurements []xmlMeasurement `xml:"measurement"`
}

type xmlDPS struct {
	Name   string         `xml:"name,attr"`
	Path   string         `xml:"path,attr"`
	Ann    *xmlAnn        `xml:"annotation"`
	Dim    int            `xml:"dimension,attr"`
	Points []xmlDataPoint `xml:"dataPoint"`
}

// WriteXML serializes the tree in AIDA-XML form.
func WriteXML(w io.Writer, t *Tree) error {
	st, err := t.State()
	if err != nil {
		return err
	}
	doc := xmlDoc{Version: "3.3"}
	for _, e := range st.Entries {
		segs := splitPath(e.Path)
		dirPath := JoinPath(segs[:len(segs)-1]...)
		switch {
		case e.Object.H1 != nil:
			doc.H1 = append(doc.H1, h1dToXML(dirPath, e.Object.H1))
		case e.Object.H2 != nil:
			doc.H2 = append(doc.H2, h2dToXML(dirPath, e.Object.H2))
		case e.Object.P1 != nil:
			doc.P1 = append(doc.P1, p1dToXML(dirPath, e.Object.P1))
		case e.Object.C1 != nil:
			s := e.Object.C1
			if s.Converted != nil {
				h := h1dToXML(dirPath, s.Converted)
				h.Ann = annToXML(append(append([]KV{}, s.Ann...), KV{"aida.cloud", "converted"}))
				doc.H1 = append(doc.H1, h)
				break
			}
			x := xmlC1D{Name: s.Name, Path: dirPath, Ann: annToXML(s.Ann), Limit: s.Limit}
			for i := range s.Xs {
				x.Entries = append(x.Entries, xmlEntry1D{s.Xs[i], s.Ws[i]})
			}
			doc.C1 = append(doc.C1, x)
		case e.Object.C2 != nil:
			s := e.Object.C2
			h2 := s.Converted
			if h2 == nil {
				// Serialize unconverted 2D clouds as converted histograms:
				// the AIDA XML schema we implement has no entries2d block.
				c, err := e.Object.Restore()
				if err != nil {
					return err
				}
				h2 = c.(*Cloud2D).Convert(cloudAutoBins, cloudAutoBins).State()
			}
			x := h2dToXML(dirPath, h2)
			x.Name = s.Name
			x.Ann = annToXML(append(append([]KV{}, s.Ann...), KV{"aida.cloud", "converted"}))
			doc.H2 = append(doc.H2, x)
		case e.Object.DP != nil:
			s := e.Object.DP
			x := xmlDPS{Name: s.Name, Path: dirPath, Ann: annToXML(s.Ann), Dim: s.Dim}
			for _, p := range s.Points {
				var xp xmlDataPoint
				for _, m := range p.Coords {
					xp.Measurements = append(xp.Measurements, xmlMeasurement{m.Value, m.ErrorPlus, m.ErrorMinus})
				}
				x.Points = append(x.Points, xp)
			}
			doc.DPS = append(doc.DPS, x)
		}
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n")
	return err
}

// ReadXML parses an AIDA-XML document into a Tree.
func ReadXML(r io.Reader) (*Tree, error) {
	var doc xmlDoc
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("aida: parsing xml: %w", err)
	}
	t := NewTree()
	put := func(path string, obj Object, err error) error {
		if err != nil {
			return err
		}
		return t.Put(path, obj)
	}
	for _, x := range doc.H1 {
		s, err := h1dFromXML(x)
		if err != nil {
			return nil, err
		}
		h, err := s.Restore()
		if err2 := put(x.Path, h, err); err2 != nil {
			return nil, err2
		}
	}
	for _, x := range doc.H2 {
		s, err := h2dFromXML(x)
		if err != nil {
			return nil, err
		}
		h, err := s.Restore()
		if err2 := put(x.Path, h, err); err2 != nil {
			return nil, err2
		}
	}
	for _, x := range doc.P1 {
		s, err := p1dFromXML(x)
		if err != nil {
			return nil, err
		}
		p, err := s.Restore()
		if err2 := put(x.Path, p, err); err2 != nil {
			return nil, err2
		}
	}
	for _, x := range doc.C1 {
		c := NewCloud1DLimit(x.Name, "", x.Limit)
		c.ann = annFromState(annFromXML(x.Ann))
		for _, e := range x.Entries {
			c.FillW(e.Value, e.Weight)
		}
		if err := t.Put(x.Path, c); err != nil {
			return nil, err
		}
	}
	for _, x := range doc.DPS {
		d := NewDataPointSet(x.Name, "", x.Dim)
		d.ann = annFromState(annFromXML(x.Ann))
		for _, p := range x.Points {
			dp := DataPoint{}
			for _, m := range p.Measurements {
				dp.Coords = append(dp.Coords, Measurement{m.Value, m.ErrorPlus, m.ErrorMinus})
			}
			if err := d.AppendPoint(dp); err != nil {
				return nil, err
			}
		}
		if err := t.Put(x.Path, d); err != nil {
			return nil, err
		}
	}
	return t, nil
}
