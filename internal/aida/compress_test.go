package aida

import (
	"testing"
)

func TestCompressionPolicySizeThreshold(t *testing.T) {
	p := NewCompressionPolicy()
	if p.shouldCompress(100) {
		t.Fatal("compressed a frame below the size floor")
	}
	if !p.shouldCompress(4096) {
		t.Fatal("skipped a large frame with no ratio evidence")
	}
	if c, s := p.Stats(); c != 1 || s != 1 {
		t.Fatalf("stats = %d compressed / %d skipped, want 1/1", c, s)
	}
}

func TestCompressionPolicyRatioSkipAndProbe(t *testing.T) {
	p := NewCompressionPolicy()
	// Teach it the stream barely shrinks.
	p.observe(1000, 980)
	skips := 0
	for i := 0; i < compressProbeEvery; i++ {
		if p.shouldCompress(4096) {
			t.Fatalf("compressed at skip %d despite ratio %.2f", i, p.Ratio())
		}
		skips++
	}
	// The probe: one real compression to refresh the estimate.
	if !p.shouldCompress(4096) {
		t.Fatalf("never probed after %d ratio skips", skips)
	}
	// A good probe outcome flips the policy back to compressing.
	p.observe(4096, 1000)
	if r := p.Ratio(); r >= defaultCompressSkipRatio {
		t.Fatalf("ratio after good probe = %.2f, want < %.2f", r, defaultCompressSkipRatio)
	}
	if !p.shouldCompress(4096) {
		t.Fatal("still skipping after the ratio recovered")
	}
}

func TestCompressionPolicyForce(t *testing.T) {
	p := NewCompressionPolicy()
	p.SetForce(true)
	p.observe(1000, 1000) // terrible ratio must not matter
	if !p.shouldCompress(10) {
		t.Fatal("force did not override size and ratio rules")
	}
	p.SetForce(false)
	if p.shouldCompress(10) {
		t.Fatal("force off did not restore adaptive rules")
	}
}

// bigDelta builds a delta whose plain frame comfortably exceeds the
// adaptive size floor and compresses well (uniform bin contents).
func bigDelta(t *testing.T) *DeltaState {
	t.Helper()
	tree := NewTree()
	h, err := tree.H1D("/a", "h", "", 400, 0, 400)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		h.Fill(float64(i))
	}
	d, err := tree.Delta()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func smallDelta(t *testing.T) *DeltaState {
	t.Helper()
	tree := NewTree()
	h, err := tree.H1D("/a", "h", "", 4, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.Fill(1)
	d, err := tree.Delta()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAdaptiveFrameChoicePerFrame(t *testing.T) {
	p := NewCompressionPolicy()

	small := smallDelta(t)
	small.SetCompressionPolicy(p)
	sb, err := small.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	if sb[0] != wireVersion {
		t.Fatalf("small frame version = %d, want plain %d", sb[0], wireVersion)
	}

	big := bigDelta(t)
	big.SetCompressionPolicy(p)
	bb, err := big.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	if bb[0] != wireVersionFlate {
		t.Fatalf("large frame version = %d, want flate %d", bb[0], wireVersionFlate)
	}
	if c, s := p.Stats(); c != 1 || s != 1 {
		t.Fatalf("policy stats = %d/%d, want 1 compressed 1 skipped", c, s)
	}

	// Both frame versions decode to the same content as a plain encode.
	for _, frame := range [][]byte{sb, bb} {
		var dec DeltaState
		if err := dec.GobDecode(frame); err != nil {
			t.Fatal(err)
		}
		if len(dec.Entries) != 1 {
			t.Fatalf("decoded %d entries, want 1", len(dec.Entries))
		}
	}

	// The forced override (SetWireCompression) wins over the policy.
	forced := smallDelta(t)
	forced.SetCompressionPolicy(p)
	forced.SetWireCompression(true)
	fb, err := forced.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	if fb[0] != wireVersionFlate {
		t.Fatalf("forced small frame version = %d, want flate %d", fb[0], wireVersionFlate)
	}
}
