// Buffer recycling for the wire codec, with two fixes over plain
// sync.Pool usage:
//
//  1. Size caps. A pooled buffer that once held a huge frame would pin
//     that memory for the pool's lifetime; putEncBuf and the frame
//     free list drop anything over maxPooledBuf instead of pooling it.
//  2. A deterministic free list for decoded poll frames. ObjectFrame
//     buffers decoded from the wire come from (and return to, via
//     Release) a bounded free list, so a client's warm poll decodes
//     every frame into recycled memory — zero per-frame heap
//     allocation in steady state. sync.Pool would box each slice
//     header on Put (one small allocation per release), which is
//     exactly the overhead the zero-copy poll path exists to remove.
package aida

import "sync"

// maxPooledBuf caps the capacity of any buffer returned to a pool or
// free list; larger one-off buffers (a giant baseline frame) go to the
// GC instead of pinning memory forever.
const maxPooledBuf = 1 << 20

// putEncBuf returns an encode scratch buffer to encPool, dropping
// oversized ones.
func putEncBuf(bp *[]byte) {
	if cap(*bp) > maxPooledBuf {
		return
	}
	*bp = (*bp)[:0]
	encPool.Put(bp)
}

// frameFreeList is a bounded LIFO of recycled frame buffers. A mutex
// plus slice beats sync.Pool here: Get/Put never allocate (no
// interface boxing of slice headers), so the steady-state decode path
// is genuinely allocation-free, and the bound is explicit.
type frameFreeList struct {
	mu   sync.Mutex
	free [][]byte
}

// maxFreeFrames bounds the list; beyond it buffers go to the GC.
const maxFreeFrames = 1024

func (l *frameFreeList) get(n int) []byte {
	l.mu.Lock()
	if last := len(l.free) - 1; last >= 0 {
		b := l.free[last]
		l.free[last] = nil
		l.free = l.free[:last]
		l.mu.Unlock()
		if cap(b) >= n {
			return b[:n]
		}
		// Too small: drop it and size the replacement to this stream.
		return make([]byte, n)
	}
	l.mu.Unlock()
	return make([]byte, n)
}

func (l *frameFreeList) put(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	l.mu.Lock()
	if len(l.free) < maxFreeFrames {
		l.free = append(l.free, b[:0])
	}
	l.mu.Unlock()
}

var frameBufs frameFreeList

// framePooling selects the decode allocation strategy for ObjectFrame:
// recycled buffers with explicit Release (default), or a fresh heap
// allocation per frame — the retained ablation baseline (the A13
// "unpooled" rows). Set before traffic flows; it is a process-wide
// experiment switch, not a per-connection knob.
var framePooling = true

// SetFramePooling toggles pooled frame decode (the unpooled ablation
// baseline when off).
func SetFramePooling(on bool) { framePooling = on }

// FramePooling reports whether decoded frames use the recycled-buffer
// path.
func FramePooling() bool { return framePooling }

// Release returns the frame's buffer to the decode free list. Call it
// only on frames decoded from the wire (a poll reply's entries, after
// Restore) and never use the frame afterward; releasing a frame that
// shares the manager's encode cache would corrupt later polls, so
// in-process consumers must not call it. merge.PollReply.Release walks
// a reply for exactly this purpose.
func (f ObjectFrame) Release() {
	if !framePooling {
		return
	}
	frameBufs.put(f)
}
