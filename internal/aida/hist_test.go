package aida

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAxisMapping(t *testing.T) {
	ax := NewAxis(10, 0, 100)
	cases := []struct {
		x    float64
		want int
	}{
		{-0.001, Underflow}, {0, 0}, {9.999, 0}, {10, 1}, {55, 5}, {99.999, 9}, {100, Overflow}, {1e9, Overflow},
	}
	for _, c := range cases {
		if got := ax.CoordToIndex(c.x); got != c.want {
			t.Errorf("CoordToIndex(%v) = %d, want %d", c.x, got, c.want)
		}
	}
	if ax.BinWidth() != 10 {
		t.Errorf("BinWidth = %v", ax.BinWidth())
	}
	if ax.BinCenter(3) != 35 {
		t.Errorf("BinCenter(3) = %v", ax.BinCenter(3))
	}
}

func TestAxisInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid axis did not panic")
		}
	}()
	NewAxis(0, 0, 1)
}

func TestH1DFillAndStats(t *testing.T) {
	h := NewHistogram1D("m", "mass", 10, 0, 10)
	for _, x := range []float64{0.5, 1.5, 1.7, 5.5, 5.6, 5.7, 9.9} {
		h.Fill(x)
	}
	h.Fill(-5)  // underflow
	h.Fill(100) // overflow
	if h.Entries() != 7 {
		t.Fatalf("Entries = %d, want 7", h.Entries())
	}
	if h.AllEntries() != 9 {
		t.Fatalf("AllEntries = %d, want 9", h.AllEntries())
	}
	if h.BinEntries(1) != 2 {
		t.Fatalf("BinEntries(1) = %d, want 2", h.BinEntries(1))
	}
	if h.BinEntries(Underflow) != 1 || h.BinEntries(Overflow) != 1 {
		t.Fatal("flow bins wrong")
	}
	wantMean := (0.5 + 1.5 + 1.7 + 5.5 + 5.6 + 5.7 + 9.9) / 7
	if !almost(h.Mean(), wantMean, 1e-12) {
		t.Fatalf("Mean = %v, want %v", h.Mean(), wantMean)
	}
	if h.MaxBin() != 5 {
		t.Fatalf("MaxBin = %d, want 5", h.MaxBin())
	}
	if h.MaxBinHeight() != 3 {
		t.Fatalf("MaxBinHeight = %v, want 3", h.MaxBinHeight())
	}
}

func TestH1DWeights(t *testing.T) {
	h := NewHistogram1D("w", "", 4, 0, 4)
	h.FillW(1.5, 2.5)
	h.FillW(1.5, 1.5)
	if !almost(h.BinHeight(1), 4, 1e-12) {
		t.Fatalf("BinHeight = %v, want 4", h.BinHeight(1))
	}
	if !almost(h.BinError(1), math.Sqrt(2.5*2.5+1.5*1.5), 1e-12) {
		t.Fatalf("BinError = %v", h.BinError(1))
	}
	if !almost(h.BinMean(1), 1.5, 1e-12) {
		t.Fatalf("BinMean = %v", h.BinMean(1))
	}
}

func TestH1DNaNGoesToOverflow(t *testing.T) {
	h := NewHistogram1D("n", "", 4, 0, 4)
	h.Fill(math.NaN())
	if h.BinEntries(Overflow) != 1 {
		t.Fatal("NaN fill lost")
	}
	if h.Entries() != 0 {
		t.Fatal("NaN fill counted in range")
	}
}

func TestH1DScaleReset(t *testing.T) {
	h := NewHistogram1D("s", "", 4, 0, 4)
	h.Fill(1)
	h.Fill(2)
	h.Scale(3)
	if !almost(h.SumBinHeights(), 6, 1e-12) {
		t.Fatalf("scaled sum = %v", h.SumBinHeights())
	}
	if h.Entries() != 2 {
		t.Fatal("Scale changed entries")
	}
	h.Reset()
	if h.AllEntries() != 0 || h.SumBinHeights() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestH1DBadBinPanics(t *testing.T) {
	h := NewHistogram1D("b", "", 4, 0, 4)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range bin did not panic")
		}
	}()
	h.BinHeight(4)
}

func TestH1DMerge(t *testing.T) {
	a := NewHistogram1D("m", "", 10, 0, 10)
	b := NewHistogram1D("m", "", 10, 0, 10)
	for i := 0; i < 100; i++ {
		a.Fill(float64(i%10) + 0.5)
		b.FillW(float64(i%7)+0.5, 2)
	}
	ref := NewHistogram1D("m", "", 10, 0, 10)
	for i := 0; i < 100; i++ {
		ref.Fill(float64(i%10) + 0.5)
		ref.FillW(float64(i%7)+0.5, 2)
	}
	if err := a.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !almost(a.BinHeight(i), ref.BinHeight(i), 1e-9) {
			t.Fatalf("bin %d: merged %v, ref %v", i, a.BinHeight(i), ref.BinHeight(i))
		}
	}
	if !almost(a.Mean(), ref.Mean(), 1e-12) || !almost(a.Rms(), ref.Rms(), 1e-12) {
		t.Fatal("merged stats differ from sequential fill")
	}
}

func TestH1DMergeIncompatible(t *testing.T) {
	a := NewHistogram1D("a", "", 10, 0, 10)
	b := NewHistogram1D("b", "", 5, 0, 10)
	if err := a.MergeFrom(b); err == nil {
		t.Fatal("merged incompatible binning")
	}
	if err := a.MergeFrom(NewProfile1D("p", "", 10, 0, 10)); err == nil {
		t.Fatal("merged wrong kind")
	}
}

// Property: merging K randomly filled histograms equals filling one
// histogram with all samples, regardless of split or order (the correctness
// condition for the paper's parallel analysis: "datasets that can be split
// and where the analysis results can be logically merged").
func TestQuickMergeEqualsSequential(t *testing.T) {
	f := func(seed int64, parts uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(parts%7) + 2
		hs := make([]*Histogram1D, k)
		for i := range hs {
			hs[i] = NewHistogram1D("h", "", 20, -5, 5)
		}
		ref := NewHistogram1D("h", "", 20, -5, 5)
		for i := 0; i < 500; i++ {
			x := rng.NormFloat64() * 2
			w := rng.Float64() + 0.5
			hs[i%k].FillW(x, w)
			ref.FillW(x, w)
		}
		// Merge in a shuffled order (commutativity + associativity).
		order := rng.Perm(k)
		merged := NewHistogram1D("h", "", 20, -5, 5)
		for _, idx := range order {
			if merged.MergeFrom(hs[idx]) != nil {
				return false
			}
		}
		for i := 0; i < 20; i++ {
			if !almost(merged.BinHeight(i), ref.BinHeight(i), 1e-9) ||
				merged.BinEntries(i) != ref.BinEntries(i) {
				return false
			}
		}
		return almost(merged.Mean(), ref.Mean(), 1e-9) &&
			almost(merged.Rms(), ref.Rms(), 1e-9) &&
			merged.AllEntries() == ref.AllEntries()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestH2DFillStatsProjection(t *testing.T) {
	h := NewHistogram2D("xy", "", 4, 0, 4, 4, 0, 4)
	h.Fill(0.5, 0.5)
	h.Fill(1.5, 0.5)
	h.Fill(1.5, 2.5)
	h.FillW(3.5, 3.5, 2)
	if h.Entries() != 4 {
		t.Fatalf("Entries = %d", h.Entries())
	}
	if h.BinEntries(1, 0) != 1 {
		t.Fatal("BinEntries(1,0) wrong")
	}
	wantMeanX := (0.5 + 1.5 + 1.5 + 2*3.5) / 5
	if !almost(h.MeanX(), wantMeanX, 1e-12) {
		t.Fatalf("MeanX = %v, want %v", h.MeanX(), wantMeanX)
	}
	px := h.ProjectionX()
	if px.Entries() != 4 {
		t.Fatalf("ProjectionX entries = %d", px.Entries())
	}
	if !almost(px.BinHeight(1), 2, 1e-12) {
		t.Fatalf("ProjectionX bin 1 = %v", px.BinHeight(1))
	}
	py := h.ProjectionY()
	if !almost(py.BinHeight(0), 2, 1e-12) {
		t.Fatalf("ProjectionY bin 0 = %v", py.BinHeight(0))
	}
	if !almost(px.Mean(), h.MeanX(), 1e-12) {
		t.Fatalf("projection mean %v vs MeanX %v", px.Mean(), h.MeanX())
	}
}

func TestH2DMerge(t *testing.T) {
	a := NewHistogram2D("h", "", 3, 0, 3, 3, 0, 3)
	b := NewHistogram2D("h", "", 3, 0, 3, 3, 0, 3)
	a.Fill(0.5, 0.5)
	b.Fill(0.5, 0.5)
	b.Fill(2.5, 2.5)
	if err := a.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	if a.Entries() != 3 {
		t.Fatalf("merged entries = %d", a.Entries())
	}
	if a.BinEntries(0, 0) != 2 {
		t.Fatal("cell (0,0) wrong after merge")
	}
}

func TestProfile(t *testing.T) {
	p := NewProfile1D("p", "", 4, 0, 4)
	p.Fill(0.5, 10)
	p.Fill(0.5, 20)
	p.Fill(2.5, 5)
	if !almost(p.BinHeight(0), 15, 1e-12) {
		t.Fatalf("bin 0 mean = %v, want 15", p.BinHeight(0))
	}
	if !almost(p.BinRms(0), 5, 1e-12) {
		t.Fatalf("bin 0 rms = %v, want 5", p.BinRms(0))
	}
	if !almost(p.BinError(0), 5/math.Sqrt2, 1e-12) {
		t.Fatalf("bin 0 error = %v", p.BinError(0))
	}
	if p.Entries() != 3 {
		t.Fatalf("entries = %d", p.Entries())
	}
	q := NewProfile1D("p", "", 4, 0, 4)
	q.Fill(0.5, 30)
	if err := p.MergeFrom(q); err != nil {
		t.Fatal(err)
	}
	if !almost(p.BinHeight(0), 20, 1e-12) {
		t.Fatalf("merged bin 0 mean = %v, want 20", p.BinHeight(0))
	}
}

func TestCloudAutoConvert(t *testing.T) {
	c := NewCloud1DLimit("c", "", 100)
	for i := 0; i < 99; i++ {
		c.Fill(float64(i))
	}
	if c.IsConverted() {
		t.Fatal("converted early")
	}
	exactMean := c.Mean()
	c.Fill(99)
	if !c.IsConverted() {
		t.Fatal("did not convert at limit")
	}
	if c.Entries() != 100 {
		t.Fatalf("entries after convert = %d", c.Entries())
	}
	if math.Abs(c.Mean()-exactMean) > 2 {
		t.Fatalf("post-convert mean %v drifted too far from %v", c.Mean(), exactMean)
	}
	// Further fills go into the histogram.
	c.Fill(50)
	if c.Entries() != 101 {
		t.Fatal("post-convert fill lost")
	}
}

func TestCloudMergeUnbinned(t *testing.T) {
	a := NewCloud1DLimit("c", "", 0)
	b := NewCloud1DLimit("c", "", 0)
	a.Fill(1)
	b.Fill(3)
	if err := a.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	if a.Entries() != 2 || !almost(a.Mean(), 2, 1e-12) {
		t.Fatalf("merged cloud: entries=%d mean=%v", a.Entries(), a.Mean())
	}
	if a.LowerEdge() != 1 || a.UpperEdge() != 3 {
		t.Fatal("merged cloud edges wrong")
	}
}

func TestCloudConvertDegenerate(t *testing.T) {
	c := NewCloud1DLimit("c", "", 0)
	c.Fill(5)
	h := c.Convert(10)
	if h.Entries() != 1 {
		t.Fatal("single-value cloud lost its sample on convert")
	}
	empty := NewCloud1DLimit("e", "", 0)
	he := empty.Convert(10)
	if he.AllEntries() != 0 {
		t.Fatal("empty cloud conversion not empty")
	}
}

func TestDPS(t *testing.T) {
	d := NewDataPointSet("t2", "Table 2", 2)
	if err := d.Append(1, 330); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(16, 78); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(1, 2, 3); err == nil {
		t.Fatal("wrong-dimension append accepted")
	}
	if d.Size() != 2 || d.Value(1, 1) != 78 {
		t.Fatal("DPS contents wrong")
	}
	col := d.Column(0)
	if col[0] != 1 || col[1] != 16 {
		t.Fatal("Column wrong")
	}
	o := NewDataPointSet("t2", "", 2)
	o.Append(8, 148)
	if err := d.MergeFrom(o); err != nil {
		t.Fatal(err)
	}
	if d.Size() != 3 {
		t.Fatal("merge did not concatenate")
	}
}

func TestAnnotation(t *testing.T) {
	a := NewAnnotation()
	a.Set("x", "1")
	a.Set("y", "2")
	a.Set("x", "3")
	if a.Len() != 2 || a.Get("x") != "3" {
		t.Fatal("Set/replace wrong")
	}
	keys := a.Keys()
	if keys[0] != "x" || keys[1] != "y" {
		t.Fatalf("key order %v", keys)
	}
	a.Remove("x")
	if a.Has("x") || a.Len() != 1 {
		t.Fatal("Remove failed")
	}
	a.Remove("never") // no-op
}
