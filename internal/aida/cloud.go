package aida

import (
	"math"
)

// DefaultCloudLimit is the number of unbinned entries a cloud holds before
// auto-converting to a histogram (AIDA's "maxEntries" semantics).
const DefaultCloudLimit = 10000

// cloudAutoBins is the binning used when a cloud converts itself.
const cloudAutoBins = 50

// Cloud1D stores raw (x, w) samples until a limit, then converts itself to
// a Histogram1D (AIDA ICloud1D). Clouds let analysis code defer binning
// decisions — useful when the interesting range is unknown before the first
// pass over a dataset.
type Cloud1D struct {
	name      string
	ann       *Annotation
	limit     int
	xs        []float64
	ws        []float64
	converted *Histogram1D
	// Exact moments maintained while unbinned.
	sumW, sumWX, sumWX2 float64
	lo, hi              float64
	dirty               bool // content mutations since the last ClearDirty
}

// NewCloud1D creates a cloud with the default auto-convert limit.
func NewCloud1D(name, title string) *Cloud1D { return NewCloud1DLimit(name, title, DefaultCloudLimit) }

// NewCloud1DLimit creates a cloud converting after limit entries
// (limit ≤ 0 means never).
func NewCloud1DLimit(name, title string, limit int) *Cloud1D {
	c := &Cloud1D{name: name, ann: NewAnnotation(), limit: limit, lo: math.Inf(1), hi: math.Inf(-1),
		dirty: true} // born dirty — see NewHistogram1D
	if title != "" {
		c.ann.Set(TitleKey, title)
	}
	return c
}

// Name implements Object.
func (c *Cloud1D) Name() string { return c.name }

// Kind implements Object.
func (c *Cloud1D) Kind() string { return "Cloud1D" }

// Annotations implements Object.
func (c *Cloud1D) Annotations() *Annotation { return c.ann }

// Title returns the display title (falls back to the name).
func (c *Cloud1D) Title() string {
	if t := c.ann.Get(TitleKey); t != "" {
		return t
	}
	return c.name
}

// IsConverted reports whether the cloud has collapsed into a histogram.
func (c *Cloud1D) IsConverted() bool { return c.converted != nil }

// Fill adds x with weight 1.
func (c *Cloud1D) Fill(x float64) { c.FillW(x, 1) }

// FillW adds x with weight w, converting when the limit is crossed.
func (c *Cloud1D) FillW(x, w float64) {
	c.dirty = true
	if c.converted != nil {
		c.converted.FillW(x, w)
		return
	}
	c.xs = append(c.xs, x)
	c.ws = append(c.ws, w)
	c.sumW += w
	c.sumWX += w * x
	c.sumWX2 += w * x * x
	if x < c.lo {
		c.lo = x
	}
	if x > c.hi {
		c.hi = x
	}
	if c.limit > 0 && len(c.xs) >= c.limit {
		c.Convert(cloudAutoBins)
	}
}

// Entries returns the number of samples (including converted ones).
func (c *Cloud1D) Entries() int64 {
	if c.converted != nil {
		return c.converted.AllEntries()
	}
	return int64(len(c.xs))
}

// EntriesCount implements Object.
func (c *Cloud1D) EntriesCount() int64 { return c.Entries() }

// Mean returns the weighted mean (exact while unbinned).
func (c *Cloud1D) Mean() float64 {
	if c.converted != nil {
		return c.converted.Mean()
	}
	if c.sumW == 0 {
		return 0
	}
	return c.sumWX / c.sumW
}

// Rms returns the weighted standard deviation (exact while unbinned).
func (c *Cloud1D) Rms() float64 {
	if c.converted != nil {
		return c.converted.Rms()
	}
	if c.sumW == 0 {
		return 0
	}
	m := c.Mean()
	v := c.sumWX2/c.sumW - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// LowerEdge returns the smallest sample seen (∞ when empty, histogram edge
// after conversion).
func (c *Cloud1D) LowerEdge() float64 {
	if c.converted != nil {
		return c.converted.Axis().LowerEdge()
	}
	return c.lo
}

// UpperEdge returns the largest sample seen.
func (c *Cloud1D) UpperEdge() float64 {
	if c.converted != nil {
		return c.converted.Axis().UpperEdge()
	}
	return c.hi
}

// Convert bins the cloud into a histogram with nBins over the observed
// range (a degenerate range is padded so the single value is in range).
func (c *Cloud1D) Convert(nBins int) *Histogram1D {
	if c.converted != nil {
		return c.converted
	}
	c.dirty = true
	lo, hi := c.lo, c.hi
	if len(c.xs) == 0 {
		lo, hi = 0, 1
	}
	if lo == hi {
		lo, hi = lo-0.5, hi+0.5
	}
	// Widen the top edge slightly so the max sample lands in range.
	hi += (hi - lo) * 1e-9
	h := NewHistogram1D(c.name, c.Title(), nBins, lo, hi)
	for i, x := range c.xs {
		h.FillW(x, c.ws[i])
	}
	c.converted = h
	c.xs, c.ws = nil, nil
	return h
}

// Histogram returns the converted histogram, converting on demand.
func (c *Cloud1D) Histogram() *Histogram1D { return c.Convert(cloudAutoBins) }

// Values returns copies of the raw samples (nil after conversion).
func (c *Cloud1D) Values() (xs, ws []float64) {
	if c.converted != nil {
		return nil, nil
	}
	xs = make([]float64, len(c.xs))
	ws = make([]float64, len(c.ws))
	copy(xs, c.xs)
	copy(ws, c.ws)
	return xs, ws
}

// Reset clears everything, returning the cloud to unbinned mode.
func (c *Cloud1D) Reset() {
	c.dirty = true
	c.xs, c.ws = nil, nil
	c.converted = nil
	c.sumW, c.sumWX, c.sumWX2 = 0, 0, 0
	c.lo, c.hi = math.Inf(1), math.Inf(-1)
}

// Clone returns a deep copy.
func (c *Cloud1D) Clone() *Cloud1D {
	n := &Cloud1D{
		name: c.name, ann: c.ann.clone(), limit: c.limit,
		sumW: c.sumW, sumWX: c.sumWX, sumWX2: c.sumWX2, lo: c.lo, hi: c.hi,
		dirty: c.dirty,
	}
	n.xs = append([]float64(nil), c.xs...)
	n.ws = append([]float64(nil), c.ws...)
	if c.converted != nil {
		n.converted = c.converted.Clone()
	}
	return n
}

// Dirty implements Dirtyable. Fills may bypass the cloud entirely via
// the histogram handle Convert/Histogram return, so the converted
// histogram's own flag counts too.
func (c *Cloud1D) Dirty() bool { return c.dirty || (c.converted != nil && c.converted.Dirty()) }

// ClearDirty implements Dirtyable.
func (c *Cloud1D) ClearDirty() {
	c.dirty = false
	if c.converted != nil {
		c.converted.ClearDirty()
	}
}

// MergeFrom implements Mergeable. Merging an unbinned cloud into an
// unbinned cloud concatenates samples (converting if the limit trips);
// any converted operand forces conversion of both with the receiver's
// binning.
func (c *Cloud1D) MergeFrom(src Object) error {
	o, ok := src.(*Cloud1D)
	if !ok {
		return errIncompatible("merge", c, src)
	}
	c.dirty = true
	if c.converted == nil && o.converted == nil {
		for i, x := range o.xs {
			c.FillW(x, o.ws[i])
		}
		mergeAnnotations(c.ann, o.ann)
		return nil
	}
	// At least one side is binned: bin both and add. Note the receiver
	// converts over its own observed range; the source histogram is
	// refilled by bin mean, which is the standard AIDA lossy cloud merge.
	dst := c.Convert(cloudAutoBins)
	if o.converted == nil {
		for i, x := range o.xs {
			dst.FillW(x, o.ws[i])
		}
	} else {
		oh := o.converted
		for i := 0; i < oh.Axis().Bins(); i++ {
			if oh.BinEntries(i) > 0 {
				dst.FillW(oh.BinMean(i), oh.BinHeight(i))
			}
		}
		for _, flow := range []int{Underflow, Overflow} {
			if oh.BinEntries(flow) > 0 {
				dst.FillW(oh.BinMean(flow), oh.BinHeight(flow))
			}
		}
	}
	mergeAnnotations(c.ann, o.ann)
	return nil
}

// Cloud2D stores raw (x, y, w) samples until a limit, then converts to a
// Histogram2D (AIDA ICloud2D).
type Cloud2D struct {
	name      string
	ann       *Annotation
	limit     int
	xs, ys    []float64
	ws        []float64
	converted *Histogram2D
	xlo, xhi  float64
	ylo, yhi  float64
	dirty     bool // content mutations since the last ClearDirty
}

// NewCloud2D creates a 2D cloud with the default auto-convert limit.
func NewCloud2D(name, title string) *Cloud2D {
	c := &Cloud2D{
		name: name, ann: NewAnnotation(), limit: DefaultCloudLimit,
		xlo: math.Inf(1), xhi: math.Inf(-1), ylo: math.Inf(1), yhi: math.Inf(-1),
		dirty: true, // born dirty — see NewHistogram1D
	}
	if title != "" {
		c.ann.Set(TitleKey, title)
	}
	return c
}

// Name implements Object.
func (c *Cloud2D) Name() string { return c.name }

// Kind implements Object.
func (c *Cloud2D) Kind() string { return "Cloud2D" }

// Annotations implements Object.
func (c *Cloud2D) Annotations() *Annotation { return c.ann }

// Fill adds (x, y) with weight 1.
func (c *Cloud2D) Fill(x, y float64) { c.FillW(x, y, 1) }

// FillW adds (x, y) with weight w.
func (c *Cloud2D) FillW(x, y, w float64) {
	c.dirty = true
	if c.converted != nil {
		c.converted.FillW(x, y, w)
		return
	}
	c.xs = append(c.xs, x)
	c.ys = append(c.ys, y)
	c.ws = append(c.ws, w)
	c.xlo = math.Min(c.xlo, x)
	c.xhi = math.Max(c.xhi, x)
	c.ylo = math.Min(c.ylo, y)
	c.yhi = math.Max(c.yhi, y)
	if c.limit > 0 && len(c.xs) >= c.limit {
		c.Convert(cloudAutoBins, cloudAutoBins)
	}
}

// Entries returns the number of samples.
func (c *Cloud2D) Entries() int64 {
	if c.converted != nil {
		return c.converted.Entries()
	}
	return int64(len(c.xs))
}

// EntriesCount implements Object.
func (c *Cloud2D) EntriesCount() int64 { return c.Entries() }

// IsConverted reports whether the cloud has collapsed into a histogram.
func (c *Cloud2D) IsConverted() bool { return c.converted != nil }

// Convert bins the cloud into a 2D histogram over the observed ranges.
func (c *Cloud2D) Convert(nx, ny int) *Histogram2D {
	if c.converted != nil {
		return c.converted
	}
	c.dirty = true
	xlo, xhi, ylo, yhi := c.xlo, c.xhi, c.ylo, c.yhi
	if len(c.xs) == 0 {
		xlo, xhi, ylo, yhi = 0, 1, 0, 1
	}
	if xlo == xhi {
		xlo, xhi = xlo-0.5, xhi+0.5
	}
	if ylo == yhi {
		ylo, yhi = ylo-0.5, yhi+0.5
	}
	xhi += (xhi - xlo) * 1e-9
	yhi += (yhi - ylo) * 1e-9
	h := NewHistogram2D(c.name, c.ann.Get(TitleKey), nx, xlo, xhi, ny, ylo, yhi)
	for i := range c.xs {
		h.FillW(c.xs[i], c.ys[i], c.ws[i])
	}
	c.converted = h
	c.xs, c.ys, c.ws = nil, nil, nil
	return h
}

// Clone returns a deep copy.
func (c *Cloud2D) Clone() *Cloud2D {
	n := &Cloud2D{
		name: c.name, ann: c.ann.clone(), limit: c.limit,
		xlo: c.xlo, xhi: c.xhi, ylo: c.ylo, yhi: c.yhi,
		dirty: c.dirty,
	}
	n.xs = append([]float64(nil), c.xs...)
	n.ys = append([]float64(nil), c.ys...)
	n.ws = append([]float64(nil), c.ws...)
	if c.converted != nil {
		n.converted = c.converted.Clone()
	}
	return n
}

// Dirty implements Dirtyable (see Cloud1D.Dirty on the converted flag).
func (c *Cloud2D) Dirty() bool { return c.dirty || (c.converted != nil && c.converted.Dirty()) }

// ClearDirty implements Dirtyable.
func (c *Cloud2D) ClearDirty() {
	c.dirty = false
	if c.converted != nil {
		c.converted.ClearDirty()
	}
}

// MergeFrom implements Mergeable (same semantics as Cloud1D).
func (c *Cloud2D) MergeFrom(src Object) error {
	o, ok := src.(*Cloud2D)
	if !ok {
		return errIncompatible("merge", c, src)
	}
	c.dirty = true
	if c.converted == nil && o.converted == nil {
		for i := range o.xs {
			c.FillW(o.xs[i], o.ys[i], o.ws[i])
		}
		mergeAnnotations(c.ann, o.ann)
		return nil
	}
	dst := c.Convert(cloudAutoBins, cloudAutoBins)
	if o.converted == nil {
		for i := range o.xs {
			dst.FillW(o.xs[i], o.ys[i], o.ws[i])
		}
		mergeAnnotations(c.ann, o.ann)
		return nil
	}
	oh := o.converted
	for ix := 0; ix < oh.XAxis().Bins(); ix++ {
		for iy := 0; iy < oh.YAxis().Bins(); iy++ {
			if oh.BinEntries(ix, iy) > 0 {
				dst.FillW(oh.XAxis().BinCenter(ix), oh.YAxis().BinCenter(iy), oh.BinHeight(ix, iy))
			}
		}
	}
	mergeAnnotations(c.ann, o.ann)
	return nil
}
