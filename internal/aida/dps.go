package aida

import "fmt"

// Measurement is one coordinate of a data point with asymmetric errors
// (AIDA IMeasurement).
type Measurement struct {
	Value      float64
	ErrorPlus  float64
	ErrorMinus float64
}

// DataPoint is a point in an n-dimensional DataPointSet.
type DataPoint struct {
	Coords []Measurement
}

// DataPointSet is an ordered collection of n-dimensional measured points
// (AIDA IDataPointSet). The benchmark harness stores Table 2 rows and the
// Figure 5 series as 2D/3D point sets.
type DataPointSet struct {
	name   string
	ann    *Annotation
	dim    int
	points []DataPoint
	dirty  bool // content mutations since the last ClearDirty
}

// NewDataPointSet creates an empty point set of the given dimension.
func NewDataPointSet(name, title string, dim int) *DataPointSet {
	if dim <= 0 {
		panic(fmt.Sprintf("aida: DataPointSet dimension %d must be positive", dim))
	}
	d := &DataPointSet{name: name, ann: NewAnnotation(), dim: dim,
		dirty: true} // born dirty — see NewHistogram1D
	if title != "" {
		d.ann.Set(TitleKey, title)
	}
	return d
}

// Name implements Object.
func (d *DataPointSet) Name() string { return d.name }

// Kind implements Object.
func (d *DataPointSet) Kind() string { return "DataPointSet" }

// Annotations implements Object.
func (d *DataPointSet) Annotations() *Annotation { return d.ann }

// Title returns the display title (falls back to the name).
func (d *DataPointSet) Title() string {
	if t := d.ann.Get(TitleKey); t != "" {
		return t
	}
	return d.name
}

// Dimension returns the coordinate count per point.
func (d *DataPointSet) Dimension() int { return d.dim }

// Size returns the number of points.
func (d *DataPointSet) Size() int { return len(d.points) }

// EntriesCount implements Object.
func (d *DataPointSet) EntriesCount() int64 { return int64(len(d.points)) }

// Append adds a point from plain values (no errors).
func (d *DataPointSet) Append(values ...float64) error {
	if len(values) != d.dim {
		return fmt.Errorf("aida: point with %d coords appended to %d-dim set %q", len(values), d.dim, d.name)
	}
	p := DataPoint{Coords: make([]Measurement, d.dim)}
	for i, v := range values {
		p.Coords[i] = Measurement{Value: v}
	}
	d.points = append(d.points, p)
	d.dirty = true
	return nil
}

// AppendPoint adds a fully specified point.
func (d *DataPointSet) AppendPoint(p DataPoint) error {
	if len(p.Coords) != d.dim {
		return fmt.Errorf("aida: point with %d coords appended to %d-dim set %q", len(p.Coords), d.dim, d.name)
	}
	cp := DataPoint{Coords: make([]Measurement, d.dim)}
	copy(cp.Coords, p.Coords)
	d.points = append(d.points, cp)
	d.dirty = true
	return nil
}

// Point returns point i (a copy).
func (d *DataPointSet) Point(i int) DataPoint {
	p := d.points[i]
	cp := DataPoint{Coords: make([]Measurement, len(p.Coords))}
	copy(cp.Coords, p.Coords)
	return cp
}

// Value returns coordinate c of point i.
func (d *DataPointSet) Value(i, c int) float64 { return d.points[i].Coords[c].Value }

// Column extracts coordinate c of every point.
func (d *DataPointSet) Column(c int) []float64 {
	out := make([]float64, len(d.points))
	for i, p := range d.points {
		out[i] = p.Coords[c].Value
	}
	return out
}

// Reset removes all points.
func (d *DataPointSet) Reset() {
	d.points = nil
	d.dirty = true
}

// Dirty implements Dirtyable.
func (d *DataPointSet) Dirty() bool { return d.dirty }

// ClearDirty implements Dirtyable.
func (d *DataPointSet) ClearDirty() { d.dirty = false }

// Clone returns a deep copy.
func (d *DataPointSet) Clone() *DataPointSet {
	c := &DataPointSet{name: d.name, ann: d.ann.clone(), dim: d.dim, dirty: d.dirty}
	c.points = make([]DataPoint, len(d.points))
	for i, p := range d.points {
		c.points[i].Coords = append([]Measurement(nil), p.Coords...)
	}
	return c
}

// MergeFrom implements Mergeable by concatenating points.
func (d *DataPointSet) MergeFrom(src Object) error {
	o, ok := src.(*DataPointSet)
	if !ok || o.dim != d.dim {
		return errIncompatible("merge", d, src)
	}
	for _, p := range o.points {
		if err := d.AppendPoint(p); err != nil {
			return err
		}
	}
	mergeAnnotations(d.ann, o.ann)
	return nil
}
