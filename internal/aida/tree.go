package aida

import (
	"fmt"
	"sort"
	"strings"
)

// Tree is the hierarchical container of analysis objects (AIDA ITree).
// Engines create objects under paths like "/higgs/dijet-mass"; the AIDA
// manager merges whole worker trees into the session tree; the client
// browses the merged tree exactly like the JAS3 object browser of Figure 4.
//
// A Tree is not safe for concurrent use; callers that share one (the merge
// service) must synchronise.
type Tree struct {
	root *dir
	// snapped holds the object paths included in the last delta snapshot
	// (nil until the first Delta/FullDelta call — see delta.go).
	snapped map[string]struct{}
}

type dir struct {
	name     string
	children map[string]*dir
	objects  map[string]Object
}

func newDir(name string) *dir {
	return &dir{name: name, children: make(map[string]*dir), objects: make(map[string]Object)}
}

// NewTree returns an empty tree.
func NewTree() *Tree { return &Tree{root: newDir("")} }

// splitPath normalizes "/a/b/c" into segments; empty segments collapse.
func splitPath(path string) []string {
	parts := strings.Split(path, "/")
	segs := parts[:0]
	for _, p := range parts {
		if p != "" && p != "." {
			segs = append(segs, p)
		}
	}
	return segs
}

// JoinPath builds a canonical absolute path from segments.
func JoinPath(segs ...string) string { return "/" + strings.Join(segs, "/") }

// Mkdirs creates the directory path (and parents), returning an error only
// if a path segment is occupied by an object.
func (t *Tree) Mkdirs(path string) error {
	_, err := t.mkdirs(splitPath(path))
	return err
}

func (t *Tree) mkdirs(segs []string) (*dir, error) {
	d := t.root
	for _, s := range segs {
		if _, isObj := d.objects[s]; isObj {
			return nil, fmt.Errorf("aida: %q is an object, not a directory", s)
		}
		next := d.children[s]
		if next == nil {
			next = newDir(s)
			d.children[s] = next
		}
		d = next
	}
	return d, nil
}

func (t *Tree) lookupDir(segs []string) (*dir, bool) {
	d := t.root
	for _, s := range segs {
		next := d.children[s]
		if next == nil {
			return nil, false
		}
		d = next
	}
	return d, true
}

// Put stores obj at the directory path dir (created if needed) under the
// object's own name.
func (t *Tree) Put(dirPath string, obj Object) error {
	if obj == nil {
		return fmt.Errorf("aida: Put nil object at %q", dirPath)
	}
	if obj.Name() == "" || strings.Contains(obj.Name(), "/") {
		return fmt.Errorf("aida: invalid object name %q", obj.Name())
	}
	d, err := t.mkdirs(splitPath(dirPath))
	if err != nil {
		return err
	}
	if _, isDir := d.children[obj.Name()]; isDir {
		return fmt.Errorf("aida: %q is a directory", obj.Name())
	}
	d.objects[obj.Name()] = obj
	return nil
}

// PutAt stores obj at the full object path (directory part + leaf name must
// equal the object's name).
func (t *Tree) PutAt(objPath string, obj Object) error {
	segs := splitPath(objPath)
	if len(segs) == 0 {
		return fmt.Errorf("aida: empty object path")
	}
	leaf := segs[len(segs)-1]
	if leaf != obj.Name() {
		return fmt.Errorf("aida: path leaf %q != object name %q", leaf, obj.Name())
	}
	return t.Put(JoinPath(segs[:len(segs)-1]...), obj)
}

// Get returns the object at the full path, or nil.
func (t *Tree) Get(objPath string) Object {
	segs := splitPath(objPath)
	if len(segs) == 0 {
		return nil
	}
	d, ok := t.lookupDir(segs[:len(segs)-1])
	if !ok {
		return nil
	}
	return d.objects[segs[len(segs)-1]]
}

// Rm removes the object at the full path; it reports whether it existed.
func (t *Tree) Rm(objPath string) bool {
	segs := splitPath(objPath)
	if len(segs) == 0 {
		return false
	}
	d, ok := t.lookupDir(segs[:len(segs)-1])
	if !ok {
		return false
	}
	if _, ok := d.objects[segs[len(segs)-1]]; !ok {
		return false
	}
	delete(d.objects, segs[len(segs)-1])
	return true
}

// RmDir removes an entire directory subtree; it reports whether it existed.
func (t *Tree) RmDir(path string) bool {
	segs := splitPath(path)
	if len(segs) == 0 {
		// Clearing the root.
		t.root = newDir("")
		return true
	}
	parent, ok := t.lookupDir(segs[:len(segs)-1])
	if !ok {
		return false
	}
	if _, ok := parent.children[segs[len(segs)-1]]; !ok {
		return false
	}
	delete(parent.children, segs[len(segs)-1])
	return true
}

// Ls lists the immediate entries of a directory: sub-directory names get a
// trailing "/", object names are bare. Sorted.
func (t *Tree) Ls(path string) ([]string, error) {
	d, ok := t.lookupDir(splitPath(path))
	if !ok {
		return nil, fmt.Errorf("aida: no directory %q", path)
	}
	out := make([]string, 0, len(d.children)+len(d.objects))
	for name := range d.children {
		out = append(out, name+"/")
	}
	for name := range d.objects {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// ObjectPaths returns every object path in the tree, sorted.
func (t *Tree) ObjectPaths() []string {
	var out []string
	t.walk(t.root, nil, func(path []string, obj Object) {
		out = append(out, JoinPath(append(append([]string{}, path...), obj.Name())...))
	})
	sort.Strings(out)
	return out
}

// Walk visits every object with its full path, in sorted order.
func (t *Tree) Walk(fn func(path string, obj Object)) {
	for _, p := range t.ObjectPaths() {
		fn(p, t.Get(p))
	}
}

func (t *Tree) walk(d *dir, path []string, fn func(path []string, obj Object)) {
	for _, name := range sortedKeys(d.objects) {
		fn(path, d.objects[name])
	}
	for _, name := range sortedKeys(d.children) {
		t.walk(d.children[name], append(path, name), fn)
	}
}

// Size returns the total object count.
func (t *Tree) Size() int {
	n := 0
	t.walk(t.root, nil, func([]string, Object) { n++ })
	return n
}

// MergeFrom merges every object of src into t: objects at paths that exist
// in both trees are merged (via Mergeable); new paths are deep-copied in.
// This implements the AIDA manager's collect step (§3.7).
func (t *Tree) MergeFrom(src *Tree) error {
	var firstErr error
	src.Walk(func(path string, obj Object) {
		if firstErr != nil {
			return
		}
		existing := t.Get(path)
		if existing == nil {
			segs := splitPath(path)
			cp, err := CloneObject(obj)
			if err != nil {
				firstErr = fmt.Errorf("aida: merging %q: %w", path, err)
				return
			}
			if err := t.Put(JoinPath(segs[:len(segs)-1]...), cp); err != nil {
				firstErr = err
			}
			return
		}
		m, ok := existing.(Mergeable)
		if !ok {
			firstErr = fmt.Errorf("aida: object %q (%s) is not mergeable", path, existing.Kind())
			return
		}
		if err := m.MergeFrom(obj); err != nil {
			firstErr = fmt.Errorf("aida: merging %q: %w", path, err)
		}
	})
	return firstErr
}

// Clone returns a deep copy of the whole tree.
func (t *Tree) Clone() (*Tree, error) {
	c := NewTree()
	var firstErr error
	t.Walk(func(path string, obj Object) {
		if firstErr != nil {
			return
		}
		cp, err := CloneObject(obj)
		if err != nil {
			firstErr = err
			return
		}
		segs := splitPath(path)
		if err := c.Put(JoinPath(segs[:len(segs)-1]...), cp); err != nil {
			firstErr = err
		}
	})
	return c, firstErr
}

// CloneObject deep-copies any known AIDA object.
func CloneObject(obj Object) (Object, error) {
	switch o := obj.(type) {
	case *Histogram1D:
		return o.Clone(), nil
	case *Histogram2D:
		return o.Clone(), nil
	case *Profile1D:
		return o.Clone(), nil
	case *Cloud1D:
		return o.Clone(), nil
	case *Cloud2D:
		return o.Clone(), nil
	case *DataPointSet:
		return o.Clone(), nil
	default:
		return nil, fmt.Errorf("aida: cannot clone object of kind %s", obj.Kind())
	}
}

// Factory-style helpers mirroring AIDA's IHistogramFactory: create the
// object, store it at dirPath, and return it for filling.

// H1D creates a Histogram1D under dirPath.
func (t *Tree) H1D(dirPath, name, title string, bins int, lo, hi float64) (*Histogram1D, error) {
	h := NewHistogram1D(name, title, bins, lo, hi)
	if err := t.Put(dirPath, h); err != nil {
		return nil, err
	}
	return h, nil
}

// H2D creates a Histogram2D under dirPath.
func (t *Tree) H2D(dirPath, name, title string, nx int, xlo, xhi float64, ny int, ylo, yhi float64) (*Histogram2D, error) {
	h := NewHistogram2D(name, title, nx, xlo, xhi, ny, ylo, yhi)
	if err := t.Put(dirPath, h); err != nil {
		return nil, err
	}
	return h, nil
}

// P1D creates a Profile1D under dirPath.
func (t *Tree) P1D(dirPath, name, title string, bins int, lo, hi float64) (*Profile1D, error) {
	p := NewProfile1D(name, title, bins, lo, hi)
	if err := t.Put(dirPath, p); err != nil {
		return nil, err
	}
	return p, nil
}

// C1D creates a Cloud1D under dirPath.
func (t *Tree) C1D(dirPath, name, title string) (*Cloud1D, error) {
	c := NewCloud1D(name, title)
	if err := t.Put(dirPath, c); err != nil {
		return nil, err
	}
	return c, nil
}

// DPS creates a DataPointSet under dirPath.
func (t *Tree) DPS(dirPath, name, title string, dim int) (*DataPointSet, error) {
	d := NewDataPointSet(name, title, dim)
	if err := t.Put(dirPath, d); err != nil {
		return nil, err
	}
	return d, nil
}
