// Package aida is a Go implementation of the analysis-object toolkit the
// paper builds on: AIDA, the "Abstract Interfaces for Data Analysis" (§3.7).
//
// It provides the managed objects user analysis code fills on the worker
// nodes — 1D/2D histograms, profiles, clouds, data-point sets — organised in
// a hierarchical named Tree, together with the merge algebra the AIDA
// manager service uses to combine per-worker partial results, an AIDA-XML
// serialisation, a compact binary wire encoding for snapshots, and ASCII/SVG
// renderers for presenting merged results to the client.
//
// All objects are single-goroutine by design (engines fill them in their
// event loop); the merge service synchronises externally.
package aida

import (
	"fmt"
	"sort"
)

// Object is anything that can live in a Tree.
type Object interface {
	// Name returns the object's leaf name within its directory.
	Name() string
	// Kind returns the AIDA type tag, e.g. "Histogram1D".
	Kind() string
	// Annotations returns the object's mutable annotation set.
	Annotations() *Annotation
	// EntriesCount returns the number of in-range fills (for displays).
	EntriesCount() int64
}

// Mergeable objects can absorb another object of the same type and binning.
// Merging is the paper's core result-combination operation: partial
// histograms from N analysis engines add into the session result.
type Mergeable interface {
	Object
	// MergeFrom adds src's content into the receiver.
	MergeFrom(src Object) error
}

// Annotation is an ordered set of key/value metadata strings
// (AIDA IAnnotation).
type Annotation struct {
	keys   []string
	values map[string]string
}

// NewAnnotation returns an empty annotation set.
func NewAnnotation() *Annotation {
	return &Annotation{values: make(map[string]string)}
}

// Set adds or replaces a key.
func (a *Annotation) Set(key, value string) {
	if _, ok := a.values[key]; !ok {
		a.keys = append(a.keys, key)
	}
	a.values[key] = value
}

// Get returns the value for key, or "".
func (a *Annotation) Get(key string) string { return a.values[key] }

// Has reports whether key is present.
func (a *Annotation) Has(key string) bool { _, ok := a.values[key]; return ok }

// Remove deletes a key if present.
func (a *Annotation) Remove(key string) {
	if _, ok := a.values[key]; !ok {
		return
	}
	delete(a.values, key)
	for i, k := range a.keys {
		if k == key {
			a.keys = append(a.keys[:i], a.keys[i+1:]...)
			break
		}
	}
}

// Keys returns the keys in insertion order.
func (a *Annotation) Keys() []string {
	out := make([]string, len(a.keys))
	copy(out, a.keys)
	return out
}

// Len returns the number of keys.
func (a *Annotation) Len() int { return len(a.keys) }

// clone returns a deep copy.
func (a *Annotation) clone() *Annotation {
	c := NewAnnotation()
	for _, k := range a.keys {
		c.Set(k, a.values[k])
	}
	return c
}

// mergeAnnotations keeps dst's values, adding any keys only src has.
func mergeAnnotations(dst, src *Annotation) {
	for _, k := range src.keys {
		if !dst.Has(k) {
			dst.Set(k, src.values[k])
		}
	}
}

// Title is the conventional annotation key for display titles.
const TitleKey = "Title"

// Axis is a fixed-width binning over [lo, hi) with nBins bins.
// Bin indices: 0..nBins-1 in range; Underflow and Overflow are separate.
type Axis struct {
	nBins int
	lo    float64
	hi    float64
}

// Flow-bin sentinels for CoordToIndex.
const (
	Underflow = -1
	Overflow  = -2
)

// NewAxis constructs an axis; it panics on invalid binning since binning is
// analysis configuration, not runtime data.
func NewAxis(nBins int, lo, hi float64) Axis {
	if nBins <= 0 || !(lo < hi) {
		panic(fmt.Sprintf("aida: invalid axis [%v,%v) with %d bins", lo, hi, nBins))
	}
	return Axis{nBins: nBins, lo: lo, hi: hi}
}

// Bins returns the number of in-range bins.
func (a Axis) Bins() int { return a.nBins }

// LowerEdge returns the axis lower bound.
func (a Axis) LowerEdge() float64 { return a.lo }

// UpperEdge returns the axis upper bound.
func (a Axis) UpperEdge() float64 { return a.hi }

// BinWidth returns the width of each bin.
func (a Axis) BinWidth() float64 { return (a.hi - a.lo) / float64(a.nBins) }

// BinLowerEdge returns the lower edge of bin i.
func (a Axis) BinLowerEdge(i int) float64 { return a.lo + float64(i)*a.BinWidth() }

// BinUpperEdge returns the upper edge of bin i.
func (a Axis) BinUpperEdge(i int) float64 { return a.lo + float64(i+1)*a.BinWidth() }

// BinCenter returns the center of bin i.
func (a Axis) BinCenter(i int) float64 { return a.lo + (float64(i)+0.5)*a.BinWidth() }

// CoordToIndex maps x to a bin index, or Underflow/Overflow.
func (a Axis) CoordToIndex(x float64) int {
	if x < a.lo {
		return Underflow
	}
	if x >= a.hi {
		return Overflow
	}
	i := int(float64(a.nBins) * (x - a.lo) / (a.hi - a.lo))
	if i >= a.nBins { // guard float rounding at the upper edge
		i = a.nBins - 1
	}
	return i
}

// Equal reports whether two axes have identical binning.
func (a Axis) Equal(b Axis) bool { return a.nBins == b.nBins && a.lo == b.lo && a.hi == b.hi }

// errIncompatible builds the standard merge-mismatch error.
func errIncompatible(op string, dst, src Object) error {
	return fmt.Errorf("aida: cannot %s %s %q into %s %q: incompatible", op, src.Kind(), src.Name(), dst.Kind(), dst.Name())
}

// sortedKeys returns map keys in sorted order (deterministic iteration).
func sortedKeys[M map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
