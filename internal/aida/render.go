package aida

import (
	"fmt"
	"strings"
)

// ASCII rendering — the terminal stand-in for the JAS3 plot panels of
// Figure 4. The client CLI prints merged histograms with these functions
// after every poll, giving the paper's "histograms filling up dynamically"
// experience in a terminal.

// RenderOptions control ASCII output.
type RenderOptions struct {
	Width  int // bar width in characters (default 50)
	MaxRow int // cap on displayed bins (0 = all)
}

func (o RenderOptions) width() int {
	if o.Width <= 0 {
		return 50
	}
	return o.Width
}

// RenderH1D renders a 1D histogram as a horizontal bar chart.
func RenderH1D(h *Histogram1D, opts RenderOptions) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (entries=%d mean=%.4g rms=%.4g)\n", h.Title(), h.Entries(), h.Mean(), h.Rms())
	max := h.MaxBinHeight()
	if max <= 0 {
		b.WriteString("  (empty)\n")
		return b.String()
	}
	ax := h.Axis()
	bins := ax.Bins()
	if opts.MaxRow > 0 && bins > opts.MaxRow {
		bins = opts.MaxRow
	}
	w := opts.width()
	for i := 0; i < bins; i++ {
		height := h.BinHeight(i)
		n := int(height / max * float64(w))
		if height > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&b, "%10.4g |%-*s| %.4g\n", ax.BinLowerEdge(i), w, strings.Repeat("#", n), height)
	}
	if uf, of := h.BinHeight(Underflow), h.BinHeight(Overflow); uf > 0 || of > 0 {
		fmt.Fprintf(&b, "  underflow=%.4g overflow=%.4g\n", uf, of)
	}
	return b.String()
}

// RenderTree summarizes every object in the tree, one line each — the
// terminal version of the JAS3 object browser.
func RenderTree(t *Tree) string {
	var b strings.Builder
	t.Walk(func(path string, obj Object) {
		fmt.Fprintf(&b, "%-40s %-14s entries=%d\n", path, obj.Kind(), obj.EntriesCount())
	})
	if b.Len() == 0 {
		return "(empty tree)\n"
	}
	return b.String()
}

// Table renders rows of labelled values with a header, matching the visual
// layout of the paper's Tables 1 and 2 for the benchmark harness.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}
