package aida

import (
	"fmt"
	"sort"
)

// This file implements incremental tree snapshots. Engines used to ship
// their whole tree on every publish; with fill-time dirty bits on every
// object a Tree can instead emit a DeltaState carrying only the objects
// touched since the previous snapshot, making snapshot cost proportional
// to what changed rather than to total state.
//
// Protocol: the first snapshot of a tree is always a full baseline
// (DeltaState.Full). Subsequent Delta calls return only dirty or newly
// created objects plus the paths removed since the last snapshot. Deltas
// are cumulative-from-the-previous-snapshot, so consumers must apply them
// in publish order; a receiver that detects a gap asks for a resync and
// the producer answers with FullDelta, the escape hatch that re-baselines
// (also used after rewind, when the engine starts a fresh tree).
//
// Dirty bits are set by content mutations (fills, resets, scales, merges,
// cloud conversion, point appends). Annotation-only edits do not mark an
// object dirty; annotations are in practice written once at creation.

// Dirtyable is implemented by objects that track content mutation since
// the last snapshot. All built-in AIDA objects implement it; an object
// that does not is conservatively treated as always dirty.
type Dirtyable interface {
	Object
	// Dirty reports whether content changed since the last ClearDirty.
	Dirty() bool
	// ClearDirty resets the modification flag (called at snapshot time).
	ClearDirty()
}

// DeltaState is an incremental tree snapshot on the wire: the objects
// touched since the previous snapshot plus the paths removed since then.
type DeltaState struct {
	// Full marks a baseline snapshot: the receiver discards any previous
	// state for this producer and replaces it with Entries.
	Full bool
	// Entries are the changed (or, when Full, all) objects.
	Entries []TreeEntry
	// Removed lists object paths that existed at the previous snapshot
	// but are gone now (meaningless when Full: a baseline replaces all).
	Removed []string
	// compressWire selects the compressed wire frame for this state's
	// gob encoding — a per-connection transport choice (see
	// TreeState.SetWireCompression), never part of the content.
	compressWire bool
	// policy makes the choice adaptively per frame when compressWire is
	// not forcing (see TreeState.SetCompressionPolicy).
	policy *CompressionPolicy
}

// SetWireCompression selects the compressed (version 2) wire frame for
// this state's gob encoding — the forced override.
func (d *DeltaState) SetWireCompression(on bool) { d.compressWire = on }

// SetCompressionPolicy hands the frame-version choice to an adaptive
// per-connection policy (no-op while SetWireCompression forces).
func (d *DeltaState) SetCompressionPolicy(p *CompressionPolicy) { d.policy = p }

// Delta emits the objects touched since the previous Delta/FullDelta call
// and clears their dirty bits. The first snapshot of a tree is a full
// baseline. The returned state is a deep copy; mutating the tree
// afterwards does not affect it.
func (t *Tree) Delta() (*DeltaState, error) {
	if t.snapped == nil {
		return t.FullDelta()
	}
	d := &DeltaState{}
	seen := make(map[string]struct{}, len(t.snapped))
	var firstErr error
	// Dirty bits are cleared only after the whole walk succeeds: clearing
	// as we go would lose the already-walked objects' updates from every
	// future delta if a later object fails to serialize.
	var snapshotted []Dirtyable
	t.Walk(func(path string, obj Object) {
		if firstErr != nil {
			return
		}
		seen[path] = struct{}{}
		_, known := t.snapped[path]
		dt, tracks := obj.(Dirtyable)
		if known && tracks && !dt.Dirty() {
			return
		}
		st, err := StateOf(obj)
		if err != nil {
			firstErr = fmt.Errorf("aida: %q: %w", path, err)
			return
		}
		d.Entries = append(d.Entries, TreeEntry{Path: path, Object: st})
		if tracks {
			snapshotted = append(snapshotted, dt)
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	for _, dt := range snapshotted {
		dt.ClearDirty()
	}
	for path := range t.snapped {
		if _, ok := seen[path]; !ok {
			d.Removed = append(d.Removed, path)
		}
	}
	sort.Strings(d.Removed)
	t.snapped = seen
	return d, nil
}

// FullDelta emits a full baseline snapshot (every object, Full set),
// clears all dirty bits and resets the removal bookkeeping. Producers use
// it for the first publish, after rewind, and when a receiver reports a
// sequence gap.
func (t *Tree) FullDelta() (*DeltaState, error) {
	d := &DeltaState{Full: true}
	seen := make(map[string]struct{})
	var firstErr error
	var snapshotted []Dirtyable
	t.Walk(func(path string, obj Object) {
		if firstErr != nil {
			return
		}
		seen[path] = struct{}{}
		st, err := StateOf(obj)
		if err != nil {
			firstErr = fmt.Errorf("aida: %q: %w", path, err)
			return
		}
		d.Entries = append(d.Entries, TreeEntry{Path: path, Object: st})
		if dt, ok := obj.(Dirtyable); ok {
			snapshotted = append(snapshotted, dt)
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	for _, dt := range snapshotted {
		dt.ClearDirty()
	}
	t.snapped = seen
	return d, nil
}

// Restore rebuilds a tree from a baseline delta. Non-full deltas cannot
// stand alone; apply them to an existing tree instead.
func (d *DeltaState) Restore() (*Tree, error) {
	if !d.Full {
		return nil, fmt.Errorf("aida: cannot restore a non-baseline delta")
	}
	t := NewTree()
	for _, e := range d.Entries {
		obj, err := e.Object.Restore()
		if err != nil {
			return nil, fmt.Errorf("aida: restoring %q: %w", e.Path, err)
		}
		if err := t.PutAt(e.Path, obj); err != nil {
			return nil, err
		}
	}
	return t, nil
}
