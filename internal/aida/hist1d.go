package aida

import (
	"fmt"
	"math"
)

// binStat is the per-bin accumulator for weighted fills.
type binStat struct {
	entries int64
	sumW    float64 // height
	sumW2   float64 // error² source
	sumWX   float64 // for the in-bin weighted mean
}

func (b *binStat) add(o binStat) {
	b.entries += o.entries
	b.sumW += o.sumW
	b.sumW2 += o.sumW2
	b.sumWX += o.sumWX
}

// Histogram1D is a fixed-binning one-dimensional weighted histogram
// (AIDA IHistogram1D). The sample analyses of the paper — dijet invariant
// mass in the Higgs search — fill these on every worker.
type Histogram1D struct {
	name string
	ann  *Annotation
	axis Axis
	// bins[0] = underflow, bins[1..n] in-range, bins[n+1] = overflow.
	bins []binStat
	// In-range moment sums for Mean/Rms.
	sumW, sumWX, sumWX2 float64
	// dirty marks content mutations since the last ClearDirty (delta
	// snapshots — see Tree.Delta).
	dirty bool
}

// NewHistogram1D creates a histogram with nBins over [lo, hi).
func NewHistogram1D(name, title string, nBins int, lo, hi float64) *Histogram1D {
	h := &Histogram1D{
		name: name,
		ann:  NewAnnotation(),
		axis: NewAxis(nBins, lo, hi),
		bins: make([]binStat, nBins+2),
		// Born dirty: a fresh object stored over an already-snapshotted
		// path must still appear in the next delta.
		dirty: true,
	}
	if title != "" {
		h.ann.Set(TitleKey, title)
	}
	return h
}

// Name implements Object.
func (h *Histogram1D) Name() string { return h.name }

// Kind implements Object.
func (h *Histogram1D) Kind() string { return "Histogram1D" }

// Annotations implements Object.
func (h *Histogram1D) Annotations() *Annotation { return h.ann }

// Title returns the display title (falls back to the name).
func (h *Histogram1D) Title() string {
	if t := h.ann.Get(TitleKey); t != "" {
		return t
	}
	return h.name
}

// Axis returns the binning.
func (h *Histogram1D) Axis() Axis { return h.axis }

// Fill adds x with weight 1.
func (h *Histogram1D) Fill(x float64) { h.FillW(x, 1) }

// FillW adds x with weight w. NaN coordinates are counted as overflow so
// they remain visible in entry totals instead of disappearing.
func (h *Histogram1D) FillW(x, w float64) {
	h.dirty = true
	idx := h.axis.CoordToIndex(x)
	if math.IsNaN(x) {
		idx = Overflow
	}
	slot := h.slot(idx)
	h.bins[slot].entries++
	h.bins[slot].sumW += w
	h.bins[slot].sumW2 += w * w
	h.bins[slot].sumWX += w * x
	if idx >= 0 {
		h.sumW += w
		h.sumWX += w * x
		h.sumWX2 += w * x * x
	}
}

func (h *Histogram1D) slot(idx int) int {
	switch idx {
	case Underflow:
		return 0
	case Overflow:
		return len(h.bins) - 1
	default:
		return idx + 1
	}
}

// checkBin panics on out-of-range bin arguments: bin indices come from the
// analysis author's code, and silently clamping would corrupt results.
func (h *Histogram1D) checkBin(i int) int {
	if i == Underflow || i == Overflow {
		return h.slot(i)
	}
	if i < 0 || i >= h.axis.nBins {
		panic(fmt.Sprintf("aida: bin %d out of range [0,%d)", i, h.axis.nBins))
	}
	return i + 1
}

// BinEntries returns the number of fills in bin i
// (i may be Underflow or Overflow).
func (h *Histogram1D) BinEntries(i int) int64 { return h.bins[h.checkBin(i)].entries }

// BinHeight returns the weighted height of bin i.
func (h *Histogram1D) BinHeight(i int) float64 { return h.bins[h.checkBin(i)].sumW }

// BinError returns the Poisson-style error sqrt(Σw²) of bin i.
func (h *Histogram1D) BinError(i int) float64 { return math.Sqrt(h.bins[h.checkBin(i)].sumW2) }

// BinMean returns the weighted mean x within bin i, or the bin center when
// the bin is empty.
func (h *Histogram1D) BinMean(i int) float64 {
	b := h.bins[h.checkBin(i)]
	if b.sumW == 0 {
		if i >= 0 {
			return h.axis.BinCenter(i)
		}
		return math.NaN()
	}
	return b.sumWX / b.sumW
}

// Entries returns the number of in-range fills.
func (h *Histogram1D) Entries() int64 {
	var n int64
	for i := 1; i <= h.axis.nBins; i++ {
		n += h.bins[i].entries
	}
	return n
}

// EntriesCount implements Object.
func (h *Histogram1D) EntriesCount() int64 { return h.Entries() }

// AllEntries includes the flow bins.
func (h *Histogram1D) AllEntries() int64 {
	var n int64
	for i := range h.bins {
		n += h.bins[i].entries
	}
	return n
}

// SumBinHeights returns the total in-range weight.
func (h *Histogram1D) SumBinHeights() float64 { return h.sumW }

// Mean returns the weighted in-range mean.
func (h *Histogram1D) Mean() float64 {
	if h.sumW == 0 {
		return 0
	}
	return h.sumWX / h.sumW
}

// Rms returns the weighted in-range standard deviation.
func (h *Histogram1D) Rms() float64 {
	if h.sumW == 0 {
		return 0
	}
	m := h.Mean()
	v := h.sumWX2/h.sumW - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// MaxBinHeight returns the largest in-range bin height.
func (h *Histogram1D) MaxBinHeight() float64 {
	max := 0.0
	for i := 1; i <= h.axis.nBins; i++ {
		if h.bins[i].sumW > max {
			max = h.bins[i].sumW
		}
	}
	return max
}

// MaxBin returns the index of the highest in-range bin (ties → lowest index).
func (h *Histogram1D) MaxBin() int {
	best, bestH := 0, math.Inf(-1)
	for i := 0; i < h.axis.nBins; i++ {
		if hgt := h.bins[i+1].sumW; hgt > bestH {
			best, bestH = i, hgt
		}
	}
	return best
}

// Reset clears all content, keeping binning and annotations.
func (h *Histogram1D) Reset() {
	h.dirty = true
	for i := range h.bins {
		h.bins[i] = binStat{}
	}
	h.sumW, h.sumWX, h.sumWX2 = 0, 0, 0
}

// Scale multiplies all weights by f (entry counts are unchanged).
func (h *Histogram1D) Scale(f float64) {
	h.dirty = true
	for i := range h.bins {
		h.bins[i].sumW *= f
		h.bins[i].sumW2 *= f * f
		h.bins[i].sumWX *= f
	}
	h.sumW *= f
	h.sumWX *= f
	h.sumWX2 *= f
}

// Clone returns a deep copy (used when snapshotting live histograms).
func (h *Histogram1D) Clone() *Histogram1D {
	c := &Histogram1D{
		name:   h.name,
		ann:    h.ann.clone(),
		axis:   h.axis,
		bins:   make([]binStat, len(h.bins)),
		sumW:   h.sumW,
		sumWX:  h.sumWX,
		sumWX2: h.sumWX2,
		dirty:  h.dirty,
	}
	copy(c.bins, h.bins)
	return c
}

// Dirty implements Dirtyable.
func (h *Histogram1D) Dirty() bool { return h.dirty }

// ClearDirty implements Dirtyable.
func (h *Histogram1D) ClearDirty() { h.dirty = false }

// MergeFrom implements Mergeable: adds src (a *Histogram1D with identical
// binning) into h. This is the operation the AIDA manager performs when
// collecting intermediate results from the engines (§3.7).
func (h *Histogram1D) MergeFrom(src Object) error {
	o, ok := src.(*Histogram1D)
	if !ok || !h.axis.Equal(o.axis) {
		return errIncompatible("merge", h, src)
	}
	h.dirty = true
	for i := range h.bins {
		h.bins[i].add(o.bins[i])
	}
	h.sumW += o.sumW
	h.sumWX += o.sumWX
	h.sumWX2 += o.sumWX2
	mergeAnnotations(h.ann, o.ann)
	return nil
}
