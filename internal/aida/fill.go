// Bulk fill loops: FillN on the fillable AIDA objects. A high-rate
// analysis (the all-pairs mass loop of the Higgs search, the event
// generator's QA spectrum) calls Fill millions of times per second;
// FillN amortizes the per-call overhead — dirty-bit store, axis method
// call, NaN test, flow-bin switch — across a whole batch by hoisting
// the axis bounds into registers and branching once per sample.
//
// Every arithmetic expression here matches the scalar path operation
// for operation, in the same order (Go never re-associates float
// expressions), so FillN is bit-for-bit identical to the equivalent
// sequence of FillW calls — the property fill_test.go pins down. That
// exactness is what lets bulk-filling workers merge against
// scalar-filling workers without last-ulp divergence.
package aida

// FillN adds every xs[i] with weight ws[i]; a nil ws fills with weight
// 1. It panics when ws is non-nil with a different length, like a
// mismatched slice index would. Equivalent to calling FillW per
// sample (including the NaN-counts-as-overflow rule), one bounds
// computation per sample, no per-call overhead.
func (h *Histogram1D) FillN(xs, ws []float64) {
	if len(xs) == 0 {
		return
	}
	if ws != nil && len(ws) != len(xs) {
		panic("aida: FillN weight slice length mismatch")
	}
	h.dirty = true
	n := h.axis.nBins
	lo, hi := h.axis.lo, h.axis.hi
	bins := h.bins
	over := len(bins) - 1
	for i, x := range xs {
		w := 1.0
		if ws != nil {
			w = ws[i]
		}
		var slot int
		// NaN fails both comparisons and lands in overflow — the same
		// outcome FillW reaches via its explicit IsNaN test.
		if x >= lo && x < hi {
			idx := int(float64(n) * (x - lo) / (hi - lo))
			if idx >= n { // guard float rounding at the upper edge
				idx = n - 1
			}
			slot = idx + 1
			h.sumW += w
			h.sumWX += w * x
			h.sumWX2 += w * x * x
		} else if x < lo {
			slot = 0
		} else {
			slot = over
		}
		b := &bins[slot]
		b.entries++
		b.sumW += w
		b.sumW2 += w * w
		b.sumWX += w * x
	}
}

// FillN adds every (xs[i], ys[i]) with weight ws[i]; a nil ws fills
// with weight 1. Panics on mismatched slice lengths. Equivalent to
// calling FillW per sample with one bounds pass per axis.
func (h *Histogram2D) FillN(xs, ys, ws []float64) {
	if len(xs) == 0 {
		return
	}
	if len(ys) != len(xs) || (ws != nil && len(ws) != len(xs)) {
		panic("aida: FillN slice length mismatch")
	}
	h.dirty = true
	nx, ny := h.xAxis.nBins, h.yAxis.nBins
	xlo, xhi := h.xAxis.lo, h.xAxis.hi
	ylo, yhi := h.yAxis.lo, h.yAxis.hi
	stride := ny + 2
	cells := h.cells
	for i, x := range xs {
		y := ys[i]
		w := 1.0
		if ws != nil {
			w = ws[i]
		}
		sx, inX := 0, false
		if x >= xlo && x < xhi {
			ix := int(float64(nx) * (x - xlo) / (xhi - xlo))
			if ix >= nx {
				ix = nx - 1
			}
			sx, inX = ix+1, true
		} else if !(x < xlo) { // overflow or NaN
			sx = nx + 1
		}
		sy, inY := 0, false
		if y >= ylo && y < yhi {
			iy := int(float64(ny) * (y - ylo) / (yhi - ylo))
			if iy >= ny {
				iy = ny - 1
			}
			sy, inY = iy+1, true
		} else if !(y < ylo) {
			sy = ny + 1
		}
		c := &cells[sx*stride+sy]
		c.entries++
		c.sumW += w
		c.sumW2 += w * w
		c.sumWX += w * x
		c.sumWY += w * y
		if inX && inY {
			h.sumW += w
			h.sumWX += w * x
			h.sumWY += w * y
			h.sumWX2 += w * x * x
			h.sumWY2 += w * y * y
		}
	}
}

// FillN adds every sample (xs[i], ys[i]) with weight ws[i]; a nil ws
// fills with weight 1. Panics on mismatched slice lengths. Equivalent
// to calling FillW per sample.
func (p *Profile1D) FillN(xs, ys, ws []float64) {
	if len(xs) == 0 {
		return
	}
	if len(ys) != len(xs) || (ws != nil && len(ws) != len(xs)) {
		panic("aida: FillN slice length mismatch")
	}
	p.dirty = true
	n := p.axis.nBins
	lo, hi := p.axis.lo, p.axis.hi
	bins := p.bins
	over := len(bins) - 1
	for i, x := range xs {
		y := ys[i]
		w := 1.0
		if ws != nil {
			w = ws[i]
		}
		var slot int
		if x >= lo && x < hi {
			idx := int(float64(n) * (x - lo) / (hi - lo))
			if idx >= n {
				idx = n - 1
			}
			slot = idx + 1
		} else if !(x < lo) { // overflow or NaN
			slot = over
		}
		b := &bins[slot]
		b.entries++
		b.sumW += w
		b.sumWY += w * y
		b.sumWY2 += w * y * y
	}
}
