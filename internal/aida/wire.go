package aida

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync"
)

// This file defines the exported "state" representation of every AIDA
// object and its wire encoding. States have only exported fields and
// convert cleanly to and from the XML interchange format.
//
// On the RMI snapshot path (engines → AIDA manager → polling clients)
// states are NOT encoded by gob's reflection walk: ObjectState, TreeState
// and DeltaState implement GobEncoder/GobDecoder backed by a compact
// hand-rolled binary codec (below), so a snapshot crosses the wire
// as one length-prefixed binary blob in the same little-endian style as
// events.Marshal. That removes per-field reflection and type metadata and
// cuts both bytes and allocations on the hot publish/poll cycle.

// KV is one annotation entry.
type KV struct{ Key, Value string }

func annState(a *Annotation) []KV {
	out := make([]KV, 0, a.Len())
	for _, k := range a.Keys() {
		out = append(out, KV{k, a.Get(k)})
	}
	return out
}

func annFromState(kvs []KV) *Annotation {
	a := NewAnnotation()
	for _, kv := range kvs {
		a.Set(kv.Key, kv.Value)
	}
	return a
}

// BinState mirrors binStat with exported fields.
type BinState struct {
	Entries int64
	SumW    float64
	SumW2   float64
	SumWX   float64
}

// H1DState is the serializable form of Histogram1D.
type H1DState struct {
	Name                string
	Ann                 []KV
	Bins                int
	Lo, Hi              float64
	Data                []BinState // underflow, in-range…, overflow
	SumW, SumWX, SumWX2 float64
}

// State extracts the histogram's serializable state.
func (h *Histogram1D) State() *H1DState {
	s := &H1DState{
		Name: h.name, Ann: annState(h.ann),
		Bins: h.axis.nBins, Lo: h.axis.lo, Hi: h.axis.hi,
		Data: make([]BinState, len(h.bins)),
		SumW: h.sumW, SumWX: h.sumWX, SumWX2: h.sumWX2,
	}
	for i, b := range h.bins {
		s.Data[i] = BinState{b.entries, b.sumW, b.sumW2, b.sumWX}
	}
	return s
}

// Restore rebuilds a histogram from state.
func (s *H1DState) Restore() (*Histogram1D, error) {
	if s.Bins <= 0 || len(s.Data) != s.Bins+2 {
		return nil, fmt.Errorf("aida: bad H1D state for %q: %d bins, %d data", s.Name, s.Bins, len(s.Data))
	}
	h := NewHistogram1D(s.Name, "", s.Bins, s.Lo, s.Hi)
	h.ann = annFromState(s.Ann)
	for i, b := range s.Data {
		h.bins[i] = binStat{b.Entries, b.SumW, b.SumW2, b.SumWX}
	}
	h.sumW, h.sumWX, h.sumWX2 = s.SumW, s.SumWX, s.SumWX2
	return h, nil
}

// Bin2State mirrors binStat2 with exported fields.
type Bin2State struct {
	Entries      int64
	SumW         float64
	SumW2        float64
	SumWX, SumWY float64
}

// H2DState is the serializable form of Histogram2D.
type H2DState struct {
	Name     string
	Ann      []KV
	NX       int
	XLo, XHi float64
	NY       int
	YLo, YHi float64
	Cells    []Bin2State
	SumW     float64
	SumWX    float64
	SumWY    float64
	SumWX2   float64
	SumWY2   float64
}

// State extracts the histogram's serializable state.
func (h *Histogram2D) State() *H2DState {
	s := &H2DState{
		Name: h.name, Ann: annState(h.ann),
		NX: h.xAxis.nBins, XLo: h.xAxis.lo, XHi: h.xAxis.hi,
		NY: h.yAxis.nBins, YLo: h.yAxis.lo, YHi: h.yAxis.hi,
		Cells: make([]Bin2State, len(h.cells)),
		SumW:  h.sumW, SumWX: h.sumWX, SumWY: h.sumWY, SumWX2: h.sumWX2, SumWY2: h.sumWY2,
	}
	for i, c := range h.cells {
		s.Cells[i] = Bin2State{c.entries, c.sumW, c.sumW2, c.sumWX, c.sumWY}
	}
	return s
}

// Restore rebuilds a 2D histogram from state.
func (s *H2DState) Restore() (*Histogram2D, error) {
	if s.NX <= 0 || s.NY <= 0 || len(s.Cells) != (s.NX+2)*(s.NY+2) {
		return nil, fmt.Errorf("aida: bad H2D state for %q", s.Name)
	}
	h := NewHistogram2D(s.Name, "", s.NX, s.XLo, s.XHi, s.NY, s.YLo, s.YHi)
	h.ann = annFromState(s.Ann)
	for i, c := range s.Cells {
		h.cells[i] = binStat2{c.Entries, c.SumW, c.SumW2, c.SumWX, c.SumWY}
	}
	h.sumW, h.sumWX, h.sumWY, h.sumWX2, h.sumWY2 = s.SumW, s.SumWX, s.SumWY, s.SumWX2, s.SumWY2
	return h, nil
}

// ProfBinState mirrors profBin with exported fields.
type ProfBinState struct {
	Entries int64
	SumW    float64
	SumWY   float64
	SumWY2  float64
}

// P1DState is the serializable form of Profile1D.
type P1DState struct {
	Name   string
	Ann    []KV
	Bins   int
	Lo, Hi float64
	Data   []ProfBinState
}

// State extracts the profile's serializable state.
func (p *Profile1D) State() *P1DState {
	s := &P1DState{
		Name: p.name, Ann: annState(p.ann),
		Bins: p.axis.nBins, Lo: p.axis.lo, Hi: p.axis.hi,
		Data: make([]ProfBinState, len(p.bins)),
	}
	for i, b := range p.bins {
		s.Data[i] = ProfBinState{b.entries, b.sumW, b.sumWY, b.sumWY2}
	}
	return s
}

// Restore rebuilds a profile from state.
func (s *P1DState) Restore() (*Profile1D, error) {
	if s.Bins <= 0 || len(s.Data) != s.Bins+2 {
		return nil, fmt.Errorf("aida: bad P1D state for %q", s.Name)
	}
	p := NewProfile1D(s.Name, "", s.Bins, s.Lo, s.Hi)
	p.ann = annFromState(s.Ann)
	for i, b := range s.Data {
		p.bins[i] = profBin{b.Entries, b.SumW, b.SumWY, b.SumWY2}
	}
	return p, nil
}

// C1DState is the serializable form of Cloud1D.
type C1DState struct {
	Name                string
	Ann                 []KV
	Limit               int
	Xs, Ws              []float64
	SumW, SumWX, SumWX2 float64
	Lo, Hi              float64
	Converted           *H1DState // non-nil once binned
}

// State extracts the cloud's serializable state.
func (c *Cloud1D) State() *C1DState {
	s := &C1DState{
		Name: c.name, Ann: annState(c.ann), Limit: c.limit,
		Xs: append([]float64(nil), c.xs...), Ws: append([]float64(nil), c.ws...),
		SumW: c.sumW, SumWX: c.sumWX, SumWX2: c.sumWX2, Lo: c.lo, Hi: c.hi,
	}
	if c.converted != nil {
		s.Converted = c.converted.State()
	}
	return s
}

// Restore rebuilds a cloud from state.
func (s *C1DState) Restore() (*Cloud1D, error) {
	c := NewCloud1DLimit(s.Name, "", s.Limit)
	c.ann = annFromState(s.Ann)
	c.xs = append([]float64(nil), s.Xs...)
	c.ws = append([]float64(nil), s.Ws...)
	c.sumW, c.sumWX, c.sumWX2 = s.SumW, s.SumWX, s.SumWX2
	c.lo, c.hi = s.Lo, s.Hi
	if len(c.xs) == 0 && math.IsInf(c.lo, 0) {
		c.lo, c.hi = math.Inf(1), math.Inf(-1)
	}
	if s.Converted != nil {
		h, err := s.Converted.Restore()
		if err != nil {
			return nil, err
		}
		c.converted = h
	}
	return c, nil
}

// C2DState is the serializable form of Cloud2D.
type C2DState struct {
	Name               string
	Ann                []KV
	Limit              int
	Xs, Ys, Ws         []float64
	XLo, XHi, YLo, YHi float64
	Converted          *H2DState
}

// State extracts the cloud's serializable state.
func (c *Cloud2D) State() *C2DState {
	s := &C2DState{
		Name: c.name, Ann: annState(c.ann), Limit: c.limit,
		Xs: append([]float64(nil), c.xs...), Ys: append([]float64(nil), c.ys...),
		Ws:  append([]float64(nil), c.ws...),
		XLo: c.xlo, XHi: c.xhi, YLo: c.ylo, YHi: c.yhi,
	}
	if c.converted != nil {
		s.Converted = c.converted.State()
	}
	return s
}

// Restore rebuilds a 2D cloud from state.
func (s *C2DState) Restore() (*Cloud2D, error) {
	c := NewCloud2D(s.Name, "")
	c.ann = annFromState(s.Ann)
	c.limit = s.Limit
	c.xs = append([]float64(nil), s.Xs...)
	c.ys = append([]float64(nil), s.Ys...)
	c.ws = append([]float64(nil), s.Ws...)
	c.xlo, c.xhi, c.ylo, c.yhi = s.XLo, s.XHi, s.YLo, s.YHi
	if s.Converted != nil {
		h, err := s.Converted.Restore()
		if err != nil {
			return nil, err
		}
		c.converted = h
	}
	return c, nil
}

// DPSState is the serializable form of DataPointSet.
type DPSState struct {
	Name   string
	Ann    []KV
	Dim    int
	Points []DataPoint
}

// State extracts the point set's serializable state.
func (d *DataPointSet) State() *DPSState {
	s := &DPSState{Name: d.name, Ann: annState(d.ann), Dim: d.dim}
	s.Points = make([]DataPoint, len(d.points))
	for i, p := range d.points {
		s.Points[i].Coords = append([]Measurement(nil), p.Coords...)
	}
	return s
}

// Restore rebuilds a point set from state.
func (s *DPSState) Restore() (*DataPointSet, error) {
	if s.Dim <= 0 {
		return nil, fmt.Errorf("aida: bad DPS state for %q: dim %d", s.Name, s.Dim)
	}
	d := NewDataPointSet(s.Name, "", s.Dim)
	d.ann = annFromState(s.Ann)
	for _, p := range s.Points {
		if err := d.AppendPoint(p); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// ObjectState is the tagged union shipped on the wire.
type ObjectState struct {
	H1 *H1DState
	H2 *H2DState
	P1 *P1DState
	C1 *C1DState
	C2 *C2DState
	DP *DPSState
}

// StateOf wraps any known object into an ObjectState.
func StateOf(obj Object) (ObjectState, error) {
	switch o := obj.(type) {
	case *Histogram1D:
		return ObjectState{H1: o.State()}, nil
	case *Histogram2D:
		return ObjectState{H2: o.State()}, nil
	case *Profile1D:
		return ObjectState{P1: o.State()}, nil
	case *Cloud1D:
		return ObjectState{C1: o.State()}, nil
	case *Cloud2D:
		return ObjectState{C2: o.State()}, nil
	case *DataPointSet:
		return ObjectState{DP: o.State()}, nil
	default:
		return ObjectState{}, fmt.Errorf("aida: cannot serialize kind %s", obj.Kind())
	}
}

// Restore rebuilds the contained object.
func (s ObjectState) Restore() (Object, error) {
	switch {
	case s.H1 != nil:
		return s.H1.Restore()
	case s.H2 != nil:
		return s.H2.Restore()
	case s.P1 != nil:
		return s.P1.Restore()
	case s.C1 != nil:
		return s.C1.Restore()
	case s.C2 != nil:
		return s.C2.Restore()
	case s.DP != nil:
		return s.DP.Restore()
	default:
		return nil, fmt.Errorf("aida: empty object state")
	}
}

// TreeState is a whole tree on the wire.
type TreeState struct {
	Entries []TreeEntry
	// compressWire selects the compressed (version 2) frame for this
	// state's gob encoding. It is a per-connection transport choice, not
	// content: decoders accept either frame version, and the flag does
	// not itself cross the wire.
	compressWire bool
	// policy, when set (and compressWire is not forcing), makes the
	// frame-version choice adaptively per frame from payload size and
	// the connection's observed compression ratio.
	policy *CompressionPolicy
}

// SetWireCompression selects the compressed (version 2) wire frame for
// this state's gob encoding — the forced per-connection override (WAN
// workers dialed with compression on). SetCompressionPolicy is the
// adaptive alternative.
func (st *TreeState) SetWireCompression(on bool) { st.compressWire = on }

// SetCompressionPolicy hands the frame-version choice to an adaptive
// per-connection policy (no-op while SetWireCompression forces).
func (st *TreeState) SetCompressionPolicy(p *CompressionPolicy) { st.policy = p }

// TreeEntry is one object with its full path.
type TreeEntry struct {
	Path   string
	Object ObjectState
}

// State extracts the whole tree.
func (t *Tree) State() (*TreeState, error) {
	st := &TreeState{}
	var firstErr error
	t.Walk(func(path string, obj Object) {
		if firstErr != nil {
			return
		}
		os, err := StateOf(obj)
		if err != nil {
			firstErr = fmt.Errorf("aida: %q: %w", path, err)
			return
		}
		st.Entries = append(st.Entries, TreeEntry{Path: path, Object: os})
	})
	return st, firstErr
}

// Restore rebuilds a tree from state.
func (st *TreeState) Restore() (*Tree, error) {
	t := NewTree()
	for _, e := range st.Entries {
		obj, err := e.Object.Restore()
		if err != nil {
			return nil, fmt.Errorf("aida: restoring %q: %w", e.Path, err)
		}
		if err := t.PutAt(e.Path, obj); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ------------------------------------------------------------------
// Binary wire codec.
//
// Frame layout (all integers are uvarint unless noted; floats are IEEE
// 754 bits byte-reversed then uvarint-encoded so common values like small
// integers and halves take 1–3 bytes; strings and byte counts are
// uvarint-length-prefixed):
//
//	TreeState:  ver(1B) count entry*
//	DeltaState: ver(1B) flags(1B: bit0=Full) count entry* nRemoved path*
//	entry:      path object
//	object:     tag(1B) payload          (tags: 1=H1 2=H2 3=P1 4=C1 5=C2 6=DP)
//
// Signed int64 fields use zigzag varints.
//
// The version byte selects the frame encoding. Version 1 is the plain
// layout above. Version 2 is the same body DEFLATE-compressed, preceded
// by the uncompressed body length:
//
//	flate frame: ver(1B)=2 rawLen(uvarint) deflate(body)
//
// Producers choose the version per connection (WAN workers compress,
// LAN workers don't); decoders accept both transparently, so the two can
// coexist mid-rollout.

const (
	wireVersion      = 1 // plain frame
	wireVersionFlate = 2 // DEFLATE-compressed body (the WAN snapshot option)
)

// Object tags in wire frames.
const (
	wireH1 = 1 + iota
	wireH2
	wireP1
	wireC1
	wireC2
	wireDP
)

// encPool recycles encode scratch buffers so repeated snapshot encodes
// don't pay slice-growth reallocations.
var encPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendI64(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

func appendF64(b []byte, f float64) []byte {
	return binary.AppendUvarint(b, bits.ReverseBytes64(math.Float64bits(f)))
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendF64s(b []byte, fs []float64) []byte {
	b = appendUvarint(b, uint64(len(fs)))
	for _, f := range fs {
		b = appendF64(b, f)
	}
	return b
}

func appendKVs(b []byte, kvs []KV) []byte {
	b = appendUvarint(b, uint64(len(kvs)))
	for _, kv := range kvs {
		b = appendString(b, kv.Key)
		b = appendString(b, kv.Value)
	}
	return b
}

// wireReader is a cursor over an encoded frame; the first malformed read
// latches err and turns every subsequent read into a cheap no-op.
type wireReader struct {
	b   []byte
	err error
}

var errWireShort = fmt.Errorf("aida: truncated wire frame")

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = errWireShort
	}
}

func (r *wireReader) byte() byte {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

// count reads a collection length and bounds it against the remaining
// frame so a corrupt header can't trigger a huge allocation.
func (r *wireReader) count(minElemSize int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if minElemSize < 1 {
		minElemSize = 1
	}
	if v > uint64(len(r.b)/minElemSize) {
		r.fail()
		return 0
	}
	return int(v)
}

func (r *wireReader) i64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *wireReader) f64() float64 {
	return math.Float64frombits(bits.ReverseBytes64(r.uvarint()))
}

func (r *wireReader) str() string {
	n := r.count(1)
	if r.err != nil {
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *wireReader) f64s() []float64 {
	n := r.count(1)
	if r.err != nil || n == 0 {
		// State() builds these with append(nil, ...), so empty is nil.
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

func (r *wireReader) kvs() []KV {
	n := r.count(2)
	if r.err != nil {
		return nil
	}
	// annState always returns a non-nil slice; mirror that so decoded
	// states compare deep-equal to freshly extracted ones.
	out := make([]KV, n)
	for i := range out {
		out[i].Key = r.str()
		out[i].Value = r.str()
	}
	return out
}

func appendH1D(b []byte, s *H1DState) []byte {
	b = appendString(b, s.Name)
	b = appendKVs(b, s.Ann)
	b = appendUvarint(b, uint64(s.Bins))
	b = appendF64(b, s.Lo)
	b = appendF64(b, s.Hi)
	b = appendUvarint(b, uint64(len(s.Data)))
	for _, d := range s.Data {
		b = appendI64(b, d.Entries)
		b = appendF64(b, d.SumW)
		b = appendF64(b, d.SumW2)
		b = appendF64(b, d.SumWX)
	}
	b = appendF64(b, s.SumW)
	b = appendF64(b, s.SumWX)
	return appendF64(b, s.SumWX2)
}

func (r *wireReader) h1d() *H1DState {
	s := &H1DState{Name: r.str(), Ann: r.kvs(), Bins: int(r.uvarint()), Lo: r.f64(), Hi: r.f64()}
	n := r.count(4) // 4 varints, 1B each minimum
	if r.err != nil {
		return s
	}
	s.Data = make([]BinState, n)
	for i := range s.Data {
		s.Data[i] = BinState{r.i64(), r.f64(), r.f64(), r.f64()}
	}
	s.SumW, s.SumWX, s.SumWX2 = r.f64(), r.f64(), r.f64()
	return s
}

func appendH2D(b []byte, s *H2DState) []byte {
	b = appendString(b, s.Name)
	b = appendKVs(b, s.Ann)
	b = appendUvarint(b, uint64(s.NX))
	b = appendF64(b, s.XLo)
	b = appendF64(b, s.XHi)
	b = appendUvarint(b, uint64(s.NY))
	b = appendF64(b, s.YLo)
	b = appendF64(b, s.YHi)
	b = appendUvarint(b, uint64(len(s.Cells)))
	for _, c := range s.Cells {
		b = appendI64(b, c.Entries)
		b = appendF64(b, c.SumW)
		b = appendF64(b, c.SumW2)
		b = appendF64(b, c.SumWX)
		b = appendF64(b, c.SumWY)
	}
	b = appendF64(b, s.SumW)
	b = appendF64(b, s.SumWX)
	b = appendF64(b, s.SumWY)
	b = appendF64(b, s.SumWX2)
	return appendF64(b, s.SumWY2)
}

func (r *wireReader) h2d() *H2DState {
	s := &H2DState{Name: r.str(), Ann: r.kvs()}
	s.NX, s.XLo, s.XHi = int(r.uvarint()), r.f64(), r.f64()
	s.NY, s.YLo, s.YHi = int(r.uvarint()), r.f64(), r.f64()
	n := r.count(5) // 5 varints, 1B each minimum
	if r.err != nil {
		return s
	}
	s.Cells = make([]Bin2State, n)
	for i := range s.Cells {
		s.Cells[i] = Bin2State{r.i64(), r.f64(), r.f64(), r.f64(), r.f64()}
	}
	s.SumW, s.SumWX, s.SumWY = r.f64(), r.f64(), r.f64()
	s.SumWX2, s.SumWY2 = r.f64(), r.f64()
	return s
}

func appendP1D(b []byte, s *P1DState) []byte {
	b = appendString(b, s.Name)
	b = appendKVs(b, s.Ann)
	b = appendUvarint(b, uint64(s.Bins))
	b = appendF64(b, s.Lo)
	b = appendF64(b, s.Hi)
	b = appendUvarint(b, uint64(len(s.Data)))
	for _, d := range s.Data {
		b = appendI64(b, d.Entries)
		b = appendF64(b, d.SumW)
		b = appendF64(b, d.SumWY)
		b = appendF64(b, d.SumWY2)
	}
	return b
}

func (r *wireReader) p1d() *P1DState {
	s := &P1DState{Name: r.str(), Ann: r.kvs(), Bins: int(r.uvarint()), Lo: r.f64(), Hi: r.f64()}
	n := r.count(4)
	if r.err != nil {
		return s
	}
	s.Data = make([]ProfBinState, n)
	for i := range s.Data {
		s.Data[i] = ProfBinState{r.i64(), r.f64(), r.f64(), r.f64()}
	}
	return s
}

func appendC1D(b []byte, s *C1DState) []byte {
	b = appendString(b, s.Name)
	b = appendKVs(b, s.Ann)
	b = appendI64(b, int64(s.Limit))
	b = appendF64s(b, s.Xs)
	b = appendF64s(b, s.Ws)
	b = appendF64(b, s.SumW)
	b = appendF64(b, s.SumWX)
	b = appendF64(b, s.SumWX2)
	b = appendF64(b, s.Lo)
	b = appendF64(b, s.Hi)
	if s.Converted == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	return appendH1D(b, s.Converted)
}

func (r *wireReader) c1d() *C1DState {
	s := &C1DState{Name: r.str(), Ann: r.kvs(), Limit: int(r.i64())}
	s.Xs, s.Ws = r.f64s(), r.f64s()
	s.SumW, s.SumWX, s.SumWX2 = r.f64(), r.f64(), r.f64()
	s.Lo, s.Hi = r.f64(), r.f64()
	if r.byte() != 0 {
		s.Converted = r.h1d()
	}
	return s
}

func appendC2D(b []byte, s *C2DState) []byte {
	b = appendString(b, s.Name)
	b = appendKVs(b, s.Ann)
	b = appendI64(b, int64(s.Limit))
	b = appendF64s(b, s.Xs)
	b = appendF64s(b, s.Ys)
	b = appendF64s(b, s.Ws)
	b = appendF64(b, s.XLo)
	b = appendF64(b, s.XHi)
	b = appendF64(b, s.YLo)
	b = appendF64(b, s.YHi)
	if s.Converted == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	return appendH2D(b, s.Converted)
}

func (r *wireReader) c2d() *C2DState {
	s := &C2DState{Name: r.str(), Ann: r.kvs(), Limit: int(r.i64())}
	s.Xs, s.Ys, s.Ws = r.f64s(), r.f64s(), r.f64s()
	s.XLo, s.XHi, s.YLo, s.YHi = r.f64(), r.f64(), r.f64(), r.f64()
	if r.byte() != 0 {
		s.Converted = r.h2d()
	}
	return s
}

func appendDPS(b []byte, s *DPSState) []byte {
	b = appendString(b, s.Name)
	b = appendKVs(b, s.Ann)
	b = appendUvarint(b, uint64(s.Dim))
	b = appendUvarint(b, uint64(len(s.Points)))
	for _, p := range s.Points {
		b = appendUvarint(b, uint64(len(p.Coords)))
		for _, c := range p.Coords {
			b = appendF64(b, c.Value)
			b = appendF64(b, c.ErrorPlus)
			b = appendF64(b, c.ErrorMinus)
		}
	}
	return b
}

func (r *wireReader) dps() *DPSState {
	s := &DPSState{Name: r.str(), Ann: r.kvs(), Dim: int(r.uvarint())}
	n := r.count(1)
	if r.err != nil {
		return s
	}
	s.Points = make([]DataPoint, n)
	for i := range s.Points {
		nc := r.count(3)
		if r.err != nil {
			return s
		}
		s.Points[i].Coords = make([]Measurement, nc)
		for j := range s.Points[i].Coords {
			s.Points[i].Coords[j] = Measurement{r.f64(), r.f64(), r.f64()}
		}
	}
	return s
}

// AppendObjectState appends s's binary encoding to dst.
func AppendObjectState(dst []byte, s *ObjectState) ([]byte, error) {
	switch {
	case s.H1 != nil:
		return appendH1D(append(dst, wireH1), s.H1), nil
	case s.H2 != nil:
		return appendH2D(append(dst, wireH2), s.H2), nil
	case s.P1 != nil:
		return appendP1D(append(dst, wireP1), s.P1), nil
	case s.C1 != nil:
		return appendC1D(append(dst, wireC1), s.C1), nil
	case s.C2 != nil:
		return appendC2D(append(dst, wireC2), s.C2), nil
	case s.DP != nil:
		return appendDPS(append(dst, wireDP), s.DP), nil
	default:
		return dst, fmt.Errorf("aida: encoding empty object state")
	}
}

func (r *wireReader) objectState() ObjectState {
	switch tag := r.byte(); tag {
	case wireH1:
		return ObjectState{H1: r.h1d()}
	case wireH2:
		return ObjectState{H2: r.h2d()}
	case wireP1:
		return ObjectState{P1: r.p1d()}
	case wireC1:
		return ObjectState{C1: r.c1d()}
	case wireC2:
		return ObjectState{C2: r.c2d()}
	case wireDP:
		return ObjectState{DP: r.dps()}
	default:
		if r.err == nil {
			r.err = fmt.Errorf("aida: unknown wire object tag %d", tag)
		}
		return ObjectState{}
	}
}

func appendEntries(dst []byte, entries []TreeEntry) ([]byte, error) {
	dst = appendUvarint(dst, uint64(len(entries)))
	var err error
	for i := range entries {
		dst = appendString(dst, entries[i].Path)
		if dst, err = AppendObjectState(dst, &entries[i].Object); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

func (r *wireReader) entries() []TreeEntry {
	n := r.count(2)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]TreeEntry, n)
	for i := range out {
		out[i].Path = r.str()
		out[i].Object = r.objectState()
		if r.err != nil {
			return out
		}
	}
	return out
}

// AppendTreeState appends st's binary frame to dst.
func AppendTreeState(dst []byte, st *TreeState) ([]byte, error) {
	return appendEntries(append(dst, wireVersion), st.Entries)
}

// AppendTreeStateFlate appends st as a compressed (version 2) frame.
func AppendTreeStateFlate(dst []byte, st *TreeState) ([]byte, error) {
	return appendFlateFrame(dst, func(b []byte) ([]byte, error) {
		return appendEntries(b, st.Entries)
	})
}

// DecodeTreeState parses a frame produced by AppendTreeState or
// AppendTreeStateFlate.
func DecodeTreeState(b []byte) (*TreeState, error) {
	body, err := openFrame(b, "tree")
	if err != nil {
		return nil, err
	}
	r := &wireReader{b: body}
	st := &TreeState{Entries: r.entries()}
	if r.err != nil {
		return nil, r.err
	}
	return st, nil
}

func appendDeltaBody(dst []byte, d *DeltaState) ([]byte, error) {
	var flags byte
	if d.Full {
		flags |= 1
	}
	dst = append(dst, flags)
	var err error
	if dst, err = appendEntries(dst, d.Entries); err != nil {
		return dst, err
	}
	dst = appendUvarint(dst, uint64(len(d.Removed)))
	for _, p := range d.Removed {
		dst = appendString(dst, p)
	}
	return dst, nil
}

// AppendDeltaState appends d's binary frame to dst.
func AppendDeltaState(dst []byte, d *DeltaState) ([]byte, error) {
	return appendDeltaBody(append(dst, wireVersion), d)
}

// AppendDeltaStateFlate appends d as a compressed (version 2) frame —
// what a WAN-deployed worker's transport puts on the wire when snapshot
// bytes dominate the link.
func AppendDeltaStateFlate(dst []byte, d *DeltaState) ([]byte, error) {
	return appendFlateFrame(dst, func(b []byte) ([]byte, error) {
		return appendDeltaBody(b, d)
	})
}

// DecodeDeltaState parses a frame produced by AppendDeltaState or
// AppendDeltaStateFlate.
func DecodeDeltaState(b []byte) (*DeltaState, error) {
	body, err := openFrame(b, "delta")
	if err != nil {
		return nil, err
	}
	r := &wireReader{b: body}
	d := &DeltaState{Full: r.byte()&1 != 0, Entries: r.entries()}
	if n := r.count(1); r.err == nil && n > 0 {
		d.Removed = make([]string, n)
		for i := range d.Removed {
			d.Removed[i] = r.str()
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return d, nil
}

// flateWriterPool recycles compressors: flate.NewWriter allocates large
// internal tables, far more than a snapshot encode itself.
var flateWriterPool = sync.Pool{
	New: func() any {
		w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return w
	},
}

// flateReaderPool recycles decompressors via flate.Resetter.
var flateReaderPool = sync.Pool{
	New: func() any { return flate.NewReader(bytes.NewReader(nil)) },
}

// sliceWriter adapts an append-style byte slice to io.Writer for the
// compressor.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// appendFlateRaw appends a version-2 frame (raw length + DEFLATE of the
// body) carrying raw to dst.
func appendFlateRaw(dst, raw []byte) ([]byte, error) {
	dst = append(dst, wireVersionFlate)
	dst = appendUvarint(dst, uint64(len(raw)))
	sw := &sliceWriter{b: dst}
	fw := flateWriterPool.Get().(*flate.Writer)
	fw.Reset(sw)
	_, werr := fw.Write(raw)
	cerr := fw.Close()
	flateWriterPool.Put(fw)
	if werr != nil {
		return sw.b, werr
	}
	return sw.b, cerr
}

// appendFlateFrame encodes body into pooled scratch, then appends a
// version-2 frame of it to dst.
func appendFlateFrame(dst []byte, body func([]byte) ([]byte, error)) ([]byte, error) {
	bp := encPool.Get().(*[]byte)
	raw, err := body((*bp)[:0])
	if err != nil {
		*bp = raw
		putEncBuf(bp)
		return dst, err
	}
	dst, err = appendFlateRaw(dst, raw)
	*bp = raw
	putEncBuf(bp)
	return dst, err
}

// appendPolicyFrame appends either a plain version-1 frame or a
// compressed version-2 frame of body to dst, per the policy's per-frame
// choice; achieved ratios feed back into the policy so later frames
// learn from this stream. The body is encoded straight into dst — the
// usual (plain) outcome costs no extra copy; only the compressed branch
// stages the raw bytes through scratch to re-emit them deflated.
func appendPolicyFrame(dst []byte, p *CompressionPolicy, body func([]byte) ([]byte, error)) ([]byte, error) {
	mark := len(dst)
	dst = append(dst, wireVersion)
	dst, err := body(dst)
	if err != nil {
		return dst[:mark], err
	}
	raw := dst[mark+1:]
	if !p.shouldCompress(len(raw)) {
		return dst, nil
	}
	bp := encPool.Get().(*[]byte)
	scratch := append((*bp)[:0], raw...)
	dst, err = appendFlateRaw(dst[:mark], scratch)
	*bp = scratch
	putEncBuf(bp)
	if err != nil {
		return dst, err
	}
	p.observe(len(raw), len(dst)-mark)
	return dst, nil
}

// openFrame validates the leading version byte and returns the frame
// body, inflating compressed frames. kind names the frame in errors.
func openFrame(b []byte, kind string) ([]byte, error) {
	if len(b) == 0 {
		return nil, errWireShort
	}
	body := b[1:]
	switch b[0] {
	case wireVersion:
		return body, nil
	case wireVersionFlate:
		r := &wireReader{b: body}
		n := r.uvarint()
		if r.err != nil {
			return nil, r.err
		}
		// DEFLATE expands at most ~1032x; a declared raw size beyond that
		// bound marks a corrupt header and must not drive an allocation.
		if n > uint64(len(r.b))*1040+64 {
			return nil, fmt.Errorf("aida: %s flate frame declares %d raw bytes from %d compressed", kind, n, len(r.b))
		}
		raw := make([]byte, n)
		fr := flateReaderPool.Get().(io.ReadCloser)
		err := fr.(flate.Resetter).Reset(bytes.NewReader(r.b), nil)
		if err == nil {
			_, err = io.ReadFull(fr, raw)
		}
		if err == nil {
			// The stream must end exactly at the declared length.
			var one [1]byte
			if m, _ := fr.Read(one[:]); m != 0 {
				err = fmt.Errorf("aida: %s flate frame longer than declared", kind)
			}
		}
		fr.Close()
		flateReaderPool.Put(fr)
		if err != nil {
			return nil, fmt.Errorf("aida: inflating %s frame: %w", kind, err)
		}
		return raw, nil
	default:
		return nil, fmt.Errorf("aida: unsupported %s wire version %d", kind, b[0])
	}
}

// encodePooled runs fn against a pooled scratch buffer and returns an
// exact-size copy (the copy is handed to gob, which owns its result).
func encodePooled(fn func([]byte) ([]byte, error)) ([]byte, error) {
	bp := encPool.Get().(*[]byte)
	buf, err := fn((*bp)[:0])
	if err == nil {
		out := make([]byte, len(buf))
		copy(out, buf)
		*bp = buf
		putEncBuf(bp)
		return out, nil
	}
	*bp = buf
	putEncBuf(bp)
	return nil, err
}

// GobEncode implements gob.GobEncoder via the binary codec. Value
// receiver: the RMI client encodes args boxed in an interface, which gob
// cannot address, and gob rejects pointer-only GobEncoders there.
func (st TreeState) GobEncode() ([]byte, error) {
	if st.compressWire {
		return encodePooled(func(b []byte) ([]byte, error) { return AppendTreeStateFlate(b, &st) })
	}
	if st.policy != nil {
		return encodePooled(func(b []byte) ([]byte, error) {
			return appendPolicyFrame(b, st.policy, func(b []byte) ([]byte, error) {
				return appendEntries(b, st.Entries)
			})
		})
	}
	return encodePooled(func(b []byte) ([]byte, error) { return AppendTreeState(b, &st) })
}

// GobDecode implements gob.GobDecoder.
func (st *TreeState) GobDecode(b []byte) error {
	dec, err := DecodeTreeState(b)
	if err != nil {
		return err
	}
	*st = *dec
	return nil
}

// GobEncode implements gob.GobEncoder via the binary codec (value
// receiver for the same addressability reason as TreeState).
func (d DeltaState) GobEncode() ([]byte, error) {
	if d.compressWire {
		return encodePooled(func(b []byte) ([]byte, error) { return AppendDeltaStateFlate(b, &d) })
	}
	if d.policy != nil {
		return encodePooled(func(b []byte) ([]byte, error) {
			return appendPolicyFrame(b, d.policy, func(b []byte) ([]byte, error) {
				return appendDeltaBody(b, &d)
			})
		})
	}
	return encodePooled(func(b []byte) ([]byte, error) { return AppendDeltaState(b, &d) })
}

// GobDecode implements gob.GobDecoder.
func (d *DeltaState) GobDecode(b []byte) error {
	dec, err := DecodeDeltaState(b)
	if err != nil {
		return err
	}
	*d = *dec
	return nil
}

// GobEncode implements gob.GobEncoder via the binary codec (used when an
// ObjectState travels outside a TreeState/DeltaState, e.g. PollReply
// entries).
func (s ObjectState) GobEncode() ([]byte, error) {
	return encodePooled(func(b []byte) ([]byte, error) { return AppendObjectState(b, &s) })
}

// GobDecode implements gob.GobDecoder.
func (s *ObjectState) GobDecode(b []byte) error {
	dec, err := DecodeObjectFrame(b)
	if err != nil {
		return err
	}
	*s = dec
	return nil
}

// DecodeObjectFrame parses a single object frame (tag + payload) — the
// form produced by AppendObjectState / ObjectState.GobEncode and cached
// by the merge manager's poll encoder.
func DecodeObjectFrame(b []byte) (ObjectState, error) {
	r := &wireReader{b: b}
	s := r.objectState()
	if r.err != nil {
		return ObjectState{}, r.err
	}
	return s, nil
}

// ObjectFrame is a single object's pre-encoded wire frame (tag +
// payload) — the unit the merge manager's poll cache stores so one
// encode serves every polling client. Its gob representation is the
// frame itself, so a cached frame crosses RMI without re-encoding. The
// layout is identical to ObjectState's gob encoding, so frames and
// states interconvert freely.
type ObjectFrame []byte

// EncodeObjectFrame encodes s as a standalone object frame.
func EncodeObjectFrame(s *ObjectState) (ObjectFrame, error) {
	b, err := encodePooled(func(b []byte) ([]byte, error) { return AppendObjectState(b, s) })
	if err != nil {
		return nil, err
	}
	return ObjectFrame(b), nil
}

// Decode parses the frame back into an ObjectState.
func (f ObjectFrame) Decode() (ObjectState, error) { return DecodeObjectFrame(f) }

// Restore decodes the frame and rebuilds the live object.
func (f ObjectFrame) Restore() (Object, error) {
	s, err := f.Decode()
	if err != nil {
		return nil, err
	}
	return s.Restore()
}

// GobEncode returns the frame bytes verbatim — the frame is already
// encoded, which is the whole point of caching it.
func (f ObjectFrame) GobEncode() ([]byte, error) { return f, nil }

// GobDecode copies the received frame. With frame pooling on (the
// default) the copy lands in a recycled buffer from the decode free
// list — the receiver owns it and hands it back via Release once the
// frame is restored, making warm poll decodes allocation-free. The
// unpooled ablation baseline (SetFramePooling(false)) allocates per
// frame, as before.
func (f *ObjectFrame) GobDecode(b []byte) error {
	if !framePooling {
		*f = append(ObjectFrame(nil), b...)
		return nil
	}
	buf := frameBufs.get(len(b))
	copy(buf, b)
	*f = ObjectFrame(buf)
	return nil
}

// EncodeTree gob-encodes the tree to w.
func EncodeTree(w io.Writer, t *Tree) error {
	st, err := t.State()
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(st)
}

// DecodeTree gob-decodes a tree from r.
func DecodeTree(r io.Reader) (*Tree, error) {
	var st TreeState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, err
	}
	return st.Restore()
}
