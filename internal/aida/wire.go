package aida

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
)

// This file defines the exported "state" representation of every AIDA
// object. States have only exported fields so they travel over gob (the
// RMI snapshot path from engines to the AIDA manager) and convert cleanly
// to and from the XML interchange format.

// KV is one annotation entry.
type KV struct{ Key, Value string }

func annState(a *Annotation) []KV {
	out := make([]KV, 0, a.Len())
	for _, k := range a.Keys() {
		out = append(out, KV{k, a.Get(k)})
	}
	return out
}

func annFromState(kvs []KV) *Annotation {
	a := NewAnnotation()
	for _, kv := range kvs {
		a.Set(kv.Key, kv.Value)
	}
	return a
}

// BinState mirrors binStat with exported fields.
type BinState struct {
	Entries int64
	SumW    float64
	SumW2   float64
	SumWX   float64
}

// H1DState is the serializable form of Histogram1D.
type H1DState struct {
	Name                string
	Ann                 []KV
	Bins                int
	Lo, Hi              float64
	Data                []BinState // underflow, in-range…, overflow
	SumW, SumWX, SumWX2 float64
}

// State extracts the histogram's serializable state.
func (h *Histogram1D) State() *H1DState {
	s := &H1DState{
		Name: h.name, Ann: annState(h.ann),
		Bins: h.axis.nBins, Lo: h.axis.lo, Hi: h.axis.hi,
		Data: make([]BinState, len(h.bins)),
		SumW: h.sumW, SumWX: h.sumWX, SumWX2: h.sumWX2,
	}
	for i, b := range h.bins {
		s.Data[i] = BinState{b.entries, b.sumW, b.sumW2, b.sumWX}
	}
	return s
}

// Restore rebuilds a histogram from state.
func (s *H1DState) Restore() (*Histogram1D, error) {
	if s.Bins <= 0 || len(s.Data) != s.Bins+2 {
		return nil, fmt.Errorf("aida: bad H1D state for %q: %d bins, %d data", s.Name, s.Bins, len(s.Data))
	}
	h := NewHistogram1D(s.Name, "", s.Bins, s.Lo, s.Hi)
	h.ann = annFromState(s.Ann)
	for i, b := range s.Data {
		h.bins[i] = binStat{b.Entries, b.SumW, b.SumW2, b.SumWX}
	}
	h.sumW, h.sumWX, h.sumWX2 = s.SumW, s.SumWX, s.SumWX2
	return h, nil
}

// Bin2State mirrors binStat2 with exported fields.
type Bin2State struct {
	Entries      int64
	SumW         float64
	SumW2        float64
	SumWX, SumWY float64
}

// H2DState is the serializable form of Histogram2D.
type H2DState struct {
	Name     string
	Ann      []KV
	NX       int
	XLo, XHi float64
	NY       int
	YLo, YHi float64
	Cells    []Bin2State
	SumW     float64
	SumWX    float64
	SumWY    float64
	SumWX2   float64
	SumWY2   float64
}

// State extracts the histogram's serializable state.
func (h *Histogram2D) State() *H2DState {
	s := &H2DState{
		Name: h.name, Ann: annState(h.ann),
		NX: h.xAxis.nBins, XLo: h.xAxis.lo, XHi: h.xAxis.hi,
		NY: h.yAxis.nBins, YLo: h.yAxis.lo, YHi: h.yAxis.hi,
		Cells: make([]Bin2State, len(h.cells)),
		SumW:  h.sumW, SumWX: h.sumWX, SumWY: h.sumWY, SumWX2: h.sumWX2, SumWY2: h.sumWY2,
	}
	for i, c := range h.cells {
		s.Cells[i] = Bin2State{c.entries, c.sumW, c.sumW2, c.sumWX, c.sumWY}
	}
	return s
}

// Restore rebuilds a 2D histogram from state.
func (s *H2DState) Restore() (*Histogram2D, error) {
	if s.NX <= 0 || s.NY <= 0 || len(s.Cells) != (s.NX+2)*(s.NY+2) {
		return nil, fmt.Errorf("aida: bad H2D state for %q", s.Name)
	}
	h := NewHistogram2D(s.Name, "", s.NX, s.XLo, s.XHi, s.NY, s.YLo, s.YHi)
	h.ann = annFromState(s.Ann)
	for i, c := range s.Cells {
		h.cells[i] = binStat2{c.Entries, c.SumW, c.SumW2, c.SumWX, c.SumWY}
	}
	h.sumW, h.sumWX, h.sumWY, h.sumWX2, h.sumWY2 = s.SumW, s.SumWX, s.SumWY, s.SumWX2, s.SumWY2
	return h, nil
}

// ProfBinState mirrors profBin with exported fields.
type ProfBinState struct {
	Entries int64
	SumW    float64
	SumWY   float64
	SumWY2  float64
}

// P1DState is the serializable form of Profile1D.
type P1DState struct {
	Name   string
	Ann    []KV
	Bins   int
	Lo, Hi float64
	Data   []ProfBinState
}

// State extracts the profile's serializable state.
func (p *Profile1D) State() *P1DState {
	s := &P1DState{
		Name: p.name, Ann: annState(p.ann),
		Bins: p.axis.nBins, Lo: p.axis.lo, Hi: p.axis.hi,
		Data: make([]ProfBinState, len(p.bins)),
	}
	for i, b := range p.bins {
		s.Data[i] = ProfBinState{b.entries, b.sumW, b.sumWY, b.sumWY2}
	}
	return s
}

// Restore rebuilds a profile from state.
func (s *P1DState) Restore() (*Profile1D, error) {
	if s.Bins <= 0 || len(s.Data) != s.Bins+2 {
		return nil, fmt.Errorf("aida: bad P1D state for %q", s.Name)
	}
	p := NewProfile1D(s.Name, "", s.Bins, s.Lo, s.Hi)
	p.ann = annFromState(s.Ann)
	for i, b := range s.Data {
		p.bins[i] = profBin{b.Entries, b.SumW, b.SumWY, b.SumWY2}
	}
	return p, nil
}

// C1DState is the serializable form of Cloud1D.
type C1DState struct {
	Name                string
	Ann                 []KV
	Limit               int
	Xs, Ws              []float64
	SumW, SumWX, SumWX2 float64
	Lo, Hi              float64
	Converted           *H1DState // non-nil once binned
}

// State extracts the cloud's serializable state.
func (c *Cloud1D) State() *C1DState {
	s := &C1DState{
		Name: c.name, Ann: annState(c.ann), Limit: c.limit,
		Xs: append([]float64(nil), c.xs...), Ws: append([]float64(nil), c.ws...),
		SumW: c.sumW, SumWX: c.sumWX, SumWX2: c.sumWX2, Lo: c.lo, Hi: c.hi,
	}
	if c.converted != nil {
		s.Converted = c.converted.State()
	}
	return s
}

// Restore rebuilds a cloud from state.
func (s *C1DState) Restore() (*Cloud1D, error) {
	c := NewCloud1DLimit(s.Name, "", s.Limit)
	c.ann = annFromState(s.Ann)
	c.xs = append([]float64(nil), s.Xs...)
	c.ws = append([]float64(nil), s.Ws...)
	c.sumW, c.sumWX, c.sumWX2 = s.SumW, s.SumWX, s.SumWX2
	c.lo, c.hi = s.Lo, s.Hi
	if len(c.xs) == 0 && math.IsInf(c.lo, 0) {
		c.lo, c.hi = math.Inf(1), math.Inf(-1)
	}
	if s.Converted != nil {
		h, err := s.Converted.Restore()
		if err != nil {
			return nil, err
		}
		c.converted = h
	}
	return c, nil
}

// C2DState is the serializable form of Cloud2D.
type C2DState struct {
	Name               string
	Ann                []KV
	Limit              int
	Xs, Ys, Ws         []float64
	XLo, XHi, YLo, YHi float64
	Converted          *H2DState
}

// State extracts the cloud's serializable state.
func (c *Cloud2D) State() *C2DState {
	s := &C2DState{
		Name: c.name, Ann: annState(c.ann), Limit: c.limit,
		Xs: append([]float64(nil), c.xs...), Ys: append([]float64(nil), c.ys...),
		Ws:  append([]float64(nil), c.ws...),
		XLo: c.xlo, XHi: c.xhi, YLo: c.ylo, YHi: c.yhi,
	}
	if c.converted != nil {
		s.Converted = c.converted.State()
	}
	return s
}

// Restore rebuilds a 2D cloud from state.
func (s *C2DState) Restore() (*Cloud2D, error) {
	c := NewCloud2D(s.Name, "")
	c.ann = annFromState(s.Ann)
	c.limit = s.Limit
	c.xs = append([]float64(nil), s.Xs...)
	c.ys = append([]float64(nil), s.Ys...)
	c.ws = append([]float64(nil), s.Ws...)
	c.xlo, c.xhi, c.ylo, c.yhi = s.XLo, s.XHi, s.YLo, s.YHi
	if s.Converted != nil {
		h, err := s.Converted.Restore()
		if err != nil {
			return nil, err
		}
		c.converted = h
	}
	return c, nil
}

// DPSState is the serializable form of DataPointSet.
type DPSState struct {
	Name   string
	Ann    []KV
	Dim    int
	Points []DataPoint
}

// State extracts the point set's serializable state.
func (d *DataPointSet) State() *DPSState {
	s := &DPSState{Name: d.name, Ann: annState(d.ann), Dim: d.dim}
	s.Points = make([]DataPoint, len(d.points))
	for i, p := range d.points {
		s.Points[i].Coords = append([]Measurement(nil), p.Coords...)
	}
	return s
}

// Restore rebuilds a point set from state.
func (s *DPSState) Restore() (*DataPointSet, error) {
	if s.Dim <= 0 {
		return nil, fmt.Errorf("aida: bad DPS state for %q: dim %d", s.Name, s.Dim)
	}
	d := NewDataPointSet(s.Name, "", s.Dim)
	d.ann = annFromState(s.Ann)
	for _, p := range s.Points {
		if err := d.AppendPoint(p); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// ObjectState is the tagged union shipped on the wire.
type ObjectState struct {
	H1 *H1DState
	H2 *H2DState
	P1 *P1DState
	C1 *C1DState
	C2 *C2DState
	DP *DPSState
}

// StateOf wraps any known object into an ObjectState.
func StateOf(obj Object) (ObjectState, error) {
	switch o := obj.(type) {
	case *Histogram1D:
		return ObjectState{H1: o.State()}, nil
	case *Histogram2D:
		return ObjectState{H2: o.State()}, nil
	case *Profile1D:
		return ObjectState{P1: o.State()}, nil
	case *Cloud1D:
		return ObjectState{C1: o.State()}, nil
	case *Cloud2D:
		return ObjectState{C2: o.State()}, nil
	case *DataPointSet:
		return ObjectState{DP: o.State()}, nil
	default:
		return ObjectState{}, fmt.Errorf("aida: cannot serialize kind %s", obj.Kind())
	}
}

// Restore rebuilds the contained object.
func (s ObjectState) Restore() (Object, error) {
	switch {
	case s.H1 != nil:
		return s.H1.Restore()
	case s.H2 != nil:
		return s.H2.Restore()
	case s.P1 != nil:
		return s.P1.Restore()
	case s.C1 != nil:
		return s.C1.Restore()
	case s.C2 != nil:
		return s.C2.Restore()
	case s.DP != nil:
		return s.DP.Restore()
	default:
		return nil, fmt.Errorf("aida: empty object state")
	}
}

// TreeState is a whole tree on the wire.
type TreeState struct {
	Entries []TreeEntry
}

// TreeEntry is one object with its full path.
type TreeEntry struct {
	Path   string
	Object ObjectState
}

// State extracts the whole tree.
func (t *Tree) State() (*TreeState, error) {
	st := &TreeState{}
	var firstErr error
	t.Walk(func(path string, obj Object) {
		if firstErr != nil {
			return
		}
		os, err := StateOf(obj)
		if err != nil {
			firstErr = fmt.Errorf("aida: %q: %w", path, err)
			return
		}
		st.Entries = append(st.Entries, TreeEntry{Path: path, Object: os})
	})
	return st, firstErr
}

// Restore rebuilds a tree from state.
func (st *TreeState) Restore() (*Tree, error) {
	t := NewTree()
	for _, e := range st.Entries {
		obj, err := e.Object.Restore()
		if err != nil {
			return nil, fmt.Errorf("aida: restoring %q: %w", e.Path, err)
		}
		if err := t.PutAt(e.Path, obj); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// EncodeTree gob-encodes the tree to w.
func EncodeTree(w io.Writer, t *Tree) error {
	st, err := t.State()
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(st)
}

// DecodeTree gob-decodes a tree from r.
func DecodeTree(r io.Reader) (*Tree, error) {
	var st TreeState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, err
	}
	return st.Restore()
}
