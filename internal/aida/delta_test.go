package aida

import "testing"

func TestFirstDeltaIsFullBaseline(t *testing.T) {
	tr := NewTree()
	h, _ := tr.H1D("/a", "h", "", 10, 0, 10)
	h.Fill(1)
	d, err := tr.Delta()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Full || len(d.Entries) != 1 {
		t.Fatalf("first delta = %+v, want full with 1 entry", d)
	}
}

func TestDeltaCarriesOnlyTouchedObjects(t *testing.T) {
	tr := NewTree()
	h1, _ := tr.H1D("/a", "h1", "", 10, 0, 10)
	h2, _ := tr.H1D("/a", "h2", "", 10, 0, 10)
	h1.Fill(1)
	h2.Fill(2)
	if _, err := tr.Delta(); err != nil {
		t.Fatal(err)
	}
	// Nothing touched → empty delta.
	d, err := tr.Delta()
	if err != nil {
		t.Fatal(err)
	}
	if d.Full || len(d.Entries) != 0 || len(d.Removed) != 0 {
		t.Fatalf("idle delta = %+v, want empty", d)
	}
	// One fill, one new object.
	h1.Fill(3)
	h3, _ := tr.H1D("/b", "h3", "", 5, 0, 5)
	_ = h3 // new objects are included even without fills
	d, err = tr.Delta()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Entries) != 2 {
		t.Fatalf("delta entries = %d, want 2 (touched h1 + new h3)", len(d.Entries))
	}
	paths := map[string]bool{}
	for _, e := range d.Entries {
		paths[e.Path] = true
	}
	if !paths["/a/h1"] || !paths["/b/h3"] {
		t.Fatalf("delta paths = %v", paths)
	}
	// The snapshot is a deep copy: filling after Delta must not change it.
	if d.Entries[0].Object.H1.SumW != tr.Get(d.Entries[0].Path).(*Histogram1D).sumW {
		t.Fatal("unexpected state divergence before mutation")
	}
}

func TestDeltaTracksRemovals(t *testing.T) {
	tr := NewTree()
	tr.H1D("/a", "h1", "", 10, 0, 10)
	tr.H1D("/a/sub", "h2", "", 10, 0, 10)
	if _, err := tr.Delta(); err != nil {
		t.Fatal(err)
	}
	tr.Rm("/a/h1")
	tr.RmDir("/a/sub")
	d, err := tr.Delta()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Removed) != 2 || d.Removed[0] != "/a/h1" || d.Removed[1] != "/a/sub/h2" {
		t.Fatalf("removed = %v", d.Removed)
	}
	// A later delta no longer reports them.
	d, _ = tr.Delta()
	if len(d.Removed) != 0 {
		t.Fatalf("removals reported twice: %v", d.Removed)
	}
}

func TestFullDeltaResetsBookkeeping(t *testing.T) {
	tr := NewTree()
	h, _ := tr.H1D("/a", "h", "", 10, 0, 10)
	h.Fill(1)
	if _, err := tr.Delta(); err != nil {
		t.Fatal(err)
	}
	d, err := tr.FullDelta()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Full || len(d.Entries) != 1 {
		t.Fatalf("full delta = %+v", d)
	}
	// After a baseline, an untouched tree yields an empty delta.
	d, _ = tr.Delta()
	if d.Full || len(d.Entries) != 0 {
		t.Fatalf("post-baseline delta = %+v", d)
	}
}

// TestDeltaSeesReplacedObject: a fresh object stored over an
// already-snapshotted path must appear in the next delta even though it
// was never filled (regression: born-clean objects were skipped, leaving
// receivers with the old object forever).
func TestDeltaSeesReplacedObject(t *testing.T) {
	tr := NewTree()
	h, _ := tr.H1D("/a", "h", "", 10, 0, 10)
	h.Fill(1)
	if _, err := tr.Delta(); err != nil {
		t.Fatal(err)
	}
	tr.Rm("/a/h")
	if _, err := tr.H1D("/a", "h", "", 20, 0, 20); err != nil { // different binning, no fills
		t.Fatal(err)
	}
	d, err := tr.Delta()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Entries) != 1 || d.Entries[0].Object.H1.Bins != 20 {
		t.Fatalf("replacement not in delta: %+v", d)
	}
	if len(d.Removed) != 0 {
		t.Fatalf("replaced path also reported removed: %v", d.Removed)
	}
}

// TestDeltaSeesFillsThroughConvertedCloudHandle: fills through the
// histogram handle Convert/Histogram return must still dirty the cloud.
func TestDeltaSeesFillsThroughConvertedCloudHandle(t *testing.T) {
	tr := NewTree()
	c, _ := tr.C1D("/a", "c", "")
	c.Fill(1)
	h := c.Histogram() // converts; returns the inner histogram
	if _, err := tr.Delta(); err != nil {
		t.Fatal(err)
	}
	h.Fill(2) // bypasses the cloud entirely
	d, err := tr.Delta()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Entries) != 1 || d.Entries[0].Path != "/a/c" {
		t.Fatalf("converted-cloud fill missing from delta: %+v", d)
	}
	// And the clear must reach the inner histogram too.
	d, _ = tr.Delta()
	if len(d.Entries) != 0 {
		t.Fatalf("cloud stayed dirty after snapshot: %+v", d)
	}
}

func TestDeltaRestoreRequiresBaseline(t *testing.T) {
	tr := NewTree()
	tr.H1D("/a", "h", "", 10, 0, 10)
	full, err := tr.FullDelta()
	if err != nil {
		t.Fatal(err)
	}
	back, err := full.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != 1 || back.Get("/a/h") == nil {
		t.Fatal("baseline restore lost objects")
	}
	if _, err := (&DeltaState{}).Restore(); err == nil {
		t.Fatal("non-baseline delta restored")
	}
}
