package aida

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestTreePutGet(t *testing.T) {
	tr := NewTree()
	h, err := tr.H1D("/higgs", "mass", "dijet mass", 50, 0, 250)
	if err != nil {
		t.Fatal(err)
	}
	h.Fill(120)
	got := tr.Get("/higgs/mass")
	if got == nil || got.(*Histogram1D).Entries() != 1 {
		t.Fatal("Get returned wrong object")
	}
	if tr.Get("/nope/mass") != nil {
		t.Fatal("Get on missing path should be nil")
	}
	if tr.Size() != 1 {
		t.Fatalf("Size = %d", tr.Size())
	}
}

func TestTreeLs(t *testing.T) {
	tr := NewTree()
	tr.H1D("/a/b", "h1", "", 10, 0, 1)
	tr.H1D("/a", "h2", "", 10, 0, 1)
	tr.Mkdirs("/a/empty")
	ls, err := tr.Ls("/a")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"b/", "empty/", "h2"}
	if len(ls) != len(want) {
		t.Fatalf("Ls = %v, want %v", ls, want)
	}
	for i := range want {
		if ls[i] != want[i] {
			t.Fatalf("Ls = %v, want %v", ls, want)
		}
	}
	if _, err := tr.Ls("/missing"); err == nil {
		t.Fatal("Ls on missing dir should error")
	}
}

func TestTreePathConflicts(t *testing.T) {
	tr := NewTree()
	if _, err := tr.H1D("/a", "x", "", 10, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Object where a directory is wanted.
	if err := tr.Mkdirs("/a/x/deeper"); err == nil {
		t.Fatal("Mkdirs through an object accepted")
	}
	// Directory where an object is wanted.
	tr.Mkdirs("/a/sub")
	h := NewHistogram1D("sub", "", 10, 0, 1)
	if err := tr.Put("/a", h); err == nil {
		t.Fatal("Put over a directory accepted")
	}
	// Invalid names.
	if err := tr.Put("/a", NewHistogram1D("bad/name", "", 10, 0, 1)); err == nil {
		t.Fatal("slash in object name accepted")
	}
}

func TestTreeRm(t *testing.T) {
	tr := NewTree()
	tr.H1D("/d", "h", "", 10, 0, 1)
	if !tr.Rm("/d/h") {
		t.Fatal("Rm missed existing object")
	}
	if tr.Rm("/d/h") {
		t.Fatal("Rm of removed object reported true")
	}
	tr.H1D("/d/e", "h2", "", 10, 0, 1)
	if !tr.RmDir("/d") {
		t.Fatal("RmDir missed")
	}
	if tr.Size() != 0 {
		t.Fatal("tree not empty after RmDir")
	}
}

func TestTreeWalkOrder(t *testing.T) {
	tr := NewTree()
	tr.H1D("/z", "h", "", 10, 0, 1)
	tr.H1D("/a/b", "h", "", 10, 0, 1)
	tr.H1D("/", "top", "", 10, 0, 1)
	paths := tr.ObjectPaths()
	want := []string{"/a/b/h", "/top", "/z/h"}
	if len(paths) != 3 {
		t.Fatalf("paths = %v", paths)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("paths = %v, want %v", paths, want)
		}
	}
}

func TestTreeMergeFrom(t *testing.T) {
	worker1 := NewTree()
	worker2 := NewTree()
	h1, _ := worker1.H1D("/higgs", "mass", "", 10, 0, 100)
	h2, _ := worker2.H1D("/higgs", "mass", "", 10, 0, 100)
	h1.Fill(55)
	h2.Fill(55)
	h2.Fill(65)
	worker2.H1D("/extra", "only2", "", 5, 0, 5)

	session := NewTree()
	if err := session.MergeFrom(worker1); err != nil {
		t.Fatal(err)
	}
	if err := session.MergeFrom(worker2); err != nil {
		t.Fatal(err)
	}
	m := session.Get("/higgs/mass").(*Histogram1D)
	if m.Entries() != 3 {
		t.Fatalf("merged entries = %d, want 3", m.Entries())
	}
	if session.Get("/extra/only2") == nil {
		t.Fatal("new path not copied in")
	}
	// Merging into the session must not alias worker objects.
	h1.Fill(75)
	if m.Entries() != 3 {
		t.Fatal("session tree aliases worker histogram")
	}
}

func TestTreeMergeKindMismatch(t *testing.T) {
	a := NewTree()
	b := NewTree()
	a.H1D("/x", "o", "", 10, 0, 1)
	b.P1D("/x", "o", "", 10, 0, 1)
	if err := a.MergeFrom(b); err == nil {
		t.Fatal("kind mismatch merged silently")
	}
}

func TestTreeClone(t *testing.T) {
	tr := NewTree()
	h, _ := tr.H1D("/a", "h", "", 10, 0, 10)
	h.Fill(5)
	cp, err := tr.Clone()
	if err != nil {
		t.Fatal(err)
	}
	h.Fill(6)
	if cp.Get("/a/h").(*Histogram1D).Entries() != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestGobRoundTrip(t *testing.T) {
	tr := buildRichTree(t)
	var buf bytes.Buffer
	if err := EncodeTree(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTreesEqual(t, tr, back)
}

func TestXMLRoundTrip(t *testing.T) {
	tr := buildRichTree(t)
	var buf bytes.Buffer
	if err := WriteXML(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<aida") {
		t.Fatal("not AIDA xml")
	}
	back, err := ReadXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTreesEqual(t, tr, back)
}

func TestXMLRejectsGarbage(t *testing.T) {
	if _, err := ReadXML(strings.NewReader("not xml at all")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// buildRichTree creates one of every object kind with content.
func buildRichTree(t *testing.T) *Tree {
	t.Helper()
	tr := NewTree()
	rng := rand.New(rand.NewSource(7))
	h1, _ := tr.H1D("/hists", "h1", "a title", 25, -3, 3)
	for i := 0; i < 300; i++ {
		h1.FillW(rng.NormFloat64(), rng.Float64()+0.5)
	}
	h1.Fill(-99)
	h1.Fill(99)
	h2, _ := tr.H2D("/hists", "h2", "2d", 8, 0, 8, 6, -1, 1)
	for i := 0; i < 200; i++ {
		h2.FillW(rng.Float64()*8, rng.Float64()*2-1, rng.Float64())
	}
	p, _ := tr.P1D("/profiles", "p", "prof", 10, 0, 10)
	for i := 0; i < 150; i++ {
		p.FillW(rng.Float64()*10, rng.NormFloat64()*5+20, 1)
	}
	c, _ := tr.C1D("/clouds", "c", "cloud")
	for i := 0; i < 50; i++ {
		c.Fill(rng.ExpFloat64())
	}
	d, _ := tr.DPS("/series", "t2", "Table 2", 2)
	d.Append(1, 330)
	d.Append(2, 287)
	d.Append(16, 78)
	return tr
}

func assertTreesEqual(t *testing.T, a, b *Tree) {
	t.Helper()
	pa, pb := a.ObjectPaths(), b.ObjectPaths()
	if len(pa) != len(pb) {
		t.Fatalf("path counts differ: %v vs %v", pa, pb)
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("paths differ: %v vs %v", pa, pb)
		}
		oa, ob := a.Get(pa[i]), b.Get(pb[i])
		if oa.Kind() != ob.Kind() {
			t.Fatalf("%s kind %s vs %s", pa[i], oa.Kind(), ob.Kind())
		}
		if oa.EntriesCount() != ob.EntriesCount() {
			t.Fatalf("%s entries %d vs %d", pa[i], oa.EntriesCount(), ob.EntriesCount())
		}
		switch x := oa.(type) {
		case *Histogram1D:
			y := ob.(*Histogram1D)
			if !x.Axis().Equal(y.Axis()) {
				t.Fatalf("%s axis mismatch", pa[i])
			}
			for bin := 0; bin < x.Axis().Bins(); bin++ {
				if !almost(x.BinHeight(bin), y.BinHeight(bin), 1e-9) ||
					!almost(x.BinError(bin), y.BinError(bin), 1e-9) ||
					x.BinEntries(bin) != y.BinEntries(bin) {
					t.Fatalf("%s bin %d differs", pa[i], bin)
				}
			}
			if !almost(x.Mean(), y.Mean(), 1e-9) || !almost(x.Rms(), y.Rms(), 1e-9) {
				t.Fatalf("%s stats differ", pa[i])
			}
			if x.BinEntries(Underflow) != y.BinEntries(Underflow) ||
				x.BinEntries(Overflow) != y.BinEntries(Overflow) {
				t.Fatalf("%s flow bins differ", pa[i])
			}
		case *Histogram2D:
			y := ob.(*Histogram2D)
			for ix := 0; ix < x.XAxis().Bins(); ix++ {
				for iy := 0; iy < x.YAxis().Bins(); iy++ {
					if !almost(x.BinHeight(ix, iy), y.BinHeight(ix, iy), 1e-9) {
						t.Fatalf("%s cell (%d,%d) differs", pa[i], ix, iy)
					}
				}
			}
			if !almost(x.MeanX(), y.MeanX(), 1e-9) || !almost(x.RmsY(), y.RmsY(), 1e-9) {
				t.Fatalf("%s 2d stats differ", pa[i])
			}
		case *Profile1D:
			y := ob.(*Profile1D)
			for bin := 0; bin < x.Axis().Bins(); bin++ {
				if !almost(x.BinHeight(bin), y.BinHeight(bin), 1e-9) ||
					!almost(x.BinRms(bin), y.BinRms(bin), 1e-9) {
					t.Fatalf("%s profile bin %d differs", pa[i], bin)
				}
			}
		case *Cloud1D:
			y := ob.(*Cloud1D)
			if !almost(x.Mean(), y.Mean(), 1e-9) || !almost(x.Rms(), y.Rms(), 1e-9) {
				t.Fatalf("%s cloud stats differ", pa[i])
			}
		case *DataPointSet:
			y := ob.(*DataPointSet)
			if x.Size() != y.Size() || x.Dimension() != y.Dimension() {
				t.Fatalf("%s dps shape differs", pa[i])
			}
			for p := 0; p < x.Size(); p++ {
				for c := 0; c < x.Dimension(); c++ {
					if !almost(x.Value(p, c), y.Value(p, c), 1e-12) {
						t.Fatalf("%s dps point %d differs", pa[i], p)
					}
				}
			}
		}
	}
}

func TestRenderH1D(t *testing.T) {
	h := NewHistogram1D("m", "Mass", 5, 0, 5)
	h.Fill(0.5)
	h.Fill(2.5)
	h.Fill(2.6)
	out := RenderH1D(h, RenderOptions{Width: 20})
	if !strings.Contains(out, "Mass") || !strings.Contains(out, "#") {
		t.Fatalf("render output missing content:\n%s", out)
	}
	empty := NewHistogram1D("e", "", 5, 0, 5)
	if !strings.Contains(RenderH1D(empty, RenderOptions{}), "empty") {
		t.Fatal("empty histogram not flagged")
	}
}

func TestRenderTable(t *testing.T) {
	tab := &Table{Title: "Table 2", Columns: []string{"Nodes", "Analysis"}}
	tab.AddRow("1", "330 s")
	tab.AddRow("16", "78 s")
	s := tab.String()
	if !strings.Contains(s, "Nodes") || !strings.Contains(s, "330 s") {
		t.Fatalf("table render:\n%s", s)
	}
}

func TestSVGOutputs(t *testing.T) {
	h := NewHistogram1D("m", "Mass <spectrum>", 20, 0, 10)
	for i := 0; i < 500; i++ {
		h.Fill(float64(i%10) + 0.3)
	}
	var buf bytes.Buffer
	if err := WriteSVGH1D(&buf, h, 640, 400); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "<svg") || !strings.Contains(s, "&lt;spectrum&gt;") {
		t.Fatal("svg output malformed or unescaped")
	}
	buf.Reset()
	err := WriteSVGSeries(&buf, "Analysis vs N", "nodes", "seconds",
		[]XYSeries{{Name: "grid", X: []float64{1, 2, 4}, Y: []float64{330, 287, 190}}}, 640, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "polyline") {
		t.Fatal("series svg missing polyline")
	}
	buf.Reset()
	surf := Surface{Name: "grid", Xs: []float64{1, 10, 100}, Ys: []float64{1, 4, 16},
		Z: [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}}
	if err := WriteSVGHeatmap(&buf, "Figure 5", "MB", "nodes", surf, 640, 400); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rect") {
		t.Fatal("heatmap svg missing cells")
	}
}
