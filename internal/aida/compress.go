package aida

import "sync"

// CompressionPolicy makes the per-frame wire-compression choice for one
// connection. The static per-connection switch (SetWireCompression)
// forced every frame through DEFLATE or none of them; the policy instead
// decides frame by frame from the payload size and the ratio recently
// observed on this connection: tiny frames never amortize the flate
// tables, and a stream whose content barely shrinks (already-compact
// sparse histograms, pre-compressed blobs) is pure CPU loss.
//
// Rules, in order:
//   - Force on (the WithCompressedFrames / CompressSnapshots override):
//     always compress.
//   - Payload below MinSize: never compress.
//   - Recent ratio at or above SkipRatio: skip — but re-probe with a real
//     compression every probeEvery skipped-for-ratio frames, so a stream
//     whose content becomes compressible again is noticed.
//   - Otherwise compress and fold the achieved ratio into the estimate.
//
// The zero value is not usable; construct with NewCompressionPolicy.
// Safe for concurrent use.
type CompressionPolicy struct {
	mu sync.Mutex
	// force compresses every frame regardless of size or ratio — the
	// retained per-connection override.
	force bool
	// minSize is the smallest payload worth compressing (bytes).
	minSize int
	// skipRatio is the compressed/raw ratio at which flate stops paying.
	skipRatio float64
	// ratio is an exponential moving average of achieved compressed/raw
	// ratios; haveRatio distinguishes "no sample yet" from a true zero.
	ratio     float64
	haveRatio bool
	// ratioSkips counts consecutive frames skipped because of the ratio
	// rule; every probeEvery of them one frame is compressed anyway to
	// refresh the estimate.
	ratioSkips int
	compressed int64
	skipped    int64
}

// Adaptive-compression defaults: frames under ~1 KiB never amortize the
// flate setup, and a stream shrinking less than 10% is not worth the CPU.
const (
	defaultCompressMinSize   = 1024
	defaultCompressSkipRatio = 0.9
	compressProbeEvery       = 32
	compressRatioAlpha       = 0.5 // EWMA weight of the newest sample
)

// NewCompressionPolicy returns a policy with the default thresholds.
func NewCompressionPolicy() *CompressionPolicy {
	return &CompressionPolicy{minSize: defaultCompressMinSize, skipRatio: defaultCompressSkipRatio}
}

// SetForce selects the always-compress override (the legacy static
// per-connection choice). Turning it off returns to adaptive mode.
func (p *CompressionPolicy) SetForce(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.force = on
}

// Forced reports whether the always-compress override is on.
func (p *CompressionPolicy) Forced() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.force
}

// Stats reports how many frames the policy compressed and skipped.
func (p *CompressionPolicy) Stats() (compressed, skipped int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.compressed, p.skipped
}

// Ratio returns the current compressed/raw estimate (1 before any
// sample: assume incompressible until proven otherwise is the wrong
// default for histogram payloads, so an unknown ratio does not skip).
func (p *CompressionPolicy) Ratio() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.haveRatio {
		return 1
	}
	return p.ratio
}

// shouldCompress decides one frame and records the decision.
func (p *CompressionPolicy) shouldCompress(rawLen int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.force {
		p.compressed++
		return true
	}
	if rawLen < p.minSize {
		p.skipped++
		return false
	}
	if p.haveRatio && p.ratio >= p.skipRatio {
		if p.ratioSkips < compressProbeEvery {
			p.ratioSkips++
			p.skipped++
			return false
		}
		// Probe: compress this one to refresh the estimate.
	}
	p.ratioSkips = 0
	p.compressed++
	return true
}

// observe folds one achieved compression outcome into the estimate.
func (p *CompressionPolicy) observe(rawLen, compressedLen int) {
	if rawLen <= 0 {
		return
	}
	r := float64(compressedLen) / float64(rawLen)
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.haveRatio {
		p.ratio = r
		p.haveRatio = true
		return
	}
	p.ratio = (1-compressRatioAlpha)*p.ratio + compressRatioAlpha*r
}
