package aida

import (
	"fmt"
	"math"
)

// binStat2 is the per-cell accumulator for 2D fills.
type binStat2 struct {
	entries int64
	sumW    float64
	sumW2   float64
	sumWX   float64
	sumWY   float64
}

func (b *binStat2) add(o binStat2) {
	b.entries += o.entries
	b.sumW += o.sumW
	b.sumW2 += o.sumW2
	b.sumWX += o.sumWX
	b.sumWY += o.sumWY
}

// Histogram2D is a fixed-binning two-dimensional weighted histogram
// (AIDA IHistogram2D), e.g. energy vs polar angle in the physics examples
// or the (X, N) timing surface of Figure 5.
type Histogram2D struct {
	name  string
	ann   *Annotation
	xAxis Axis
	yAxis Axis
	// Row-major (nx+2)×(ny+2) grid; index 0 rows/cols are underflow,
	// nx+1/ny+1 are overflow.
	cells  []binStat2
	sumW   float64
	sumWX  float64
	sumWY  float64
	sumWX2 float64
	sumWY2 float64
	dirty  bool // content mutations since the last ClearDirty
}

// NewHistogram2D creates a 2D histogram.
func NewHistogram2D(name, title string, nx int, xlo, xhi float64, ny int, ylo, yhi float64) *Histogram2D {
	h := &Histogram2D{
		name:  name,
		ann:   NewAnnotation(),
		xAxis: NewAxis(nx, xlo, xhi),
		yAxis: NewAxis(ny, ylo, yhi),
		cells: make([]binStat2, (nx+2)*(ny+2)),
		dirty: true, // born dirty — see NewHistogram1D
	}
	if title != "" {
		h.ann.Set(TitleKey, title)
	}
	return h
}

// Name implements Object.
func (h *Histogram2D) Name() string { return h.name }

// Kind implements Object.
func (h *Histogram2D) Kind() string { return "Histogram2D" }

// Annotations implements Object.
func (h *Histogram2D) Annotations() *Annotation { return h.ann }

// Title returns the display title (falls back to the name).
func (h *Histogram2D) Title() string {
	if t := h.ann.Get(TitleKey); t != "" {
		return t
	}
	return h.name
}

// XAxis returns the x binning.
func (h *Histogram2D) XAxis() Axis { return h.xAxis }

// YAxis returns the y binning.
func (h *Histogram2D) YAxis() Axis { return h.yAxis }

func (h *Histogram2D) slot(ix, iy int) int {
	sx := 0
	switch ix {
	case Underflow:
		sx = 0
	case Overflow:
		sx = h.xAxis.nBins + 1
	default:
		sx = ix + 1
	}
	sy := 0
	switch iy {
	case Underflow:
		sy = 0
	case Overflow:
		sy = h.yAxis.nBins + 1
	default:
		sy = iy + 1
	}
	return sx*(h.yAxis.nBins+2) + sy
}

func (h *Histogram2D) checkXY(ix, iy int) (int, int) {
	okX := ix == Underflow || ix == Overflow || (ix >= 0 && ix < h.xAxis.nBins)
	okY := iy == Underflow || iy == Overflow || (iy >= 0 && iy < h.yAxis.nBins)
	if !okX || !okY {
		panic(fmt.Sprintf("aida: bin (%d,%d) out of range (%d,%d)", ix, iy, h.xAxis.nBins, h.yAxis.nBins))
	}
	return ix, iy
}

// Fill adds (x, y) with weight 1.
func (h *Histogram2D) Fill(x, y float64) { h.FillW(x, y, 1) }

// FillW adds (x, y) with weight w.
func (h *Histogram2D) FillW(x, y, w float64) {
	h.dirty = true
	ix := h.xAxis.CoordToIndex(x)
	iy := h.yAxis.CoordToIndex(y)
	if math.IsNaN(x) {
		ix = Overflow
	}
	if math.IsNaN(y) {
		iy = Overflow
	}
	c := &h.cells[h.slot(ix, iy)]
	c.entries++
	c.sumW += w
	c.sumW2 += w * w
	c.sumWX += w * x
	c.sumWY += w * y
	if ix >= 0 && iy >= 0 {
		h.sumW += w
		h.sumWX += w * x
		h.sumWY += w * y
		h.sumWX2 += w * x * x
		h.sumWY2 += w * y * y
	}
}

// BinEntries returns fills in cell (ix, iy).
func (h *Histogram2D) BinEntries(ix, iy int) int64 {
	h.checkXY(ix, iy)
	return h.cells[h.slot(ix, iy)].entries
}

// BinHeight returns the weighted height of cell (ix, iy).
func (h *Histogram2D) BinHeight(ix, iy int) float64 {
	h.checkXY(ix, iy)
	return h.cells[h.slot(ix, iy)].sumW
}

// BinError returns sqrt(Σw²) for cell (ix, iy).
func (h *Histogram2D) BinError(ix, iy int) float64 {
	h.checkXY(ix, iy)
	return math.Sqrt(h.cells[h.slot(ix, iy)].sumW2)
}

// Entries returns the number of in-range fills.
func (h *Histogram2D) Entries() int64 {
	var n int64
	for ix := 1; ix <= h.xAxis.nBins; ix++ {
		for iy := 1; iy <= h.yAxis.nBins; iy++ {
			n += h.cells[ix*(h.yAxis.nBins+2)+iy].entries
		}
	}
	return n
}

// EntriesCount implements Object.
func (h *Histogram2D) EntriesCount() int64 { return h.Entries() }

// SumBinHeights returns total in-range weight.
func (h *Histogram2D) SumBinHeights() float64 { return h.sumW }

// MeanX returns the weighted in-range mean of x.
func (h *Histogram2D) MeanX() float64 {
	if h.sumW == 0 {
		return 0
	}
	return h.sumWX / h.sumW
}

// MeanY returns the weighted in-range mean of y.
func (h *Histogram2D) MeanY() float64 {
	if h.sumW == 0 {
		return 0
	}
	return h.sumWY / h.sumW
}

// RmsX returns the weighted in-range standard deviation of x.
func (h *Histogram2D) RmsX() float64 {
	if h.sumW == 0 {
		return 0
	}
	m := h.MeanX()
	v := h.sumWX2/h.sumW - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// RmsY returns the weighted in-range standard deviation of y.
func (h *Histogram2D) RmsY() float64 {
	if h.sumW == 0 {
		return 0
	}
	m := h.MeanY()
	v := h.sumWY2/h.sumW - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// MaxBinHeight returns the largest in-range cell height.
func (h *Histogram2D) MaxBinHeight() float64 {
	max := 0.0
	for ix := 1; ix <= h.xAxis.nBins; ix++ {
		for iy := 1; iy <= h.yAxis.nBins; iy++ {
			if v := h.cells[ix*(h.yAxis.nBins+2)+iy].sumW; v > max {
				max = v
			}
		}
	}
	return max
}

// ProjectionX sums over y (in-range only) into a 1D histogram.
func (h *Histogram2D) ProjectionX() *Histogram1D {
	p := NewHistogram1D(h.name+"_px", h.Title()+" (X projection)", h.xAxis.nBins, h.xAxis.lo, h.xAxis.hi)
	for ix := 0; ix < h.xAxis.nBins; ix++ {
		for iy := 0; iy < h.yAxis.nBins; iy++ {
			c := h.cells[h.slot(ix, iy)]
			p.bins[ix+1].entries += c.entries
			p.bins[ix+1].sumW += c.sumW
			p.bins[ix+1].sumW2 += c.sumW2
			p.bins[ix+1].sumWX += c.sumWX
			p.sumW += c.sumW
			p.sumWX += c.sumWX
		}
	}
	return p
}

// ProjectionY sums over x (in-range only) into a 1D histogram.
func (h *Histogram2D) ProjectionY() *Histogram1D {
	p := NewHistogram1D(h.name+"_py", h.Title()+" (Y projection)", h.yAxis.nBins, h.yAxis.lo, h.yAxis.hi)
	for iy := 0; iy < h.yAxis.nBins; iy++ {
		for ix := 0; ix < h.xAxis.nBins; ix++ {
			c := h.cells[h.slot(ix, iy)]
			p.bins[iy+1].entries += c.entries
			p.bins[iy+1].sumW += c.sumW
			p.bins[iy+1].sumW2 += c.sumW2
			p.bins[iy+1].sumWX += c.sumWY
			p.sumW += c.sumW
			p.sumWX += c.sumWY
		}
	}
	return p
}

// Reset clears content.
func (h *Histogram2D) Reset() {
	h.dirty = true
	for i := range h.cells {
		h.cells[i] = binStat2{}
	}
	h.sumW, h.sumWX, h.sumWY, h.sumWX2, h.sumWY2 = 0, 0, 0, 0, 0
}

// Scale multiplies all weights by f.
func (h *Histogram2D) Scale(f float64) {
	h.dirty = true
	for i := range h.cells {
		h.cells[i].sumW *= f
		h.cells[i].sumW2 *= f * f
		h.cells[i].sumWX *= f
		h.cells[i].sumWY *= f
	}
	h.sumW *= f
	h.sumWX *= f
	h.sumWY *= f
	h.sumWX2 *= f
	h.sumWY2 *= f
}

// Clone returns a deep copy.
func (h *Histogram2D) Clone() *Histogram2D {
	c := &Histogram2D{
		name: h.name, ann: h.ann.clone(),
		xAxis: h.xAxis, yAxis: h.yAxis,
		cells: make([]binStat2, len(h.cells)),
		sumW:  h.sumW,
		sumWX: h.sumWX, sumWY: h.sumWY,
		sumWX2: h.sumWX2, sumWY2: h.sumWY2,
		dirty: h.dirty,
	}
	copy(c.cells, h.cells)
	return c
}

// Dirty implements Dirtyable.
func (h *Histogram2D) Dirty() bool { return h.dirty }

// ClearDirty implements Dirtyable.
func (h *Histogram2D) ClearDirty() { h.dirty = false }

// MergeFrom implements Mergeable.
func (h *Histogram2D) MergeFrom(src Object) error {
	o, ok := src.(*Histogram2D)
	if !ok || !h.xAxis.Equal(o.xAxis) || !h.yAxis.Equal(o.yAxis) {
		return errIncompatible("merge", h, src)
	}
	h.dirty = true
	for i := range h.cells {
		h.cells[i].add(o.cells[i])
	}
	h.sumW += o.sumW
	h.sumWX += o.sumWX
	h.sumWY += o.sumWY
	h.sumWX2 += o.sumWX2
	h.sumWY2 += o.sumWY2
	mergeAnnotations(h.ann, o.ann)
	return nil
}
