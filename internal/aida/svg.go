package aida

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// SVG rendering — the "professional-quality visualizations" deliverable of
// the paper's abstract, used to regenerate Figure 5 (time surfaces) and to
// plot merged histograms without a GUI toolkit.

// svgCanvas accumulates SVG elements with a simple coordinate mapper.
type svgCanvas struct {
	b             strings.Builder
	width, height int
}

func newSVG(width, height int) *svgCanvas {
	c := &svgCanvas{width: width, height: height}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	c.rect(0, 0, float64(width), float64(height), "#ffffff", "none")
	return c
}

func (c *svgCanvas) rect(x, y, w, h float64, fill, stroke string) {
	fmt.Fprintf(&c.b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="%s"/>`+"\n", x, y, w, h, fill, stroke)
}

func (c *svgCanvas) line(x1, y1, x2, y2 float64, stroke string, strokeWidth float64) {
	fmt.Fprintf(&c.b, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"/>`+"\n", x1, y1, x2, y2, stroke, strokeWidth)
}

func (c *svgCanvas) text(x, y float64, size int, anchor, s string) {
	fmt.Fprintf(&c.b, `<text x="%.2f" y="%.2f" font-size="%d" font-family="sans-serif" text-anchor="%s">%s</text>`+"\n", x, y, size, anchor, xmlEscape(s))
}

func (c *svgCanvas) polyline(pts [][2]float64, stroke string, strokeWidth float64) {
	var sb strings.Builder
	for i, p := range pts {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%.2f,%.2f", p[0], p[1])
	}
	fmt.Fprintf(&c.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.2f"/>`+"\n", sb.String(), stroke, strokeWidth)
}

func (c *svgCanvas) close() string {
	c.b.WriteString("</svg>\n")
	return c.b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

const (
	plotMarginLeft   = 70.0
	plotMarginRight  = 20.0
	plotMarginTop    = 40.0
	plotMarginBottom = 50.0
)

// WriteSVGH1D renders a 1D histogram as an SVG bar chart.
func WriteSVGH1D(w io.Writer, h *Histogram1D, width, height int) error {
	c := newSVG(width, height)
	px0, px1 := plotMarginLeft, float64(width)-plotMarginRight
	py0, py1 := float64(height)-plotMarginBottom, plotMarginTop
	ax := h.Axis()
	maxH := h.MaxBinHeight()
	if maxH <= 0 {
		maxH = 1
	}
	maxH *= 1.05
	xm := func(x float64) float64 { return px0 + (x-ax.LowerEdge())/(ax.UpperEdge()-ax.LowerEdge())*(px1-px0) }
	ym := func(y float64) float64 { return py0 - y/maxH*(py0-py1) }
	// Frame + title.
	c.rect(px0, py1, px1-px0, py0-py1, "none", "#000000")
	c.text(float64(width)/2, plotMarginTop-14, 15, "middle", h.Title())
	// Bars.
	for i := 0; i < ax.Bins(); i++ {
		v := h.BinHeight(i)
		if v <= 0 {
			continue
		}
		x := xm(ax.BinLowerEdge(i))
		xw := xm(ax.BinUpperEdge(i)) - x
		y := ym(v)
		c.rect(x, y, xw, py0-y, "#4878cf", "#2a4f8f")
	}
	// Ticks.
	for i := 0; i <= 5; i++ {
		fx := ax.LowerEdge() + float64(i)/5*(ax.UpperEdge()-ax.LowerEdge())
		c.line(xm(fx), py0, xm(fx), py0+5, "#000", 1)
		c.text(xm(fx), py0+18, 11, "middle", trimNum(fx))
		fy := float64(i) / 5 * maxH
		c.line(px0-5, ym(fy), px0, ym(fy), "#000", 1)
		c.text(px0-8, ym(fy)+4, 11, "end", trimNum(fy))
	}
	c.text(float64(width)/2, float64(height)-12, 12, "middle",
		fmt.Sprintf("entries=%d  mean=%.4g  rms=%.4g", h.Entries(), h.Mean(), h.Rms()))
	_, err := io.WriteString(w, c.close())
	return err
}

// SeriesStyle names an SVG stroke color per series.
var seriesPalette = []string{"#c8a02a", "#2a50c8", "#c82a2a", "#2ac850", "#8a2ac8", "#2ac8c8"}

// XYSeries is one named polyline for WriteSVGSeries.
type XYSeries struct {
	Name string
	X, Y []float64
}

// WriteSVGSeries renders line series on shared axes — used for the Table 2
// scaling plot and the Figure 5 cross-sections (gold = local, blue = Grid,
// matching the paper's color key).
func WriteSVGSeries(w io.Writer, title, xLabel, yLabel string, series []XYSeries, width, height int) error {
	c := newSVG(width, height)
	px0, px1 := plotMarginLeft, float64(width)-plotMarginRight
	py0, py1 := float64(height)-plotMarginBottom, plotMarginTop
	// Bounds.
	xlo, xhi := math.Inf(1), math.Inf(-1)
	ylo, yhi := 0.0, math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			xlo = math.Min(xlo, s.X[i])
			xhi = math.Max(xhi, s.X[i])
			yhi = math.Max(yhi, s.Y[i])
		}
	}
	if math.IsInf(xlo, 0) || xhi == xlo {
		xlo, xhi = 0, 1
	}
	if math.IsInf(yhi, 0) || yhi <= 0 {
		yhi = 1
	}
	yhi *= 1.05
	xm := func(x float64) float64 { return px0 + (x-xlo)/(xhi-xlo)*(px1-px0) }
	ym := func(y float64) float64 { return py0 - (y-ylo)/(yhi-ylo)*(py0-py1) }
	c.rect(px0, py1, px1-px0, py0-py1, "none", "#000000")
	c.text(float64(width)/2, plotMarginTop-14, 15, "middle", title)
	for i := 0; i <= 5; i++ {
		fx := xlo + float64(i)/5*(xhi-xlo)
		c.line(xm(fx), py0, xm(fx), py0+5, "#000", 1)
		c.text(xm(fx), py0+18, 11, "middle", trimNum(fx))
		fy := ylo + float64(i)/5*(yhi-ylo)
		c.line(px0-5, ym(fy), px0, ym(fy), "#000", 1)
		c.text(px0-8, ym(fy)+4, 11, "end", trimNum(fy))
	}
	c.text(float64(width)/2, float64(height)-12, 12, "middle", xLabel)
	c.text(16, float64(height)/2, 12, "middle", yLabel)
	for si, s := range series {
		color := seriesPalette[si%len(seriesPalette)]
		pts := make([][2]float64, 0, len(s.X))
		for i := range s.X {
			pts = append(pts, [2]float64{xm(s.X[i]), ym(s.Y[i])})
		}
		c.polyline(pts, color, 2)
		c.text(px1-8, py1+16+14*float64(si), 12, "end", s.Name)
		c.line(px1-90, py1+12+14*float64(si), px1-70, py1+12+14*float64(si), color, 2)
	}
	_, err := io.WriteString(w, c.close())
	return err
}

// Surface is a gridded z(x, y) function sampled on the cross product of
// Xs × Ys, for heatmap rendering (the Figure 5 surfaces).
type Surface struct {
	Name string
	Xs   []float64
	Ys   []float64
	Z    [][]float64 // Z[i][j] = z(Xs[i], Ys[j])
}

// WriteSVGHeatmap renders one surface as a colored grid with a scale bar.
func WriteSVGHeatmap(w io.Writer, title, xLabel, yLabel string, s Surface, width, height int) error {
	if len(s.Xs) == 0 || len(s.Ys) == 0 || len(s.Z) != len(s.Xs) {
		return fmt.Errorf("aida: malformed surface %q", s.Name)
	}
	c := newSVG(width, height)
	px0, px1 := plotMarginLeft, float64(width)-plotMarginRight-60
	py0, py1 := float64(height)-plotMarginBottom, plotMarginTop
	zlo, zhi := math.Inf(1), math.Inf(-1)
	for _, row := range s.Z {
		for _, v := range row {
			zlo = math.Min(zlo, v)
			zhi = math.Max(zhi, v)
		}
	}
	if zhi == zlo {
		zhi = zlo + 1
	}
	cw := (px1 - px0) / float64(len(s.Xs))
	ch := (py0 - py1) / float64(len(s.Ys))
	for i := range s.Xs {
		for j := range s.Ys {
			v := (s.Z[i][j] - zlo) / (zhi - zlo)
			c.rect(px0+float64(i)*cw, py0-float64(j+1)*ch, cw+0.5, ch+0.5, heatColor(v), "none")
		}
	}
	c.rect(px0, py1, px1-px0, py0-py1, "none", "#000000")
	c.text(float64(width)/2, plotMarginTop-14, 15, "middle", title)
	c.text((px0+px1)/2, float64(height)-12, 12, "middle", xLabel)
	c.text(16, float64(height)/2, 12, "middle", yLabel)
	// Axis ticks on grid indices.
	for i := 0; i <= 4; i++ {
		xi := int(float64(len(s.Xs)-1) * float64(i) / 4)
		c.text(px0+(float64(xi)+0.5)*cw, py0+18, 11, "middle", trimNum(s.Xs[xi]))
		yi := int(float64(len(s.Ys)-1) * float64(i) / 4)
		c.text(px0-8, py0-(float64(yi)+0.5)*ch+4, 11, "end", trimNum(s.Ys[yi]))
	}
	// Scale bar.
	for k := 0; k < 50; k++ {
		v := float64(k) / 49
		c.rect(px1+20, py0-(py0-py1)*float64(k+1)/50, 16, (py0-py1)/50+0.5, heatColor(v), "none")
	}
	c.text(px1+44, py0, 10, "start", trimNum(zlo))
	c.text(px1+44, py1+10, 10, "start", trimNum(zhi))
	_, err := io.WriteString(w, c.close())
	return err
}

// heatColor maps v∈[0,1] onto a blue→gold gradient (the paper's palette).
func heatColor(v float64) string {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	r := int(40 + 215*v)
	g := int(80 + 120*v)
	b := int(200 - 160*v)
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

func trimNum(v float64) string {
	s := fmt.Sprintf("%.4g", v)
	return s
}
