package aida

import (
	"fmt"
	"math"
)

// profBin accumulates y-statistics within an x bin.
type profBin struct {
	entries int64
	sumW    float64
	sumWY   float64
	sumWY2  float64
}

func (b *profBin) add(o profBin) {
	b.entries += o.entries
	b.sumW += o.sumW
	b.sumWY += o.sumWY
	b.sumWY2 += o.sumWY2
}

// Profile1D records the mean and spread of y as a function of binned x
// (AIDA IProfile1D) — e.g. mean analysis time per event vs event size.
type Profile1D struct {
	name  string
	ann   *Annotation
	axis  Axis
	bins  []profBin // 0 = underflow, n+1 = overflow
	dirty bool      // content mutations since the last ClearDirty
}

// NewProfile1D creates a profile with nBins over [lo, hi).
func NewProfile1D(name, title string, nBins int, lo, hi float64) *Profile1D {
	p := &Profile1D{
		name:  name,
		ann:   NewAnnotation(),
		axis:  NewAxis(nBins, lo, hi),
		bins:  make([]profBin, nBins+2),
		dirty: true, // born dirty — see NewHistogram1D
	}
	if title != "" {
		p.ann.Set(TitleKey, title)
	}
	return p
}

// Name implements Object.
func (p *Profile1D) Name() string { return p.name }

// Kind implements Object.
func (p *Profile1D) Kind() string { return "Profile1D" }

// Annotations implements Object.
func (p *Profile1D) Annotations() *Annotation { return p.ann }

// Title returns the display title (falls back to the name).
func (p *Profile1D) Title() string {
	if t := p.ann.Get(TitleKey); t != "" {
		return t
	}
	return p.name
}

// Axis returns the binning.
func (p *Profile1D) Axis() Axis { return p.axis }

func (p *Profile1D) slot(idx int) int {
	switch idx {
	case Underflow:
		return 0
	case Overflow:
		return len(p.bins) - 1
	default:
		return idx + 1
	}
}

func (p *Profile1D) checkBin(i int) int {
	if i == Underflow || i == Overflow {
		return p.slot(i)
	}
	if i < 0 || i >= p.axis.nBins {
		panic(fmt.Sprintf("aida: profile bin %d out of range [0,%d)", i, p.axis.nBins))
	}
	return i + 1
}

// Fill adds the sample (x, y) with weight 1.
func (p *Profile1D) Fill(x, y float64) { p.FillW(x, y, 1) }

// FillW adds the sample (x, y) with weight w.
func (p *Profile1D) FillW(x, y, w float64) {
	p.dirty = true
	idx := p.axis.CoordToIndex(x)
	if math.IsNaN(x) {
		idx = Overflow
	}
	b := &p.bins[p.slot(idx)]
	b.entries++
	b.sumW += w
	b.sumWY += w * y
	b.sumWY2 += w * y * y
}

// BinEntries returns the fills in bin i.
func (p *Profile1D) BinEntries(i int) int64 { return p.bins[p.checkBin(i)].entries }

// BinHeight returns the mean y in bin i (0 when empty).
func (p *Profile1D) BinHeight(i int) float64 {
	b := p.bins[p.checkBin(i)]
	if b.sumW == 0 {
		return 0
	}
	return b.sumWY / b.sumW
}

// BinRms returns the y standard deviation in bin i.
func (p *Profile1D) BinRms(i int) float64 {
	b := p.bins[p.checkBin(i)]
	if b.sumW == 0 {
		return 0
	}
	m := b.sumWY / b.sumW
	v := b.sumWY2/b.sumW - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// BinError returns the error on the mean of bin i (rms/√n).
func (p *Profile1D) BinError(i int) float64 {
	b := p.bins[p.checkBin(i)]
	if b.entries == 0 {
		return 0
	}
	return p.BinRms(i) / math.Sqrt(float64(b.entries))
}

// Entries returns the in-range sample count.
func (p *Profile1D) Entries() int64 {
	var n int64
	for i := 1; i <= p.axis.nBins; i++ {
		n += p.bins[i].entries
	}
	return n
}

// EntriesCount implements Object.
func (p *Profile1D) EntriesCount() int64 { return p.Entries() }

// Reset clears all content.
func (p *Profile1D) Reset() {
	p.dirty = true
	for i := range p.bins {
		p.bins[i] = profBin{}
	}
}

// Clone returns a deep copy.
func (p *Profile1D) Clone() *Profile1D {
	c := &Profile1D{name: p.name, ann: p.ann.clone(), axis: p.axis, bins: make([]profBin, len(p.bins)), dirty: p.dirty}
	copy(c.bins, p.bins)
	return c
}

// Dirty implements Dirtyable.
func (p *Profile1D) Dirty() bool { return p.dirty }

// ClearDirty implements Dirtyable.
func (p *Profile1D) ClearDirty() { p.dirty = false }

// MergeFrom implements Mergeable.
func (p *Profile1D) MergeFrom(src Object) error {
	o, ok := src.(*Profile1D)
	if !ok || !p.axis.Equal(o.axis) {
		return errIncompatible("merge", p, src)
	}
	p.dirty = true
	for i := range p.bins {
		p.bins[i].add(o.bins[i])
	}
	mergeAnnotations(p.ann, o.ann)
	return nil
}
