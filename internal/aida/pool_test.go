// Frame free-list contract: a Release-recycled buffer must never leak
// one decode's bytes into the next, oversized buffers must not be
// retained, and the pooling ablation switch must leave decode results
// unchanged.
package aida

import (
	"bytes"
	"testing"
)

func encodeHistFrame(t *testing.T, name string, fills int) []byte {
	t.Helper()
	h := NewHistogram1D(name, "", 32, 0, 100)
	for i := 0; i < fills; i++ {
		h.Fill(float64(i % 100))
	}
	st, err := StateOf(h)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeObjectFrame(&st)
	if err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), frame...)
}

func decodeEntries(t *testing.T, raw []byte) int64 {
	t.Helper()
	var f ObjectFrame
	if err := f.GobDecode(raw); err != nil {
		t.Fatal(err)
	}
	obj, err := f.Restore()
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
	return obj.(*Histogram1D).AllEntries()
}

func TestFrameReleaseRecyclesWithoutCrosstalk(t *testing.T) {
	for _, pooling := range []bool{true, false} {
		SetFramePooling(pooling)
		a := encodeHistFrame(t, "a", 500)
		b := encodeHistFrame(t, "b", 77)
		// Alternate decodes so, with pooling on, b decodes into a's
		// released (larger) buffer and vice versa.
		for i := 0; i < 8; i++ {
			if got := decodeEntries(t, a); got != 500 {
				t.Fatalf("pooling=%v round %d: frame a decoded to %d entries, want 500", pooling, i, got)
			}
			if got := decodeEntries(t, b); got != 77 {
				t.Fatalf("pooling=%v round %d: frame b decoded to %d entries, want 77", pooling, i, got)
			}
		}
	}
	SetFramePooling(true)
}

func TestFrameReleaseIsIdempotentPerDecode(t *testing.T) {
	raw := encodeHistFrame(t, "h", 100)
	var f ObjectFrame
	if err := f.GobDecode(raw); err != nil {
		t.Fatal(err)
	}
	st, err := f.Decode()
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
	// The decoded state must have copied out everything it needs: reuse
	// of the released buffer by a later decode must not corrupt it.
	var g ObjectFrame
	if err := g.GobDecode(raw); err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	obj, err := st.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if got := obj.(*Histogram1D).AllEntries(); got != 100 {
		t.Fatalf("state restored after Release = %d entries, want 100", got)
	}
	if !bytes.Equal(raw, []byte(g)) {
		t.Fatal("re-decoded frame bytes diverge from the wire input")
	}
}
