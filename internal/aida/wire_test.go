package aida

import (
	"bytes"
	"encoding/gob"
	"math"
	"reflect"
	"testing"
)

// fullTree builds a tree holding one of every object kind, including a
// converted cloud, so codec tests cover every wire tag.
func fullTree(t *testing.T) *Tree {
	t.Helper()
	tr := NewTree()
	h1, _ := tr.H1D("/a", "h1", "mass", 20, 0, 10)
	for i := 0; i < 100; i++ {
		h1.FillW(float64(i%12), 0.5)
	}
	h2, _ := tr.H2D("/a/b", "h2", "e-vs-theta", 8, 0, 4, 6, -1, 1)
	for i := 0; i < 50; i++ {
		h2.FillW(float64(i%5), float64(i%3)-1, 1.5)
	}
	p1, _ := tr.P1D("/a", "p1", "", 10, 0, 1)
	for i := 0; i < 30; i++ {
		p1.Fill(float64(i)/30, float64(i%7))
	}
	c1, _ := tr.C1D("/c", "c1", "raw")
	c1.Fill(3.5)
	c1.Fill(math.Pi)
	conv := NewCloud1DLimit("c1conv", "", 2)
	conv.Fill(1)
	conv.Fill(2) // trips the limit → converted
	if err := tr.Put("/c", conv); err != nil {
		t.Fatal(err)
	}
	c2 := NewCloud2D("c2", "")
	c2.Fill(1, 2)
	c2.Fill(3, 4)
	if err := tr.Put("/c", c2); err != nil {
		t.Fatal(err)
	}
	dps, _ := tr.DPS("/d", "dps", "rows", 2)
	dps.Append(1, 2)
	if err := dps.AppendPoint(DataPoint{Coords: []Measurement{{3, 0.1, 0.2}, {4, 0, 0}}}); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	st, err := fullTree(t).State()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := AppendTreeState(nil, st)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTreeState(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, back) {
		t.Fatalf("tree state round trip mismatch:\n got %+v\nwant %+v", back, st)
	}
}

func TestBinaryCodecDeltaRoundTrip(t *testing.T) {
	tr := fullTree(t)
	if _, err := tr.FullDelta(); err != nil {
		t.Fatal(err)
	}
	tr.Get("/a/h1").(*Histogram1D).Fill(5)
	tr.Rm("/d/dps")
	d, err := tr.Delta()
	if err != nil {
		t.Fatal(err)
	}
	if d.Full || len(d.Entries) != 1 || len(d.Removed) != 1 {
		t.Fatalf("delta = full:%v entries:%d removed:%v", d.Full, len(d.Entries), d.Removed)
	}
	buf, err := AppendDeltaState(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeDeltaState(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, back) {
		t.Fatalf("delta round trip mismatch:\n got %+v\nwant %+v", back, d)
	}
}

// TestGobUsesBinaryCodec asserts the gob path (RMI frames) round-trips
// through the custom codec, including as a struct field and behind an
// interface, the shapes the RMI layer produces.
func TestGobUsesBinaryCodec(t *testing.T) {
	st, err := fullTree(t).State()
	if err != nil {
		t.Fatal(err)
	}
	type frame struct {
		Seq   int64
		Tree  TreeState
		Delta *DeltaState
	}
	in := frame{Seq: 7, Tree: *st, Delta: &DeltaState{Full: true, Entries: st.Entries}}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	var out frame
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.Tree, out.Tree) {
		t.Fatal("tree state gob round trip mismatch")
	}
	if !reflect.DeepEqual(in.Delta, out.Delta) {
		t.Fatal("delta state gob round trip mismatch")
	}

	// Nil delta field must stay nil.
	var buf2 bytes.Buffer
	if err := gob.NewEncoder(&buf2).Encode(frame{Seq: 1, Tree: *st}); err != nil {
		t.Fatal(err)
	}
	var out2 frame
	if err := gob.NewDecoder(&buf2).Decode(&out2); err != nil {
		t.Fatal(err)
	}
	if out2.Delta != nil {
		t.Fatal("nil delta came back non-nil")
	}

	// Encoding via a non-addressable interface value (the client side of
	// rmi.Call encodes `any`).
	var buf3 bytes.Buffer
	if err := gob.NewEncoder(&buf3).Encode(any(in)); err != nil {
		t.Fatalf("gob via interface: %v", err)
	}
}

func TestBinaryCodecTruncatedAndCorrupt(t *testing.T) {
	st, err := fullTree(t).State()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := AppendTreeState(nil, st)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 2, len(buf) / 2, len(buf) - 1} {
		if _, err := DecodeTreeState(buf[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
	// A huge declared count must not panic or allocate wildly.
	bad := []byte{wireVersion, 0xff, 0xff, 0xff, 0xff, 0x0f}
	if _, err := DecodeTreeState(bad); err == nil {
		t.Fatal("oversized count accepted")
	}
	if _, err := DecodeTreeState([]byte{99}); err == nil {
		t.Fatal("unknown version accepted")
	}
}

func TestEncodedSizeBeatsReflectionGob(t *testing.T) {
	st, err := fullTree(t).State()
	if err != nil {
		t.Fatal(err)
	}
	bin, err := AppendTreeState(nil, st)
	if err != nil {
		t.Fatal(err)
	}
	// Reflection-driven gob over the equivalent shape (custom codecs
	// stripped) for a like-for-like size comparison.
	type entry struct {
		Path string
		H1   *H1DState
		H2   *H2DState
		P1   *P1DState
		C1   *C1DState
		C2   *C2DState
		DP   *DPSState
	}
	var plain []entry
	for _, e := range st.Entries {
		plain = append(plain, entry{e.Path, e.Object.H1, e.Object.H2, e.Object.P1, e.Object.C1, e.Object.C2, e.Object.DP})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(plain); err != nil {
		t.Fatal(err)
	}
	if len(bin) >= buf.Len() {
		t.Fatalf("binary frame (%d B) not smaller than reflection gob (%d B)", len(bin), buf.Len())
	}
	t.Logf("binary %d B vs gob %d B (%.1fx)", len(bin), buf.Len(), float64(buf.Len())/float64(len(bin)))
}
