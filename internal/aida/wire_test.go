package aida

import (
	"bytes"
	"encoding/gob"
	"math"
	"reflect"
	"testing"
)

// fullTree builds a tree holding one of every object kind, including a
// converted cloud, so codec tests cover every wire tag.
func fullTree(t *testing.T) *Tree {
	t.Helper()
	tr := NewTree()
	h1, _ := tr.H1D("/a", "h1", "mass", 20, 0, 10)
	for i := 0; i < 100; i++ {
		h1.FillW(float64(i%12), 0.5)
	}
	h2, _ := tr.H2D("/a/b", "h2", "e-vs-theta", 8, 0, 4, 6, -1, 1)
	for i := 0; i < 50; i++ {
		h2.FillW(float64(i%5), float64(i%3)-1, 1.5)
	}
	p1, _ := tr.P1D("/a", "p1", "", 10, 0, 1)
	for i := 0; i < 30; i++ {
		p1.Fill(float64(i)/30, float64(i%7))
	}
	c1, _ := tr.C1D("/c", "c1", "raw")
	c1.Fill(3.5)
	c1.Fill(math.Pi)
	conv := NewCloud1DLimit("c1conv", "", 2)
	conv.Fill(1)
	conv.Fill(2) // trips the limit → converted
	if err := tr.Put("/c", conv); err != nil {
		t.Fatal(err)
	}
	c2 := NewCloud2D("c2", "")
	c2.Fill(1, 2)
	c2.Fill(3, 4)
	if err := tr.Put("/c", c2); err != nil {
		t.Fatal(err)
	}
	dps, _ := tr.DPS("/d", "dps", "rows", 2)
	dps.Append(1, 2)
	if err := dps.AppendPoint(DataPoint{Coords: []Measurement{{3, 0.1, 0.2}, {4, 0, 0}}}); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	st, err := fullTree(t).State()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := AppendTreeState(nil, st)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTreeState(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, back) {
		t.Fatalf("tree state round trip mismatch:\n got %+v\nwant %+v", back, st)
	}
}

func TestBinaryCodecDeltaRoundTrip(t *testing.T) {
	tr := fullTree(t)
	if _, err := tr.FullDelta(); err != nil {
		t.Fatal(err)
	}
	tr.Get("/a/h1").(*Histogram1D).Fill(5)
	tr.Rm("/d/dps")
	d, err := tr.Delta()
	if err != nil {
		t.Fatal(err)
	}
	if d.Full || len(d.Entries) != 1 || len(d.Removed) != 1 {
		t.Fatalf("delta = full:%v entries:%d removed:%v", d.Full, len(d.Entries), d.Removed)
	}
	buf, err := AppendDeltaState(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeDeltaState(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, back) {
		t.Fatalf("delta round trip mismatch:\n got %+v\nwant %+v", back, d)
	}
}

// TestGobUsesBinaryCodec asserts the gob path (RMI frames) round-trips
// through the custom codec, including as a struct field and behind an
// interface, the shapes the RMI layer produces.
func TestGobUsesBinaryCodec(t *testing.T) {
	st, err := fullTree(t).State()
	if err != nil {
		t.Fatal(err)
	}
	type frame struct {
		Seq   int64
		Tree  TreeState
		Delta *DeltaState
	}
	in := frame{Seq: 7, Tree: *st, Delta: &DeltaState{Full: true, Entries: st.Entries}}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	var out frame
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.Tree, out.Tree) {
		t.Fatal("tree state gob round trip mismatch")
	}
	if !reflect.DeepEqual(in.Delta, out.Delta) {
		t.Fatal("delta state gob round trip mismatch")
	}

	// Nil delta field must stay nil.
	var buf2 bytes.Buffer
	if err := gob.NewEncoder(&buf2).Encode(frame{Seq: 1, Tree: *st}); err != nil {
		t.Fatal(err)
	}
	var out2 frame
	if err := gob.NewDecoder(&buf2).Decode(&out2); err != nil {
		t.Fatal(err)
	}
	if out2.Delta != nil {
		t.Fatal("nil delta came back non-nil")
	}

	// Encoding via a non-addressable interface value (the client side of
	// rmi.Call encodes `any`).
	var buf3 bytes.Buffer
	if err := gob.NewEncoder(&buf3).Encode(any(in)); err != nil {
		t.Fatalf("gob via interface: %v", err)
	}
}

func TestBinaryCodecTruncatedAndCorrupt(t *testing.T) {
	st, err := fullTree(t).State()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := AppendTreeState(nil, st)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 2, len(buf) / 2, len(buf) - 1} {
		if _, err := DecodeTreeState(buf[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
	// A huge declared count must not panic or allocate wildly.
	bad := []byte{wireVersion, 0xff, 0xff, 0xff, 0xff, 0x0f}
	if _, err := DecodeTreeState(bad); err == nil {
		t.Fatal("oversized count accepted")
	}
	if _, err := DecodeTreeState([]byte{99}); err == nil {
		t.Fatal("unknown version accepted")
	}
}

// TestFlateFrameRoundTrip: version-2 (compressed) frames decode to the
// same states as version-1, through both the direct codec entry points
// and transparently via DecodeTreeState/DecodeDeltaState.
func TestFlateFrameRoundTrip(t *testing.T) {
	st, err := fullTree(t).State()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := AppendTreeStateFlate(nil, st)
	if err != nil {
		t.Fatal(err)
	}
	if buf[0] != wireVersionFlate {
		t.Fatalf("frame version = %d", buf[0])
	}
	back, err := DecodeTreeState(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Entries, back.Entries) {
		t.Fatal("compressed tree frame round trip mismatch")
	}

	tr := fullTree(t)
	if _, err := tr.FullDelta(); err != nil {
		t.Fatal(err)
	}
	tr.Get("/a/h1").(*Histogram1D).Fill(5)
	tr.Rm("/d/dps")
	d, err := tr.Delta()
	if err != nil {
		t.Fatal(err)
	}
	dbuf, err := AppendDeltaStateFlate(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	dback, err := DecodeDeltaState(dbuf)
	if err != nil {
		t.Fatal(err)
	}
	if dback.Full != d.Full || !reflect.DeepEqual(d.Entries, dback.Entries) ||
		!reflect.DeepEqual(d.Removed, dback.Removed) {
		t.Fatal("compressed delta frame round trip mismatch")
	}
}

// TestFlateFrameShrinksSparseSnapshots: the compression exists for WAN
// snapshots, which are dominated by runs of near-empty bins; such a
// frame must come out smaller compressed.
func TestFlateFrameShrinksSparseSnapshots(t *testing.T) {
	tr := NewTree()
	h, _ := tr.H1D("/a", "h", "", 5000, 0, 100)
	for i := 0; i < 50; i++ {
		h.Fill(float64(i % 100))
	}
	st, err := tr.State()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := AppendTreeState(nil, st)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := AppendTreeStateFlate(nil, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) >= len(plain) {
		t.Fatalf("compressed frame %d B not smaller than plain %d B", len(packed), len(plain))
	}
	t.Logf("plain %d B vs flate %d B (%.1fx)", len(plain), len(packed), float64(len(plain))/float64(len(packed)))
}

// TestGobHonorsWireCompression: states flagged for compression cross
// the gob (RMI) path as version-2 frames and decode identically.
func TestGobHonorsWireCompression(t *testing.T) {
	st, err := fullTree(t).State()
	if err != nil {
		t.Fatal(err)
	}
	cst := *st
	cst.SetWireCompression(true)
	cd := &DeltaState{Full: true, Entries: st.Entries}
	cd.SetWireCompression(true)
	type frame struct {
		Tree  TreeState
		Delta *DeltaState
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(frame{Tree: cst, Delta: cd}); err != nil {
		t.Fatal(err)
	}
	var out frame
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Entries, out.Tree.Entries) {
		t.Fatal("compressed tree gob round trip mismatch")
	}
	if out.Delta == nil || !out.Delta.Full || !reflect.DeepEqual(st.Entries, out.Delta.Entries) {
		t.Fatal("compressed delta gob round trip mismatch")
	}
}

// TestFlateFrameCorrupt: malformed compressed frames fail cleanly.
func TestFlateFrameCorrupt(t *testing.T) {
	st, err := fullTree(t).State()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := AppendTreeStateFlate(nil, st)
	if err != nil {
		t.Fatal(err)
	}
	// Truncation must never yield a silently wrong result. (The very
	// last byte only terminates the DEFLATE stream; losing it can still
	// decode — to the complete, correct payload — so "must error" would
	// be too strong a property.)
	for n := 0; n < len(buf); n++ {
		back, err := DecodeTreeState(buf[:n])
		if err == nil && !reflect.DeepEqual(st.Entries, back.Entries) {
			t.Fatalf("truncation to %d bytes decoded to wrong entries", n)
		}
	}
	// A declared raw size wildly beyond what the compressed bytes could
	// expand to must be rejected before allocating.
	huge := []byte{wireVersionFlate, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f}
	if _, err := DecodeTreeState(huge); err == nil {
		t.Fatal("oversized declared length accepted")
	}
	// Garbage where the DEFLATE stream should be.
	junk := append([]byte{wireVersionFlate}, 200, 1, 2, 3, 4, 5)
	if _, err := DecodeTreeState(junk); err == nil {
		t.Fatal("corrupt compressed body accepted")
	}
}

// TestObjectFrameRoundTrip: pre-encoded frames (the poll cache unit)
// decode back to their states directly and via gob.
func TestObjectFrameRoundTrip(t *testing.T) {
	st, err := fullTree(t).State()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range st.Entries {
		e := e
		frame, err := EncodeObjectFrame(&e.Object)
		if err != nil {
			t.Fatal(err)
		}
		back, err := frame.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(e.Object, back) {
			t.Fatalf("%s: object frame round trip mismatch", e.Path)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(frame); err != nil {
			t.Fatal(err)
		}
		// The gob body must embed the frame verbatim (no re-encode).
		if !bytes.Contains(buf.Bytes(), frame) {
			t.Fatalf("%s: gob re-encoded the cached frame", e.Path)
		}
		var dec ObjectFrame
		if err := gob.NewDecoder(&buf).Decode(&dec); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dec, frame) {
			t.Fatalf("%s: frame gob round trip mismatch", e.Path)
		}
	}
}

func TestEncodedSizeBeatsReflectionGob(t *testing.T) {
	st, err := fullTree(t).State()
	if err != nil {
		t.Fatal(err)
	}
	bin, err := AppendTreeState(nil, st)
	if err != nil {
		t.Fatal(err)
	}
	// Reflection-driven gob over the equivalent shape (custom codecs
	// stripped) for a like-for-like size comparison.
	type entry struct {
		Path string
		H1   *H1DState
		H2   *H2DState
		P1   *P1DState
		C1   *C1DState
		C2   *C2DState
		DP   *DPSState
	}
	var plain []entry
	for _, e := range st.Entries {
		plain = append(plain, entry{e.Path, e.Object.H1, e.Object.H2, e.Object.P1, e.Object.C1, e.Object.C2, e.Object.DP})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(plain); err != nil {
		t.Fatal(err)
	}
	if len(bin) >= buf.Len() {
		t.Fatalf("binary frame (%d B) not smaller than reflection gob (%d B)", len(bin), buf.Len())
	}
	t.Logf("binary %d B vs gob %d B (%.1fx)", len(bin), buf.Len(), float64(buf.Len())/float64(len(bin)))
}
