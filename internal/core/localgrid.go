package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/ipa-grid/ipa/internal/catalog"
	"github.com/ipa-grid/ipa/internal/codeloader"
	"github.com/ipa-grid/ipa/internal/engine"
	"github.com/ipa-grid/ipa/internal/events"
	"github.com/ipa-grid/ipa/internal/gram"
	"github.com/ipa-grid/ipa/internal/gsi"
	"github.com/ipa-grid/ipa/internal/locator"
	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/registry"
	"github.com/ipa-grid/ipa/internal/relay"
	"github.com/ipa-grid/ipa/internal/scheduler"
	"github.com/ipa-grid/ipa/internal/session"
	"github.com/ipa-grid/ipa/internal/shard"
	"github.com/ipa-grid/ipa/internal/storage"
)

// GridOptions size a LocalGrid.
type GridOptions struct {
	// Nodes is the worker-node count (default 4).
	Nodes int
	// EnginesPerSession is the site policy (default = Nodes).
	EnginesPerSession int
	// BaseDir hosts storage elements (default: a temp dir).
	BaseDir string
	// Secure enables mutual-TLS WSRF (default true). Plain HTTP skips
	// authentication — only for focused tests.
	Insecure bool
	// SnapshotEvery tunes engine snapshot frequency (default 500).
	SnapshotEvery int
	// Shards selects the merge fabric width: 1 (default) serves results
	// from a single manager, >1 spreads sessions across that many
	// manager shards behind a consistent-hash router.
	Shards int
	// RebalanceInterval starts a load balancer on the sharded fabric
	// that probes per-session publish+poll rates and migrates the
	// hottest sessions off overloaded shards (0 = no balancer; ignored
	// when unsharded).
	RebalanceInterval time.Duration
	// RebalanceMaxMoves / RebalanceBand tune the balancer policy (0
	// selects the defaults: 2 moves per round, 0.25 hysteresis band).
	RebalanceMaxMoves int
	RebalanceBand     float64
	// HealthInterval starts a shard health prober (0 = none; ignored
	// when unsharded); HealthFails is the consecutive-failure threshold
	// before a shard is marked dead (0 = 3).
	HealthInterval time.Duration
	HealthFails    int
	// Replicate mirrors every accepted publish to a per-session replica
	// chain, so a shard death promotes the deepest caught-up replica
	// (epoch-fenced) instead of evicting the sessions to empty. Needs
	// Shards > 1; off by default (the DisableReplication ablation
	// baseline).
	Replicate bool
	// ReplicaDepth is the replica chain length K per session (0 = 1, the
	// single-standby default). Ignored unless Replicate is on.
	ReplicaDepth int
	// AntiEntropyInterval starts the chain-repair loop: every interval
	// each session's replica chain is compared against the owner by
	// (epoch, version) and drifted or stalled copies are re-baselined
	// (0 = no loop; ignored unless Replicate is on).
	AntiEntropyInterval time.Duration
	// WALDir, when set, gives every shard manager an append-only
	// snapshot/delta log under this directory, replayed on startup — a
	// restarted manager rejoins with its sessions intact. WALSyncEvery
	// batches fsyncs (0 = every record).
	WALDir       string
	WALSyncEvery int
	// Relays starts that many read relays on the sharded fabric: each
	// subscribes once per session to the owning shard's delta stream
	// and re-serves any number of client polls from its local mirrored
	// copy (0 = none; needs Shards > 1). RelayInterval is the
	// subscription poll cadence (0 = 25ms).
	Relays        int
	RelayInterval time.Duration
}

// LocalGrid is a complete single-process Grid site on loopback TCP:
// CA + VO, an N-node scheduler with interactive and batch queues, GRAM,
// shared-disk and per-node scratch storage elements, the merge manager,
// and a manager node serving WSRF + RMI — everything the paper's Figure 2
// shows, with real protocols end to end.
type LocalGrid struct {
	CA      *gsi.CA
	VO      *gsi.VO
	Cluster *scheduler.Cluster
	Gram    *gram.JobManager
	Catalog *catalog.Catalog
	Locator *locator.Service
	// Merge is the result fabric engines publish into: a bare manager,
	// or (Shards > 1) the Router over ShardMgrs.
	Merge merge.Service
	// Router is non-nil on a sharded grid (== Merge).
	Router *shard.Router
	// Balancer / Health / AntiEntropy are the placement policy loops,
	// non-nil when the corresponding interval option enabled them on a
	// sharded grid.
	Balancer    *shard.Balancer
	Health      *shard.Health
	AntiEntropy *shard.AntiEntropy
	// ShardMgrs are the fabric's member managers by shard name.
	ShardMgrs map[string]*merge.Manager
	// Relays are the read fan-out tier's mirrors by relay name,
	// non-empty when GridOptions.Relays asked for them.
	Relays  map[string]*relay.Relay
	Reg     *registry.Registry
	Loader  *codeloader.Loader
	Shared  *storage.Element
	Manager *Manager
	Session *session.Service

	baseDir string
	opts    GridOptions
	wals    []*merge.WAL

	mu      sync.Mutex
	scratch map[string]*storage.Element
	engines []*engine.Engine
	users   map[string]*gsi.Credential
	stop    chan struct{}
}

// NewLocalGrid stands the site up.
func NewLocalGrid(opts GridOptions) (*LocalGrid, error) {
	if opts.Nodes <= 0 {
		opts.Nodes = 4
	}
	if opts.EnginesPerSession <= 0 {
		opts.EnginesPerSession = opts.Nodes
	}
	if opts.BaseDir == "" {
		dir, err := os.MkdirTemp("", "ipa-grid-*")
		if err != nil {
			return nil, err
		}
		opts.BaseDir = dir
	}
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = 500
	}
	g := &LocalGrid{
		opts: opts, baseDir: opts.BaseDir,
		scratch: make(map[string]*storage.Element),
		users:   make(map[string]*gsi.Credential),
		stop:    make(chan struct{}),
	}

	// Security fabric.
	ca, err := gsi.NewCA("IPA LocalGrid CA")
	if err != nil {
		return nil, err
	}
	g.CA = ca
	g.VO = gsi.NewVO("lc-vo")

	// Compute element: nodes + the dedicated interactive queue (§2.3).
	var nodes []scheduler.NodeConfig
	for i := 0; i < opts.Nodes; i++ {
		nodes = append(nodes, scheduler.NodeConfig{Name: fmt.Sprintf("node%02d", i), Slots: 1})
	}
	cluster, err := scheduler.New(nodes, []scheduler.QueueConfig{
		{Name: "interactive", Priority: 10, Preempting: true},
		{Name: "batch", Priority: 1, Preemptible: true},
	})
	if err != nil {
		return nil, err
	}
	g.Cluster = cluster
	g.Gram = gram.NewJobManager(cluster)

	// Storage: shared disk + per-node scratch.
	g.Shared, err = storage.New("shared", filepath.Join(opts.BaseDir, "shared"))
	if err != nil {
		return nil, err
	}
	for i := 0; i < opts.Nodes; i++ {
		name := fmt.Sprintf("node%02d", i)
		el, err := storage.New(name, filepath.Join(opts.BaseDir, "scratch", name))
		if err != nil {
			return nil, err
		}
		g.scratch[name] = el
	}

	// Services.
	g.Catalog = catalog.New()
	g.Locator = locator.New("local")
	if opts.Shards > 1 {
		// Sharded merge fabric: sessions spread across managers by
		// consistent hashing; everything publishes/polls via the router.
		g.Router = shard.NewRouter(0)
		g.Router.Replicate = opts.Replicate
		g.Router.ReplicaDepth = opts.ReplicaDepth
		g.ShardMgrs = make(map[string]*merge.Manager, opts.Shards)
		for i := 0; i < opts.Shards; i++ {
			name := fmt.Sprintf("shard%02d", i)
			mgr := merge.NewManager()
			if opts.WALDir != "" {
				w, err := attachWAL(mgr, opts.WALDir, name, opts.WALSyncEvery)
				if err != nil {
					return nil, err
				}
				g.wals = append(g.wals, w)
			}
			g.ShardMgrs[name] = mgr
			if err := g.Router.AddShard(name, mgr); err != nil {
				return nil, err
			}
		}
		g.Merge = g.Router
		if opts.RebalanceInterval > 0 {
			g.Balancer = shard.NewBalancer(g.Router)
			g.Balancer.Interval = opts.RebalanceInterval
			g.Balancer.MaxMoves = opts.RebalanceMaxMoves
			g.Balancer.Band = opts.RebalanceBand
			g.Balancer.Start()
		}
		if opts.HealthInterval > 0 {
			g.Health = shard.NewHealth(g.Router)
			g.Health.Interval = opts.HealthInterval
			g.Health.Threshold = opts.HealthFails
			g.Health.Start()
		}
		if opts.Replicate && opts.WALDir != "" {
			// WAL-backed replica handoff: a promoted copy inherits the
			// dead primary's durable log tail for its session before the
			// promotion stamps the new epoch.
			walDir := opts.WALDir
			g.Router.WALTail = func(deadShard, sessionID, targetShard string) (int, error) {
				target, ok := g.ShardMgrs[targetShard]
				if !ok {
					return 0, fmt.Errorf("core: no local manager for shard %q", targetShard)
				}
				return merge.ReplaySessionInto(filepath.Join(walDir, deadShard+".wal"), sessionID, target)
			}
		}
		if opts.Replicate && opts.AntiEntropyInterval > 0 {
			g.AntiEntropy = shard.NewAntiEntropy(g.Router)
			g.AntiEntropy.Interval = opts.AntiEntropyInterval
			g.AntiEntropy.Start()
		}
		if opts.Relays > 0 {
			// Read fan-out tier: relays subscribe to the owners through
			// the router's relay-bypassing origin poller and the router
			// routes client reads to them.
			interval := opts.RelayInterval
			if interval <= 0 {
				interval = 25 * time.Millisecond
			}
			g.Relays = make(map[string]*relay.Relay, opts.Relays)
			for i := 0; i < opts.Relays; i++ {
				name := fmt.Sprintf("relay%02d", i)
				rel := relay.New(name, g.Router.OriginPoller())
				rel.Interval = interval
				rel.AutoSubscribe = true
				g.Relays[name] = rel
				if err := g.Router.AddRelay(name, rel); err != nil {
					return nil, err
				}
			}
			g.Router.RelayReads = true
		}
	} else {
		mgr := merge.NewManager()
		if opts.WALDir != "" {
			w, err := attachWAL(mgr, opts.WALDir, "manager", opts.WALSyncEvery)
			if err != nil {
				return nil, err
			}
			g.wals = append(g.wals, w)
		}
		g.Merge = mgr
	}
	g.Reg = registry.New()
	g.Loader = codeloader.New()

	// The engine launcher: what GRAM "executes" on a worker node.
	g.Gram.RegisterLauncher(session.EngineExecutable, func(ctx context.Context, node string, index int, jd gram.JobDescription) error {
		sessionID := jd.Environment["IPA_SESSION"]
		workerID := fmt.Sprintf("engine-%02d", index)
		eng := engine.New(engine.Config{
			SessionID:     sessionID,
			WorkerID:      workerID,
			Publisher:     g.Merge,
			SnapshotEvery: opts.SnapshotEvery,
		})
		g.mu.Lock()
		g.engines = append(g.engines, eng)
		g.mu.Unlock()
		if err := g.Reg.Register(registry.Worker{
			SessionID: sessionID, WorkerID: workerID, Node: node, Handle: eng,
		}); err != nil {
			return err
		}
		go func() {
			<-ctx.Done()
			eng.Shutdown()
		}()
		eng.Serve() // blocks until Shutdown
		return nil
	})

	sessions, err := session.New(session.Config{
		Gram: g.Gram, Registry: g.Reg, Locator: g.Locator, Catalog: g.Catalog,
		Merge: g.Merge, Loader: g.Loader, SharedDisk: g.Shared,
		WorkerScratch: func(node string) (*storage.Element, error) {
			g.mu.Lock()
			defer g.mu.Unlock()
			el := g.scratch[node]
			if el == nil {
				return nil, fmt.Errorf("core: no scratch for node %q", node)
			}
			return el, nil
		},
		Engines: opts.EnginesPerSession,
		Queue:   "interactive",
		Site:    "local",
	})
	if err != nil {
		return nil, err
	}
	g.Session = sessions

	mgrCfg := ManagerConfig{
		Sessions: sessions, Catalog: g.Catalog, Merge: g.Merge,
		ShardManagers: g.ShardMgrs, Relays: g.Relays,
		EngineCount: opts.EnginesPerSession,
	}
	if !opts.Insecure {
		host, err := ca.IssueHost("ipa-manager", []string{"localhost", "127.0.0.1"}, 24*time.Hour)
		if err != nil {
			return nil, err
		}
		mgrCfg.Host = host
		mgrCfg.Roots = ca
		mgrCfg.VO = g.VO
	}
	mgr, err := NewManager(mgrCfg, "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	g.Manager = mgr
	go mgr.sweepLoop(time.Minute, g.stop)
	return g, nil
}

// AddUser enrolls a person: CA-issued certificate plus VO membership.
func (g *LocalGrid) AddUser(cn string, roles ...gsi.Role) (*gsi.Credential, error) {
	cred, err := g.CA.IssueUser(g.VO.Name(), cn, 12*time.Hour)
	if err != nil {
		return nil, err
	}
	if len(roles) == 0 {
		roles = []gsi.Role{gsi.RoleAnalyst}
	}
	g.VO.Add(cred.DN(), []string{"higgs"}, roles...)
	g.VO.MapAccount(cred.DN(), cn)
	g.mu.Lock()
	g.users[cn] = cred
	g.mu.Unlock()
	return cred, nil
}

// ClientFor builds a connected client for a user: obtain proxy → connect
// (step 1 of Figure 2).
func (g *LocalGrid) ClientFor(cn string) (*Client, error) {
	g.mu.Lock()
	cred := g.users[cn]
	g.mu.Unlock()
	if cred == nil {
		return nil, fmt.Errorf("core: no user %q (AddUser first)", cn)
	}
	if g.opts.Insecure {
		return Connect(g.Manager.Addr(), nil, nil)
	}
	proxy, err := gsi.NewProxy(cred, 2*time.Hour)
	if err != nil {
		return nil, err
	}
	return Connect(g.Manager.Addr(), proxy, g.CA)
}

// PublishDataset generates an LC event dataset, registers it in the
// catalog and the locator (as a file:// replica), and returns its ID —
// the ipa-gen workflow condensed for tests and examples.
func (g *LocalGrid) PublishDataset(id, dir, name string, nEvents int, cfg events.GenConfig, attrs map[string]string) error {
	path := filepath.Join(g.baseDir, "published", id+".ipa")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	bytes, err := events.GenerateFile(path, cfg, nEvents)
	if err != nil {
		return err
	}
	ref := catalog.DatasetRef{
		ID: id, Name: name, SizeMB: float64(bytes) / (1 << 20),
		Records: int64(nEvents), Format: events.EventDecoderName,
	}
	if err := g.Catalog.AddDataset(dir, ref, attrs); err != nil {
		return err
	}
	return g.Locator.Register(id, locator.Replica{URL: "file://" + path, Site: "local", Priority: 5})
}

// Scratch exposes a node's scratch element (tests).
func (g *LocalGrid) Scratch(node string) *storage.Element {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.scratch[node]
}

// Close tears the whole site down.
func (g *LocalGrid) Close() {
	close(g.stop)
	if g.Balancer != nil {
		g.Balancer.Stop()
	}
	if g.Health != nil {
		g.Health.Stop()
	}
	if g.AntiEntropy != nil {
		g.AntiEntropy.Stop()
	}
	for _, id := range g.Session.Sessions() {
		g.Session.Close(id)
	}
	for _, rel := range g.Relays {
		rel.Close()
	}
	g.Manager.Close()
	g.Cluster.Close()
	g.mu.Lock()
	engines := g.engines
	g.engines = nil
	g.mu.Unlock()
	for _, e := range engines {
		e.Shutdown()
	}
	for _, w := range g.wals {
		w.Close()
	}
}

// attachWAL opens (creating the directory if needed) a manager's
// append-only log, replays whatever a previous incarnation left there —
// a restarted manager rejoins with its sessions intact — and attaches
// it for future appends.
func attachWAL(mgr *merge.Manager, dir, name string, syncEvery int) (*merge.WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w, err := merge.OpenWAL(filepath.Join(dir, name+".wal"), merge.WALOptions{SyncEvery: syncEvery})
	if err != nil {
		return nil, err
	}
	if _, err := w.Replay(mgr); err != nil {
		w.Close()
		return nil, err
	}
	mgr.SetWAL(w)
	return w, nil
}
