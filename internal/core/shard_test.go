package core

import (
	"testing"
	"time"

	"github.com/ipa-grid/ipa/internal/events"
	"github.com/ipa-grid/ipa/internal/gsi"
)

// TestShardedGridEndToEnd runs the full client workflow against a
// 3-shard merge fabric — publishes and polls cross the router over real
// RMI — then forces a live handoff of the session's shard mid-session
// and re-runs the analysis on its new owner.
func TestShardedGridEndToEnd(t *testing.T) {
	g, err := NewLocalGrid(GridOptions{
		Nodes: 4, BaseDir: t.TempDir(), SnapshotEvery: 100,
		Shards: 3, Insecure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	if g.Router == nil || len(g.Router.Shards()) != 3 {
		t.Fatalf("sharded grid has router %v shards %v", g.Router, g.Router.Shards())
	}
	if _, err := g.AddUser("alice", gsi.RoleAnalyst); err != nil {
		t.Fatal(err)
	}
	err = g.PublishDataset("ds-zh", "/lc/zh", "zh-events", 2000,
		events.GenConfig{Seed: 42, SignalFraction: 0.3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := g.ClientFor("alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateSession(); err != nil {
		t.Fatal(err)
	}
	defer c.CloseSession()
	if _, err := c.AttachDataset("ds-zh"); err != nil {
		t.Fatal(err)
	}
	src := `
	h = tree.h1d("/ana", "mult", "Multiplicity", 50, 0, 200);
	function process(ev) { h.fill(ev.n); }
	`
	if _, err := c.LoadScript("mult", src, events.EventDecoderName, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	waitFinished(t, c, 30*time.Second)
	up, err := c.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if !up.Changed {
		t.Fatal("no updates after run on sharded fabric")
	}
	if h := c.Histogram1D("/ana/mult"); h == nil || h.AllEntries() != 2000 {
		t.Fatalf("merged histogram = %+v", h)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shard == "" {
		t.Fatal("status does not report the owning shard")
	}

	// Live handoff: retire the session's current shard; its state must
	// migrate and polls keep answering from the new owner.
	if err := g.Router.RemoveShard(st.Shard); err != nil {
		t.Fatal(err)
	}
	st2, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Shard == st.Shard || st2.Shard == "" {
		t.Fatalf("shard after handoff = %q (was %q)", st2.Shard, st.Shard)
	}
	if _, err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if h := c.Histogram1D("/ana/mult"); h == nil || h.AllEntries() != 2000 {
		t.Fatalf("merged histogram after handoff = %+v", h)
	}

	// Rewind and re-run: resets and fresh publishes all land on the new
	// owner through the router.
	if err := c.Rewind(); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	waitFinished(t, c, 30*time.Second)
	if _, err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if h := c.Histogram1D("/ana/mult"); h == nil || h.AllEntries() != 2000 {
		t.Fatalf("merged histogram after rewind on new shard = %+v", h)
	}
}

// TestDirectShardPolling: a shard-aware client learns the owning
// shard's RMI endpoint from Status and polls the shard object directly;
// after a live handoff retires that shard, the direct path detects the
// move (tombstone version regression or endpoint error), falls back to
// the router, and re-resolves onto the new owner.
func TestDirectShardPolling(t *testing.T) {
	g, err := NewLocalGrid(GridOptions{
		Nodes: 2, BaseDir: t.TempDir(), SnapshotEvery: 100,
		Shards: 3, Insecure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	if _, err := g.AddUser("bob", gsi.RoleAnalyst); err != nil {
		t.Fatal(err)
	}
	err = g.PublishDataset("ds-direct", "/lc/direct", "direct-events", 800,
		events.GenConfig{Seed: 7, SignalFraction: 0.3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := g.ClientFor("bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateSession(); err != nil {
		t.Fatal(err)
	}
	defer c.CloseSession()
	c.SetDirectPoll(true)
	if _, err := c.AttachDataset("ds-direct"); err != nil {
		t.Fatal(err)
	}
	src := `
	h = tree.h1d("/ana", "mult", "Multiplicity", 50, 0, 200);
	function process(ev) { h.fill(ev.n); }
	`
	if _, err := c.LoadScript("mult", src, events.EventDecoderName, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	waitFinished(t, c, 30*time.Second)
	if _, err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if h := c.Histogram1D("/ana/mult"); h == nil || h.AllEntries() != 800 {
		t.Fatalf("merged histogram via direct poll = %+v", h)
	}
	direct := c.DirectShard()
	if direct == "" {
		t.Fatal("client never established a direct shard connection")
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shard != direct || st.ShardAddr == "" {
		t.Fatalf("status shard/addr = %q/%q, direct = %q", st.Shard, st.ShardAddr, direct)
	}

	// Retire the owning shard: the tombstone left behind answers the
	// next direct poll with a regressed version, which must trigger
	// fallback and re-resolution onto the new owner.
	if err := g.Router.RemoveShard(direct); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if h := c.Histogram1D("/ana/mult"); h == nil || h.AllEntries() != 800 {
		t.Fatalf("merged histogram after handoff = %+v", h)
	}
	// The next poll re-resolves the direct path onto the new owner.
	if _, err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := c.DirectShard(); got == "" || got == direct {
		t.Fatalf("direct shard after handoff = %q (was %q)", got, direct)
	}
}

// TestDirectPollUnshardedDisables: on an unsharded grid the toggle
// finds no shard endpoint to dial and quietly turns itself off.
func TestDirectPollUnshardedDisables(t *testing.T) {
	g, err := NewLocalGrid(GridOptions{Nodes: 1, BaseDir: t.TempDir(), Insecure: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	if _, err := g.AddUser("carol", gsi.RoleAnalyst); err != nil {
		t.Fatal(err)
	}
	c, err := g.ClientFor("carol")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateSession(); err != nil {
		t.Fatal(err)
	}
	defer c.CloseSession()
	c.SetDirectPoll(true)
	if _, err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := c.DirectShard(); got != "" {
		t.Fatalf("unsharded grid produced a direct shard %q", got)
	}
	c.mu.Lock()
	stillOn := c.direct
	c.mu.Unlock()
	if stillOn {
		t.Fatal("direct mode still on after resolving an unsharded fabric")
	}
}
