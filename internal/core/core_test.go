package core

import (
	"strings"
	"testing"
	"time"

	"github.com/ipa-grid/ipa/internal/engine"
	"github.com/ipa-grid/ipa/internal/events"
	"github.com/ipa-grid/ipa/internal/gsi"
)

// newGrid stands up a 4-node secure grid with one published dataset.
func newGrid(t *testing.T, nEvents int) *LocalGrid {
	t.Helper()
	g, err := NewLocalGrid(GridOptions{Nodes: 4, BaseDir: t.TempDir(), SnapshotEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	if _, err := g.AddUser("alice", gsi.RoleAnalyst); err != nil {
		t.Fatal(err)
	}
	err = g.PublishDataset("ds-zh", "/lc/zh", "zh-events", nEvents,
		events.GenConfig{Seed: 42, SignalFraction: 0.3},
		map[string]string{"detector": "sid", "energy": "500"})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// waitFinished polls status until every engine reports Finished.
func waitFinished(t *testing.T, c *Client, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, err := c.Status()
		if err != nil {
			t.Fatal(err)
		}
		all := len(st.Engines) > 0
		for _, e := range st.Engines {
			if e.State == string(engine.StateError) {
				t.Fatalf("engine on %s failed: %s", e.Node, e.Err)
			}
			if e.State != string(engine.StateFinished) {
				all = false
			}
		}
		if all {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, _ := c.Status()
	t.Fatalf("engines did not finish: %+v", st.Engines)
}

// TestFullWorkflow exercises the paper's four client steps end to end over
// real TLS + XML + RMI on loopback.
func TestFullWorkflow(t *testing.T) {
	g := newGrid(t, 2000)
	c, err := g.ClientFor("alice")
	if err != nil {
		t.Fatal(err)
	}
	// Step 1-2: secure connect + session (engines start via GRAM).
	if err := c.CreateSession(); err != nil {
		t.Fatal(err)
	}
	defer c.CloseSession()
	if c.SessionID() == "" || c.Token() == "" {
		t.Fatal("no session identity")
	}

	// Browse the catalog like the Figure 3 dialog.
	entries, err := c.ListCatalog("/lc/zh")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].ID != "ds-zh" {
		t.Fatalf("catalog entries = %+v", entries)
	}
	// And by query.
	hits, err := c.QueryCatalog(`detector == "sid" && records >= 2000`)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("query hits = %+v", hits)
	}

	// Step 3: attach (locate → move whole → split → move parts).
	times, err := c.AttachDataset("ds-zh")
	if err != nil {
		t.Fatal(err)
	}
	if times.Parts != 4 {
		t.Fatalf("staged into %d parts", times.Parts)
	}

	// Step 4: upload a script and run.
	src := `
	h = tree.h1d("/ana", "mult", "Multiplicity", 50, 0, 200);
	function process(ev) { h.fill(ev.n); }
	`
	if _, err := c.LoadScript("mult", src, events.EventDecoderName, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	waitFinished(t, c, 30*time.Second)

	// Collect merged results via RMI polling.
	up, err := c.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if !up.Changed {
		t.Fatal("no updates after run")
	}
	h := c.Histogram1D("/ana/mult")
	if h == nil {
		t.Fatalf("merged histogram missing; changed paths %v", up.ChangedPaths)
	}
	if h.AllEntries() != 2000 {
		t.Fatalf("merged entries = %d, want 2000 (every event exactly once)", h.AllEntries())
	}
	if up.EventsDone != 2000 {
		t.Fatalf("progress = %d", up.EventsDone)
	}
}

func TestRewindAndHotReload(t *testing.T) {
	g := newGrid(t, 800)
	c, _ := g.ClientFor("alice")
	if err := c.CreateSession(); err != nil {
		t.Fatal(err)
	}
	defer c.CloseSession()
	if _, err := c.AttachDataset("ds-zh"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadScript("v1", `
		h = tree.h1d("/a", "v1", "", 10, 0, 200);
		function process(ev) { h.fill(ev.n); }
	`, events.EventDecoderName, nil); err != nil {
		t.Fatal(err)
	}
	c.Run()
	waitFinished(t, c, 30*time.Second)
	if _, err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if c.Histogram1D("/a/v1") == nil {
		t.Fatal("v1 histogram missing")
	}

	// Fine-tune the code and rewind — the paper's central loop (§3.6).
	if _, err := c.LoadScript("v1", `
		h = tree.h1d("/a", "v2", "", 10, 0, 500);
		function process(ev) { h.fill(ev.n * 2); }
	`, events.EventDecoderName, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Rewind(); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	waitFinished(t, c, 30*time.Second)
	if _, err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if c.Histogram1D("/a/v2") == nil {
		t.Fatal("v2 histogram missing after hot reload")
	}
	if c.Histogram1D("/a/v1") != nil {
		t.Fatal("stale v1 histogram survived the rewind")
	}
}

func TestStepPauseResume(t *testing.T) {
	g := newGrid(t, 1000)
	c, _ := g.ClientFor("alice")
	if err := c.CreateSession(); err != nil {
		t.Fatal(err)
	}
	defer c.CloseSession()
	c.AttachDataset("ds-zh")
	c.LoadScript("s", `
		h = tree.h1d("/a", "h", "", 10, 0, 200);
		function process(ev) { h.fill(ev.n); }
	`, events.EventDecoderName, nil)
	// Step 50 events per engine (4 engines → 200 events).
	if err := c.Step(50); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	var done int64
	for time.Now().Before(deadline) {
		up, err := c.Poll()
		if err != nil {
			t.Fatal(err)
		}
		done = up.EventsDone
		if done == 200 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if done != 200 {
		t.Fatalf("stepped %d events, want 200", done)
	}
	// Resume to the end.
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	waitFinished(t, c, 30*time.Second)
	up, _ := c.Poll()
	if up.EventsDone != 1000 {
		t.Fatalf("final events = %d", up.EventsDone)
	}
}

func TestHiggsNativeAnalysisEndToEnd(t *testing.T) {
	g := newGrid(t, 3000)
	c, _ := g.ClientFor("alice")
	if err := c.CreateSession(); err != nil {
		t.Fatal(err)
	}
	defer c.CloseSession()
	c.AttachDataset("ds-zh")
	if _, err := c.LoadNative("higgs", events.HiggsAnalysisName, map[string]string{"minE": "20"}); err != nil {
		t.Fatal(err)
	}
	c.Run()
	waitFinished(t, c, 60*time.Second)
	c.Poll()
	h := c.Histogram1D("/higgs/dijet-mass")
	if h == nil {
		t.Fatal("dijet mass histogram missing")
	}
	// The peak must sit near the generated Higgs mass.
	ax := h.Axis()
	best, bestH := 0.0, -1.0
	for i := 0; i < ax.Bins(); i++ {
		cn := ax.BinCenter(i)
		if cn >= 100 && cn <= 140 && h.BinHeight(i) > bestH {
			best, bestH = cn, h.BinHeight(i)
		}
	}
	if bestH <= 0 || best < 110 || best > 130 {
		t.Fatalf("merged Higgs peak at %.1f GeV (height %.0f)", best, bestH)
	}
}

func TestBadScriptUploadRejected(t *testing.T) {
	g := newGrid(t, 100)
	c, _ := g.ClientFor("alice")
	if err := c.CreateSession(); err != nil {
		t.Fatal(err)
	}
	defer c.CloseSession()
	if _, err := c.LoadScript("bad", "function process( {", events.EventDecoderName, nil); err == nil {
		t.Fatal("syntax error accepted at upload")
	}
	if !strings.Contains(strings.ToLower(errString(t, c)), "") {
		// reached: just ensure session still usable
	}
	if _, err := c.AttachDataset("ds-zh"); err != nil {
		t.Fatalf("session unusable after rejected upload: %v", err)
	}
}

func errString(t *testing.T, c *Client) string { return "" }

func TestMonitorRoleDeniedSessionCreation(t *testing.T) {
	g := newGrid(t, 100)
	if _, err := g.AddUser("watcher", gsi.RoleMonitor); err != nil {
		t.Fatal(err)
	}
	c, err := g.ClientFor("watcher")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateSession(); err == nil {
		t.Fatal("monitor role created a session")
	} else if !strings.Contains(err.Error(), "Denied") && !strings.Contains(err.Error(), "authorized") {
		t.Fatalf("unexpected error: %v", err)
	}
	// But catalog reads are allowed.
	if _, err := c.ListCatalog("/"); err != nil {
		t.Fatalf("monitor denied catalog read: %v", err)
	}
}

func TestUnknownUserDenied(t *testing.T) {
	g := newGrid(t, 100)
	// eve has a CA-signed cert but no VO membership.
	cred, err := g.CA.IssueUser("lc-vo", "eve", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	proxy, _ := gsi.NewProxy(cred, time.Hour)
	c, err := Connect(g.Manager.Addr(), proxy, g.CA)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateSession(); err == nil {
		t.Fatal("non-VO user created a session")
	}
}

func TestRMIRequiresLiveToken(t *testing.T) {
	g := newGrid(t, 100)
	c, _ := g.ClientFor("alice")
	if err := c.CreateSession(); err != nil {
		t.Fatal(err)
	}
	// Closing the session invalidates the token; polling must fail.
	if err := c.CloseSession(); err != nil {
		t.Fatal(err)
	}
	c2, _ := g.ClientFor("alice")
	if err := c2.CreateSession(); err != nil {
		t.Fatal(err)
	}
	defer c2.CloseSession()
	// Fresh session works.
	if _, err := c2.Poll(); err != nil {
		t.Fatalf("fresh token rejected: %v", err)
	}
}

func TestSessionCloseFreesNodes(t *testing.T) {
	g := newGrid(t, 100)
	c, _ := g.ClientFor("alice")
	if err := c.CreateSession(); err != nil {
		t.Fatal(err)
	}
	if g.Cluster.RunningCount() != 4 {
		t.Fatalf("running jobs = %d, want 4 engines", g.Cluster.RunningCount())
	}
	if err := c.CloseSession(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.Cluster.RunningCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if n := g.Cluster.RunningCount(); n != 0 {
		t.Fatalf("%d engine jobs still running after close", n)
	}
	// A second session starts cleanly on the freed nodes.
	c2, _ := g.ClientFor("alice")
	if err := c2.CreateSession(); err != nil {
		t.Fatal(err)
	}
	c2.CloseSession()
}
