package core

import (
	"bytes"
	"testing"
	"time"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/events"
	"github.com/ipa-grid/ipa/internal/gsi"
	"github.com/ipa-grid/ipa/internal/merge"
)

// TestRelayGridFailoverConvergence runs the full client workflow on a
// replicated, relay-fronted fabric: the client's reads resolve onto
// the relay tier (writes stay on the owning shard), and when the
// primary dies and a replica is promoted, the epoch change propagates
// shard → relay → client so the mirror full-resyncs and converges
// byte-identically to the promoted owner.
func TestRelayGridFailoverConvergence(t *testing.T) {
	g, err := NewLocalGrid(GridOptions{
		Nodes: 2, BaseDir: t.TempDir(), SnapshotEvery: 100,
		Shards: 3, Insecure: true,
		Replicate: true, ReplicaDepth: 1,
		Relays: 1, RelayInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	if len(g.Relays) != 1 || g.Relays["relay00"] == nil {
		t.Fatalf("relay tier = %v", g.Relays)
	}
	if _, err := g.AddUser("dave", gsi.RoleAnalyst); err != nil {
		t.Fatal(err)
	}
	err = g.PublishDataset("ds-relay", "/lc/relay", "relay-events", 800,
		events.GenConfig{Seed: 11, SignalFraction: 0.3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := g.ClientFor("dave")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateSession(); err != nil {
		t.Fatal(err)
	}
	defer c.CloseSession()
	c.SetDirectPoll(true)
	if _, err := c.AttachDataset("ds-relay"); err != nil {
		t.Fatal(err)
	}
	src := `
	h = tree.h1d("/ana", "mult", "Multiplicity", 50, 0, 200);
	function process(ev) { h.fill(ev.n); }
	`
	if _, err := c.LoadScript("mult", src, events.EventDecoderName, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	waitFinished(t, c, 30*time.Second)
	if _, err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if h := c.Histogram1D("/ana/mult"); h == nil || h.AllEntries() != 800 {
		t.Fatalf("merged histogram via relay = %+v", h)
	}
	if got := c.DirectShard(); got != "relay:relay00" {
		t.Fatalf("client reads resolved onto %q, want the relay tier", got)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.RelayName != "relay00" || st.RelayAddr == "" {
		t.Fatalf("status relay = %q/%q", st.RelayName, st.RelayAddr)
	}
	if st.Shard == "" || st.ResultEpoch == 0 {
		t.Fatalf("status shard/epoch = %q/%d", st.Shard, st.ResultEpoch)
	}

	// Kill the primary: the replica is promoted under a fresh epoch.
	// The engines are done, so what the client sees afterwards is
	// exactly what the replica preserved plus the epoch-driven resync.
	if _, promoted := g.Router.MarkDead(st.Shard); len(promoted) == 0 {
		t.Fatalf("killing %s promoted no replicas", st.Shard)
	}
	deadline := time.Now().Add(10 * time.Second)
	var st2 StatusResponse
	for {
		st2, err = c.Status()
		if err != nil {
			t.Fatal(err)
		}
		if st2.ResultEpoch != 0 && st2.ResultEpoch != st.ResultEpoch {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ResultEpoch never flipped after failover: %d", st2.ResultEpoch)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st2.Shard == st.Shard {
		t.Fatalf("session still placed on the dead shard %s", st.Shard)
	}

	// The relay re-baselines on its next subscription polls and the
	// client's epoch rule forces a full resync through it; converge on
	// the promoted owner's exact state.
	for {
		if _, err := c.Poll(); err != nil {
			t.Fatal(err)
		}
		h := c.Histogram1D("/ana/mult")
		if h != nil && h.AllEntries() == 800 && relayMatchesOwner(t, g, c.SessionID()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never converged after failover: %+v", h)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// relayMatchesOwner compares the relay's full served frames against
// the owning shard's, byte for byte.
func relayMatchesOwner(t *testing.T, g *LocalGrid, sid string) bool {
	t.Helper()
	read := func(p interface {
		Poll(merge.PollArgs, *merge.PollReply) error
	}) map[string][]byte {
		var reply merge.PollReply
		if err := p.Poll(merge.PollArgs{SessionID: sid, Full: true}, &reply); err != nil {
			t.Fatal(err)
		}
		out := make(map[string][]byte, len(reply.Entries))
		for _, e := range reply.Entries {
			st, err := e.State()
			if err != nil {
				t.Fatal(err)
			}
			buf, err := aida.AppendObjectState(nil, &st)
			if err != nil {
				t.Fatal(err)
			}
			out[e.Path] = buf
		}
		return out
	}
	op := g.Router.OriginPoller()
	want := read(&op)
	got := read(g.Relays["relay00"])
	if len(want) == 0 || len(want) != len(got) {
		return false
	}
	for k, v := range want {
		if !bytes.Equal(got[k], v) {
			return false
		}
	}
	return true
}
