package core

import (
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/gsi"
	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/relay"
	"github.com/ipa-grid/ipa/internal/rmi"
	"github.com/ipa-grid/ipa/internal/session"
	"github.com/ipa-grid/ipa/internal/shard"
	"github.com/ipa-grid/ipa/internal/wsrf"
)

// Client is the scientist's tool — the JAS3-with-plug-ins analogue. It
// follows the four steps of Figure 1: connect securely and create a
// session; select a dataset and submit it for analysis; initiate runs
// with custom code; collect and display merged results.
type Client struct {
	ws  *wsrf.Client
	rmi *rmi.Client

	sessionID string
	token     string
	engines   int
	rmiAddr   string

	mu      sync.Mutex
	tree    *aida.Tree // client-side mirror of the merged results
	version int64
	// epoch is the last seen session-state incarnation (see
	// merge.PollReply.Epoch); a change means the merged state was
	// rebuilt from scratch and the mirror must full-resync.
	epoch int64

	// Direct shard polling (SetDirectPoll): a second RMI connection to
	// the session's owning shard, bypassing the router hop.
	direct       bool
	directRMI    *rmi.Client
	directShard  string
	directTarget string
}

// Connect authenticates to a manager. proxy may be nil only for
// plain-HTTP (test) managers; ca supplies the trust anchors.
func Connect(addr string, proxy *gsi.Proxy, ca *gsi.CA) (*Client, error) {
	if proxy == nil {
		return &Client{ws: wsrf.NewClient(addr, nil), tree: aida.NewTree()}, nil
	}
	if ca == nil {
		return nil, fmt.Errorf("core: proxy given without CA pool")
	}
	return ConnectWithPool(addr, proxy, ca.Pool())
}

// ConnectWithPool is Connect with an explicit trust-anchor pool (used by
// external clients that load the CA certificate from disk).
func ConnectWithPool(addr string, proxy *gsi.Proxy, roots *x509.CertPool) (*Client, error) {
	var cfg *tls.Config
	if proxy != nil {
		cfg = gsi.ClientTLSConfig(proxy, roots)
		cfg.ServerName = "localhost"
	}
	return &Client{ws: wsrf.NewClient(addr, cfg), tree: aida.NewTree()}, nil
}

// CreateSession performs step 2 of Figure 2: create the session resource
// and connect the result-polling plug-in to the RMI endpoint.
func (c *Client) CreateSession() error {
	var resp CreateSessionResponse
	if err := c.ws.Call("Control.CreateSession", "", &CreateSessionRequest{}, &resp); err != nil {
		return err
	}
	c.sessionID = resp.SessionID
	c.token = resp.Token
	c.engines = resp.Engines
	c.rmiAddr = resp.RMIAddr
	rc, err := rmi.Dial(resp.RMIAddr, resp.Token, rmi.WithRetry(clientRetry))
	if err != nil {
		return fmt.Errorf("core: connecting result channel: %w", err)
	}
	c.rmi = rc
	return nil
}

// clientRetry is the dial policy for result-channel connections: a
// manager restarting (WAL replay) or briefly partitioned should cost a
// few backoff waits, not a dead client. Bounded so a truly gone
// endpoint still errors promptly.
var clientRetry = rmi.RetryPolicy{Attempts: 4, Base: 50 * time.Millisecond, Max: time.Second}

// SessionID returns the active session's ID.
func (c *Client) SessionID() string { return c.sessionID }

// Token returns the session token (for GridFTP uploads etc.).
func (c *Client) Token() string { return c.token }

// Engines returns the per-session engine count policy.
func (c *Client) Engines() int { return c.engines }

// ListCatalog browses a catalog directory (the Figure 3 dialog).
func (c *Client) ListCatalog(path string) ([]CatalogEntry, error) {
	var resp CatalogListResponse
	if err := c.ws.Call("Catalog.List", "", &CatalogListRequest{Path: path}, &resp); err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// QueryCatalog searches datasets by metadata.
func (c *Client) QueryCatalog(q string) ([]CatalogEntry, error) {
	var resp CatalogListResponse
	if err := c.ws.Call("Catalog.Query", "", &CatalogQueryRequest{Query: q}, &resp); err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// StagingTimes reports an attach's phase durations in milliseconds.
type StagingTimes struct {
	SizeMB    float64
	Parts     int
	MoveWhole int64
	Split     int64
	MoveParts int64
	Imbalance float64
}

// AttachDataset selects and stages a dataset (steps 4–5 of Figure 2).
func (c *Client) AttachDataset(datasetID string) (StagingTimes, error) {
	var resp AttachResponse
	if err := c.ws.Call("Session.AttachDataset", c.sessionID, &AttachRequest{DatasetID: datasetID}, &resp); err != nil {
		return StagingTimes{}, err
	}
	return StagingTimes{
		SizeMB: resp.SizeMB, Parts: resp.Parts,
		MoveWhole: resp.MoveWholeMS, Split: resp.SplitMS, MoveParts: resp.MovePartsMS,
		Imbalance: resp.Imbalance,
	}, nil
}

// LoadScript ships interpreter source as the session's analysis code.
func (c *Client) LoadScript(name, source, decoder string, params map[string]string) (version int, err error) {
	return c.loadCode(LoadCodeRequest{
		Name: name, Language: "script", Source: source, Decoder: decoder, Params: kvs(params),
	})
}

// LoadNative selects a pre-installed analysis by name.
func (c *Client) LoadNative(name, analysisName string, params map[string]string) (version int, err error) {
	return c.loadCode(LoadCodeRequest{
		Name: name, Language: "native", Analysis: analysisName, Params: kvs(params),
	})
}

func kvs(params map[string]string) []KV {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]KV, 0, len(keys))
	for _, k := range keys {
		out = append(out, KV{k, params[k]})
	}
	return out
}

func (c *Client) loadCode(req LoadCodeRequest) (int, error) {
	var resp LoadCodeResponse
	if err := c.ws.Call("Session.LoadCode", c.sessionID, &req, &resp); err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// Run starts the analysis on every engine.
func (c *Client) Run() error { return c.control(session.ActionRun, 0) }

// Pause suspends all engines.
func (c *Client) Pause() error { return c.control(session.ActionPause, 0) }

// Stop halts and rewinds all engines.
func (c *Client) Stop() error { return c.control(session.ActionStop, 0) }

// Rewind restarts the analysis from the first event (fresh histograms,
// newest code).
func (c *Client) Rewind() error { return c.control(session.ActionRewind, 0) }

// Step runs n events on every engine then pauses.
func (c *Client) Step(n int64) error { return c.control(session.ActionStep, n) }

func (c *Client) control(a session.Action, n int64) error {
	return c.ws.Call("Session.Control", c.sessionID, &ControlRequest{Action: string(a), N: n}, &OK{})
}

// Status fetches the session status.
func (c *Client) Status() (StatusResponse, error) {
	var resp StatusResponse
	err := c.ws.Call("Session.Status", c.sessionID, &StatusRequest{}, &resp)
	return resp, err
}

// Update is the result of one poll cycle.
type Update struct {
	// Changed reports whether anything new arrived.
	Changed bool
	// ChangedPaths lists the object paths that were updated.
	ChangedPaths []string
	// Progress summarizes every engine.
	Progress []merge.WorkerProgress
	// Logs carries new analysis print() output.
	Logs []string
	// EventsDone/EventsTotal aggregate progress over engines.
	EventsDone, EventsTotal int64
}

// SetDirectPoll toggles shard-aware polling. When on, Poll learns the
// session's owning shard and its RMI endpoint from Session.Status and
// calls the shard's manager object directly — heavy pollers skip the
// router hop on every poll. The direct path falls back to the fabric's
// front door (and re-resolves placement on the next poll) whenever it
// errors or the shard no longer owns the session: after a live handoff
// the old owner's tombstone answers with a regressed version, which is
// the signal to re-resolve. On an unsharded or unadvertised deployment
// the toggle quietly turns itself back off after the first resolution
// attempt.
func (c *Client) SetDirectPoll(on bool) {
	c.mu.Lock()
	c.direct = on
	rc := c.directRMI
	c.directRMI, c.directShard, c.directTarget = nil, "", ""
	c.mu.Unlock()
	if rc != nil {
		rc.Close()
	}
}

// DirectShard names the shard the client is currently polling directly
// ("" while polling via the router).
func (c *Client) DirectShard() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.directShard
}

// ensureDirect returns a live direct-shard connection and Poll target,
// resolving placement and dialing on first use. ("", nil) means poll
// via the router.
func (c *Client) ensureDirect() (*rmi.Client, string) {
	c.mu.Lock()
	if !c.direct {
		c.mu.Unlock()
		return nil, ""
	}
	if c.directRMI != nil {
		rc, target := c.directRMI, c.directTarget
		c.mu.Unlock()
		return rc, target
	}
	c.mu.Unlock()
	st, err := c.Status()
	if err != nil {
		return nil, ""
	}
	var addr, label, target string
	switch {
	case st.RelayName != "" && st.RelayAddr != "":
		// The fabric assigned this session a read relay: poll it instead
		// of the owning shard, so the shard's bandwidth stays with
		// writers. The relay serves its own mirror (own version counter
		// and epoch); the epoch-resync rule absorbs the switch.
		addr = st.RelayAddr
		label = "relay:" + st.RelayName
		target = relay.ObjectName(st.RelayName) + ".Poll"
	case st.Shard == "":
		// Unsharded fabric: there is no hop to skip, ever — stop
		// re-resolving on every poll.
		c.mu.Lock()
		c.direct = false
		c.mu.Unlock()
		return nil, ""
	case st.ShardAddr == "":
		// A real shard whose endpoint just isn't advertised (yet): keep
		// direct mode armed and retry resolution on a later poll — the
		// operator may SetShardAddr at any time, or a handoff may move
		// the session to an advertised shard.
		return nil, ""
	default:
		addr = st.ShardAddr
		label = st.Shard
		target = shard.ObjectName(st.Shard) + ".Poll"
	}
	rc, err := rmi.Dial(addr, c.token, rmi.WithRetry(clientRetry))
	if err != nil {
		return nil, ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.direct || c.directRMI != nil {
		// Lost a race with SetDirectPoll or a concurrent resolver.
		go rc.Close()
		return c.directRMI, c.directTarget
	}
	c.directRMI = rc
	c.directShard = label
	c.directTarget = target
	return rc, c.directTarget
}

// dropDirect discards the direct connection; the next poll re-resolves
// placement.
func (c *Client) dropDirect() {
	c.mu.Lock()
	rc := c.directRMI
	c.directRMI, c.directShard, c.directTarget = nil, "", ""
	c.mu.Unlock()
	if rc != nil {
		rc.Close()
	}
}

// pollReply fetches one PollReply, preferring the direct shard (or
// relay) path. sinceEpoch is the mirror's last seen incarnation stamp:
// a direct reply whose version regressed but whose epoch changed is a
// legitimate rebuild (relay re-baseline, failover promotion) that the
// caller's resync rule handles, not a stale endpoint.
func (c *Client) pollReply(args merge.PollArgs, sinceEpoch int64) (merge.PollReply, error) {
	var reply merge.PollReply
	if rc, target := c.ensureDirect(); rc != nil {
		err := rc.Call(target, args, &reply)
		// A tombstone's version-0 reply is NOT a rebuild whatever epoch it
		// carries — only a reply with actual state qualifies.
		epochFlip := err == nil && reply.Version > 0 &&
			reply.Epoch != 0 && sinceEpoch != 0 && reply.Epoch != sinceEpoch
		if err == nil && reply.Version > 0 && (reply.Version >= args.SinceVersion || epochFlip) {
			return reply, nil
		}
		if err != nil || (reply.Version < args.SinceVersion && !epochFlip) {
			// Broken endpoint, or the shard no longer owns the session
			// (a tombstone's version regresses): re-resolve placement on
			// the next poll.
			c.dropDirect()
		}
		// Otherwise the direct reply reported version 0 with the mirror
		// also at 0 — indistinguishable between "right shard, no data
		// yet" and "tombstone of a moved session". Serve this poll via
		// the router (authoritative either way) but keep the direct
		// connection: once data flows the client's version rises and a
		// tombstone's regressed version becomes detectable.
		reply.Release()
		reply = merge.PollReply{}
	}
	err := c.rmi.Call("AIDAManager.Poll", args, &reply)
	return reply, err
}

// Poll fetches merged-histogram updates from the AIDA manager via RMI —
// the "Start Polling for Data" plug-in of Figure 2. The client keeps a
// local mirror tree; each poll applies only changed objects.
func (c *Client) Poll() (Update, error) {
	if c.rmi == nil {
		return Update{}, fmt.Errorf("core: no session (CreateSession first)")
	}
	c.mu.Lock()
	since, sinceEpoch := c.version, c.epoch
	c.mu.Unlock()
	reply, err := c.pollReply(merge.PollArgs{
		SessionID: c.sessionID, SinceVersion: since,
	}, sinceEpoch)
	if err != nil {
		return Update{}, err
	}
	// Resync when the merged state was rebuilt under us: the version
	// regressed (a handoff tombstone reset a straggler poll), or the
	// incarnation epoch changed (a shard died and the engines
	// re-baselined on a fresh owner — whose new version counter may
	// already have overtaken ours, which is why regression alone is not
	// a sufficient signal).
	resync := since > 0 && (reply.Version < since ||
		(reply.Epoch != 0 && sinceEpoch != 0 && reply.Epoch != sinceEpoch))
	if resync {
		// Our mirror may hold state the new owner never saw, so rebuild
		// it from a full poll instead of patching. The full poll must go
		// to the same endpoint as the incremental one (pollReply, not the
		// front door): a relay mirror stamps its own epoch, and mixing a
		// router-epoch baseline with relay-epoch increments would resync
		// forever.
		reply.Release()
		reply = merge.PollReply{}
		reply, err = c.pollReply(merge.PollArgs{
			SessionID: c.sessionID, Full: true,
		}, 0)
		if err != nil {
			return Update{}, err
		}
	}
	up := Update{Changed: reply.Changed || resync, Progress: reply.Progress, Logs: reply.Logs}
	for _, p := range reply.Progress {
		up.EventsDone += p.EventsDone
		up.EventsTotal += p.EventsTotal
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.version = reply.Version
	if reply.Epoch != 0 {
		c.epoch = reply.Epoch
	}
	if resync {
		c.tree = aida.NewTree()
	}
	for _, path := range reply.Removed {
		c.tree.Rm(path)
	}
	for _, ent := range reply.Entries {
		obj, err := ent.Restore()
		if err != nil {
			return up, fmt.Errorf("core: bad object %s in poll: %w", ent.Path, err)
		}
		c.tree.Rm(ent.Path)
		if err := c.tree.PutAt(ent.Path, obj); err != nil {
			return up, err
		}
		up.ChangedPaths = append(up.ChangedPaths, ent.Path)
	}
	// Every frame in this reply was decoded off the wire and is now
	// consumed; recycle the buffers for the next poll.
	reply.Release()
	return up, nil
}

// Tree returns the client's mirror of the merged results (live view; do
// not mutate).
func (c *Client) Tree() *aida.Tree {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree
}

// Histogram1D fetches a mirrored histogram by path, or nil.
func (c *Client) Histogram1D(path string) *aida.Histogram1D {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, _ := c.tree.Get(path).(*aida.Histogram1D)
	return h
}

// CloseSession tears down the remote session and the result channel.
func (c *Client) CloseSession() error {
	if c.sessionID == "" {
		return nil
	}
	err := c.ws.Call("Session.Close", c.sessionID, &CloseRequest{}, &OK{})
	if c.rmi != nil {
		c.rmi.Close()
		c.rmi = nil
	}
	c.dropDirect()
	c.sessionID = ""
	return err
}
