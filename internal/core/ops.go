// Package core assembles the IPA framework: the manager node that hosts
// every Web Service of Figure 2, the client the scientist drives (the JAS3
// analogue), and an in-process LocalGrid that stands up a complete Grid
// site — CA, VO, scheduler, GRAM, storage elements, GridFTP, manager —
// on loopback TCP with real protocols.
package core

import "encoding/xml"

// Wire payloads for the manager's WSRF operations. One request/response
// struct pair per operation, XML-tagged for the envelope body.

// CreateSessionRequest starts a session (Control.CreateSession).
type CreateSessionRequest struct {
	XMLName xml.Name `xml:"createSession"`
}

// CreateSessionResponse returns the session "pointer" (§3.2) and the
// token guarding RMI and GridFTP access.
type CreateSessionResponse struct {
	XMLName   xml.Name `xml:"session"`
	SessionID string   `xml:"id"`
	Token     string   `xml:"token"`
	Engines   int      `xml:"engines"`
	RMIAddr   string   `xml:"rmiAddr"`
}

// CatalogListRequest browses one catalog directory (Catalog.List).
type CatalogListRequest struct {
	XMLName xml.Name `xml:"list"`
	Path    string   `xml:"path"`
}

// CatalogQueryRequest searches the catalog (Catalog.Query).
type CatalogQueryRequest struct {
	XMLName xml.Name `xml:"query"`
	Query   string   `xml:"q"`
}

// CatalogEntry is one browse/search row.
type CatalogEntry struct {
	Path    string  `xml:"path"`
	IsDir   bool    `xml:"dir,attr"`
	ID      string  `xml:"id,omitempty"`
	Name    string  `xml:"name,omitempty"`
	SizeMB  float64 `xml:"sizeMB,omitempty"`
	Records int64   `xml:"records,omitempty"`
	Format  string  `xml:"format,omitempty"`
	Attrs   []KV    `xml:"attr"`
}

// KV is one metadata pair on the wire.
type KV struct {
	Key   string `xml:"key,attr"`
	Value string `xml:"value,attr"`
}

// CatalogListResponse returns browse rows.
type CatalogListResponse struct {
	XMLName xml.Name       `xml:"entries"`
	Entries []CatalogEntry `xml:"entry"`
}

// AttachRequest stages a dataset into the session (Session.AttachDataset).
type AttachRequest struct {
	XMLName   xml.Name `xml:"attach"`
	DatasetID string   `xml:"dataset"`
}

// AttachResponse reports staging phase timings (Table 2's columns).
type AttachResponse struct {
	XMLName     xml.Name `xml:"staged"`
	SizeMB      float64  `xml:"sizeMB"`
	Parts       int      `xml:"parts"`
	MoveWholeMS int64    `xml:"moveWholeMS"`
	SplitMS     int64    `xml:"splitMS"`
	MovePartsMS int64    `xml:"movePartsMS"`
	Imbalance   float64  `xml:"imbalance"`
	Replica     string   `xml:"replica"`
}

// LoadCodeRequest ships an analysis bundle (Session.LoadCode).
type LoadCodeRequest struct {
	XMLName  xml.Name `xml:"loadCode"`
	Name     string   `xml:"name"`
	Language string   `xml:"language"`
	Source   string   `xml:"source,omitempty"`
	Analysis string   `xml:"analysis,omitempty"`
	Decoder  string   `xml:"decoder,omitempty"`
	Params   []KV     `xml:"param"`
}

// LoadCodeResponse acknowledges with the assigned version.
type LoadCodeResponse struct {
	XMLName xml.Name `xml:"loaded"`
	Version int      `xml:"version"`
	Hash    string   `xml:"hash"`
	Bytes   int      `xml:"bytes"`
}

// ControlRequest drives the run (Session.Control).
type ControlRequest struct {
	XMLName xml.Name `xml:"control"`
	Action  string   `xml:"action"`
	N       int64    `xml:"n,omitempty"`
}

// StatusRequest asks for session status (Session.Status).
type StatusRequest struct {
	XMLName xml.Name `xml:"status"`
}

// EngineStatusXML is one engine row in a status report.
type EngineStatusXML struct {
	Node  string `xml:"node,attr"`
	State string `xml:"state,attr"`
	Err   string `xml:"err,omitempty"`
	Done  int64  `xml:"done,attr"`
	Total int64  `xml:"total,attr"`
}

// StatusResponse summarizes the session.
type StatusResponse struct {
	XMLName xml.Name `xml:"sessionStatus"`
	State   string   `xml:"state"`
	Dataset string   `xml:"dataset,omitempty"`
	Bundle  string   `xml:"bundle,omitempty"`
	// Shard names the merge-fabric shard serving this session's results
	// (empty on an unsharded deployment).
	Shard string `xml:"shard,omitempty"`
	// ShardAddr is the RMI endpoint serving that shard directly (empty
	// when unadvertised); polling clients may dial it to skip the
	// router hop.
	ShardAddr string `xml:"shardAddr,omitempty"`
	// RelayName names the read relay assigned to this session's polls
	// (empty when the fabric has no relay tier or relay reads are off).
	RelayName string `xml:"relayName,omitempty"`
	// RelayAddr is the RMI endpoint serving that relay (empty when
	// unadvertised); polling clients should prefer it for reads and keep
	// writes on the owning shard.
	RelayAddr string `xml:"relayAddr,omitempty"`
	// PlacementGen is the fabric's placement-table generation — it bumps
	// on every topology edit, rebalance move, or fault eviction (0 when
	// unsharded).
	PlacementGen uint64 `xml:"placementGen,omitempty"`
	// DeadShards lists fabric shards currently marked unreachable by the
	// health prober.
	DeadShards []string `xml:"deadShard,omitempty"`
	// ResultEpoch stamps the session's merge-state incarnation: it
	// changes when the state is rebuilt (failover promotion or
	// post-fault re-baseline), telling incremental pollers to discard
	// their mirror and full-resync.
	ResultEpoch int64 `xml:"resultEpoch,omitempty"`
	// Replica names the shard holding the session's first standby copy
	// (empty when replication is off); ReplicaChain lists the whole
	// replica chain in order for depth-K fabrics.
	Replica      string   `xml:"replica,omitempty"`
	ReplicaChain []string `xml:"replicaChain>shard,omitempty"`
	// Publishes / Polls are the session's cumulative merge-traffic
	// counters; FastPolls is the subset of polls served on the lock-free
	// quiescent path (fast-path poll ratio = fastPolls/polls).
	Publishes int64 `xml:"publishes,omitempty"`
	Polls     int64 `xml:"polls,omitempty"`
	FastPolls int64 `xml:"fastPolls,omitempty"`
	// ReplicaLag is how many merged-result versions the standby trails
	// the owner (0 when unreplicated or caught up).
	ReplicaLag int64             `xml:"replicaLag,omitempty"`
	Engines    []EngineStatusXML `xml:"engine"`
}

// CloseRequest tears the session down (Session.Close).
type CloseRequest struct {
	XMLName xml.Name `xml:"close"`
}

// OK is the empty acknowledgement.
type OK struct {
	XMLName xml.Name `xml:"ok"`
}
