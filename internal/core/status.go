// Fabric status: the JSON document behind ipa-manager's /fabric/status
// endpoint (and ipa-client -watch). It is a read-only snapshot stitched
// from the same lock-free surfaces the fabric's own policy loops use —
// the placement table, the per-shard Stats atomics, and the global
// telemetry event ring — so serving it never blocks a publish.

package core

import (
	"sort"

	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/obs"
	"github.com/ipa-grid/ipa/internal/shard"
)

// ShardStatus is one fabric member in a FabricStatus report.
type ShardStatus struct {
	Name string `json:"name"`
	// Dead marks a shard the health prober currently considers
	// unreachable.
	Dead bool `json:"dead,omitempty"`
	// Sessions counts the sessions the placement table routes here.
	Sessions int `json:"sessions"`
	// Publishes / Polls aggregate the cumulative traffic counters of the
	// sessions placed on this shard — the same load signal the balancer
	// ranks by.
	Publishes int64 `json:"publishes"`
	Polls     int64 `json:"polls"`
}

// SessionPlacement is one session's placement row in a FabricStatus.
type SessionPlacement struct {
	SessionID string `json:"sessionID"`
	Shard     string `json:"shard,omitempty"`
	// Replica is the first chain hop (kept for single-standby readers);
	// Chain is the per-hop breakdown of the whole replica chain in
	// order, each hop with its own lag and staleness mark.
	Replica string         `json:"replica,omitempty"`
	Chain   []shard.HopLag `json:"chain,omitempty"`
	// Epoch is the merge-state incarnation stamp (bumps on failover
	// promotion); Version the merged-result version clients poll against.
	Epoch   int64 `json:"epoch,omitempty"`
	Version int64 `json:"version"`
	// Publishes / Polls / FastPolls are the cumulative traffic counters;
	// ReplicaLag is how many versions the deepest-lagging chain hop
	// trails the owner (the per-hop breakdown is Chain).
	Publishes  int64 `json:"publishes"`
	Polls      int64 `json:"polls"`
	FastPolls  int64 `json:"fastPolls"`
	ReplicaLag int64 `json:"replicaLag,omitempty"`
}

// RelayStatus is one read-relay row in a FabricStatus report: the
// fan-out the relay tier is buying (downstream polls served per
// upstream subscription poll) and how stale its mirrors run.
type RelayStatus struct {
	Name string `json:"name"`
	// Sessions counts the live delta subscriptions this relay holds.
	Sessions int `json:"sessions"`
	// UpPolls / DownPolls are cumulative upstream subscription polls vs
	// downstream client polls served; FanOut is their ratio — the
	// poll-amplification the relay absorbs for the owning shards.
	UpPolls   int64   `json:"upPolls"`
	DownPolls int64   `json:"downPolls"`
	FanOut    float64 `json:"fanOut"`
	// Clients counts currently-attached streaming clients (SSE viewers
	// and registered watchers).
	Clients int64 `json:"clients"`
	// StalenessMS is the age of the relay's least-recently-synced
	// mirror — the worst-case lag a reader here can observe.
	StalenessMS float64 `json:"stalenessMS"`
	// Rebaselines counts full re-syncs forced by upstream epoch flips
	// or NeedFull signals.
	Rebaselines int64 `json:"rebaselines,omitempty"`
}

// FabricStatus is the live fabric snapshot served as JSON at
// /fabric/status.
type FabricStatus struct {
	// Sharded is false when results are served by a single unsharded
	// manager (Shards then holds one synthetic "manager" row).
	Sharded bool `json:"sharded"`
	// PlacementGen is the placement-table generation (0 when unsharded).
	PlacementGen uint64        `json:"placementGen,omitempty"`
	Shards       []ShardStatus `json:"shards"`
	// Relays lists the read fan-out tier (nil when the fabric has none).
	Relays     []RelayStatus      `json:"relays,omitempty"`
	Placements []SessionPlacement `json:"placements"`
	// Events are the most recent structured fabric events (handoffs,
	// promotions, fences, rebalance moves, evictions, dead marks,
	// revivals, spans) from the in-memory telemetry ring.
	Events []obs.Event `json:"events"`
	// NextEventSeq resumes the ring: pass it to the telemetry RPC (or
	// compare across polls) to read only newer events.
	NextEventSeq uint64 `json:"nextEventSeq"`
}

// FabricStatus snapshots the merge fabric for the status endpoint. The
// event tail is capped at maxEvents (<= 0 selects 64).
func (g *LocalGrid) FabricStatus(maxEvents int) FabricStatus {
	if maxEvents <= 0 {
		maxEvents = 64
	}
	st := FabricStatus{}
	next := obs.Events.NextSeq()
	var since uint64
	if n := uint64(maxEvents); next > n {
		since = next - n
	}
	st.Events = obs.Events.Since(since, maxEvents)
	st.NextEventSeq = next

	if g.Router == nil {
		// Unsharded: one synthetic shard row covering every live session.
		row := ShardStatus{Name: "manager"}
		for _, sid := range sortedSessions(g.Session.Sessions()) {
			var sr merge.StatsReply
			if p, ok := g.Merge.(interface {
				Stats(merge.StatsArgs, *merge.StatsReply) error
			}); ok {
				p.Stats(merge.StatsArgs{SessionID: sid}, &sr)
			}
			row.Sessions++
			row.Publishes += sr.Publishes
			row.Polls += sr.Polls
			st.Placements = append(st.Placements, SessionPlacement{
				SessionID: sid, Epoch: sr.Epoch, Version: sr.Version,
				Publishes: sr.Publishes, Polls: sr.Polls, FastPolls: sr.FastPolls,
			})
		}
		st.Shards = []ShardStatus{row}
		return st
	}

	st.Sharded = true
	st.PlacementGen = g.Router.Generation()
	dead := make(map[string]bool)
	for _, name := range g.Router.DeadShards() {
		dead[name] = true
	}
	rows := make(map[string]*ShardStatus)
	names := g.Router.Shards()
	sort.Strings(names)
	for _, name := range names {
		rows[name] = &ShardStatus{Name: name, Dead: dead[name]}
	}
	for _, sid := range sortedSessions(g.Router.Sessions()) {
		owner := g.Router.Placement(sid)
		var sr merge.StatsReply
		g.Router.Stats(merge.StatsArgs{SessionID: sid}, &sr)
		p := SessionPlacement{
			SessionID: sid, Shard: owner,
			Replica: g.Router.ReplicaOf(sid),
			Chain:   g.Router.ReplicaLagChain(sid),
			Epoch:   sr.Epoch, Version: sr.Version,
			Publishes: sr.Publishes, Polls: sr.Polls, FastPolls: sr.FastPolls,
		}
		for _, h := range p.Chain {
			if h.Lag > p.ReplicaLag {
				p.ReplicaLag = h.Lag
			}
		}
		st.Placements = append(st.Placements, p)
		if row := rows[owner]; row != nil {
			row.Sessions++
			row.Publishes += sr.Publishes
			row.Polls += sr.Polls
		}
	}
	for _, name := range names {
		st.Shards = append(st.Shards, *rows[name])
	}
	relayNames := make([]string, 0, len(g.Relays))
	for name := range g.Relays {
		relayNames = append(relayNames, name)
	}
	sort.Strings(relayNames)
	for _, name := range relayNames {
		rs := g.Relays[name].Stats()
		st.Relays = append(st.Relays, RelayStatus{
			Name: rs.Name, Sessions: rs.Sessions,
			UpPolls: rs.UpPolls, DownPolls: rs.DownPolls, FanOut: rs.FanOut,
			Clients: rs.Clients, StalenessMS: rs.StalenessMS,
			Rebaselines: rs.Rebaselines,
		})
	}
	return st
}

// sortedSessions orders session IDs for a stable status document.
func sortedSessions(ids []string) []string {
	sort.Strings(ids)
	return ids
}
