package core

import (
	"fmt"
	"time"

	"github.com/ipa-grid/ipa/internal/catalog"
	"github.com/ipa-grid/ipa/internal/codeloader"
	"github.com/ipa-grid/ipa/internal/gsi"
	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/obs"
	"github.com/ipa-grid/ipa/internal/relay"
	"github.com/ipa-grid/ipa/internal/rmi"
	"github.com/ipa-grid/ipa/internal/session"
	"github.com/ipa-grid/ipa/internal/shard"
	"github.com/ipa-grid/ipa/internal/wsrf"
)

// ManagerConfig wires a manager node.
type ManagerConfig struct {
	// Sessions is the composed session service.
	Sessions *session.Service
	// Catalog backs the Dataset Catalog Service.
	Catalog *catalog.Catalog
	// Merge is the AIDA result fabric exposed over RMI as the front
	// door ("AIDAManager"): a single merge.Manager or a shard.Router.
	Merge merge.Service
	// ShardManagers are the fabric's member shards, each additionally
	// registered under shard.ObjectName(name) so routers on other nodes
	// can dial them directly. Empty for an unsharded deployment.
	ShardManagers map[string]*merge.Manager
	// Relays are the locally-hosted read relays, each registered under
	// relay.ObjectName(name) so clients can dial their assigned relay
	// directly for reads. Empty when the fabric has no relay tier.
	Relays map[string]*relay.Relay
	// VO authorizes operations (nil = allow all authenticated users;
	// plain-HTTP containers then allow everyone — test mode only).
	VO *gsi.VO
	// Host credential + CA pool enable mutual-TLS service endpoints.
	Host  *gsi.Credential
	Roots *gsi.CA
	// EngineCount reported to clients.
	EngineCount int
}

// Manager is the running manager node: the WSRF container with the
// control/session/catalog services plus the RMI endpoint for the AIDA
// manager — the "IPA Service Element" box of Figure 2.
type Manager struct {
	cfg       ManagerConfig
	Container *wsrf.Container
	RMI       *rmi.Server
	rmiAddr   string
}

// opsRequiring maps WSRF actions to VO operations.
var opsRequiring = map[string]gsi.Operation{
	"Control.CreateSession": gsi.OpCreateSession,
	"Session.AttachDataset": gsi.OpStageData,
	"Session.LoadCode":      gsi.OpControlRun,
	"Session.Control":       gsi.OpControlRun,
	"Session.Status":        gsi.OpPollResults,
	"Session.Close":         gsi.OpControlRun,
	"Catalog.List":          gsi.OpReadCatalog,
	"Catalog.Query":         gsi.OpReadCatalog,
}

// NewManager assembles the services and starts listeners on loopback.
// Pass ":0" style addresses to pick free ports.
func NewManager(cfg ManagerConfig, wsrfAddr, rmiAddr string) (*Manager, error) {
	if cfg.Sessions == nil || cfg.Catalog == nil || cfg.Merge == nil {
		return nil, fmt.Errorf("core: incomplete manager configuration")
	}
	m := &Manager{cfg: cfg}

	authz := func(id *gsi.Identity, action string) error {
		if cfg.VO == nil {
			return nil
		}
		op, guarded := opsRequiring[action]
		if !guarded {
			return nil
		}
		return cfg.VO.Authorize(id, op)
	}
	m.Container = wsrf.NewContainer(authz)
	m.register()

	if cfg.Host != nil && cfg.Roots != nil {
		if err := m.Container.ListenTLS(wsrfAddr, cfg.Host, cfg.Roots.Pool()); err != nil {
			return nil, fmt.Errorf("core: wsrf listener: %w", err)
		}
	} else {
		if err := m.Container.ListenHTTP(wsrfAddr); err != nil {
			return nil, fmt.Errorf("core: wsrf listener: %w", err)
		}
	}

	// RMI endpoint: insecure transport, but every call must carry a live
	// session token (§3.7).
	m.RMI = rmi.NewServer(func(token, object, method string) error {
		return cfg.Sessions.ValidateToken(token)
	})
	if err := m.RMI.Register("AIDAManager", cfg.Merge); err != nil {
		m.Container.Close()
		return nil, err
	}
	// Telemetry: the global span/fabric-event ring, readable over RMI
	// with any live session token.
	if err := m.RMI.Register(obs.RMIObjectName, obs.NewService()); err != nil {
		m.Container.Close()
		return nil, err
	}
	for name, mgr := range cfg.ShardManagers {
		if err := m.RMI.Register(shard.ObjectName(name), mgr); err != nil {
			m.Container.Close()
			return nil, err
		}
	}
	for name, rel := range cfg.Relays {
		if err := m.RMI.Register(relay.ObjectName(name), rel); err != nil {
			m.Container.Close()
			return nil, err
		}
	}
	addr, err := m.RMI.ListenAndServe(rmiAddr)
	if err != nil {
		m.Container.Close()
		return nil, fmt.Errorf("core: rmi listener: %w", err)
	}
	m.rmiAddr = addr.String()
	// Advertise the locally-hosted shards' endpoint so clients can learn
	// it from Placement and poll the owning shard directly. Shards
	// served by other nodes are advertised by the operator through
	// Router.SetShardAddr.
	if router, ok := cfg.Merge.(*shard.Router); ok {
		for name := range cfg.ShardManagers {
			router.SetShardAddr(name, m.rmiAddr)
		}
		for name := range cfg.Relays {
			router.SetRelayAddr(name, m.rmiAddr)
		}
	}
	return m, nil
}

// Addr returns the WSRF endpoint address.
func (m *Manager) Addr() string { return m.Container.Addr() }

// RMIAddr returns the AIDA manager RMI address.
func (m *Manager) RMIAddr() string { return m.rmiAddr }

// Close stops both listeners.
func (m *Manager) Close() {
	m.Container.Close()
	m.RMI.Close()
}

func identityDN(ctx *wsrf.OpContext) string {
	if ctx.Identity != nil {
		return ctx.Identity.DN
	}
	return "(unauthenticated)"
}

func (m *Manager) register() {
	c := m.Container
	svc := m.cfg.Sessions

	c.Register("Control.CreateSession", func(ctx *wsrf.OpContext, decode func(any) error) (any, error) {
		sess, err := svc.Create(identityDN(ctx))
		if err != nil {
			return nil, wsrf.Faultf(wsrf.FaultInternal, "%v", err)
		}
		return &CreateSessionResponse{
			SessionID: sess.ID, Token: sess.Token,
			Engines: m.cfg.EngineCount, RMIAddr: m.rmiAddr,
		}, nil
	})

	c.Register("Catalog.List", func(ctx *wsrf.OpContext, decode func(any) error) (any, error) {
		var req CatalogListRequest
		if err := decode(&req); err != nil {
			return nil, wsrf.Faultf(wsrf.FaultBadInput, "%v", err)
		}
		if req.Path == "" {
			req.Path = "/"
		}
		infos, err := m.cfg.Catalog.List(req.Path)
		if err != nil {
			return nil, wsrf.Faultf(wsrf.FaultBadInput, "%v", err)
		}
		return catalogEntries(infos), nil
	})

	c.Register("Catalog.Query", func(ctx *wsrf.OpContext, decode func(any) error) (any, error) {
		var req CatalogQueryRequest
		if err := decode(&req); err != nil {
			return nil, wsrf.Faultf(wsrf.FaultBadInput, "%v", err)
		}
		infos, err := m.cfg.Catalog.Query(req.Query)
		if err != nil {
			return nil, wsrf.Faultf(wsrf.FaultBadInput, "%v", err)
		}
		return catalogEntries(infos), nil
	})

	c.Register("Session.AttachDataset", func(ctx *wsrf.OpContext, decode func(any) error) (any, error) {
		var req AttachRequest
		if err := decode(&req); err != nil {
			return nil, wsrf.Faultf(wsrf.FaultBadInput, "%v", err)
		}
		rep, err := svc.AttachDataset(ctx.ResourceKey, req.DatasetID)
		if err != nil {
			return nil, wsrf.Faultf(wsrf.FaultInternal, "%v", err)
		}
		return &AttachResponse{
			SizeMB: rep.SizeMB, Parts: rep.Parts,
			MoveWholeMS: rep.MoveWhole.Milliseconds(),
			SplitMS:     rep.Split.Milliseconds(),
			MovePartsMS: rep.MoveParts.Milliseconds(),
			Imbalance:   rep.Imbalance,
			Replica:     rep.ReplicaURL,
		}, nil
	})

	c.Register("Session.LoadCode", func(ctx *wsrf.OpContext, decode func(any) error) (any, error) {
		var req LoadCodeRequest
		if err := decode(&req); err != nil {
			return nil, wsrf.Faultf(wsrf.FaultBadInput, "%v", err)
		}
		params := map[string]string{}
		for _, kv := range req.Params {
			params[kv.Key] = kv.Value
		}
		bundle := codeloader.Bundle{
			Name:     req.Name,
			Language: codeloader.Language(req.Language),
			Source:   req.Source,
			Analysis: req.Analysis,
			Decoder:  req.Decoder,
			Params:   params,
		}
		stored, err := svc.LoadCode(ctx.ResourceKey, bundle)
		if err != nil {
			return nil, wsrf.Faultf(wsrf.FaultBadInput, "%v", err)
		}
		return &LoadCodeResponse{Version: stored.Version, Hash: stored.Hash, Bytes: stored.SizeBytes()}, nil
	})

	c.Register("Session.Control", func(ctx *wsrf.OpContext, decode func(any) error) (any, error) {
		var req ControlRequest
		if err := decode(&req); err != nil {
			return nil, wsrf.Faultf(wsrf.FaultBadInput, "%v", err)
		}
		if err := svc.Control(ctx.ResourceKey, session.Action(req.Action), req.N); err != nil {
			return nil, wsrf.Faultf(wsrf.FaultBadInput, "%v", err)
		}
		return &OK{}, nil
	})

	c.Register("Session.Status", func(ctx *wsrf.OpContext, decode func(any) error) (any, error) {
		st, err := svc.Status(ctx.ResourceKey)
		if err != nil {
			return nil, wsrf.Faultf(wsrf.FaultNoSuchRes, "%v", err)
		}
		resp := &StatusResponse{
			State: string(st.State), Dataset: st.Dataset, Bundle: st.Bundle,
			Shard: st.Shard, ShardAddr: st.ShardAddr,
			RelayName: st.RelayName, RelayAddr: st.RelayAddr,
			PlacementGen: st.PlacementGen, DeadShards: st.DeadShards,
			ResultEpoch: st.ResultEpoch, Replica: st.Replica, ReplicaChain: st.ReplicaChain,
			Publishes: st.Publishes, Polls: st.Polls, FastPolls: st.FastPolls,
			ReplicaLag: st.ReplicaLag,
		}
		for _, e := range st.Engines {
			resp.Engines = append(resp.Engines, EngineStatusXML{
				Node: e.Node, State: string(e.State), Err: e.Err, Done: e.Done, Total: e.Total,
			})
		}
		return resp, nil
	})

	c.Register("Session.Close", func(ctx *wsrf.OpContext, decode func(any) error) (any, error) {
		if err := svc.Close(ctx.ResourceKey); err != nil {
			return nil, wsrf.Faultf(wsrf.FaultNoSuchRes, "%v", err)
		}
		return &OK{}, nil
	})
}

func catalogEntries(infos []catalog.Info) *CatalogListResponse {
	resp := &CatalogListResponse{}
	for _, info := range infos {
		e := CatalogEntry{Path: info.Path, IsDir: info.IsDir}
		for k, v := range info.Attrs {
			e.Attrs = append(e.Attrs, KV{k, v})
		}
		if info.Dataset != nil {
			e.ID = info.Dataset.ID
			e.Name = info.Dataset.Name
			e.SizeMB = info.Dataset.SizeMB
			e.Records = info.Dataset.Records
			e.Format = info.Dataset.Format
		}
		resp.Entries = append(resp.Entries, e)
	}
	return resp
}

// sweepLoop keeps session lifetimes honest; started by LocalGrid.
func (m *Manager) sweepLoop(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.cfg.Sessions.Sweep()
		case <-stop:
			return
		}
	}
}
