// Package registry is the worker registry of Figure 2: analysis engines
// send a "Ready Signal with Reference" as they start on the Grid, and the
// session service looks the references up to control them. It also tracks
// liveness via heartbeats so sessions can detect lost workers.
package registry

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Worker is one registered analysis engine.
type Worker struct {
	SessionID string
	WorkerID  string
	Node      string
	// Endpoint addresses the engine's control server ("" when the
	// engine is reachable in-process through Handle).
	Endpoint string
	// Handle is an in-process reference to the engine (the fast path a
	// 2006 jobmanager-fork deployment effectively had).
	Handle any

	Registered time.Time
	LastSeen   time.Time
}

// Registry is safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	cond    *sync.Cond
	workers map[string]map[string]*Worker // session → worker ID → worker
}

// New creates an empty registry.
func New() *Registry {
	r := &Registry{workers: make(map[string]map[string]*Worker)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Register records a ready signal. Re-registering a worker ID replaces the
// previous entry (an engine restarted by the scheduler).
func (r *Registry) Register(w Worker) error {
	if w.SessionID == "" || w.WorkerID == "" {
		return fmt.Errorf("registry: session and worker IDs required")
	}
	now := time.Now()
	w.Registered = now
	w.LastSeen = now
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.workers[w.SessionID] == nil {
		r.workers[w.SessionID] = make(map[string]*Worker)
	}
	cp := w
	r.workers[w.SessionID][w.WorkerID] = &cp
	r.cond.Broadcast()
	return nil
}

// Heartbeat refreshes a worker's liveness.
func (r *Registry) Heartbeat(sessionID, workerID string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.get(sessionID, workerID)
	if w == nil {
		return fmt.Errorf("registry: no worker %s/%s", sessionID, workerID)
	}
	w.LastSeen = time.Now()
	return nil
}

func (r *Registry) get(sessionID, workerID string) *Worker {
	if m := r.workers[sessionID]; m != nil {
		return m[workerID]
	}
	return nil
}

// Lookup fetches one worker.
func (r *Registry) Lookup(sessionID, workerID string) (Worker, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.get(sessionID, workerID)
	if w == nil {
		return Worker{}, false
	}
	return *w, true
}

// Workers lists a session's workers sorted by worker ID.
func (r *Registry) Workers(sessionID string) []Worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.workers[sessionID]
	out := make([]Worker, 0, len(m))
	for _, w := range m {
		out = append(out, *w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].WorkerID < out[j].WorkerID })
	return out
}

// WaitReady blocks until n workers are registered for the session or the
// timeout passes; it returns the workers present either way plus an error
// on timeout. This is the "Ready Signal" barrier of session activation.
func (r *Registry) WaitReady(sessionID string, n int, timeout time.Duration) ([]Worker, error) {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer timer.Stop()
	r.mu.Lock()
	for len(r.workers[sessionID]) < n && time.Now().Before(deadline) {
		r.cond.Wait()
	}
	count := len(r.workers[sessionID])
	r.mu.Unlock()
	workers := r.Workers(sessionID)
	if count < n {
		return workers, fmt.Errorf("registry: only %d/%d engines ready after %v", count, n, timeout)
	}
	return workers, nil
}

// Remove drops one worker; it reports whether it existed.
func (r *Registry) Remove(sessionID, workerID string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.workers[sessionID]
	if m == nil {
		return false
	}
	if _, ok := m[workerID]; !ok {
		return false
	}
	delete(m, workerID)
	return true
}

// RemoveSession drops every worker of a session (teardown).
func (r *Registry) RemoveSession(sessionID string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.workers[sessionID])
	delete(r.workers, sessionID)
	return n
}

// Stale returns workers whose last heartbeat is older than maxAge.
func (r *Registry) Stale(sessionID string, maxAge time.Duration) []Worker {
	cutoff := time.Now().Add(-maxAge)
	var out []Worker
	for _, w := range r.Workers(sessionID) {
		if w.LastSeen.Before(cutoff) {
			out = append(out, w)
		}
	}
	return out
}
