package registry

import (
	"sync"
	"testing"
	"time"
)

func TestRegisterLookupRemove(t *testing.T) {
	r := New()
	if err := r.Register(Worker{SessionID: "s", WorkerID: "w0", Node: "n0", Handle: 42}); err != nil {
		t.Fatal(err)
	}
	w, ok := r.Lookup("s", "w0")
	if !ok || w.Node != "n0" || w.Handle.(int) != 42 {
		t.Fatalf("lookup = %+v, %v", w, ok)
	}
	if _, ok := r.Lookup("s", "nope"); ok {
		t.Fatal("phantom worker")
	}
	if !r.Remove("s", "w0") {
		t.Fatal("remove missed")
	}
	if r.Remove("s", "w0") {
		t.Fatal("double remove")
	}
}

func TestRegisterValidation(t *testing.T) {
	r := New()
	if err := r.Register(Worker{}); err == nil {
		t.Fatal("empty registration accepted")
	}
}

func TestWorkersSorted(t *testing.T) {
	r := New()
	for _, id := range []string{"w2", "w0", "w1"} {
		r.Register(Worker{SessionID: "s", WorkerID: id, Node: "n"})
	}
	ws := r.Workers("s")
	if len(ws) != 3 || ws[0].WorkerID != "w0" || ws[2].WorkerID != "w2" {
		t.Fatalf("workers = %+v", ws)
	}
}

func TestWaitReadyBlocksUntilReady(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(10 * time.Millisecond)
		for i := 0; i < 3; i++ {
			r.Register(Worker{SessionID: "s", WorkerID: string(rune('a' + i)), Node: "n"})
		}
	}()
	ws, err := r.WaitReady("s", 3, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("%d workers", len(ws))
	}
	wg.Wait()
}

func TestWaitReadyTimesOut(t *testing.T) {
	r := New()
	r.Register(Worker{SessionID: "s", WorkerID: "only", Node: "n"})
	start := time.Now()
	ws, err := r.WaitReady("s", 5, 50*time.Millisecond)
	if err == nil {
		t.Fatal("timeout not reported")
	}
	if len(ws) != 1 {
		t.Fatalf("partial workers = %d", len(ws))
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("wait far exceeded timeout")
	}
}

func TestHeartbeatAndStale(t *testing.T) {
	r := New()
	r.Register(Worker{SessionID: "s", WorkerID: "w", Node: "n"})
	if err := r.Heartbeat("s", "w"); err != nil {
		t.Fatal(err)
	}
	if err := r.Heartbeat("s", "ghost"); err == nil {
		t.Fatal("heartbeat for ghost accepted")
	}
	if len(r.Stale("s", time.Hour)) != 0 {
		t.Fatal("fresh worker reported stale")
	}
	time.Sleep(5 * time.Millisecond)
	if len(r.Stale("s", time.Nanosecond)) != 1 {
		t.Fatal("stale worker not reported")
	}
}

func TestRemoveSession(t *testing.T) {
	r := New()
	r.Register(Worker{SessionID: "s1", WorkerID: "a", Node: "n"})
	r.Register(Worker{SessionID: "s1", WorkerID: "b", Node: "n"})
	r.Register(Worker{SessionID: "s2", WorkerID: "c", Node: "n"})
	if n := r.RemoveSession("s1"); n != 2 {
		t.Fatalf("removed %d", n)
	}
	if len(r.Workers("s1")) != 0 || len(r.Workers("s2")) != 1 {
		t.Fatal("session removal wrong")
	}
}

func TestReRegisterReplaces(t *testing.T) {
	r := New()
	r.Register(Worker{SessionID: "s", WorkerID: "w", Node: "n0"})
	r.Register(Worker{SessionID: "s", WorkerID: "w", Node: "n1"})
	w, _ := r.Lookup("s", "w")
	if w.Node != "n1" {
		t.Fatalf("node = %s", w.Node)
	}
	if len(r.Workers("s")) != 1 {
		t.Fatal("duplicate entries")
	}
}
