// Trace propagation: a compact trace context (trace ID, span ID, hop
// count) that rides the RMI envelope and the publish/mirror argument
// structs, so one engine publish can be followed through client →
// router → owning shard → mirror replica → WAL — and across an
// epoch-fenced failover, since the replica's recorded trace survives
// promotion. The context is deliberately tiny (two IDs and a hop
// counter, no baggage): injecting it costs two atomic random draws and
// copying it across a hop costs a struct assignment.

package obs

import (
	"fmt"
	randv2 "math/rand/v2"
)

// TraceContext identifies one traced operation as it crosses the
// fabric. The zero value means "untraced".
type TraceContext struct {
	// TraceID groups every span of one logical operation (an engine
	// publish and all its downstream mirrors share it).
	TraceID uint64
	// SpanID identifies this hop's span within the trace.
	SpanID uint64
	// Hop counts RMI/forwarding hops from the origin (0 at injection).
	Hop uint32
}

// Valid reports whether the context carries a trace.
func (t TraceContext) Valid() bool { return t.TraceID != 0 }

// String renders the context for logs and event details.
func (t TraceContext) String() string {
	return fmt.Sprintf("%016x/%016x@%d", t.TraceID, t.SpanID, t.Hop)
}

// NewTrace mints a fresh root context (hop 0). Returns the zero
// (untraced) context while recording is disabled, so the ablation
// baseline pays nothing — not even the random draws.
func NewTrace() TraceContext {
	if disabled.Load() {
		return TraceContext{}
	}
	return TraceContext{TraceID: nonzero64(), SpanID: nonzero64()}
}

// NextHop derives the context for the next hop: same trace, fresh span,
// hop count advanced. The zero context stays zero.
func (t TraceContext) NextHop() TraceContext {
	if !t.Valid() {
		return t
	}
	return TraceContext{TraceID: t.TraceID, SpanID: nonzero64(), Hop: t.Hop + 1}
}

// nonzero64 draws a nonzero random ID (the zero ID means "untraced").
func nonzero64() uint64 {
	for {
		if v := randv2.Uint64(); v != 0 {
			return v
		}
	}
}

// Carrier is implemented by argument structs that carry a trace
// context across the wire inside their own payload (merge.PublishArgs,
// merge.MirrorArgs). rmi.Client probes call arguments for it and lifts
// the context into the envelope.
type Carrier interface {
	TraceCtx() TraceContext
}

// Setter is implemented by argument structs that accept a recovered
// trace context. rmi.Server probes decoded arguments for it and stores
// the envelope's context (hop-advanced) before dispatch.
type Setter interface {
	SetTraceCtx(TraceContext)
}
