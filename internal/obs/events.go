// Fabric events and spans: structured records of the moments an
// operator asks about after the fact — a session handoff, a replica
// promotion, a fence, a rebalance move, an eviction, a shard revival —
// plus per-hop spans of traced calls. They land in a bounded in-memory
// ring (oldest overwritten first) readable over RPC (Service) and
// surfaced in /fabric/status, so "what just happened" has an answer
// without log scraping.

package obs

import (
	"sync"
	"time"
)

// Event kinds emitted by the fabric (Kind is free-form; these are the
// well-known values).
const (
	EventHandoff      = "handoff"
	EventPromote      = "promote"
	EventFence        = "fence"
	EventMove         = "rebalance-move"
	EventEviction     = "eviction"
	EventDeadMark     = "dead-mark"
	EventRevival      = "revival"
	EventReplicate    = "replicate"
	EventSpan         = "span"
	EventBackpressure = "mirror-backpressure"
	EventRepair       = "anti-entropy-repair"
	EventWALTail      = "wal-tail"
)

// Event is one structured fabric occurrence.
type Event struct {
	// Seq is the ring-assigned monotonic sequence number; readers resume
	// with Since(lastSeq).
	Seq uint64 `json:"seq"`
	// At is the wall-clock stamp.
	At time.Time `json:"at"`
	// Kind is the event type (see the Event* constants).
	Kind string `json:"kind"`
	// Shard / Session scope the event ("" when not applicable).
	Shard   string `json:"shard,omitempty"`
	Session string `json:"session,omitempty"`
	// TraceID links the event to a propagated trace (0 = none).
	TraceID uint64 `json:"traceID,omitempty"`
	// SpanID / Hop identify the hop of a span event (zero otherwise).
	SpanID uint64 `json:"spanID,omitempty"`
	Hop    uint32 `json:"hop,omitempty"`
	// DurNanos is a span event's duration in nanoseconds (0 otherwise).
	DurNanos int64 `json:"durNanos,omitempty"`
	// Detail is a short human-readable elaboration (the span name for
	// span events — spans carry their numbers in the fields above so
	// recording one never formats strings on the hot path).
	Detail string `json:"detail,omitempty"`
}

// Ring is a bounded event buffer: appends overwrite the oldest entry
// once full, reads are by sequence number. A single mutex is fine here
// — events are edge occurrences (failovers, moves) plus spans, orders
// of magnitude rarer than metric increments. Storage is circular
// (head index, no element shifting), so an append into a full ring
// costs one slot store, not a buffer-wide move.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	head int    // index of the oldest retained event
	n    int    // retained count; buf holds seqs [next-n, next)
	next uint64 // seq to assign next
}

// DefaultRingSize bounds the global event ring.
const DefaultRingSize = 1024

// NewRing creates a ring holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Add stamps and appends one event, evicting the oldest when full.
// No-op while recording is disabled.
func (r *Ring) Add(e Event) {
	if disabled.Load() {
		return
	}
	e.At = time.Now()
	r.mu.Lock()
	e.Seq = r.next
	r.next++
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = e
		r.n++
	} else {
		r.buf[r.head] = e
		r.head = (r.head + 1) % len(r.buf)
	}
	r.mu.Unlock()
}

// Since returns up to max events with Seq >= seq, oldest first (max <=
// 0 means no limit). Events already overwritten are simply absent —
// the first returned Seq tells the reader how much it missed.
func (r *Ring) Since(seq uint64, max int) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	oldest := r.next - uint64(r.n)
	skip := 0
	if seq > oldest {
		skip = int(seq - oldest)
		if skip > r.n {
			skip = r.n
		}
	}
	count := r.n - skip
	if max > 0 && count > max {
		count = max
	}
	out := make([]Event, count)
	for i := 0; i < count; i++ {
		out[i] = r.buf[(r.head+skip+i)%len(r.buf)]
	}
	return out
}

// Len reports how many events the ring currently holds.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// NextSeq is the sequence number the next Add will assign — a reader
// polling Since(NextSeq()) sees only future events.
func (r *Ring) NextSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Events is the process-wide fabric event ring.
var Events = NewRing(DefaultRingSize)

// eventsTotal counts events emitted (including ones later overwritten).
var eventsTotal = GetCounter("ipa_obs_events_total", "Fabric events emitted into the ring.")

// Emit records one fabric event in the global ring.
func Emit(kind, shard, session string, traceID uint64, detail string) {
	if disabled.Load() {
		return
	}
	eventsTotal.Inc()
	Events.Add(Event{Kind: kind, Shard: shard, Session: session, TraceID: traceID, Detail: detail})
}

// RecordSpan records one hop of a traced call as a span event in the
// global ring. Untraced contexts record nothing, so the cost is paid
// only by calls that opted into tracing — and what they pay is one
// struct store under the ring mutex: the context and duration land in
// Event's numeric fields, never formatted here.
func RecordSpan(t TraceContext, name string, d time.Duration) {
	if !t.Valid() || disabled.Load() {
		return
	}
	eventsTotal.Inc()
	Events.Add(Event{
		Kind: EventSpan, TraceID: t.TraceID, SpanID: t.SpanID, Hop: t.Hop,
		DurNanos: int64(d), Detail: name,
	})
}
