// RPC surface: the global event ring served over the fabric's own RMI
// layer, so spans and fabric events are readable from any node with a
// session token — no HTTP required. Registered by the manager under
// RMIObjectName.

package obs

// RMIObjectName is the RMI registration name of the telemetry service.
const RMIObjectName = "AIDAObs"

// Service exposes the global event ring over RMI.
type Service struct{}

// NewService returns the RMI-registrable telemetry service.
func NewService() *Service { return &Service{} }

// EventsArgs asks for events at or after SinceSeq (0 = everything the
// ring still holds). Max bounds the reply (<= 0 = no limit).
type EventsArgs struct {
	SinceSeq uint64
	Max      int
}

// EventsReply returns the events and the sequence to resume from.
type EventsReply struct {
	Events []Event
	// NextSeq is the ring's next sequence number: pass it as the next
	// SinceSeq to read only newer events.
	NextSeq uint64
}

// Events reads the global ring.
func (s *Service) Events(args EventsArgs, reply *EventsReply) error {
	reply.Events = Events.Since(args.SinceSeq, args.Max)
	reply.NextSeq = Events.NextSeq()
	return nil
}
