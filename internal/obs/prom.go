// Prometheus text exposition of the metrics registry (text format
// version 0.0.4: # HELP / # TYPE headers, one sample per line,
// histograms as cumulative _bucket/_sum/_count series). Families and
// series are emitted in sorted order so output is deterministic —
// golden-testable and diff-friendly.

package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes every registered family to w in Prometheus
// text format.
func WritePrometheus(w io.Writer) error {
	var fams []*family
	families.Range(func(_, v any) bool {
		fams = append(fams, v.(*family))
		return true
	})
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves WritePrometheus over HTTP (the /metrics endpoint).
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w)
	})
}

func (f *family) write(w io.Writer) error {
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	if f.fn != nil {
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.fn()))
		return err
	}
	var ss []*series
	f.series.Range(func(_, v any) bool {
		ss = append(ss, v.(*series))
		return true
	})
	sort.Slice(ss, func(i, j int) bool { return ss[i].sig < ss[j].sig })
	for _, s := range ss {
		if err := s.write(w, f.name); err != nil {
			return err
		}
	}
	return nil
}

func (s *series) write(w io.Writer, name string) error {
	labels := labelPairs(s.sig)
	switch m := s.m.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, renderLabels(labels, "", ""), m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, renderLabels(labels, "", ""), m.Value())
		return err
	case *Histogram:
		buckets, count, sum := m.Snapshot()
		var cum int64
		for i, b := range m.bounds {
			cum += buckets[i]
			le := strconv.FormatFloat(b, 'g', -1, 64)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(labels, "le", le), cum); err != nil {
				return err
			}
		}
		cum += buckets[len(buckets)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(labels, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(labels, "", ""), formatFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(labels, "", ""), count)
		return err
	}
	return nil
}

// labelPairs splits a registry signature back into key,value pairs.
func labelPairs(sig string) []string {
	if sig == "" {
		return nil
	}
	return strings.Split(sig, "\xff")
}

// renderLabels formats {k="v",...}, appending the optional extra pair
// (the histogram le label); "" when there are no labels at all.
func renderLabels(pairs []string, extraK, extraV string) string {
	if len(pairs) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", pairs[i], escapeLabel(pairs[i+1]))
	}
	if extraK != "" {
		if len(pairs) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraK, extraV)
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value: integral values without a
// decimal point, everything else in shortest-round-trip form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	// %q in renderLabels already escapes quotes and backslashes; nothing
	// further needed — this hook exists so value escaping stays in one
	// place if the format grows.
	return s
}
