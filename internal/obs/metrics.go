// Package obs is the fabric's telemetry substrate: a lock-free metrics
// core (atomic counters, gauges, and fixed-bucket histograms in a
// sync.Map registry with bounded per-family label cardinality), a
// wire-propagable trace context, and a bounded in-memory ring of spans
// and structured fabric events. Everything records through atomics —
// the same zero-contention discipline as the merge fabric's hot paths —
// and the whole package can be switched off (SetDisabled) as the A14
// ablation baseline: a disabled recorder skips even the time.Now()
// reads, so instrumentation overhead can be measured against a true
// zero.
//
// Metric names follow the Prometheus convention under the ipa_*
// namespace; WritePrometheus / Handler expose the registry in
// Prometheus text format.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// disabled gates every recording call. Default off (recording on).
var disabled atomic.Bool

// SetDisabled switches all recording off (true) or on (false) — the
// ablation switch A14 measures against. Registration still works while
// disabled; only the hot-path record calls become no-ops.
func SetDisabled(v bool) { disabled.Store(v) }

// Disabled reports whether recording is switched off.
func Disabled() bool { return disabled.Load() }

// Now is time.Now gated on the ablation switch: it returns the zero
// time when recording is disabled, and every ObserveSince on a zero
// start is a no-op — so a disabled fabric pays neither the clock read
// nor the histogram update.
func Now() time.Time {
	if disabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// MaxSeriesPerFamily bounds label cardinality: once a metric family
// holds this many labeled series, further label combinations fold into
// a single overflow series (labels {overflow="true"}) instead of
// growing the registry without bound.
const MaxSeriesPerFamily = 64

// overflowSig is the registry signature of a family's fold-over series.
const overflowSig = "overflow\xfftrue"

// series is one (family, label-set) time series.
type series struct {
	sig string // "k\xffv\xffk\xffv" (registry key, sorted render order)
	m   any    // *Counter | *Gauge | *Histogram
}

// family is one named metric family: fixed kind and help, a bounded set
// of labeled series. Series creation takes mu (cold path, once per
// label set); recording is pure atomics on the returned metric.
type family struct {
	name, help, kind string
	buckets          []float64      // histograms only
	fn               func() float64 // func-backed families only
	mu               sync.Mutex
	n                int
	series           sync.Map // sig → *series
}

// families is the global registry, name → *family.
var families sync.Map

// ResetForTest clears the whole registry (and re-enables recording) so
// exposition tests start from a known-empty state. Pointers obtained
// before the reset keep working but are no longer exported.
func ResetForTest() {
	families.Range(func(k, _ any) bool {
		families.Delete(k)
		return true
	})
	disabled.Store(false)
}

// getFamily returns the named family, creating it with the given shape
// on first use. Shape mismatches keep the first registration (metrics
// are programmer-named constants; disagreeing call sites are a bug the
// exposition makes visible, not a runtime error).
func getFamily(name, help, kind string, buckets []float64) *family {
	if f, ok := families.Load(name); ok {
		return f.(*family)
	}
	f, _ := families.LoadOrStore(name, &family{name: name, help: help, kind: kind, buckets: buckets})
	return f.(*family)
}

// sigOf builds the registry signature from alternating key,value label
// pairs (a trailing odd key is dropped). Pairs are sorted by key so
// call sites may list labels in any order.
func sigOf(labels []string) string {
	n := len(labels) / 2
	if n == 0 {
		return ""
	}
	type kv struct{ k, v string }
	kvs := make([]kv, n)
	for i := 0; i < n; i++ {
		kvs[i] = kv{labels[2*i], labels[2*i+1]}
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte('\xff')
		}
		b.WriteString(p.k)
		b.WriteByte('\xff')
		b.WriteString(p.v)
	}
	return b.String()
}

// get returns the family's series for the label set, creating it (or
// folding into the overflow series at the cardinality cap) on first
// use. make builds the metric value for a fresh series.
func (f *family) get(labels []string, make func() any) any {
	sig := sigOf(labels)
	if s, ok := f.series.Load(sig); ok {
		return s.(*series).m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series.Load(sig); ok {
		return s.(*series).m
	}
	if sig != "" && f.n >= MaxSeriesPerFamily {
		// At the cap: fold this label set into the overflow series.
		if s, ok := f.series.Load(overflowSig); ok {
			return s.(*series).m
		}
		sig = overflowSig
	}
	s := &series{sig: sig, m: make()}
	f.series.Store(sig, s)
	f.n++
	return s.m
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one (no-op while disabled).
func (c *Counter) Inc() {
	if !disabled.Load() {
		c.v.Add(1)
	}
}

// Add adds n (no-op while disabled).
func (c *Counter) Add(n int64) {
	if !disabled.Load() {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, backlog size).
type Gauge struct{ v atomic.Int64 }

// Set stores v (no-op while disabled).
func (g *Gauge) Set(v int64) {
	if !disabled.Load() {
		g.v.Store(v)
	}
}

// Add moves the gauge by n, negative to decrease (no-op while
// disabled).
func (g *Gauge) Add(n int64) {
	if !disabled.Load() {
		g.v.Add(n)
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency buckets (seconds): 1µs → 2.5s in
// a 1-2.5-5 decade ladder, covering everything from an in-process map
// hit to a WAN round trip.
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5,
}

// SizeBuckets are power-of-two buckets for count distributions (batch
// sizes, fan-outs).
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// sumScale is the fixed-point scale of Histogram.sum: 1e-9 units keep
// the sum an atomic int64 (nanoseconds when observing seconds) so
// Observe never takes a lock.
const sumScale = 1e9

// Histogram is a fixed-bucket atomic histogram. bounds are inclusive
// upper bounds; counts has one extra slot for +Inf.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // fixed-point, sumScale units
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value (no-op while disabled).
func (h *Histogram) Observe(v float64) {
	if disabled.Load() {
		return
	}
	// Linear scan: bucket counts are small and fixed, and latencies
	// cluster in the low buckets, so this beats binary search in
	// practice and stays branch-predictable.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(v * sumScale))
}

// ObserveSince records the seconds elapsed since t0; a zero t0 (a
// disabled Now) is a no-op, so the pair `t0 := obs.Now(); defer
// h.ObserveSince(t0)` costs nothing when recording is off.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if t0.IsZero() {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Snapshot returns the cumulative bucket counts (per bound, then +Inf),
// the total count, and the sum.
func (h *Histogram) Snapshot() (buckets []int64, count int64, sum float64) {
	buckets = make([]int64, len(h.counts))
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
	}
	return buckets, h.count.Load(), float64(h.sum.Load()) / sumScale
}

// GetCounter returns (creating on first use) the counter series for
// name and the alternating key,value label pairs. Call sites should
// cache the pointer; lookup is a sync.Map load plus a signature build.
func GetCounter(name, help string, labels ...string) *Counter {
	f := getFamily(name, help, "counter", nil)
	return f.get(labels, func() any { return &Counter{} }).(*Counter)
}

// GetGauge returns (creating on first use) the gauge series for name
// and labels.
func GetGauge(name, help string, labels ...string) *Gauge {
	f := getFamily(name, help, "gauge", nil)
	return f.get(labels, func() any { return &Gauge{} }).(*Gauge)
}

// GetHistogram returns (creating on first use) the histogram series for
// name and labels. buckets applies on family creation (nil =
// DefBuckets); later calls inherit the family's buckets.
func GetHistogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := getFamily(name, help, "histogram", buckets)
	return f.get(labels, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// RegisterFunc registers (or replaces) a callback-backed family: the
// value is computed at exposition time, so counters a subsystem already
// keeps (router handoffs, batcher flushes) can be exported without
// double bookkeeping. kind is "counter" or "gauge".
func RegisterFunc(name, help, kind string, fn func() float64) {
	families.Store(name, &family{name: name, help: help, kind: kind, fn: fn})
}

// Unregister removes a family (used when a func-backed family's owner
// shuts down).
func Unregister(name string) { families.Delete(name) }
