package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedHist is the mutex-guarded reference implementation the atomic
// histogram is checked against: same fixed bounds, same linear-scan
// bucketing, but serialized.
type lockedHist struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	count  int64
	sum    int64 // sumScale fixed-point, matching Histogram
}

func newLockedHist(bounds []float64) *lockedHist {
	return &lockedHist{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *lockedHist) observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += int64(v * sumScale)
}

// TestConcurrentEquivalence drives the atomic counter, gauge, and
// histogram from many goroutines alongside locked references fed the
// identical operation stream, and requires identical end states.
func TestConcurrentEquivalence(t *testing.T) {
	ResetForTest()
	const goroutines, perG = 8, 5000

	c := GetCounter("t_eq_total", "equivalence counter")
	g := GetGauge("t_eq_gauge", "equivalence gauge")
	bounds := []float64{0.001, 0.01, 0.1, 1}
	h := GetHistogram("t_eq_seconds", "equivalence histogram", bounds)
	ref := newLockedHist(bounds)
	var refCounter, refGauge int64
	var refMu sync.Mutex

	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		gi := gi
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(int64(gi%3 - 1))
				v := float64(i%2000) / 997 // spans every bucket incl. +Inf
				h.Observe(v)
				ref.observe(v)
				refMu.Lock()
				refCounter++
				refGauge += int64(gi%3 - 1)
				refMu.Unlock()
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != refCounter {
		t.Errorf("counter = %d, locked reference = %d", got, refCounter)
	}
	if got := g.Value(); got != refGauge {
		t.Errorf("gauge = %d, locked reference = %d", got, refGauge)
	}
	buckets, count, sum := h.Snapshot()
	if count != ref.count {
		t.Errorf("histogram count = %d, reference = %d", count, ref.count)
	}
	for i := range buckets {
		if buckets[i] != ref.counts[i] {
			t.Errorf("bucket %d = %d, reference = %d", i, buckets[i], ref.counts[i])
		}
	}
	if refSum := float64(ref.sum) / sumScale; sum != refSum {
		t.Errorf("histogram sum = %v, reference = %v", sum, refSum)
	}
}

// TestCardinalityCap fills a family past MaxSeriesPerFamily and checks
// the excess folds into one overflow series instead of growing the
// registry.
func TestCardinalityCap(t *testing.T) {
	ResetForTest()
	const name = "t_cap_total"
	for i := 0; i < MaxSeriesPerFamily; i++ {
		GetCounter(name, "cap test", "k", fmt.Sprintf("v%03d", i)).Inc()
	}
	over1 := GetCounter(name, "cap test", "k", "spill-a")
	over2 := GetCounter(name, "cap test", "k", "spill-b")
	if over1 != over2 {
		t.Fatalf("series beyond the cap should share one overflow counter")
	}
	over1.Inc()
	over2.Inc()
	if got := over1.Value(); got != 2 {
		t.Errorf("overflow counter = %d, want 2", got)
	}
	var sb strings.Builder
	if err := WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `t_cap_total{overflow="true"} 2`) {
		t.Errorf("exposition missing the overflow series:\n%s", out)
	}
	if n := strings.Count(out, "t_cap_total{"); n != MaxSeriesPerFamily+1 {
		t.Errorf("family exports %d series, want %d (cap + overflow)", n, MaxSeriesPerFamily+1)
	}
}

// TestPrometheusGolden checks the text exposition byte-for-byte:
// sorted families, sorted series, cumulative histogram buckets.
func TestPrometheusGolden(t *testing.T) {
	ResetForTest()
	GetCounter("t_requests_total", "Requests handled.", "method", "get").Add(3)
	GetCounter("t_requests_total", "Requests handled.", "method", "put").Inc()
	GetGauge("t_queue_depth", "Queue depth.").Set(7)
	h := GetHistogram("t_latency_seconds", "Latency.", []float64{0.1, 1}, "op", "poll")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	RegisterFunc("t_func_gauge", "Func backed.", "gauge", func() float64 { return 4.5 })

	var sb strings.Builder
	if err := WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP t_func_gauge Func backed.
# TYPE t_func_gauge gauge
t_func_gauge 4.5
# HELP t_latency_seconds Latency.
# TYPE t_latency_seconds histogram
t_latency_seconds_bucket{op="poll",le="0.1"} 1
t_latency_seconds_bucket{op="poll",le="1"} 2
t_latency_seconds_bucket{op="poll",le="+Inf"} 3
t_latency_seconds_sum{op="poll"} 2.55
t_latency_seconds_count{op="poll"} 3
# HELP t_queue_depth Queue depth.
# TYPE t_queue_depth gauge
t_queue_depth 7
# HELP t_requests_total Requests handled.
# TYPE t_requests_total counter
t_requests_total{method="get"} 3
t_requests_total{method="put"} 1
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestDisabledAblation checks that the A14 switch turns every recording
// path into a no-op: counters, gauges, histograms, Now, traces, events.
func TestDisabledAblation(t *testing.T) {
	ResetForTest()
	defer SetDisabled(false)
	c := GetCounter("t_dis_total", "disabled counter")
	g := GetGauge("t_dis_gauge", "disabled gauge")
	h := GetHistogram("t_dis_seconds", "disabled histogram", nil)
	before := Events.NextSeq()

	SetDisabled(true)
	c.Inc()
	c.Add(10)
	g.Set(5)
	g.Add(5)
	h.Observe(1)
	if now := Now(); !now.IsZero() {
		t.Errorf("Now() while disabled = %v, want zero", now)
	}
	h.ObserveSince(Now())
	if tc := NewTrace(); tc.Valid() {
		t.Errorf("NewTrace while disabled = %v, want untraced", tc)
	}
	Emit(EventHandoff, "shard00", "s", 0, "nope")
	RecordSpan(TraceContext{TraceID: 1, SpanID: 2}, "x", time.Millisecond)

	if c.Value() != 0 || g.Value() != 0 {
		t.Errorf("disabled recording leaked: counter=%d gauge=%d", c.Value(), g.Value())
	}
	if _, count, _ := h.Snapshot(); count != 0 {
		t.Errorf("disabled histogram recorded %d observations", count)
	}
	if Events.NextSeq() != before {
		t.Errorf("disabled event ring advanced")
	}

	SetDisabled(false)
	c.Inc()
	if c.Value() != 1 {
		t.Errorf("re-enabled counter = %d, want 1", c.Value())
	}
}

// TestTraceContext covers minting and hop derivation.
func TestTraceContext(t *testing.T) {
	ResetForTest()
	tc := NewTrace()
	if !tc.Valid() || tc.Hop != 0 {
		t.Fatalf("NewTrace = %+v, want valid hop-0", tc)
	}
	next := tc.NextHop()
	if next.TraceID != tc.TraceID {
		t.Errorf("NextHop changed the trace ID: %x → %x", tc.TraceID, next.TraceID)
	}
	if next.SpanID == tc.SpanID {
		t.Errorf("NextHop kept the span ID")
	}
	if next.Hop != 1 {
		t.Errorf("NextHop hop = %d, want 1", next.Hop)
	}
	var zero TraceContext
	if z := zero.NextHop(); z.Valid() {
		t.Errorf("zero context NextHop = %+v, want zero", z)
	}
}

// TestRingWraparound checks bounded-ring semantics and Since resumption.
func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.Add(Event{Kind: EventMove, Detail: fmt.Sprintf("e%d", i)})
	}
	if r.Len() != 4 {
		t.Fatalf("ring holds %d events, want 4", r.Len())
	}
	evs := r.Since(0, 0)
	if len(evs) != 4 || evs[0].Seq != 2 || evs[3].Seq != 5 {
		t.Fatalf("Since(0) = %+v, want seqs 2..5", evs)
	}
	if got := r.Since(5, 0); len(got) != 1 || got[0].Detail != "e5" {
		t.Fatalf("Since(5) = %+v, want just e5", got)
	}
	if r.NextSeq() != 6 {
		t.Errorf("NextSeq = %d, want 6", r.NextSeq())
	}
	if got := r.Since(r.NextSeq(), 0); len(got) != 0 {
		t.Errorf("Since(NextSeq) returned %d events, want none", len(got))
	}
}
