// Package events models the record-based physics data the paper analyzes:
// "simulations of the future Linear Collider Experiment" (§3).
//
// It provides a four-vector algebra, a compact binary event encoding that
// rides inside dataset containers, a deterministic seeded generator for
// e+e- → ZH signal over continuum background at √s = 500 GeV, and the
// reference "look for Higgs bosons" analysis the paper times (§4): a dijet
// invariant-mass scan that peaks at the generated Higgs mass.
package events

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// FourVec is an energy-momentum four-vector in GeV.
type FourVec struct {
	Px, Py, Pz, E float64
}

// Add returns the four-vector sum.
func (v FourVec) Add(o FourVec) FourVec {
	return FourVec{v.Px + o.Px, v.Py + o.Py, v.Pz + o.Pz, v.E + o.E}
}

// P returns the magnitude of the three-momentum.
func (v FourVec) P() float64 { return math.Sqrt(v.Px*v.Px + v.Py*v.Py + v.Pz*v.Pz) }

// Pt returns the transverse momentum.
func (v FourVec) Pt() float64 { return math.Sqrt(v.Px*v.Px + v.Py*v.Py) }

// Mass returns the invariant mass sqrt(E² − |p|²), clamped at 0 for
// round-off-negative arguments.
func (v FourVec) Mass() float64 {
	m2 := v.E*v.E - v.Px*v.Px - v.Py*v.Py - v.Pz*v.Pz
	if m2 < 0 {
		return 0
	}
	return math.Sqrt(m2)
}

// CosTheta returns the polar angle cosine relative to the beam (z) axis.
func (v FourVec) CosTheta() float64 {
	p := v.P()
	if p == 0 {
		return 0
	}
	return v.Pz / p
}

// Boost applies a Lorentz boost with velocity β = (bx, by, bz) (|β| < 1).
func (v FourVec) Boost(bx, by, bz float64) FourVec {
	b2 := bx*bx + by*by + bz*bz
	if b2 == 0 {
		return v
	}
	gamma := 1 / math.Sqrt(1-b2)
	bp := bx*v.Px + by*v.Py + bz*v.Pz
	gamma2 := (gamma - 1) / b2
	return FourVec{
		Px: v.Px + gamma2*bp*bx + gamma*bx*v.E,
		Py: v.Py + gamma2*bp*by + gamma*by*v.E,
		Pz: v.Pz + gamma2*bp*bz + gamma*bz*v.E,
		E:  gamma * (v.E + bp),
	}
}

// BoostVector returns β = p/E, the velocity that boosts the rest frame of
// this vector into the lab.
func (v FourVec) BoostVector() (bx, by, bz float64) {
	if v.E == 0 {
		return 0, 0, 0
	}
	return v.Px / v.E, v.Py / v.E, v.Pz / v.E
}

// Particle type codes (PDG-inspired).
const (
	IDPionPlus int32 = 211
	IDPhoton   int32 = 22
	IDQuarkJet int32 = 1 // light-quark jet pseudo-particle
	IDBJet     int32 = 5 // b-quark jet pseudo-particle
	IDElectron int32 = 11
	IDMuon     int32 = 13
)

// Particle is a compact final-state object: a real particle or a jet
// pseudo-particle, momenta in GeV (float32 keeps events small on disk).
type Particle struct {
	ID     int32
	Charge int8
	Px     float32
	Py     float32
	Pz     float32
	E      float32
}

// Vec returns the particle's four-vector in float64 precision.
func (p Particle) Vec() FourVec {
	return FourVec{float64(p.Px), float64(p.Py), float64(p.Pz), float64(p.E)}
}

// Event is one collision record.
type Event struct {
	Number    int64
	Run       int32
	IsSignal  bool // generator truth (carried for efficiency studies)
	Particles []Particle
}

// TotalEnergy sums particle energies.
func (e *Event) TotalEnergy() float64 {
	s := 0.0
	for _, p := range e.Particles {
		s += float64(p.E)
	}
	return s
}

const (
	eventHeaderSize = 8 + 4 + 1 + 4 // number, run, flags, count
	particleSize    = 4 + 1 + 4*4
	// MaxParticles bounds decoding of corrupt records.
	MaxParticles = 1 << 20
)

// ErrBadRecord reports a malformed encoded event.
var ErrBadRecord = errors.New("events: bad record")

// Marshal encodes the event, appending to dst (pass nil for a new buffer).
func Marshal(dst []byte, e *Event) []byte {
	need := eventHeaderSize + particleSize*len(e.Particles)
	off := len(dst)
	dst = append(dst, make([]byte, need)...)
	b := dst[off:]
	binary.LittleEndian.PutUint64(b[0:], uint64(e.Number))
	binary.LittleEndian.PutUint32(b[8:], uint32(e.Run))
	if e.IsSignal {
		b[12] = 1
	}
	binary.LittleEndian.PutUint32(b[13:], uint32(len(e.Particles)))
	at := eventHeaderSize
	for _, p := range e.Particles {
		binary.LittleEndian.PutUint32(b[at:], uint32(p.ID))
		b[at+4] = byte(p.Charge)
		binary.LittleEndian.PutUint32(b[at+5:], math.Float32bits(p.Px))
		binary.LittleEndian.PutUint32(b[at+9:], math.Float32bits(p.Py))
		binary.LittleEndian.PutUint32(b[at+13:], math.Float32bits(p.Pz))
		binary.LittleEndian.PutUint32(b[at+17:], math.Float32bits(p.E))
		at += particleSize
	}
	return dst
}

// Unmarshal decodes an event record.
func Unmarshal(rec []byte) (*Event, error) {
	var e Event
	if err := UnmarshalInto(rec, &e); err != nil {
		return nil, err
	}
	return &e, nil
}

// UnmarshalInto decodes into an existing Event, reusing its particle slice.
// Engines call this once per record, so avoiding the per-event allocation
// matters at the multi-hundred-MB dataset sizes of Table 2.
func UnmarshalInto(rec []byte, e *Event) error {
	if len(rec) < eventHeaderSize {
		return fmt.Errorf("%w: %d bytes", ErrBadRecord, len(rec))
	}
	e.Number = int64(binary.LittleEndian.Uint64(rec[0:]))
	e.Run = int32(binary.LittleEndian.Uint32(rec[8:]))
	e.IsSignal = rec[12] == 1
	n := binary.LittleEndian.Uint32(rec[13:])
	if n > MaxParticles {
		return fmt.Errorf("%w: %d particles", ErrBadRecord, n)
	}
	if len(rec) != eventHeaderSize+int(n)*particleSize {
		return fmt.Errorf("%w: %d bytes for %d particles", ErrBadRecord, len(rec), n)
	}
	if cap(e.Particles) < int(n) {
		e.Particles = make([]Particle, n)
	} else {
		e.Particles = e.Particles[:n]
	}
	at := eventHeaderSize
	for i := 0; i < int(n); i++ {
		e.Particles[i] = Particle{
			ID:     int32(binary.LittleEndian.Uint32(rec[at:])),
			Charge: int8(rec[at+4]),
			Px:     math.Float32frombits(binary.LittleEndian.Uint32(rec[at+5:])),
			Py:     math.Float32frombits(binary.LittleEndian.Uint32(rec[at+9:])),
			Pz:     math.Float32frombits(binary.LittleEndian.Uint32(rec[at+13:])),
			E:      math.Float32frombits(binary.LittleEndian.Uint32(rec[at+17:])),
		}
		at += particleSize
	}
	return nil
}

// EncodedSize returns the record size for an event with n particles.
func EncodedSize(n int) int { return eventHeaderSize + particleSize*n }
