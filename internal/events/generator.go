package events

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/ipa-grid/ipa/internal/dataset"
)

// GenConfig parameterizes the Linear Collider event generator.
// Zero values take physically sensible defaults for √s = 500 GeV.
type GenConfig struct {
	Seed           int64
	Run            int32
	CMEnergy       float64 // √s in GeV (default 500)
	HiggsMass      float64 // default 120 (the LC benchmark of the era)
	ZMass          float64 // default 91.2
	SignalFraction float64 // default 0.15
	JetRes         float64 // relative jet energy resolution (default 0.05)
	AvgSoft        float64 // mean soft-particle multiplicity (default 40)
	ThreeJetFrac   float64 // gluon-radiation fraction in background (default 0.25)
}

func (c GenConfig) withDefaults() GenConfig {
	if c.CMEnergy == 0 {
		c.CMEnergy = 500
	}
	if c.HiggsMass == 0 {
		c.HiggsMass = 120
	}
	if c.ZMass == 0 {
		c.ZMass = 91.2
	}
	if c.SignalFraction == 0 {
		c.SignalFraction = 0.15
	}
	if c.JetRes == 0 {
		c.JetRes = 0.05
	}
	if c.AvgSoft == 0 {
		c.AvgSoft = 40
	}
	if c.ThreeJetFrac == 0 {
		c.ThreeJetFrac = 0.25
	}
	return c
}

// Generator produces a deterministic stream of events for a given seed —
// the stand-in for the paper's 471 MB of simulated LC data.
type Generator struct {
	cfg GenConfig
	rng *rand.Rand
	n   int64
}

// NewGenerator returns a generator for the given configuration.
func NewGenerator(cfg GenConfig) *Generator {
	cfg = cfg.withDefaults()
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Config returns the effective (defaulted) configuration.
func (g *Generator) Config() GenConfig { return g.cfg }

// Next generates the next event.
func (g *Generator) Next() *Event {
	e := &Event{Number: g.n, Run: g.cfg.Run}
	g.n++
	if g.rng.Float64() < g.cfg.SignalFraction {
		e.IsSignal = true
		g.signal(e)
	} else {
		g.background(e)
	}
	g.soft(e)
	return e
}

// randDirection returns an isotropic unit vector.
func (g *Generator) randDirection() (x, y, z float64) {
	z = 2*g.rng.Float64() - 1
	phi := 2 * math.Pi * g.rng.Float64()
	s := math.Sqrt(1 - z*z)
	return s * math.Cos(phi), s * math.Sin(phi), z
}

// twoBody splits parent into two children of masses m1, m2, isotropic in
// the parent rest frame, boosted to the lab.
func (g *Generator) twoBody(parent FourVec, m1, m2 float64) (FourVec, FourVec) {
	m := parent.Mass()
	if m < m1+m2 {
		// Off-shell fluctuation: scale masses down to fit.
		scale := m / (m1 + m2) * 0.999
		m1 *= scale
		m2 *= scale
	}
	// Momentum of either child in the parent rest frame.
	term1 := m*m - (m1+m2)*(m1+m2)
	term2 := m*m - (m1-m2)*(m1-m2)
	p := math.Sqrt(math.Max(term1*term2, 0)) / (2 * m)
	dx, dy, dz := g.randDirection()
	c1 := FourVec{p * dx, p * dy, p * dz, math.Sqrt(p*p + m1*m1)}
	c2 := FourVec{-p * dx, -p * dy, -p * dz, math.Sqrt(p*p + m2*m2)}
	bx, by, bz := parent.BoostVector()
	return c1.Boost(bx, by, bz), c2.Boost(bx, by, bz)
}

// smear applies jet energy resolution, preserving direction.
func (g *Generator) smear(v FourVec) FourVec {
	f := 1 + g.rng.NormFloat64()*g.cfg.JetRes
	if f < 0.2 {
		f = 0.2
	}
	return FourVec{v.Px * f, v.Py * f, v.Pz * f, v.E * f}
}

func jetParticle(v FourVec, id int32, charge int8) Particle {
	return Particle{ID: id, Charge: charge,
		Px: float32(v.Px), Py: float32(v.Py), Pz: float32(v.Pz), E: float32(v.E)}
}

// signal generates e+e- → ZH, H → bb̄, Z → qq̄.
func (g *Generator) signal(e *Event) {
	s := g.cfg.CMEnergy
	mH, mZ := g.cfg.HiggsMass, g.cfg.ZMass
	// Two-body production momentum.
	cm := FourVec{0, 0, 0, s}
	z4, h4 := g.twoBody(cm, mZ, mH)
	// Decays: jet pseudo-particles carry a small intrinsic mass.
	b1, b2 := g.twoBody(h4, 5, 5)
	q1, q2 := g.twoBody(z4, 1.5, 1.5)
	e.Particles = append(e.Particles,
		jetParticle(g.smear(b1), IDBJet, 0),
		jetParticle(g.smear(b2), -IDBJet, 0),
		jetParticle(g.smear(q1), IDQuarkJet, 0),
		jetParticle(g.smear(q2), -IDQuarkJet, 0),
	)
}

// background generates continuum e+e- → qq̄(g): two or three jets sharing
// the full collision energy, giving a smooth combinatorial dijet-mass
// spectrum under the Higgs peak.
func (g *Generator) background(e *Event) {
	s := g.cfg.CMEnergy
	cm := FourVec{0, 0, 0, s}
	if g.rng.Float64() < g.cfg.ThreeJetFrac {
		// qq̄g: split off a gluon system first with a broad mass.
		mQQ := s * (0.3 + 0.6*g.rng.Float64())
		qq, gluon := g.twoBody(cm, mQQ, 2)
		j1, j2 := g.twoBody(qq, 1.5, 1.5)
		e.Particles = append(e.Particles,
			jetParticle(g.smear(j1), IDQuarkJet, 0),
			jetParticle(g.smear(j2), -IDQuarkJet, 0),
			jetParticle(g.smear(gluon), IDPhoton, 0),
		)
		return
	}
	j1, j2 := g.twoBody(cm, 1.5, 1.5)
	e.Particles = append(e.Particles,
		jetParticle(g.smear(j1), IDQuarkJet, 0),
		jetParticle(g.smear(j2), -IDQuarkJet, 0),
	)
}

// soft adds low-energy hadrons (the underlying event), which dominate the
// record size and the per-event analysis cost, as in real LC data.
func (g *Generator) soft(e *Event) {
	n := g.poisson(g.cfg.AvgSoft)
	for i := 0; i < n; i++ {
		dx, dy, dz := g.randDirection()
		p := g.rng.ExpFloat64() * 1.5 // GeV
		m := 0.14                     // pion mass
		v := FourVec{p * dx, p * dy, p * dz, math.Sqrt(p*p + m*m)}
		charge := int8(1)
		if g.rng.Intn(2) == 0 {
			charge = -1
		}
		e.Particles = append(e.Particles, jetParticle(v, IDPionPlus*int32(charge), charge))
	}
}

func (g *Generator) poisson(mean float64) int {
	// Knuth's method is fine for means ~40.
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= g.rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}

// WriteDataset appends n generated events to a dataset writer and returns
// the total payload bytes written.
func WriteDataset(w *dataset.Writer, g *Generator, n int) (int64, error) {
	var buf []byte
	var bytes int64
	for i := 0; i < n; i++ {
		buf = Marshal(buf[:0], g.Next())
		if err := w.Append(buf); err != nil {
			return bytes, fmt.Errorf("events: writing event %d: %w", i, err)
		}
		bytes += int64(len(buf))
	}
	return bytes, nil
}

// GenerateFile writes a complete dataset container with n events to path.
func GenerateFile(path string, cfg GenConfig, n int) (int64, error) {
	w, closer, err := dataset.Create(path)
	if err != nil {
		return 0, err
	}
	g := NewGenerator(cfg)
	bytes, err := WriteDataset(w, g, n)
	if err != nil {
		closer()
		return bytes, err
	}
	return bytes, closer()
}
