package events

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/analysis"
	"github.com/ipa-grid/ipa/internal/dataset"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFourVecMass(t *testing.T) {
	v := FourVec{3, 4, 0, 13}
	if !almost(v.Mass(), 12, 1e-12) {
		t.Fatalf("Mass = %v, want 12", v.Mass())
	}
	if !almost(v.P(), 5, 1e-12) {
		t.Fatalf("P = %v", v.P())
	}
	if !almost(v.Pt(), 5, 1e-12) {
		t.Fatalf("Pt = %v", v.Pt())
	}
	// Round-off protection: spacelike from float noise clamps to 0.
	s := FourVec{1, 0, 0, 0.999999}
	if s.Mass() != 0 {
		t.Fatal("spacelike mass not clamped")
	}
}

func TestBoostRoundTrip(t *testing.T) {
	// Boost to a random frame and back must restore the vector.
	v := FourVec{1, 2, 3, 10}
	bx, by, bz := 0.3, -0.2, 0.4
	w := v.Boost(bx, by, bz).Boost(-bx, -by, -bz)
	if !almost(w.Px, v.Px, 1e-9) || !almost(w.E, v.E, 1e-9) {
		t.Fatalf("boost round trip: %+v vs %+v", w, v)
	}
	// Mass is boost-invariant.
	if !almost(v.Boost(bx, by, bz).Mass(), v.Mass(), 1e-9) {
		t.Fatal("boost changed invariant mass")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	e := &Event{Number: 42, Run: 7, IsSignal: true, Particles: []Particle{
		{ID: IDBJet, Charge: 0, Px: 10, Py: -20, Pz: 30, E: 60},
		{ID: -IDPionPlus, Charge: -1, Px: 0.1, Py: 0.2, Pz: -0.3, E: 0.45},
	}}
	rec := Marshal(nil, e)
	if len(rec) != EncodedSize(2) {
		t.Fatalf("encoded %d bytes, want %d", len(rec), EncodedSize(2))
	}
	back, err := Unmarshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if back.Number != 42 || back.Run != 7 || !back.IsSignal || len(back.Particles) != 2 {
		t.Fatalf("header mismatch: %+v", back)
	}
	if back.Particles[0] != e.Particles[0] || back.Particles[1] != e.Particles[1] {
		t.Fatal("particle mismatch")
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	e := &Event{Number: 1, Particles: make([]Particle, 3)}
	rec := Marshal(nil, e)
	if _, err := Unmarshal(rec[:len(rec)-1]); err == nil {
		t.Fatal("truncated record accepted")
	}
	if _, err := Unmarshal(rec[:5]); err == nil {
		t.Fatal("tiny record accepted")
	}
	// Absurd particle count.
	bad := append([]byte(nil), rec...)
	bad[13], bad[14], bad[15], bad[16] = 0xff, 0xff, 0xff, 0x7f
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("absurd count accepted")
	}
}

func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(num int64, run int32, n uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := &Event{Number: num, Run: run, IsSignal: seed%2 == 0}
		for i := 0; i < int(n%50); i++ {
			e.Particles = append(e.Particles, Particle{
				ID:     int32(rng.Intn(1000) - 500),
				Charge: int8(rng.Intn(3) - 1),
				Px:     float32(rng.NormFloat64() * 50),
				Py:     float32(rng.NormFloat64() * 50),
				Pz:     float32(rng.NormFloat64() * 50),
				E:      float32(rng.Float64() * 250),
			})
		}
		rec := Marshal(nil, e)
		back, err := Unmarshal(rec)
		if err != nil || back.Number != e.Number || back.Run != e.Run ||
			back.IsSignal != e.IsSignal || len(back.Particles) != len(e.Particles) {
			return false
		}
		for i := range e.Particles {
			if back.Particles[i] != e.Particles[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(GenConfig{Seed: 99})
	g2 := NewGenerator(GenConfig{Seed: 99})
	for i := 0; i < 50; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Number != b.Number || len(a.Particles) != len(b.Particles) {
			t.Fatal("same seed diverged")
		}
		for j := range a.Particles {
			if a.Particles[j] != b.Particles[j] {
				t.Fatal("same seed diverged in particles")
			}
		}
	}
	g3 := NewGenerator(GenConfig{Seed: 100})
	diff := false
	g1b := NewGenerator(GenConfig{Seed: 99})
	for i := 0; i < 10; i++ {
		a, b := g1b.Next(), g3.Next()
		if len(a.Particles) != len(b.Particles) {
			diff = true
			break
		}
	}
	if !diff {
		t.Log("different seeds produced same multiplicities (unlikely but possible)")
	}
}

func TestGeneratorEnergyConservation(t *testing.T) {
	// Hard-process objects (E > 20 GeV) should carry roughly the CM
	// energy, modulo resolution smearing and soft particles.
	g := NewGenerator(GenConfig{Seed: 5, AvgSoft: 1e-9})
	for i := 0; i < 100; i++ {
		e := g.Next()
		var sum FourVec
		for _, p := range e.Particles {
			sum = sum.Add(p.Vec())
		}
		if math.Abs(sum.E-500) > 100 {
			t.Fatalf("event %d: total E = %.1f, want ≈500", i, sum.E)
		}
	}
}

func TestGeneratorSignalHasHiggsMass(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 11, SignalFraction: 1.0, JetRes: 1e-9, AvgSoft: 1e-9})
	for i := 0; i < 50; i++ {
		e := g.Next()
		// The two b-jets must reconstruct the Higgs mass.
		var bjets []FourVec
		for _, p := range e.Particles {
			if p.ID == IDBJet || p.ID == -IDBJet {
				bjets = append(bjets, p.Vec())
			}
		}
		if len(bjets) != 2 {
			t.Fatalf("event %d: %d b-jets", i, len(bjets))
		}
		m := bjets[0].Add(bjets[1]).Mass()
		if math.Abs(m-120) > 1.5 {
			t.Fatalf("event %d: m(bb) = %.2f, want ≈120", i, m)
		}
	}
}

func TestHiggsAnalysisFindsPeak(t *testing.T) {
	tree := aida.NewTree()
	ctx := &analysis.Context{Tree: tree, Params: map[string]string{}}
	ha, err := NewHiggsAnalysis(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ha.Init(ctx); err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(GenConfig{Seed: 3, SignalFraction: 0.4})
	var buf []byte
	for i := 0; i < 3000; i++ {
		buf = Marshal(buf[:0], g.Next())
		if err := ha.Process(buf, ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := ha.End(ctx); err != nil {
		t.Fatal(err)
	}
	peak, height := ha.PeakIn(100, 140)
	if height <= 0 {
		t.Fatal("no peak found")
	}
	if math.Abs(peak-120) > 6 {
		t.Fatalf("peak at %.1f GeV, want ≈120", peak)
	}
	if tree.Get("/higgs/dijet-mass") == nil || tree.Get("/higgs/multiplicity") == nil {
		t.Fatal("analysis did not book expected histograms")
	}
	if got := tree.Get("/higgs/dijet-mass").(*aida.Histogram1D).Annotations().Get("higgs.peak"); got == "" {
		t.Fatal("peak annotation missing")
	}
}

func TestHiggsAnalysisBadParams(t *testing.T) {
	for _, params := range []map[string]string{
		{"minE": "not-a-number"},
		{"bins": "0"},
		{"maxMass": "-5"},
	} {
		if _, err := NewHiggsAnalysis(params); err == nil {
			t.Fatalf("params %v accepted", params)
		}
	}
}

func TestHiggsAnalysisRegistered(t *testing.T) {
	a, err := analysis.Default.New(HiggsAnalysisName, map[string]string{"minE": "25"})
	if err != nil {
		t.Fatal(err)
	}
	if a.(*HiggsAnalysis).minE != 25 {
		t.Fatal("params not applied through registry")
	}
}

func TestGenerateFileAndRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lc.ipa")
	n := 500
	bytes, err := GenerateFile(path, GenConfig{Seed: 21}, n)
	if err != nil {
		t.Fatal(err)
	}
	if bytes <= 0 {
		t.Fatal("no bytes written")
	}
	r, f, err := dataset.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if r.NumRecords() != int64(n) {
		t.Fatalf("NumRecords = %d, want %d", r.NumRecords(), n)
	}
	if r.PayloadBytes() != bytes {
		t.Fatalf("payload %d != written %d", r.PayloadBytes(), bytes)
	}
	// Every record decodes.
	it, err := r.Iter(0, -1)
	if err != nil {
		t.Fatal(err)
	}
	var e Event
	for i := 0; i < n; i++ {
		rec, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := UnmarshalInto(rec, &e); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if e.Number != int64(i) {
			t.Fatalf("record %d has event number %d", i, e.Number)
		}
	}
}

func TestMergedWorkersMatchSingleWorker(t *testing.T) {
	// The paper's core correctness claim: splitting the dataset across N
	// engines and merging their histograms gives the same answer as one
	// engine reading everything.
	const n = 1200
	g := NewGenerator(GenConfig{Seed: 8})
	var records [][]byte
	for i := 0; i < n; i++ {
		records = append(records, Marshal(nil, g.Next()))
	}
	run := func(recs [][]byte) *aida.Tree {
		tree := aida.NewTree()
		ctx := &analysis.Context{Tree: tree}
		ha, _ := NewHiggsAnalysis(nil)
		if err := ha.Init(ctx); err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := ha.Process(r, ctx); err != nil {
				t.Fatal(err)
			}
		}
		if err := ha.End(ctx); err != nil {
			t.Fatal(err)
		}
		return tree
	}
	single := run(records)
	merged := aida.NewTree()
	for w := 0; w < 4; w++ {
		lo, hi := w*n/4, (w+1)*n/4
		if err := merged.MergeFrom(run(records[lo:hi])); err != nil {
			t.Fatal(err)
		}
	}
	a := single.Get("/higgs/dijet-mass").(*aida.Histogram1D)
	b := merged.Get("/higgs/dijet-mass").(*aida.Histogram1D)
	if a.Entries() != b.Entries() {
		t.Fatalf("entries %d vs %d", a.Entries(), b.Entries())
	}
	for i := 0; i < a.Axis().Bins(); i++ {
		if !almost(a.BinHeight(i), b.BinHeight(i), 1e-9) {
			t.Fatalf("bin %d differs: %v vs %v", i, a.BinHeight(i), b.BinHeight(i))
		}
	}
}
