package events

import (
	"github.com/ipa-grid/ipa/internal/script"
)

// EventDecoderName is the script record-decoder key for LC event records.
const EventDecoderName = "lc-event"

// scriptEvent exposes a decoded event to scripts as an object with
// members: number, run, signal, n, particles (array of particle objects).
func scriptEvent(e *Event) script.Value {
	parts := &script.Array{Elems: make([]script.Value, len(e.Particles))}
	for i, p := range e.Particles {
		v := p.Vec()
		parts.Elems[i] = &script.MapObject{
			Name: "particle",
			Members: map[string]script.Value{
				"id":     float64(p.ID),
				"charge": float64(p.Charge),
				"px":     v.Px,
				"py":     v.Py,
				"pz":     v.Pz,
				"e":      v.E,
				"pt":     v.Pt(),
				"p":      v.P(),
				"mass":   v.Mass(),
				"cost":   v.CosTheta(),
			},
		}
	}
	return &script.MapObject{
		Name: "event",
		Members: map[string]script.Value{
			"number":    float64(e.Number),
			"run":       float64(e.Run),
			"signal":    e.IsSignal,
			"n":         float64(len(e.Particles)),
			"particles": parts,
		},
	}
}

// pairMass computes the invariant mass of two particle script objects —
// provided natively because it is the hot inner loop of every dijet scan.
func pairMass(args []script.Value) (script.Value, error) {
	if len(args) != 2 {
		return nil, errArity
	}
	v1, err := particleVec(args[0])
	if err != nil {
		return nil, err
	}
	v2, err := particleVec(args[1])
	if err != nil {
		return nil, err
	}
	return v1.Add(v2).Mass(), nil
}

var errArity = &script.RuntimeError{Msg: "pairMass expects (particle, particle)"}

func particleVec(v script.Value) (FourVec, error) {
	o, ok := v.(*script.MapObject)
	if !ok || o.Name != "particle" {
		return FourVec{}, &script.RuntimeError{Msg: "pairMass: argument is not a particle"}
	}
	px, _ := o.Members["px"].(float64)
	py, _ := o.Members["py"].(float64)
	pz, _ := o.Members["pz"].(float64)
	e, _ := o.Members["e"].(float64)
	return FourVec{px, py, pz, e}, nil
}

func init() {
	script.RegisterDecoder(EventDecoderName, func(rec []byte) (script.Value, error) {
		var e Event
		if err := UnmarshalInto(rec, &e); err != nil {
			return nil, err
		}
		return scriptEvent(&e), nil
	})
	script.RegisterGlobal("pairMass", script.HostFunc(pairMass))
}
