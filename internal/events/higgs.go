package events

import (
	"fmt"
	"strconv"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/analysis"
)

// HiggsAnalysis is the reference analysis of the paper's §4 evaluation:
// "a Java algorithm that looks for Higgs Bosons in simulated Linear
// Collider data". It scans all pairs of energetic objects in each event and
// histograms the pair invariant mass; ZH signal events produce a peak at
// the Higgs mass over the smooth combinatorial background.
//
// Parameters (all optional):
//
//	minE     — jet energy threshold in GeV (default 20)
//	bins     — mass histogram bins (default 125)
//	maxMass  — histogram upper edge in GeV (default 250)
//	dir      — output tree directory (default "/higgs")
type HiggsAnalysis struct {
	minE    float64
	bins    int
	maxMass float64
	dir     string

	mass   *aida.Histogram1D
	jetE   *aida.Histogram1D
	nPart  *aida.Histogram1D
	cosTh  *aida.Histogram1D
	selEff *aida.Profile1D

	scratch Event
	seen    int64

	// Reusable batch buffers for the bulk fills: one FillN per histogram
	// per event instead of a Fill per sample (the all-pairs mass loop is
	// quadratic in selected objects), with zero per-event allocation
	// once the buffers have grown to the working-set size.
	sel    []FourVec
	selE   []float64
	selCT  []float64
	masses []float64
}

// NewHiggsAnalysis builds the analysis from client parameters.
func NewHiggsAnalysis(params map[string]string) (*HiggsAnalysis, error) {
	h := &HiggsAnalysis{minE: 20, bins: 125, maxMass: 250, dir: "/higgs"}
	if v, ok := params["minE"]; ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("events: bad minE %q", v)
		}
		h.minE = f
	}
	if v, ok := params["bins"]; ok {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("events: bad bins %q", v)
		}
		h.bins = n
	}
	if v, ok := params["maxMass"]; ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("events: bad maxMass %q", v)
		}
		h.maxMass = f
	}
	if v, ok := params["dir"]; ok {
		h.dir = v
	}
	return h, nil
}

// Init implements analysis.Analysis.
func (h *HiggsAnalysis) Init(ctx *analysis.Context) error {
	var err error
	if h.mass, err = ctx.Tree.H1D(h.dir, "dijet-mass", "Dijet invariant mass [GeV]", h.bins, 0, h.maxMass); err != nil {
		return err
	}
	if h.jetE, err = ctx.Tree.H1D(h.dir, "jet-energy", "Selected object energy [GeV]", 100, 0, 300); err != nil {
		return err
	}
	if h.nPart, err = ctx.Tree.H1D(h.dir, "multiplicity", "Particles per event", 100, 0, 200); err != nil {
		return err
	}
	if h.cosTh, err = ctx.Tree.H1D(h.dir, "cos-theta", "cos(theta) of selected objects", 50, -1, 1); err != nil {
		return err
	}
	if h.selEff, err = ctx.Tree.P1D(h.dir, "selected-vs-mult", "Selected objects vs multiplicity", 40, 0, 200); err != nil {
		return err
	}
	h.seen = 0
	return nil
}

// Process implements analysis.Analysis.
func (h *HiggsAnalysis) Process(rec []byte, ctx *analysis.Context) error {
	if err := UnmarshalInto(rec, &h.scratch); err != nil {
		return err
	}
	e := &h.scratch
	h.seen++
	h.nPart.Fill(float64(len(e.Particles)))
	// Select energetic objects.
	sel := h.sel[:0]
	selE := h.selE[:0]
	selCT := h.selCT[:0]
	for _, p := range e.Particles {
		if float64(p.E) >= h.minE {
			v := p.Vec()
			sel = append(sel, v)
			selE = append(selE, v.E)
			selCT = append(selCT, v.CosTheta())
		}
	}
	h.sel, h.selE, h.selCT = sel, selE, selCT
	h.jetE.FillN(selE, nil)
	h.cosTh.FillN(selCT, nil)
	h.selEff.Fill(float64(len(e.Particles)), float64(len(sel)))
	// All-pairs invariant mass — the O(n²) inner loop whose cost the
	// paper's 5.3 s/MB analysis coefficient reflects. Masses are batched
	// into one FillN so the bin arithmetic runs once per batch, not once
	// per call.
	masses := h.masses[:0]
	for i := 0; i < len(sel); i++ {
		for j := i + 1; j < len(sel); j++ {
			masses = append(masses, sel[i].Add(sel[j]).Mass())
		}
	}
	h.masses = masses
	h.mass.FillN(masses, nil)
	return nil
}

// End implements analysis.Analysis: annotate the mass histogram with the
// location of the peak in the search window.
func (h *HiggsAnalysis) End(ctx *analysis.Context) error {
	peak, height := h.PeakIn(100, 140)
	h.mass.Annotations().Set("higgs.peak", fmt.Sprintf("%.1f", peak))
	h.mass.Annotations().Set("higgs.peak-height", fmt.Sprintf("%.1f", height))
	h.mass.Annotations().Set("higgs.events", strconv.FormatInt(h.seen, 10))
	return nil
}

// PeakIn returns the center and height of the highest mass bin within
// [lo, hi] — the discovery statistic of the example.
func (h *HiggsAnalysis) PeakIn(lo, hi float64) (center, height float64) {
	ax := h.mass.Axis()
	best := -1.0
	for i := 0; i < ax.Bins(); i++ {
		c := ax.BinCenter(i)
		if c < lo || c > hi {
			continue
		}
		if v := h.mass.BinHeight(i); v > best {
			best, center = v, c
		}
	}
	return center, best
}

// MassHistogram exposes the dijet-mass histogram (for tests and examples).
func (h *HiggsAnalysis) MassHistogram() *aida.Histogram1D { return h.mass }

// HiggsAnalysisName is the registry key for the reference analysis.
const HiggsAnalysisName = "higgs-search"

func init() {
	analysis.Register(HiggsAnalysisName, func(params map[string]string) (analysis.Analysis, error) {
		return NewHiggsAnalysis(params)
	})
}
