package script

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// evalExpr compiles and runs "result = <expr>" and returns the value.
func evalExpr(t *testing.T, expr string) Value {
	t.Helper()
	in := New(Options{})
	prog, err := Compile("result = " + expr + ";")
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	if err := in.Run(prog); err != nil {
		t.Fatalf("run %q: %v", expr, err)
	}
	v, _ := in.Lookup("result")
	return v
}

func runSrc(t *testing.T, src string) *Interp {
	t.Helper()
	in := New(Options{})
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := in.Run(prog); err != nil {
		t.Fatalf("run: %v", err)
	}
	return in
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want float64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 / 4", 2.5},
		{"7 % 3", 1},
		{"-3 + 5", 2},
		{"2 * 3 + 4 * 5", 26},
		{"1e3 + 0.5", 1000.5},
		{"10 - 2 - 3", 5}, // left associative
	}
	for _, c := range cases {
		got := evalExpr(t, c.expr)
		if f, ok := got.(float64); !ok || f != c.want {
			t.Errorf("%q = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestComparisonAndLogic(t *testing.T) {
	cases := []struct {
		expr string
		want bool
	}{
		{"1 < 2", true},
		{"2 <= 2", true},
		{"3 > 4", false},
		{"1 == 1", true},
		{"1 != 1", false},
		{`"a" < "b"`, true},
		{`"x" == "x"`, true},
		{"true && false", false},
		{"true || false", true},
		{"!false", true},
		{"nil == nil", true},
		{"1 == \"1\"", false}, // no cross-type equality
	}
	for _, c := range cases {
		got := evalExpr(t, c.expr)
		if b, ok := got.(bool); !ok || b != c.want {
			t.Errorf("%q = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// The right side would error (division by zero) if evaluated.
	in := runSrc(t, `
		x = 0;
		ok1 = false && (1/x > 0);
		ok2 = true || (1/x > 0);
	`)
	v1, _ := in.Lookup("ok1")
	v2, _ := in.Lookup("ok2")
	if v1 != false || v2 != true {
		t.Fatalf("short circuit failed: %v %v", v1, v2)
	}
}

func TestStrings(t *testing.T) {
	got := evalExpr(t, `"mass = " + 125.5`)
	if got != "mass = 125.5" {
		t.Fatalf("concat = %q", got)
	}
	if evalExpr(t, `len("hello")`) != 5.0 {
		t.Fatal("len failed")
	}
	if evalExpr(t, `format("%.2f GeV", 120.123)`) != "120.12 GeV" {
		t.Fatal("format failed")
	}
	if evalExpr(t, `upper("abc")`) != "ABC" {
		t.Fatal("upper failed")
	}
	if evalExpr(t, `"abc"[1]`) != "b" {
		t.Fatal("string index failed")
	}
}

func TestArraysAndMaps(t *testing.T) {
	in := runSrc(t, `
		a = [1, 2, 3];
		push(a, 10);
		a[0] = 99;
		total = 0;
		for (x : a) { total += x; }
		m = {"x": 1, "y": 2};
		m["z"] = 3;
		m.w = 4;
		sum = m.x + m["y"] + m.z + m.w;
		ks = keys(m);
		sorted = sort([3, 1, 2]);
	`)
	if v, _ := in.Lookup("total"); v != 114.0 {
		t.Fatalf("array sum = %v", v)
	}
	if v, _ := in.Lookup("sum"); v != 10.0 {
		t.Fatalf("map sum = %v", v)
	}
	ks, _ := in.Lookup("ks")
	if ToString(ks) != "[w, x, y, z]" {
		t.Fatalf("keys = %v", ToString(ks))
	}
	sorted, _ := in.Lookup("sorted")
	if ToString(sorted) != "[1, 2, 3]" {
		t.Fatalf("sort = %v", ToString(sorted))
	}
}

func TestControlFlow(t *testing.T) {
	in := runSrc(t, `
		// while with break/continue
		i = 0; evens = 0;
		while (true) {
			i += 1;
			if (i > 10) break;
			if (i % 2 == 1) continue;
			evens += 1;
		}
		// C-style for
		fact = 1;
		for (k = 1; k <= 5; k += 1) fact *= k;
		// ternary
		sign = -5 < 0 ? "neg" : "pos";
		// range iteration over a number
		cnt = 0;
		for (j : 4) cnt += 1;
	`)
	if v, _ := in.Lookup("evens"); v != 5.0 {
		t.Fatalf("evens = %v", v)
	}
	if v, _ := in.Lookup("fact"); v != 120.0 {
		t.Fatalf("fact = %v", v)
	}
	if v, _ := in.Lookup("sign"); v != "neg" {
		t.Fatalf("sign = %v", v)
	}
	if v, _ := in.Lookup("cnt"); v != 4.0 {
		t.Fatalf("cnt = %v", v)
	}
}

func TestFunctionsAndClosures(t *testing.T) {
	in := runSrc(t, `
		function add(a, b) { return a + b; }
		function makeCounter() {
			n = 0;
			return function() { n += 1; return n; };
		}
		c1 = makeCounter();
		c2 = makeCounter();
		c1(); c1();
		x = c1();   // 3
		y = c2();   // 1 — independent closure state
		s = add(2, 3);
		function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
		f10 = fib(10);
	`)
	if v, _ := in.Lookup("x"); v != 3.0 {
		t.Fatalf("closure count = %v", v)
	}
	if v, _ := in.Lookup("y"); v != 1.0 {
		t.Fatalf("closure isolation broken: %v", v)
	}
	if v, _ := in.Lookup("s"); v != 5.0 {
		t.Fatalf("add = %v", v)
	}
	if v, _ := in.Lookup("f10"); v != 55.0 {
		t.Fatalf("fib(10) = %v", v)
	}
}

func TestRecursionDepthLimited(t *testing.T) {
	in := New(Options{MaxCallDepth: 32})
	prog, err := Compile(`function f(n) { return f(n+1); } f(0);`)
	if err != nil {
		t.Fatal(err)
	}
	err = in.Run(prog)
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("unbounded recursion not stopped: %v", err)
	}
}

func TestFuelStopsInfiniteLoop(t *testing.T) {
	in := New(Options{Fuel: 10000})
	prog, err := Compile(`while (true) { x = 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	err = in.Run(prog)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("infinite loop not stopped: %v", err)
	}
}

func TestRuntimeErrorsCarryPositions(t *testing.T) {
	in := New(Options{})
	prog, err := Compile("x = 1;\ny = x / 0;")
	if err != nil {
		t.Fatal(err)
	}
	err = in.Run(prog)
	if err == nil || !strings.Contains(err.Error(), "2:") {
		t.Fatalf("error lacks line info: %v", err)
	}
	for _, src := range []string{
		"undefinedVariable + 1;",
		"a = [1]; a[5];",
		"a = [1]; a[\"x\"];",
		"f = 5; f();",
		"m = {\"a\": 1}; m[3];",
		"x = -\"str\";",
		`x = 1 < "a";`,
	} {
		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		if err := New(Options{}).Run(prog); err == nil {
			t.Errorf("%q ran without error", src)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	for _, src := range []string{
		"x = ;",
		"if true {}",
		"function (",
		"a = [1, 2",
		`s = "unterminated`,
		"x = 1 & 2;",
		"function f(a, a) {}",
		"/* unclosed",
		"5 = x;",
		"x = 08abc;",
	} {
		if _, err := Compile(src); err == nil {
			t.Errorf("%q compiled", src)
		}
	}
}

func TestCompoundAssignment(t *testing.T) {
	in := runSrc(t, `
		x = 10; x += 5; x -= 3; x *= 2; x /= 4;
		a = [1]; a[0] += 10;
		m = {"k": 2}; m.k *= 5;
	`)
	if v, _ := in.Lookup("x"); v != 6.0 {
		t.Fatalf("x = %v", v)
	}
	a, _ := in.Lookup("a")
	if a.(*Array).Elems[0] != 11.0 {
		t.Fatal("array compound assign failed")
	}
	m, _ := in.Lookup("m")
	if m.(*Map).Items["k"] != 10.0 {
		t.Fatal("map compound assign failed")
	}
}

func TestPrintCapture(t *testing.T) {
	var buf bytes.Buffer
	in := New(Options{Output: &buf})
	prog, err := Compile(`println("found peak at", 120.5); print("done");`)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Run(prog); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "found peak at 120.5\ndone" {
		t.Fatalf("output %q", buf.String())
	}
}

func TestErrorBuiltin(t *testing.T) {
	in := New(Options{})
	prog, _ := Compile(`error("bad event format");`)
	err := in.Run(prog)
	if err == nil || !strings.Contains(err.Error(), "bad event format") {
		t.Fatalf("error() = %v", err)
	}
}

// Property: script arithmetic matches Go arithmetic for random inputs.
func TestQuickArithmeticMatchesGo(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		// Constrain magnitude to avoid formatting precision issues.
		a = math.Mod(a, 1e6)
		b = math.Mod(b, 1e6)
		in := New(Options{})
		in.Define("a", a)
		in.Define("b", b)
		prog, err := Compile("s = a + b; d = a - b; p = a * b; lt = a < b;")
		if err != nil {
			return false
		}
		if err := in.Run(prog); err != nil {
			return false
		}
		s, _ := in.Lookup("s")
		d, _ := in.Lookup("d")
		p, _ := in.Lookup("p")
		lt, _ := in.Lookup("lt")
		return s == a+b && d == a-b && p == a*b && lt == (a < b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMathBuiltins(t *testing.T) {
	if v := evalExpr(t, "sqrt(16)"); v != 4.0 {
		t.Fatalf("sqrt = %v", v)
	}
	if v := evalExpr(t, "pow(2, 10)"); v != 1024.0 {
		t.Fatalf("pow = %v", v)
	}
	if v := evalExpr(t, "abs(-3.5)"); v != 3.5 {
		t.Fatalf("abs = %v", v)
	}
	if v := evalExpr(t, "min(2, 1) + max(5, 9)"); v != 10.0 {
		t.Fatalf("minmax = %v", v)
	}
	if v := evalExpr(t, "floor(2.9) + ceil(2.1)"); v != 5.0 {
		t.Fatalf("floorceil = %v", v)
	}
	if v := evalExpr(t, "num(\"42.5\")"); v != 42.5 {
		t.Fatalf("num = %v", v)
	}
}

func TestNamedFunctionDeclaration(t *testing.T) {
	in := runSrc(t, `function square(x) { return x * x; } r = square(7);`)
	if v, _ := in.Lookup("r"); v != 49.0 {
		t.Fatalf("square = %v", v)
	}
}

func TestForEachOverMapIsSortedKeys(t *testing.T) {
	in := runSrc(t, `
		m = {"b": 1, "a": 2, "c": 3};
		order = "";
		for (k : m) order += k;
	`)
	if v, _ := in.Lookup("order"); v != "abc" {
		t.Fatalf("map iteration order = %v", v)
	}
}
