package script

import (
	"bytes"
	"fmt"
	"sync"

	"github.com/ipa-grid/ipa/internal/analysis"
)

// RecordDecoder converts a raw dataset record into a script value, so
// scripts see structured events rather than bytes. Decoders are registered
// by data-format packages ("the analysis engines ... dynamically pickup new
// data format readers", §2.3).
type RecordDecoder func(rec []byte) (Value, error)

var (
	decoderMu sync.RWMutex
	decoders  = map[string]RecordDecoder{
		// raw passes the record through as a string.
		"raw": func(rec []byte) (Value, error) { return string(rec), nil },
	}
)

// RegisterDecoder installs a named record decoder. Duplicate names panic.
func RegisterDecoder(name string, d RecordDecoder) {
	decoderMu.Lock()
	defer decoderMu.Unlock()
	if _, dup := decoders[name]; dup {
		panic(fmt.Sprintf("script: duplicate decoder %q", name))
	}
	decoders[name] = d
}

// LookupDecoder returns a registered decoder.
func LookupDecoder(name string) (RecordDecoder, bool) {
	decoderMu.RLock()
	defer decoderMu.RUnlock()
	d, ok := decoders[name]
	return d, ok
}

// DecoderNames lists registered decoders (for error messages and the CLI).
func DecoderNames() []string {
	decoderMu.RLock()
	defer decoderMu.RUnlock()
	out := make([]string, 0, len(decoders))
	for n := range decoders {
		out = append(out, n)
	}
	return out
}

var (
	globalsMu    sync.RWMutex
	extraGlobals = map[string]Value{}
)

// RegisterGlobal installs a value into every analysis interpreter's global
// scope — how data-format packages contribute helper functions (e.g. the
// native pairMass of the LC event binding). Duplicate names panic.
func RegisterGlobal(name string, v Value) {
	globalsMu.Lock()
	defer globalsMu.Unlock()
	if _, dup := extraGlobals[name]; dup {
		panic(fmt.Sprintf("script: duplicate global %q", name))
	}
	extraGlobals[name] = v
}

func installExtraGlobals(in *Interp) {
	globalsMu.RLock()
	defer globalsMu.RUnlock()
	for name, v := range extraGlobals {
		in.Define(name, v)
	}
}

// perEventFuel is added before each Process call so long datasets never
// starve, while a single pathological event still halts quickly.
const perEventFuel = 2_000_000

// Analysis adapts a compiled script to the analysis.Analysis interface.
// The script defines up to three global functions:
//
//	function init()        { ... }   // optional: book histograms
//	function process(ev)   { ... }   // required: per record
//	function end()         { ... }   // optional: finalize
//
// Top-level code runs once per Init (i.e. again after rewind/reload),
// which is where most scripts book their histograms.
type Analysis struct {
	prog    *Program
	decoder RecordDecoder
	interp  *Interp
	output  bytes.Buffer
	fuel    int64
}

// NewAnalysis compiles source and binds the named record decoder.
func NewAnalysis(source, decoderName string) (*Analysis, error) {
	prog, err := Compile(source)
	if err != nil {
		return nil, err
	}
	if decoderName == "" {
		decoderName = "raw"
	}
	dec, ok := LookupDecoder(decoderName)
	if !ok {
		return nil, fmt.Errorf("script: unknown record decoder %q (have %v)", decoderName, DecoderNames())
	}
	return &Analysis{prog: prog, decoder: dec}, nil
}

// Output returns everything the script printed so far (relayed to the
// client as notification messages).
func (a *Analysis) Output() string { return a.output.String() }

// Init implements analysis.Analysis: it builds a fresh interpreter (so a
// rewind truly restarts the analysis), binds host objects, executes the
// top level, and calls init() if defined.
func (a *Analysis) Init(ctx *analysis.Context) error {
	a.output.Reset()
	a.interp = New(Options{Output: &a.output, Fuel: perEventFuel})
	installExtraGlobals(a.interp)
	a.interp.Define("tree", &TreeObject{Tree: ctx.Tree})
	params := NewMap()
	for k, v := range ctx.Params {
		params.Items[k] = v
	}
	a.interp.Define("params", params)
	a.interp.Define("workerid", ctx.WorkerID)
	if err := a.interp.Run(a.prog); err != nil {
		return fmt.Errorf("script top-level: %w", err)
	}
	if a.interp.Has("init") {
		if _, err := a.interp.Call("init"); err != nil {
			return fmt.Errorf("script init(): %w", err)
		}
	}
	if !a.interp.Has("process") {
		return fmt.Errorf("script: no process(event) function defined")
	}
	return nil
}

// Process implements analysis.Analysis.
func (a *Analysis) Process(rec []byte, ctx *analysis.Context) error {
	ev, err := a.decoder(rec)
	if err != nil {
		return fmt.Errorf("script: decoding record %d: %w", ctx.EventIndex, err)
	}
	// Top the fuel back up to the per-event budget.
	if rem := a.interp.RemainingFuel(); rem < perEventFuel {
		a.interp.AddFuel(perEventFuel - rem)
	}
	if _, err := a.interp.Call("process", ev); err != nil {
		return fmt.Errorf("script process() at record %d: %w", ctx.EventIndex, err)
	}
	return nil
}

// End implements analysis.Analysis.
func (a *Analysis) End(ctx *analysis.Context) error {
	if a.interp.Has("end") {
		if _, err := a.interp.Call("end"); err != nil {
			return fmt.Errorf("script end(): %w", err)
		}
	}
	return nil
}

var _ analysis.Analysis = (*Analysis)(nil)
