// Package script implements the analysis scripting language of the IPA
// framework — the stand-in for the PNUTS scripts of the paper's §3.5.
//
// The language is a small, dynamically typed, C-syntax scripting language:
// numbers, strings, booleans, nil, arrays, maps, first-class functions with
// closures, if/while/for control flow, and host-object bindings through
// which scripts fill AIDA histograms and inspect dataset records. Scripts
// are shipped from the client to the analysis engines as source, compiled
// on arrival, and can be replaced between runs ("the new analysis code can
// be dynamically reloaded", §3.6).
//
// The interpreter is deterministic and fuel-limited so a runaway user
// script cannot wedge a worker node.
package script

import "fmt"

// Pos is a source position (1-based).
type Pos struct {
	Line int
	Col  int
}

// String formats the position like compilers do.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// tokKind enumerates token types.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString

	// Keywords.
	tokFunction
	tokIf
	tokElse
	tokWhile
	tokFor
	tokReturn
	tokBreak
	tokContinue
	tokTrue
	tokFalse
	tokNil

	// Punctuation and operators.
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokLBracket
	tokRBracket
	tokComma
	tokSemicolon
	tokColon
	tokDot
	tokQuestion

	tokAssign      // =
	tokPlusAssign  // +=
	tokMinusAssign // -=
	tokStarAssign  // *=
	tokSlashAssign // /=

	tokOr  // ||
	tokAnd // &&
	tokNot // !

	tokEq // ==
	tokNe // !=
	tokLt
	tokLe
	tokGt
	tokGe

	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokPercent
)

var keywords = map[string]tokKind{
	"function": tokFunction,
	"if":       tokIf,
	"else":     tokElse,
	"while":    tokWhile,
	"for":      tokFor,
	"return":   tokReturn,
	"break":    tokBreak,
	"continue": tokContinue,
	"true":     tokTrue,
	"false":    tokFalse,
	"nil":      tokNil,
	"null":     tokNil, // PNUTS spelling
}

var tokNames = map[tokKind]string{
	tokEOF: "end of input", tokIdent: "identifier", tokNumber: "number", tokString: "string",
	tokFunction: "'function'", tokIf: "'if'", tokElse: "'else'", tokWhile: "'while'",
	tokFor: "'for'", tokReturn: "'return'", tokBreak: "'break'", tokContinue: "'continue'",
	tokTrue: "'true'", tokFalse: "'false'", tokNil: "'nil'",
	tokLParen: "'('", tokRParen: "')'", tokLBrace: "'{'", tokRBrace: "'}'",
	tokLBracket: "'['", tokRBracket: "']'", tokComma: "','", tokSemicolon: "';'",
	tokColon: "':'", tokDot: "'.'", tokQuestion: "'?'",
	tokAssign: "'='", tokPlusAssign: "'+='", tokMinusAssign: "'-='",
	tokStarAssign: "'*='", tokSlashAssign: "'/='",
	tokOr: "'||'", tokAnd: "'&&'", tokNot: "'!'",
	tokEq: "'=='", tokNe: "'!='", tokLt: "'<'", tokLe: "'<='", tokGt: "'>'", tokGe: "'>='",
	tokPlus: "'+'", tokMinus: "'-'", tokStar: "'*'", tokSlash: "'/'", tokPercent: "'%'",
}

func (k tokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// token is one lexeme.
type token struct {
	kind tokKind
	pos  Pos
	text string  // identifiers, strings (unescaped)
	num  float64 // numbers
}

// SyntaxError reports a compile-time problem with its position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("script:%s: %s", e.Pos, e.Msg) }

// lexer scans source into tokens.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(pos Pos, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peekByte2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekByte2() == '/':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekByte2() == '*':
			start := Pos{l.line, l.col}
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peekByte() == '*' && l.peekByte2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	pos := Pos{l.line, l.col}
	if l.off >= len(l.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && (isIdentStart(l.peekByte()) || isDigit(l.peekByte())) {
			l.advance()
		}
		word := l.src[start:l.off]
		if kw, ok := keywords[word]; ok {
			return token{kind: kw, pos: pos, text: word}, nil
		}
		return token{kind: tokIdent, pos: pos, text: word}, nil
	case isDigit(c), c == '.' && isDigit(l.peekByte2()):
		return l.scanNumber(pos)
	case c == '"':
		return l.scanString(pos)
	}
	l.advance()
	two := func(second byte, withKind, withoutKind tokKind) (token, error) {
		if l.peekByte() == second {
			l.advance()
			return token{kind: withKind, pos: pos}, nil
		}
		return token{kind: withoutKind, pos: pos}, nil
	}
	switch c {
	case '(':
		return token{kind: tokLParen, pos: pos}, nil
	case ')':
		return token{kind: tokRParen, pos: pos}, nil
	case '{':
		return token{kind: tokLBrace, pos: pos}, nil
	case '}':
		return token{kind: tokRBrace, pos: pos}, nil
	case '[':
		return token{kind: tokLBracket, pos: pos}, nil
	case ']':
		return token{kind: tokRBracket, pos: pos}, nil
	case ',':
		return token{kind: tokComma, pos: pos}, nil
	case ';':
		return token{kind: tokSemicolon, pos: pos}, nil
	case ':':
		return token{kind: tokColon, pos: pos}, nil
	case '.':
		return token{kind: tokDot, pos: pos}, nil
	case '?':
		return token{kind: tokQuestion, pos: pos}, nil
	case '=':
		return two('=', tokEq, tokAssign)
	case '!':
		return two('=', tokNe, tokNot)
	case '<':
		return two('=', tokLe, tokLt)
	case '>':
		return two('=', tokGe, tokGt)
	case '+':
		return two('=', tokPlusAssign, tokPlus)
	case '-':
		return two('=', tokMinusAssign, tokMinus)
	case '*':
		return two('=', tokStarAssign, tokStar)
	case '/':
		return two('=', tokSlashAssign, tokSlash)
	case '%':
		return token{kind: tokPercent, pos: pos}, nil
	case '&':
		if l.peekByte() == '&' {
			l.advance()
			return token{kind: tokAnd, pos: pos}, nil
		}
		return token{}, l.errf(pos, "unexpected '&' (use '&&')")
	case '|':
		if l.peekByte() == '|' {
			l.advance()
			return token{kind: tokOr, pos: pos}, nil
		}
		return token{}, l.errf(pos, "unexpected '|' (use '||')")
	}
	return token{}, l.errf(pos, "unexpected character %q", string(c))
}

func (l *lexer) scanNumber(pos Pos) (token, error) {
	start := l.off
	seenDot, seenExp := false, false
	for l.off < len(l.src) {
		c := l.peekByte()
		switch {
		case isDigit(c):
			l.advance()
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.advance()
		case (c == 'e' || c == 'E') && !seenExp:
			seenExp = true
			l.advance()
			if l.peekByte() == '+' || l.peekByte() == '-' {
				l.advance()
			}
		default:
			goto done
		}
	}
done:
	if l.off < len(l.src) && isIdentStart(l.peekByte()) {
		return token{}, l.errf(pos, "malformed number literal %q", l.src[start:l.off+1])
	}
	text := l.src[start:l.off]
	var v float64
	if _, err := fmt.Sscanf(text, "%g", &v); err != nil {
		return token{}, l.errf(pos, "bad number literal %q", text)
	}
	return token{kind: tokNumber, pos: pos, num: v, text: text}, nil
}

func (l *lexer) scanString(pos Pos) (token, error) {
	l.advance() // opening quote
	var out []byte
	for {
		if l.off >= len(l.src) {
			return token{}, l.errf(pos, "unterminated string")
		}
		c := l.advance()
		switch c {
		case '"':
			return token{kind: tokString, pos: pos, text: string(out)}, nil
		case '\n':
			return token{}, l.errf(pos, "newline in string")
		case '\\':
			if l.off >= len(l.src) {
				return token{}, l.errf(pos, "unterminated escape")
			}
			e := l.advance()
			switch e {
			case 'n':
				out = append(out, '\n')
			case 't':
				out = append(out, '\t')
			case 'r':
				out = append(out, '\r')
			case '"':
				out = append(out, '"')
			case '\\':
				out = append(out, '\\')
			default:
				return token{}, l.errf(pos, "unknown escape \\%c", e)
			}
		default:
			out = append(out, c)
		}
	}
}

// lexAll scans the whole source (used by the parser).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
