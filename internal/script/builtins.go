package script

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// installBuiltins binds the standard library into an interpreter's globals.
// The set mirrors what the paper's PNUTS analyses used: math, string
// formatting, array helpers, and printing (captured by the engine and
// relayed to the client as notification messages).
func installBuiltins(in *Interp) {
	out := func(s string) {
		if in.out != nil {
			fmt.Fprint(in.out, s)
		}
	}

	def := func(name string, f HostFunc) { in.Define(name, f) }

	need := func(args []Value, n int, name string) error {
		if len(args) != n {
			return fmt.Errorf("%s expects %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}

	num1 := func(name string, f func(float64) float64) HostFunc {
		return func(args []Value) (Value, error) {
			if err := need(args, 1, name); err != nil {
				return nil, err
			}
			x, err := Number(args[0])
			if err != nil {
				return nil, fmt.Errorf("%s: %v", name, err)
			}
			return f(x), nil
		}
	}
	num2 := func(name string, f func(a, b float64) float64) HostFunc {
		return func(args []Value) (Value, error) {
			if err := need(args, 2, name); err != nil {
				return nil, err
			}
			a, err := Number(args[0])
			if err != nil {
				return nil, fmt.Errorf("%s: %v", name, err)
			}
			b, err := Number(args[1])
			if err != nil {
				return nil, fmt.Errorf("%s: %v", name, err)
			}
			return f(a, b), nil
		}
	}

	def("print", func(args []Value) (Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = ToString(a)
		}
		out(strings.Join(parts, " "))
		return nil, nil
	})
	def("println", func(args []Value) (Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = ToString(a)
		}
		out(strings.Join(parts, " ") + "\n")
		return nil, nil
	})
	def("len", func(args []Value) (Value, error) {
		if err := need(args, 1, "len"); err != nil {
			return nil, err
		}
		switch x := args[0].(type) {
		case string:
			return float64(len(x)), nil
		case *Array:
			return float64(len(x.Elems)), nil
		case *Map:
			return float64(len(x.Items)), nil
		default:
			return nil, fmt.Errorf("len: cannot measure %s", TypeName(args[0]))
		}
	})

	// Math.
	def("sqrt", num1("sqrt", math.Sqrt))
	def("abs", num1("abs", math.Abs))
	def("floor", num1("floor", math.Floor))
	def("ceil", num1("ceil", math.Ceil))
	def("round", num1("round", math.Round))
	def("exp", num1("exp", math.Exp))
	def("log", num1("log", math.Log))
	def("log10", num1("log10", math.Log10))
	def("sin", num1("sin", math.Sin))
	def("cos", num1("cos", math.Cos))
	def("tan", num1("tan", math.Tan))
	def("atan2", num2("atan2", math.Atan2))
	def("pow", num2("pow", math.Pow))
	def("min", num2("min", math.Min))
	def("max", num2("max", math.Max))
	in.Define("PI", math.Pi)

	// Strings.
	def("str", func(args []Value) (Value, error) {
		if err := need(args, 1, "str"); err != nil {
			return nil, err
		}
		return ToString(args[0]), nil
	})
	def("num", func(args []Value) (Value, error) {
		if err := need(args, 1, "num"); err != nil {
			return nil, err
		}
		switch x := args[0].(type) {
		case float64:
			return x, nil
		case string:
			f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
			if err != nil {
				return nil, fmt.Errorf("num: cannot parse %q", x)
			}
			return f, nil
		case bool:
			if x {
				return 1.0, nil
			}
			return 0.0, nil
		default:
			return nil, fmt.Errorf("num: cannot convert %s", TypeName(args[0]))
		}
	})
	def("format", func(args []Value) (Value, error) {
		if len(args) == 0 {
			return nil, fmt.Errorf("format expects a format string")
		}
		f, err := Str(args[0])
		if err != nil {
			return nil, fmt.Errorf("format: %v", err)
		}
		rest := make([]any, len(args)-1)
		for i, a := range args[1:] {
			rest[i] = a
		}
		return fmt.Sprintf(f, rest...), nil
	})
	def("split", func(args []Value) (Value, error) {
		if err := need(args, 2, "split"); err != nil {
			return nil, err
		}
		s, err := Str(args[0])
		if err != nil {
			return nil, err
		}
		sep, err := Str(args[1])
		if err != nil {
			return nil, err
		}
		parts := strings.Split(s, sep)
		arr := &Array{Elems: make([]Value, len(parts))}
		for i, p := range parts {
			arr.Elems[i] = p
		}
		return arr, nil
	})
	def("contains", func(args []Value) (Value, error) {
		if err := need(args, 2, "contains"); err != nil {
			return nil, err
		}
		s, err := Str(args[0])
		if err != nil {
			return nil, err
		}
		sub, err := Str(args[1])
		if err != nil {
			return nil, err
		}
		return strings.Contains(s, sub), nil
	})
	def("upper", func(args []Value) (Value, error) {
		if err := need(args, 1, "upper"); err != nil {
			return nil, err
		}
		s, err := Str(args[0])
		if err != nil {
			return nil, err
		}
		return strings.ToUpper(s), nil
	})
	def("lower", func(args []Value) (Value, error) {
		if err := need(args, 1, "lower"); err != nil {
			return nil, err
		}
		s, err := Str(args[0])
		if err != nil {
			return nil, err
		}
		return strings.ToLower(s), nil
	})

	// Arrays and maps.
	def("push", func(args []Value) (Value, error) {
		if len(args) < 2 {
			return nil, fmt.Errorf("push expects (array, values...)")
		}
		arr, ok := args[0].(*Array)
		if !ok {
			return nil, fmt.Errorf("push: first argument must be array, got %s", TypeName(args[0]))
		}
		arr.Elems = append(arr.Elems, args[1:]...)
		return arr, nil
	})
	def("keys", func(args []Value) (Value, error) {
		if err := need(args, 1, "keys"); err != nil {
			return nil, err
		}
		m, ok := args[0].(*Map)
		if !ok {
			return nil, fmt.Errorf("keys: expected map, got %s", TypeName(args[0]))
		}
		ks := make([]string, 0, len(m.Items))
		for k := range m.Items {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		arr := &Array{Elems: make([]Value, len(ks))}
		for i, k := range ks {
			arr.Elems[i] = k
		}
		return arr, nil
	})
	def("has", func(args []Value) (Value, error) {
		if err := need(args, 2, "has"); err != nil {
			return nil, err
		}
		m, ok := args[0].(*Map)
		if !ok {
			return nil, fmt.Errorf("has: expected map, got %s", TypeName(args[0]))
		}
		k, err := Str(args[1])
		if err != nil {
			return nil, err
		}
		_, present := m.Items[k]
		return present, nil
	})
	def("range", func(args []Value) (Value, error) {
		var lo, hi float64
		switch len(args) {
		case 1:
			h, err := Number(args[0])
			if err != nil {
				return nil, err
			}
			hi = h
		case 2:
			l, err := Number(args[0])
			if err != nil {
				return nil, err
			}
			h, err := Number(args[1])
			if err != nil {
				return nil, err
			}
			lo, hi = l, h
		default:
			return nil, fmt.Errorf("range expects 1 or 2 arguments")
		}
		if hi-lo > 10_000_000 {
			return nil, fmt.Errorf("range of %g elements is too large", hi-lo)
		}
		arr := &Array{}
		for v := lo; v < hi; v++ {
			arr.Elems = append(arr.Elems, v)
		}
		return arr, nil
	})
	def("sort", func(args []Value) (Value, error) {
		if err := need(args, 1, "sort"); err != nil {
			return nil, err
		}
		arr, ok := args[0].(*Array)
		if !ok {
			return nil, fmt.Errorf("sort: expected array, got %s", TypeName(args[0]))
		}
		nums := make([]float64, len(arr.Elems))
		for i, e := range arr.Elems {
			f, ok := e.(float64)
			if !ok {
				return nil, fmt.Errorf("sort: element %d is %s, not number", i, TypeName(e))
			}
			nums[i] = f
		}
		sort.Float64s(nums)
		out := &Array{Elems: make([]Value, len(nums))}
		for i, f := range nums {
			out.Elems[i] = f
		}
		return out, nil
	})
	def("error", func(args []Value) (Value, error) {
		msg := "script error"
		if len(args) > 0 {
			msg = ToString(args[0])
		}
		return nil, fmt.Errorf("%s", msg)
	})
}
