package script

// AST node definitions. Nodes carry their source position for error
// reporting back to the client — when a physicist's uploaded script fails
// on a worker node, the engine returns "script:LINE:COL: message".

// Node is any AST node.
type Node interface{ position() Pos }

// Expressions.

type numberLit struct {
	pos Pos
	val float64
}

type stringLit struct {
	pos Pos
	val string
}

type boolLit struct {
	pos Pos
	val bool
}

type nilLit struct{ pos Pos }

type arrayLit struct {
	pos   Pos
	elems []Node
}

type mapLit struct {
	pos  Pos
	keys []Node // evaluated to strings
	vals []Node
}

type identExpr struct {
	pos  Pos
	name string
}

type unaryExpr struct {
	pos Pos
	op  tokKind // tokMinus, tokNot
	x   Node
}

type binaryExpr struct {
	pos  Pos
	op   tokKind
	l, r Node
}

type ternaryExpr struct {
	pos             Pos
	cond, then, alt Node
}

type callExpr struct {
	pos    Pos
	callee Node
	args   []Node
}

type indexExpr struct {
	pos    Pos
	target Node
	index  Node
}

type memberExpr struct {
	pos    Pos
	target Node
	name   string
}

type funcLit struct {
	pos    Pos
	name   string // "" for anonymous
	params []string
	body   *blockStmt
}

// assignExpr covers =, +=, -=, *=, /= onto ident/index/member targets.
type assignExpr struct {
	pos    Pos
	op     tokKind
	target Node
	value  Node
}

// Statements.

type exprStmt struct {
	pos Pos
	x   Node
}

type blockStmt struct {
	pos   Pos
	stmts []Node
}

type ifStmt struct {
	pos       Pos
	cond      Node
	then, alt Node // alt may be nil
}

type whileStmt struct {
	pos  Pos
	cond Node
	body Node
}

type forStmt struct {
	pos              Pos
	init, cond, post Node // any may be nil
	body             Node
}

type forEachStmt struct {
	pos      Pos
	ident    string
	iterable Node
	body     Node
}

type returnStmt struct {
	pos Pos
	val Node // may be nil
}

type breakStmt struct{ pos Pos }

type continueStmt struct{ pos Pos }

func (n *numberLit) position() Pos    { return n.pos }
func (n *stringLit) position() Pos    { return n.pos }
func (n *boolLit) position() Pos      { return n.pos }
func (n *nilLit) position() Pos       { return n.pos }
func (n *arrayLit) position() Pos     { return n.pos }
func (n *mapLit) position() Pos       { return n.pos }
func (n *identExpr) position() Pos    { return n.pos }
func (n *unaryExpr) position() Pos    { return n.pos }
func (n *binaryExpr) position() Pos   { return n.pos }
func (n *ternaryExpr) position() Pos  { return n.pos }
func (n *callExpr) position() Pos     { return n.pos }
func (n *indexExpr) position() Pos    { return n.pos }
func (n *memberExpr) position() Pos   { return n.pos }
func (n *funcLit) position() Pos      { return n.pos }
func (n *assignExpr) position() Pos   { return n.pos }
func (n *exprStmt) position() Pos     { return n.pos }
func (n *blockStmt) position() Pos    { return n.pos }
func (n *ifStmt) position() Pos       { return n.pos }
func (n *whileStmt) position() Pos    { return n.pos }
func (n *forStmt) position() Pos      { return n.pos }
func (n *forEachStmt) position() Pos  { return n.pos }
func (n *returnStmt) position() Pos   { return n.pos }
func (n *breakStmt) position() Pos    { return n.pos }
func (n *continueStmt) position() Pos { return n.pos }

// Program is a compiled script, ready to run on an Interp.
type Program struct {
	stmts  []Node
	source string
}
