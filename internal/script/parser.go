package script

import "fmt"

// parser is a recursive-descent parser over the token slice.
type parser struct {
	toks []token
	pos  int
}

// Compile parses source into a Program.
func Compile(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Node
	for !p.at(tokEOF) {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return &Program{stmts: stmts, source: src}, nil
}

func (p *parser) cur() token        { return p.toks[p.pos] }
func (p *parser) at(k tokKind) bool { return p.cur().kind == k }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k tokKind) bool {
	if p.at(k) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k tokKind) (token, error) {
	if !p.at(k) {
		return token{}, &SyntaxError{Pos: p.cur().pos, Msg: fmt.Sprintf("expected %v, found %v", k, p.cur().kind)}
	}
	return p.advance(), nil
}

func (p *parser) errf(pos Pos, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// statement parses one statement; trailing semicolons are optional.
func (p *parser) statement() (Node, error) {
	t := p.cur()
	switch t.kind {
	case tokLBrace:
		return p.block()
	case tokFunction:
		// Named function declaration is sugar for assignment; anonymous
		// function literals appear in expression position instead.
		if p.toks[p.pos+1].kind == tokIdent {
			p.advance()
			name := p.advance().text
			fn, err := p.funcRest(t.pos, name)
			if err != nil {
				return nil, err
			}
			p.accept(tokSemicolon)
			return &exprStmt{pos: t.pos, x: &assignExpr{
				pos: t.pos, op: tokAssign,
				target: &identExpr{pos: t.pos, name: name}, value: fn,
			}}, nil
		}
	case tokIf:
		return p.ifStatement()
	case tokWhile:
		return p.whileStatement()
	case tokFor:
		return p.forStatement()
	case tokReturn:
		p.advance()
		var val Node
		if !p.at(tokSemicolon) && !p.at(tokRBrace) && !p.at(tokEOF) {
			v, err := p.expression()
			if err != nil {
				return nil, err
			}
			val = v
		}
		p.accept(tokSemicolon)
		return &returnStmt{pos: t.pos, val: val}, nil
	case tokBreak:
		p.advance()
		p.accept(tokSemicolon)
		return &breakStmt{pos: t.pos}, nil
	case tokContinue:
		p.advance()
		p.accept(tokSemicolon)
		return &continueStmt{pos: t.pos}, nil
	case tokSemicolon:
		p.advance()
		return &blockStmt{pos: t.pos}, nil // empty statement
	}
	x, err := p.expression()
	if err != nil {
		return nil, err
	}
	p.accept(tokSemicolon)
	return &exprStmt{pos: x.position(), x: x}, nil
}

func (p *parser) block() (*blockStmt, error) {
	open, err := p.expect(tokLBrace)
	if err != nil {
		return nil, err
	}
	b := &blockStmt{pos: open.pos}
	for !p.at(tokRBrace) {
		if p.at(tokEOF) {
			return nil, p.errf(open.pos, "unclosed block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.stmts = append(b.stmts, s)
	}
	p.advance() // }
	return b, nil
}

func (p *parser) ifStatement() (Node, error) {
	t := p.advance() // if
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	then, err := p.statement()
	if err != nil {
		return nil, err
	}
	var alt Node
	if p.accept(tokElse) {
		alt, err = p.statement()
		if err != nil {
			return nil, err
		}
	}
	return &ifStmt{pos: t.pos, cond: cond, then: then, alt: alt}, nil
}

func (p *parser) whileStatement() (Node, error) {
	t := p.advance() // while
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &whileStmt{pos: t.pos, cond: cond, body: body}, nil
}

func (p *parser) forStatement() (Node, error) {
	t := p.advance() // for
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	// for (x : iterable) — range form.
	if p.at(tokIdent) && p.toks[p.pos+1].kind == tokColon {
		ident := p.advance().text
		p.advance() // :
		iter, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &forEachStmt{pos: t.pos, ident: ident, iterable: iter, body: body}, nil
	}
	// C-style: for (init; cond; post).
	var init, cond, post Node
	var err error
	if !p.at(tokSemicolon) {
		init, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokSemicolon); err != nil {
		return nil, err
	}
	if !p.at(tokSemicolon) {
		cond, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokSemicolon); err != nil {
		return nil, err
	}
	if !p.at(tokRParen) {
		post, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &forStmt{pos: t.pos, init: init, cond: cond, post: post, body: body}, nil
}

// funcRest parses "(params) { body }" after the function keyword/name.
func (p *parser) funcRest(pos Pos, name string) (Node, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var params []string
	seen := map[string]bool{}
	for !p.at(tokRParen) {
		id, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if seen[id.text] {
			return nil, p.errf(id.pos, "duplicate parameter %q", id.text)
		}
		seen[id.text] = true
		params = append(params, id.text)
		if !p.accept(tokComma) {
			break
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &funcLit{pos: pos, name: name, params: params, body: body}, nil
}

// Expression parsing: precedence climbing.

func (p *parser) expression() (Node, error) { return p.assignment() }

func isAssignOp(k tokKind) bool {
	switch k {
	case tokAssign, tokPlusAssign, tokMinusAssign, tokStarAssign, tokSlashAssign:
		return true
	}
	return false
}

func (p *parser) assignment() (Node, error) {
	left, err := p.ternary()
	if err != nil {
		return nil, err
	}
	if !isAssignOp(p.cur().kind) {
		return left, nil
	}
	op := p.advance()
	switch left.(type) {
	case *identExpr, *indexExpr, *memberExpr:
	default:
		return nil, p.errf(op.pos, "invalid assignment target")
	}
	value, err := p.assignment() // right-associative
	if err != nil {
		return nil, err
	}
	return &assignExpr{pos: op.pos, op: op.kind, target: left, value: value}, nil
}

func (p *parser) ternary() (Node, error) {
	cond, err := p.logicalOr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokQuestion) {
		return cond, nil
	}
	q := p.advance()
	then, err := p.assignment()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	alt, err := p.assignment()
	if err != nil {
		return nil, err
	}
	return &ternaryExpr{pos: q.pos, cond: cond, then: then, alt: alt}, nil
}

func (p *parser) binaryLevel(ops []tokKind, next func() (Node, error)) (Node, error) {
	left, err := next()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.at(op) {
				t := p.advance()
				right, err := next()
				if err != nil {
					return nil, err
				}
				left = &binaryExpr{pos: t.pos, op: t.kind, l: left, r: right}
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
	}
}

func (p *parser) logicalOr() (Node, error) {
	return p.binaryLevel([]tokKind{tokOr}, p.logicalAnd)
}

func (p *parser) logicalAnd() (Node, error) {
	return p.binaryLevel([]tokKind{tokAnd}, p.equality)
}

func (p *parser) equality() (Node, error) {
	return p.binaryLevel([]tokKind{tokEq, tokNe}, p.comparison)
}

func (p *parser) comparison() (Node, error) {
	return p.binaryLevel([]tokKind{tokLt, tokLe, tokGt, tokGe}, p.additive)
}

func (p *parser) additive() (Node, error) {
	return p.binaryLevel([]tokKind{tokPlus, tokMinus}, p.multiplicative)
}

func (p *parser) multiplicative() (Node, error) {
	return p.binaryLevel([]tokKind{tokStar, tokSlash, tokPercent}, p.unary)
}

func (p *parser) unary() (Node, error) {
	t := p.cur()
	if t.kind == tokMinus || t.kind == tokNot {
		p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{pos: t.pos, op: t.kind, x: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Node, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().kind {
		case tokLParen:
			open := p.advance()
			var args []Node
			for !p.at(tokRParen) {
				a, err := p.expression()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(tokComma) {
					break
				}
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			x = &callExpr{pos: open.pos, callee: x, args: args}
		case tokLBracket:
			open := p.advance()
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			x = &indexExpr{pos: open.pos, target: x, index: idx}
		case tokDot:
			dot := p.advance()
			id, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			x = &memberExpr{pos: dot.pos, target: x, name: id.text}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (Node, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		return &numberLit{pos: t.pos, val: t.num}, nil
	case tokString:
		p.advance()
		return &stringLit{pos: t.pos, val: t.text}, nil
	case tokTrue:
		p.advance()
		return &boolLit{pos: t.pos, val: true}, nil
	case tokFalse:
		p.advance()
		return &boolLit{pos: t.pos, val: false}, nil
	case tokNil:
		p.advance()
		return &nilLit{pos: t.pos}, nil
	case tokIdent:
		p.advance()
		return &identExpr{pos: t.pos, name: t.text}, nil
	case tokLParen:
		p.advance()
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return x, nil
	case tokLBracket:
		p.advance()
		arr := &arrayLit{pos: t.pos}
		for !p.at(tokRBracket) {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			arr.elems = append(arr.elems, e)
			if !p.accept(tokComma) {
				break
			}
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		return arr, nil
	case tokLBrace:
		// Map literal: { "key": value, ... }.
		p.advance()
		m := &mapLit{pos: t.pos}
		for !p.at(tokRBrace) {
			k, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokColon); err != nil {
				return nil, err
			}
			v, err := p.expression()
			if err != nil {
				return nil, err
			}
			m.keys = append(m.keys, k)
			m.vals = append(m.vals, v)
			if !p.accept(tokComma) {
				break
			}
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return nil, err
		}
		return m, nil
	case tokFunction:
		p.advance()
		return p.funcRest(t.pos, "")
	}
	return nil, p.errf(t.pos, "unexpected %v", t.kind)
}
