package script

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Value is any script runtime value. The concrete types are:
//
//	nil          — the nil value
//	float64      — numbers
//	string       — strings
//	bool         — booleans
//	*Array       — mutable arrays
//	*Map         — string-keyed maps
//	*Closure     — script functions
//	HostFunc     — native functions
//	HostObject   — native objects with named members
type Value any

// Array is a mutable script array.
type Array struct {
	Elems []Value
}

// NewArray builds an array value.
func NewArray(elems ...Value) *Array { return &Array{Elems: elems} }

// Map is a string-keyed script map.
type Map struct {
	Items map[string]Value
}

// NewMap builds an empty map value.
func NewMap() *Map { return &Map{Items: make(map[string]Value)} }

// Closure is a script-defined function bound to its defining environment.
type Closure struct {
	name   string
	params []string
	body   *blockStmt
	env    *env
}

// Name returns the function's declared name ("" for anonymous).
func (c *Closure) Name() string { return c.name }

// HostFunc is a native function callable from scripts.
type HostFunc func(args []Value) (Value, error)

// HostObject exposes a native object to scripts. Member lookup covers both
// properties and methods (methods are members whose value is a HostFunc).
type HostObject interface {
	// Member returns the named member; ok=false yields a runtime error
	// naming the member and object.
	Member(name string) (v Value, ok bool)
	// TypeName labels the object in error messages, e.g. "histogram".
	TypeName() string
}

// SettableHostObject additionally allows member assignment.
type SettableHostObject interface {
	HostObject
	SetMember(name string, v Value) error
}

// Truthy implements the language's boolean coercion: false, nil, 0 and ""
// are false; everything else is true.
func Truthy(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case float64:
		return x != 0 && !math.IsNaN(x)
	case string:
		return x != ""
	default:
		return true
	}
}

// TypeName labels a value's type for error messages.
func TypeName(v Value) string {
	switch x := v.(type) {
	case nil:
		return "nil"
	case bool:
		return "bool"
	case float64:
		return "number"
	case string:
		return "string"
	case *Array:
		return "array"
	case *Map:
		return "map"
	case *Closure:
		return "function"
	case HostFunc:
		return "function"
	case HostObject:
		return x.TypeName()
	default:
		return fmt.Sprintf("%T", v)
	}
}

// ToString renders a value for print() and string concatenation.
func ToString(v Value) string {
	switch x := v.(type) {
	case nil:
		return "nil"
	case bool:
		if x {
			return "true"
		}
		return "false"
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	case *Array:
		var b strings.Builder
		b.WriteByte('[')
		for i, e := range x.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(ToString(e))
		}
		b.WriteByte(']')
		return b.String()
	case *Map:
		keys := make([]string, 0, len(x.Items))
		for k := range x.Items {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s: %s", k, ToString(x.Items[k]))
		}
		b.WriteByte('}')
		return b.String()
	case *Closure:
		if x.name != "" {
			return "function " + x.name
		}
		return "function"
	case HostFunc:
		return "native function"
	case HostObject:
		return "<" + x.TypeName() + ">"
	default:
		return fmt.Sprintf("%v", v)
	}
}

// valuesEqual implements ==. Numbers, strings, bools and nil compare by
// value; arrays/maps/functions/host objects compare by identity.
func valuesEqual(a, b Value) bool {
	switch x := a.(type) {
	case nil:
		return b == nil
	case float64:
		y, ok := b.(float64)
		return ok && x == y
	case string:
		y, ok := b.(string)
		return ok && x == y
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case *Array:
		y, ok := b.(*Array)
		return ok && x == y
	case *Map:
		y, ok := b.(*Map)
		return ok && x == y
	case *Closure:
		y, ok := b.(*Closure)
		return ok && x == y
	default:
		return a == b
	}
}

// Number converts a value to float64 or reports an error.
func Number(v Value) (float64, error) {
	if f, ok := v.(float64); ok {
		return f, nil
	}
	return 0, fmt.Errorf("expected number, got %s", TypeName(v))
}

// Str converts a value to a string or reports an error.
func Str(v Value) (string, error) {
	if s, ok := v.(string); ok {
		return s, nil
	}
	return "", fmt.Errorf("expected string, got %s", TypeName(v))
}

// MapObject is a convenience HostObject backed by a Go map — useful for
// exposing fixed-shape records (the decoded dataset events) without
// defining a new type per field set.
type MapObject struct {
	Name    string
	Members map[string]Value
}

// Member implements HostObject.
func (m *MapObject) Member(name string) (Value, bool) {
	v, ok := m.Members[name]
	return v, ok
}

// TypeName implements HostObject.
func (m *MapObject) TypeName() string {
	if m.Name != "" {
		return m.Name
	}
	return "object"
}
