package script

import (
	"errors"
	"fmt"
	"io"
	"math"
)

// RuntimeError is a script execution failure with its source position.
type RuntimeError struct {
	Pos Pos
	Msg string
}

func (e *RuntimeError) Error() string { return fmt.Sprintf("script:%s: %s", e.Pos, e.Msg) }

// ErrFuelExhausted aborts scripts that exceed their execution budget — the
// guard that keeps a runaway uploaded script from wedging a worker node.
var ErrFuelExhausted = errors.New("script: execution budget exhausted")

// env is a lexical scope.
type env struct {
	vars   map[string]Value
	parent *env
}

func newEnv(parent *env) *env { return &env{vars: make(map[string]Value), parent: parent} }

func (e *env) lookup(name string) (Value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// assign updates name where it is bound, or defines it in scope e.
func (e *env) assign(name string, v Value) {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return
		}
	}
	e.vars[name] = v
}

// control-flow signals threaded through exec.
type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// Options configure an interpreter.
type Options struct {
	// Fuel bounds the number of AST evaluations (0 = DefaultFuel).
	Fuel int64
	// Output receives print()/println() text (nil = discard).
	Output io.Writer
	// MaxCallDepth bounds recursion (0 = 256).
	MaxCallDepth int
}

// DefaultFuel is generous enough for per-event analysis over large staged
// parts while still halting accidental infinite loops in bounded time.
const DefaultFuel = 200_000_000

// Interp executes compiled programs.
type Interp struct {
	globals   *env
	fuel      int64
	maxDepth  int
	depth     int
	out       io.Writer
	returnVal Value
}

// New creates an interpreter with the standard library installed.
func New(opts Options) *Interp {
	in := &Interp{
		globals:  newEnv(nil),
		fuel:     opts.Fuel,
		maxDepth: opts.MaxCallDepth,
		out:      opts.Output,
	}
	if in.fuel <= 0 {
		in.fuel = DefaultFuel
	}
	if in.maxDepth <= 0 {
		in.maxDepth = 256
	}
	installBuiltins(in)
	return in
}

// Define binds a global name (host objects, configuration values).
func (in *Interp) Define(name string, v Value) { in.globals.vars[name] = v }

// Lookup fetches a global.
func (in *Interp) Lookup(name string) (Value, bool) { return in.globals.lookup(name) }

// RemainingFuel returns the unspent execution budget.
func (in *Interp) RemainingFuel() int64 { return in.fuel }

// AddFuel extends the execution budget (the engine tops fuel up per event
// so long datasets don't starve, while any single event stays bounded).
func (in *Interp) AddFuel(n int64) { in.fuel += n }

// Run executes a program's top-level statements in the global scope.
func (in *Interp) Run(p *Program) error {
	for _, s := range p.stmts {
		c, err := in.exec(s, in.globals)
		if err != nil {
			return err
		}
		if c != ctrlNone {
			return &RuntimeError{Pos: s.position(), Msg: "break/continue/return outside function or loop"}
		}
	}
	return nil
}

// Call invokes a named global function with the given arguments.
func (in *Interp) Call(name string, args ...Value) (Value, error) {
	fn, ok := in.globals.lookup(name)
	if !ok {
		return nil, fmt.Errorf("script: no function %q defined", name)
	}
	return in.CallValue(fn, args)
}

// Has reports whether a global name is bound to a callable.
func (in *Interp) Has(name string) bool {
	v, ok := in.globals.lookup(name)
	if !ok {
		return false
	}
	switch v.(type) {
	case *Closure, HostFunc:
		return true
	}
	return false
}

// CallValue invokes a function value.
func (in *Interp) CallValue(fn Value, args []Value) (Value, error) {
	switch f := fn.(type) {
	case *Closure:
		return in.callClosure(f, args, Pos{})
	case HostFunc:
		return f(args)
	default:
		return nil, fmt.Errorf("script: value of type %s is not callable", TypeName(fn))
	}
}

func (in *Interp) callClosure(f *Closure, args []Value, at Pos) (Value, error) {
	if in.depth >= in.maxDepth {
		return nil, &RuntimeError{Pos: at, Msg: fmt.Sprintf("call depth exceeds %d", in.maxDepth)}
	}
	scope := newEnv(f.env)
	for i, p := range f.params {
		if i < len(args) {
			scope.vars[p] = args[i]
		} else {
			scope.vars[p] = nil
		}
	}
	in.depth++
	defer func() { in.depth-- }()
	in.returnVal = nil
	c, err := in.exec(f.body, scope)
	if err != nil {
		return nil, err
	}
	if c == ctrlReturn {
		v := in.returnVal
		in.returnVal = nil
		return v, nil
	}
	return nil, nil
}

func (in *Interp) burn(pos Pos) error {
	in.fuel--
	if in.fuel < 0 {
		return &RuntimeError{Pos: pos, Msg: ErrFuelExhausted.Error()}
	}
	return nil
}

func rtErr(pos Pos, format string, args ...any) error {
	return &RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// exec runs a statement.
func (in *Interp) exec(n Node, scope *env) (ctrl, error) {
	if err := in.burn(n.position()); err != nil {
		return ctrlNone, err
	}
	switch s := n.(type) {
	case *exprStmt:
		_, err := in.eval(s.x, scope)
		return ctrlNone, err
	case *blockStmt:
		for _, st := range s.stmts {
			c, err := in.exec(st, scope)
			if err != nil || c != ctrlNone {
				return c, err
			}
		}
		return ctrlNone, nil
	case *ifStmt:
		cond, err := in.eval(s.cond, scope)
		if err != nil {
			return ctrlNone, err
		}
		if Truthy(cond) {
			return in.exec(s.then, scope)
		}
		if s.alt != nil {
			return in.exec(s.alt, scope)
		}
		return ctrlNone, nil
	case *whileStmt:
		for {
			cond, err := in.eval(s.cond, scope)
			if err != nil {
				return ctrlNone, err
			}
			if !Truthy(cond) {
				return ctrlNone, nil
			}
			c, err := in.exec(s.body, scope)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
			if c == ctrlReturn {
				return c, nil
			}
			if err := in.burn(s.pos); err != nil {
				return ctrlNone, err
			}
		}
	case *forStmt:
		if s.init != nil {
			if _, err := in.eval(s.init, scope); err != nil {
				return ctrlNone, err
			}
		}
		for {
			if s.cond != nil {
				cond, err := in.eval(s.cond, scope)
				if err != nil {
					return ctrlNone, err
				}
				if !Truthy(cond) {
					return ctrlNone, nil
				}
			}
			c, err := in.exec(s.body, scope)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
			if c == ctrlReturn {
				return c, nil
			}
			if s.post != nil {
				if _, err := in.eval(s.post, scope); err != nil {
					return ctrlNone, err
				}
			}
			if err := in.burn(s.pos); err != nil {
				return ctrlNone, err
			}
		}
	case *forEachStmt:
		iter, err := in.eval(s.iterable, scope)
		if err != nil {
			return ctrlNone, err
		}
		runBody := func(v Value) (ctrl, error) {
			scope.assign(s.ident, v)
			return in.exec(s.body, scope)
		}
		switch it := iter.(type) {
		case *Array:
			for _, v := range it.Elems {
				c, err := runBody(v)
				if err != nil {
					return ctrlNone, err
				}
				if c == ctrlBreak {
					return ctrlNone, nil
				}
				if c == ctrlReturn {
					return c, nil
				}
				if err := in.burn(s.pos); err != nil {
					return ctrlNone, err
				}
			}
			return ctrlNone, nil
		case *Map:
			for _, k := range sortedMapKeys(it) {
				c, err := runBody(k)
				if err != nil {
					return ctrlNone, err
				}
				if c == ctrlBreak {
					return ctrlNone, nil
				}
				if c == ctrlReturn {
					return c, nil
				}
			}
			return ctrlNone, nil
		case float64:
			for i := 0.0; i < it; i++ {
				c, err := runBody(i)
				if err != nil {
					return ctrlNone, err
				}
				if c == ctrlBreak {
					return ctrlNone, nil
				}
				if c == ctrlReturn {
					return c, nil
				}
				if err := in.burn(s.pos); err != nil {
					return ctrlNone, err
				}
			}
			return ctrlNone, nil
		default:
			return ctrlNone, rtErr(s.pos, "cannot iterate over %s", TypeName(iter))
		}
	case *returnStmt:
		if s.val != nil {
			v, err := in.eval(s.val, scope)
			if err != nil {
				return ctrlNone, err
			}
			in.returnVal = v
		} else {
			in.returnVal = nil
		}
		return ctrlReturn, nil
	case *breakStmt:
		return ctrlBreak, nil
	case *continueStmt:
		return ctrlContinue, nil
	default:
		return ctrlNone, rtErr(n.position(), "internal: unknown statement %T", n)
	}
}

// eval computes an expression value.
func (in *Interp) eval(n Node, scope *env) (Value, error) {
	if err := in.burn(n.position()); err != nil {
		return nil, err
	}
	switch e := n.(type) {
	case *numberLit:
		return e.val, nil
	case *stringLit:
		return e.val, nil
	case *boolLit:
		return e.val, nil
	case *nilLit:
		return nil, nil
	case *identExpr:
		v, ok := scope.lookup(e.name)
		if !ok {
			return nil, rtErr(e.pos, "undefined variable %q", e.name)
		}
		return v, nil
	case *arrayLit:
		arr := &Array{Elems: make([]Value, 0, len(e.elems))}
		for _, el := range e.elems {
			v, err := in.eval(el, scope)
			if err != nil {
				return nil, err
			}
			arr.Elems = append(arr.Elems, v)
		}
		return arr, nil
	case *mapLit:
		m := NewMap()
		for i := range e.keys {
			k, err := in.eval(e.keys[i], scope)
			if err != nil {
				return nil, err
			}
			ks, ok := k.(string)
			if !ok {
				return nil, rtErr(e.keys[i].position(), "map key must be string, got %s", TypeName(k))
			}
			v, err := in.eval(e.vals[i], scope)
			if err != nil {
				return nil, err
			}
			m.Items[ks] = v
		}
		return m, nil
	case *funcLit:
		return &Closure{name: e.name, params: e.params, body: e.body, env: scope}, nil
	case *unaryExpr:
		x, err := in.eval(e.x, scope)
		if err != nil {
			return nil, err
		}
		switch e.op {
		case tokMinus:
			f, ok := x.(float64)
			if !ok {
				return nil, rtErr(e.pos, "cannot negate %s", TypeName(x))
			}
			return -f, nil
		case tokNot:
			return !Truthy(x), nil
		}
		return nil, rtErr(e.pos, "internal: bad unary op")
	case *binaryExpr:
		return in.evalBinary(e, scope)
	case *ternaryExpr:
		cond, err := in.eval(e.cond, scope)
		if err != nil {
			return nil, err
		}
		if Truthy(cond) {
			return in.eval(e.then, scope)
		}
		return in.eval(e.alt, scope)
	case *assignExpr:
		return in.evalAssign(e, scope)
	case *callExpr:
		return in.evalCall(e, scope)
	case *indexExpr:
		target, err := in.eval(e.target, scope)
		if err != nil {
			return nil, err
		}
		idx, err := in.eval(e.index, scope)
		if err != nil {
			return nil, err
		}
		return indexValue(e.pos, target, idx)
	case *memberExpr:
		target, err := in.eval(e.target, scope)
		if err != nil {
			return nil, err
		}
		return memberValue(e.pos, target, e.name)
	default:
		return nil, rtErr(n.position(), "internal: unknown expression %T", n)
	}
}

func (in *Interp) evalBinary(e *binaryExpr, scope *env) (Value, error) {
	// Short-circuit logical operators.
	if e.op == tokAnd || e.op == tokOr {
		l, err := in.eval(e.l, scope)
		if err != nil {
			return nil, err
		}
		if e.op == tokAnd && !Truthy(l) {
			return false, nil
		}
		if e.op == tokOr && Truthy(l) {
			return true, nil
		}
		r, err := in.eval(e.r, scope)
		if err != nil {
			return nil, err
		}
		return Truthy(r), nil
	}
	l, err := in.eval(e.l, scope)
	if err != nil {
		return nil, err
	}
	r, err := in.eval(e.r, scope)
	if err != nil {
		return nil, err
	}
	return applyBinary(e.pos, e.op, l, r)
}

func applyBinary(pos Pos, op tokKind, l, r Value) (Value, error) {
	switch op {
	case tokEq:
		return valuesEqual(l, r), nil
	case tokNe:
		return !valuesEqual(l, r), nil
	}
	// String concatenation and comparison.
	if ls, ok := l.(string); ok {
		switch op {
		case tokPlus:
			return ls + ToString(r), nil
		case tokLt, tokLe, tokGt, tokGe:
			rs, ok := r.(string)
			if !ok {
				return nil, rtErr(pos, "cannot compare string with %s", TypeName(r))
			}
			switch op {
			case tokLt:
				return ls < rs, nil
			case tokLe:
				return ls <= rs, nil
			case tokGt:
				return ls > rs, nil
			default:
				return ls >= rs, nil
			}
		}
	}
	// number + string → concatenation (PNUTS-style convenience).
	if _, ok := r.(string); ok && op == tokPlus {
		return ToString(l) + r.(string), nil
	}
	// Array concatenation.
	if la, ok := l.(*Array); ok && op == tokPlus {
		if ra, ok := r.(*Array); ok {
			out := &Array{Elems: make([]Value, 0, len(la.Elems)+len(ra.Elems))}
			out.Elems = append(out.Elems, la.Elems...)
			out.Elems = append(out.Elems, ra.Elems...)
			return out, nil
		}
	}
	lf, lok := l.(float64)
	rf, rok := r.(float64)
	if !lok || !rok {
		return nil, rtErr(pos, "operator %v not defined for %s and %s", op, TypeName(l), TypeName(r))
	}
	switch op {
	case tokPlus:
		return lf + rf, nil
	case tokMinus:
		return lf - rf, nil
	case tokStar:
		return lf * rf, nil
	case tokSlash:
		if rf == 0 {
			return nil, rtErr(pos, "division by zero")
		}
		return lf / rf, nil
	case tokPercent:
		if rf == 0 {
			return nil, rtErr(pos, "modulo by zero")
		}
		return math.Mod(lf, rf), nil
	case tokLt:
		return lf < rf, nil
	case tokLe:
		return lf <= rf, nil
	case tokGt:
		return lf > rf, nil
	case tokGe:
		return lf >= rf, nil
	}
	return nil, rtErr(pos, "internal: bad binary op %v", op)
}

func (in *Interp) evalAssign(e *assignExpr, scope *env) (Value, error) {
	val, err := in.eval(e.value, scope)
	if err != nil {
		return nil, err
	}
	// Compound ops read the old value first.
	if e.op != tokAssign {
		old, err := in.eval(e.target, scope)
		if err != nil {
			return nil, err
		}
		var binOp tokKind
		switch e.op {
		case tokPlusAssign:
			binOp = tokPlus
		case tokMinusAssign:
			binOp = tokMinus
		case tokStarAssign:
			binOp = tokStar
		case tokSlashAssign:
			binOp = tokSlash
		}
		val, err = applyBinary(e.pos, binOp, old, val)
		if err != nil {
			return nil, err
		}
	}
	switch t := e.target.(type) {
	case *identExpr:
		scope.assign(t.name, val)
		return val, nil
	case *indexExpr:
		target, err := in.eval(t.target, scope)
		if err != nil {
			return nil, err
		}
		idx, err := in.eval(t.index, scope)
		if err != nil {
			return nil, err
		}
		switch tv := target.(type) {
		case *Array:
			i, err := arrayIndex(t.pos, tv, idx)
			if err != nil {
				return nil, err
			}
			tv.Elems[i] = val
			return val, nil
		case *Map:
			k, ok := idx.(string)
			if !ok {
				return nil, rtErr(t.pos, "map key must be string, got %s", TypeName(idx))
			}
			tv.Items[k] = val
			return val, nil
		default:
			return nil, rtErr(t.pos, "cannot index-assign into %s", TypeName(target))
		}
	case *memberExpr:
		target, err := in.eval(t.target, scope)
		if err != nil {
			return nil, err
		}
		switch tv := target.(type) {
		case *Map:
			tv.Items[t.name] = val
			return val, nil
		case SettableHostObject:
			if err := tv.SetMember(t.name, val); err != nil {
				return nil, rtErr(t.pos, "%v", err)
			}
			return val, nil
		default:
			return nil, rtErr(t.pos, "cannot set member %q on %s", t.name, TypeName(target))
		}
	}
	return nil, rtErr(e.pos, "internal: bad assignment target")
}

func (in *Interp) evalCall(e *callExpr, scope *env) (Value, error) {
	callee, err := in.eval(e.callee, scope)
	if err != nil {
		return nil, err
	}
	args := make([]Value, len(e.args))
	for i, a := range e.args {
		v, err := in.eval(a, scope)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	switch f := callee.(type) {
	case *Closure:
		return in.callClosure(f, args, e.pos)
	case HostFunc:
		v, err := f(args)
		if err != nil {
			if _, isRT := err.(*RuntimeError); isRT {
				return nil, err
			}
			return nil, rtErr(e.pos, "%v", err)
		}
		return v, nil
	default:
		return nil, rtErr(e.pos, "cannot call %s", TypeName(callee))
	}
}

func arrayIndex(pos Pos, a *Array, idx Value) (int, error) {
	f, ok := idx.(float64)
	if !ok {
		return 0, rtErr(pos, "array index must be number, got %s", TypeName(idx))
	}
	i := int(f)
	if float64(i) != f {
		return 0, rtErr(pos, "array index %v is not an integer", f)
	}
	if i < 0 || i >= len(a.Elems) {
		return 0, rtErr(pos, "array index %d out of range [0,%d)", i, len(a.Elems))
	}
	return i, nil
}

func indexValue(pos Pos, target, idx Value) (Value, error) {
	switch t := target.(type) {
	case *Array:
		i, err := arrayIndex(pos, t, idx)
		if err != nil {
			return nil, err
		}
		return t.Elems[i], nil
	case *Map:
		k, ok := idx.(string)
		if !ok {
			return nil, rtErr(pos, "map key must be string, got %s", TypeName(idx))
		}
		return t.Items[k], nil
	case string:
		f, ok := idx.(float64)
		if !ok {
			return nil, rtErr(pos, "string index must be number")
		}
		i := int(f)
		if i < 0 || i >= len(t) {
			return nil, rtErr(pos, "string index %d out of range", i)
		}
		return string(t[i]), nil
	default:
		return nil, rtErr(pos, "cannot index %s", TypeName(target))
	}
}

func memberValue(pos Pos, target Value, name string) (Value, error) {
	switch t := target.(type) {
	case *Map:
		return t.Items[name], nil
	case HostObject:
		v, ok := t.Member(name)
		if !ok {
			return nil, rtErr(pos, "%s has no member %q", t.TypeName(), name)
		}
		return v, nil
	case *Array:
		if name == "length" {
			return float64(len(t.Elems)), nil
		}
		return nil, rtErr(pos, "array has no member %q", name)
	case string:
		if name == "length" {
			return float64(len(t)), nil
		}
		return nil, rtErr(pos, "string has no member %q", name)
	default:
		return nil, rtErr(pos, "%s has no members", TypeName(target))
	}
}

func sortedMapKeys(m *Map) []Value {
	keys := make([]string, 0, len(m.Items))
	for k := range m.Items {
		keys = append(keys, k)
	}
	// Deterministic iteration for reproducible analyses.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := make([]Value, len(keys))
	for i, k := range keys {
		out[i] = k
	}
	return out
}
