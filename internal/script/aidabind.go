package script

import (
	"fmt"

	"github.com/ipa-grid/ipa/internal/aida"
)

// Host-object bindings exposing AIDA to scripts. A script books and fills
// histograms through the global `tree` object, exactly as the paper's PNUTS
// analyses did through the Java AIDA API (§3.7):
//
//	h = tree.h1d("/higgs", "mass", "Dijet mass", 125, 0, 250)
//	function process(ev) { ... h.fill(m) ... }

// TreeObject wraps an aida.Tree for script access.
type TreeObject struct {
	Tree *aida.Tree
}

// TypeName implements HostObject.
func (t *TreeObject) TypeName() string { return "tree" }

// Member implements HostObject.
func (t *TreeObject) Member(name string) (Value, bool) {
	switch name {
	case "h1d":
		return HostFunc(func(args []Value) (Value, error) {
			dir, nm, title, bins, lo, hi, err := histArgs(args)
			if err != nil {
				return nil, fmt.Errorf("tree.h1d: %v", err)
			}
			if existing, ok := t.Tree.Get(dir + "/" + nm).(*aida.Histogram1D); ok {
				return &H1DObject{H: existing}, nil
			}
			h, err := t.Tree.H1D(dir, nm, title, bins, lo, hi)
			if err != nil {
				return nil, err
			}
			return &H1DObject{H: h}, nil
		}), true
	case "h2d":
		return HostFunc(func(args []Value) (Value, error) {
			if len(args) != 9 {
				return nil, fmt.Errorf("tree.h2d expects (dir, name, title, nx, xlo, xhi, ny, ylo, yhi)")
			}
			dir, err1 := Str(args[0])
			nm, err2 := Str(args[1])
			title, err3 := Str(args[2])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("tree.h2d: dir, name, title must be strings")
			}
			var nums [6]float64
			for i := 0; i < 6; i++ {
				f, err := Number(args[3+i])
				if err != nil {
					return nil, fmt.Errorf("tree.h2d: %v", err)
				}
				nums[i] = f
			}
			if existing, ok := t.Tree.Get(dir + "/" + nm).(*aida.Histogram2D); ok {
				return &H2DObject{H: existing}, nil
			}
			h, err := t.Tree.H2D(dir, nm, title, int(nums[0]), nums[1], nums[2], int(nums[3]), nums[4], nums[5])
			if err != nil {
				return nil, err
			}
			return &H2DObject{H: h}, nil
		}), true
	case "p1d":
		return HostFunc(func(args []Value) (Value, error) {
			dir, nm, title, bins, lo, hi, err := histArgs(args)
			if err != nil {
				return nil, fmt.Errorf("tree.p1d: %v", err)
			}
			if existing, ok := t.Tree.Get(dir + "/" + nm).(*aida.Profile1D); ok {
				return &P1DObject{P: existing}, nil
			}
			p, err := t.Tree.P1D(dir, nm, title, bins, lo, hi)
			if err != nil {
				return nil, err
			}
			return &P1DObject{P: p}, nil
		}), true
	case "c1d":
		return HostFunc(func(args []Value) (Value, error) {
			if len(args) != 3 {
				return nil, fmt.Errorf("tree.c1d expects (dir, name, title)")
			}
			dir, err1 := Str(args[0])
			nm, err2 := Str(args[1])
			title, err3 := Str(args[2])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("tree.c1d: arguments must be strings")
			}
			if existing, ok := t.Tree.Get(dir + "/" + nm).(*aida.Cloud1D); ok {
				return &C1DObject{C: existing}, nil
			}
			c, err := t.Tree.C1D(dir, nm, title)
			if err != nil {
				return nil, err
			}
			return &C1DObject{C: c}, nil
		}), true
	case "ls":
		return HostFunc(func(args []Value) (Value, error) {
			path := "/"
			if len(args) == 1 {
				p, err := Str(args[0])
				if err != nil {
					return nil, err
				}
				path = p
			}
			names, err := t.Tree.Ls(path)
			if err != nil {
				return nil, err
			}
			arr := &Array{}
			for _, n := range names {
				arr.Elems = append(arr.Elems, n)
			}
			return arr, nil
		}), true
	}
	return nil, false
}

func histArgs(args []Value) (dir, name, title string, bins int, lo, hi float64, err error) {
	if len(args) != 6 {
		return "", "", "", 0, 0, 0, fmt.Errorf("expected (dir, name, title, bins, lo, hi), got %d args", len(args))
	}
	if dir, err = Str(args[0]); err != nil {
		return
	}
	if name, err = Str(args[1]); err != nil {
		return
	}
	if title, err = Str(args[2]); err != nil {
		return
	}
	var b float64
	if b, err = Number(args[3]); err != nil {
		return
	}
	bins = int(b)
	if lo, err = Number(args[4]); err != nil {
		return
	}
	hi, err = Number(args[5])
	return
}

// H1DObject wraps a Histogram1D.
type H1DObject struct {
	H *aida.Histogram1D
}

// TypeName implements HostObject.
func (h *H1DObject) TypeName() string { return "histogram1d" }

// Member implements HostObject.
func (h *H1DObject) Member(name string) (Value, bool) {
	switch name {
	case "fill":
		return HostFunc(func(args []Value) (Value, error) {
			switch len(args) {
			case 1:
				x, err := Number(args[0])
				if err != nil {
					return nil, fmt.Errorf("fill: %v", err)
				}
				h.H.Fill(x)
			case 2:
				x, err := Number(args[0])
				if err != nil {
					return nil, fmt.Errorf("fill: %v", err)
				}
				w, err := Number(args[1])
				if err != nil {
					return nil, fmt.Errorf("fill: %v", err)
				}
				h.H.FillW(x, w)
			default:
				return nil, fmt.Errorf("fill expects (x) or (x, weight)")
			}
			return nil, nil
		}), true
	case "mean":
		return HostFunc(func([]Value) (Value, error) { return h.H.Mean(), nil }), true
	case "rms":
		return HostFunc(func([]Value) (Value, error) { return h.H.Rms(), nil }), true
	case "entries":
		return HostFunc(func([]Value) (Value, error) { return float64(h.H.Entries()), nil }), true
	case "maxBinHeight":
		return HostFunc(func([]Value) (Value, error) { return h.H.MaxBinHeight(), nil }), true
	case "binHeight":
		return HostFunc(func(args []Value) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("binHeight expects (bin)")
			}
			i, err := Number(args[0])
			if err != nil {
				return nil, err
			}
			if int(i) < 0 || int(i) >= h.H.Axis().Bins() {
				return nil, fmt.Errorf("binHeight: bin %d out of range", int(i))
			}
			return h.H.BinHeight(int(i)), nil
		}), true
	case "binCenter":
		return HostFunc(func(args []Value) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("binCenter expects (bin)")
			}
			i, err := Number(args[0])
			if err != nil {
				return nil, err
			}
			if int(i) < 0 || int(i) >= h.H.Axis().Bins() {
				return nil, fmt.Errorf("binCenter: bin %d out of range", int(i))
			}
			return h.H.Axis().BinCenter(int(i)), nil
		}), true
	case "bins":
		return HostFunc(func([]Value) (Value, error) { return float64(h.H.Axis().Bins()), nil }), true
	case "reset":
		return HostFunc(func([]Value) (Value, error) { h.H.Reset(); return nil, nil }), true
	case "scale":
		return HostFunc(func(args []Value) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("scale expects (factor)")
			}
			f, err := Number(args[0])
			if err != nil {
				return nil, err
			}
			h.H.Scale(f)
			return nil, nil
		}), true
	case "annotate":
		return HostFunc(func(args []Value) (Value, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("annotate expects (key, value)")
			}
			k, err := Str(args[0])
			if err != nil {
				return nil, err
			}
			h.H.Annotations().Set(k, ToString(args[1]))
			return nil, nil
		}), true
	}
	return nil, false
}

// H2DObject wraps a Histogram2D.
type H2DObject struct {
	H *aida.Histogram2D
}

// TypeName implements HostObject.
func (h *H2DObject) TypeName() string { return "histogram2d" }

// Member implements HostObject.
func (h *H2DObject) Member(name string) (Value, bool) {
	switch name {
	case "fill":
		return HostFunc(func(args []Value) (Value, error) {
			if len(args) != 2 && len(args) != 3 {
				return nil, fmt.Errorf("fill expects (x, y) or (x, y, weight)")
			}
			x, err := Number(args[0])
			if err != nil {
				return nil, err
			}
			y, err := Number(args[1])
			if err != nil {
				return nil, err
			}
			w := 1.0
			if len(args) == 3 {
				if w, err = Number(args[2]); err != nil {
					return nil, err
				}
			}
			h.H.FillW(x, y, w)
			return nil, nil
		}), true
	case "entries":
		return HostFunc(func([]Value) (Value, error) { return float64(h.H.Entries()), nil }), true
	case "meanX":
		return HostFunc(func([]Value) (Value, error) { return h.H.MeanX(), nil }), true
	case "meanY":
		return HostFunc(func([]Value) (Value, error) { return h.H.MeanY(), nil }), true
	}
	return nil, false
}

// P1DObject wraps a Profile1D.
type P1DObject struct {
	P *aida.Profile1D
}

// TypeName implements HostObject.
func (p *P1DObject) TypeName() string { return "profile1d" }

// Member implements HostObject.
func (p *P1DObject) Member(name string) (Value, bool) {
	switch name {
	case "fill":
		return HostFunc(func(args []Value) (Value, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("fill expects (x, y)")
			}
			x, err := Number(args[0])
			if err != nil {
				return nil, err
			}
			y, err := Number(args[1])
			if err != nil {
				return nil, err
			}
			p.P.Fill(x, y)
			return nil, nil
		}), true
	case "entries":
		return HostFunc(func([]Value) (Value, error) { return float64(p.P.Entries()), nil }), true
	}
	return nil, false
}

// C1DObject wraps a Cloud1D.
type C1DObject struct {
	C *aida.Cloud1D
}

// TypeName implements HostObject.
func (c *C1DObject) TypeName() string { return "cloud1d" }

// Member implements HostObject.
func (c *C1DObject) Member(name string) (Value, bool) {
	switch name {
	case "fill":
		return HostFunc(func(args []Value) (Value, error) {
			if len(args) != 1 && len(args) != 2 {
				return nil, fmt.Errorf("fill expects (x) or (x, weight)")
			}
			x, err := Number(args[0])
			if err != nil {
				return nil, err
			}
			w := 1.0
			if len(args) == 2 {
				if w, err = Number(args[1]); err != nil {
					return nil, err
				}
			}
			c.C.FillW(x, w)
			return nil, nil
		}), true
	case "mean":
		return HostFunc(func([]Value) (Value, error) { return c.C.Mean(), nil }), true
	case "rms":
		return HostFunc(func([]Value) (Value, error) { return c.C.Rms(), nil }), true
	case "entries":
		return HostFunc(func([]Value) (Value, error) { return float64(c.C.Entries()), nil }), true
	}
	return nil, false
}
