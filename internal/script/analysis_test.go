package script

import (
	"strings"
	"testing"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/analysis"
)

const countScript = `
h = tree.h1d("/demo", "lengths", "Record lengths", 10, 0, 10);
n = 0;
function process(rec) {
	h.fill(len(rec));
	n += 1;
}
function end() {
	println("processed", n, "records");
	h.annotate("records", n);
}
`

func TestScriptAnalysisLifecycle(t *testing.T) {
	a, err := NewAnalysis(countScript, "raw")
	if err != nil {
		t.Fatal(err)
	}
	tree := aida.NewTree()
	ctx := &analysis.Context{Tree: tree, Params: map[string]string{"who": "test"}}
	if err := a.Init(ctx); err != nil {
		t.Fatal(err)
	}
	for _, rec := range []string{"a", "bb", "ccc"} {
		if err := a.Process([]byte(rec), ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.End(ctx); err != nil {
		t.Fatal(err)
	}
	h := tree.Get("/demo/lengths").(*aida.Histogram1D)
	if h.Entries() != 3 {
		t.Fatalf("entries = %d", h.Entries())
	}
	if !strings.Contains(a.Output(), "processed 3 records") {
		t.Fatalf("output = %q", a.Output())
	}
	if h.Annotations().Get("records") != "3" {
		t.Fatal("annotate from script failed")
	}
}

func TestScriptAnalysisRewindResets(t *testing.T) {
	a, err := NewAnalysis(countScript, "raw")
	if err != nil {
		t.Fatal(err)
	}
	tree := aida.NewTree()
	ctx := &analysis.Context{Tree: tree}
	if err := a.Init(ctx); err != nil {
		t.Fatal(err)
	}
	a.Process([]byte("xx"), ctx)
	// Rewind: engine resets the tree and re-inits.
	tree2 := aida.NewTree()
	ctx2 := &analysis.Context{Tree: tree2}
	if err := a.Init(ctx2); err != nil {
		t.Fatal(err)
	}
	if err := a.Process([]byte("yy"), ctx2); err != nil {
		t.Fatal(err)
	}
	h := tree2.Get("/demo/lengths").(*aida.Histogram1D)
	if h.Entries() != 1 {
		t.Fatalf("after rewind entries = %d, want 1", h.Entries())
	}
}

func TestScriptAnalysisRequiresProcess(t *testing.T) {
	a, err := NewAnalysis(`x = 1;`, "raw")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Init(&analysis.Context{Tree: aida.NewTree()}); err == nil {
		t.Fatal("script without process() accepted")
	}
}

func TestScriptAnalysisCompileError(t *testing.T) {
	if _, err := NewAnalysis(`function process( {`, "raw"); err == nil {
		t.Fatal("bad script compiled")
	}
}

func TestScriptAnalysisUnknownDecoder(t *testing.T) {
	if _, err := NewAnalysis(countScript, "no-such-format"); err == nil {
		t.Fatal("unknown decoder accepted")
	}
}

func TestScriptAnalysisRuntimeErrorSurfaced(t *testing.T) {
	a, err := NewAnalysis(`function process(r) { x = 1/0; }`, "raw")
	if err != nil {
		t.Fatal(err)
	}
	ctx := &analysis.Context{Tree: aida.NewTree()}
	if err := a.Init(ctx); err != nil {
		t.Fatal(err)
	}
	err = a.Process([]byte("r"), ctx)
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("runtime error not surfaced: %v", err)
	}
}

func TestScriptParamsVisible(t *testing.T) {
	a, err := NewAnalysis(`
		cut = num(params["minE"]);
		function process(r) {}
		function end() { println("cut:", cut); }
	`, "raw")
	if err != nil {
		t.Fatal(err)
	}
	ctx := &analysis.Context{Tree: aida.NewTree(), Params: map[string]string{"minE": "25"}}
	if err := a.Init(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.End(ctx); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Output(), "cut: 25") {
		t.Fatalf("params not visible: %q", a.Output())
	}
}

func TestAidaBindings(t *testing.T) {
	src := `
	h2 = tree.h2d("/d", "grid", "", 4, 0, 4, 4, 0, 4);
	p = tree.p1d("/d", "prof", "", 4, 0, 4);
	c = tree.c1d("/d", "cloud", "");
	function process(r) {
		h2.fill(1.5, 2.5);
		p.fill(1.0, 10.0);
		c.fill(len(r));
	}
	function end() {
		if (h2.entries() != 1) error("h2 wrong");
		if (p.entries() != 1) error("p wrong");
		if (c.mean() != 3) error("cloud mean " + c.mean());
	}
	`
	a, err := NewAnalysis(src, "raw")
	if err != nil {
		t.Fatal(err)
	}
	tree := aida.NewTree()
	ctx := &analysis.Context{Tree: tree}
	if err := a.Init(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.Process([]byte("abc"), ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.End(ctx); err != nil {
		t.Fatal(err)
	}
	if tree.Get("/d/grid") == nil || tree.Get("/d/prof") == nil || tree.Get("/d/cloud") == nil {
		t.Fatal("objects not booked")
	}
}

func TestH1DBindingMethods(t *testing.T) {
	src := `
	h = tree.h1d("/x", "h", "", 10, 0, 10);
	function process(r) { h.fill(2.5); h.fill(2.6, 2); }
	function end() {
		if (h.entries() != 2) error("entries");
		if (h.binHeight(2) != 3) error("height " + h.binHeight(2));
		if (abs(h.binCenter(2) - 2.5) > 0.001) error("center");
		if (h.bins() != 10) error("bins");
		h.scale(2);
		if (h.binHeight(2) != 6) error("scale");
		h.reset();
		if (h.entries() != 0) error("reset");
	}
	`
	a, err := NewAnalysis(src, "raw")
	if err != nil {
		t.Fatal(err)
	}
	ctx := &analysis.Context{Tree: aida.NewTree()}
	if err := a.Init(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.Process([]byte("r"), ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.End(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestRebookingExistingHistogramReturnsSame(t *testing.T) {
	// Booking the same path twice (e.g. helper functions) must reuse the
	// object rather than fail.
	src := `
	h1 = tree.h1d("/x", "h", "", 10, 0, 10);
	h2 = tree.h1d("/x", "h", "", 10, 0, 10);
	function process(r) { h1.fill(1); h2.fill(2); }
	`
	a, err := NewAnalysis(src, "raw")
	if err != nil {
		t.Fatal(err)
	}
	tree := aida.NewTree()
	ctx := &analysis.Context{Tree: tree}
	if err := a.Init(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.Process([]byte("r"), ctx); err != nil {
		t.Fatal(err)
	}
	h := tree.Get("/x/h").(*aida.Histogram1D)
	if h.Entries() != 2 {
		t.Fatalf("entries = %d, want 2 (same underlying histogram)", h.Entries())
	}
}

func TestDecoderRegistry(t *testing.T) {
	if _, ok := LookupDecoder("raw"); !ok {
		t.Fatal("raw decoder missing")
	}
	RegisterDecoder("test-upper", func(rec []byte) (Value, error) {
		return strings.ToUpper(string(rec)), nil
	})
	d, ok := LookupDecoder("test-upper")
	if !ok {
		t.Fatal("registered decoder not found")
	}
	v, err := d([]byte("abc"))
	if err != nil || v != "ABC" {
		t.Fatalf("decoder = %v, %v", v, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate decoder registration did not panic")
		}
	}()
	RegisterDecoder("test-upper", d)
}
