// Package fit implements linear least-squares fitting.
//
// The paper fits its measured staging/analysis times to closed-form models
// (T_local = 11.5·X and T_grid = 0.38·X + 53 + (62 + 5.3·X)/N); this package
// provides the machinery to redo that fit against our simulated
// measurements and compare coefficients, and it backs the aida fitter.
//
// Everything is dense normal-equations + Gaussian elimination with partial
// pivoting, which is ample for the handful-of-parameters fits used here.
package fit

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the normal equations are (numerically)
// singular — usually a sign of redundant basis functions or too few points.
var ErrSingular = errors.New("fit: singular system")

// Solve solves the linear system a·x = b in place using Gaussian elimination
// with partial pivoting. a must be square with len(a) == len(b).
func Solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("fit: bad system shape %dx? vs %d", n, len(b))
	}
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("fit: row %d has %d columns, want %d", i, len(a[i]), n)
		}
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			factor := a[r][col] / a[col][col]
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= factor * a[col][c]
			}
			b[r] -= factor * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for c := i + 1; c < n; c++ {
			sum -= a[i][c] * x[c]
		}
		x[i] = sum / a[i][i]
	}
	return x, nil
}

// Linear fits y ≈ Σ_j coef_j · design[i][j] by least squares.
// design is the row-major design matrix (one row per observation).
func Linear(design [][]float64, y []float64) ([]float64, error) {
	m := len(design)
	if m == 0 || len(y) != m {
		return nil, fmt.Errorf("fit: %d rows vs %d targets", m, len(y))
	}
	p := len(design[0])
	if p == 0 {
		return nil, errors.New("fit: empty design row")
	}
	if m < p {
		return nil, fmt.Errorf("fit: underdetermined: %d observations for %d parameters", m, p)
	}
	// Normal equations: (XᵀX) c = Xᵀy.
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	for i, row := range design {
		if len(row) != p {
			return nil, fmt.Errorf("fit: ragged design row %d", i)
		}
		for a := 0; a < p; a++ {
			xty[a] += row[a] * y[i]
			for b := a; b < p; b++ {
				xtx[a][b] += row[a] * row[b]
			}
		}
	}
	for a := 0; a < p; a++ {
		for b := 0; b < a; b++ {
			xtx[a][b] = xtx[b][a]
		}
	}
	return Solve(xtx, xty)
}

// Basis fits y ≈ Σ_j coef_j · fns_j(x).
func Basis(x, y []float64, fns []func(float64) float64) ([]float64, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("fit: %d x vs %d y", len(x), len(y))
	}
	design := make([][]float64, len(x))
	for i, xv := range x {
		row := make([]float64, len(fns))
		for j, f := range fns {
			row[j] = f(xv)
		}
		design[i] = row
	}
	return Linear(design, y)
}

// Polynomial fits y ≈ Σ_{k=0..degree} coef_k · x^k.
func Polynomial(x, y []float64, degree int) ([]float64, error) {
	if degree < 0 {
		return nil, fmt.Errorf("fit: negative degree %d", degree)
	}
	fns := make([]func(float64) float64, degree+1)
	for k := 0; k <= degree; k++ {
		k := k
		fns[k] = func(v float64) float64 { return math.Pow(v, float64(k)) }
	}
	return Basis(x, y, fns)
}

// Eval evaluates a fitted basis model at x.
func Eval(coef []float64, fns []func(float64) float64, x float64) float64 {
	s := 0.0
	for j, c := range coef {
		s += c * fns[j](x)
	}
	return s
}

// Residuals returns y_i − ŷ_i for a design-matrix fit.
func Residuals(design [][]float64, y, coef []float64) []float64 {
	res := make([]float64, len(y))
	for i, row := range design {
		pred := 0.0
		for j, c := range coef {
			pred += c * row[j]
		}
		res[i] = y[i] - pred
	}
	return res
}

// RMSE returns the root-mean-square of residuals.
func RMSE(res []float64) float64 {
	if len(res) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range res {
		s += r * r
	}
	return math.Sqrt(s / float64(len(res)))
}

// R2 returns the coefficient of determination for predictions ŷ against y.
func R2(y, res []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssTot, ssRes float64
	for i, v := range y {
		ssTot += (v - mean) * (v - mean)
		ssRes += res[i] * res[i]
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}
