package fit

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSolveIdentity(t *testing.T) {
	a := [][]float64{{1, 0}, {0, 1}}
	b := []float64{3, 4}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x[0], 3, 1e-12) || !almost(x[1], 4, 1e-12) {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{5, 7}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x[0], 7, 1e-12) || !almost(x[1], 5, 1e-12) {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := Solve(a, b); err == nil {
		t.Fatal("singular system solved without error")
	}
}

func TestSolveShapeErrors(t *testing.T) {
	if _, err := Solve(nil, nil); err == nil {
		t.Fatal("empty system accepted")
	}
	if _, err := Solve([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("ragged system accepted")
	}
}

func TestPolynomialExact(t *testing.T) {
	// y = 2 + 3x - 0.5x²
	xs := []float64{-2, -1, 0, 1, 2, 3, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 + 3*x - 0.5*x*x
	}
	c, err := Polynomial(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(c[0], 2, 1e-9) || !almost(c[1], 3, 1e-9) || !almost(c[2], -0.5, 1e-9) {
		t.Fatalf("coefficients %v, want [2 3 -0.5]", c)
	}
}

func TestLinearRecoversPaperLocalModel(t *testing.T) {
	// The paper's local model T = 11.5·X is a one-parameter fit through
	// the origin. Generate noiseless points and recover the slope.
	design := [][]float64{}
	y := []float64{}
	for _, x := range []float64{1, 10, 100, 471, 1000} {
		design = append(design, []float64{x})
		y = append(y, 11.5*x)
	}
	c, err := Linear(design, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(c[0], 11.5, 1e-9) {
		t.Fatalf("slope %v, want 11.5", c[0])
	}
}

func TestLinearRecoversPaperGridModel(t *testing.T) {
	// T_grid(X,N) = 0.38X + 53 + 62/N + 5.3·X/N — a 4-basis linear fit.
	var design [][]float64
	var y []float64
	for _, x := range []float64{1, 10, 100, 471, 800} {
		for _, n := range []float64{1, 2, 4, 8, 16} {
			design = append(design, []float64{x, 1, 1 / n, x / n})
			y = append(y, 0.38*x+53+62/n+5.3*x/n)
		}
	}
	c, err := Linear(design, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.38, 53, 62, 5.3}
	for i := range want {
		if !almost(c[i], want[i], 1e-6) {
			t.Fatalf("coefficient %d = %v, want %v (all: %v)", i, c[i], want[i], c)
		}
	}
	res := Residuals(design, y, c)
	if RMSE(res) > 1e-9 {
		t.Fatalf("noiseless fit has RMSE %v", RMSE(res))
	}
	if r2 := R2(y, res); !almost(r2, 1, 1e-9) {
		t.Fatalf("R² = %v, want 1", r2)
	}
}

func TestUnderdetermined(t *testing.T) {
	if _, err := Linear([][]float64{{1, 2}}, []float64{3}); err == nil {
		t.Fatal("underdetermined fit accepted")
	}
}

func TestBasisFit(t *testing.T) {
	fns := []func(float64) float64{
		func(x float64) float64 { return 1 },
		math.Sqrt,
	}
	xs := []float64{1, 4, 9, 16, 25}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 7 - 2*math.Sqrt(x)
	}
	c, err := Basis(xs, ys, fns)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(c[0], 7, 1e-9) || !almost(c[1], -2, 1e-9) {
		t.Fatalf("coefficients %v", c)
	}
	if v := Eval(c, fns, 9); !almost(v, 1, 1e-9) {
		t.Fatalf("Eval = %v, want 1", v)
	}
}

// Property: for any well-conditioned random linear model, fitting noiseless
// samples recovers the generating coefficients.
func TestQuickLinearRecovery(t *testing.T) {
	f := func(a, b, c float64) bool {
		// Clamp coefficients into a sane range to avoid overflow.
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(v, 100)
		}
		a, b, c = clamp(a), clamp(b), clamp(c)
		var design [][]float64
		var y []float64
		for x := 1.0; x <= 12; x++ {
			design = append(design, []float64{1, x, x * x})
			y = append(y, a+b*x+c*x*x)
		}
		got, err := Linear(design, y)
		if err != nil {
			return false
		}
		return almost(got[0], a, 1e-5) && almost(got[1], b, 1e-5) && almost(got[2], c, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestR2Constant(t *testing.T) {
	y := []float64{5, 5, 5}
	res := []float64{0, 0, 0}
	if r := R2(y, res); r != 1 {
		t.Fatalf("R² of perfect fit to constant = %v, want 1", r)
	}
}
