// Package merge implements the AIDA manager service of §3.7: "as soon as
// the analysis begins, the intermediate results from each individual
// analysis engine are collected and merged at the Manager node ... a
// separate plug-in on the JAS client constantly polls the AIDA manager
// ... to check for any updated histograms."
//
// Engines publish snapshots tagged with a sequence number. The preferred
// form is a delta (PublishArgs.Delta): only the objects touched since the
// worker's previous snapshot plus removed paths. Deltas apply additively —
// the manager patches the worker's retained tree and re-merges just the
// touched paths into the persistent merged tree, so publish cost is
// proportional to what changed, not to total state × workers. Deltas must
// arrive in sequence; on a gap (lost or reordered publish) the manager
// answers NeedFull and the engine re-baselines with a full delta, which is
// also how first publishes and rewinds work.
//
// The legacy whole-tree form (PublishArgs.Tree) is retained as the
// ablation baseline: such snapshots mark the session dirty and the merged
// tree is rebuilt from every worker tree at the next poll.
//
// Clients poll with their last-seen version and receive either nothing
// (unchanged) or the updated objects — incremental polling is what makes
// sub-minute feedback affordable (ablation A4). Changed objects are
// served as pre-encoded wire frames from a per-session cache keyed by
// (path, version), so N polling clients share one encode per change
// (ablation A7). For large worker counts a SubMerger aggregates a group
// of workers and republishes upward as one pseudo-worker, the §2.5
// "sub-level of components" scalability design (ablation A2); it
// forwards touched-only deltas through the snapshot Transport (ablation
// A6), so the hierarchy composes with the incremental pipeline.
//
// Concurrency (ablation A10): sessions live in a lock-free table and
// each carries its own RWMutex, so publishes and polls of unrelated
// sessions never contend. Within a session, N polling clients read the
// merged tree and the encoded-frame cache under RLock while only
// publishes take the write lock; and a quiescent poll — the client's
// SinceVersion equals the current version, the overwhelmingly common
// case for interactive clients — is answered from one atomic snapshot
// without taking any lock at all. CoarseLocking restores the old
// one-mutex-per-manager behavior as the ablation baseline.
//
// The exported method signatures are RMI-compatible (args/reply structs),
// so a Manager registers directly on an rmi.Server.
package merge

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/obs"
)

// Service is the result-fabric surface the session service and the node
// wiring program against: the RMI triple every client and engine speaks
// (Publish/Poll/Reset) plus the manager-side bookkeeping calls. Both the
// single Manager and the sharded shard.Router implement it, so one
// configuration field selects a bare manager or a multi-shard fabric.
type Service interface {
	BatchPublisher
	Poll(args PollArgs, reply *PollReply) error
	Reset(args ResetArgs, reply *ResetReply) error
	// Version returns a session's current merged-result version (0 for
	// unknown sessions).
	Version(sessionID string) int64
	// CacheStats reports the poll encode cache's hits and misses.
	CacheStats(sessionID string) (hits, misses int64)
	// Drop removes a session entirely (teardown).
	Drop(sessionID string)
}

// PublishArgs is an engine's snapshot upload.
type PublishArgs struct {
	SessionID string
	WorkerID  string
	// Seq orders snapshots from one worker; stale ones are dropped and
	// non-consecutive deltas trigger a NeedFull resync.
	Seq int64
	// Delta is the incremental snapshot (preferred). When non-nil, Tree
	// is ignored.
	Delta *aida.DeltaState
	// Tree is the worker's full current result state (legacy/ablation
	// baseline path).
	Tree aida.TreeState
	// EventsDone / EventsTotal drive the client progress display.
	EventsDone  int64
	EventsTotal int64
	// Log carries accumulated script print() output (may be "").
	Log string
	// Trace is the publish's propagated trace context (zero = untraced).
	// Injected by the snapshot Transport, lifted into the RMI envelope by
	// the client, hop-advanced by the server, and forwarded into the
	// mirror stream — so one engine publish is followable end to end.
	// Old gob peers silently drop the field.
	Trace obs.TraceContext
}

// TraceCtx implements obs.Carrier: rmi.Client lifts the context into
// the wire envelope.
func (a PublishArgs) TraceCtx() obs.TraceContext { return a.Trace }

// SetTraceCtx implements obs.Setter: rmi.Server stores the recovered,
// hop-advanced context back before dispatch.
func (a *PublishArgs) SetTraceCtx(t obs.TraceContext) { a.Trace = t }

// PublishReply acknowledges a snapshot.
type PublishReply struct {
	Accepted bool
	Version  int64 // session version after this publish
	// Epoch is the session's incarnation stamp at this publish — what a
	// replicating router forwards with the mirrored delta so the
	// replica can tell live mirrors from a deposed primary's
	// stragglers.
	Epoch int64
	// NeedFull asks the worker to re-baseline: the manager cannot apply
	// the delta (unknown worker or a sequence gap) and needs a full
	// snapshot next.
	NeedFull bool
	// QueueDepth / Busy are the upstream backpressure hint: how many
	// other publishes were queued behind this one on the session's write
	// section when it completed. SubMergers widen their flush interval
	// while the parent tier reports pressure, trading freshness for
	// larger batches instead of piling onto a contended session.
	QueueDepth int
	Busy       bool
}

// PollArgs is the client's update request.
type PollArgs struct {
	SessionID string
	// SinceVersion is the client's last seen version (0 = everything).
	SinceVersion int64
	// Full forces a complete tree regardless of SinceVersion.
	Full bool
	// DownstreamDepth is the accumulated queue-depth hint of the tier
	// issuing this poll: a relay subscribing on behalf of N congested
	// downstream consumers reports max(its own lag, what its children
	// reported) here, so leaf congestion reaches the owning shard and
	// widens flush intervals at the root — backpressure beyond one hop.
	// 0 from ordinary clients.
	DownstreamDepth int
}

// WorkerProgress summarizes one engine for the client status panel
// ("Information about the hosts that has Analysis Engines running",
// Figure 4).
type WorkerProgress struct {
	WorkerID    string
	EventsDone  int64
	EventsTotal int64
	Seq         int64
}

// PollReply carries merged updates.
type PollReply struct {
	// Version is the current session version; poll with it next time.
	Version int64
	// Epoch identifies this incarnation of the session's merged state.
	// It survives a shard handoff (the import carries it) but changes
	// when the state is rebuilt from scratch — a fault re-home after a
	// shard death. A client seeing a new epoch must discard its mirror
	// and full-resync: the new incarnation's version counter is
	// unrelated to the old one and may have already overtaken it, so
	// version regression alone cannot signal the rebuild. 0 for unknown
	// sessions.
	Epoch int64
	// Changed reports whether Entries carries anything new.
	Changed bool
	// Entries are the merged objects that changed since SinceVersion
	// (or all of them for a full poll), as pre-encoded wire frames
	// served from the manager's encode cache — N polling clients share
	// one encode per changed object. Unlike the frame version byte,
	// this reply schema is not cross-version compatible: clients and
	// managers ship together.
	Entries []PollEntry
	// Removed lists paths that disappeared (e.g. after rewind).
	Removed []string
	// Progress per worker, sorted by worker ID. The slice is the
	// manager's shared per-version snapshot — treat it as read-only.
	Progress []WorkerProgress
	// Logs are new log lines since the last poll.
	Logs []string
}

// PollEntry is one changed merged object in a poll reply.
type PollEntry struct {
	Path  string
	Frame aida.ObjectFrame
}

// State decodes the entry's wire frame.
func (e PollEntry) State() (aida.ObjectState, error) { return e.Frame.Decode() }

// Restore decodes the frame and rebuilds the live object.
func (e PollEntry) Restore() (aida.Object, error) { return e.Frame.Restore() }

// Release recycles every entry's frame buffer into the decode free
// list and clears the entries, so the next poll's wire decode reuses
// the memory instead of allocating. Call it only on replies that
// crossed the wire (core.Client does, after restoring the objects):
// an in-process reply's frames are shared with the manager's encode
// cache, and releasing those would corrupt later polls.
func (r *PollReply) Release() {
	for i := range r.Entries {
		r.Entries[i].Frame.Release()
		r.Entries[i].Frame = nil
	}
	r.Entries = r.Entries[:0]
}

type workerState struct {
	seq   int64
	tree  *aida.Tree
	done  int64
	total int64
	// pending is the undecoded delta tail of a mirror-fed standby copy:
	// Mirror appends here instead of decoding and re-merging, so
	// synchronous replication stays cheap on the publish path.
	// Materialized (folded into tree) when it grows long, on export,
	// and at promotion. Empty on live primaries.
	pending []*aida.DeltaState
}

// polledState is the atomically-published read snapshot behind the
// lock-free poll fast path: the session version and the per-worker
// progress at that version, swapped in as one pointer at the end of
// every write section. A reader that loads it sees a version whose
// state is fully visible — never a version ahead of the merged tree.
type polledState struct {
	version  int64
	progress []WorkerProgress // sorted by worker ID; immutable
}

type sessionState struct {
	// mu orders writers (publish/reset/import/export/flush) against
	// readers (poll); polls of an unchanged session skip it entirely via
	// pub. All plain fields below are guarded by it.
	mu sync.RWMutex

	// epoch identifies this incarnation of the session (see
	// PollReply.Epoch). Assigned at creation, overwritten by Import so
	// handoffs keep it stable. Atomic because the lock-free poll fast
	// path reads it while an Import may be writing.
	epoch atomic.Int64

	// pub is the atomic read snapshot (see polledState). Stored only at
	// the end of a write section, before mu is released.
	pub atomic.Pointer[polledState]
	// sealed freezes the session for a shard handoff: publishes are
	// refused with NeedFull (the producer re-baselines on the session's
	// new owner shard) while polls keep serving the frozen state until
	// routing flips. Import clears it. Atomic so Stats never waits on a
	// write section.
	sealed atomic.Bool
	// fence is the failover fence floor: state whose epoch is at or
	// below it is refused on every write surface, and a session whose
	// own epoch sits at or below it is a deposed copy that answers
	// polls like an unknown session. Only ever rises. Atomic because
	// the lock-free poll fast path reads it.
	fence atomic.Int64
	// Poll bookkeeping, atomic so read paths never take the write lock.
	cacheHits, cacheMisses atomic.Int64
	indexPolls, walkPolls  atomic.Int64
	fastPolls              atomic.Int64
	// Cumulative traffic counters — what the shard balancer ranks
	// session moves by. Publishes counts every snapshot upload routed
	// here, polls every client read (fast path included).
	publishes, polls atomic.Int64
	// lastTrace is the trace ID of the most recent traced publish or
	// mirror applied to this state — the observable that lets a test (or
	// an operator) confirm one traced publish reached the owner, its
	// replica, and the post-failover promoted copy.
	lastTrace atomic.Uint64
	// pubWaiting counts publishes currently inside or queued for the
	// write section; its excess over 1 is the backpressure hint carried
	// on PublishReply/FlushReply.
	pubWaiting atomic.Int32
	// downDepth accumulates the max DownstreamDepth reported by polling
	// tiers (relays) since a publisher last read it. Folded into the
	// backpressure hint and decayed by one per read, so a tier that
	// stops reporting fades out instead of pinning pressure forever.
	downDepth atomic.Int64

	version int64
	workers map[string]*workerState
	// workerIDs mirrors the workers keys in sorted order, maintained on
	// insert so neither publish nor poll re-sorts.
	workerIDs  []string
	merged     *aida.Tree
	objVersion map[string]int64 // path → version of last content change
	gone       map[string]int64 // path → version at which it vanished
	logs       []logLine
	// frames caches each merged path's encoded wire frame at the
	// version it was stamped; Poll serves hits without re-encoding.
	// Invalidation is by version mismatch (delta applies bump
	// objVersion) plus explicit deletes on removal. A sync.Map because
	// concurrent RLock-holding polls insert misses into it.
	frames sync.Map // path → cachedFrame
	// dirty marks pending legacy full-tree publishes; remerge() clears
	// it by rebuilding merged from every worker tree.
	dirty bool
	// changeLog is the per-version change index: for every version since
	// indexedSince, the merged paths stamped at it. Incremental polls
	// whose SinceVersion is covered walk only these paths instead of the
	// whole merged tree; older ones fall back to a full walk.
	changeLog    []versionChanges
	indexLen     int   // total path entries across changeLog
	indexedSince int64 // changeLog covers every change after this version
}

type versionChanges struct {
	version int64
	paths   []string
}

// maxChangeIndex bounds the change index; past it the oldest versions
// are dropped and polls from before the new floor do a full walk.
const maxChangeIndex = 4096

type cachedFrame struct {
	version int64
	frame   aida.ObjectFrame
}

type logLine struct {
	version int64
	text    string
}

// maxLogLines bounds per-session log retention.
const maxLogLines = 1000

// Manager is the root AIDA manager. Safe for concurrent use; see the
// package comment for the locking model.
type Manager struct {
	// DisableEncodeCache makes every poll re-encode every included
	// object — retained as the A7 ablation baseline.
	DisableEncodeCache bool
	// DisableChangeIndex makes every incremental poll walk the whole
	// merged tree — the pre-index behavior, retained as an ablation
	// baseline.
	DisableChangeIndex bool
	// CoarseLocking serializes every call — all sessions, publishes and
	// polls alike — on one manager-wide mutex and disables the lock-free
	// poll fast path: the pre-A10 behavior, retained as the ablation
	// baseline. Set before first use.
	CoarseLocking bool

	coarseMu sync.Mutex
	sessions sync.Map // sessionID → *sessionState

	// wal, when attached via SetWAL, logs every state-changing call for
	// crash-restart replay; walCompacting single-flights compactions.
	wal           *WAL
	walCompacting atomic.Bool
}

// NewManager creates an empty manager.
func NewManager() *Manager { return &Manager{} }

// lockCoarse takes the manager-wide mutex in the CoarseLocking ablation
// mode and returns the matching unlock; a no-op otherwise. Usage:
// defer m.lockCoarse()().
func (m *Manager) lockCoarse() func() {
	if !m.CoarseLocking {
		return func() {}
	}
	m.coarseMu.Lock()
	return m.coarseMu.Unlock
}

// sessionEpoch seeds session incarnation stamps: the process start
// time in nanoseconds plus one per session created. Unique within a
// process by construction and across manager processes with
// overwhelming probability — enough for "did the state get rebuilt
// under me" detection.
var sessionEpoch atomic.Int64

func init() { sessionEpoch.Store(time.Now().UnixNano()) }

func newSessionState() *sessionState {
	s := &sessionState{
		workers:    make(map[string]*workerState),
		merged:     aida.NewTree(),
		objVersion: make(map[string]int64),
		gone:       make(map[string]int64),
	}
	s.epoch.Store(sessionEpoch.Add(1))
	s.pub.Store(&polledState{})
	return s
}

// session returns the state for id, creating it on first use. Only the
// publish path creates sessions; read-only RPCs use lookup so stray or
// malicious polls cannot grow memory without bound.
func (m *Manager) session(id string) *sessionState {
	if v, ok := m.sessions.Load(id); ok {
		return v.(*sessionState)
	}
	s := newSessionState()
	if v, raced := m.sessions.LoadOrStore(id, s); raced {
		return v.(*sessionState)
	}
	return s
}

// lookup returns the state for id, or nil.
func (m *Manager) lookup(id string) *sessionState {
	if v, ok := m.sessions.Load(id); ok {
		return v.(*sessionState)
	}
	return nil
}

// commitLocked publishes the atomic read snapshot for the current write
// section: version plus per-worker progress. Call at the end of every
// write section that changed session state, while still holding mu —
// the store is what makes the new version visible to lock-free polls,
// so everything the version covers must already be in place.
func (s *sessionState) commitLocked() {
	ps := &polledState{version: s.version}
	if len(s.workerIDs) > 0 {
		ps.progress = make([]WorkerProgress, 0, len(s.workerIDs))
		for _, id := range s.workerIDs {
			w := s.workers[id]
			ps.progress = append(ps.progress, WorkerProgress{
				WorkerID: id, EventsDone: w.done, EventsTotal: w.total, Seq: w.seq,
			})
		}
	}
	s.pub.Store(ps)
}

// clearFrames empties the encode cache (reset, import, tombstone).
// Caller holds mu, so no poll is concurrently reading.
func (s *sessionState) clearFrames() {
	s.frames.Range(func(k, _ any) bool {
		s.frames.Delete(k)
		return true
	})
}

// reportPressure stamps the backpressure hint: publishes queued behind
// this one right now. Runs (via defer) while the write lock and the
// caller's own pubWaiting slot are still held, so the self-count is
// excluded exactly once.
func (s *sessionState) reportPressure(reply *PublishReply) {
	d := int(s.pubWaiting.Load()) - 1
	if dd := s.drainDownstream(); dd > d {
		d = dd
	}
	if d > 0 {
		reply.QueueDepth = d
		reply.Busy = true
	}
}

// noteDownstream folds a polling tier's accumulated queue-depth hint
// into the session's pressure signal (max-accumulate; lock-free).
func (s *sessionState) noteDownstream(d int) {
	for {
		cur := s.downDepth.Load()
		if int64(d) <= cur || s.downDepth.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// drainDownstream reads the accumulated downstream hint, decaying it by
// one so stale reports fade across successive publisher reads rather
// than holding flush intervals wide forever.
func (s *sessionState) drainDownstream() int {
	for {
		cur := s.downDepth.Load()
		if cur <= 0 {
			return 0
		}
		if s.downDepth.CompareAndSwap(cur, cur-1) {
			return int(cur)
		}
	}
}

// worker returns the state for workerID, creating (and index-inserting)
// it on first use. Caller holds s.mu.
func (s *sessionState) worker(workerID string) *workerState {
	w := s.workers[workerID]
	if w == nil {
		w = &workerState{}
		s.workers[workerID] = w
		at := sort.SearchStrings(s.workerIDs, workerID)
		s.workerIDs = append(s.workerIDs, "")
		copy(s.workerIDs[at+1:], s.workerIDs[at:])
		s.workerIDs[at] = workerID
	}
	return w
}

// recordChange appends path to the per-version change index. Caller
// holds s.mu and has already stamped objVersion[path] = s.version.
func (s *sessionState) recordChange(path string) {
	n := len(s.changeLog)
	if n == 0 || s.changeLog[n-1].version != s.version {
		s.changeLog = append(s.changeLog, versionChanges{version: s.version})
		n++
	}
	vc := &s.changeLog[n-1]
	vc.paths = append(vc.paths, path)
	s.indexLen++
	if s.indexLen <= maxChangeIndex {
		return
	}
	// Shed the oldest versions down to half capacity; the floor moves up
	// so polls from before it take the full-walk fallback.
	drop := 0
	for drop < len(s.changeLog)-1 && s.indexLen > maxChangeIndex/2 {
		s.indexLen -= len(s.changeLog[drop].paths)
		drop++
	}
	if drop == 0 || s.indexLen > maxChangeIndex {
		// A single version touched more paths than the whole cap (a
		// huge baseline publish): any poll it could serve would return
		// nearly everything, so the index degenerates to the full walk.
		s.invalidateChangeIndex()
		return
	}
	s.indexedSince = s.changeLog[drop-1].version
	s.changeLog = append([]versionChanges(nil), s.changeLog[drop:]...)
}

// invalidateChangeIndex empties the index after a bulk restamp (legacy
// remerge, reset, session import); it refills from the next delta.
func (s *sessionState) invalidateChangeIndex() {
	s.changeLog = nil
	s.indexLen = 0
	s.indexedSince = s.version
}

// changedSince returns the deduplicated sorted paths stamped after
// since. Caller holds s.mu (read or write) and has checked
// since >= indexedSince.
func (s *sessionState) changedSince(since int64) []string {
	i := sort.Search(len(s.changeLog), func(i int) bool { return s.changeLog[i].version > since })
	if i == len(s.changeLog) {
		return nil
	}
	seen := make(map[string]struct{})
	var out []string
	for ; i < len(s.changeLog); i++ {
		for _, p := range s.changeLog[i].paths {
			if _, dup := seen[p]; !dup {
				seen[p] = struct{}{}
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out
}

func (s *sessionState) appendLog(text string) {
	if text == "" {
		return
	}
	s.logs = append(s.logs, logLine{version: s.version, text: text})
	if len(s.logs) > maxLogLines {
		s.logs = s.logs[len(s.logs)-maxLogLines:]
	}
}

// Publish ingests a worker snapshot (RMI-compatible). Delta snapshots
// apply immediately; legacy whole-tree snapshots defer the rebuild to the
// next poll.
func (m *Manager) Publish(args PublishArgs, reply *PublishReply) error {
	if args.SessionID == "" || args.WorkerID == "" {
		return fmt.Errorf("merge: session and worker IDs required")
	}
	defer m.lockCoarse()()
	if args.Delta != nil {
		return m.publishDelta(args, reply)
	}
	t0 := obs.Now()
	defer obsPublishSeconds.ObserveSince(t0)
	tree, err := args.Tree.Restore()
	if err != nil {
		return fmt.Errorf("merge: bad snapshot from %s: %w", args.WorkerID, err)
	}
	s := m.session(args.SessionID)
	s.publishes.Add(1)
	obsPublishes.Inc()
	s.pubWaiting.Add(1)
	obsPubWaiting.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.pubWaiting.Add(-1)
	defer obsPubWaiting.Add(-1)
	defer s.reportPressure(reply)
	reply.Epoch = s.epoch.Load()
	if s.sealed.Load() || s.fenced() {
		// Mid-handoff (or a deposed post-failover copy): refusing with
		// NeedFull makes the producer re-baseline — by the time it does,
		// routing has flipped and the baseline lands on the live owner.
		reply.Accepted, reply.NeedFull = false, true
		reply.Version = s.version
		return nil
	}
	w := s.worker(args.WorkerID)
	if args.Seq <= w.seq && args.Seq != 0 {
		// Stale or duplicate snapshot (out-of-order RMI retry): ignore.
		reply.Accepted = false
		reply.Version = s.version
		return nil
	}
	w.seq = args.Seq
	w.tree = tree
	w.pending = nil
	w.done = args.EventsDone
	w.total = args.EventsTotal
	s.version++
	s.dirty = true
	s.appendLog(args.Log)
	s.commitLocked()
	s.recordTrace(args.Trace, t0)
	reply.Accepted = true
	reply.Version = s.version
	return m.walAppend(&walRecord{Kind: walPublish, Publish: &args})
}

// recordTrace notes an accepted traced write on this state: the trace
// ID becomes observable via Stats, and the apply is recorded as a span
// (also covering in-process calls that never crossed RMI). Caller
// holds s.mu; no-op for untraced writes.
func (s *sessionState) recordTrace(t obs.TraceContext, t0 time.Time) {
	if !t.Valid() {
		return
	}
	s.lastTrace.Store(t.TraceID)
	if !t0.IsZero() {
		obs.RecordSpan(t, "merge.apply", time.Since(t0))
	}
}

// publishDelta applies an incremental snapshot: patch the worker's
// retained tree, then re-merge only the touched paths.
func (m *Manager) publishDelta(args PublishArgs, reply *PublishReply) error {
	d := args.Delta
	// Restore all payload objects before locking anything so a corrupt
	// delta is rejected atomically and decode cost stays outside the
	// critical section.
	objs := make([]aida.Object, len(d.Entries))
	for i, e := range d.Entries {
		obj, err := e.Object.Restore()
		if err != nil {
			return fmt.Errorf("merge: bad delta from %s at %q: %w", args.WorkerID, e.Path, err)
		}
		objs[i] = obj
	}
	t0 := obs.Now()
	defer obsPublishSeconds.ObserveSince(t0)
	s := m.session(args.SessionID)
	s.publishes.Add(1)
	obsPublishes.Inc()
	s.pubWaiting.Add(1)
	obsPubWaiting.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.pubWaiting.Add(-1)
	defer obsPubWaiting.Add(-1)
	defer s.reportPressure(reply)
	reply.Version = s.version
	reply.Epoch = s.epoch.Load()
	if s.sealed.Load() || s.fenced() {
		// See Publish: frozen for handoff (or fenced after failover),
		// ask for a re-baseline.
		reply.Accepted, reply.NeedFull = false, true
		return nil
	}
	w := s.worker(args.WorkerID)
	if len(w.pending) > 0 {
		// A mirror-fed worker taking direct publishes (its copy went
		// live): fold the stored tail first so the delta lands on the
		// full baseline.
		if err := w.materialize(); err != nil {
			return err
		}
	}
	if !d.Full {
		if args.Seq <= w.seq && w.tree != nil {
			// Duplicate or stale retry: w.seq only advances on applied
			// snapshots, so this delta's content is already incorporated
			// (or superseded by a later baseline). Drop it cheaply — no
			// resync needed.
			reply.Accepted = false
			return nil
		}
		if w.tree == nil || args.Seq != w.seq+1 {
			// Unknown baseline or a sequence gap ahead: deltas are
			// cumulative from the previous snapshot, so the missing one
			// is unrecoverable. Ask for a re-baseline.
			reply.Accepted = false
			reply.NeedFull = true
			return nil
		}
	} else if w.tree != nil && args.Seq <= w.seq && args.Seq != 0 {
		// Stale baseline (out-of-order retry of an old full snapshot).
		reply.Accepted = false
		return nil
	}
	// Flush any pending legacy rebuild first so per-path recomputes start
	// from a consistent merged tree.
	if err := s.remerge(); err != nil {
		return err
	}
	touched := make([]string, 0, len(d.Entries)+len(d.Removed))
	if d.Full {
		old := w.tree
		next := aida.NewTree()
		for i, e := range d.Entries {
			if err := next.PutAt(e.Path, objs[i]); err != nil {
				return err
			}
			touched = append(touched, e.Path)
		}
		if old != nil {
			// Paths the worker used to contribute but no longer does
			// (rewind with a changed analysis) must re-merge too.
			old.Walk(func(path string, _ aida.Object) {
				if next.Get(path) == nil {
					touched = append(touched, path)
				}
			})
		}
		w.tree = next
	} else {
		for i, e := range d.Entries {
			if err := w.tree.PutAt(e.Path, objs[i]); err != nil {
				return err
			}
			touched = append(touched, e.Path)
		}
		for _, path := range d.Removed {
			if w.tree.Rm(path) {
				touched = append(touched, path)
			}
		}
	}
	w.seq = args.Seq
	w.done = args.EventsDone
	w.total = args.EventsTotal
	s.version++
	for _, path := range touched {
		if err := s.recomputePath(path); err != nil {
			return err
		}
	}
	s.appendLog(args.Log)
	s.commitLocked()
	s.recordTrace(args.Trace, t0)
	reply.Accepted = true
	reply.Version = s.version
	return m.walAppend(&walRecord{Kind: walPublish, Publish: &args})
}

// recomputePath rebuilds the merged object at path from every worker's
// contribution and stamps it with the current version. Workers merge in
// sorted-ID order so results are deterministic and identical to a full
// remerge. The merged tree only ever receives freshly-built objects
// here — existing entries are replaced, never mutated — which is what
// lets polls read them under RLock. Caller holds s.mu.
func (s *sessionState) recomputePath(path string) error {
	var acc aida.Object
	for _, id := range s.workerIDs {
		w := s.workers[id]
		if w.tree == nil {
			continue
		}
		obj := w.tree.Get(path)
		if obj == nil {
			continue
		}
		if acc == nil {
			cp, err := aida.CloneObject(obj)
			if err != nil {
				return fmt.Errorf("merge: %q: %w", path, err)
			}
			acc = cp
			continue
		}
		mo, ok := acc.(aida.Mergeable)
		if !ok {
			return fmt.Errorf("merge: object %q (%s) is not mergeable", path, acc.Kind())
		}
		if err := mo.MergeFrom(obj); err != nil {
			return fmt.Errorf("merge: merging %q: %w", path, err)
		}
	}
	if acc == nil {
		if s.merged.Rm(path) {
			s.gone[path] = s.version
		}
		delete(s.objVersion, path)
		s.frames.Delete(path)
		return nil
	}
	if err := s.merged.PutAt(path, acc); err != nil {
		return err
	}
	s.objVersion[path] = s.version
	s.recordChange(path)
	delete(s.gone, path)
	return nil
}

// remerge rebuilds the merged tree from worker snapshots and stamps
// changed objects with the current version — the legacy full-snapshot
// path, kept as the ablation baseline. Caller holds s.mu.
func (s *sessionState) remerge() error {
	if !s.dirty {
		return nil
	}
	prev := s.merged
	next := aida.NewTree()
	for _, id := range s.workerIDs {
		if w := s.workers[id]; w.tree != nil {
			if err := next.MergeFrom(w.tree); err != nil {
				return err
			}
		}
	}
	// Stamp changes: any object whose serialized content differs from the
	// previous merged tree gets the current version.
	seen := map[string]bool{}
	var firstErr error
	next.Walk(func(path string, obj aida.Object) {
		if firstErr != nil {
			return
		}
		seen[path] = true
		prevObj := prev.Get(path)
		if prevObj == nil || !objectsEqual(prevObj, obj) {
			s.objVersion[path] = s.version
			delete(s.gone, path)
		}
	})
	prev.Walk(func(path string, obj aida.Object) {
		if !seen[path] {
			s.gone[path] = s.version
			delete(s.objVersion, path)
			s.frames.Delete(path)
		}
	})
	s.merged = next
	s.dirty = false
	// The walk above restamped objVersion directly; the index no longer
	// covers those changes, so polls fall back to full walks until new
	// deltas refill it.
	s.invalidateChangeIndex()
	return firstErr
}

// objectsEqual compares two objects through their serialized wire states
// (structural equality, not pointer identity). Only the legacy
// full-snapshot path pays this cost; delta publishes stamp versions from
// the delta's path list instead.
func objectsEqual(a, b aida.Object) bool {
	sa, errA := aida.StateOf(a)
	sb, errB := aida.StateOf(b)
	if errA != nil || errB != nil {
		return false
	}
	ba, errA := aida.AppendObjectState(nil, &sa)
	bb, errB := aida.AppendObjectState(nil, &sb)
	if errA != nil || errB != nil {
		return false
	}
	return bytes.Equal(ba, bb)
}

// rlockClean acquires the session read lock with no legacy rebuild
// pending: if a full-tree publish left the session dirty, it briefly
// upgrades to the write lock to remerge, then re-checks. On success the
// read lock is held.
func (s *sessionState) rlockClean() error {
	for {
		s.mu.RLock()
		if !s.dirty {
			return nil
		}
		s.mu.RUnlock()
		s.mu.Lock()
		err := s.remerge()
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
}

// Poll returns merged updates since the client's version
// (RMI-compatible). Unknown sessions yield an empty reply rather than
// allocating state. Quiescent polls (SinceVersion == current version)
// return on one atomic load; other polls share the session read lock,
// so any number of clients poll concurrently with each other.
func (m *Manager) Poll(args PollArgs, reply *PollReply) error {
	t0 := obs.Now()
	defer obsPollSeconds.ObserveSince(t0)
	defer m.lockCoarse()()
	s := m.lookup(args.SessionID)
	if s == nil {
		return nil
	}
	s.polls.Add(1)
	obsPolls.Inc()
	if args.DownstreamDepth > 0 {
		s.noteDownstream(args.DownstreamDepth)
	}
	if s.fenced() {
		// A deposed post-failover copy answers like an unknown session:
		// version 0 sends a direct-polling straggler back to placement
		// resolution, where it finds the promoted owner.
		return nil
	}
	if !args.Full && !m.CoarseLocking {
		// Lock-free fast path: nothing changed since the client's last
		// poll. The snapshot pointer is stored only after a write
		// section completes, so the version it reports never runs ahead
		// of visible state; a concurrent in-flight publish simply isn't
		// observed until its commit.
		if ps := s.pub.Load(); ps.version == args.SinceVersion {
			reply.Version = ps.version
			reply.Epoch = s.epoch.Load()
			reply.Progress = ps.progress
			s.fastPolls.Add(1)
			obsFastPolls.Inc()
			return nil
		}
	}
	if err := s.rlockClean(); err != nil {
		return err
	}
	defer s.mu.RUnlock()
	reply.Version = s.version
	reply.Epoch = s.epoch.Load()
	reply.Progress = s.pub.Load().progress
	for _, l := range s.logs {
		if l.version > args.SinceVersion {
			reply.Logs = append(reply.Logs, l.text)
		}
	}
	var firstErr error
	emit := func(path string, obj aida.Object) {
		if firstErr != nil {
			return
		}
		ver := s.objVersion[path]
		if !m.DisableEncodeCache {
			if v, ok := s.frames.Load(path); ok {
				if cf := v.(cachedFrame); cf.version == ver {
					s.cacheHits.Add(1)
					obsCacheHits.Inc()
					reply.Entries = append(reply.Entries, PollEntry{Path: path, Frame: cf.frame})
					return
				}
			}
		}
		st, err := aida.StateOf(obj)
		if err != nil {
			firstErr = err
			return
		}
		frame, err := aida.EncodeObjectFrame(&st)
		if err != nil {
			firstErr = err
			return
		}
		s.cacheMisses.Add(1)
		obsCacheMisses.Inc()
		if !m.DisableEncodeCache {
			// Concurrent pollers may both miss and store; the entries are
			// identical for a given (path, version), so last-write-wins
			// is fine.
			s.frames.Store(path, cachedFrame{version: ver, frame: frame})
		}
		reply.Entries = append(reply.Entries, PollEntry{Path: path, Frame: frame})
	}
	if !args.Full && args.SinceVersion > 0 && args.SinceVersion >= s.indexedSince && !m.DisableChangeIndex {
		// Change-index fast path: touch only the paths stamped after the
		// client's version instead of walking the whole merged tree.
		s.indexPolls.Add(1)
		for _, path := range s.changedSince(args.SinceVersion) {
			if obj := s.merged.Get(path); obj != nil {
				emit(path, obj)
			}
		}
	} else {
		s.walkPolls.Add(1)
		include := func(path string) bool {
			if args.Full || args.SinceVersion == 0 {
				return true
			}
			return s.objVersion[path] > args.SinceVersion
		}
		s.merged.Walk(func(path string, obj aida.Object) {
			if include(path) {
				emit(path, obj)
			}
		})
	}
	if firstErr != nil {
		return firstErr
	}
	for path, ver := range s.gone {
		if args.Full || ver > args.SinceVersion {
			reply.Removed = append(reply.Removed, path)
		}
	}
	sort.Strings(reply.Removed)
	reply.Changed = len(reply.Entries) > 0 || len(reply.Removed) > 0
	return nil
}

// ResetArgs clears a session's results (rewind).
type ResetArgs struct {
	SessionID string
}

// ResetReply acknowledges a reset.
type ResetReply struct {
	Version int64
}

// ErrSealed rejects writes against a session frozen for a shard
// handoff; the caller should retry once routing has flipped.
var ErrSealed = errors.New("merge: session sealed for shard handoff; retry")

// Reset drops all worker snapshots for a session — issued on rewind so the
// next run starts from empty histograms (RMI-compatible).
func (m *Manager) Reset(args ResetArgs, reply *ResetReply) error {
	defer m.lockCoarse()()
	s := m.lookup(args.SessionID)
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed.Load() {
		return ErrSealed
	}
	s.version++
	for path := range s.objVersion {
		s.gone[path] = s.version
		delete(s.objVersion, path)
	}
	s.workers = make(map[string]*workerState)
	s.workerIDs = nil
	s.merged = aida.NewTree()
	s.clearFrames()
	s.logs = nil
	s.dirty = false
	s.invalidateChangeIndex()
	s.commitLocked()
	reply.Version = s.version
	return m.walAppend(&walRecord{Kind: walReset, Session: args.SessionID})
}

// Version returns a session's current merged-result version (0 for
// unknown sessions) — the generation stamp clients poll against. Served
// from the atomic snapshot; never blocks behind a publish.
func (m *Manager) Version(sessionID string) int64 {
	defer m.lockCoarse()()
	if s := m.lookup(sessionID); s != nil {
		return s.pub.Load().version
	}
	return 0
}

// CacheStats reports the poll encode cache's effectiveness for a
// session: hits are entries served without re-encoding, misses are
// fresh encodes (including every first-touch encode after a change).
// Lock-free.
func (m *Manager) CacheStats(sessionID string) (hits, misses int64) {
	defer m.lockCoarse()()
	if s := m.lookup(sessionID); s != nil {
		return s.cacheHits.Load(), s.cacheMisses.Load()
	}
	return 0, 0
}

// Drop removes a session entirely (teardown).
func (m *Manager) Drop(sessionID string) {
	defer m.lockCoarse()()
	if _, ok := m.sessions.LoadAndDelete(sessionID); ok {
		m.walAppend(&walRecord{Kind: walDrop, Session: sessionID})
	}
}

// MergedTree returns a deep copy of the current merged tree (manager-side
// consumers like XML export). Unknown sessions yield an empty tree.
func (m *Manager) MergedTree(sessionID string) (*aida.Tree, int64, error) {
	defer m.lockCoarse()()
	s := m.lookup(sessionID)
	if s == nil {
		return aida.NewTree(), 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.remerge(); err != nil {
		return nil, 0, err
	}
	cp, err := s.merged.Clone()
	return cp, s.version, err
}

// FlushState is the upstream-snapshot material a SubMerger pulls from
// its local manager in one locked read: the merged objects stamped
// after since (all of them, as a Full baseline, when since is 0), the
// paths removed after since, aggregate progress, and the log lines
// accumulated after logSince.
type FlushState struct {
	Delta       *aida.DeltaState
	Version     int64
	Done, Total int64
	Logs        []string
	// Busy / QueueDepth are the backpressure hint: publishes queued for
	// this session's write section while the flush was assembled. A
	// SubMerger pulling from a contended tier widens its own flush
	// interval in response.
	Busy       bool
	QueueDepth int
}

// FlushState assembles a forwardable delta of everything that changed
// in the merged tree after since. Unknown sessions yield an empty
// snapshot.
func (m *Manager) FlushState(sessionID string, since, logSince int64) (FlushState, error) {
	defer m.lockCoarse()()
	fs := FlushState{Delta: &aida.DeltaState{Full: since == 0}}
	s := m.lookup(sessionID)
	if s == nil {
		return fs, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.remerge(); err != nil {
		return fs, err
	}
	d := int(s.pubWaiting.Load())
	if dd := s.drainDownstream(); dd > d {
		d = dd
	}
	if d > 0 {
		// Publishes are queued behind this flush's write lock, or a
		// downstream tier reported congestion: surface it to whoever
		// forwards our state upstream.
		fs.QueueDepth = d
		fs.Busy = true
	}
	fs.Version = s.version
	for _, id := range s.workerIDs {
		w := s.workers[id]
		fs.Done += w.done
		fs.Total += w.total
	}
	for _, l := range s.logs {
		if l.version > logSince {
			fs.Logs = append(fs.Logs, l.text)
		}
	}
	var firstErr error
	s.merged.Walk(func(path string, obj aida.Object) {
		if firstErr != nil {
			return
		}
		if since != 0 && s.objVersion[path] <= since {
			return
		}
		st, err := aida.StateOf(obj)
		if err != nil {
			firstErr = err
			return
		}
		fs.Delta.Entries = append(fs.Delta.Entries, aida.TreeEntry{Path: path, Object: st})
	})
	if firstErr != nil {
		return fs, firstErr
	}
	if since != 0 {
		for path, ver := range s.gone {
			if ver > since {
				fs.Delta.Removed = append(fs.Delta.Removed, path)
			}
		}
		sort.Strings(fs.Delta.Removed)
	}
	return fs, nil
}

// ------------------------------------------------------------------
// Shard handoff surface. A shard router migrates a session between
// Manager shards by Export(Seal)ing it on the old owner, Import()ing the
// dump into the new one, flipping routing, and dropping the old copy.
// All methods are RMI-compatible, so remote shards need no extra
// plumbing beyond their registration name.

// ExportArgs requests a full session dump for a shard handoff.
type ExportArgs struct {
	SessionID string
	// Seal freezes the session on this manager: subsequent publishes are
	// refused with NeedFull (so producers re-baseline on the session's
	// new owner) while polls keep serving the frozen state until routing
	// flips. Import on this manager lifts the seal.
	Seal bool
}

// WorkerSnapshot is one worker's complete retained state in an export.
type WorkerSnapshot struct {
	WorkerID    string
	Seq         int64
	Done, Total int64
	// HasTree distinguishes a worker with an empty tree from one that
	// never baselined (nil tree: its next delta draws NeedFull).
	HasTree bool
	Tree    aida.TreeState
}

// RemovedPath is one vanished merged path with the version it vanished
// at — carried across handoffs so incremental pollers still learn of
// removals that predate the move.
type RemovedPath struct {
	Path    string
	Version int64
}

// LogLine is one retained log line with the version it was stamped at.
type LogLine struct {
	Version int64
	Text    string
}

// ExportReply is the complete migratable state of one session.
type ExportReply struct {
	Found   bool
	Version int64
	// Epoch is the session's incarnation stamp; the importer adopts it
	// so a handoff does not look like a rebuild to polling clients.
	Epoch   int64
	Workers []WorkerSnapshot
	Removed []RemovedPath
	Logs    []LogLine
	// LastTraceID carries the most recent traced write's trace ID so a
	// handoff or replica seed stays observable under the same trace.
	LastTraceID uint64
}

// Export dumps a session's full state for migration (RMI-compatible).
// Unknown sessions report Found=false. With args.Seal the session is
// atomically frozen in the same locked section, so no publish can slip
// between the dump and the freeze.
func (m *Manager) Export(args ExportArgs, reply *ExportReply) error {
	defer m.lockCoarse()()
	s := m.lookup(args.SessionID)
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.remerge(); err != nil {
		return err
	}
	for _, id := range s.workerIDs {
		// A mirror-fed copy's stored delta tails must fold into the
		// worker trees so the dump is complete.
		if err := s.workers[id].materialize(); err != nil {
			return err
		}
	}
	reply.Found = true
	reply.Version = s.version
	reply.Epoch = s.epoch.Load()
	reply.LastTraceID = s.lastTrace.Load()
	for _, id := range s.workerIDs {
		w := s.workers[id]
		ws := WorkerSnapshot{WorkerID: id, Seq: w.seq, Done: w.done, Total: w.total}
		if w.tree != nil {
			st, err := w.tree.State()
			if err != nil {
				return fmt.Errorf("merge: exporting %s/%s: %w", args.SessionID, id, err)
			}
			ws.HasTree, ws.Tree = true, *st
		}
		reply.Workers = append(reply.Workers, ws)
	}
	for path, ver := range s.gone {
		reply.Removed = append(reply.Removed, RemovedPath{Path: path, Version: ver})
	}
	sort.Slice(reply.Removed, func(i, j int) bool { return reply.Removed[i].Path < reply.Removed[j].Path })
	for _, l := range s.logs {
		reply.Logs = append(reply.Logs, LogLine{Version: l.version, Text: l.text})
	}
	if args.Seal {
		s.sealed.Store(true)
	}
	return nil
}

// ImportArgs installs an exported session dump on its new owner shard.
type ImportArgs struct {
	SessionID string
	Version   int64
	// Epoch, when non-zero, carries the exported incarnation stamp
	// across the handoff (see ExportReply.Epoch).
	Epoch   int64
	Workers []WorkerSnapshot
	Removed []RemovedPath
	Logs    []LogLine
	// LastTraceID restores the exported copy's most recent trace ID
	// (zero = the source had seen no traced writes).
	LastTraceID uint64
}

// ImportReply acknowledges an import.
type ImportReply struct {
	Version int64
}

// Import installs an exported session, replacing any prior state for
// that ID (RMI-compatible). The session version continues from the
// imported one and every merged path is stamped at it, so clients
// polling with any older version refresh fully; workers continue
// publishing deltas from their exported sequence numbers without a
// resync. Import also lifts a seal, which doubles as the rollback path
// when a handoff fails after sealing the source.
func (m *Manager) Import(args ImportArgs, reply *ImportReply) error {
	if args.SessionID == "" {
		return errors.New("merge: import needs a session ID")
	}
	// Restore all worker trees before locking anything so a corrupt
	// import is rejected atomically.
	trees := make([]*aida.Tree, len(args.Workers))
	for i, ws := range args.Workers {
		if !ws.HasTree {
			continue
		}
		tree, err := ws.Tree.Restore()
		if err != nil {
			return fmt.Errorf("merge: importing %s/%s: %w", args.SessionID, ws.WorkerID, err)
		}
		trees[i] = tree
	}
	defer m.lockCoarse()()
	s := m.session(args.SessionID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if f := s.fence.Load(); f > 0 && args.Epoch <= f {
		// A stale incarnation (or one of unknown vintage) must not
		// resurrect over a fenced copy — the exact zombie-rebaseline
		// race the fence exists to close.
		return ErrFenced
	}
	if args.Version > s.version {
		s.version = args.Version
	}
	if args.Epoch != 0 {
		s.epoch.Store(args.Epoch)
	}
	if args.LastTraceID != 0 {
		s.lastTrace.Store(args.LastTraceID)
	}
	s.sealed.Store(false)
	s.workers = make(map[string]*workerState)
	s.workerIDs = nil
	s.merged = aida.NewTree()
	s.objVersion = make(map[string]int64)
	s.gone = make(map[string]int64)
	s.clearFrames()
	s.logs = nil
	for i, ws := range args.Workers {
		w := s.worker(ws.WorkerID)
		w.seq, w.done, w.total = ws.Seq, ws.Done, ws.Total
		w.tree = trees[i]
	}
	// Rebuild merged from the imported workers; remerge stamps every
	// path at the (imported) current version and resets the change
	// index.
	s.dirty = true
	if err := s.remerge(); err != nil {
		return err
	}
	for _, rp := range args.Removed {
		if s.merged.Get(rp.Path) != nil {
			continue
		}
		ver := rp.Version
		if ver > s.version {
			ver = s.version
		}
		s.gone[rp.Path] = ver
	}
	for _, l := range args.Logs {
		s.logs = append(s.logs, logLine{version: l.Version, text: l.Text})
	}
	if len(s.logs) > maxLogLines {
		s.logs = s.logs[len(s.logs)-maxLogLines:]
	}
	s.commitLocked()
	reply.Version = s.version
	return m.walAppend(&walRecord{Kind: walImport, Import: &args})
}

// StatsArgs requests a session's bookkeeping counters.
type StatsArgs struct {
	SessionID string
}

// StatsReply carries them: the RMI-shaped form of Version/CacheStats,
// which is what lets a router answer those for remote shards.
type StatsReply struct {
	Found                  bool
	Version                int64
	CacheHits, CacheMisses int64
	Workers                int
	Sealed                 bool
	// Epoch is the session's incarnation stamp; Fenced marks a deposed
	// post-failover copy (its epoch sits at or below its fence floor).
	Epoch  int64
	Fenced bool
	// FastPolls counts polls answered by the lock-free quiescent path.
	FastPolls int64
	// Publishes / Polls are the session's cumulative traffic counters —
	// the load signal the shard balancer ranks migration candidates by.
	Publishes, Polls int64
	// LastTraceID is the trace ID of the most recent traced publish or
	// mirror applied here (0 = none yet) — how trace propagation is
	// observed on owners, replicas, and post-failover promoted copies.
	LastTraceID uint64
}

// Stats reports a session's version and cache counters (RMI-compatible).
// Served entirely from atomics, so a fault-detection probe never blocks
// behind a long publish holding the session write lock.
func (m *Manager) Stats(args StatsArgs, reply *StatsReply) error {
	defer m.lockCoarse()()
	s := m.lookup(args.SessionID)
	if s == nil {
		return nil
	}
	ps := s.pub.Load()
	reply.Found = true
	reply.Version = ps.version
	reply.CacheHits, reply.CacheMisses = s.cacheHits.Load(), s.cacheMisses.Load()
	reply.Workers = len(ps.progress)
	reply.Sealed = s.sealed.Load()
	reply.Epoch = s.epoch.Load()
	reply.Fenced = s.fenced()
	reply.FastPolls = s.fastPolls.Load()
	reply.Publishes = s.publishes.Load()
	reply.Polls = s.polls.Load()
	reply.LastTraceID = s.lastTrace.Load()
	return nil
}

// SealArgs / SealReply toggle a session's handoff freeze directly —
// the cheap rollback when a migration fails after sealing the source
// (the source still holds all its state; only the seal needs lifting).
type SealArgs struct {
	SessionID string
	On        bool
}

// SealReply acknowledges a seal toggle.
type SealReply struct {
	Found bool
}

// Seal freezes or thaws a session without touching its state
// (RMI-compatible). The write lock orders the toggle against in-flight
// publishes: after Seal returns, every subsequent publish sees it.
func (m *Manager) Seal(args SealArgs, reply *SealReply) error {
	defer m.lockCoarse()()
	s := m.lookup(args.SessionID)
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.sealed.Store(args.On)
	s.mu.Unlock()
	reply.Found = true
	return nil
}

// DropArgs / DropReply are the RMI-shaped form of Drop.
type DropArgs struct {
	SessionID string
	// Tombstone frees the session's state but leaves an empty sealed
	// shell behind. A completed handoff drops the old owner's copy this
	// way: a publish that raced the migration must keep drawing
	// NeedFull here rather than re-creating an unsealed session whose
	// accepted snapshots nobody would ever poll. Teardown (plain drop)
	// reaps tombstones.
	Tombstone bool
}

// DropReply acknowledges a drop.
type DropReply struct{}

// DropSession removes a session entirely, or reduces it to a sealed
// tombstone (RMI-compatible Drop).
func (m *Manager) DropSession(args DropArgs, reply *DropReply) error {
	if !args.Tombstone {
		m.Drop(args.SessionID)
		return nil
	}
	defer m.lockCoarse()()
	// The shell keeps version 0, not the live version: a poll that
	// resolved this shard just before the routing flip would otherwise
	// read an empty tree stamped at the live version and fast-forward
	// its SinceVersion past everything the new owner imported. Version 0
	// makes such a straggler poll reset to a full refresh instead —
	// exactly what it would see if the session were already deleted.
	// CompareAndSwap (not Store) so a concurrent teardown Drop wins and
	// no empty shell lingers after it.
	if v, ok := m.sessions.Load(args.SessionID); ok {
		shell := newSessionState()
		shell.sealed.Store(true)
		// A fence floor outlives the state it fenced: the shell must
		// keep refusing the dead incarnation's stragglers and imports.
		shell.fence.Store(v.(*sessionState).fence.Load())
		if m.sessions.CompareAndSwap(args.SessionID, v, shell) {
			m.walAppend(&walRecord{Kind: walDrop, Session: args.SessionID, Tombstone: true})
		}
	}
	return nil
}

// SessionsArgs requests the session enumeration.
type SessionsArgs struct{}

// SessionsReply lists the sessions a manager currently holds.
type SessionsReply struct {
	SessionIDs []string
	// Loads carries each session's cumulative traffic counters, aligned
	// with SessionIDs — one probe gives the balancer the whole shard's
	// load picture instead of a Stats call per session.
	Loads []SessionLoad
}

// SessionLoad is one session's traffic summary in a SessionList reply.
type SessionLoad struct {
	SessionID        string
	Publishes, Polls int64
	Version          int64
}

// SessionList enumerates this manager's sessions, sorted, with their
// traffic counters (RMI-compatible) — the balancer's probe surface; the
// shard router tracks placement itself and does not depend on it.
// Lock-free: a long publish on any session never delays the
// enumeration.
func (m *Manager) SessionList(args SessionsArgs, reply *SessionsReply) error {
	defer m.lockCoarse()()
	m.sessions.Range(func(k, v any) bool {
		s := v.(*sessionState)
		reply.Loads = append(reply.Loads, SessionLoad{
			SessionID: k.(string),
			Publishes: s.publishes.Load(), Polls: s.polls.Load(),
			Version: s.pub.Load().version,
		})
		return true
	})
	sort.Slice(reply.Loads, func(i, j int) bool { return reply.Loads[i].SessionID < reply.Loads[j].SessionID })
	reply.SessionIDs = make([]string, len(reply.Loads))
	for i, l := range reply.Loads {
		reply.SessionIDs[i] = l.SessionID
	}
	return nil
}

// FlushArgs / FlushReply are the RMI-shaped form of FlushState, so
// upstream forwarding composes across shards on other nodes.
type FlushArgs struct {
	SessionID       string
	Since, LogSince int64
}

// FlushReply mirrors FlushState, including the backpressure hint.
type FlushReply struct {
	Delta       *aida.DeltaState
	Version     int64
	Done, Total int64
	Logs        []string
	Busy        bool
	QueueDepth  int
}

// Flush assembles a forwardable delta of everything that changed after
// args.Since (RMI-compatible FlushState).
func (m *Manager) Flush(args FlushArgs, reply *FlushReply) error {
	fs, err := m.FlushState(args.SessionID, args.Since, args.LogSince)
	if err != nil {
		return err
	}
	reply.Delta, reply.Version = fs.Delta, fs.Version
	reply.Done, reply.Total, reply.Logs = fs.Done, fs.Total, fs.Logs
	reply.Busy, reply.QueueDepth = fs.Busy, fs.QueueDepth
	return nil
}

// PollIndexStats reports how many polls were served off the change
// index vs by a full merged-tree walk. Polls answered by the lock-free
// quiescent path count in neither (see StatsReply.FastPolls).
func (m *Manager) PollIndexStats(sessionID string) (indexed, walked int64) {
	defer m.lockCoarse()()
	if s := m.lookup(sessionID); s != nil {
		return s.indexPolls.Load(), s.walkPolls.Load()
	}
	return 0, 0
}

// FastPolls reports how many polls a session answered on the lock-free
// quiescent fast path.
func (m *Manager) FastPolls(sessionID string) int64 {
	if s := m.lookup(sessionID); s != nil {
		return s.fastPolls.Load()
	}
	return 0
}

// SubMerger aggregates the engines of one group and forwards one
// combined pseudo-worker snapshot upstream (§2.5). It implements
// Publisher so engines can't tell it from the root manager. Flushes
// forward touched-only deltas through the shared snapshot Transport —
// cost proportional to what the group changed since the last flush —
// so multi-level hierarchies compose with the incremental pipeline
// instead of re-shipping the group's whole state every hop.
type SubMerger struct {
	name    string
	session string

	mu        sync.Mutex
	local     *Manager
	transport *Transport
	// lastFlushed is the local merged version covered by the last
	// accepted upstream flush; the next delta starts there.
	lastFlushed int64
	// FlushEvery forwards upstream after this many local publishes
	// (1 = every time; larger batches trade freshness for fan-in).
	FlushEvery int
	pending    int
	// FlushInterval also forwards when this much time has passed since
	// the last flush attempt, even if fewer than FlushEvery publishes
	// accumulated — the freshness floor for deep hierarchies with large
	// batches. Deadlines are enforced two ways: each incoming publish
	// checks them, and a background timer goroutine (started lazily by
	// the first publish, stopped by Close) fires them even when no
	// publish arrives, so the tail of a burst is pushed upstream without
	// waiting for the next publish. Each deadline carries ±20% jitter
	// (deterministically seeded from the group name) so co-scheduled
	// groups don't flush in lockstep and storm the upstream tier. 0
	// disables both; an entirely idle group sends nothing (there is
	// nothing new to send).
	FlushInterval time.Duration
	nextFlush     time.Time
	jrand         uint64           // xorshift state for deadline jitter
	clock         func() time.Time // test hook; nil = time.Now
	// ForwardFull republishes the whole merged tree on every flush —
	// the legacy behavior, retained as the A6 ablation baseline.
	ForwardFull bool
	// pressure is the upstream-backpressure level (0..maxFlushPressure):
	// each flush whose reply reports Busy raises it one step, each clear
	// reply lowers it, and the effective flush interval is the jittered
	// base shifted left by it — a contended parent sees flushes at up to
	// 1/8th the configured rate, each carrying a proportionally larger
	// batch (deltas accumulate; nothing is dropped).
	pressure int
	// Background flush timer state (see FlushInterval).
	timerOn bool
	closed  bool
	stop    chan struct{}
}

// NewSubMerger creates a group merger forwarding to upstream.
func NewSubMerger(name, sessionID string, upstream Publisher, flushEvery int) *SubMerger {
	if flushEvery <= 0 {
		flushEvery = 1
	}
	return &SubMerger{
		name: name, session: sessionID,
		local: NewManager(), transport: NewTransport(sessionID, name, upstream),
		FlushEvery: flushEvery,
	}
}

// SetCompression selects compressed wire frames for upstream flushes
// (a WAN-deployed group).
func (s *SubMerger) SetCompression(on bool) { s.transport.SetCompression(on) }

// Publish implements Publisher: merge locally, forward the group total.
func (s *SubMerger) Publish(args PublishArgs, reply *PublishReply) error {
	if err := s.local.Publish(args, reply); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending++
	s.ensureTimerLocked()
	if s.pending < s.FlushEvery && !s.intervalDueLocked() {
		return nil
	}
	s.pending = 0
	return s.flushLocked()
}

// ensureTimerLocked lazily starts the background flush goroutine once
// there is something it could ever flush. The fake-clock test hook
// drives deadlines synchronously through publishes, so the timer only
// runs on the real clock. Caller holds s.mu.
func (s *SubMerger) ensureTimerLocked() {
	if s.timerOn || s.closed || s.FlushInterval <= 0 || s.clock != nil {
		return
	}
	s.timerOn = true
	s.stop = make(chan struct{})
	go s.timerLoop(s.stop)
}

// timerLoop fires FlushInterval deadlines even when no publish arrives.
func (s *SubMerger) timerLoop(stop <-chan struct{}) {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		wait := s.FlushInterval
		// Chase the armed deadline only while something is pending; an
		// idle group's stale past deadline would otherwise clamp every
		// sleep to the 1ms floor and busy-spin until the next publish.
		if s.pending > 0 && !s.nextFlush.IsZero() {
			if until := time.Until(s.nextFlush); until < wait {
				wait = until
			}
		}
		s.mu.Unlock()
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		select {
		case <-stop:
			return
		case <-time.After(wait):
		}
		s.mu.Lock()
		if !s.closed && s.pending > 0 && s.intervalDueLocked() {
			pend := s.pending
			s.pending = 0
			if err := s.flushLocked(); err != nil {
				// Keep the tail flagged so the next deadline retries
				// (flushLocked already re-armed it); the transport has
				// marked itself for a full re-baseline, so nothing is
				// lost — without this a burst tail whose flush failed
				// once would sit here until the next publish, which
				// after the end of a run never comes.
				s.pending = pend
			}
		}
		s.mu.Unlock()
	}
}

// Close stops the background flush timer. It does not force a final
// flush — call Flush first when the tail matters. Publishes after Close
// still merge and flush on the publish-driven checks.
func (s *SubMerger) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.stop != nil {
		close(s.stop)
	}
}

// intervalDueLocked reports whether the jittered flush deadline passed.
// Caller holds s.mu.
func (s *SubMerger) intervalDueLocked() bool {
	if s.FlushInterval <= 0 {
		return false
	}
	now := s.nowLocked()
	if s.nextFlush.IsZero() {
		s.nextFlush = now.Add(s.jitteredIntervalLocked())
		return false
	}
	return !now.Before(s.nextFlush)
}

func (s *SubMerger) nowLocked() time.Time {
	if s.clock != nil {
		return s.clock()
	}
	return time.Now()
}

// jitteredIntervalLocked draws FlushInterval ±20% from a per-group
// xorshift stream seeded by the group name, so deadlines are stable
// across runs but decorrelated across groups. Caller holds s.mu.
func (s *SubMerger) jitteredIntervalLocked() time.Duration {
	if s.jrand == 0 {
		h := uint64(14695981039346656037) // FNV-1a offset basis
		for i := 0; i < len(s.name); i++ {
			h = (h ^ uint64(s.name[i])) * 1099511628211
		}
		s.jrand = h | 1
	}
	s.jrand ^= s.jrand << 13
	s.jrand ^= s.jrand >> 7
	s.jrand ^= s.jrand << 17
	frac := float64(s.jrand%1024)/1024*0.4 - 0.2
	return time.Duration((1 + frac) * float64(s.FlushInterval))
}

// Flush forces the group snapshot upstream (end of run).
func (s *SubMerger) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

// maxFlushPressure caps the backpressure widening at 2^3 = 8× the
// configured flush interval.
const maxFlushPressure = 3

func (s *SubMerger) flushLocked() error {
	if s.FlushInterval > 0 {
		// Re-arm on every attempt (success or not) so a failing upstream
		// doesn't turn each publish into a retry storm. Deferred so the
		// deadline reflects the pressure level this flush's reply just
		// taught us.
		defer func() {
			s.nextFlush = s.nowLocked().Add(s.jitteredIntervalLocked() << uint(s.pressure))
		}()
	}
	var covered int64
	reply, err := s.transport.Send(func(full bool) (Snapshot, error) {
		if s.ForwardFull {
			return s.fullSnapshotLocked(&covered)
		}
		since := s.lastFlushed
		if full {
			since = 0
		}
		fs, err := s.local.FlushState(s.session, since, s.lastFlushed)
		if err != nil {
			return Snapshot{}, err
		}
		covered = fs.Version
		return Snapshot{
			Delta: fs.Delta, Done: fs.Done, Total: fs.Total,
			Log: strings.Join(fs.Logs, "\n"),
		}, nil
	})
	if err != nil {
		return err
	}
	switch {
	case reply.Busy && s.pressure < maxFlushPressure:
		s.pressure++
	case !reply.Busy && s.pressure > 0:
		s.pressure--
	}
	if reply.Accepted {
		s.lastFlushed = covered
	}
	return nil
}

// Pressure reports the current upstream-backpressure level (0 = none;
// each level doubles the effective flush interval).
func (s *SubMerger) Pressure() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pressure
}

// fullSnapshotLocked builds the legacy whole-tree flush payload.
func (s *SubMerger) fullSnapshotLocked(covered *int64) (Snapshot, error) {
	tree, ver, err := s.local.MergedTree(s.session)
	if err != nil {
		return Snapshot{}, err
	}
	st, err := tree.State()
	if err != nil {
		return Snapshot{}, err
	}
	fs, err := s.local.FlushState(s.session, ver, s.lastFlushed)
	if err != nil {
		return Snapshot{}, err
	}
	*covered = ver
	return Snapshot{
		Tree: st, Done: fs.Done, Total: fs.Total,
		Log: strings.Join(fs.Logs, "\n"),
	}, nil
}
