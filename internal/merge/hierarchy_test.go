package merge

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/ipa-grid/ipa/internal/aida"
)

// capturePublisher records every upstream publish for inspection.
type capturePublisher struct {
	inner Publisher
	args  []PublishArgs
}

func (c *capturePublisher) Publish(args PublishArgs, reply *PublishReply) error {
	c.args = append(c.args, args)
	if c.inner != nil {
		return c.inner.Publish(args, reply)
	}
	reply.Accepted = true
	return nil
}

// flakyPublisher fails the next `failures` publishes, then delegates.
type flakyPublisher struct {
	inner    Publisher
	failures int
}

func (f *flakyPublisher) Publish(args PublishArgs, reply *PublishReply) error {
	if f.failures > 0 {
		f.failures--
		return errors.New("injected transport failure")
	}
	return f.inner.Publish(args, reply)
}

// TestSubMergerForwardsTouchedOnlyDeltas is the direct check on the
// delta-forwarding contract: after the baseline, a flush carries only
// the paths the group touched since the previous flush.
func TestSubMergerForwardsTouchedOnlyDeltas(t *testing.T) {
	root := NewManager()
	cap := &capturePublisher{inner: root}
	sub := NewSubMerger("g", "s", cap, 1)

	tree := aida.NewTree()
	h1, _ := tree.H1D("/a", "h1", "", 10, 0, 10)
	h2, _ := tree.H1D("/a", "h2", "", 10, 0, 10)
	h1.Fill(1)
	h2.Fill(2)
	pub := func(seq int64) {
		t.Helper()
		d, err := tree.Delta()
		if err != nil {
			t.Fatal(err)
		}
		var rep PublishReply
		if err := sub.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: seq, Delta: d}, &rep); err != nil {
			t.Fatal(err)
		}
	}
	pub(1)
	if n := len(cap.args); n != 1 {
		t.Fatalf("flushes after baseline = %d", n)
	}
	if d := cap.args[0].Delta; d == nil || !d.Full || len(d.Entries) != 2 {
		t.Fatalf("baseline flush = %+v", cap.args[0].Delta)
	}

	// Touch only h1: the next flush must forward exactly that path.
	h1.Fill(3)
	pub(2)
	d := cap.args[1].Delta
	if d == nil || d.Full {
		t.Fatalf("second flush not an incremental delta: %+v", d)
	}
	if len(d.Entries) != 1 || d.Entries[0].Path != "/a/h1" || len(d.Removed) != 0 {
		t.Fatalf("touched-only delta = entries %+v removed %v", d.Entries, d.Removed)
	}

	// Remove h2: the flush must carry the removal, not a full tree.
	tree.Rm("/a/h2")
	pub(3)
	d = cap.args[2].Delta
	if d.Full || len(d.Entries) != 0 || !reflect.DeepEqual(d.Removed, []string{"/a/h2"}) {
		t.Fatalf("removal delta = %+v", d)
	}
}

// TestSubMergerForwardsLogsOnce: log lines collected from the group ride
// each flush exactly once instead of being dropped at the tier.
func TestSubMergerForwardsLogsOnce(t *testing.T) {
	root := NewManager()
	sub := NewSubMerger("g", "s", root, 1)
	tree := aida.NewTree()
	h, _ := tree.H1D("/a", "h", "", 10, 0, 10)
	h.Fill(1)
	d, _ := tree.Delta()
	var rep PublishReply
	if err := sub.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 1, Delta: d, Log: "found peak"}, &rep); err != nil {
		t.Fatal(err)
	}
	var p1 PollReply
	root.Poll(PollArgs{SessionID: "s"}, &p1)
	if len(p1.Logs) != 1 || !strings.Contains(p1.Logs[0], "found peak") {
		t.Fatalf("logs at root = %v", p1.Logs)
	}
	h.Fill(2)
	d, _ = tree.Delta()
	if err := sub.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 2, Delta: d}, &rep); err != nil {
		t.Fatal(err)
	}
	var p2 PollReply
	root.Poll(PollArgs{SessionID: "s", SinceVersion: p1.Version}, &p2)
	if len(p2.Logs) != 0 {
		t.Fatalf("log delivered twice upstream: %v", p2.Logs)
	}
}

// TestTransportResyncsAfterFailure: a failed send consumes the delta's
// dirty bits, so the next send must be a full baseline.
func TestTransportResyncsAfterFailure(t *testing.T) {
	root := NewManager()
	flaky := &flakyPublisher{inner: root}
	tr := NewTransport("s", "w", flaky)
	send := func(d *aida.DeltaState) (PublishReply, error) {
		return tr.Send(func(full bool) (Snapshot, error) {
			if full != d.Full {
				t.Fatalf("transport asked full=%v, builder made full=%v", full, d.Full)
			}
			return Snapshot{Delta: d}, nil
		})
	}
	tree := aida.NewTree()
	h, _ := tree.H1D("/a", "h", "", 10, 0, 10)
	h.Fill(1)
	d, _ := tree.Delta()
	if _, err := send(d); err != nil {
		t.Fatal(err)
	}
	// This delta is lost in transit.
	h.Fill(2)
	flaky.failures = 1
	d, _ = tree.Delta()
	if _, err := send(d); err == nil {
		t.Fatal("injected failure not reported")
	}
	// The transport must now demand a baseline; honoring it recovers the
	// lost fill.
	h.Fill(3)
	full, _ := tree.FullDelta()
	rep, err := send(full)
	if err != nil || !rep.Accepted {
		t.Fatalf("baseline after failure: %v %+v", err, rep)
	}
	var poll PollReply
	root.Poll(PollArgs{SessionID: "s"}, &poll)
	obj, _ := poll.Entries[0].Restore()
	if got := obj.(*aida.Histogram1D).Entries(); got != 3 {
		t.Fatalf("entries after resync = %d, want 3", got)
	}
}

// hierWorker drives one simulated engine publishing dyadic-rational
// fills (exact under float addition in any order, so flat and
// hierarchical merges must agree bit-for-bit).
type hierWorker struct {
	id   string
	tree *aida.Tree
	seq  int64
}

func (w *hierWorker) publish(t *testing.T, to Publisher, full bool) {
	t.Helper()
	var d *aida.DeltaState
	var err error
	if full {
		d, err = w.tree.FullDelta()
	} else {
		d, err = w.tree.Delta()
	}
	if err != nil {
		t.Fatal(err)
	}
	w.seq++
	var rep PublishReply
	err = to.Publish(PublishArgs{SessionID: "s", WorkerID: w.id, Seq: w.seq, Delta: d}, &rep)
	if err != nil && !strings.Contains(err.Error(), "injected") {
		t.Fatal(err)
	}
	if rep.NeedFull {
		// Feed the baseline immediately, like the engine transport does.
		w.publish(t, to, true)
	}
}

// TestHierarchyDeltaMatchesFlatMerge is the hierarchy-equivalence
// property test: a 2-level delta-forwarding SubMerger tree must
// converge to the same merged state as a flat single-manager merge
// under randomized fills, removals, rewinds, and injected upstream
// failures that force mid-stream NeedFull resyncs.
func TestHierarchyDeltaMatchesFlatMerge(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			flat := NewManager()
			root := NewManager()
			flaky := &flakyPublisher{inner: root}
			groups := []*SubMerger{
				NewSubMerger("g0", "s", flaky, 1),
				NewSubMerger("g1", "s", flaky, 1),
			}
			workers := make([]*hierWorker, 4)
			// Workers publish twice: to the flat reference manager and
			// into their group's SubMerger. Two trees per worker keep the
			// dirty-bit streams independent.
			flatTwins := make([]*hierWorker, 4)
			for i := range workers {
				workers[i] = &hierWorker{id: fmt.Sprintf("w%d", i), tree: aida.NewTree()}
				flatTwins[i] = &hierWorker{id: fmt.Sprintf("w%d", i), tree: aida.NewTree()}
			}
			paths := []string{"/h/mass", "/h/pt", "/a/b/mult"}
			fill := func(i int) {
				path := paths[rng.Intn(len(paths))]
				// Dyadic-rational positions and weights: sums are exact,
				// so merge order cannot perturb low bits.
				x := float64(rng.Intn(48))/4 - 1
				n := rng.Intn(12) + 1
				for _, w := range []*hierWorker{workers[i], flatTwins[i]} {
					obj := w.tree.Get(path)
					if obj == nil {
						h := aida.NewHistogram1D(leafName(path), "", 12, -1, 11)
						if err := w.tree.PutAt(path, h); err != nil {
							t.Fatal(err)
						}
						obj = h
					}
					for k := 0; k < n; k++ {
						obj.(*aida.Histogram1D).FillW(x, 0.5)
					}
				}
			}
			rm := func(i int) {
				path := paths[rng.Intn(len(paths))]
				workers[i].tree.Rm(path)
				flatTwins[i].tree.Rm(path)
			}
			pub := func(i int) {
				workers[i].publish(t, groups[i/2], false)
				flatTwins[i].publish(t, flat, false)
			}
			for step := 0; step < 160; step++ {
				i := rng.Intn(len(workers))
				switch op := rng.Intn(12); {
				case op < 7:
					fill(i)
					pub(i)
				case op < 9: // accumulate without publishing
					fill(i)
				case op == 9: // removal
					rm(i)
					pub(i)
				case op == 10: // rewind: fresh tree, baseline next publish
					workers[i].tree = aida.NewTree()
					flatTwins[i].tree = aida.NewTree()
					fill(i)
					pub(i)
				default: // drop the next upstream flush → NeedFull resync
					flaky.failures = 1
					fill(i)
					pub(i)
				}
				if step%20 == 19 {
					for _, g := range groups {
						if err := g.Flush(); err != nil && !strings.Contains(err.Error(), "injected") {
							t.Fatal(err)
						}
					}
					got, want := pollEntries(t, root), pollEntries(t, flat)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("step %d: hierarchy diverged from flat merge\n got: %v\nwant: %v",
							step, keys(got), keys(want))
					}
				}
			}
			flaky.failures = 0
			for _, g := range groups {
				if err := g.Flush(); err != nil {
					t.Fatal(err)
				}
			}
			got, want := pollEntries(t, root), pollEntries(t, flat)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("final hierarchy state diverged:\n got %v\nwant %v", keys(got), keys(want))
			}
		})
	}
}

// TestPollEncodeCache verifies the encoded-frame cache: identical polls
// share one encode, delta applies invalidate exactly the touched paths,
// and the ablation switch disables reuse.
func TestPollEncodeCache(t *testing.T) {
	m := NewManager()
	tree := aida.NewTree()
	h1, _ := tree.H1D("/a", "h1", "", 10, 0, 10)
	h2, _ := tree.H1D("/a", "h2", "", 10, 0, 10)
	h1.Fill(1)
	h2.Fill(2)
	d, _ := tree.Delta()
	var rep PublishReply
	if err := m.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 1, Delta: d}, &rep); err != nil {
		t.Fatal(err)
	}
	poll := func() PollReply {
		t.Helper()
		var reply PollReply
		if err := m.Poll(PollArgs{SessionID: "s", Full: true}, &reply); err != nil {
			t.Fatal(err)
		}
		return reply
	}
	first := poll()
	if hits, misses := m.CacheStats("s"); hits != 0 || misses != 2 {
		t.Fatalf("after cold poll: hits=%d misses=%d", hits, misses)
	}
	second := poll()
	if hits, misses := m.CacheStats("s"); hits != 2 || misses != 2 {
		t.Fatalf("after warm poll: hits=%d misses=%d", hits, misses)
	}
	// Served frames must be byte-identical across hit and miss.
	if !reflect.DeepEqual(first.Entries, second.Entries) {
		t.Fatal("cached entries differ from freshly encoded ones")
	}
	// A delta touching h1 invalidates only h1's frame.
	h1.Fill(5)
	d, _ = tree.Delta()
	if err := m.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 2, Delta: d}, &rep); err != nil {
		t.Fatal(err)
	}
	third := poll()
	if hits, misses := m.CacheStats("s"); hits != 3 || misses != 3 {
		t.Fatalf("after invalidating poll: hits=%d misses=%d", hits, misses)
	}
	for _, e := range third.Entries {
		obj, err := e.Restore()
		if err != nil {
			t.Fatal(err)
		}
		want := int64(1)
		if e.Path == "/a/h1" {
			want = 2
		}
		if got := obj.(*aida.Histogram1D).Entries(); got != want {
			t.Fatalf("%s entries = %d, want %d", e.Path, got, want)
		}
	}
	// Removal drops the cached frame.
	tree.Rm("/a/h2")
	d, _ = tree.Delta()
	if err := m.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 3, Delta: d}, &rep); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.lookup("s").frames.Load("/a/h2"); ok {
		t.Fatal("removed path still cached")
	}

	// Ablation baseline: with the cache disabled every poll re-encodes.
	m2 := NewManager()
	m2.DisableEncodeCache = true
	tree2 := aida.NewTree()
	g, _ := tree2.H1D("/a", "g", "", 10, 0, 10)
	g.Fill(1)
	d2, _ := tree2.Delta()
	if err := m2.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 1, Delta: d2}, &rep); err != nil {
		t.Fatal(err)
	}
	var r1, r2 PollReply
	m2.Poll(PollArgs{SessionID: "s", Full: true}, &r1)
	m2.Poll(PollArgs{SessionID: "s", Full: true}, &r2)
	if hits, misses := m2.CacheStats("s"); hits != 0 || misses != 2 {
		t.Fatalf("disabled cache: hits=%d misses=%d", hits, misses)
	}
}
