// Replication surface: a shard router mirrors every accepted publish to
// a replica shard, which keeps a warm standby copy of the session by
// applying the same generation-stamped deltas — the SubMerger uplink
// machinery pointed sideways instead of upward. The replica stores each
// worker's delta tail without decoding it (Mirror is append-mostly, so
// synchronous mirroring stays cheap on the publish path) and only
// materializes trees when the tail grows long, when the copy is
// exported, or at Promote — the failover moment, when the standby
// becomes the session's live incarnation under a freshly bumped epoch.
//
// Epoch fencing closes the split-brain window: Fence records a floor
// epoch per session, and publishes, mirrors, and imports whose
// incarnation is at or below the floor are refused. Promotion fences
// the promoted copy against its dead ancestor's epoch, and the router
// best-effort self-fences the old primary, so a zombie shard can
// neither accept straggler publishes nor resurrect stale state into the
// promoted copy.

package merge

import (
	"errors"
	"fmt"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/obs"
)

// ErrFenced rejects writes against a session incarnation at or below
// its recorded fence floor — a straggler publish to a deposed primary,
// or a stale import trying to resurrect pre-failover state.
var ErrFenced = errors.New("merge: session incarnation fenced after failover")

// mirrorPendingMax bounds a worker's stored delta tail; past it the
// tail is materialized inline (amortized, so Mirror stays cheap).
const mirrorPendingMax = 64

// MirrorArgs is one accepted publish forwarded to the session's replica
// shard: the same worker delta, seq, and progress the primary applied,
// plus the primary's incarnation stamp so a mirror from a deposed
// primary is recognizably stale.
type MirrorArgs struct {
	SessionID string
	WorkerID  string
	Seq       int64
	// Epoch is the primary's session incarnation at the mirrored
	// publish; the replica adopts it and refuses mirrors from older
	// incarnations (or any at/below its fence floor).
	Epoch int64
	// Version is the primary's session version after the publish; the
	// replica's version tracks it so observers can watch the standby
	// catch up.
	Version int64
	Delta   *aida.DeltaState
	// Progress and logs ride along so a promoted copy serves the same
	// status panel the primary did.
	EventsDone  int64
	EventsTotal int64
	Log         string
	// Trace is the mirrored publish's trace context, forwarded from the
	// primary so the same trace ID is observable on the replica (and on
	// whatever that replica is later promoted into). Old gob peers
	// silently drop the field.
	Trace obs.TraceContext
}

// TraceCtx implements obs.Carrier (see PublishArgs.TraceCtx).
func (a MirrorArgs) TraceCtx() obs.TraceContext { return a.Trace }

// SetTraceCtx implements obs.Setter (see PublishArgs.SetTraceCtx).
func (a *MirrorArgs) SetTraceCtx(t obs.TraceContext) { a.Trace = t }

// MirrorReply acknowledges a mirrored publish.
type MirrorReply struct {
	Accepted bool
	// NeedFull asks the router to re-baseline the replica from the
	// primary (Export → Import): the replica has no baseline for this
	// worker or the delta tail has a gap.
	NeedFull bool
	Version  int64
}

// Mirror applies one forwarded publish to the session's standby copy
// (RMI-compatible). The delta is seq-checked exactly like a publish but
// stored undecoded on the worker's pending tail; Promote (or a long
// tail, or an Export) materializes it. A gap or missing baseline
// answers NeedFull and the router re-baselines the whole copy via
// Export/Import — the same resync contract every transport honors.
func (m *Manager) Mirror(args MirrorArgs, reply *MirrorReply) error {
	if args.SessionID == "" || args.WorkerID == "" {
		return fmt.Errorf("merge: mirror needs session and worker IDs")
	}
	if args.Delta == nil {
		return fmt.Errorf("merge: mirror from %s carries no delta", args.WorkerID)
	}
	defer m.lockCoarse()()
	s := m.session(args.SessionID)
	s.mu.Lock()
	defer s.mu.Unlock()
	reply.Version = s.version
	if f := s.fence.Load(); f > 0 && (args.Epoch == 0 || args.Epoch <= f) {
		return ErrFenced
	}
	if s.sealed.Load() {
		reply.NeedFull = true
		return nil
	}
	virgin := s.version == 0 && len(s.workers) == 0
	if virgin && args.Epoch != 0 {
		s.epoch.Store(args.Epoch)
	}
	if !virgin && args.Epoch != 0 && args.Epoch != s.epoch.Load() {
		// A different incarnation than the copy we hold (the primary
		// re-imported elsewhere, or this copy was promoted and the
		// mirror is from its deposed ancestor racing the fence). Ask
		// for a re-baseline: the import carries the right epoch, or is
		// itself fenced off.
		reply.NeedFull = true
		return nil
	}
	d := args.Delta
	w := s.worker(args.WorkerID)
	hasBase := w.tree != nil || len(w.pending) > 0
	if !d.Full {
		if args.Seq <= w.seq && hasBase {
			// Stale or duplicate mirror retry: already incorporated —
			// including via a seeding Import that raced this mirror, so
			// the traced publish is in this copy and its trace is noted.
			if args.Trace.Valid() {
				s.lastTrace.Store(args.Trace.TraceID)
			}
			return nil
		}
		if !hasBase || args.Seq != w.seq+1 {
			reply.NeedFull = true
			return nil
		}
	} else if hasBase && args.Seq <= w.seq && args.Seq != 0 {
		if args.Trace.Valid() {
			s.lastTrace.Store(args.Trace.TraceID)
		}
		return nil
	}
	if d.Full {
		// A full baseline supersedes everything queued before it.
		w.pending = w.pending[:0]
		w.tree = nil
	}
	w.pending = append(w.pending, d)
	if len(w.pending) >= mirrorPendingMax {
		if err := w.materialize(); err != nil {
			return err
		}
	}
	w.seq = args.Seq
	w.done, w.total = args.EventsDone, args.EventsTotal
	if args.Version > s.version {
		s.version = args.Version
	}
	s.appendLog(args.Log)
	s.commitLocked()
	if args.Trace.Valid() {
		s.lastTrace.Store(args.Trace.TraceID)
	}
	reply.Accepted = true
	reply.Version = s.version
	return m.walAppend(&walRecord{Kind: walMirror, Mirror: &args})
}

// materialize folds the worker's pending delta tail into its retained
// tree. Caller holds the session write lock.
func (w *workerState) materialize() error {
	for _, d := range w.pending {
		dst := w.tree
		if d.Full {
			dst = aida.NewTree()
		} else if dst == nil {
			return fmt.Errorf("merge: mirrored delta tail has no baseline")
		}
		for _, e := range d.Entries {
			obj, err := e.Object.Restore()
			if err != nil {
				return fmt.Errorf("merge: materializing mirrored delta at %q: %w", e.Path, err)
			}
			if err := dst.PutAt(e.Path, obj); err != nil {
				return err
			}
		}
		if d.Full {
			w.tree = dst
		} else {
			for _, p := range d.Removed {
				w.tree.Rm(p)
			}
		}
	}
	w.pending = nil
	return nil
}

// PromoteArgs turns a session's standby copy into its live incarnation.
type PromoteArgs struct {
	SessionID string
	// Epoch, when above the copy's current stamp, is used as the
	// promoted epoch instead of generating a fresh one — how log replay
	// reproduces the exact incarnation clients already saw. Zero (the
	// live-failover case) always generates.
	Epoch int64
}

// PromoteReply reports the promoted incarnation.
type PromoteReply struct {
	// Found is false when there is nothing worth promoting here (no
	// session, or an empty shell) — the router then falls back to the
	// lossy eviction path.
	Found   bool
	Version int64
	// Epoch is the promoted copy's freshly bumped incarnation stamp;
	// clients full-resync on it.
	Epoch int64
	// PrevEpoch is the incarnation the copy mirrored — the dead
	// primary's stamp, which the router uses to fence stragglers.
	PrevEpoch int64
}

// Promote makes the standby copy live (RMI-compatible): every worker's
// pending delta tail is materialized, the merged tree is rebuilt, and
// the session gets a bumped epoch so every client discards its mirror
// and full-resyncs. The previous epoch becomes the session's fence
// floor: no mirror or import from the dead ancestor's incarnation can
// ever overwrite the promoted state.
func (m *Manager) Promote(args PromoteArgs, reply *PromoteReply) error {
	defer m.lockCoarse()()
	s := m.lookup(args.SessionID)
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.version == 0 {
		// An empty shell: a tombstone, or a copy that never got a
		// baseline (NeedFull-answered mirrors leave empty worker shells
		// behind). Promoting it would "recover" nothing — report not
		// found so the router records the session as lost instead of
		// flipping routing onto vacuum.
		return nil
	}
	for _, id := range s.workerIDs {
		if err := s.workers[id].materialize(); err != nil {
			return err
		}
	}
	prev := s.epoch.Load()
	next := args.Epoch
	if next <= prev {
		next = sessionEpoch.Add(1)
		if next <= prev {
			// Epoch seeds are process-start stamps, so values from
			// another manager's process are not globally ordered; the
			// fence only needs per-session monotonicity, which this
			// restores.
			next = prev + 1
		}
	}
	s.epoch.Store(next)
	if prev > s.fence.Load() {
		s.fence.Store(prev)
	}
	s.sealed.Store(false)
	s.version++
	s.dirty = true
	if err := s.remerge(); err != nil {
		return err
	}
	s.commitLocked()
	reply.Found = true
	reply.Version = s.version
	reply.Epoch, reply.PrevEpoch = next, prev
	return m.walAppend(&walRecord{Kind: walPromote, Session: args.SessionID, Epoch: next})
}

// FenceArgs records a fence floor for a session: state at or below
// Epoch is refused on every write surface. Epoch 0 self-fences the
// session at its own current incarnation — the call a router makes
// against a deposed primary so its copy can neither accept straggler
// publishes nor be exported over the promoted incarnation.
type FenceArgs struct {
	SessionID string
	Epoch     int64
}

// FenceReply reports the resulting fence floor.
type FenceReply struct {
	Found bool
	Epoch int64
}

// Fence raises a session's fence floor (RMI-compatible). Floors only
// ever rise. A self-fence (Epoch 0) of an unknown session is a no-op;
// an explicit floor creates a fenced shell so even a resurrection via
// late import is refused.
func (m *Manager) Fence(args FenceArgs, reply *FenceReply) error {
	if args.SessionID == "" {
		return errors.New("merge: fence needs a session ID")
	}
	defer m.lockCoarse()()
	s := m.lookup(args.SessionID)
	if s == nil {
		if args.Epoch == 0 {
			return nil
		}
		s = m.session(args.SessionID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	floor := args.Epoch
	if floor == 0 {
		floor = s.epoch.Load()
	}
	if floor > s.fence.Load() {
		s.fence.Store(floor)
	}
	reply.Found = true
	reply.Epoch = s.fence.Load()
	return m.walAppend(&walRecord{Kind: walFence, Session: args.SessionID, Epoch: floor})
}

// Epoch reports a session's current incarnation stamp (0 for unknown
// sessions). Lock-free.
func (m *Manager) Epoch(sessionID string) int64 {
	if s := m.lookup(sessionID); s != nil {
		return s.epoch.Load()
	}
	return 0
}

// fenced reports whether the session's current incarnation sits at or
// below its fence floor — a deposed copy that must refuse writes and
// answer polls like an unknown session. Lock-free.
func (s *sessionState) fenced() bool {
	f := s.fence.Load()
	return f > 0 && s.epoch.Load() <= f
}
