package merge

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ipa-grid/ipa/internal/aida"
)

// lockTestPublish drives `workers` delta-publishing transports for one
// session through `rounds` fills each, concurrently.
func lockTestPublish(t *testing.T, m Publisher, sid string, workers, rounds, objects int) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			tree := aida.NewTree()
			hists := make([]*aida.Histogram1D, objects)
			for o := range hists {
				h, err := tree.H1D("/a", fmt.Sprintf("h%02d", o), "", 100, 0, 100)
				if err != nil {
					t.Error(err)
					return
				}
				hists[o] = h
			}
			tr := NewTransport(sid, fmt.Sprintf("w%02d", w), m)
			for r := 0; r < rounds; r++ {
				hists[r%objects].Fill(float64((w*31 + r) % 100))
				_, err := tr.Send(func(full bool) (Snapshot, error) {
					if full {
						d, err := tree.FullDelta()
						return Snapshot{Delta: d}, err
					}
					d, err := tree.Delta()
					return Snapshot{Delta: d}, err
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	return &wg
}

// lockTestReference rebuilds the deterministic final merged state: the
// merge is additive over each worker's final tree, independent of
// publish interleaving.
func lockTestReference(t *testing.T, sid string, workers, rounds, objects int) *Manager {
	t.Helper()
	ref := NewManager()
	for w := 0; w < workers; w++ {
		tree := aida.NewTree()
		hists := make([]*aida.Histogram1D, objects)
		for o := range hists {
			h, err := tree.H1D("/a", fmt.Sprintf("h%02d", o), "", 100, 0, 100)
			if err != nil {
				t.Fatal(err)
			}
			hists[o] = h
		}
		for r := 0; r < rounds; r++ {
			hists[r%objects].Fill(float64((w*31 + r) % 100))
		}
		d, err := tree.FullDelta()
		if err != nil {
			t.Fatal(err)
		}
		var rep PublishReply
		if err := ref.Publish(PublishArgs{
			SessionID: sid, WorkerID: fmt.Sprintf("w%02d", w), Seq: 1, Delta: d,
		}, &rep); err != nil {
			t.Fatal(err)
		}
	}
	return ref
}

// pollEntries decodes a full poll into path → histogram entry count.
func entryCounts(t *testing.T, m *Manager, sid string) map[string]int64 {
	t.Helper()
	var reply PollReply
	if err := m.Poll(PollArgs{SessionID: sid, Full: true}, &reply); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]int64, len(reply.Entries))
	for _, e := range reply.Entries {
		obj, err := e.Restore()
		if err != nil {
			t.Fatal(err)
		}
		out[e.Path] = obj.(*aida.Histogram1D).Entries()
	}
	return out
}

// TestConcurrentPublishPollEquivalence hammers one manager with
// concurrent multi-session publishers and pollers (run under -race) and
// asserts the reader invariants of the fine-grained locking model:
// poll versions are monotonic per client, a quiescent re-poll at the
// returned version reports nothing new (the lock-free fast path never
// serves a version ahead of visible state), and the final merged state
// equals a sequentially-built reference.
func TestConcurrentPublishPollEquivalence(t *testing.T) {
	const sessions, workers, rounds, objects, pollers = 4, 3, 40, 6, 2
	for _, coarse := range []bool{false, true} {
		t.Run(fmt.Sprintf("coarse=%v", coarse), func(t *testing.T) {
			m := NewManager()
			m.CoarseLocking = coarse
			var pubWGs []*sync.WaitGroup
			for s := 0; s < sessions; s++ {
				pubWGs = append(pubWGs, lockTestPublish(t, m, fmt.Sprintf("sess-%d", s), workers, rounds, objects))
			}
			var done atomic.Bool
			var pollWG sync.WaitGroup
			for s := 0; s < sessions; s++ {
				sid := fmt.Sprintf("sess-%d", s)
				for p := 0; p < pollers; p++ {
					pollWG.Add(1)
					go func() {
						defer pollWG.Done()
						var since int64
						for !done.Load() {
							var reply PollReply
							if err := m.Poll(PollArgs{SessionID: sid, SinceVersion: since}, &reply); err != nil {
								t.Error(err)
								return
							}
							if reply.Version < since {
								t.Errorf("poll version regressed %d → %d", since, reply.Version)
								return
							}
							// Quiescent re-poll at the version just served:
							// the fast path must not report that version as
							// carrying anything new.
							var again PollReply
							if err := m.Poll(PollArgs{SessionID: sid, SinceVersion: reply.Version}, &again); err != nil {
								t.Error(err)
								return
							}
							if again.Version == reply.Version && again.Changed {
								t.Errorf("version %d served entries on a quiescent re-poll", reply.Version)
								return
							}
							since = reply.Version
						}
					}()
				}
			}
			for _, wg := range pubWGs {
				wg.Wait()
			}
			done.Store(true)
			pollWG.Wait()
			if t.Failed() {
				return
			}
			for s := 0; s < sessions; s++ {
				sid := fmt.Sprintf("sess-%d", s)
				ref := lockTestReference(t, sid, workers, rounds, objects)
				got, want := entryCounts(t, m, sid), entryCounts(t, ref, sid)
				if len(got) != len(want) {
					t.Fatalf("%s: %d merged paths, want %d", sid, len(got), len(want))
				}
				for path, n := range want {
					if got[path] != n {
						t.Fatalf("%s %s: %d entries, want %d", sid, path, got[path], n)
					}
				}
			}
			if !coarse {
				// Deterministically exercise the lock-free path now that
				// the session is quiescent: a poll at the current version
				// must be answered by it.
				before := m.FastPolls("sess-0")
				cur := m.Version("sess-0")
				var reply PollReply
				if err := m.Poll(PollArgs{SessionID: "sess-0", SinceVersion: cur}, &reply); err != nil {
					t.Fatal(err)
				}
				if reply.Version != cur || reply.Changed {
					t.Fatalf("quiescent poll = %+v, want unchanged at %d", reply, cur)
				}
				if got := m.FastPolls("sess-0"); got != before+1 {
					t.Fatalf("fast polls %d → %d: quiescent poll missed the lock-free path", before, got)
				}
			}
		})
	}
}

// TestReadPathsNeverBlockBehindWriteLock pins the satellite guarantee:
// Stats, Version, CacheStats, SessionList, and quiescent polls are
// served without the per-session write lock, so a long publish cannot
// delay a fault-detection probe.
func TestReadPathsNeverBlockBehindWriteLock(t *testing.T) {
	m := NewManager()
	tree := aida.NewTree()
	h, _ := tree.H1D("/a", "h", "", 10, 0, 10)
	h.Fill(1)
	d, err := tree.FullDelta()
	if err != nil {
		t.Fatal(err)
	}
	var rep PublishReply
	if err := m.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 1, Delta: d}, &rep); err != nil {
		t.Fatal(err)
	}

	// Simulate a long publish: hold the session write lock while the
	// read surface is probed.
	s := m.lookup("s")
	s.mu.Lock()
	defer s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		var sr StatsReply
		if err := m.Stats(StatsArgs{SessionID: "s"}, &sr); err != nil || !sr.Found {
			t.Errorf("stats under write lock: %+v err=%v", sr, err)
		}
		if sr.Version != rep.Version || sr.Workers != 1 {
			t.Errorf("stats = %+v, want version %d workers 1", sr, rep.Version)
		}
		if v := m.Version("s"); v != rep.Version {
			t.Errorf("Version = %d, want %d", v, rep.Version)
		}
		m.CacheStats("s")
		var sl SessionsReply
		if err := m.SessionList(SessionsArgs{}, &sl); err != nil || len(sl.SessionIDs) != 1 {
			t.Errorf("session list under write lock = %+v err=%v", sl, err)
		}
		// Quiescent poll: the lock-free fast path.
		var pr PollReply
		if err := m.Poll(PollArgs{SessionID: "s", SinceVersion: rep.Version}, &pr); err != nil {
			t.Error(err)
		}
		if pr.Version != rep.Version || pr.Changed {
			t.Errorf("fast-path poll = %+v", pr)
		}
		if len(pr.Progress) != 1 || pr.Progress[0].WorkerID != "w" {
			t.Errorf("fast-path poll progress = %+v", pr.Progress)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("read path blocked behind the session write lock")
	}
	if m.FastPolls("s") != 1 {
		t.Fatalf("fast polls = %d, want 1", m.FastPolls("s"))
	}
}

// countingPublisher counts upstream publishes before forwarding.
type countingPublisher struct {
	mu    sync.Mutex
	n     int
	inner *Manager
}

func (c *countingPublisher) Publish(args PublishArgs, reply *PublishReply) error {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.inner.Publish(args, reply)
}

func (c *countingPublisher) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// TestBackgroundFlushTimerPushesTail: with a batch size that would
// never trip, the background timer alone must push the tail of a burst
// upstream — and Close must stop it.
func TestBackgroundFlushTimerPushesTail(t *testing.T) {
	root := NewManager()
	up := &countingPublisher{inner: root}
	sub := NewSubMerger("g", "s", up, 1000) // count alone would never flush
	sub.FlushInterval = 25 * time.Millisecond
	defer sub.Close()

	tree := aida.NewTree()
	h, _ := tree.H1D("/a", "h", "", 10, 0, 10)
	pub := func(seq int64) {
		t.Helper()
		h.Fill(1)
		d, err := tree.Delta()
		if err != nil {
			t.Fatal(err)
		}
		var rep PublishReply
		if err := sub.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: seq, Delta: d}, &rep); err != nil {
			t.Fatal(err)
		}
	}
	pub(1)
	pub(2)
	// No publish arrives past this point; only the timer can flush.
	deadline := time.Now().Add(5 * time.Second)
	for up.count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background timer never flushed the burst tail")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v := root.Version("s"); v == 0 {
		t.Fatal("flush arrived but upstream version still 0")
	}
	var reply PollReply
	if err := root.Poll(PollArgs{SessionID: "s", Full: true}, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Entries) != 1 {
		t.Fatalf("upstream entries = %d, want 1", len(reply.Entries))
	}
	obj, err := reply.Entries[0].Restore()
	if err != nil {
		t.Fatal(err)
	}
	if n := obj.(*aida.Histogram1D).Entries(); n != 2 {
		t.Fatalf("upstream histogram entries = %d, want 2", n)
	}

	// After Close the timer must not fire again: a pending publish that
	// didn't flush synchronously stays pending.
	sub.Close()
	pub(3)
	after := up.count()
	time.Sleep(150 * time.Millisecond)
	if got := up.count(); got != after {
		t.Fatalf("timer flushed after Close (%d → %d)", after, got)
	}
}

// timerFlakyPublisher fails its first `failures` publishes, then forwards.
type timerFlakyPublisher struct {
	mu       sync.Mutex
	failures int
	attempts int
	inner    *Manager
}

func (p *timerFlakyPublisher) Publish(args PublishArgs, reply *PublishReply) error {
	p.mu.Lock()
	p.attempts++
	fail := p.failures > 0
	if fail {
		p.failures--
	}
	p.mu.Unlock()
	if fail {
		return errors.New("transient upstream failure")
	}
	return p.inner.Publish(args, reply)
}

// TestBackgroundFlushRetriesAfterFailure: a burst tail whose timer
// flush fails transiently must be retried at a later deadline, not sit
// on the SubMerger until a publish that never comes.
func TestBackgroundFlushRetriesAfterFailure(t *testing.T) {
	root := NewManager()
	up := &timerFlakyPublisher{failures: 1, inner: root}
	sub := NewSubMerger("g", "s", up, 1000)
	sub.FlushInterval = 20 * time.Millisecond
	defer sub.Close()

	tree := aida.NewTree()
	h, _ := tree.H1D("/a", "h", "", 10, 0, 10)
	h.Fill(1)
	d, err := tree.Delta()
	if err != nil {
		t.Fatal(err)
	}
	var rep PublishReply
	if err := sub.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 1, Delta: d}, &rep); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for root.Version("s") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flush never retried after the transient failure")
		}
		time.Sleep(5 * time.Millisecond)
	}
	up.mu.Lock()
	attempts := up.attempts
	up.mu.Unlock()
	if attempts < 2 {
		t.Fatalf("upstream attempts = %d, want the failure plus at least one retry", attempts)
	}
}
