package merge

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"github.com/ipa-grid/ipa/internal/aida"
)

// TestWALCrashMidCompactionKeepsPromoteAndFence: compaction rotates the
// live log aside, then re-seeds a fresh one with snapshots — and a
// crash can land exactly between the two. This test freezes that
// instant (rotation done, snapshots never written), lets a Promote, a
// Fence, and more publishes race in afterwards, and demands a cold
// replay still reconstruct everything: the merged bytes, the bumped
// epoch, and a fence floor that keeps bouncing the deposed
// incarnation's stragglers.
func TestWALCrashMidCompactionKeepsPromoteAndFence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.wal")
	m1, w1, _ := walManager(t, path, WALOptions{SyncEvery: 1})
	tree := publishRounds(t, m1, nil, "s", 5)
	oldEpoch := m1.Epoch("s")

	// The crash point: rotate has moved the history to .old and opened
	// a fresh live log, but the snapshot re-seed never ran.
	if err := w1.rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".old"); err != nil {
		t.Fatalf("rotation file missing at the crash point: %v", err)
	}

	// Failover traffic lands in the fresh log while the .old file still
	// holds every byte of history.
	var pr PromoteReply
	if err := m1.Promote(PromoteArgs{SessionID: "s"}, &pr); err != nil || !pr.Found {
		t.Fatalf("promote: %v found=%v", err, pr.Found)
	}
	var fr FenceReply
	if err := m1.Fence(FenceArgs{SessionID: "s", Epoch: pr.PrevEpoch}, &fr); err != nil {
		t.Fatal(err)
	}
	publishRounds(t, m1, nil, "late", 3)
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold restart over the torn pair: .old replays first, then the
	// fresh log's promote/fence/late records.
	m2, _, n := walManager(t, path, WALOptions{SyncEvery: 1})
	if n == 0 {
		t.Fatal("replay over the crash point applied nothing")
	}
	for _, sid := range []string{"s", "late"} {
		if got, want := mergedOf(t, m2, sid), mergedOf(t, m1, sid); !reflect.DeepEqual(got, want) {
			t.Fatalf("session %s differs after mid-compaction crash replay", sid)
		}
	}
	// Publish-built sessions regenerate their stamp on replay, so exact
	// equality is not the contract — never regressing below the promoted
	// incarnation is.
	if got := m2.Epoch("s"); got < pr.Epoch {
		t.Fatalf("replayed epoch %d regressed below promoted %d", got, pr.Epoch)
	}
	d, err := tree.Delta()
	if err != nil {
		t.Fatal(err)
	}
	var mr MirrorReply
	if err := m2.Mirror(MirrorArgs{SessionID: "s", WorkerID: "w0", Seq: 99, Epoch: oldEpoch, Delta: d}, &mr); !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed-epoch mirror after crash replay: err=%v, want ErrFenced", err)
	}
}

// TestWALCompactionRacesPromoteAndFence: with a tiny compaction
// threshold, rotations fire continuously while publishes, explicit
// CompactWAL calls, and a Promote/Fence churn all race them under the
// race detector. Whatever interleaving happens, a crash replay must
// reproduce the final state and the final incarnation exactly.
func TestWALCompactionRacesPromoteAndFence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "race.wal")
	m1, w1, _ := walManager(t, path, WALOptions{SyncEvery: 1, CompactEvery: 4})
	publishRounds(t, m1, nil, "flip", 4)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = m1.CompactWAL()
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var pr PromoteReply
			if err := m1.Promote(PromoteArgs{SessionID: "flip"}, &pr); err != nil {
				t.Error(err)
				return
			}
			var fr FenceReply
			if err := m1.Fence(FenceArgs{SessionID: "flip", Epoch: pr.PrevEpoch}, &fr); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Steady publish load on other sessions keeps walAppend's own
	// compaction trigger firing alongside the explicit CompactWAL storm.
	for i := 0; i < 8; i++ {
		publishRounds(t, m1, nil, fmt.Sprintf("steady-%d", i), 8)
	}
	close(stop)
	wg.Wait()
	// One final quiesced compaction so the replay exercises a log that
	// ends in the snapshot-reseeded form.
	if err := m1.CompactWAL(); err != nil {
		t.Fatal(err)
	}
	finalEpoch := m1.Epoch("flip")
	if finalEpoch <= 1 {
		t.Fatalf("promote churn never advanced the epoch (epoch %d)", finalEpoch)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	m2, _, _ := walManager(t, path, WALOptions{SyncEvery: 1})
	if got, want := mergedOf(t, m2, "flip"), mergedOf(t, m1, "flip"); !reflect.DeepEqual(got, want) {
		t.Fatal("churned session differs after crash replay")
	}
	for i := 0; i < 8; i++ {
		sid := fmt.Sprintf("steady-%d", i)
		got, want := mergedOf(t, m2, sid), mergedOf(t, m1, sid)
		if len(want) == 0 {
			t.Fatalf("reference state for %s is empty", sid)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("session %s differs after compaction-race replay", sid)
		}
	}
	// Epoch stamps regenerate when raw history (not a snapshot) replays,
	// so the contract is monotonicity: the rebuilt copy must never
	// regress below the incarnation clients last saw.
	if got := m2.Epoch("flip"); got < finalEpoch {
		t.Fatalf("replayed epoch %d regressed below final %d", got, finalEpoch)
	}
	// The fence floor survived too: a mirror stamped with a long-deposed
	// epoch still bounces on the rebuilt copy.
	tree := aida.NewTree()
	h, err := tree.H1D("/h", "x", "", 10, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Fill(1)
	d, err := tree.FullDelta()
	if err != nil {
		t.Fatal(err)
	}
	var mr MirrorReply
	if err := m2.Mirror(MirrorArgs{SessionID: "flip", WorkerID: "wx", Seq: 1, Epoch: 1, Delta: d}, &mr); !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed-epoch mirror after race replay: err=%v, want ErrFenced", err)
	}
}
