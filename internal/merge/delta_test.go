package merge

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/ipa-grid/ipa/internal/aida"
)

// simWorker models one engine publishing to two managers at once: deltas
// to the manager under test and full snapshots to the reference manager
// running the legacy rebuild path.
type simWorker struct {
	id       string
	tree     *aida.Tree
	seq      int64
	needFull bool
	// replay holds a previously sent delta for out-of-order retries.
	replay *PublishArgs
}

func (w *simWorker) publishBoth(t *testing.T, delta, full *Manager) {
	t.Helper()
	w.seq++
	var d *aida.DeltaState
	var err error
	if w.needFull {
		d, err = w.tree.FullDelta()
	} else {
		d, err = w.tree.Delta()
	}
	if err != nil {
		t.Fatal(err)
	}
	args := PublishArgs{SessionID: "s", WorkerID: w.id, Seq: w.seq, Delta: d}
	var rep PublishReply
	if err := delta.Publish(args, &rep); err != nil {
		t.Fatal(err)
	}
	w.needFull = rep.NeedFull
	if rep.Accepted {
		w.replay = &args
	}

	st, err := w.tree.State()
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Publish(PublishArgs{SessionID: "s", WorkerID: w.id, Seq: w.seq, Tree: *st}, &rep); err != nil {
		t.Fatal(err)
	}
}

// pollEntries returns the full merged state keyed by path.
func pollEntries(t *testing.T, m *Manager) map[string]aida.ObjectState {
	t.Helper()
	var reply PollReply
	if err := m.Poll(PollArgs{SessionID: "s", Full: true}, &reply); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]aida.ObjectState, len(reply.Entries))
	for _, e := range reply.Entries {
		st, err := e.State()
		if err != nil {
			t.Fatal(err)
		}
		out[e.Path] = st
	}
	return out
}

// TestDeltaMergeMatchesFullRemerge drives randomized publish / rewind /
// out-of-order sequences through a delta-fed manager and a reference
// manager fed full snapshots, asserting the merged state stays
// bin-for-bin identical throughout.
func TestDeltaMergeMatchesFullRemerge(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			deltaMgr := NewManager()
			fullMgr := NewManager()
			workers := make([]*simWorker, 3)
			for i := range workers {
				workers[i] = &simWorker{id: fmt.Sprintf("w%d", i), tree: aida.NewTree()}
			}
			paths := []string{"/h/mass", "/h/pt", "/a/b/mult", "/prof/t"}
			fill := func(w *simWorker) {
				path := paths[rng.Intn(len(paths))]
				obj := w.tree.Get(path)
				if obj == nil {
					var err error
					if path == "/prof/t" {
						_, err = w.tree.P1D("/prof", "t", "", 10, 0, 10)
					} else {
						h := aida.NewHistogram1D(leafName(path), "", 12, -1, 11)
						err = w.tree.PutAt(path, h)
					}
					if err != nil {
						t.Fatal(err)
					}
					obj = w.tree.Get(path)
				}
				switch o := obj.(type) {
				case *aida.Histogram1D:
					for n := rng.Intn(20); n >= 0; n-- {
						o.FillW(rng.Float64()*12-1, 1)
					}
				case *aida.Profile1D:
					for n := rng.Intn(20); n >= 0; n-- {
						o.Fill(rng.Float64()*10, rng.NormFloat64())
					}
				}
			}
			for step := 0; step < 200; step++ {
				w := workers[rng.Intn(len(workers))]
				switch op := rng.Intn(10); {
				case op < 6: // fill + publish
					fill(w)
					w.publishBoth(t, deltaMgr, fullMgr)
				case op < 8: // fill without publishing (accumulate)
					fill(w)
				case op == 8: // rewind: fresh tree, full baseline next
					w.tree = aida.NewTree()
					fill(w)
					w.publishBoth(t, deltaMgr, fullMgr)
				default: // out-of-order retry of an already-applied publish
					if w.replay != nil {
						var rep PublishReply
						if err := deltaMgr.Publish(*w.replay, &rep); err != nil {
							t.Fatal(err)
						}
						if rep.Accepted {
							t.Fatalf("step %d: stale seq %d re-accepted", step, w.replay.Seq)
						}
						if rep.NeedFull {
							w.needFull = true
						}
					}
				}
				if step%20 == 19 {
					got, want := pollEntries(t, deltaMgr), pollEntries(t, fullMgr)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("step %d: delta-merged state diverged\n got: %v\nwant: %v", step, keys(got), keys(want))
					}
				}
			}
			got, want := pollEntries(t, deltaMgr), pollEntries(t, fullMgr)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("final state diverged:\n got %v\nwant %v", keys(got), keys(want))
			}
		})
	}
}

func keys(m map[string]aida.ObjectState) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestRewindRemovedPathsSurfaceInPoll is the regression test for delta
// baselines dropping paths: after a rewind publishes a baseline without a
// previously present object, polls must report the path in Removed.
func TestRewindRemovedPathsSurfaceInPoll(t *testing.T) {
	m := NewManager()
	tree := aida.NewTree()
	h, _ := tree.H1D("/old", "h", "", 10, 0, 10)
	h.Fill(1)
	keep, _ := tree.H1D("/keep", "k", "", 10, 0, 10)
	keep.Fill(2)
	d, err := tree.Delta()
	if err != nil {
		t.Fatal(err)
	}
	var rep PublishReply
	if err := m.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 1, Delta: d}, &rep); err != nil {
		t.Fatal(err)
	}
	var before PollReply
	if err := m.Poll(PollArgs{SessionID: "s"}, &before); err != nil {
		t.Fatal(err)
	}
	if len(before.Entries) != 2 {
		t.Fatalf("entries before rewind = %d", len(before.Entries))
	}
	// Rewind: fresh tree without /old/h, published as a new baseline.
	tree2 := aida.NewTree()
	keep2, _ := tree2.H1D("/keep", "k", "", 10, 0, 10)
	keep2.Fill(9)
	d2, err := tree2.FullDelta()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 2, Delta: d2}, &rep); err != nil {
		t.Fatal(err)
	}
	var after PollReply
	if err := m.Poll(PollArgs{SessionID: "s", SinceVersion: before.Version}, &after); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range after.Removed {
		if p == "/old/h" {
			found = true
		}
	}
	if !found {
		t.Fatalf("rewind-removed path not reported: %+v", after.Removed)
	}
	if len(after.Entries) != 1 || after.Entries[0].Path != "/keep/k" {
		t.Fatalf("incremental entries after rewind = %+v", after.Entries)
	}
}

// TestIncrementalDeltaRemovals covers Rm propagating through non-full
// deltas.
func TestIncrementalDeltaRemovals(t *testing.T) {
	m := NewManager()
	tree := aida.NewTree()
	tree.H1D("/a", "h1", "", 10, 0, 10)
	tree.H1D("/a", "h2", "", 10, 0, 10)
	d, _ := tree.Delta()
	var rep PublishReply
	if err := m.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 1, Delta: d}, &rep); err != nil {
		t.Fatal(err)
	}
	var v1 PollReply
	m.Poll(PollArgs{SessionID: "s"}, &v1)
	tree.Rm("/a/h1")
	d2, _ := tree.Delta()
	if err := m.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 2, Delta: d2}, &rep); err != nil {
		t.Fatal(err)
	}
	var v2 PollReply
	m.Poll(PollArgs{SessionID: "s", SinceVersion: v1.Version}, &v2)
	if len(v2.Removed) != 1 || v2.Removed[0] != "/a/h1" {
		t.Fatalf("removed = %v", v2.Removed)
	}
}

// TestDeltaSequenceGapForcesResync: a manager that missed a delta must
// refuse the next one and request a full baseline.
func TestDeltaSequenceGapForcesResync(t *testing.T) {
	m := NewManager()
	tree := aida.NewTree()
	h, _ := tree.H1D("/a", "h", "", 10, 0, 10)
	h.Fill(1)
	d1, _ := tree.Delta()
	var rep PublishReply
	m.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 1, Delta: d1}, &rep)
	// Seq 2 is "lost": the manager sees seq 3.
	h.Fill(2)
	dLost, _ := tree.Delta()
	_ = dLost
	h.Fill(3)
	d3, _ := tree.Delta()
	if err := m.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 3, Delta: d3}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Accepted || !rep.NeedFull {
		t.Fatalf("gap accepted: %+v", rep)
	}
	// The worker answers with a baseline carrying everything.
	full, _ := tree.FullDelta()
	if err := m.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 4, Delta: full}, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("baseline rejected: %+v", rep)
	}
	var poll PollReply
	m.Poll(PollArgs{SessionID: "s"}, &poll)
	obj, _ := poll.Entries[0].Restore()
	if got := obj.(*aida.Histogram1D).Entries(); got != 3 {
		t.Fatalf("entries after resync = %d, want 3", got)
	}
}

// TestDuplicateDeltaRetryDropsCheaply: a retry of the delta just applied
// (Seq == w.seq) is already incorporated and must be dropped without
// forcing a full re-baseline.
func TestDuplicateDeltaRetryDropsCheaply(t *testing.T) {
	m := NewManager()
	tree := aida.NewTree()
	h, _ := tree.H1D("/a", "h", "", 10, 0, 10)
	h.Fill(1)
	d1, _ := tree.Delta()
	var rep PublishReply
	m.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 1, Delta: d1}, &rep)
	h.Fill(2)
	d2, _ := tree.Delta()
	args2 := PublishArgs{SessionID: "s", WorkerID: "w", Seq: 2, Delta: d2}
	m.Publish(args2, &rep)
	// RMI retry delivers seq 2 again.
	if err := m.Publish(args2, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Accepted || rep.NeedFull {
		t.Fatalf("duplicate retry reply = %+v, want cheap drop", rep)
	}
	var poll PollReply
	m.Poll(PollArgs{SessionID: "s"}, &poll)
	obj, _ := poll.Entries[0].Restore()
	if got := obj.(*aida.Histogram1D).Entries(); got != 2 {
		t.Fatalf("entries after duplicate = %d, want 2 (no double apply)", got)
	}
}

// TestUnknownSessionReadsAllocateNothing: polls and resets for sessions
// that never published must not create manager state.
func TestUnknownSessionReadsAllocateNothing(t *testing.T) {
	m := NewManager()
	var poll PollReply
	for i := 0; i < 100; i++ {
		if err := m.Poll(PollArgs{SessionID: fmt.Sprintf("ghost-%d", i)}, &poll); err != nil {
			t.Fatal(err)
		}
	}
	if poll.Version != 0 || poll.Changed {
		t.Fatalf("ghost poll = %+v", poll)
	}
	var rr ResetReply
	if err := m.Reset(ResetArgs{SessionID: "ghost"}, &rr); err != nil {
		t.Fatal(err)
	}
	tree, ver, err := m.MergedTree("ghost")
	if err != nil || ver != 0 || tree.Size() != 0 {
		t.Fatalf("ghost merged tree = %v %d %v", tree, ver, err)
	}
	n := 0
	m.sessions.Range(func(_, _ any) bool { n++; return true })
	if n != 0 {
		t.Fatalf("read-only RPCs created %d sessions", n)
	}
}
