// Publish batching: coalesce several sessions' snapshot uploads into
// one wire call. On a node running many engines (or forwarding many
// SubMerger groups) the per-publish RMI round trip — header encode,
// syscall, server dispatch — dominates once deltas are small; a
// Batcher queues concurrent publishes for a flush window and ships
// them as a single PublishBatch, which every merge tier (Manager,
// SubMerger, shard router, remote backend) accepts and unpacks in
// order. Batching changes transport economics only: each item is
// applied by the same Publish path with the same seq/NeedFull
// semantics, and per-item failures come back per item, so one bad
// delta cannot poison its batch-mates — the equivalence batch_test.go
// pins down. BatcherOptions.Disabled preserves the one-call-per-
// publish path as the ablation baseline (A13).
package merge

import (
	"errors"
	"sync"
	"time"
)

// PublishBatchArgs carries several coalesced publishes in one call.
// Items from one producer must appear in seq order; items from
// different producers are independent.
type PublishBatchArgs struct {
	Items []PublishArgs
}

// PublishBatchReply acknowledges each item of a batch individually.
type PublishBatchReply struct {
	// Replies[i] acknowledges Items[i] (meaningful when Errs[i] is "").
	Replies []PublishReply
	// Errs[i] is the publish error for Items[i], or "". Per-item errors
	// let the rest of the batch land; only a transport failure fails the
	// whole call.
	Errs []string
}

// BatchPublisher is a Publisher that also accepts coalesced batches.
type BatchPublisher interface {
	Publisher
	PublishBatch(args PublishBatchArgs, reply *PublishBatchReply) error
}

// PublishBatch applies the items in order through the ordinary Publish
// path, collecting per-item acks and errors.
func (m *Manager) PublishBatch(args PublishBatchArgs, reply *PublishBatchReply) error {
	reply.Replies = make([]PublishReply, len(args.Items))
	reply.Errs = make([]string, len(args.Items))
	for i := range args.Items {
		if err := m.Publish(args.Items[i], &reply.Replies[i]); err != nil {
			reply.Errs[i] = err.Error()
		}
	}
	return nil
}

// PublishBatch applies the items in order through the SubMerger's
// Publish path (local merge plus flush bookkeeping per item).
func (s *SubMerger) PublishBatch(args PublishBatchArgs, reply *PublishBatchReply) error {
	reply.Replies = make([]PublishReply, len(args.Items))
	reply.Errs = make([]string, len(args.Items))
	for i := range args.Items {
		if err := s.Publish(args.Items[i], &reply.Replies[i]); err != nil {
			reply.Errs[i] = err.Error()
		}
	}
	return nil
}

// PublishBatch ships the whole batch as one RMI call.
func (p *RemotePublisher) PublishBatch(args PublishBatchArgs, reply *PublishBatchReply) error {
	if p.client.Compressed() {
		for i := range args.Items {
			if args.Items[i].Delta != nil {
				args.Items[i].Delta.SetWireCompression(true)
			} else {
				args.Items[i].Tree.SetWireCompression(true)
			}
		}
	}
	return p.client.Call(p.object+".PublishBatch", args, reply)
}

// ErrBatcherClosed rejects publishes after Close.
var ErrBatcherClosed = errors.New("merge: batcher closed")

var errShortBatchReply = errors.New("merge: batch reply shorter than batch")

// BatcherOptions tunes a Batcher.
type BatcherOptions struct {
	// Window is the optional accumulation deadline. 0 (the default) is
	// pure group commit: a batch ships the moment the upstream link is
	// free, so batching never adds latency and the coalescing factor is
	// set by how much arrives during each in-flight send. A positive
	// Window additionally holds a sub-MaxBatch batch up to this long
	// after its first item queued, trading latency for larger batches
	// (a WAN uplink where per-call cost dwarfs milliseconds).
	Window time.Duration
	// MaxBatch caps items per shipped batch (default 64); excess stays
	// queued for the next send.
	MaxBatch int
	// Disabled bypasses coalescing entirely — every Publish goes
	// straight upstream as its own call, the retained ablation baseline.
	Disabled bool
}

// batchWaiter is one queued publish and its caller's rendezvous.
type batchWaiter struct {
	args  PublishArgs
	reply *PublishReply
	done  chan error // buffered(1)
}

// Batcher coalesces concurrent publishes from many producers into
// PublishBatch calls on one upstream, group-commit style: when the
// upstream link is idle a publish ships at once (usually alone); while
// a send is in flight, later publishes queue and ship together the
// moment it returns. Coalescing therefore scales with upstream
// latency — exactly the calls worth saving — and adds none of its own.
// Publish blocks until its item's ack returns, so each producer still
// has at most one snapshot in flight and per-producer seq order is
// preserved (items enqueue in call order). Safe for any number of
// concurrent publishers.
type Batcher struct {
	upstream BatchPublisher
	opt      BatcherOptions

	mu       sync.Mutex
	queue    []*batchWaiter
	firstAt  time.Time     // when queue[0] enqueued (Window accounting)
	full     chan struct{} // pulsed when the queue reaches MaxBatch
	draining bool          // a drain goroutine is running
	closed   bool

	flushes   int64 // batches shipped
	published int64 // items shipped in them
}

// NewBatcher wraps upstream with publish coalescing.
func NewBatcher(upstream BatchPublisher, opt BatcherOptions) *Batcher {
	if opt.MaxBatch <= 0 {
		opt.MaxBatch = 64
	}
	return &Batcher{upstream: upstream, opt: opt, full: make(chan struct{}, 1)}
}

// Publish implements Publisher: queue, wait for the batch carrying
// this item to be acked, surface this item's own result.
func (b *Batcher) Publish(args PublishArgs, reply *PublishReply) error {
	if b.opt.Disabled {
		return b.upstream.Publish(args, reply)
	}
	w := &batchWaiter{args: args, reply: reply, done: make(chan error, 1)}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrBatcherClosed
	}
	if len(b.queue) == 0 {
		b.firstAt = time.Now()
	}
	b.queue = append(b.queue, w)
	if len(b.queue) >= b.opt.MaxBatch {
		select {
		case b.full <- struct{}{}:
		default:
		}
	}
	if !b.draining {
		b.draining = true
		go b.drain()
	}
	b.mu.Unlock()
	return <-w.done
}

// drain ships batches until the queue runs dry, then exits; the next
// publish into an idle Batcher starts a fresh drain. One drain runs at
// a time, so sends are serialized and everything that arrives during
// one send rides the next batch.
func (b *Batcher) drain() {
	for {
		b.mu.Lock()
		if len(b.queue) == 0 {
			b.draining = false
			b.mu.Unlock()
			return
		}
		if wait := b.windowLeftLocked(); wait > 0 {
			b.mu.Unlock()
			// Hold for the rest of the window, unless the queue fills to
			// MaxBatch first. A stale full pulse just re-evaluates the
			// deadline.
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-b.full:
				timer.Stop()
			}
			continue
		}
		batch := b.takeLocked()
		b.mu.Unlock()
		b.send(batch)
	}
}

// windowLeftLocked returns how much longer a positive accumulation
// Window holds the current sub-MaxBatch batch. Caller holds b.mu.
func (b *Batcher) windowLeftLocked() time.Duration {
	if b.opt.Window <= 0 || len(b.queue) >= b.opt.MaxBatch {
		return 0
	}
	return b.opt.Window - time.Since(b.firstAt)
}

// takeLocked claims up to MaxBatch queued items. Caller holds b.mu.
func (b *Batcher) takeLocked() []*batchWaiter {
	n := len(b.queue)
	if n > b.opt.MaxBatch {
		n = b.opt.MaxBatch
	}
	batch := b.queue[:n:n]
	rest := b.queue[n:]
	b.queue = append([]*batchWaiter(nil), rest...)
	if len(b.queue) > 0 {
		b.firstAt = time.Now()
	}
	return batch
}

// send ships one batch and distributes per-item results. A lone item
// goes straight through Publish — the batch envelope buys nothing and
// the wire stays identical to the unbatched path.
func (b *Batcher) send(batch []*batchWaiter) {
	if len(batch) == 0 {
		return
	}
	b.mu.Lock()
	b.flushes++
	b.published += int64(len(batch))
	b.mu.Unlock()
	obsBatchSize.Observe(float64(len(batch)))
	obsBatchFlushes.Inc()
	obsBatchPublished.Add(int64(len(batch)))
	if len(batch) == 1 {
		w := batch[0]
		w.done <- b.upstream.Publish(w.args, w.reply)
		return
	}
	args := PublishBatchArgs{Items: make([]PublishArgs, len(batch))}
	for i, w := range batch {
		args.Items[i] = w.args
	}
	var reply PublishBatchReply
	if err := b.upstream.PublishBatch(args, &reply); err != nil {
		// Transport-level failure: every item sees it, every producer's
		// transport re-baselines — same as losing the same publishes
		// sent individually.
		for _, w := range batch {
			w.done <- err
		}
		return
	}
	for i, w := range batch {
		switch {
		case i < len(reply.Errs) && reply.Errs[i] != "":
			w.done <- errors.New(reply.Errs[i])
		case i < len(reply.Replies):
			*w.reply = reply.Replies[i]
			w.done <- nil
		default:
			w.done <- errShortBatchReply
		}
	}
}

// Flush ships anything currently queued without waiting for the
// deadline.
func (b *Batcher) Flush() {
	b.mu.Lock()
	batch := b.takeLocked()
	b.mu.Unlock()
	b.send(batch)
}

// Close flushes the queue and rejects further publishes.
func (b *Batcher) Close() {
	b.mu.Lock()
	b.closed = true
	batch := b.takeLocked()
	b.mu.Unlock()
	b.send(batch)
}

// Stats reports batches shipped and the publishes they carried; the
// ratio is the realized coalescing factor.
func (b *Batcher) Stats() (flushes, published int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushes, b.published
}

var (
	_ Publisher      = (*Batcher)(nil)
	_ BatchPublisher = (*Manager)(nil)
	_ BatchPublisher = (*SubMerger)(nil)
	_ BatchPublisher = (*RemotePublisher)(nil)
)
