package merge

import (
	"errors"
	"reflect"
	"testing"

	"github.com/ipa-grid/ipa/internal/aida"
)

// mergedOf returns a session's full merged state keyed by path.
func mergedOf(t *testing.T, m *Manager, sid string) map[string]aida.ObjectState {
	t.Helper()
	var reply PollReply
	if err := m.Poll(PollArgs{SessionID: sid, Full: true}, &reply); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]aida.ObjectState, len(reply.Entries))
	for _, e := range reply.Entries {
		st, err := e.State()
		if err != nil {
			t.Fatal(err)
		}
		out[e.Path] = st
	}
	return out
}

// publishRounds drives a primary and mirrors every accepted delta to a
// replica, the way the router's mirror stream does, returning the tree.
func publishRounds(t *testing.T, primary, replica *Manager, sid string, rounds int) *aida.Tree {
	t.Helper()
	tree := aida.NewTree()
	h, err := tree.H1D("/h", "x", "", 10, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		h.Fill(float64(r % 10))
		var d *aida.DeltaState
		if r == 0 {
			d, err = tree.FullDelta()
		} else {
			d, err = tree.Delta()
		}
		if err != nil {
			t.Fatal(err)
		}
		var rep PublishReply
		if err := primary.Publish(PublishArgs{SessionID: sid, WorkerID: "w0", Seq: int64(r + 1), Delta: d}, &rep); err != nil {
			t.Fatal(err)
		}
		if !rep.Accepted {
			t.Fatalf("round %d not accepted: %+v", r, rep)
		}
		if replica != nil {
			var mr MirrorReply
			if err := replica.Mirror(MirrorArgs{
				SessionID: sid, WorkerID: "w0", Seq: int64(r + 1),
				Epoch: rep.Epoch, Version: rep.Version, Delta: d,
			}, &mr); err != nil {
				t.Fatal(err)
			}
			if !mr.Accepted || mr.NeedFull {
				t.Fatalf("mirror round %d = %+v", r, mr)
			}
		}
	}
	return tree
}

// The delta stream alone must bootstrap a standby: mirroring every
// publish (starting with the full baseline) and promoting yields the
// primary's exact merged state under a new epoch.
func TestMirrorStreamBootstrapsReplicaAndPromotes(t *testing.T) {
	primary, replica := NewManager(), NewManager()
	publishRounds(t, primary, replica, "s", 8)

	oldEpoch := primary.Epoch("s")
	if oldEpoch == 0 {
		t.Fatal("live session has epoch 0")
	}
	if got := replica.Epoch("s"); got != oldEpoch {
		t.Fatalf("replica adopted epoch %d, want the primary's %d", got, oldEpoch)
	}

	var pr PromoteReply
	if err := replica.Promote(PromoteArgs{SessionID: "s"}, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Found {
		t.Fatal("promote of a mirrored copy reported nothing to promote")
	}
	if pr.Epoch == oldEpoch || pr.PrevEpoch != oldEpoch {
		t.Fatalf("promote epochs = %+v, want a bump over %d", pr, oldEpoch)
	}
	got, want := mergedOf(t, replica, "s"), mergedOf(t, primary, "s")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("promoted state differs from the primary's:\n got %v\nwant %v", got, want)
	}
}

// A mirror with a sequence gap (or no baseline at all) must ask for a
// re-baseline rather than apply out of order.
func TestMirrorGapAsksForRebaseline(t *testing.T) {
	replica := NewManager()
	tree := aida.NewTree()
	h, _ := tree.H1D("/h", "x", "", 10, 0, 10)
	if _, err := tree.FullDelta(); err != nil { // consume the baseline
		t.Fatal(err)
	}
	h.Fill(1)
	d, _ := tree.Delta() // incremental: its baseline never reached us
	if d.Full {
		t.Fatal("delta after a consumed baseline is still full")
	}
	var mr MirrorReply
	if err := replica.Mirror(MirrorArgs{SessionID: "s", WorkerID: "w0", Seq: 3, Epoch: 7, Delta: d}, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Accepted || !mr.NeedFull {
		t.Fatalf("baseline-less mirror = %+v, want NeedFull", mr)
	}
	// And promoting the resulting empty shell must report nothing found:
	// flipping routing onto vacuum would "recover" an empty session.
	var pr PromoteReply
	if err := replica.Promote(PromoteArgs{SessionID: "s"}, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Found {
		t.Fatal("promote of an empty shell reported Found")
	}
}

// After promotion the copy is fenced against its ancestor incarnation:
// stale mirrors and stale imports are refused, and a straggler mirror
// from the dead primary's epoch cannot resurrect over the new state.
func TestPromoteFencesAncestorEpoch(t *testing.T) {
	primary, replica := NewManager(), NewManager()
	tree := publishRounds(t, primary, replica, "s", 4)
	oldEpoch := primary.Epoch("s")

	var pr PromoteReply
	if err := replica.Promote(PromoteArgs{SessionID: "s"}, &pr); err != nil {
		t.Fatal(err)
	}
	// A straggler mirror stamped with the dead incarnation's epoch.
	d, _ := tree.Delta()
	var mr MirrorReply
	err := replica.Mirror(MirrorArgs{SessionID: "s", WorkerID: "w0", Seq: 5, Epoch: oldEpoch, Delta: d}, &mr)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-epoch mirror after promote: err=%v reply=%+v, want ErrFenced", err, mr)
	}
	// A zombie re-baseline (import) from the dead incarnation.
	var exp ExportReply
	if err := primary.Export(ExportArgs{SessionID: "s"}, &exp); err != nil {
		t.Fatal(err)
	}
	var ir ImportReply
	err = replica.Import(ImportArgs{
		SessionID: "s", Version: exp.Version, Epoch: exp.Epoch, Workers: exp.Workers,
	}, &ir)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-epoch import after promote: %v, want ErrFenced", err)
	}
	// The promoted incarnation itself keeps working: its own epoch is
	// above the fence, so a fresh import (say, a later handoff) lands.
	var exp2 ExportReply
	if err := replica.Export(ExportArgs{SessionID: "s"}, &exp2); err != nil {
		t.Fatal(err)
	}
	if exp2.Epoch <= oldEpoch {
		t.Fatalf("promoted export epoch %d not above the fence %d", exp2.Epoch, oldEpoch)
	}
}

// Self-fencing a deposed primary makes its copy refuse publishes (the
// stragglers re-baseline elsewhere once routing flips) and answer polls
// like an unknown session, while explicit fences create shells that
// block resurrection-by-import.
func TestFenceRefusesWritesAndHidesPolls(t *testing.T) {
	primary := NewManager()
	tree := publishRounds(t, primary, nil, "s", 4)
	var fr FenceReply
	if err := primary.Fence(FenceArgs{SessionID: "s"}, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Epoch != primary.Epoch("s") {
		t.Fatalf("self-fence floor %d != epoch %d", fr.Epoch, primary.Epoch("s"))
	}
	// Straggler publish → NeedFull, never applied.
	d, _ := tree.Delta()
	var rep PublishReply
	if err := primary.Publish(PublishArgs{SessionID: "s", WorkerID: "w0", Seq: 5, Delta: d}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Accepted || !rep.NeedFull {
		t.Fatalf("publish to fenced copy = %+v, want NeedFull", rep)
	}
	// Polls answer like an unknown session (version 0, no entries).
	var poll PollReply
	if err := primary.Poll(PollArgs{SessionID: "s", Full: true}, &poll); err != nil {
		t.Fatal(err)
	}
	if poll.Version != 0 || len(poll.Entries) != 0 {
		t.Fatalf("poll of fenced copy = version %d, %d entries; want empty", poll.Version, len(poll.Entries))
	}
	// An explicit fence on an unknown session leaves a shell that blocks
	// a later import at or below the floor.
	other := NewManager()
	if err := other.Fence(FenceArgs{SessionID: "ghost", Epoch: 42}, &fr); err != nil {
		t.Fatal(err)
	}
	var ir ImportReply
	err := other.Import(ImportArgs{SessionID: "ghost", Version: 1, Epoch: 42}, &ir)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("import at the fence floor: %v, want ErrFenced", err)
	}
	// Self-fence of an unknown session stays a no-op (no shell).
	if err := other.Fence(FenceArgs{SessionID: "nobody"}, &fr); err != nil {
		t.Fatal(err)
	}
	if other.Epoch("nobody") != 0 {
		t.Fatal("self-fence of an unknown session allocated state")
	}
}

// A long mirror tail materializes incrementally (the pending threshold)
// and an Export of a mirror-fed copy folds the tail first — both paths
// must yield the primary's exact state.
func TestMirrorTailMaterializesOnExport(t *testing.T) {
	primary, replica := NewManager(), NewManager()
	publishRounds(t, primary, replica, "s", mirrorPendingMax+8)
	var exp ExportReply
	if err := replica.Export(ExportArgs{SessionID: "s"}, &exp); err != nil {
		t.Fatal(err)
	}
	if !exp.Found || len(exp.Workers) != 1 || !exp.Workers[0].HasTree {
		t.Fatalf("export of mirrored copy = %+v", exp)
	}
	dst := NewManager()
	var ir ImportReply
	if err := dst.Import(ImportArgs{
		SessionID: "s", Version: exp.Version, Epoch: exp.Epoch,
		Workers: exp.Workers, Removed: exp.Removed, Logs: exp.Logs,
	}, &ir); err != nil {
		t.Fatal(err)
	}
	got, want := mergedOf(t, dst, "s"), mergedOf(t, primary, "s")
	if !reflect.DeepEqual(got, want) {
		t.Fatal("re-imported mirror state differs from the primary's")
	}
}
