package merge

import (
	"testing"

	"github.com/ipa-grid/ipa/internal/aida"
)

func snapshot(t *testing.T, fills map[string][]float64) aida.TreeState {
	t.Helper()
	tree := aida.NewTree()
	for path, xs := range fills {
		segs := []byte(path) // paths like "/h/mass"
		_ = segs
		h := aida.NewHistogram1D(leafName(path), "", 10, 0, 10)
		for _, x := range xs {
			h.Fill(x)
		}
		if err := tree.PutAt(path, h); err != nil {
			t.Fatal(err)
		}
	}
	st, err := tree.State()
	if err != nil {
		t.Fatal(err)
	}
	return *st
}

func leafName(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

func TestPublishAndPollMerges(t *testing.T) {
	m := NewManager()
	var rep PublishReply
	err := m.Publish(PublishArgs{
		SessionID: "s1", WorkerID: "w0", Seq: 1,
		Tree: snapshot(t, map[string][]float64{"/h/mass": {1, 2}}), EventsDone: 2, EventsTotal: 10,
	}, &rep)
	if err != nil || !rep.Accepted {
		t.Fatalf("publish: %v %+v", err, rep)
	}
	err = m.Publish(PublishArgs{
		SessionID: "s1", WorkerID: "w1", Seq: 1,
		Tree: snapshot(t, map[string][]float64{"/h/mass": {3}}), EventsDone: 1, EventsTotal: 10,
	}, &rep)
	if err != nil {
		t.Fatal(err)
	}
	var poll PollReply
	if err := m.Poll(PollArgs{SessionID: "s1"}, &poll); err != nil {
		t.Fatal(err)
	}
	if !poll.Changed || len(poll.Entries) != 1 {
		t.Fatalf("poll = %+v", poll)
	}
	obj, err := poll.Entries[0].Restore()
	if err != nil {
		t.Fatal(err)
	}
	if obj.(*aida.Histogram1D).Entries() != 3 {
		t.Fatalf("merged entries = %d, want 3", obj.(*aida.Histogram1D).Entries())
	}
	if len(poll.Progress) != 2 || poll.Progress[0].WorkerID != "w0" || poll.Progress[1].EventsDone != 1 {
		t.Fatalf("progress = %+v", poll.Progress)
	}
}

func TestIncrementalPoll(t *testing.T) {
	m := NewManager()
	var rep PublishReply
	m.Publish(PublishArgs{SessionID: "s", WorkerID: "w0", Seq: 1,
		Tree: snapshot(t, map[string][]float64{"/a/h1": {1}, "/a/h2": {2}})}, &rep)
	var first PollReply
	m.Poll(PollArgs{SessionID: "s"}, &first)
	if len(first.Entries) != 2 {
		t.Fatalf("full poll entries = %d", len(first.Entries))
	}
	// No new publishes → nothing changed.
	var idle PollReply
	m.Poll(PollArgs{SessionID: "s", SinceVersion: first.Version}, &idle)
	if idle.Changed || len(idle.Entries) != 0 {
		t.Fatalf("idle poll = %+v", idle)
	}
	// Second snapshot touches only h1.
	m.Publish(PublishArgs{SessionID: "s", WorkerID: "w0", Seq: 2,
		Tree: snapshot(t, map[string][]float64{"/a/h1": {1, 5}, "/a/h2": {2}})}, &rep)
	var inc PollReply
	m.Poll(PollArgs{SessionID: "s", SinceVersion: first.Version}, &inc)
	if !inc.Changed || len(inc.Entries) != 1 || inc.Entries[0].Path != "/a/h1" {
		t.Fatalf("incremental poll = %+v", inc.Entries)
	}
}

func TestStaleSnapshotDropped(t *testing.T) {
	m := NewManager()
	var rep PublishReply
	m.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 5,
		Tree: snapshot(t, map[string][]float64{"/h": {1, 2, 3}})}, &rep)
	m.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 3,
		Tree: snapshot(t, map[string][]float64{"/h": {9}})}, &rep)
	if rep.Accepted {
		t.Fatal("stale snapshot accepted")
	}
	var poll PollReply
	m.Poll(PollArgs{SessionID: "s"}, &poll)
	obj, _ := poll.Entries[0].Restore()
	if obj.(*aida.Histogram1D).Entries() != 3 {
		t.Fatal("stale snapshot overwrote newer one")
	}
}

func TestResetRemovesObjects(t *testing.T) {
	m := NewManager()
	var rep PublishReply
	m.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 1,
		Tree: snapshot(t, map[string][]float64{"/h": {1}})}, &rep)
	var before PollReply
	m.Poll(PollArgs{SessionID: "s"}, &before)
	var rr ResetReply
	if err := m.Reset(ResetArgs{SessionID: "s"}, &rr); err != nil {
		t.Fatal(err)
	}
	var after PollReply
	m.Poll(PollArgs{SessionID: "s", SinceVersion: before.Version}, &after)
	if len(after.Entries) != 0 {
		t.Fatalf("entries after reset: %+v", after.Entries)
	}
	found := false
	for _, p := range after.Removed {
		if p == "/h" {
			found = true
		}
	}
	if !found {
		t.Fatalf("removal of /h not reported: %+v", after.Removed)
	}
}

func TestLogsDeliveredOnce(t *testing.T) {
	m := NewManager()
	var rep PublishReply
	m.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 1,
		Tree: snapshot(t, map[string][]float64{"/h": {1}}), Log: "found peak"}, &rep)
	var p1 PollReply
	m.Poll(PollArgs{SessionID: "s"}, &p1)
	if len(p1.Logs) != 1 || p1.Logs[0] != "found peak" {
		t.Fatalf("logs = %v", p1.Logs)
	}
	var p2 PollReply
	m.Poll(PollArgs{SessionID: "s", SinceVersion: p1.Version}, &p2)
	if len(p2.Logs) != 0 {
		t.Fatalf("logs delivered twice: %v", p2.Logs)
	}
}

func TestSubMergerAggregates(t *testing.T) {
	root := NewManager()
	sub := NewSubMerger("group-a", "s", root, 1)
	var rep PublishReply
	for i, fills := range []map[string][]float64{
		{"/h/m": {1}}, {"/h/m": {2}}, {"/h/m": {3}},
	} {
		err := sub.Publish(PublishArgs{
			SessionID: "s", WorkerID: string(rune('a' + i)), Seq: 1,
			Tree: snapshot(t, fills), EventsDone: 1, EventsTotal: 1,
		}, &rep)
		if err != nil {
			t.Fatal(err)
		}
	}
	var poll PollReply
	if err := root.Poll(PollArgs{SessionID: "s"}, &poll); err != nil {
		t.Fatal(err)
	}
	if len(poll.Progress) != 1 || poll.Progress[0].WorkerID != "group-a" {
		t.Fatalf("root sees %+v, want one pseudo-worker", poll.Progress)
	}
	if poll.Progress[0].EventsDone != 3 {
		t.Fatalf("aggregated progress = %+v", poll.Progress[0])
	}
	obj, _ := poll.Entries[0].Restore()
	if obj.(*aida.Histogram1D).Entries() != 3 {
		t.Fatalf("aggregated entries = %d", obj.(*aida.Histogram1D).Entries())
	}
}

func TestSubMergerBatchedFlush(t *testing.T) {
	root := NewManager()
	sub := NewSubMerger("g", "s", root, 10) // only flush every 10 publishes
	var rep PublishReply
	sub.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 1,
		Tree: snapshot(t, map[string][]float64{"/h": {1}})}, &rep)
	var poll PollReply
	root.Poll(PollArgs{SessionID: "s"}, &poll)
	if len(poll.Entries) != 0 {
		t.Fatal("flushed before batch filled")
	}
	if err := sub.Flush(); err != nil {
		t.Fatal(err)
	}
	root.Poll(PollArgs{SessionID: "s"}, &poll)
	if len(poll.Entries) != 1 {
		t.Fatal("explicit flush did not forward")
	}
}

func TestPublishValidation(t *testing.T) {
	m := NewManager()
	var rep PublishReply
	if err := m.Publish(PublishArgs{}, &rep); err == nil {
		t.Fatal("empty publish accepted")
	}
}

func TestMergedTreeCopyIsIndependent(t *testing.T) {
	m := NewManager()
	var rep PublishReply
	m.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 1,
		Tree: snapshot(t, map[string][]float64{"/h": {1}})}, &rep)
	tree, ver, err := m.MergedTree("s")
	if err != nil || ver == 0 {
		t.Fatal(err)
	}
	tree.Get("/h").(*aida.Histogram1D).Fill(9)
	tree2, _, _ := m.MergedTree("s")
	if tree2.Get("/h").(*aida.Histogram1D).Entries() != 1 {
		t.Fatal("MergedTree aliases internal state")
	}
}
