package merge

import (
	"testing"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/rmi"
)

// TestRemotePublisherCompressedFrames drives the whole WAN path: a
// transport publishing deltas through an RMI connection dialed with
// compressed frames, into a manager registered on a real RMI server,
// then polls the merged result back over the same wire.
func TestRemotePublisherCompressedFrames(t *testing.T) {
	mgr := NewManager()
	srv := rmi.NewServer(nil)
	if err := srv.Register(RMIObjectName, mgr); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := rmi.Dial(addr.String(), "tok", rmi.WithCompressedFrames())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if !client.Compressed() {
		t.Fatal("dial option not recorded")
	}
	tr := NewTransport("s", "wan-worker", NewRemotePublisher(client, ""))

	tree := aida.NewTree()
	h, _ := tree.H1D("/a", "h", "", 100, 0, 100)
	for i := 0; i < 500; i++ {
		h.Fill(float64(i % 100))
	}
	send := func() {
		t.Helper()
		rep, err := tr.Send(func(full bool) (Snapshot, error) {
			var d *aida.DeltaState
			var err error
			if full {
				d, err = tree.FullDelta()
			} else {
				d, err = tree.Delta()
			}
			if err != nil {
				return Snapshot{}, err
			}
			return Snapshot{Delta: d, Done: 500, Total: 500}, nil
		})
		if err != nil || !rep.Accepted {
			t.Fatalf("remote publish: %v %+v", err, rep)
		}
	}
	send() // baseline
	h.Fill(7)
	send() // incremental

	var poll PollReply
	if err := client.Call(RMIObjectName+".Poll", PollArgs{SessionID: "s"}, &poll); err != nil {
		t.Fatal(err)
	}
	if len(poll.Entries) != 1 {
		t.Fatalf("poll entries = %d", len(poll.Entries))
	}
	obj, err := poll.Entries[0].Restore()
	if err != nil {
		t.Fatal(err)
	}
	if got := obj.(*aida.Histogram1D).Entries(); got != 501 {
		t.Fatalf("merged entries over compressed wire = %d, want 501", got)
	}
}
