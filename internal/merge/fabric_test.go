package merge

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/ipa-grid/ipa/internal/aida"
)

// publishOne pushes a delta from tree as worker w at the next seq.
func publishOne(t *testing.T, m *Manager, session, worker string, seq int64, tree *aida.Tree) PublishReply {
	t.Helper()
	d, err := tree.Delta()
	if err != nil {
		t.Fatal(err)
	}
	var rep PublishReply
	if err := m.Publish(PublishArgs{SessionID: session, WorkerID: worker, Seq: seq, Delta: d}, &rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestChangeIndexServesIncrementalPolls: after a delta touching one of
// many objects, an incremental poll must come off the change index (no
// merged-tree walk) and carry exactly the touched path.
func TestChangeIndexServesIncrementalPolls(t *testing.T) {
	m := NewManager()
	tree := aida.NewTree()
	hists := make([]*aida.Histogram1D, 20)
	for i := range hists {
		h, _ := tree.H1D("/a", fmt.Sprintf("h%02d", i), "", 10, 0, 10)
		h.Fill(1)
		hists[i] = h
	}
	publishOne(t, m, "s", "w", 1, tree)

	var first PollReply
	if err := m.Poll(PollArgs{SessionID: "s"}, &first); err != nil {
		t.Fatal(err)
	}
	if len(first.Entries) != 20 {
		t.Fatalf("cold poll entries = %d", len(first.Entries))
	}
	if idx, walk := m.PollIndexStats("s"); idx != 0 || walk != 1 {
		t.Fatalf("cold poll stats = %d indexed / %d walked, want 0/1", idx, walk)
	}

	hists[7].Fill(3)
	publishOne(t, m, "s", "w", 2, tree)
	var inc PollReply
	if err := m.Poll(PollArgs{SessionID: "s", SinceVersion: first.Version}, &inc); err != nil {
		t.Fatal(err)
	}
	if len(inc.Entries) != 1 || inc.Entries[0].Path != "/a/h07" {
		t.Fatalf("incremental entries = %+v, want exactly /a/h07", inc.Entries)
	}
	if idx, walk := m.PollIndexStats("s"); idx != 1 || walk != 1 {
		t.Fatalf("after incremental poll: %d indexed / %d walked, want 1/1", idx, walk)
	}

	// The ablation switch restores the walking behavior.
	m.DisableChangeIndex = true
	var inc2 PollReply
	if err := m.Poll(PollArgs{SessionID: "s", SinceVersion: first.Version}, &inc2); err != nil {
		t.Fatal(err)
	}
	m.DisableChangeIndex = false
	if !reflect.DeepEqual(inc.Entries, inc2.Entries) {
		t.Fatal("indexed and walked incremental polls disagree")
	}
	if idx, walk := m.PollIndexStats("s"); idx != 1 || walk != 2 {
		t.Fatalf("after ablation poll: %d indexed / %d walked, want 1/2", idx, walk)
	}
}

// TestChangeIndexCapFallsBackToWalk drives enough single-path publishes
// to overflow the index cap; a poll from before the trimmed floor must
// fall back to a full walk and still be correct.
func TestChangeIndexCapFallsBackToWalk(t *testing.T) {
	m := NewManager()
	tree := aida.NewTree()
	h, _ := tree.H1D("/a", "hot", "", 10, 0, 10)
	cold, _ := tree.H1D("/a", "cold", "", 10, 0, 10)
	cold.Fill(1)
	h.Fill(1)
	publishOne(t, m, "s", "w", 1, tree)
	var first PollReply
	if err := m.Poll(PollArgs{SessionID: "s"}, &first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxChangeIndex+50; i++ {
		h.Fill(float64(i % 10))
		publishOne(t, m, "s", "w", int64(i+2), tree)
	}
	// first.Version now predates the trimmed index floor.
	var old PollReply
	if err := m.Poll(PollArgs{SessionID: "s", SinceVersion: first.Version}, &old); err != nil {
		t.Fatal(err)
	}
	if len(old.Entries) != 1 || old.Entries[0].Path != "/a/hot" {
		t.Fatalf("pre-floor poll entries = %v", pollPaths(old))
	}
	if idx, walk := m.PollIndexStats("s"); idx != 0 || walk != 2 {
		t.Fatalf("stats = %d indexed / %d walked, want 0/2 (cap fallback)", idx, walk)
	}
	// A recent poller still rides the index.
	h.Fill(5)
	publishOne(t, m, "s", "w", int64(maxChangeIndex+52), tree)
	var recent PollReply
	if err := m.Poll(PollArgs{SessionID: "s", SinceVersion: old.Version}, &recent); err != nil {
		t.Fatal(err)
	}
	if idx, _ := m.PollIndexStats("s"); idx != 1 {
		t.Fatalf("recent poll did not use the index (indexed=%d)", idx)
	}
	if len(recent.Entries) != 1 || recent.Entries[0].Path != "/a/hot" {
		t.Fatalf("recent poll entries = %v", pollPaths(recent))
	}
}

// TestChangeIndexHugeBaselineDoesNotPanic: a single publish touching
// more paths than the whole index cap must degrade to the full-walk
// fallback, not crash the eviction (regression: index out of range -1).
func TestChangeIndexHugeBaselineDoesNotPanic(t *testing.T) {
	m := NewManager()
	tree := aida.NewTree()
	for i := 0; i < maxChangeIndex+10; i++ {
		h, _ := tree.H1D("/a", fmt.Sprintf("h%04d", i), "", 2, 0, 2)
		h.Fill(1)
	}
	publishOne(t, m, "s", "w", 1, tree)
	var first PollReply
	if err := m.Poll(PollArgs{SessionID: "s", Full: true}, &first); err != nil {
		t.Fatal(err)
	}
	if len(first.Entries) != maxChangeIndex+10 {
		t.Fatalf("entries = %d", len(first.Entries))
	}
	// Incremental polls fall back to walking (the index was invalidated)
	// but stay correct.
	var inc PollReply
	if err := m.Poll(PollArgs{SessionID: "s", SinceVersion: first.Version}, &inc); err != nil {
		t.Fatal(err)
	}
	if inc.Changed {
		t.Fatalf("caught-up poll reported %d changes", len(inc.Entries))
	}
}

// TestTombstoneDropKeepsSeal: DropSession with Tombstone must leave a
// sealed shell so a publish that raced a completed handoff still draws
// NeedFull instead of re-creating an unsealed session on the old owner.
func TestTombstoneDropKeepsSeal(t *testing.T) {
	m := NewManager()
	tree := aida.NewTree()
	h, _ := tree.H1D("/a", "h", "", 10, 0, 10)
	h.Fill(1)
	publishOne(t, m, "s", "w", 1, tree)
	var dr DropReply
	if err := m.DropSession(DropArgs{SessionID: "s", Tombstone: true}, &dr); err != nil {
		t.Fatal(err)
	}
	full, err := tree.FullDelta()
	if err != nil {
		t.Fatal(err)
	}
	var rep PublishReply
	if err := m.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 2, Delta: full}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Accepted || !rep.NeedFull {
		t.Fatalf("publish against tombstone = %+v, want refused NeedFull", rep)
	}
	// A straggler poll that reaches the tombstone must read version 0
	// (reset to a full refresh on the new owner), never the live version
	// of an empty tree — that would fast-forward the client past every
	// imported object.
	var straggler PollReply
	if err := m.Poll(PollArgs{SessionID: "s", SinceVersion: 1}, &straggler); err != nil {
		t.Fatal(err)
	}
	if straggler.Version != 0 || straggler.Changed {
		t.Fatalf("tombstone poll = %+v, want version 0 and no changes", straggler)
	}
	// A plain drop reaps the tombstone entirely.
	if err := m.DropSession(DropArgs{SessionID: "s"}, &dr); err != nil {
		t.Fatal(err)
	}
	var sl SessionsReply
	if err := m.SessionList(SessionsArgs{}, &sl); err != nil {
		t.Fatal(err)
	}
	if len(sl.SessionIDs) != 0 {
		t.Fatalf("sessions after teardown drop = %v", sl.SessionIDs)
	}
}

func pollPaths(r PollReply) []string {
	var out []string
	for _, e := range r.Entries {
		out = append(out, e.Path)
	}
	return out
}

// TestSealedSessionRefusesWrites: Export(Seal) freezes publishes (they
// draw NeedFull) and rewinds (ErrSealed) while polls keep serving;
// Import lifts the seal.
func TestSealedSessionRefusesWrites(t *testing.T) {
	m := NewManager()
	tree := aida.NewTree()
	h, _ := tree.H1D("/a", "h", "", 10, 0, 10)
	h.Fill(1)
	publishOne(t, m, "s", "w", 1, tree)

	var exp ExportReply
	if err := m.Export(ExportArgs{SessionID: "s", Seal: true}, &exp); err != nil {
		t.Fatal(err)
	}
	if !exp.Found || len(exp.Workers) != 1 || !exp.Workers[0].HasTree {
		t.Fatalf("export = %+v", exp)
	}
	h.Fill(2)
	rep := publishOne(t, m, "s", "w", 2, tree)
	if rep.Accepted || !rep.NeedFull {
		t.Fatalf("sealed publish = %+v, want refused NeedFull", rep)
	}
	var rr ResetReply
	if err := m.Reset(ResetArgs{SessionID: "s"}, &rr); err != ErrSealed {
		t.Fatalf("sealed reset error = %v, want ErrSealed", err)
	}
	var poll PollReply
	if err := m.Poll(PollArgs{SessionID: "s", Full: true}, &poll); err != nil || len(poll.Entries) != 1 {
		t.Fatalf("sealed poll = %v / %d entries", err, len(poll.Entries))
	}

	// Re-importing the dump (the rollback path) unseals.
	var imp ImportReply
	err := m.Import(ImportArgs{
		SessionID: "s", Version: exp.Version,
		Workers: exp.Workers, Removed: exp.Removed, Logs: exp.Logs,
	}, &imp)
	if err != nil {
		t.Fatal(err)
	}
	full, err := tree.FullDelta()
	if err != nil {
		t.Fatal(err)
	}
	var rep2 PublishReply
	if err := m.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 3, Delta: full}, &rep2); err != nil {
		t.Fatal(err)
	}
	if !rep2.Accepted {
		t.Fatalf("post-import publish = %+v", rep2)
	}
}

// TestExportImportRoundTrip moves a session (two workers, a removal,
// logs) to a fresh manager and checks the client-visible state carries
// over exactly: same version, same merged objects, removals still
// reported to incremental pollers, logs preserved.
func TestExportImportRoundTrip(t *testing.T) {
	src := NewManager()
	t1, t2 := aida.NewTree(), aida.NewTree()
	h1, _ := t1.H1D("/a", "h", "", 10, 0, 10)
	g1, _ := t1.H1D("/a", "g", "", 10, 0, 10)
	h2, _ := t2.H1D("/a", "h", "", 10, 0, 10)
	h1.Fill(1)
	g1.Fill(1)
	h2.Fill(2)
	d1, _ := t1.Delta()
	d2, _ := t2.Delta()
	var rep PublishReply
	if err := src.Publish(PublishArgs{SessionID: "s", WorkerID: "w1", Seq: 1, Delta: d1, Log: "line-1"}, &rep); err != nil {
		t.Fatal(err)
	}
	if err := src.Publish(PublishArgs{SessionID: "s", WorkerID: "w2", Seq: 1, Delta: d2}, &rep); err != nil {
		t.Fatal(err)
	}
	var mid PollReply
	if err := src.Poll(PollArgs{SessionID: "s"}, &mid); err != nil {
		t.Fatal(err)
	}
	// Remove /a/g so the export carries a gone path.
	t1.Rm("/a/g")
	d1, _ = t1.Delta()
	if err := src.Publish(PublishArgs{SessionID: "s", WorkerID: "w1", Seq: 2, Delta: d1}, &rep); err != nil {
		t.Fatal(err)
	}

	var exp ExportReply
	if err := src.Export(ExportArgs{SessionID: "s"}, &exp); err != nil {
		t.Fatal(err)
	}
	// The dump must survive a gob round trip: that is what crosses RMI
	// between shards on different nodes.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&exp); err != nil {
		t.Fatal(err)
	}
	var wired ExportReply
	if err := gob.NewDecoder(&buf).Decode(&wired); err != nil {
		t.Fatal(err)
	}

	dst := NewManager()
	var imp ImportReply
	err := dst.Import(ImportArgs{
		SessionID: "s", Version: wired.Version,
		Workers: wired.Workers, Removed: wired.Removed, Logs: wired.Logs,
	}, &imp)
	if err != nil {
		t.Fatal(err)
	}
	if imp.Version != exp.Version {
		t.Fatalf("imported version %d != exported %d", imp.Version, exp.Version)
	}
	if got, want := dst.Version("s"), src.Version("s"); got != want {
		t.Fatalf("Version after import = %d, want %d", got, want)
	}
	got, want := pollEntries(t, dst), pollEntries(t, src)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("imported state differs:\n got %v\nwant %v", keys(got), keys(want))
	}
	// An incremental poller that saw /a/g before the move still learns
	// of its removal from the new owner.
	var incr PollReply
	if err := dst.Poll(PollArgs{SessionID: "s", SinceVersion: mid.Version}, &incr); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(incr.Removed, []string{"/a/g"}) {
		t.Fatalf("removals after import = %v, want [/a/g]", incr.Removed)
	}
	// Logs ride along exactly once for a from-scratch poller.
	var full PollReply
	if err := dst.Poll(PollArgs{SessionID: "s", Full: true}, &full); err != nil {
		t.Fatal(err)
	}
	if len(full.Logs) != 1 || !strings.Contains(full.Logs[0], "line-1") {
		t.Fatalf("logs after import = %v", full.Logs)
	}
	// Workers continue their sequence on the new owner without resync.
	h2.Fill(3)
	d2, _ = t2.Delta()
	if err := dst.Publish(PublishArgs{SessionID: "s", WorkerID: "w2", Seq: 2, Delta: d2}, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted || rep.NeedFull {
		t.Fatalf("continuing delta after import = %+v", rep)
	}
}

// TestSubMergerFlushInterval: with a large FlushEvery, the jittered
// time deadline still pushes the group state upstream.
func TestSubMergerFlushInterval(t *testing.T) {
	root := NewManager()
	cap := &capturePublisher{inner: root}
	sub := NewSubMerger("g", "s", cap, 1000) // count alone would never flush
	sub.FlushInterval = time.Second
	now := time.Unix(1000, 0)
	sub.clock = func() time.Time { return now }

	tree := aida.NewTree()
	h, _ := tree.H1D("/a", "h", "", 10, 0, 10)
	pub := func(seq int64) {
		t.Helper()
		h.Fill(1)
		d, err := tree.Delta()
		if err != nil {
			t.Fatal(err)
		}
		var rep PublishReply
		if err := sub.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: seq, Delta: d}, &rep); err != nil {
			t.Fatal(err)
		}
	}
	pub(1) // arms the deadline; no flush yet
	now = now.Add(100 * time.Millisecond)
	pub(2)
	if n := len(cap.args); n != 0 {
		t.Fatalf("flushed %d times before the interval", n)
	}
	// Beyond interval + max jitter (20%), the next publish must flush.
	now = now.Add(1300 * time.Millisecond)
	pub(3)
	if n := len(cap.args); n != 1 {
		t.Fatalf("flushes after deadline = %d, want 1", n)
	}
	// Immediately after a flush the deadline is re-armed.
	pub(4)
	if n := len(cap.args); n != 1 {
		t.Fatalf("flushed again immediately after re-arm (%d)", n)
	}
	// Deadlines are jittered: two groups with different names draw
	// different intervals from the same nominal setting.
	a := NewSubMerger("alpha", "s", root, 1)
	b := NewSubMerger("beta", "s", root, 1)
	a.FlushInterval = time.Second
	b.FlushInterval = time.Second
	da, db := a.jitteredIntervalLocked(), b.jitteredIntervalLocked()
	for _, d := range []time.Duration{da, db} {
		if d < 800*time.Millisecond || d > 1200*time.Millisecond {
			t.Fatalf("jittered interval %v outside ±20%% of 1s", d)
		}
	}
	if da == db {
		t.Fatalf("alpha and beta drew identical jitter (%v): deadlines not decorrelated", da)
	}
}

// TestTransportAdaptiveCompression: the default transport compresses
// large frames and skips small ones; SetCompression forces everything.
func TestTransportAdaptiveCompression(t *testing.T) {
	encode := func(args PublishArgs) byte {
		t.Helper()
		// The state's GobEncode is exactly what gob would embed when the
		// args cross RMI.
		frame, err := args.Delta.GobEncode()
		if err != nil {
			t.Fatal(err)
		}
		return frame[0]
	}
	root := NewManager()
	var last PublishArgs
	tr := NewTransport("s", "w", publisherFunc(func(args PublishArgs, reply *PublishReply) error {
		last = args
		return root.Publish(args, reply)
	}))

	small := aida.NewTree()
	h, _ := small.H1D("/a", "h", "", 4, 0, 4)
	h.Fill(1)
	if _, err := tr.Send(func(full bool) (Snapshot, error) {
		d, err := small.FullDelta()
		return Snapshot{Delta: d}, err
	}); err != nil {
		t.Fatal(err)
	}
	if v := encode(last); v != 1 {
		t.Fatalf("small frame version = %d, want plain", v)
	}

	big := aida.NewTree()
	bh, _ := big.H1D("/a", "big", "", 400, 0, 400)
	for i := 0; i < 400; i++ {
		bh.Fill(float64(i))
	}
	tr2 := NewTransport("s2", "w", publisherFunc(func(args PublishArgs, reply *PublishReply) error {
		last = args
		return root.Publish(args, reply)
	}))
	if _, err := tr2.Send(func(full bool) (Snapshot, error) {
		d, err := big.FullDelta()
		return Snapshot{Delta: d}, err
	}); err != nil {
		t.Fatal(err)
	}
	if v := encode(last); v != 2 {
		t.Fatalf("large frame version = %d, want flate", v)
	}
	if c, s := tr2.CompressionStats(); c != 1 {
		t.Fatalf("transport stats = %d compressed / %d skipped, want 1 compressed", c, s)
	}

	// Forced mode compresses even the tiny frame.
	tr3 := NewTransport("s3", "w", publisherFunc(func(args PublishArgs, reply *PublishReply) error {
		last = args
		return root.Publish(args, reply)
	}))
	tr3.SetCompression(true)
	small2 := aida.NewTree()
	h2, _ := small2.H1D("/a", "h", "", 4, 0, 4)
	h2.Fill(1)
	if _, err := tr3.Send(func(full bool) (Snapshot, error) {
		d, err := small2.FullDelta()
		return Snapshot{Delta: d}, err
	}); err != nil {
		t.Fatal(err)
	}
	if v := encode(last); v != 2 {
		t.Fatalf("forced small frame version = %d, want flate", v)
	}
}

type publisherFunc func(PublishArgs, *PublishReply) error

func (f publisherFunc) Publish(args PublishArgs, reply *PublishReply) error { return f(args, reply) }
