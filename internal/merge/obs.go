// Telemetry hooks for the merge fabric: publish/poll latency, traffic
// and cache counters, write-section queue depth, WAL fsync lag, and
// batcher shape. Everything here is a package-global family shared by
// all sessions — per-session detail stays on the session's own atomics
// (surfaced via Stats/SessionList), keeping metric cardinality flat no
// matter how many sessions a shard holds.

package merge

import "github.com/ipa-grid/ipa/internal/obs"

var (
	obsPublishSeconds = obs.GetHistogram("ipa_merge_publish_seconds",
		"Publish (snapshot ingest + merge) latency in seconds.", nil)
	obsPollSeconds = obs.GetHistogram("ipa_merge_poll_seconds",
		"Poll (incremental read) latency in seconds.", nil)
	obsPublishes = obs.GetCounter("ipa_merge_publishes_total",
		"Snapshot publishes ingested (all sessions).")
	obsPolls = obs.GetCounter("ipa_merge_polls_total",
		"Client polls served (all sessions, fast path included).")
	obsFastPolls = obs.GetCounter("ipa_merge_fast_polls_total",
		"Polls answered by the lock-free quiescent fast path.")
	obsCacheHits = obs.GetCounter("ipa_merge_frame_cache_total",
		"Poll encode-cache lookups, by result.", "result", "hit")
	obsCacheMisses = obs.GetCounter("ipa_merge_frame_cache_total",
		"Poll encode-cache lookups, by result.", "result", "miss")
	obsPubWaiting = obs.GetGauge("ipa_merge_publish_waiting",
		"Publishes currently inside or queued for a session write section.")
	obsWALFsyncSeconds = obs.GetHistogram("ipa_merge_wal_fsync_seconds",
		"WAL fsync latency in seconds.", nil)
	obsWALUnsynced = obs.GetGauge("ipa_merge_wal_unsynced_records",
		"WAL records appended since the last fsync (fsync lag).")
	obsBatchSize = obs.GetHistogram("ipa_merge_batch_size",
		"Publishes coalesced per batcher flush.", obs.SizeBuckets)
	obsBatchFlushes = obs.GetCounter("ipa_merge_batch_flushes_total",
		"Batcher upstream flushes (PublishBatch or single-publish sends).")
	obsBatchPublished = obs.GetCounter("ipa_merge_batch_published_total",
		"Publishes shipped through the batcher (input side of the coalesce ratio).")
)
