// Snapshot transport: the one delta-native uplink every tier of the
// merge hierarchy publishes through. Engines send their result trees to
// a manager (or SubMerger), and SubMergers forward their group totals
// upstream, all via the same generation-stamped protocol: incremental
// DeltaState snapshots by default, a full baseline on the first send,
// after a transport failure, and whenever the receiver asks for a
// resync (NeedFull). Centralizing the seq/re-baseline state machine
// here is what lets multi-level hierarchies compose: each hop speaks
// exactly the protocol the next hop's Publish expects.
package merge

import (
	"errors"
	"fmt"
	"sync"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/obs"
	"github.com/ipa-grid/ipa/internal/rmi"
)

// Publisher abstracts where a transport sends snapshots: the root
// manager directly, a SubMerger, or an RMI connection in a
// remote-worker deployment.
type Publisher interface {
	Publish(args PublishArgs, reply *PublishReply) error
}

// Snapshot is one transport send's payload: a delta (preferred) or a
// legacy whole tree, plus the progress and log lines that ride along.
type Snapshot struct {
	// Delta is the incremental snapshot. The builder must honor the
	// full flag it was given: when asked for a baseline, Delta.Full
	// must be set and Entries must carry the producer's entire state.
	Delta *aida.DeltaState
	// Tree is the legacy whole-tree snapshot (the full-flush ablation
	// baseline). Used only when Delta is nil.
	Tree *aida.TreeState
	// Done / Total drive the receiver's progress display.
	Done, Total int64
	// Log carries accumulated analysis output since the last send.
	Log string
}

// Transport is the delta-native snapshot uplink for one producer
// (engine or SubMerger). It owns the generation stamp (PublishArgs.Seq)
// and the re-baseline state machine, and applies the connection's wire
// compression choice to outgoing states. Safe for concurrent use;
// sends are serialized, which the generation ordering requires anyway.
type Transport struct {
	mu       sync.Mutex
	session  string
	worker   string
	upstream Publisher
	// policy makes the per-frame wire-compression choice: adaptive by
	// default (small or incompressible frames ship plain), forced to
	// always-compress by SetCompression — the retained WAN override.
	policy      *aida.CompressionPolicy
	gen         int64
	needFull    bool
	rebaselines int64
}

// NewTransport creates a transport publishing to upstream as workerID
// within sessionID.
func NewTransport(sessionID, workerID string, upstream Publisher) *Transport {
	return &Transport{
		session: sessionID, worker: workerID, upstream: upstream,
		policy: aida.NewCompressionPolicy(),
	}
}

// SetCompression forces compressed wire frames on every subsequent send
// — the WAN-worker override. Off (the default) leaves the choice to the
// adaptive per-frame policy: payloads under ~1 KiB and streams whose
// observed ratio stopped paying ship plain.
func (t *Transport) SetCompression(on bool) {
	t.policy.SetForce(on)
}

// CompressionStats reports how many frames the transport's adaptive
// policy compressed and skipped.
func (t *Transport) CompressionStats() (compressed, skipped int64) {
	return t.policy.Stats()
}

// Generation returns the stamp of the last send (0 before the first).
func (t *Transport) Generation() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.gen
}

// Rebaselines counts the sends after the first that were forced to
// carry a full baseline (receiver NeedFull or a transport failure) — a
// shard handoff surfaces here as exactly one re-baseline per producer.
func (t *Transport) Rebaselines() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rebaselines
}

var errEmptySnapshot = errors.New("merge: transport snapshot carries neither delta nor tree")

// Send builds and publishes one snapshot. The builder receives whether
// this send must be a full baseline (first send, post-failure, or
// receiver-requested resync) and returns the payload; a builder error
// aborts the send without consuming a generation. On a transport
// failure the next send re-baselines, because the delta's dirty bits
// are already consumed and its changes would otherwise be lost.
func (t *Transport) Send(build func(full bool) (Snapshot, error)) (PublishReply, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	full := t.needFull || t.gen == 0
	snap, err := build(full)
	if err != nil {
		return PublishReply{}, err
	}
	if t.needFull && t.gen > 0 {
		t.rebaselines++
	}
	t.gen++
	args := PublishArgs{
		SessionID: t.session, WorkerID: t.worker, Seq: t.gen,
		EventsDone: snap.Done, EventsTotal: snap.Total, Log: snap.Log,
		// Every publish originates a trace here (free while obs is
		// disabled: NewTrace returns the untraced zero context), so one
		// engine snapshot is followable through router, owner shard,
		// mirror replica, and WAL.
		Trace: obs.NewTrace(),
	}
	switch {
	case snap.Delta != nil:
		snap.Delta.SetCompressionPolicy(t.policy)
		args.Delta = snap.Delta
	case snap.Tree != nil:
		snap.Tree.SetCompressionPolicy(t.policy)
		args.Tree = *snap.Tree
	default:
		return PublishReply{}, errEmptySnapshot
	}
	var reply PublishReply
	if err := t.upstream.Publish(args, &reply); err != nil {
		t.needFull = true
		return PublishReply{}, fmt.Errorf("merge: publishing snapshot %d: %w", t.gen, err)
	}
	t.needFull = reply.NeedFull || !reply.Accepted
	return reply, nil
}

// RemotePublisher adapts an RMI connection into a Publisher for
// deployments where the next merge tier lives on another node. It
// honors the connection's compression preference, so WAN workers
// dialed with rmi.WithCompressedFrames ship compressed frames without
// any per-call plumbing.
type RemotePublisher struct {
	client *rmi.Client
	object string
	target string
}

// RMIObjectName is the registration name of the AIDA manager on the
// RMI server (see core.Manager).
const RMIObjectName = "AIDAManager"

// NewRemotePublisher wraps an RMI connection. object is the remote
// registration name ("" = RMIObjectName).
func NewRemotePublisher(client *rmi.Client, object string) *RemotePublisher {
	if object == "" {
		object = RMIObjectName
	}
	return &RemotePublisher{client: client, object: object, target: object + ".Publish"}
}

// Publish implements Publisher over the wire.
func (p *RemotePublisher) Publish(args PublishArgs, reply *PublishReply) error {
	if p.client.Compressed() {
		if args.Delta != nil {
			args.Delta.SetWireCompression(true)
		} else {
			// Only flag the tree when it is the payload: flagging the
			// zero TreeState of a delta publish would make gob transmit
			// the otherwise-omitted empty field.
			args.Tree.SetWireCompression(true)
		}
	}
	return p.client.Call(p.target, args, reply)
}

var (
	_ Publisher = (*Manager)(nil)
	_ Publisher = (*SubMerger)(nil)
	_ Publisher = (*RemotePublisher)(nil)
	_ Service   = (*Manager)(nil)
)
