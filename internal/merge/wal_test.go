package merge

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// walManager opens a log at path, replays it into a fresh manager, and
// attaches it — the exact restart sequence ipa-manager runs.
func walManager(t *testing.T, path string, opts WALOptions) (*Manager, *WAL, int) {
	t.Helper()
	m := NewManager()
	w, err := OpenWAL(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	n, err := w.Replay(m)
	if err != nil {
		t.Fatal(err)
	}
	m.SetWAL(w)
	return m, w, n
}

// TestWALReplayRebuildsSessions is the crash-restart round trip: a
// manager logs its publishes, "crashes" (only the log survives), and a
// cold manager replaying the log holds byte-identical merged trees.
func TestWALReplayRebuildsSessions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	m1, w1, n := walManager(t, path, WALOptions{SyncEvery: 1})
	if n != 0 {
		t.Fatalf("fresh log replayed %d records", n)
	}
	publishRounds(t, m1, nil, "sess-a", 6)
	publishRounds(t, m1, nil, "sess-b", 3)
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	m2, _, n := walManager(t, path, WALOptions{SyncEvery: 1})
	if n == 0 {
		t.Fatal("restart replayed nothing")
	}
	for _, sid := range []string{"sess-a", "sess-b"} {
		got, want := mergedOf(t, m2, sid), mergedOf(t, m1, sid)
		if len(want) == 0 {
			t.Fatalf("reference state for %s is empty", sid)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("replayed state for %s differs from the original", sid)
		}
	}
	// Versions must survive too: a client that polled version v before
	// the crash must not see the rebuilt session regress below it.
	var p1, p2 PollReply
	if err := m1.Poll(PollArgs{SessionID: "sess-a"}, &p1); err != nil {
		t.Fatal(err)
	}
	if err := m2.Poll(PollArgs{SessionID: "sess-a"}, &p2); err != nil {
		t.Fatal(err)
	}
	if p2.Version != p1.Version {
		t.Fatalf("replayed version %d, want %d", p2.Version, p1.Version)
	}
}

// TestWALReplayRestoresPromotionAndFence: epoch bumps and fence floors
// are state too — a restarted standby must still refuse its dead
// ancestor's stragglers.
func TestWALReplayRestoresPromotionAndFence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.wal")
	primary := NewManager()
	replica, w, _ := walManager(t, path, WALOptions{SyncEvery: 1})
	tree := publishRounds(t, primary, replica, "s", 4)
	oldEpoch := primary.Epoch("s")

	var pr PromoteReply
	if err := replica.Promote(PromoteArgs{SessionID: "s"}, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Found {
		t.Fatal("nothing to promote")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	cold, _, _ := walManager(t, path, WALOptions{SyncEvery: 1})
	if got := cold.Epoch("s"); got != pr.Epoch {
		t.Fatalf("replayed epoch %d, want the promoted %d", got, pr.Epoch)
	}
	got, want := mergedOf(t, cold, "s"), mergedOf(t, primary, "s")
	if !reflect.DeepEqual(got, want) {
		t.Fatal("replayed promoted state differs from the primary's")
	}
	// The fence replayed with it: a straggler mirror from the deposed
	// incarnation still bounces off the restarted copy.
	d, err := tree.Delta()
	if err != nil {
		t.Fatal(err)
	}
	var mr MirrorReply
	if err := cold.Mirror(MirrorArgs{SessionID: "s", WorkerID: "w0", Seq: 5, Epoch: oldEpoch, Delta: d}, &mr); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale mirror after replayed promote: err=%v, want ErrFenced", err)
	}
}

// TestWALCompactionPreservesState: rotating the log and re-seeding it
// with snapshots must not change what a replay rebuilds, and must
// actually retire the rotation file.
func TestWALCompactionPreservesState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.wal")
	m1, w1, _ := walManager(t, path, WALOptions{SyncEvery: 1, CompactEvery: 1 << 20})
	publishRounds(t, m1, nil, "sess-a", 8)
	publishRounds(t, m1, nil, "sess-b", 8)
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.CompactWAL(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".old"); !os.IsNotExist(err) {
		t.Fatalf("rotation file survived compaction (stat err %v)", err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction grew the log: %d → %d bytes over 16 single-fill deltas", before.Size(), after.Size())
	}
	// More traffic lands after compaction; replay must cover both eras.
	publishRounds(t, m1, nil, "sess-c", 2)
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	m2, _, _ := walManager(t, path, WALOptions{SyncEvery: 1})
	for _, sid := range []string{"sess-a", "sess-b", "sess-c"} {
		if got, want := mergedOf(t, m2, sid), mergedOf(t, m1, sid); !reflect.DeepEqual(got, want) {
			t.Fatalf("replayed state for %s differs after compaction", sid)
		}
	}
}

// TestWALTornTailTruncates: an OS crash mid-append leaves a half
// record. Replay must apply the complete prefix, cut the tail, and
// leave the log appendable — never refuse to start.
func TestWALTornTailTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	m1, w1, _ := walManager(t, path, WALOptions{SyncEvery: 1})
	publishRounds(t, m1, nil, "s", 5)
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-7); err != nil {
		t.Fatal(err)
	}

	m2, w2, n := walManager(t, path, WALOptions{SyncEvery: 1})
	if n == 0 {
		t.Fatal("torn tail discarded the whole log")
	}
	// The rebuilt state is a consistent prefix: identical trees up to
	// the last complete record (one round behind the original).
	var p2 PollReply
	if err := m2.Poll(PollArgs{SessionID: "s"}, &p2); err != nil {
		t.Fatal(err)
	}
	if p2.Version == 0 {
		t.Fatal("replayed prefix holds no state")
	}
	// The log keeps working after the cut: new appends follow the
	// truncation point and a fresh replay sees them.
	publishRounds(t, m2, nil, "s2", 2)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	m3, _, _ := walManager(t, path, WALOptions{SyncEvery: 1})
	if got, want := mergedOf(t, m3, "s2"), mergedOf(t, m2, "s2"); !reflect.DeepEqual(got, want) {
		t.Fatal("post-truncation appends did not survive a further replay")
	}
	if got, want := mergedOf(t, m3, "s"), mergedOf(t, m2, "s"); !reflect.DeepEqual(got, want) {
		t.Fatal("torn-tail prefix changed across a second replay")
	}
}
