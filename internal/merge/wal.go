// Durability: an optional append-only snapshot/delta log per manager.
// Every state-changing call the manager accepts (publish, mirror,
// import, reset, drop, fence, promote) appends one length-prefixed gob
// record; a restarted ipa-manager replays the log through the same
// entry points and rejoins the fabric with its sessions intact instead
// of version-0 tombstones. Compaction rotates the live log aside and
// re-seeds a fresh one with a full snapshot per session (Import-shaped)
// so replay cost tracks live state, not history. A torn tail — the
// record an OS crash cut mid-write — is detected by its length prefix,
// truncated, and replay stops at the last complete record: the state
// that syncs is a consistent prefix, and clients behind the lost tail
// re-sync through the version-regression path they already honor.

package merge

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sync"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/obs"
)

// walMagic heads every log file; a mismatch means the file is not ours.
const walMagic = "ipawal1\n"

// Record kinds. Snapshot records carry the same Import-shaped payload
// as imports; the separate kind only marks compaction re-seeds.
const (
	walPublish = 1 + iota
	walMirror
	walImport
	walSnapshot
	walReset
	walDrop
	walFence
	walPromote
)

// walRecord is one logged state change. Exactly one payload field is
// set, selected by Kind; each record is gob-encoded independently
// (fresh encoder per record) so a torn tail never corrupts its
// predecessors and replay needs no shared stream state.
type walRecord struct {
	Kind      uint8
	Publish   *PublishArgs
	Mirror    *MirrorArgs
	Import    *ImportArgs
	Session   string
	Tombstone bool
	Epoch     int64
}

// WALOptions tune the log.
type WALOptions struct {
	// SyncEvery fsyncs after this many appended records (<=1 = every
	// record, the durable default; larger values trade the tail for
	// throughput).
	SyncEvery int
	// CompactEvery rotates and re-snapshots after this many delta
	// records since the last compaction (<=0 selects 4096).
	CompactEvery int
}

// WAL is the append-only log. Open it, Replay it into a fresh Manager,
// then attach it with Manager.SetWAL; appends happen inside the
// manager's per-session write sections, so record order matches apply
// order per session.
type WAL struct {
	path string
	opts WALOptions

	mu       sync.Mutex
	f        *os.File
	unsynced int
	deltas   int
	closed   bool
}

// OpenWAL opens (or creates) the log at path.
func OpenWAL(path string, opts WALOptions) (*WAL, error) {
	if opts.CompactEvery <= 0 {
		opts.CompactEvery = 4096
	}
	w := &WAL{path: path, opts: opts}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if _, err := f.WriteString(walMagic); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		hdr := make([]byte, len(walMagic))
		if _, err := io.ReadFull(f, hdr); err != nil || string(hdr) != walMagic {
			f.Close()
			return nil, fmt.Errorf("merge: %s is not a manager log", path)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	w.f = f
	return w, nil
}

// Close syncs and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.f == nil {
		return nil
	}
	w.closed = true
	w.f.Sync()
	return w.f.Close()
}

// Path reports the log's file path.
func (w *WAL) Path() string { return w.path }

// append writes one record and reports whether the delta tail crossed
// the compaction threshold.
func (w *WAL) append(rec *walRecord) (compact bool, err error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return false, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.f == nil {
		return false, nil
	}
	var lenb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenb[:], uint64(buf.Len()))
	if _, err := w.f.Write(lenb[:n]); err != nil {
		return false, err
	}
	if _, err := w.f.Write(buf.Bytes()); err != nil {
		return false, err
	}
	w.unsynced++
	if w.opts.SyncEvery <= 1 || w.unsynced >= w.opts.SyncEvery {
		t0 := obs.Now()
		if err := w.f.Sync(); err != nil {
			return false, err
		}
		obsWALFsyncSeconds.ObserveSince(t0)
		w.unsynced = 0
	}
	obsWALUnsynced.Set(int64(w.unsynced))
	switch rec.Kind {
	case walSnapshot:
	default:
		w.deltas++
	}
	if w.deltas >= w.opts.CompactEvery {
		w.deltas = 0
		return true, nil
	}
	return false, nil
}

// rotate moves the live log aside (path → path.old) and starts a fresh
// one; the compactor then re-seeds the fresh log with session
// snapshots and drops the rotation. Replay reads path.old first, so a
// crash anywhere inside compaction loses nothing.
func (w *WAL) rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(w.path, w.path+".old"); err != nil {
		// Reopen the live log: compaction failed but appends must go on.
		f, oerr := os.OpenFile(w.path, os.O_RDWR|os.O_APPEND, 0o644)
		if oerr == nil {
			w.f = f
		}
		return err
	}
	f, err := os.OpenFile(w.path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(walMagic); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.unsynced = 0
	return nil
}

// dropOld removes a completed compaction's rotation file.
func (w *WAL) dropOld() error {
	if err := os.Remove(w.path + ".old"); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Replay feeds every logged record through the manager's normal entry
// points — imports restore baselines, publishes and mirrors re-apply
// deltas with their original seq stamps — so the rebuilt trees are
// byte-identical to what the log covered. Reads the rotation file
// first if a compaction was interrupted. Returns the record count
// applied. A torn tail on the live log is truncated so later appends
// follow the last complete record.
func (w *WAL) Replay(m *Manager) (int, error) {
	total := 0
	if old, err := os.Open(w.path + ".old"); err == nil {
		n, _, rerr := replayFile(old, m)
		old.Close()
		total += n
		if rerr != nil {
			return total, fmt.Errorf("merge: replaying %s.old: %w", w.path, rerr)
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return total, nil
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return total, err
	}
	n, good, err := replayFile(w.f, m)
	total += n
	if err != nil {
		return total, err
	}
	// Cut any torn tail, then position for appends.
	if err := w.f.Truncate(good); err != nil {
		return total, err
	}
	if _, err := w.f.Seek(0, io.SeekEnd); err != nil {
		return total, err
	}
	return total, nil
}

// replayFile applies every complete record in r and returns how many
// applied plus the offset just past the last complete one. A torn or
// corrupt tail ends the replay without error (the crash case this log
// exists for); a record that decodes but fails to apply is an error.
func replayFile(f io.Reader, m *Manager) (n int, good int64, err error) {
	return scanFile(f, func(rec *walRecord) error { return applyRecord(m, rec) })
}

// scanFile decodes every complete record in f and hands each to apply,
// returning how many were handed over plus the offset just past the
// last complete record. A torn or corrupt tail ends the scan without
// error; an apply error stops it.
func scanFile(f io.Reader, apply func(*walRecord) error) (n int, good int64, err error) {
	br := bufio.NewReaderSize(f, 1<<16)
	hdr := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, hdr); err != nil || string(hdr) != walMagic {
		return 0, 0, fmt.Errorf("merge: log header mismatch")
	}
	good = int64(len(walMagic))
	buf := make([]byte, 0, 1<<12)
	for {
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return n, good, nil // clean EOF or torn length prefix
		}
		if size > 1<<31 {
			return n, good, nil // garbage length: treat as torn tail
		}
		if uint64(cap(buf)) < size {
			buf = make([]byte, size)
		}
		buf = buf[:size]
		if _, err := io.ReadFull(br, buf); err != nil {
			return n, good, nil // torn payload
		}
		var rec walRecord
		if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(&rec); err != nil {
			return n, good, nil // corrupt tail record
		}
		if err := apply(&rec); err != nil {
			return n, good, err
		}
		good += int64(uvarintLen(size)) + int64(size)
		n++
	}
}

func uvarintLen(v uint64) int {
	var b [binary.MaxVarintLen64]byte
	return binary.PutUvarint(b[:], v)
}

func applyRecord(m *Manager, rec *walRecord) error {
	switch rec.Kind {
	case walPublish:
		var pr PublishReply
		// A refused replayed publish (stale seq after a later snapshot
		// record) is the log converging, not an error.
		return m.Publish(*rec.Publish, &pr)
	case walMirror:
		var mr MirrorReply
		if err := m.Mirror(*rec.Mirror, &mr); err != nil && err != ErrFenced {
			return err
		}
		return nil
	case walImport, walSnapshot:
		var ir ImportReply
		if err := m.Import(*rec.Import, &ir); err != nil && err != ErrFenced {
			return err
		}
		return nil
	case walReset:
		var rr ResetReply
		if err := m.Reset(ResetArgs{SessionID: rec.Session}, &rr); err != nil && err != ErrSealed {
			return err
		}
		return nil
	case walDrop:
		var dr DropReply
		return m.DropSession(DropArgs{SessionID: rec.Session, Tombstone: rec.Tombstone}, &dr)
	case walFence:
		var fr FenceReply
		return m.Fence(FenceArgs{SessionID: rec.Session, Epoch: rec.Epoch}, &fr)
	case walPromote:
		var pr PromoteReply
		return m.Promote(PromoteArgs{SessionID: rec.Session, Epoch: rec.Epoch}, &pr)
	default:
		return fmt.Errorf("merge: unknown log record kind %d", rec.Kind)
	}
}

// ReplaySessionInto replays one session's state content from the log
// files at path (the rotation file first, exactly like Replay) into a
// different manager — the WAL-backed replica handoff: when a primary
// dies, the copy about to be promoted inherits every delta the primary
// durably logged, including ones the asynchronous mirror stream never
// delivered. Only state-content records are applied — snapshots and
// imports through Import, publishes and mirrors through Mirror (the
// replica-side entry point, whose seq machinery silently drops records
// the copy already holds) — never fences, promotions, resets, or drops:
// those describe the dead incarnation's lifecycle, which the failover
// itself re-decides. The files are read without truncating or locking
// anything, so a live log being appended to concurrently just yields a
// tolerated torn tail. Returns the number of records accepted by m.
func ReplaySessionInto(path, sessionID string, m *Manager) (int, error) {
	applied := 0
	apply := func(rec *walRecord) error {
		switch rec.Kind {
		case walImport, walSnapshot:
			if rec.Import == nil || rec.Import.SessionID != sessionID {
				return nil
			}
			var ir ImportReply
			if err := m.Import(*rec.Import, &ir); err != nil && err != ErrFenced {
				return err
			}
			applied++
		case walPublish:
			if rec.Publish == nil || rec.Publish.SessionID != sessionID {
				return nil
			}
			p := rec.Publish
			// The primary logged its accepted publishes; the copy replays
			// them through Mirror, the entry point built for exactly this
			// stream. Epoch 0 means "whatever incarnation you hold" —
			// correct here, because the copy adopted the dead primary's
			// epoch from the mirror stream and the promotion that follows
			// re-stamps it anyway.
			margs := MirrorArgs{
				SessionID: p.SessionID, WorkerID: p.WorkerID, Seq: p.Seq,
				Delta: p.Delta, EventsDone: p.EventsDone, EventsTotal: p.EventsTotal,
				Log: p.Log,
			}
			if margs.Delta == nil {
				margs.Delta = &aida.DeltaState{Full: true, Entries: p.Tree.Entries}
			}
			var mr MirrorReply
			if err := m.Mirror(margs, &mr); err != nil && err != ErrFenced {
				return err
			}
			if mr.Accepted {
				applied++
			}
		case walMirror:
			if rec.Mirror == nil || rec.Mirror.SessionID != sessionID {
				return nil
			}
			var mr MirrorReply
			if err := m.Mirror(*rec.Mirror, &mr); err != nil && err != ErrFenced {
				return err
			}
			if mr.Accepted {
				applied++
			}
		}
		return nil
	}
	if old, err := os.Open(path + ".old"); err == nil {
		_, _, rerr := scanFile(old, apply)
		old.Close()
		if rerr != nil {
			return applied, fmt.Errorf("merge: replaying %s.old: %w", path, rerr)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return applied, nil
		}
		return applied, err
	}
	defer f.Close()
	if _, _, err := scanFile(f, apply); err != nil {
		return applied, err
	}
	return applied, nil
}

// SetWAL attaches the log: every subsequent state-changing call appends
// to it. Attach after Replay, never before (replayed records must not
// re-log themselves).
func (m *Manager) SetWAL(w *WAL) { m.wal = w }

// WAL reports the attached log (nil when durability is off).
func (m *Manager) WAL() *WAL { return m.wal }

// walAppend logs one record if a WAL is attached, kicking off an async
// compaction when the delta tail crosses the threshold. Callers hold
// the session write lock, so per-session record order matches apply
// order; the WAL's own mutex orders records across sessions.
func (m *Manager) walAppend(rec *walRecord) error {
	w := m.wal
	if w == nil {
		return nil
	}
	compact, err := w.append(rec)
	if err != nil {
		return fmt.Errorf("merge: manager log append: %w", err)
	}
	if compact {
		go m.CompactWAL()
	}
	return nil
}

// CompactWAL rotates the log aside and re-seeds a fresh one with a full
// Import-shaped snapshot per live session, then drops the rotation.
// Single-flight; concurrent triggers are no-ops. Safe against crashes
// at any point: replay reads the rotation first, and records appended
// to the fresh log before a session's snapshot landed are simply
// superseded by it.
func (m *Manager) CompactWAL() error {
	w := m.wal
	if w == nil {
		return nil
	}
	if !m.walCompacting.CompareAndSwap(false, true) {
		return nil
	}
	defer m.walCompacting.Store(false)
	if err := w.rotate(); err != nil {
		return err
	}
	var firstErr error
	m.sessions.Range(func(k, _ any) bool {
		if err := m.logSnapshot(k.(string), w); err != nil {
			firstErr = err
			return false
		}
		return true
	})
	if firstErr != nil {
		// Keep the rotation: replay still covers everything.
		return firstErr
	}
	return w.dropOld()
}

// logSnapshot appends one session's full state as a snapshot record
// (plus its fence floor, which Import does not carry). Takes the
// session write lock, then the log mutex — the same order every logged
// write uses.
func (m *Manager) logSnapshot(sessionID string, w *WAL) error {
	s := m.lookup(sessionID)
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.version != 0 || len(s.workers) > 0 {
		for _, id := range s.workerIDs {
			if err := s.workers[id].materialize(); err != nil {
				return err
			}
		}
		imp := &ImportArgs{SessionID: sessionID, Version: s.version, Epoch: s.epoch.Load(), LastTraceID: s.lastTrace.Load()}
		for _, id := range s.workerIDs {
			wk := s.workers[id]
			ws := WorkerSnapshot{WorkerID: id, Seq: wk.seq, Done: wk.done, Total: wk.total}
			if wk.tree != nil {
				st, err := wk.tree.State()
				if err != nil {
					return err
				}
				ws.HasTree, ws.Tree = true, *st
			}
			imp.Workers = append(imp.Workers, ws)
		}
		for path, ver := range s.gone {
			imp.Removed = append(imp.Removed, RemovedPath{Path: path, Version: ver})
		}
		for _, l := range s.logs {
			imp.Logs = append(imp.Logs, LogLine{Version: l.version, Text: l.text})
		}
		if _, err := w.append(&walRecord{Kind: walSnapshot, Import: imp}); err != nil {
			return err
		}
	}
	if f := s.fence.Load(); f > 0 {
		if _, err := w.append(&walRecord{Kind: walFence, Session: sessionID, Epoch: f}); err != nil {
			return err
		}
	}
	return nil
}
