// Batched publish ≡ sequential publishes: the Batcher changes transport
// economics only. These tests pin the equivalence — same merged state,
// same seq/NeedFull state machine, same per-item errors — between
// coalesced and one-call-per-publish runs, including under injected
// upstream faults, plus the Batcher's own mechanics (MaxBatch early
// ship, Window accumulation, Disabled passthrough, Close).
package merge

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ipa-grid/ipa/internal/aida"
)

// faultyUpstream fronts a Manager and injects deterministic per-item
// faults keyed on each session's publish count: errEvery>0 fails every
// nth call outright (the publish never reaches the Manager); rejectAt>0
// fabricates a NeedFull rejection at that call index.
type faultyUpstream struct {
	inner    *Manager
	errEvery int
	rejectAt int

	mu       sync.Mutex
	calls    map[string]int
	pubs     int64 // Publish calls seen (passthrough accounting)
	batches  int64 // PublishBatch calls seen
	batchLen int64 // items carried by them
}

func newFaultyUpstream(errEvery, rejectAt int) *faultyUpstream {
	return &faultyUpstream{inner: NewManager(), errEvery: errEvery, rejectAt: rejectAt, calls: map[string]int{}}
}

func (f *faultyUpstream) apply(args PublishArgs, reply *PublishReply) error {
	f.mu.Lock()
	f.calls[args.SessionID]++
	n := f.calls[args.SessionID]
	f.mu.Unlock()
	if f.errEvery > 0 && n%f.errEvery == 0 {
		return fmt.Errorf("injected fault: %s call %d", args.SessionID, n)
	}
	if f.rejectAt > 0 && n == f.rejectAt {
		reply.Accepted, reply.NeedFull = false, true
		return nil
	}
	return f.inner.Publish(args, reply)
}

func (f *faultyUpstream) Publish(args PublishArgs, reply *PublishReply) error {
	f.mu.Lock()
	f.pubs++
	f.mu.Unlock()
	return f.apply(args, reply)
}

func (f *faultyUpstream) PublishBatch(args PublishBatchArgs, reply *PublishBatchReply) error {
	f.mu.Lock()
	f.batches++
	f.batchLen += int64(len(args.Items))
	f.mu.Unlock()
	reply.Replies = make([]PublishReply, len(args.Items))
	reply.Errs = make([]string, len(args.Items))
	for i := range args.Items {
		if err := f.apply(args.Items[i], &reply.Replies[i]); err != nil {
			reply.Errs[i] = err.Error()
		}
	}
	return nil
}

// driveSessions runs `sessions` producers × `rounds` delta publishes
// through pub, concurrently when parallel is set. Each session's
// content is a deterministic function of (session, round), so two runs
// over equal fault schedules must converge to identical merged state.
// Producer errors (injected faults surfacing through Transport.Send)
// are tolerated: the next send re-baselines, same as production.
func driveSessions(t *testing.T, pub Publisher, sessions, rounds int, parallel bool) {
	t.Helper()
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		run := func(s int) {
			sid := fmt.Sprintf("sess-%d", s)
			tree := aida.NewTree()
			h, err := tree.H1D("/a", "h", "", 50, 0, 100)
			if err != nil {
				t.Error(err)
				return
			}
			tr := NewTransport(sid, "w0", pub)
			for r := 0; r < rounds; r++ {
				h.Fill(float64((7*s + 13*r) % 100))
				_, err := tr.Send(func(full bool) (Snapshot, error) {
					if full {
						d, err := tree.FullDelta()
						return Snapshot{Delta: d}, err
					}
					d, err := tree.Delta()
					return Snapshot{Delta: d}, err
				})
				if err != nil && !strings.Contains(err.Error(), "injected fault") {
					t.Error(err)
					return
				}
			}
		}
		if parallel {
			wg.Add(1)
			go func(s int) { defer wg.Done(); run(s) }(s)
		} else {
			run(s)
		}
	}
	wg.Wait()
}

// mergedState polls every session's full merged tree and returns a
// deterministic fingerprint per session.
func mergedState(t *testing.T, m *Manager, sessions int) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for s := 0; s < sessions; s++ {
		sid := fmt.Sprintf("sess-%d", s)
		var poll PollReply
		if err := m.Poll(PollArgs{SessionID: sid, Full: true}, &poll); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		for _, e := range poll.Entries {
			st, err := e.Frame.Decode()
			if err != nil {
				t.Fatal(err)
			}
			if err := enc.Encode(e.Path); err != nil {
				t.Fatal(err)
			}
			if err := enc.Encode(&st); err != nil {
				t.Fatal(err)
			}
		}
		out[sid] = buf.Bytes()
	}
	return out
}

func requireSameState(t *testing.T, batched, direct map[string][]byte) {
	t.Helper()
	if len(batched) != len(direct) {
		t.Fatalf("session count: batched %d, direct %d", len(batched), len(direct))
	}
	for sid, b := range batched {
		if !bytes.Equal(b, direct[sid]) {
			t.Fatalf("merged state for %s diverges between batched and sequential publishes", sid)
		}
	}
}

func TestBatchedPublishEquivalence(t *testing.T) {
	const sessions, rounds = 6, 25
	batchedUp := newFaultyUpstream(0, 0)
	b := NewBatcher(batchedUp, BatcherOptions{})
	driveSessions(t, b, sessions, rounds, true)
	b.Close()

	directUp := newFaultyUpstream(0, 0)
	driveSessions(t, directUp, sessions, rounds, false)

	requireSameState(t, mergedState(t, batchedUp.inner, sessions), mergedState(t, directUp.inner, sessions))
}

func TestBatchedPublishEquivalenceUnderFaults(t *testing.T) {
	// Every 7th publish per session errors before reaching the Manager,
	// and each session's 4th call is rejected with NeedFull. The
	// transport re-baselines after both, so batched and sequential runs
	// over the same schedule must still converge to identical state.
	const sessions, rounds = 5, 30
	batchedUp := newFaultyUpstream(7, 4)
	b := NewBatcher(batchedUp, BatcherOptions{})
	driveSessions(t, b, sessions, rounds, true)
	b.Close()

	directUp := newFaultyUpstream(7, 4)
	driveSessions(t, directUp, sessions, rounds, false)

	requireSameState(t, mergedState(t, batchedUp.inner, sessions), mergedState(t, directUp.inner, sessions))
}

func TestBatchSeqGapStillTriggersNeedFull(t *testing.T) {
	// Seq semantics ride through the batch path untouched: a sequence
	// gap inside a multi-item batch gets the same NeedFull answer a
	// direct publish would.
	m := NewManager()
	tree := aida.NewTree()
	h, err := tree.H1D("/a", "h", "", 10, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Fill(1)
	full, err := tree.FullDelta()
	if err != nil {
		t.Fatal(err)
	}
	var rep PublishReply
	if err := m.Publish(PublishArgs{SessionID: "s", WorkerID: "w", Seq: 1, Delta: full}, &rep); err != nil || !rep.Accepted {
		t.Fatalf("baseline publish: %v %+v", err, rep)
	}
	h.Fill(2)
	d1, err := tree.Delta()
	if err != nil {
		t.Fatal(err)
	}
	var batch PublishBatchReply
	err = m.PublishBatch(PublishBatchArgs{Items: []PublishArgs{
		{SessionID: "s", WorkerID: "w", Seq: 5, Delta: d1}, // gap: 1 → 5
	}}, &batch)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Errs[0] != "" {
		t.Fatalf("gap item errored (%s); want NeedFull rejection", batch.Errs[0])
	}
	if batch.Replies[0].Accepted || !batch.Replies[0].NeedFull {
		t.Fatalf("gap item reply = %+v, want rejected with NeedFull", batch.Replies[0])
	}
}

func TestBatcherMaxBatchShipsOneBatch(t *testing.T) {
	const k = 4
	up := newFaultyUpstream(0, 0)
	// A long window plus MaxBatch=k: nothing ships until all k
	// publishes queue, then they ship as exactly one batch.
	b := NewBatcher(up, BatcherOptions{Window: time.Minute, MaxBatch: k})
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sid := fmt.Sprintf("s%d", i)
			tree := aida.NewTree()
			h, err := tree.H1D("/a", "h", "", 10, 0, 10)
			if err != nil {
				t.Error(err)
				return
			}
			h.Fill(float64(i))
			d, err := tree.FullDelta()
			if err != nil {
				t.Error(err)
				return
			}
			var rep PublishReply
			if err := b.Publish(PublishArgs{SessionID: sid, WorkerID: "w", Seq: 1, Delta: d}, &rep); err != nil {
				t.Errorf("publish %d: %v", i, err)
			} else if !rep.Accepted {
				t.Errorf("publish %d not accepted: %+v", i, rep)
			}
		}(i)
	}
	wg.Wait()
	flushes, published := b.Stats()
	if flushes != 1 || published != k {
		t.Fatalf("stats = %d flushes / %d published, want 1 / %d", flushes, published, k)
	}
	up.mu.Lock()
	defer up.mu.Unlock()
	if up.batches != 1 || up.batchLen != k || up.pubs != 0 {
		t.Fatalf("upstream saw %d batches (%d items) + %d plain publishes, want 1 (%d) + 0",
			up.batches, up.batchLen, up.pubs, k)
	}
}

func TestBatcherPerItemFaultIsolation(t *testing.T) {
	up := newFaultyUpstream(2, 0) // faults even-numbered calls per session
	b := NewBatcher(up, BatcherOptions{Window: time.Minute, MaxBatch: 2})
	defer b.Close()

	mkDelta := func(t *testing.T) *aida.DeltaState {
		t.Helper()
		tree := aida.NewTree()
		h, err := tree.H1D("/a", "h", "", 10, 0, 10)
		if err != nil {
			t.Fatal(err)
		}
		h.Fill(1)
		d, err := tree.FullDelta()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	// Scope the fault to session "bad" by pre-positioning the per-session
	// call counters: good's next call is 3 (odd → clean), bad's is 2.
	up.calls["good"] = 2
	up.calls["bad"] = 1

	var wg sync.WaitGroup
	var goodErr, badErr error
	var goodRep PublishReply
	wg.Add(2)
	go func() {
		defer wg.Done()
		goodErr = b.Publish(PublishArgs{SessionID: "good", WorkerID: "w", Seq: 1, Delta: mkDelta(t)}, &goodRep)
	}()
	go func() {
		defer wg.Done()
		var rep PublishReply
		badErr = b.Publish(PublishArgs{SessionID: "bad", WorkerID: "w", Seq: 1, Delta: mkDelta(t)}, &rep)
	}()
	wg.Wait()

	if badErr == nil || !strings.Contains(badErr.Error(), "injected fault") {
		t.Fatalf("faulted item error = %v, want injected fault", badErr)
	}
	if goodErr != nil {
		t.Fatalf("batch-mate of a faulted item failed too: %v", goodErr)
	}
	if !goodRep.Accepted {
		t.Fatalf("batch-mate not accepted: %+v", goodRep)
	}
}

// errTransport always fails the whole call — the transport-level
// failure mode, as opposed to per-item errors.
type errTransport struct{ err error }

func (e errTransport) Publish(PublishArgs, *PublishReply) error                { return e.err }
func (e errTransport) PublishBatch(PublishBatchArgs, *PublishBatchReply) error { return e.err }

func TestBatcherTransportFailureFailsAllItems(t *testing.T) {
	boom := errors.New("link down")
	b := NewBatcher(errTransport{boom}, BatcherOptions{Window: time.Minute, MaxBatch: 2})
	defer b.Close()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var rep PublishReply
			errs[i] = b.Publish(PublishArgs{SessionID: fmt.Sprintf("s%d", i), Seq: 1}, &rep)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("item %d error = %v, want transport failure", i, err)
		}
	}
}

func TestBatcherDisabledIsPassthrough(t *testing.T) {
	up := newFaultyUpstream(0, 0)
	b := NewBatcher(up, BatcherOptions{Disabled: true})
	driveSessions(t, b, 3, 5, true)
	b.Close()
	up.mu.Lock()
	defer up.mu.Unlock()
	if up.batches != 0 {
		t.Fatalf("disabled batcher still shipped %d batches", up.batches)
	}
	if up.pubs != 15 {
		t.Fatalf("disabled batcher forwarded %d publishes, want 15", up.pubs)
	}
}

func TestBatcherCloseRejectsLatePublishes(t *testing.T) {
	b := NewBatcher(newFaultyUpstream(0, 0), BatcherOptions{})
	b.Close()
	var rep PublishReply
	if err := b.Publish(PublishArgs{SessionID: "s", Seq: 1}, &rep); !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("publish after close = %v, want ErrBatcherClosed", err)
	}
}
