package merge

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/ipa-grid/ipa/internal/aida"
)

// scriptedUpstream is a Publisher whose replies carry a controllable
// backpressure hint.
type scriptedUpstream struct {
	mu    sync.Mutex
	busy  bool
	calls int
}

func (p *scriptedUpstream) SetBusy(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.busy = on
}

func (p *scriptedUpstream) Calls() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

func (p *scriptedUpstream) Publish(args PublishArgs, reply *PublishReply) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls++
	reply.Accepted = true
	reply.Version = int64(p.calls)
	if p.busy {
		reply.Busy = true
		reply.QueueDepth = 3
	}
	return nil
}

// TestSubMergerWidensFlushIntervalUnderPressure drives a SubMerger on a
// fake clock: while the upstream reports Busy, each flush doubles the
// effective flush interval (up to 8×); clear replies decay it back.
func TestSubMergerWidensFlushIntervalUnderPressure(t *testing.T) {
	up := &scriptedUpstream{}
	sm := NewSubMerger("bp-group", "s", up, 1000) // interval-driven only
	sm.FlushInterval = 100 * time.Millisecond
	now := time.Unix(0, 0)
	sm.clock = func() time.Time { return now }

	tree := aida.NewTree()
	h, err := tree.H1D("/h", "x", "", 10, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	seq := int64(0)
	publish := func() {
		t.Helper()
		h.Fill(1)
		d, err := tree.Delta()
		if err != nil {
			t.Fatal(err)
		}
		seq++
		var rep PublishReply
		if err := sm.Publish(PublishArgs{SessionID: "s", WorkerID: "w0", Seq: seq, Delta: d}, &rep); err != nil {
			t.Fatal(err)
		}
	}
	// The jittered base interval is 100ms ± 20%: a 130ms step always
	// crosses an unwidened deadline, never a once-widened (≥160ms) one.
	step := func(d time.Duration) { now = now.Add(d) }

	publish() // arms the first deadline, no flush yet
	if got := up.Calls(); got != 0 {
		t.Fatalf("flushed %d times before any deadline", got)
	}
	up.SetBusy(true)
	step(130 * time.Millisecond)
	publish() // deadline due → flush; busy reply raises pressure
	if got := up.Calls(); got != 1 {
		t.Fatalf("calls after first deadline = %d, want 1", got)
	}
	if got := sm.Pressure(); got != 1 {
		t.Fatalf("pressure after one busy reply = %d, want 1", got)
	}
	step(130 * time.Millisecond)
	publish() // would have been due unwidened; the 2× deadline is not
	if got := up.Calls(); got != 1 {
		t.Fatalf("pressured SubMerger flushed anyway (calls=%d)", got)
	}
	step(130 * time.Millisecond)
	publish() // 260ms since the flush: past the ≤240ms widened deadline
	if got := up.Calls(); got != 2 {
		t.Fatalf("calls after widened deadline = %d, want 2", got)
	}
	if got := sm.Pressure(); got != 2 {
		t.Fatalf("pressure after two busy replies = %d, want 2", got)
	}
	// Pressure caps at maxFlushPressure even under endless busy replies.
	for i := 0; i < 4; i++ {
		step(time.Second)
		publish()
	}
	if got := sm.Pressure(); got != maxFlushPressure {
		t.Fatalf("pressure = %d, want capped at %d", got, maxFlushPressure)
	}
	// Clear replies decay it back one level per flush.
	up.SetBusy(false)
	for want := maxFlushPressure - 1; want >= 0; want-- {
		step(time.Second)
		publish()
		if got := sm.Pressure(); got != want {
			t.Fatalf("pressure during decay = %d, want %d", got, want)
		}
	}
}

// TestPublishReportsQueueDepth: publishes queued behind a held write
// section must see the backpressure hint on their replies.
func TestPublishReportsQueueDepth(t *testing.T) {
	m := NewManager()
	tree := aida.NewTree()
	h, err := tree.H1D("/h", "x", "", 10, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Fill(1)
	d, err := tree.FullDelta()
	if err != nil {
		t.Fatal(err)
	}
	var rep PublishReply
	if err := m.Publish(PublishArgs{SessionID: "s", WorkerID: "w0", Seq: 1, Delta: d}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Busy || rep.QueueDepth != 0 {
		t.Fatalf("uncontended publish reported pressure: %+v", rep)
	}

	// Hold the session's write lock and stack publishes behind it.
	s := m.lookup("s")
	s.mu.Lock()
	const waiters = 3
	replies := make(chan PublishReply, waiters)
	for i := 0; i < waiters; i++ {
		i := i
		go func() {
			wt := aida.NewTree()
			wh, _ := wt.H1D("/h", "x", "", 10, 0, 10)
			wh.Fill(float64(i))
			wd, _ := wt.FullDelta()
			var r PublishReply
			if err := m.Publish(PublishArgs{
				SessionID: "s", WorkerID: fmt.Sprintf("q%d", i), Seq: 1, Delta: wd,
			}, &r); err != nil {
				t.Error(err)
			}
			replies <- r
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.pubWaiting.Load() < waiters {
		if time.Now().After(deadline) {
			s.mu.Unlock()
			t.Fatalf("only %d publishes queued", s.pubWaiting.Load())
		}
		time.Sleep(time.Millisecond)
	}
	s.mu.Unlock()
	maxDepth, busy := 0, false
	for i := 0; i < waiters; i++ {
		r := <-replies
		if r.QueueDepth > maxDepth {
			maxDepth = r.QueueDepth
		}
		busy = busy || r.Busy
	}
	// The first publish to win the lock ran with the other two still
	// queued; it must have reported them.
	if !busy || maxDepth < 1 {
		t.Fatalf("no queued publish reported pressure (busy=%v maxDepth=%d)", busy, maxDepth)
	}

	// The hint rides FlushReply too (uncontended here: depth 0).
	var fr FlushReply
	if err := m.Flush(FlushArgs{SessionID: "s"}, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Busy || fr.QueueDepth != 0 {
		t.Fatalf("idle flush reported pressure: busy=%v depth=%d", fr.Busy, fr.QueueDepth)
	}
}
