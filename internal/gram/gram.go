// Package gram is the Grid Resource Allocation Manager of the framework —
// the job-submission gateway between the manager node and the compute
// element's scheduler ("the analysis engines are started using the GRAM
// server that is provided as part of a standard Globus software base
// installation", §3.2).
//
// A JobManager accepts RSL-style job descriptions, expands Count into
// individual scheduler submissions, tracks their collective state, and
// reports it back — the paper's "Submit Analysis Engine Jobs" arrow in
// Figure 1. Executables are not forked processes here: the hosting worker
// binary registers named launchers (e.g. the analysis-engine launcher),
// which is how a 2006 GRAM jobmanager-fork on a shared-everything test
// grid behaved from the service's perspective.
package gram

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/ipa-grid/ipa/internal/scheduler"
)

// JobDescription is the RSL analogue: what to run, where, how many.
type JobDescription struct {
	// Executable names a registered launcher ("ipa-engine", …).
	Executable string
	// Arguments are passed to the launcher.
	Arguments []string
	// Environment carries key=value pairs (session IDs, endpoints, …).
	Environment map[string]string
	// Count is the number of instances (the paper's pre-configured
	// number of analysis engines).
	Count int
	// Queue selects the scheduler queue (the dedicated interactive
	// queue for sessions).
	Queue string
	// User is the mapped local account from the gridmap.
	User string
}

// Launcher runs one instance of an executable on a node. index identifies
// the instance within the request (0..Count-1).
type Launcher func(ctx context.Context, node string, index int, jd JobDescription) error

// State summarizes a multi-instance GRAM job.
type State string

// GRAM job states (the GT4 names).
const (
	StateUnsubmitted State = "Unsubmitted"
	StatePending     State = "Pending"
	StateActive      State = "Active"
	StateDone        State = "Done"
	StateFailed      State = "Failed"
)

// Job tracks one submission request.
type Job struct {
	ID    string
	Desc  JobDescription
	parts []*scheduler.Job
	mgr   *JobManager
}

// JobManager is the GRAM service endpoint.
type JobManager struct {
	cluster *scheduler.Cluster

	mu        sync.Mutex
	launchers map[string]Launcher
	jobs      map[string]*Job
	nextID    int64
}

// NewJobManager wraps a scheduler cluster.
func NewJobManager(cluster *scheduler.Cluster) *JobManager {
	return &JobManager{
		cluster:   cluster,
		launchers: make(map[string]Launcher),
		jobs:      make(map[string]*Job),
	}
}

// RegisterLauncher installs the implementation of an executable name.
func (m *JobManager) RegisterLauncher(executable string, l Launcher) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.launchers[executable]; dup {
		panic(fmt.Sprintf("gram: duplicate launcher %q", executable))
	}
	m.launchers[executable] = l
}

// Submit places Count scheduler jobs and returns the GRAM job handle.
func (m *JobManager) Submit(jd JobDescription) (*Job, error) {
	if jd.Count <= 0 {
		return nil, errors.New("gram: Count must be ≥ 1")
	}
	m.mu.Lock()
	launcher, ok := m.launchers[jd.Executable]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("gram: unknown executable %q", jd.Executable)
	}
	m.nextID++
	id := fmt.Sprintf("gram-%d", m.nextID)
	m.mu.Unlock()

	job := &Job{ID: id, Desc: jd, mgr: m}
	for i := 0; i < jd.Count; i++ {
		i := i
		sj, err := m.cluster.Submit(scheduler.Spec{
			Name:  fmt.Sprintf("%s[%d]", jd.Executable, i),
			User:  jd.User,
			Queue: jd.Queue,
			Run: func(ctx context.Context, node string) error {
				return launcher(ctx, node, i, jd)
			},
		})
		if err != nil {
			// Roll back what was already queued.
			for _, prev := range job.parts {
				m.cluster.Cancel(prev.ID)
			}
			return nil, fmt.Errorf("gram: submitting instance %d: %w", i, err)
		}
		job.parts = append(job.parts, sj)
	}
	m.mu.Lock()
	m.jobs[id] = job
	m.mu.Unlock()
	return job, nil
}

// Job resolves a GRAM job by ID.
func (m *JobManager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// State aggregates instance states: Failed if any failed or was cancelled,
// Done when all finished, Active if any runs, else Pending.
func (j *Job) State() State {
	var pending, active, done, failed int
	for _, p := range j.parts {
		snap, err := j.mgr.cluster.Snapshot(p.ID)
		if err != nil {
			failed++
			continue
		}
		switch snap.State {
		case scheduler.Pending:
			pending++
		case scheduler.Running:
			active++
		case scheduler.Done:
			done++
		default:
			failed++
		}
	}
	switch {
	case failed > 0:
		return StateFailed
	case active > 0:
		return StateActive
	case pending > 0:
		return StatePending
	case done == len(j.parts):
		return StateDone
	default:
		return StateUnsubmitted
	}
}

// Nodes lists the nodes instances run (or ran) on, indexed by instance.
func (j *Job) Nodes() []string {
	out := make([]string, len(j.parts))
	for i, p := range j.parts {
		if snap, err := j.mgr.cluster.Snapshot(p.ID); err == nil {
			out[i] = snap.Node
		}
	}
	return out
}

// Cancel stops every instance.
func (j *Job) Cancel() {
	for _, p := range j.parts {
		j.mgr.cluster.Cancel(p.ID)
	}
}

// WaitActive blocks until every instance has left Pending (all running or
// terminal) or the timeout expires. It returns the time spent waiting —
// the paper's engine-start latency ("started relatively quickly — within
// the limits of human tolerance", §2.3).
func (j *Job) WaitActive(timeout time.Duration) (time.Duration, error) {
	start := time.Now()
	deadline := start.Add(timeout)
	for {
		allStarted := true
		for _, p := range j.parts {
			snap, err := j.mgr.cluster.Snapshot(p.ID)
			if err != nil {
				return time.Since(start), err
			}
			if snap.State == scheduler.Pending {
				allStarted = false
				break
			}
		}
		if allStarted {
			return time.Since(start), nil
		}
		if time.Now().After(deadline) {
			return time.Since(start), fmt.Errorf("gram: %s still pending after %v", j.ID, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// Wait blocks until every instance reaches a terminal state or the
// timeout expires.
func (j *Job) Wait(timeout time.Duration) (State, error) {
	deadline := time.Now().Add(timeout)
	for _, p := range j.parts {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return j.State(), errors.New("gram: wait timed out")
		}
		if _, err := j.mgr.cluster.Wait(p.ID, remaining); err != nil {
			return j.State(), err
		}
	}
	s := j.State()
	if s != StateDone && s != StateFailed {
		return s, errors.New("gram: wait timed out")
	}
	return s, nil
}
