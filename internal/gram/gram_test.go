package gram

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/ipa-grid/ipa/internal/scheduler"
)

func newManager(t *testing.T, nodes int) *JobManager {
	t.Helper()
	var nc []scheduler.NodeConfig
	for i := 0; i < nodes; i++ {
		nc = append(nc, scheduler.NodeConfig{Name: string(rune('a' + i)), Slots: 1})
	}
	cluster, err := scheduler.New(nc, []scheduler.QueueConfig{
		{Name: "interactive", Priority: 10, Preempting: true},
		{Name: "batch", Priority: 1, Preemptible: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	return NewJobManager(cluster)
}

func TestSubmitCountInstances(t *testing.T) {
	m := newManager(t, 4)
	var mu sync.Mutex
	seen := map[int]string{}
	m.RegisterLauncher("engine", func(ctx context.Context, node string, idx int, jd JobDescription) error {
		mu.Lock()
		seen[idx] = node
		mu.Unlock()
		return nil
	})
	job, err := m.Submit(JobDescription{
		Executable: "engine", Count: 4, Queue: "interactive", User: "alice",
		Environment: map[string]string{"SESSION": "s1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	state, err := job.Wait(5 * time.Second)
	if err != nil || state != StateDone {
		t.Fatalf("state = %v, err %v", state, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 4 {
		t.Fatalf("launched %d instances", len(seen))
	}
	for i := 0; i < 4; i++ {
		if _, ok := seen[i]; !ok {
			t.Fatalf("instance %d never launched", i)
		}
	}
}

func TestInstanceFailureMakesJobFailed(t *testing.T) {
	m := newManager(t, 2)
	m.RegisterLauncher("flaky", func(ctx context.Context, node string, idx int, jd JobDescription) error {
		if idx == 1 {
			return errors.New("disk full")
		}
		return nil
	})
	job, err := m.Submit(JobDescription{Executable: "flaky", Count: 2, Queue: "batch"})
	if err != nil {
		t.Fatal(err)
	}
	state, _ := job.Wait(5 * time.Second)
	if state != StateFailed {
		t.Fatalf("state = %v", state)
	}
}

func TestUnknownExecutable(t *testing.T) {
	m := newManager(t, 1)
	if _, err := m.Submit(JobDescription{Executable: "nope", Count: 1, Queue: "batch"}); err == nil {
		t.Fatal("unknown executable accepted")
	}
}

func TestBadCount(t *testing.T) {
	m := newManager(t, 1)
	m.RegisterLauncher("e", func(context.Context, string, int, JobDescription) error { return nil })
	if _, err := m.Submit(JobDescription{Executable: "e", Count: 0, Queue: "batch"}); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestCancelStopsInstances(t *testing.T) {
	m := newManager(t, 2)
	started := make(chan struct{}, 2)
	m.RegisterLauncher("engine", func(ctx context.Context, node string, idx int, jd JobDescription) error {
		started <- struct{}{}
		<-ctx.Done()
		return ctx.Err()
	})
	job, err := m.Submit(JobDescription{Executable: "engine", Count: 2, Queue: "interactive"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	<-started
	if job.State() != StateActive {
		t.Fatalf("state = %v, want Active", job.State())
	}
	job.Cancel()
	state, _ := job.Wait(5 * time.Second)
	if state != StateFailed { // cancelled counts as failed in GRAM terms
		t.Fatalf("state after cancel = %v", state)
	}
}

func TestWaitActiveMeasuresStartLatency(t *testing.T) {
	m := newManager(t, 1)
	release := make(chan struct{})
	m.RegisterLauncher("engine", func(ctx context.Context, node string, idx int, jd JobDescription) error {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	})
	// Occupy the single slot with a batch job via the scheduler's own
	// non-preempting path: submit through GRAM on the batch queue.
	m.RegisterLauncher("filler", func(ctx context.Context, node string, idx int, jd JobDescription) error {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	})
	filler, err := m.Submit(JobDescription{Executable: "filler", Count: 1, Queue: "batch"})
	if err != nil {
		t.Fatal(err)
	}
	// Interactive job preempts the filler, so it starts quickly even on a
	// full cluster — the paper's "dedicated timely queue" in action.
	job, err := m.Submit(JobDescription{Executable: "engine", Count: 1, Queue: "interactive"})
	if err != nil {
		t.Fatal(err)
	}
	latency, err := job.WaitActive(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if latency > 2*time.Second {
		t.Fatalf("engine start latency %v", latency)
	}
	close(release)
	job.Wait(5 * time.Second)
	filler.Wait(5 * time.Second)
	if nodes := job.Nodes(); len(nodes) != 1 || nodes[0] == "" {
		t.Fatalf("nodes = %v", nodes)
	}
}

func TestJobLookup(t *testing.T) {
	m := newManager(t, 1)
	m.RegisterLauncher("e", func(context.Context, string, int, JobDescription) error { return nil })
	job, _ := m.Submit(JobDescription{Executable: "e", Count: 1, Queue: "batch"})
	got, ok := m.Job(job.ID)
	if !ok || got != job {
		t.Fatal("lookup failed")
	}
	if _, ok := m.Job("gram-999"); ok {
		t.Fatal("phantom job found")
	}
}
