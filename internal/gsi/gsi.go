// Package gsi implements the Grid Security Infrastructure the paper's
// framework authenticates with (§3.1–3.2): an X.509 certificate authority,
// user/host end-entity certificates, short-lived RFC-3820-style proxy
// certificates ("a Grid proxy plug-in ... creates a proxy certificate that
// can be used to authenticate the client with the service"), mutual-TLS
// configuration, and DN-based authorization (gridmap + VO roles).
//
// Everything is real cryptography from the standard library: ECDSA P-256
// keys, signed certificates, and a custom chain verifier implementing the
// proxy rule (a proxy is signed by the end-entity certificate itself and
// appends "CN=proxy" to the subject).
package gsi

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"fmt"
	"math/big"
	"strings"
	"time"
)

// Organization is the O= component all framework certificates share.
const Organization = "IPA Grid"

// serialCounter hands out unique serial numbers within a process.
var serialCounter int64 = 1000

func nextSerial() *big.Int {
	serialCounter++
	return big.NewInt(serialCounter)
}

// Credential is a certificate plus its private key.
type Credential struct {
	Cert *x509.Certificate
	Key  *ecdsa.PrivateKey
}

// DN returns the credential's distinguished name in Grid slash form.
func (c *Credential) DN() string { return DNString(c.Cert.Subject) }

// DNString renders a pkix.Name like "/O=IPA Grid/OU=vo/CN=alice".
func DNString(name pkix.Name) string {
	var b strings.Builder
	for _, o := range name.Organization {
		fmt.Fprintf(&b, "/O=%s", o)
	}
	for _, ou := range name.OrganizationalUnit {
		fmt.Fprintf(&b, "/OU=%s", ou)
	}
	if name.CommonName != "" {
		fmt.Fprintf(&b, "/CN=%s", name.CommonName)
	}
	return b.String()
}

// CA is a certificate authority for one Grid (one per test/site).
type CA struct {
	cred Credential
}

// NewCA creates a self-signed certificate authority.
func NewCA(name string) (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("gsi: generating CA key: %w", err)
	}
	tpl := &x509.Certificate{
		SerialNumber: nextSerial(),
		Subject: pkix.Name{
			Organization: []string{Organization},
			CommonName:   name,
		},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		IsCA:                  true,
		BasicConstraintsValid: true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
	}
	der, err := x509.CreateCertificate(rand.Reader, tpl, tpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("gsi: self-signing CA: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &CA{cred: Credential{Cert: cert, Key: key}}, nil
}

// Certificate returns the CA certificate (distribute to all parties).
func (ca *CA) Certificate() *x509.Certificate { return ca.cred.Cert }

// Pool returns a cert pool containing just this CA.
func (ca *CA) Pool() *x509.CertPool {
	p := x509.NewCertPool()
	p.AddCert(ca.cred.Cert)
	return p
}

func (ca *CA) issue(tpl *x509.Certificate) (*Credential, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	der, err := x509.CreateCertificate(rand.Reader, tpl, ca.cred.Cert, &key.PublicKey, ca.cred.Key)
	if err != nil {
		return nil, err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Credential{Cert: cert, Key: key}, nil
}

// IssueUser creates an end-entity certificate for a person in a VO unit.
func (ca *CA) IssueUser(vo, cn string, lifetime time.Duration) (*Credential, error) {
	if cn == "" {
		return nil, errors.New("gsi: empty user CN")
	}
	return ca.issue(&x509.Certificate{
		SerialNumber: nextSerial(),
		Subject: pkix.Name{
			Organization:       []string{Organization},
			OrganizationalUnit: []string{vo},
			CommonName:         cn,
		},
		NotBefore:             time.Now().Add(-5 * time.Minute),
		NotAfter:              time.Now().Add(lifetime),
		KeyUsage:              x509.KeyUsageDigitalSignature,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth},
		BasicConstraintsValid: true,
	})
}

// IssueHost creates a service certificate valid for the given host names.
func (ca *CA) IssueHost(cn string, hosts []string, lifetime time.Duration) (*Credential, error) {
	return ca.issue(&x509.Certificate{
		SerialNumber: nextSerial(),
		Subject: pkix.Name{
			Organization: []string{Organization},
			CommonName:   cn,
		},
		DNSNames:              hosts,
		NotBefore:             time.Now().Add(-5 * time.Minute),
		NotAfter:              time.Now().Add(lifetime),
		KeyUsage:              x509.KeyUsageDigitalSignature,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
		BasicConstraintsValid: true,
	})
}

// proxyCN is the subject suffix marking proxy certificates.
const proxyCN = "proxy"

// Proxy is a short-lived delegated credential: a certificate signed by the
// user's end-entity certificate rather than the CA.
type Proxy struct {
	Cert   *x509.Certificate
	Key    *ecdsa.PrivateKey
	Issuer *x509.Certificate // the end-entity certificate
}

// NewProxy creates a proxy certificate from a user credential, the
// operation behind the client's "Obtain Proxy" step (Figure 2, step 1).
func NewProxy(user *Credential, lifetime time.Duration) (*Proxy, error) {
	if lifetime <= 0 {
		return nil, errors.New("gsi: proxy lifetime must be positive")
	}
	if time.Now().Add(lifetime).After(user.Cert.NotAfter) {
		lifetime = time.Until(user.Cert.NotAfter)
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	subject := user.Cert.Subject
	subject.CommonName = user.Cert.Subject.CommonName + "/" + proxyCN
	tpl := &x509.Certificate{
		SerialNumber:          nextSerial(),
		Subject:               subject,
		NotBefore:             time.Now().Add(-time.Minute),
		NotAfter:              time.Now().Add(lifetime),
		KeyUsage:              x509.KeyUsageDigitalSignature,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth},
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tpl, user.Cert, &key.PublicKey, user.Key)
	if err != nil {
		return nil, fmt.Errorf("gsi: signing proxy: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Proxy{Cert: cert, Key: key, Issuer: user.Cert}, nil
}

// Expired reports whether the proxy is past its lifetime.
func (p *Proxy) Expired(now time.Time) bool { return now.After(p.Cert.NotAfter) }

// DN returns the proxy's subject DN (including the /CN=proxy suffix).
func (p *Proxy) DN() string { return DNString(p.Cert.Subject) }

// TLSCertificate packages the proxy chain for a TLS handshake:
// leaf = proxy, intermediate = user certificate.
func (p *Proxy) TLSCertificate() tls.Certificate {
	return tls.Certificate{
		Certificate: [][]byte{p.Cert.Raw, p.Issuer.Raw},
		PrivateKey:  p.Key,
	}
}

// Identity is the authenticated peer resulting from chain verification.
type Identity struct {
	// DN is the end-entity distinguished name (proxy suffix stripped).
	DN string
	// CN is the end-entity common name.
	CN string
	// ViaProxy reports whether a proxy certificate was presented.
	ViaProxy bool
	// Expires is the earliest expiry in the verified chain.
	Expires time.Time
}

// ErrNotAuthenticated is returned when no usable peer chain is present.
var ErrNotAuthenticated = errors.New("gsi: peer did not authenticate")

// VerifyPeer validates a presented certificate chain under Grid proxy
// rules: either [user] signed by the CA, or [proxy, user] where the proxy
// is signed by the user certificate, carries the user's subject plus a
// "/CN=proxy" component, and is within both validity windows.
func VerifyPeer(rawCerts [][]byte, roots *x509.CertPool, now time.Time) (*Identity, error) {
	if len(rawCerts) == 0 {
		return nil, ErrNotAuthenticated
	}
	certs := make([]*x509.Certificate, len(rawCerts))
	for i, raw := range rawCerts {
		c, err := x509.ParseCertificate(raw)
		if err != nil {
			return nil, fmt.Errorf("gsi: parsing peer certificate %d: %w", i, err)
		}
		certs[i] = c
	}
	verifyEE := func(ee *x509.Certificate) error {
		_, err := ee.Verify(x509.VerifyOptions{
			Roots:       roots,
			CurrentTime: now,
			KeyUsages:   []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth},
		})
		return err
	}
	leaf := certs[0]
	if !strings.HasSuffix(leaf.Subject.CommonName, "/"+proxyCN) {
		// Plain end-entity authentication.
		if err := verifyEE(leaf); err != nil {
			return nil, fmt.Errorf("gsi: end-entity verification: %w", err)
		}
		return &Identity{
			DN:      DNString(leaf.Subject),
			CN:      leaf.Subject.CommonName,
			Expires: leaf.NotAfter,
		}, nil
	}
	// Proxy chain: need the signing end-entity certificate next.
	if len(certs) < 2 {
		return nil, errors.New("gsi: proxy presented without its issuer certificate")
	}
	user := certs[1]
	if err := verifyEE(user); err != nil {
		return nil, fmt.Errorf("gsi: proxy issuer verification: %w", err)
	}
	// Proxy subject must be user subject + "/proxy" on the CN.
	wantCN := user.Subject.CommonName + "/" + proxyCN
	if leaf.Subject.CommonName != wantCN {
		return nil, fmt.Errorf("gsi: proxy CN %q does not extend issuer CN %q", leaf.Subject.CommonName, user.Subject.CommonName)
	}
	// Signature check: proxy is signed by the user's key.
	if err := user.CheckSignature(leaf.SignatureAlgorithm, leaf.RawTBSCertificate, leaf.Signature); err != nil {
		return nil, fmt.Errorf("gsi: proxy signature invalid: %w", err)
	}
	if now.Before(leaf.NotBefore) || now.After(leaf.NotAfter) {
		return nil, fmt.Errorf("gsi: proxy expired at %v", leaf.NotAfter)
	}
	expires := leaf.NotAfter
	if user.NotAfter.Before(expires) {
		expires = user.NotAfter
	}
	return &Identity{
		DN:       DNString(user.Subject),
		CN:       user.Subject.CommonName,
		ViaProxy: true,
		Expires:  expires,
	}, nil
}

// ServerTLSConfig builds a mutual-TLS server configuration that verifies
// peers under proxy rules and stores the Identity for handlers to fetch
// with PeerIdentity.
func ServerTLSConfig(host *Credential, roots *x509.CertPool) *tls.Config {
	return &tls.Config{
		MinVersion: tls.VersionTLS12,
		Certificates: []tls.Certificate{{
			Certificate: [][]byte{host.Cert.Raw},
			PrivateKey:  host.Key,
		}},
		ClientAuth: tls.RequireAnyClientCert,
		VerifyPeerCertificate: func(rawCerts [][]byte, _ [][]*x509.Certificate) error {
			_, err := VerifyPeer(rawCerts, roots, time.Now())
			return err
		},
	}
}

// ClientTLSConfig builds the client side of mutual TLS using a proxy —
// this is what every IPA plug-in uses to contact the Web Services.
func ClientTLSConfig(p *Proxy, roots *x509.CertPool) *tls.Config {
	return &tls.Config{
		MinVersion:   tls.VersionTLS12,
		RootCAs:      roots,
		Certificates: []tls.Certificate{p.TLSCertificate()},
	}
}

// PeerIdentity extracts the verified Grid identity from a completed TLS
// connection state.
func PeerIdentity(cs tls.ConnectionState, roots *x509.CertPool) (*Identity, error) {
	raw := make([][]byte, len(cs.PeerCertificates))
	for i, c := range cs.PeerCertificates {
		raw[i] = c.Raw
	}
	return VerifyPeer(raw, roots, time.Now())
}
