package gsi

import (
	"fmt"
	"sort"
	"sync"
)

// Authorization: once a peer is authenticated (an Identity), the site
// decides what it may do. The paper: "the service could then authorize the
// client to use certain resources, depending on the policy of the Grid
// site" (§3.1). Two classic mechanisms are provided: the gridmap file
// (DN → local account) and VO role policy ("the user is properly
// recognized by the Virtual Organization", §1).

// Operation names a privileged action in the IPA framework.
type Operation string

// The operations IPA services guard.
const (
	OpCreateSession Operation = "session.create"
	OpControlRun    Operation = "session.control"
	OpSubmitJobs    Operation = "gram.submit"
	OpReadCatalog   Operation = "catalog.read"
	OpWriteCatalog  Operation = "catalog.write"
	OpStageData     Operation = "data.stage"
	OpPollResults   Operation = "results.poll"
)

// Role is a VO-assigned capability bundle.
type Role string

// Standard roles.
const (
	RoleAnalyst Role = "analyst" // run interactive analyses
	RoleAdmin   Role = "admin"   // manage catalog entries
	RoleMonitor Role = "monitor" // read-only result polling
)

// rolePermissions maps each role to its allowed operations.
var rolePermissions = map[Role]map[Operation]bool{
	RoleAnalyst: {
		OpCreateSession: true, OpControlRun: true, OpSubmitJobs: true,
		OpReadCatalog: true, OpStageData: true, OpPollResults: true,
	},
	RoleAdmin: {
		OpCreateSession: true, OpControlRun: true, OpSubmitJobs: true,
		OpReadCatalog: true, OpWriteCatalog: true, OpStageData: true, OpPollResults: true,
	},
	RoleMonitor: {
		OpReadCatalog: true, OpPollResults: true,
	},
}

// Membership records a user's standing within a VO.
type Membership struct {
	Groups []string
	Roles  []Role
}

// VO is a Virtual Organization membership service (a VOMS stand-in).
type VO struct {
	name string

	mu      sync.RWMutex
	members map[string]*Membership // DN → membership
	gridmap map[string]string      // DN → local account
}

// NewVO creates an empty VO.
func NewVO(name string) *VO {
	return &VO{name: name, members: make(map[string]*Membership), gridmap: make(map[string]string)}
}

// Name returns the VO name.
func (vo *VO) Name() string { return vo.name }

// Add registers a member DN with groups and roles.
func (vo *VO) Add(dn string, groups []string, roles ...Role) {
	vo.mu.Lock()
	defer vo.mu.Unlock()
	vo.members[dn] = &Membership{Groups: append([]string(nil), groups...), Roles: append([]Role(nil), roles...)}
}

// MapAccount assigns the local account for a DN (the gridmap file line).
func (vo *VO) MapAccount(dn, account string) {
	vo.mu.Lock()
	defer vo.mu.Unlock()
	vo.gridmap[dn] = account
}

// Membership returns a member's record, or nil for non-members.
func (vo *VO) Membership(dn string) *Membership {
	vo.mu.RLock()
	defer vo.mu.RUnlock()
	return vo.members[dn]
}

// LocalAccount resolves a DN through the gridmap.
func (vo *VO) LocalAccount(dn string) (string, bool) {
	vo.mu.RLock()
	defer vo.mu.RUnlock()
	a, ok := vo.gridmap[dn]
	return a, ok
}

// AuthzError explains a denied operation.
type AuthzError struct {
	DN string
	Op Operation
	VO string
}

func (e *AuthzError) Error() string {
	return fmt.Sprintf("gsi: %s not authorized for %s in VO %s", e.DN, e.Op, e.VO)
}

// Authorize checks whether the identity may perform op. Non-members are
// always denied; members are allowed if any of their roles grants op.
func (vo *VO) Authorize(id *Identity, op Operation) error {
	if id == nil {
		return &AuthzError{DN: "(anonymous)", Op: op, VO: vo.name}
	}
	m := vo.Membership(id.DN)
	if m == nil {
		return &AuthzError{DN: id.DN, Op: op, VO: vo.name}
	}
	for _, r := range m.Roles {
		if rolePermissions[r][op] {
			return nil
		}
	}
	return &AuthzError{DN: id.DN, Op: op, VO: vo.name}
}

// Members lists member DNs, sorted (for admin tooling).
func (vo *VO) Members() []string {
	vo.mu.RLock()
	defer vo.mu.RUnlock()
	out := make([]string, 0, len(vo.members))
	for dn := range vo.members {
		out = append(out, dn)
	}
	sort.Strings(out)
	return out
}
