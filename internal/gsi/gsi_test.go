package gsi

import (
	"crypto/tls"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

func newTestCA(t *testing.T) *CA {
	t.Helper()
	ca, err := NewCA("IPA Test CA")
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func TestIssueUserAndDN(t *testing.T) {
	ca := newTestCA(t)
	u, err := ca.IssueUser("lc-vo", "alice", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got := u.DN(); got != "/O=IPA Grid/OU=lc-vo/CN=alice" {
		t.Fatalf("DN = %q", got)
	}
}

func TestProxyVerify(t *testing.T) {
	ca := newTestCA(t)
	u, err := ca.IssueUser("lc-vo", "alice", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProxy(u, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	id, err := VerifyPeer([][]byte{p.Cert.Raw, u.Cert.Raw}, ca.Pool(), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if !id.ViaProxy {
		t.Fatal("identity not marked as proxy")
	}
	if id.DN != "/O=IPA Grid/OU=lc-vo/CN=alice" {
		t.Fatalf("identity DN = %q (proxy suffix must be stripped)", id.DN)
	}
	if id.CN != "alice" {
		t.Fatalf("CN = %q", id.CN)
	}
}

func TestPlainUserVerify(t *testing.T) {
	ca := newTestCA(t)
	u, _ := ca.IssueUser("lc-vo", "bob", time.Hour)
	id, err := VerifyPeer([][]byte{u.Cert.Raw}, ca.Pool(), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if id.ViaProxy || id.CN != "bob" {
		t.Fatalf("identity = %+v", id)
	}
}

func TestProxyWithoutIssuerRejected(t *testing.T) {
	ca := newTestCA(t)
	u, _ := ca.IssueUser("lc-vo", "alice", time.Hour)
	p, _ := NewProxy(u, time.Minute)
	if _, err := VerifyPeer([][]byte{p.Cert.Raw}, ca.Pool(), time.Now()); err == nil {
		t.Fatal("proxy without issuer accepted")
	}
}

func TestProxyFromWrongUserRejected(t *testing.T) {
	ca := newTestCA(t)
	alice, _ := ca.IssueUser("lc-vo", "alice", time.Hour)
	mallory, _ := ca.IssueUser("lc-vo", "mallory", time.Hour)
	p, _ := NewProxy(alice, time.Minute)
	// Present alice's proxy with mallory's certificate as issuer.
	if _, err := VerifyPeer([][]byte{p.Cert.Raw, mallory.Cert.Raw}, ca.Pool(), time.Now()); err == nil {
		t.Fatal("proxy accepted with mismatched issuer")
	}
}

func TestExpiredProxyRejected(t *testing.T) {
	ca := newTestCA(t)
	u, _ := ca.IssueUser("lc-vo", "alice", time.Hour)
	p, _ := NewProxy(u, time.Minute)
	future := time.Now().Add(2 * time.Hour)
	if _, err := VerifyPeer([][]byte{p.Cert.Raw, u.Cert.Raw}, ca.Pool(), future); err == nil {
		t.Fatal("expired proxy accepted")
	}
	if !p.Expired(future) {
		t.Fatal("Expired() disagrees")
	}
}

func TestForeignCARejected(t *testing.T) {
	ca1 := newTestCA(t)
	ca2 := newTestCA(t)
	u, _ := ca2.IssueUser("lc-vo", "eve", time.Hour)
	p, _ := NewProxy(u, time.Minute)
	if _, err := VerifyPeer([][]byte{p.Cert.Raw, u.Cert.Raw}, ca1.Pool(), time.Now()); err == nil {
		t.Fatal("foreign-CA proxy accepted")
	}
}

func TestProxyLifetimeClampedToUserCert(t *testing.T) {
	ca := newTestCA(t)
	u, _ := ca.IssueUser("lc-vo", "alice", 10*time.Minute)
	p, err := NewProxy(u, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cert.NotAfter.After(u.Cert.NotAfter.Add(time.Second)) {
		t.Fatal("proxy outlives its user certificate")
	}
}

func TestEmptyChain(t *testing.T) {
	ca := newTestCA(t)
	if _, err := VerifyPeer(nil, ca.Pool(), time.Now()); err == nil {
		t.Fatal("empty chain accepted")
	}
}

// TestMutualTLSWithProxy runs a real TLS handshake: server with host cert,
// client with proxy chain, both verifying against the CA.
func TestMutualTLSWithProxy(t *testing.T) {
	ca := newTestCA(t)
	host, err := ca.IssueHost("ipa-manager", []string{"localhost", "127.0.0.1"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	user, _ := ca.IssueUser("lc-vo", "alice", time.Hour)
	proxy, _ := NewProxy(user, time.Hour)

	ln, err := tls.Listen("tcp", "127.0.0.1:0", ServerTLSConfig(host, ca.Pool()))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type result struct {
		dn  string
		err error
	}
	done := make(chan result, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- result{err: err}
			return
		}
		defer conn.Close()
		tc := conn.(*tls.Conn)
		if err := tc.Handshake(); err != nil {
			done <- result{err: err}
			return
		}
		id, err := PeerIdentity(tc.ConnectionState(), ca.Pool())
		if err != nil {
			done <- result{err: err}
			return
		}
		io.WriteString(conn, "hello "+id.CN)
		done <- result{dn: id.DN}
	}()

	cfg := ClientTLSConfig(proxy, ca.Pool())
	cfg.ServerName = "localhost"
	conn, err := tls.Dial("tcp", ln.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 64)
	n, _ := conn.Read(buf)
	if !strings.Contains(string(buf[:n]), "hello alice") {
		t.Fatalf("server reply %q", buf[:n])
	}
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.dn != "/O=IPA Grid/OU=lc-vo/CN=alice" {
		t.Fatalf("server saw DN %q", r.dn)
	}
}

func TestTLSRejectsClientWithoutCert(t *testing.T) {
	ca := newTestCA(t)
	host, _ := ca.IssueHost("ipa-manager", []string{"localhost"}, time.Hour)
	ln, err := tls.Listen("tcp", "127.0.0.1:0", ServerTLSConfig(host, ca.Pool()))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			tc := conn.(*tls.Conn)
			tc.Handshake() // expected to fail
			conn.Close()
		}
	}()
	cfg := &tls.Config{RootCAs: ca.Pool(), ServerName: "localhost", MinVersion: tls.VersionTLS12}
	conn, err := tls.Dial("tcp", ln.Addr().String(), cfg)
	if err == nil {
		// Server requires a client cert; the failure can surface on the
		// first read instead of the handshake depending on TLS version.
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		_, err = conn.Read(make([]byte, 1))
		conn.Close()
	}
	if err == nil {
		t.Fatal("certificate-less client was not rejected")
	}
}

func TestVOAuthorization(t *testing.T) {
	vo := NewVO("lc-vo")
	vo.Add("/O=IPA Grid/OU=lc-vo/CN=alice", []string{"higgs"}, RoleAnalyst)
	vo.Add("/O=IPA Grid/OU=lc-vo/CN=ops", nil, RoleMonitor)
	vo.MapAccount("/O=IPA Grid/OU=lc-vo/CN=alice", "lcuser01")

	alice := &Identity{DN: "/O=IPA Grid/OU=lc-vo/CN=alice", CN: "alice"}
	ops := &Identity{DN: "/O=IPA Grid/OU=lc-vo/CN=ops", CN: "ops"}
	eve := &Identity{DN: "/O=IPA Grid/OU=lc-vo/CN=eve", CN: "eve"}

	if err := vo.Authorize(alice, OpCreateSession); err != nil {
		t.Fatalf("analyst denied session: %v", err)
	}
	if err := vo.Authorize(alice, OpWriteCatalog); err == nil {
		t.Fatal("analyst allowed catalog write")
	}
	if err := vo.Authorize(ops, OpPollResults); err != nil {
		t.Fatalf("monitor denied polling: %v", err)
	}
	if err := vo.Authorize(ops, OpSubmitJobs); err == nil {
		t.Fatal("monitor allowed job submission")
	}
	if err := vo.Authorize(eve, OpReadCatalog); err == nil {
		t.Fatal("non-member authorized")
	}
	if err := vo.Authorize(nil, OpReadCatalog); err == nil {
		t.Fatal("anonymous authorized")
	}
	if acct, ok := vo.LocalAccount(alice.DN); !ok || acct != "lcuser01" {
		t.Fatalf("gridmap = %q, %v", acct, ok)
	}
	if _, ok := vo.LocalAccount(eve.DN); ok {
		t.Fatal("gridmap resolved unknown DN")
	}
	if len(vo.Members()) != 2 {
		t.Fatal("member list wrong")
	}
}

var _ net.Conn = (*tls.Conn)(nil) // keep net import honest
