// Package netsim is a flow-level network simulator built on the des kernel.
//
// It models the paper's three network domains — the client's home WAN, the
// Grid site's WAN uplink, and the site LAN between the manager/storage
// element and the worker nodes — as directed links with finite capacity.
// Concurrent transfers (GridFTP moving split dataset parts to N workers in
// parallel, §3.4) share capacity according to max-min fairness computed by
// progressive filling, so adding the ninth transfer slows the other eight
// exactly as a fair-queueing network would.
//
// Rates are in MB/s and sizes in MB to match the units of the paper's
// tables; there is no packet-level detail because the evaluation only
// depends on completion times of multi-megabyte flows.
package netsim

import (
	"fmt"
	"math"
	"sort"

	"github.com/ipa-grid/ipa/internal/des"
)

// Link is a directed transmission resource with a fixed capacity in MB/s.
type Link struct {
	name     string
	capacity float64

	// accounting
	carriedMB float64 // total bytes carried (MB)
	busyInt   float64 // ∫ utilization dt, for mean-utilization reports
	lastRate  float64 // aggregate rate at lastT
	lastT     des.Time
}

// Name returns the link's identifier.
func (l *Link) Name() string { return l.name }

// Capacity returns the configured capacity in MB/s.
func (l *Link) Capacity() float64 { return l.capacity }

// CarriedMB returns the total volume carried over the link so far.
func (l *Link) CarriedMB() float64 { return l.carriedMB }

// MeanUtilization reports average utilization in [0,1] since simulation start.
func (l *Link) MeanUtilization(now des.Time) float64 {
	l.settle(now)
	if now <= 0 {
		return 0
	}
	return l.busyInt / (float64(now) * l.capacity)
}

func (l *Link) settle(now des.Time) {
	dt := float64(now - l.lastT)
	if dt > 0 {
		l.busyInt += l.lastRate * dt
		l.carriedMB += l.lastRate * dt
		l.lastT = now
	}
}

// Flow is an in-progress transfer across a path of links.
type Flow struct {
	label      string
	net        *Network
	path       []*Link
	remaining  float64 // MB left to move
	size       float64
	cap        float64 // per-flow rate cap (e.g. one TCP stream), 0 = none
	rate       float64
	lastT      des.Time
	started    des.Time
	finished   des.Time
	done       bool
	onDone     func(*Flow)
	completion *des.Event
	frozen     bool // scratch for the allocator
}

// Label returns the diagnostic label supplied at start.
func (f *Flow) Label() string { return f.label }

// Rate returns the currently allocated rate in MB/s.
func (f *Flow) Rate() float64 { return f.rate }

// SizeMB returns the flow's total size.
func (f *Flow) SizeMB() float64 { return f.size }

// Done reports whether the flow has completed (or been cancelled).
func (f *Flow) Done() bool { return f.done }

// Started returns the virtual time the flow entered the network
// (after any start latency).
func (f *Flow) Started() des.Time { return f.started }

// Finished returns the completion time; zero until done.
func (f *Flow) Finished() des.Time { return f.finished }

// Elapsed returns the transfer duration for a completed flow.
func (f *Flow) Elapsed() des.Time { return f.finished - f.started }

// FlowOpts tunes an individual transfer.
type FlowOpts struct {
	// Label identifies the flow in diagnostics.
	Label string
	// RateCap bounds the flow's rate in MB/s regardless of spare link
	// capacity — the model for a single TCP stream's window-limited
	// throughput. Zero means unbounded (limited only by the path).
	RateCap float64
	// Latency delays the flow's entry into the network — connection
	// establishment, authentication handshakes, control-channel chatter.
	Latency des.Time
}

// Network owns links and the active flow set.
type Network struct {
	k     *des.Kernel
	links map[string]*Link
	flows map[*Flow]struct{}
}

// New returns an empty network bound to kernel k.
func New(k *des.Kernel) *Network {
	return &Network{k: k, links: make(map[string]*Link), flows: make(map[*Flow]struct{})}
}

// Kernel returns the underlying DES kernel.
func (n *Network) Kernel() *des.Kernel { return n.k }

// AddLink creates a directed link with the given capacity in MB/s.
// Adding a duplicate name or non-positive capacity panics: topologies are
// static configuration, and a bad one is a programming error.
func (n *Network) AddLink(name string, capacityMBps float64) *Link {
	if capacityMBps <= 0 || math.IsNaN(capacityMBps) {
		panic(fmt.Sprintf("netsim: link %q capacity %v must be positive", name, capacityMBps))
	}
	if _, dup := n.links[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate link %q", name))
	}
	l := &Link{name: name, capacity: capacityMBps}
	n.links[name] = l
	return l
}

// Link returns a previously added link, or nil.
func (n *Network) Link(name string) *Link { return n.links[name] }

// ActiveFlows returns the number of flows currently holding bandwidth.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// StartFlow begins a transfer of sizeMB across path. onDone (optional) fires
// when the last byte arrives. A zero-size flow completes after its latency.
func (n *Network) StartFlow(sizeMB float64, path []*Link, opts FlowOpts, onDone func(*Flow)) *Flow {
	if sizeMB < 0 || math.IsNaN(sizeMB) {
		panic(fmt.Sprintf("netsim: flow size %v must be non-negative", sizeMB))
	}
	if len(path) == 0 && opts.RateCap <= 0 {
		panic("netsim: flow needs a non-empty path or a rate cap")
	}
	f := &Flow{
		label:     opts.Label,
		net:       n,
		path:      path,
		remaining: sizeMB,
		size:      sizeMB,
		cap:       opts.RateCap,
		onDone:    onDone,
	}
	enter := func() {
		f.started = n.k.Now()
		f.lastT = n.k.Now()
		if f.remaining == 0 {
			f.complete()
			return
		}
		n.flows[f] = struct{}{}
		n.reallocate()
	}
	if opts.Latency > 0 {
		n.k.After(opts.Latency, enter)
	} else {
		enter()
	}
	return f
}

// Cancel withdraws a flow from the network without firing its callback.
func (n *Network) Cancel(f *Flow) {
	if f.done {
		return
	}
	f.done = true
	if f.completion != nil {
		f.completion.Cancel()
	}
	if _, ok := n.flows[f]; ok {
		delete(n.flows, f)
		n.reallocate()
	}
}

func (f *Flow) complete() {
	f.done = true
	f.finished = f.net.k.Now()
	if f.onDone != nil {
		f.onDone(f)
	}
}

// reallocate recomputes max-min fair rates for all active flows and
// reschedules completion events. Called on every flow arrival/departure.
func (n *Network) reallocate() {
	now := n.k.Now()

	// 1. Charge elapsed progress at old rates, settle link accounting.
	for f := range n.flows {
		dt := float64(now - f.lastT)
		if dt > 0 {
			f.remaining -= f.rate * dt
			if f.remaining < 1e-12 {
				f.remaining = 0
			}
			f.lastT = now
		}
		if f.completion != nil {
			f.completion.Cancel()
			f.completion = nil
		}
	}
	for _, l := range n.links {
		l.settle(now)
	}

	// 2. Progressive filling. All unfrozen flows rise at the same water
	// level until a link saturates (its flows freeze at the level) or a
	// flow hits its cap (it freezes at the cap).
	type linkState struct {
		free  float64
		count int
	}
	state := make(map[*Link]*linkState, len(n.links))
	active := make([]*Flow, 0, len(n.flows))
	for f := range n.flows {
		f.frozen = false
		f.rate = 0
		active = append(active, f)
		for _, l := range f.path {
			ls := state[l]
			if ls == nil {
				ls = &linkState{free: l.capacity}
				state[l] = ls
			}
			ls.count++
		}
	}
	// Deterministic iteration order keeps simulations replayable.
	sort.Slice(active, func(i, j int) bool {
		return active[i].started < active[j].started || (active[i].started == active[j].started && active[i].label < active[j].label)
	})

	level := 0.0
	unfrozen := len(active)
	for unfrozen > 0 {
		// Find the next freezing point above the current level.
		next := math.Inf(1)
		for _, ls := range state {
			if ls.count > 0 {
				cand := level + ls.free/float64(ls.count)
				if cand < next {
					next = cand
				}
			}
		}
		for _, f := range active {
			if !f.frozen && f.cap > 0 && f.cap < next {
				next = f.cap
			}
		}
		if math.IsInf(next, 1) {
			// No constraining link (cap-only flows already frozen?) —
			// remaining flows are unconstrained; give them a huge rate.
			for _, f := range active {
				if !f.frozen {
					f.rate = math.MaxFloat64 / 4
					f.frozen = true
					unfrozen--
				}
			}
			break
		}
		rise := next - level
		// Raise all unfrozen flows to the new level.
		for _, f := range active {
			if f.frozen {
				continue
			}
			f.rate = next
			for _, l := range f.path {
				state[l].free -= rise
			}
		}
		level = next
		// Freeze flows at their cap.
		for _, f := range active {
			if !f.frozen && f.cap > 0 && f.rate >= f.cap-1e-12 {
				f.rate = f.cap
				f.frozen = true
				unfrozen--
				for _, l := range f.path {
					state[l].count--
				}
			}
		}
		// Freeze flows on saturated links.
		for l, ls := range state {
			if ls.count > 0 && ls.free <= 1e-12 {
				for _, f := range active {
					if f.frozen {
						continue
					}
					for _, fl := range f.path {
						if fl == l {
							f.frozen = true
							unfrozen--
							for _, l2 := range f.path {
								state[l2].count--
							}
							break
						}
					}
				}
			}
		}
	}

	// 3. Update link aggregate rates and schedule completions.
	rates := make(map[*Link]float64, len(state))
	for _, f := range active {
		for _, l := range f.path {
			rates[l] += f.rate
		}
	}
	for l, r := range rates {
		l.lastRate = r
	}
	for l := range n.links {
		if _, ok := rates[n.links[l]]; !ok {
			n.links[l].lastRate = 0
		}
	}
	for _, f := range active {
		if f.rate <= 0 {
			continue // stalled: no capacity at all
		}
		eta := des.Time(f.remaining / f.rate)
		ff := f
		f.completion = n.k.After(eta, func() {
			delete(n.flows, ff)
			ff.remaining = 0
			ff.completion = nil
			ff.complete()
			n.reallocate()
		})
	}
}
