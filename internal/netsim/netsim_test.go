package netsim

import (
	"math"
	"testing"

	"github.com/ipa-grid/ipa/internal/des"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleFlowTime(t *testing.T) {
	k := des.New()
	n := New(k)
	wan := n.AddLink("wan", 10) // 10 MB/s
	var done des.Time
	n.StartFlow(100, []*Link{wan}, FlowOpts{Label: "x"}, func(f *Flow) { done = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(float64(done), 10, 1e-9) {
		t.Fatalf("100MB over 10MB/s finished at %v, want 10s", done)
	}
}

func TestFlowLatency(t *testing.T) {
	k := des.New()
	n := New(k)
	l := n.AddLink("l", 10)
	var done des.Time
	n.StartFlow(100, []*Link{l}, FlowOpts{Latency: 5}, func(f *Flow) { done = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(float64(done), 15, 1e-9) {
		t.Fatalf("flow with 5s latency finished at %v, want 15s", done)
	}
}

func TestFairSharing(t *testing.T) {
	// Two equal flows on one link: each should see half the capacity and
	// finish together at 2× the solo time.
	k := des.New()
	n := New(k)
	l := n.AddLink("l", 10)
	var t1, t2 des.Time
	n.StartFlow(50, []*Link{l}, FlowOpts{Label: "a"}, func(f *Flow) { t1 = k.Now() })
	n.StartFlow(50, []*Link{l}, FlowOpts{Label: "b"}, func(f *Flow) { t2 = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(float64(t1), 10, 1e-9) || !almost(float64(t2), 10, 1e-9) {
		t.Fatalf("fair-shared flows finished at %v, %v; want both at 10s", t1, t2)
	}
}

func TestShortFlowReleasesBandwidth(t *testing.T) {
	// 10 MB/s link. Flow A = 100 MB, flow B = 10 MB. B finishes at t=2
	// (5 MB/s each); A then gets the full link: 90 MB left at t=2 minus
	// the 10 MB it already moved → A done at 2 + 90/10 = 11.
	k := des.New()
	n := New(k)
	l := n.AddLink("l", 10)
	var ta, tb des.Time
	n.StartFlow(100, []*Link{l}, FlowOpts{Label: "a"}, func(f *Flow) { ta = k.Now() })
	n.StartFlow(10, []*Link{l}, FlowOpts{Label: "b"}, func(f *Flow) { tb = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(float64(tb), 2, 1e-9) {
		t.Fatalf("short flow finished at %v, want 2s", tb)
	}
	if !almost(float64(ta), 11, 1e-9) {
		t.Fatalf("long flow finished at %v, want 11s", ta)
	}
}

func TestRateCap(t *testing.T) {
	// Single-stream cap of 2 MB/s on a 10 MB/s link.
	k := des.New()
	n := New(k)
	l := n.AddLink("l", 10)
	var done des.Time
	n.StartFlow(20, []*Link{l}, FlowOpts{RateCap: 2}, func(f *Flow) { done = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(float64(done), 10, 1e-9) {
		t.Fatalf("capped flow finished at %v, want 10s", done)
	}
}

func TestCapFreesCapacityForOthers(t *testing.T) {
	// Capped flow takes 2 MB/s; uncapped flow should get the other 8.
	k := des.New()
	n := New(k)
	l := n.AddLink("l", 10)
	var tCap, tBig des.Time
	n.StartFlow(20, []*Link{l}, FlowOpts{Label: "capped", RateCap: 2}, func(f *Flow) { tCap = k.Now() })
	n.StartFlow(80, []*Link{l}, FlowOpts{Label: "big"}, func(f *Flow) { tBig = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(float64(tCap), 10, 1e-9) {
		t.Fatalf("capped flow finished at %v, want 10s", tCap)
	}
	if !almost(float64(tBig), 10, 1e-9) {
		t.Fatalf("big flow finished at %v, want 10s (8 MB/s share)", tBig)
	}
}

func TestMultiLinkPathBottleneck(t *testing.T) {
	k := des.New()
	n := New(k)
	fast := n.AddLink("fast", 100)
	slow := n.AddLink("slow", 5)
	var done des.Time
	n.StartFlow(50, []*Link{fast, slow}, FlowOpts{}, func(f *Flow) { done = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(float64(done), 10, 1e-9) {
		t.Fatalf("path bottleneck: finished at %v, want 10s", done)
	}
}

func TestSourceUplinkShared(t *testing.T) {
	// The paper's move-parts topology: one source uplink (capacity 10)
	// feeding N=4 worker links (capacity 8 each). Each flow gets
	// min(8, 10/4)=2.5 MB/s; 25 MB parts finish at 10s.
	k := des.New()
	n := New(k)
	up := n.AddLink("uplink", 10)
	var finish []des.Time
	for i := 0; i < 4; i++ {
		worker := n.AddLink("worker"+string(rune('0'+i)), 8)
		n.StartFlow(25, []*Link{up, worker}, FlowOpts{}, func(f *Flow) { finish = append(finish, k.Now()) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(finish) != 4 {
		t.Fatalf("%d flows finished, want 4", len(finish))
	}
	for _, ft := range finish {
		if !almost(float64(ft), 10, 1e-9) {
			t.Fatalf("flow finished at %v, want 10s (uplink-shared)", ft)
		}
	}
}

func TestZeroSizeFlow(t *testing.T) {
	k := des.New()
	n := New(k)
	l := n.AddLink("l", 10)
	var done bool
	n.StartFlow(0, []*Link{l}, FlowOpts{Latency: 3}, func(f *Flow) { done = true })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("zero-size flow never completed")
	}
	if k.Now() != 3 {
		t.Fatalf("zero-size flow completed at %v, want 3 (latency only)", k.Now())
	}
}

func TestCancelFlow(t *testing.T) {
	k := des.New()
	n := New(k)
	l := n.AddLink("l", 10)
	var aDone, bDone des.Time
	fa := n.StartFlow(100, []*Link{l}, FlowOpts{Label: "a"}, func(f *Flow) { aDone = k.Now() })
	n.StartFlow(50, []*Link{l}, FlowOpts{Label: "b"}, func(f *Flow) { bDone = k.Now() })
	k.After(2, func() { n.Cancel(fa) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if aDone != 0 {
		t.Fatal("cancelled flow fired its callback")
	}
	// b: 2s at 5 MB/s = 10 MB, then 40 MB at 10 MB/s = 4s → t=6.
	if !almost(float64(bDone), 6, 1e-9) {
		t.Fatalf("survivor finished at %v, want 6s", bDone)
	}
}

func TestLinkAccounting(t *testing.T) {
	k := des.New()
	n := New(k)
	l := n.AddLink("l", 10)
	n.StartFlow(50, []*Link{l}, FlowOpts{}, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(l.CarriedMB(), 50, 1e-6) {
		t.Fatalf("link carried %.2f MB, want 50", l.CarriedMB())
	}
	if u := l.MeanUtilization(k.Now()); !almost(u, 1.0, 1e-6) {
		t.Fatalf("utilization %.3f, want 1.0 (link busy the whole run)", u)
	}
}

// TestMaxMinInvariants drives a pseudo-random workload and checks the two
// defining properties of the allocation after every event: no link is
// oversubscribed, and every flow is bottlenecked somewhere (work-conserving).
func TestMaxMinInvariants(t *testing.T) {
	k := des.New()
	n := New(k)
	links := []*Link{n.AddLink("a", 7), n.AddLink("b", 13), n.AddLink("c", 5)}
	paths := [][]*Link{
		{links[0]},
		{links[1]},
		{links[0], links[1]},
		{links[1], links[2]},
		{links[0], links[1], links[2]},
	}
	// Seeded LCG so the test is deterministic without math/rand.
	seed := uint64(42)
	rnd := func() uint64 { seed = seed*6364136223846793005 + 1442695040888963407; return seed >> 33 }
	for i := 0; i < 40; i++ {
		p := paths[rnd()%uint64(len(paths))]
		size := float64(1 + rnd()%200)
		at := des.Time(rnd() % 50)
		k.At(at, func() { n.StartFlow(size, p, FlowOpts{}, nil) })
	}
	check := func() {
		use := map[*Link]float64{}
		for f := range n.flows {
			for _, l := range f.path {
				use[l] += f.rate
			}
		}
		for l, u := range use {
			if u > l.capacity+1e-6 {
				t.Fatalf("t=%v: link %s oversubscribed: %.4f > %.4f", k.Now(), l.name, u, l.capacity)
			}
		}
		for f := range n.flows {
			if f.rate <= 0 {
				t.Fatalf("t=%v: active flow has zero rate", k.Now())
			}
			bottlenecked := f.cap > 0 && almost(f.rate, f.cap, 1e-6)
			for _, l := range f.path {
				if almost(use[l], l.capacity, 1e-6) {
					bottlenecked = true
				}
			}
			if !bottlenecked {
				t.Fatalf("t=%v: flow %q at rate %.4f is not bottlenecked anywhere (not max-min)", k.Now(), f.label, f.rate)
			}
		}
	}
	for k.Step() {
		check()
	}
}
