// A14 — telemetry-overhead ablation. The obs core claims its hot-path
// cost is in the noise: counters are single atomic adds, histograms two,
// and the Disabled switch collapses every record site to one atomic
// load. This experiment drives the same publish+poll fabric load as the
// A13 sweep — sessions delta-publishing through the group-commit
// batcher and incrementally polling over loopback RMI — once with the
// full instrumentation (metrics, spans, trace propagation) and once
// with obs.SetDisabled(true), interleaved rep by rep so host drift hits
// both modes alike, and reports per-mode medians. The acceptance bar is
// instrumented throughput within a few percent of the ablated baseline;
// on a shared 1-CPU host the loopback RMI round trip dominates, so a
// bigger gap indicates a real regression, not noise.
package perf

import (
	"sort"

	"github.com/ipa-grid/ipa/internal/obs"
)

// ObsRow is the telemetry-overhead ablation's outcome.
type ObsRow struct {
	Sessions, Rounds, Objects int
	// InstrumentedOpsPerSec / DisabledOpsPerSec are aggregate
	// (publishes+polls)/s with telemetry recording on vs ablated.
	InstrumentedOpsPerSec float64
	DisabledOpsPerSec     float64
	// OverheadFrac is the median over interleaved rep pairs of
	// 1 - instrumented/disabled (negative = noise in the instrumented
	// run's favor).
	OverheadFrac float64
}

// ObsReps is the interleaved repetition count (more than the A13 reps:
// the expected effect is small, so the median needs more samples).
const ObsReps = 7

// ObsOverheadAblation measures the publish+poll fabric with telemetry
// on vs off. Restores the instrumented (default) state before returning.
//
// Methodology: one discarded warm-up pair first (listener, gob type
// registration, and allocator warm-up all land there), then ObsReps
// measured pairs with the mode order alternating per rep — so slow
// host drift (CPU frequency, co-tenants) cancels instead of
// systematically favoring whichever mode runs second — and the
// per-mode medians are compared.
func ObsOverheadAblation(sessions, rounds, objects int) (ObsRow, error) {
	defer obs.SetDisabled(false)
	row := ObsRow{Sessions: sessions, Rounds: rounds, Objects: objects}
	measure := func(disabled bool) (float64, error) {
		obs.SetDisabled(disabled)
		r, _, err := pubPollRate(1, sessions, rounds, objects, false)
		return r, err
	}
	for _, warm := range []bool{false, true} {
		if _, err := measure(warm); err != nil {
			return row, err
		}
	}
	on := make([]float64, 0, ObsReps)
	off := make([]float64, 0, ObsReps)
	gaps := make([]float64, 0, ObsReps)
	for i := 0; i < ObsReps; i++ {
		var pairOn, pairOff float64
		for _, disabled := range []bool{i%2 == 1, i%2 == 0} {
			r, err := measure(disabled)
			if err != nil {
				return row, err
			}
			if disabled {
				pairOff = r
			} else {
				pairOn = r
			}
		}
		on = append(on, pairOn)
		off = append(off, pairOff)
		if pairOff > 0 {
			gaps = append(gaps, 1-pairOn/pairOff)
		}
	}
	row.InstrumentedOpsPerSec = medianOf(on)
	row.DisabledOpsPerSec = medianOf(off)
	// The overhead estimate is paired: each rep's two runs execute
	// back-to-back under the same host conditions, so their ratio
	// cancels drift that the independent per-mode medians cannot —
	// on a shared box the unpaired medians can disagree by more than
	// the effect being measured.
	if len(gaps) > 0 {
		row.OverheadFrac = medianOf(gaps)
	}
	return row, nil
}

func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
