// A16 — the read fan-out tier (the perf tentpole): N downstream
// pollers per session served through a delta-subscribing relay mirror
// vs polling the owning shard directly. The claim under test: the
// relay collapses N poller streams into one upstream subscription per
// session — upstream shard polls drop ~N× — while the frames the
// pollers see stay byte-identical to the shard's own.

package perf

import (
	"fmt"
	"time"

	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/relay"
	"github.com/ipa-grid/ipa/internal/shard"
)

// RelayAblationRow is one mode (relay tier on/off) of the read
// fan-out experiment.
type RelayAblationRow struct {
	Mode     string // "direct" | "relay"
	Shards   int
	Sessions int
	Rounds   int
	// Pollers is the downstream fan-out N: independent incremental
	// pollers per session, each polling once per publish round.
	Pollers int
	// UpstreamPolls counts polls that reached the owning shards during
	// the serve phase — every downstream poll in direct mode, one
	// subscription sync per session per round in relay mode.
	UpstreamPolls int64
	// DownstreamPolls counts polls served to the N pollers (identical
	// work in both modes); FanOut is Downstream/Upstream — how many
	// client reads one upstream poll pays for.
	DownstreamPolls int64
	FanOut          float64
	// PollPerSec is the downstream serve rate (poller-side wall time).
	PollPerSec float64
	// Identical: every session's served state matches the flat
	// single-manager reference byte-for-byte, and (relay mode) the
	// relay's frames match the owning shard's own — must stay true.
	Identical bool
	WallMS    int64
}

// RelayAblation publishes `rounds` rounds across `sessions` sessions
// on a sharded fabric while `pollers` independent clients per session
// poll incrementally each round, relay tier off ("direct", the
// DisableRelay baseline) vs on ("relay"). Upstream shard polls are
// read from the owners' per-session traffic counters, so the relay's
// own subscription syncs are charged to it.
func RelayAblation(shards, sessions, rounds, pollers int) ([]RelayAblationRow, error) {
	var out []RelayAblationRow
	for _, mode := range []string{"direct", "relay"} {
		router := shard.NewRouter(0)
		for i := 0; i < shards; i++ {
			if err := router.AddShard(fmt.Sprintf("shard%02d", i), merge.NewManager()); err != nil {
				return nil, err
			}
		}
		flat := merge.NewManager()
		var workers []*ablationWorker
		for s := 0; s < sessions; s++ {
			w, err := newAblationWorker(fmt.Sprintf("sess-%02d", s), router, flat)
			if err != nil {
				return nil, err
			}
			workers = append(workers, w)
		}
		var rel *relay.Relay
		if mode == "relay" {
			// Interval 0 = no background loop: syncs happen via SyncNow
			// once per round, so the upstream cost is deterministic.
			rel = relay.New("relay00", router.OriginPoller())
			rel.AutoSubscribe = true
			if err := router.AddRelay("relay00", rel); err != nil {
				return nil, err
			}
			router.RelayReads = true
		}
		start := time.Now()
		// Round 0 places the sessions on their shards; the relay can
		// only subscribe to sessions the fabric knows.
		for _, w := range workers {
			w.h.Fill(0)
			w.refH.Fill(0)
			if err := sendSnapshot(w.tr, w.tree); err != nil {
				return nil, err
			}
			if err := sendSnapshot(w.refTr, w.ref); err != nil {
				return nil, err
			}
			if rel != nil {
				if err := rel.Subscribe(w.sid); err != nil {
					return nil, err
				}
			}
		}
		upstreamBase, err := ownerPolls(router, workers)
		if err != nil {
			return nil, err
		}
		row := RelayAblationRow{
			Mode: mode, Shards: shards, Sessions: sessions,
			Rounds: rounds, Pollers: pollers,
		}
		// since[p][sid] tracks each poller's incremental cursor, exactly
		// as live clients would; both modes poll the same front door
		// (the router), which routes to the relay when the tier is on.
		since := make([]map[string]int64, pollers)
		for p := range since {
			since[p] = map[string]int64{}
		}
		var serveNS int64
		for r := 0; r < rounds; r++ {
			for _, w := range workers {
				w.h.Fill(float64(r % 10))
				w.refH.Fill(float64(r % 10))
				if err := sendSnapshot(w.tr, w.tree); err != nil {
					return nil, err
				}
				if err := sendSnapshot(w.refTr, w.ref); err != nil {
					return nil, err
				}
				if rel != nil {
					if err := rel.SyncNow(w.sid); err != nil {
						return nil, err
					}
				}
			}
			t0 := time.Now()
			for p := 0; p < pollers; p++ {
				for _, w := range workers {
					var reply merge.PollReply
					if err := router.Poll(merge.PollArgs{
						SessionID: w.sid, SinceVersion: since[p][w.sid],
					}, &reply); err != nil {
						return nil, err
					}
					since[p][w.sid] = reply.Version
					row.DownstreamPolls++
				}
			}
			serveNS += time.Since(t0).Nanoseconds()
		}
		// Upstream cost is read before the verification polls below so
		// statesMatch's full polls don't pollute the counters.
		upstreamEnd, err := ownerPolls(router, workers)
		if err != nil {
			return nil, err
		}
		row.UpstreamPolls = upstreamEnd - upstreamBase
		if row.UpstreamPolls > 0 {
			row.FanOut = float64(row.DownstreamPolls) / float64(row.UpstreamPolls)
		}
		if serveNS > 0 {
			row.PollPerSec = float64(row.DownstreamPolls) / (float64(serveNS) / 1e9)
		}
		row.Identical = true
		for _, w := range workers {
			same, err := statesMatch(router, flat, w.sid)
			if err != nil {
				return nil, err
			}
			if same && rel != nil {
				// The relay's re-served frames must also match the owning
				// shard's own view, not just the flat reference.
				same, err = statesMatch(router, router.OriginPoller(), w.sid)
				if err != nil {
					return nil, err
				}
			}
			if !same {
				row.Identical = false
			}
		}
		if rel != nil {
			rel.Close()
		}
		row.WallMS = time.Since(start).Milliseconds()
		out = append(out, row)
	}
	return out, nil
}

// ownerPolls sums the owning shards' per-session poll counters — the
// upstream read traffic the relay tier is supposed to absorb. Router
// stats always route to the owner, relay tier or not.
func ownerPolls(router *shard.Router, workers []*ablationWorker) (int64, error) {
	var sum int64
	for _, w := range workers {
		var sr merge.StatsReply
		if err := router.Stats(merge.StatsArgs{SessionID: w.sid}, &sr); err != nil {
			return 0, err
		}
		sum += sr.Polls
	}
	return sum, nil
}
