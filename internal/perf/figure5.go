package perf

import (
	"fmt"
	"io"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/fit"
)

// Figure5Result holds the local and Grid time surfaces over dataset size
// × node count, both from the paper's analytic model and from the DES.
type Figure5Result struct {
	Sizes []float64 // MB
	Nodes []int
	// [i][j] = seconds for Sizes[i], Nodes[j].
	AnalyticLocal [][]float64
	AnalyticGrid  [][]float64
	SimLocal      [][]float64
	SimGrid       [][]float64
}

// DefaultFigure5Sizes spans the paper's plotted range.
func DefaultFigure5Sizes() []float64 {
	return []float64{1, 2, 5, 10, 20, 50, 100, 200, 471, 700, 1000}
}

// DefaultFigure5Nodes spans 1..64 like the paper's node axis (extended).
func DefaultFigure5Nodes() []int { return []int{1, 2, 4, 8, 16, 32, 64} }

// Figure5 computes the surfaces.
func Figure5(p Params, sizes []float64, nodes []int) Figure5Result {
	if len(sizes) == 0 {
		sizes = DefaultFigure5Sizes()
	}
	if len(nodes) == 0 {
		nodes = DefaultFigure5Nodes()
	}
	r := Figure5Result{Sizes: sizes, Nodes: nodes}
	alloc := func() [][]float64 {
		m := make([][]float64, len(sizes))
		for i := range m {
			m[i] = make([]float64, len(nodes))
		}
		return m
	}
	r.AnalyticLocal, r.AnalyticGrid = alloc(), alloc()
	r.SimLocal, r.SimGrid = alloc(), alloc()
	for i, x := range sizes {
		local := SimulateLocal(p, x)
		for j, n := range nodes {
			r.AnalyticLocal[i][j] = PaperLocalT(x)
			r.AnalyticGrid[i][j] = PaperGridT(x, n)
			r.SimLocal[i][j] = float64(local.Total())
			r.SimGrid[i][j] = float64(SimulateGrid(p, x, n).Total())
		}
	}
	return r
}

// WriteCSV emits the surfaces as long-form CSV
// (size,nodes,analytic_local,analytic_grid,sim_local,sim_grid).
func (r Figure5Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "size_mb,nodes,analytic_local_s,analytic_grid_s,sim_local_s,sim_grid_s"); err != nil {
		return err
	}
	for i, x := range r.Sizes {
		for j, n := range r.Nodes {
			if _, err := fmt.Fprintf(w, "%g,%d,%.2f,%.2f,%.2f,%.2f\n",
				x, n, r.AnalyticLocal[i][j], r.AnalyticGrid[i][j], r.SimLocal[i][j], r.SimGrid[i][j]); err != nil {
				return err
			}
		}
	}
	return nil
}

// GridSurface packages the simulated grid surface for SVG heatmaps.
func (r Figure5Result) GridSurface() aida.Surface {
	ys := make([]float64, len(r.Nodes))
	for j, n := range r.Nodes {
		ys[j] = float64(n)
	}
	return aida.Surface{Name: "grid", Xs: r.Sizes, Ys: ys, Z: r.SimGrid}
}

// AdvantageSurface is sim_local − sim_grid (positive = Grid wins), the
// quantity Figure 5's two-surface plot lets the reader eyeball.
func (r Figure5Result) AdvantageSurface() aida.Surface {
	ys := make([]float64, len(r.Nodes))
	for j, n := range r.Nodes {
		ys[j] = float64(n)
	}
	z := make([][]float64, len(r.Sizes))
	for i := range r.Sizes {
		z[i] = make([]float64, len(r.Nodes))
		for j := range r.Nodes {
			z[i][j] = r.SimLocal[i][j] - r.SimGrid[i][j]
		}
	}
	return aida.Surface{Name: "advantage", Xs: r.Sizes, Ys: ys, Z: z}
}

// EquationFit reproduces the paper's §4 fitting exercise: simulate the
// sweep, then least-squares fit the paper's functional forms and compare
// coefficients.
type EquationFit struct {
	// LocalSlope vs the paper's 11.5 (s/MB).
	LocalSlope float64
	LocalR2    float64
	// Grid coefficients [a b c d] for T = a·X + b + c/N + d·X/N,
	// vs the paper's [0.38 53 62 5.3].
	GridCoef []float64
	GridR2   float64
}

// PaperGridCoef returns the published grid-model coefficients.
func PaperGridCoef() []float64 { return []float64{0.38, 53, 62, 5.3} }

// PaperLocalSlope returns the published local-model slope.
func PaperLocalSlope() float64 { return 11.5 }

// FitEquations runs the sweep and the fits.
func FitEquations(p Params) (EquationFit, error) {
	sizes := []float64{10, 50, 100, 200, 471, 800}
	nodes := []int{1, 2, 4, 8, 16}
	var out EquationFit

	// Local: one-parameter fit through the origin.
	var ldesign [][]float64
	var ly []float64
	for _, x := range sizes {
		ldesign = append(ldesign, []float64{x})
		ly = append(ly, float64(SimulateLocal(p, x).Total()))
	}
	lcoef, err := fit.Linear(ldesign, ly)
	if err != nil {
		return out, err
	}
	out.LocalSlope = lcoef[0]
	lres := fit.Residuals(ldesign, ly, lcoef)
	out.LocalR2 = fit.R2(ly, lres)

	// Grid: T = a·X + b + c/N + d·X/N.
	var gdesign [][]float64
	var gy []float64
	for _, x := range sizes {
		for _, n := range nodes {
			gdesign = append(gdesign, []float64{x, 1, 1 / float64(n), x / float64(n)})
			gy = append(gy, float64(SimulateGrid(p, x, n).Total()))
		}
	}
	gcoef, err := fit.Linear(gdesign, gy)
	if err != nil {
		return out, err
	}
	out.GridCoef = gcoef
	gres := fit.Residuals(gdesign, gy, gcoef)
	out.GridR2 = fit.R2(gy, gres)
	return out, nil
}
