package perf

import (
	"fmt"
	"io"

	"github.com/ipa-grid/ipa/internal/aida"
)

// Report rendering: the exact rows/series the paper reports, with the
// published values side by side.

func secs(v float64) string { return fmt.Sprintf("%.0f s", v) }

func dev(sim, paper float64) string {
	if paper == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.0f%%", (sim-paper)/paper*100)
}

// RenderTable1 prints the Table 1 comparison.
func RenderTable1(w io.Writer, r Table1Result) error {
	t := &aida.Table{
		Title:   "Table 1 — local vs Grid (471 MB dataset, 16 nodes)",
		Columns: []string{"Step", "Paper", "Simulated", "Deviation"},
	}
	t.AddRow("Local: get dataset (WAN)", secs(r.Paper.LocalGet), secs(float64(r.Local.GetDataset)), dev(float64(r.Local.GetDataset), r.Paper.LocalGet))
	t.AddRow("Local: analysis (1 CPU)", secs(r.Paper.LocalAnalysis), secs(float64(r.Local.Analysis)), dev(float64(r.Local.Analysis), r.Paper.LocalAnalysis))
	t.AddRow("Local: total", secs(r.Paper.LocalTotal), secs(float64(r.Local.Total())), dev(float64(r.Local.Total()), r.Paper.LocalTotal))
	t.AddRow("Grid: stage dataset", secs(r.Paper.GridStage), secs(float64(r.Grid.StageTotal())), dev(float64(r.Grid.StageTotal()), r.Paper.GridStage))
	t.AddRow("Grid: stage code", secs(r.Paper.GridCode), secs(float64(r.Grid.StageCode)), dev(float64(r.Grid.StageCode), r.Paper.GridCode))
	t.AddRow("Grid: analysis", secs(r.Paper.GridAnalysis), secs(float64(r.Grid.Analysis)), dev(float64(r.Grid.Analysis), r.Paper.GridAnalysis))
	t.AddRow("Grid: total", secs(r.Paper.GridTotal), secs(float64(r.Grid.Total())), dev(float64(r.Grid.Total()), r.Paper.GridTotal))
	speedupPaper := r.Paper.LocalTotal / r.Paper.GridTotal
	speedupSim := float64(r.Local.Total()) / float64(r.Grid.Total())
	t.AddRow("Speedup (local/grid)", fmt.Sprintf("%.1fx", speedupPaper), fmt.Sprintf("%.1fx", speedupSim), "")
	_, err := io.WriteString(w, t.String())
	return err
}

// RenderTable2 prints the Table 2 sweep against the paper's rows.
func RenderTable2(w io.Writer, sim []Table2Row) error {
	paper := PaperTable2()
	t := &aida.Table{
		Title: "Table 2 — staging and analysis vs nodes (471 MB)",
		Columns: []string{"Nodes",
			"MoveWhole(p)", "MoveWhole(s)",
			"Split(p)", "Split(s)",
			"MoveParts(p)", "MoveParts(s)",
			"Analysis(p)", "Analysis(s)"},
	}
	for i, row := range sim {
		p := paper[i]
		t.AddRow(fmt.Sprintf("%d", row.Nodes),
			secs(p.MoveWhole), secs(row.MoveWhole),
			secs(p.Split), secs(row.Split),
			secs(p.MoveParts), secs(row.MoveParts),
			secs(p.Analysis), secs(row.Analysis))
	}
	_, err := io.WriteString(w, t.String())
	return err
}

// RenderEquations prints the fitted-coefficient comparison.
func RenderEquations(w io.Writer, f EquationFit) error {
	t := &aida.Table{
		Title:   "§4 fitted equations — paper vs refit on simulated data",
		Columns: []string{"Coefficient", "Paper", "Refit"},
	}
	t.AddRow("local slope (s/MB)", fmt.Sprintf("%.1f", PaperLocalSlope()), fmt.Sprintf("%.2f", f.LocalSlope))
	names := []string{"grid a (X)", "grid b (const)", "grid c (1/N)", "grid d (X/N)"}
	for i, p := range PaperGridCoef() {
		t.AddRow(names[i], fmt.Sprintf("%.2f", p), fmt.Sprintf("%.2f", f.GridCoef[i]))
	}
	t.AddRow("local R²", "-", fmt.Sprintf("%.4f", f.LocalR2))
	t.AddRow("grid R²", "-", fmt.Sprintf("%.4f", f.GridR2))
	_, err := io.WriteString(w, t.String())
	return err
}

// RenderFigure5 prints crossover sizes and a coarse text view of the
// surfaces' winner map.
func RenderFigure5(w io.Writer, r Figure5Result) error {
	t := &aida.Table{
		Title:   "Figure 5 — Grid-vs-local crossover dataset size (MB)",
		Columns: []string{"Nodes", "Paper model", "Simulated"},
	}
	simLocal := func(x float64) float64 { return float64(SimulateLocal(PaperParams(), x).Total()) }
	simGrid := func(x float64, n int) float64 { return float64(SimulateGrid(PaperParams(), x, n).Total()) }
	for _, n := range r.Nodes {
		pc := Crossover(n, PaperLocalT, PaperGridT)
		sc := Crossover(n, simLocal, simGrid)
		fmtX := func(v float64) string {
			if v < 0 {
				return "never"
			}
			return fmt.Sprintf("%.1f", v)
		}
		t.AddRow(fmt.Sprintf("%d", n), fmtX(pc), fmtX(sc))
	}
	if _, err := io.WriteString(w, t.String()); err != nil {
		return err
	}
	// Winner map: G where grid faster, L where local faster.
	fmt.Fprintf(w, "\nWinner map (rows = size MB, cols = nodes %v; G = Grid wins):\n", r.Nodes)
	for i, x := range r.Sizes {
		fmt.Fprintf(w, "%8.0f  ", x)
		for j := range r.Nodes {
			if r.SimGrid[i][j] < r.SimLocal[i][j] {
				fmt.Fprint(w, "G")
			} else {
				fmt.Fprint(w, "L")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}
