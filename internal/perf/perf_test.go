package perf

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		if math.Abs(got) > relTol {
			t.Fatalf("%s = %v, want ≈0", name, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > relTol {
		t.Fatalf("%s = %.1f, want %.1f ±%.0f%%", name, got, want, relTol*100)
	}
}

// Table 2 shape: the calibrated DES must land on the paper's anchor cells
// and preserve monotonicity everywhere.
func TestTable2MatchesPaperShape(t *testing.T) {
	sim := Table2(PaperParams())
	paper := PaperTable2()
	if len(sim) != 5 {
		t.Fatalf("%d rows", len(sim))
	}
	// Anchors used for calibration must be tight.
	within(t, "move-whole@1", sim[0].MoveWhole, paper[0].MoveWhole, 0.02)
	within(t, "split@1", sim[0].Split, paper[0].Split, 0.05)
	within(t, "move-parts@1", sim[0].MoveParts, paper[0].MoveParts, 0.05)
	within(t, "move-parts@16", sim[4].MoveParts, paper[4].MoveParts, 0.05)
	within(t, "analysis@1", sim[0].Analysis, paper[0].Analysis, 0.02)
	within(t, "analysis@16", sim[4].Analysis, paper[4].Analysis, 0.05)
	// Non-anchor cells: shape only (monotone decrease, bounded error).
	for i := 1; i < 5; i++ {
		if sim[i].MoveParts >= sim[i-1].MoveParts {
			t.Fatalf("move-parts not decreasing at row %d", i)
		}
		if sim[i].Analysis >= sim[i-1].Analysis {
			t.Fatalf("analysis not decreasing at row %d", i)
		}
		within(t, "move-whole flat", sim[i].MoveWhole, 63, 0.05)
	}
	// Paper deviation in mid rows stays bounded (documented residuals:
	// the paper's middle points are single anecdotal runs whose implied
	// parallel efficiency is not consistent with any 2-parameter model —
	// see EXPERIMENTS.md). Move-parts ≤ 20%; analysis ≤ 40%.
	for i := range sim {
		p := paper[i]
		if math.Abs(sim[i].MoveParts-p.MoveParts)/p.MoveParts > 0.20 {
			t.Fatalf("move-parts row %d deviates >20%%: sim %.0f vs paper %.0f", i, sim[i].MoveParts, p.MoveParts)
		}
		if math.Abs(sim[i].Analysis-p.Analysis)/p.Analysis > 0.40 {
			t.Fatalf("analysis row %d deviates >40%%: sim %.0f vs paper %.0f", i, sim[i].Analysis, p.Analysis)
		}
	}
}

func TestTable1ShapeHolds(t *testing.T) {
	r := Table1(PaperParams())
	// Local: calibration anchors.
	within(t, "local get", float64(r.Local.GetDataset), r.Paper.LocalGet, 0.02)
	within(t, "local analysis", float64(r.Local.Analysis), r.Paper.LocalAnalysis, 0.02)
	// Grid side is cross-calibrated from Table 2; Table 1's own numbers
	// disagree with Table 2 (documented) so only the decision-relevant
	// shape is asserted: the Grid wins by a large factor.
	speedup := float64(r.Local.Total()) / float64(r.Grid.Total())
	if speedup < 5 {
		t.Fatalf("grid speedup %.1fx, paper shows ~10x", speedup)
	}
	if r.Grid.StageTotal() <= 0 || r.Grid.Analysis <= 0 {
		t.Fatal("degenerate grid run")
	}
	// For the large dataset, staging dominates analysis at 16 nodes —
	// the paper's "most of the time is spent in splitting and moving".
	if float64(r.Grid.StageTotal()) < float64(r.Grid.Analysis) {
		t.Fatalf("staging (%.0f) should dominate analysis (%.0f) at 16 nodes",
			float64(r.Grid.StageTotal()), float64(r.Grid.Analysis))
	}
}

func TestFigure5CrossoverNearPaper(t *testing.T) {
	// Paper: "for large dataset (> ~10 MB) ... it is much better to use
	// the Grid". Analytic crossover at 16 nodes ≈ 5-6 MB; simulated
	// should be the same order of magnitude (< 30 MB).
	pc := Crossover(16, PaperLocalT, PaperGridT)
	if pc < 1 || pc > 15 {
		t.Fatalf("paper-model crossover at 16 nodes = %.1f MB", pc)
	}
	p := PaperParams()
	simLocal := func(x float64) float64 { return float64(SimulateLocal(p, x).Total()) }
	simGrid := func(x float64, n int) float64 { return float64(SimulateGrid(p, x, n).Total()) }
	sc := Crossover(16, simLocal, simGrid)
	if sc < 1 || sc > 30 {
		t.Fatalf("simulated crossover at 16 nodes = %.1f MB", sc)
	}
	// At 471 MB the Grid must win for every N ≥ 2 in both models.
	for _, n := range []int{2, 4, 8, 16} {
		if PaperGridT(471, n) >= PaperLocalT(471) {
			t.Fatalf("paper model: grid loses at 471 MB, N=%d", n)
		}
		if simGrid(471, n) >= simLocal(471) {
			t.Fatalf("sim: grid loses at 471 MB, N=%d", n)
		}
	}
}

func TestFigure5SurfacesConsistent(t *testing.T) {
	r := Figure5(PaperParams(), []float64{10, 100, 471}, []int{1, 4, 16})
	// Grid time decreases with N at the paper's 471 MB operating point.
	// (At very small sizes the per-part split overhead makes extra nodes
	// a net loss — physical behaviour the paper's simplified model hides.)
	last := len(r.Sizes) - 1
	for j := 1; j < len(r.Nodes); j++ {
		if r.SimGrid[last][j] >= r.SimGrid[last][j-1] {
			t.Fatalf("grid surface not decreasing in N at 471 MB")
		}
	}
	// Local time independent of N, increasing with size.
	for j := range r.Nodes {
		if r.SimLocal[0][j] != r.SimLocal[0][0] {
			t.Fatal("local surface depends on N")
		}
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "size_mb,nodes") {
		t.Fatal("CSV header missing")
	}
	if got := strings.Count(buf.String(), "\n"); got != 1+3*3 {
		t.Fatalf("CSV rows = %d", got)
	}
}

func TestFitEquationsRecoverTableModel(t *testing.T) {
	// With table-calibrated params the refit must recover OUR model's
	// analytic coefficients (validating the whole sweep+fit machinery).
	p := PaperParams()
	f, err := FitEquations(p)
	if err != nil {
		t.Fatal(err)
	}
	wantLocal := 1/p.ClientWANMBps + 1/p.LocalMBps // 5.74 s/MB from Table 1
	within(t, "local slope", f.LocalSlope, wantLocal, 0.01)
	if f.LocalR2 < 0.999 {
		t.Fatalf("local R² = %v", f.LocalR2)
	}
	if f.GridR2 < 0.98 {
		t.Fatalf("grid R² = %v", f.GridR2)
	}
	wantA := 1/p.SiteWANMBps + 1/p.SplitMBps + p.SerialFrac/p.EngineMBps
	wantD := 1/p.LANMBps + (1-p.SerialFrac)/p.EngineMBps
	within(t, "grid X coef", f.GridCoef[0], wantA, 0.05)
	within(t, "grid const", f.GridCoef[1], p.XferInitS+p.CodeStageS, 0.15)
	within(t, "grid X/N coef", f.GridCoef[3], wantD, 0.05)
}

func TestFitEquationsRecoverPaperEquations(t *testing.T) {
	// With equation-calibrated params the refit must land on the
	// paper's published coefficients — the exact Figure 5 model.
	f, err := FitEquations(EquationCalibratedParams())
	if err != nil {
		t.Fatal(err)
	}
	within(t, "local slope", f.LocalSlope, PaperLocalSlope(), 0.01)
	within(t, "grid X", f.GridCoef[0], 0.38, 0.05)
	within(t, "grid const", f.GridCoef[1], 53, 0.05)
	within(t, "grid X/N", f.GridCoef[3], 5.3, 0.05)
	if f.GridR2 < 0.995 {
		t.Fatalf("grid R² = %v", f.GridR2)
	}
}

func TestQueueAblationDedicatedWins(t *testing.T) {
	r, err := QueueAblation(4, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !r.SharedTimedOut {
		t.Fatal("shared queue should starve behind the batch backlog")
	}
	if r.DedicatedMS > 250 {
		t.Fatalf("dedicated queue latency %d ms", r.DedicatedMS)
	}
}

func TestMergeAblationReducesRootLoad(t *testing.T) {
	rows, err := MergeAblation(32, 3, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	flat, tree := rows[0], rows[1]
	if flat.RootPublishes != 32*3 {
		t.Fatalf("flat root publishes = %d", flat.RootPublishes)
	}
	if tree.RootPublishes >= flat.RootPublishes/4 {
		t.Fatalf("tree root publishes = %d, want < %d", tree.RootPublishes, flat.RootPublishes/4)
	}
}

func TestStreamAblationParallelWins(t *testing.T) {
	rows := StreamAblation(100, []int{1, 2, 4, 8})
	if rows[0].Speedup != 1 {
		t.Fatal("baseline speedup != 1")
	}
	// 1 stream: 100/1.4 ≈ 71 s; 4 streams: 100/(4·1.4) ≈ 18 s; 8 streams
	// saturate the 10 MB/s link: 100/10 = 10 s.
	within(t, "1 stream", rows[0].Seconds, 100/1.4+0.2, 0.02)
	within(t, "8 streams", rows[3].Seconds, 10+0.2, 0.05)
	for i := 1; i < len(rows); i++ {
		if rows[i].Seconds >= rows[i-1].Seconds {
			t.Fatalf("more streams slower at row %d", i)
		}
	}
}

func TestPollAblationIncrementalSmaller(t *testing.T) {
	r, err := PollAblation(20)
	if err != nil {
		t.Fatal(err)
	}
	if r.IncrementalBytes*5 > r.FullBytes {
		t.Fatalf("incremental %d B vs full %d B — no saving", r.IncrementalBytes, r.FullBytes)
	}
}

func TestRenderersProduceTables(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTable1(&buf, Table1(PaperParams())); err != nil {
		t.Fatal(err)
	}
	if err := RenderTable2(&buf, Table2(PaperParams())); err != nil {
		t.Fatal(err)
	}
	f, _ := FitEquations(PaperParams())
	if err := RenderEquations(&buf, f); err != nil {
		t.Fatal(err)
	}
	r := Figure5(PaperParams(), []float64{10, 471}, []int{1, 16})
	if err := RenderFigure5(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 2", "fitted equations", "crossover", "Speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
