// A13 — multicore raw-speed sweep. Every prior ablation measured
// mechanism against mechanism at whatever parallelism the host gave
// it; this one pins GOMAXPROCS and sweeps it, measuring the four hot
// paths this PR rebuilt — bulk fills, coalesced publishes, the binary
// RMI envelope, and pooled poll-frame decodes — each against its
// retained baseline (scalar fills, one-call-per-publish, gob envelope,
// unpooled frames). The rows are only as honest as the host: a 1-CPU
// container produces a single Procs=1 row and no scaling claim (the
// BENCH env block records the hardware for exactly this reason).
package perf

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/rmi"
	"github.com/ipa-grid/ipa/internal/shard"
)

// McoreRow is one GOMAXPROCS setting's outcome across the four paths.
type McoreRow struct {
	Procs int

	// Bulk fills: aggregate samples/s across Procs goroutines filling
	// private histograms, batched (FillN) vs scalar (Fill) loops.
	FillNPerSec  float64
	ScalarPerSec float64

	// Publish+poll fabric: aggregate operations/s (publishes + polls)
	// against a sharded router over loopback RMI, publishes coalesced by
	// a group-commit Batcher vs the same load one call per publish.
	BatchedOpsPerSec   float64
	UnbatchedOpsPerSec float64
	// CoalesceFactor is the realized publishes-per-batch in the batched
	// run.
	CoalesceFactor float64

	// RMI round trips: calls/s over loopback TCP with the binary v2
	// envelope vs the gob envelope.
	V2CallsPerSec  float64
	GobCallsPerSec float64

	// Poll-frame decode: heap allocations per wire-frame decode with the
	// pooled free list vs the unpooled baseline (0 vs ≥1 in steady
	// state).
	PooledAllocsPerDecode   float64
	UnpooledAllocsPerDecode float64
}

// MulticoreSweep measures one McoreRow per entry of procs (each capped
// to runtime.NumCPU so rows never report oversubscription as scaling).
// fills is the per-goroutine sample count for the fill paths; sessions/
// rounds/objects shape the publish+poll fabric load; calls is the
// per-mode RMI round-trip count.
func MulticoreSweep(procs []int, fills, sessions, rounds, objects, calls int) ([]McoreRow, error) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	seen := make(map[int]bool)
	var out []McoreRow
	for _, p := range procs {
		if p < 1 {
			p = 1
		}
		if p > runtime.NumCPU() {
			p = runtime.NumCPU()
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		runtime.GOMAXPROCS(p)
		row := McoreRow{Procs: p}
		// Single-shot rates on a busy shared host swing ±30%, easily
		// inverting a comparison; run each new-path/baseline pair
		// back-to-back three times (so host drift hits both modes alike)
		// and keep per-mode medians.
		var fillns, scalars, batched, factors, unbatched, v2s, gobs [reps]float64
		for i := 0; i < reps; i++ {
			fillns[i], scalars[i] = fillRates(p, fills)
			var err error
			if batched[i], factors[i], err = pubPollRate(p, sessions, rounds, objects, false); err != nil {
				return nil, err
			}
			if unbatched[i], _, err = pubPollRate(p, sessions, rounds, objects, true); err != nil {
				return nil, err
			}
			if v2s[i], err = rmiCallRate(p, calls, false); err != nil {
				return nil, err
			}
			if gobs[i], err = rmiCallRate(p, calls, true); err != nil {
				return nil, err
			}
		}
		row.FillNPerSec, row.ScalarPerSec = median(fillns), median(scalars)
		row.BatchedOpsPerSec, row.CoalesceFactor = median(batched), median(factors)
		row.UnbatchedOpsPerSec = median(unbatched)
		row.V2CallsPerSec, row.GobCallsPerSec = median(v2s), median(gobs)
		var err error
		row.PooledAllocsPerDecode, row.UnpooledAllocsPerDecode, err = decodeAllocs()
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// reps is how many times each measurement pair repeats per row.
const reps = 3

func median(xs [reps]float64) float64 {
	s := append([]float64(nil), xs[:]...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// fillRates runs p goroutines, each filling a private histogram with
// `fills` samples, once through FillN (1024-sample batches) and once
// through the scalar Fill loop. Returns aggregate samples/s for each.
func fillRates(p, fills int) (filln, scalar float64) {
	samples := make([]float64, 1024)
	for i := range samples {
		samples[i] = float64(i%120) - 10 // includes under/overflow traffic
	}
	run := func(bulk bool) float64 {
		done := make(chan struct{}, p)
		start := time.Now()
		for g := 0; g < p; g++ {
			go func() {
				h := aida.NewHistogram1D("h", "", 100, 0, 100)
				if bulk {
					for n := 0; n < fills; n += len(samples) {
						h.FillN(samples, nil)
					}
				} else {
					for n := 0; n < fills; n += len(samples) {
						for _, x := range samples {
							h.Fill(x)
						}
					}
				}
				done <- struct{}{}
			}()
		}
		for g := 0; g < p; g++ {
			<-done
		}
		secs := time.Since(start).Seconds()
		if secs <= 0 {
			secs = 1e-9
		}
		return float64(p*fills) / secs
	}
	return run(true), run(false)
}

// pubPollRate drives `sessions` concurrent sessions — each one
// delta-publishing engine plus an incremental poll per round — against
// a sharded router served over loopback RMI (the deployment shape:
// engines reach the merge fabric through a shared pipelined
// connection). Publishes go through a shared group-commit Batcher, so
// whatever queues during one PublishBatch round trip rides the next;
// disabled selects the one-call-per-publish ablation. Returns
// aggregate (publishes+polls)/s and the realized coalescing factor.
func pubPollRate(p, sessions, rounds, objects int, disabled bool) (float64, float64, error) {
	router := shard.NewRouter(0)
	shards := p
	if shards < 1 {
		shards = 1
	}
	for i := 0; i < shards; i++ {
		if err := router.AddShard(fmt.Sprintf("shard%02d", i), merge.NewManager()); err != nil {
			return 0, 0, err
		}
	}
	srv := rmi.NewServer(nil)
	if err := srv.Register(merge.RMIObjectName, router); err != nil {
		return 0, 0, err
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	defer srv.Close()
	client, err := rmi.Dial(addr.String(), "tok")
	if err != nil {
		return 0, 0, err
	}
	defer client.Close()
	batcher := merge.NewBatcher(merge.NewRemotePublisher(client, ""), merge.BatcherOptions{
		Disabled: disabled,
	})
	defer batcher.Close()
	errs := make(chan error, sessions)
	start := time.Now()
	for s := 0; s < sessions; s++ {
		sid := fmt.Sprintf("sess-%02d", s)
		go func() {
			tree := aida.NewTree()
			hists := make([]*aida.Histogram1D, objects)
			for o := range hists {
				h, err := tree.H1D("/a", fmt.Sprintf("h%02d", o), "", 100, 0, 100)
				if err != nil {
					errs <- err
					return
				}
				for f := 0; f < 200; f++ {
					h.Fill(float64(f % 100))
				}
				hists[o] = h
			}
			tr := merge.NewTransport(sid, "w0", batcher)
			var since int64
			for r := 0; r < rounds; r++ {
				hists[r%objects].Fill(float64(r % 100))
				_, err := tr.Send(func(full bool) (merge.Snapshot, error) {
					var d *aida.DeltaState
					var err error
					if full {
						d, err = tree.FullDelta()
					} else {
						d, err = tree.Delta()
					}
					return merge.Snapshot{Delta: d}, err
				})
				if err != nil {
					errs <- err
					return
				}
				var poll merge.PollReply
				if err := client.Call(merge.RMIObjectName+".Poll",
					merge.PollArgs{SessionID: sid, SinceVersion: since}, &poll); err != nil {
					errs <- err
					return
				}
				since = poll.Version
				poll.Release()
			}
			errs <- nil
		}()
	}
	for s := 0; s < sessions; s++ {
		if err := <-errs; err != nil {
			return 0, 0, err
		}
	}
	secs := time.Since(start).Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	flushes, published := batcher.Stats()
	factor := 1.0
	if flushes > 0 {
		factor = float64(published) / float64(flushes)
	}
	return float64(2*sessions*rounds) / secs, factor, nil
}

// rmiCallRate measures quiescent-poll round trips/s over loopback with
// p concurrent callers sharing one pipelined connection, under the v2
// or (gob=true) the gob envelope.
func rmiCallRate(p, calls int, gob bool) (float64, error) {
	mgr := merge.NewManager()
	tree := aida.NewTree()
	h, err := tree.H1D("/a", "h", "", 100, 0, 100)
	if err != nil {
		return 0, err
	}
	for f := 0; f < 500; f++ {
		h.Fill(float64(f % 100))
	}
	d, err := tree.FullDelta()
	if err != nil {
		return 0, err
	}
	var rep merge.PublishReply
	if err := mgr.Publish(merge.PublishArgs{SessionID: "s", WorkerID: "w", Seq: 1, Delta: d}, &rep); err != nil {
		return 0, err
	}
	srv := rmi.NewServer(nil)
	if err := srv.Register(merge.RMIObjectName, mgr); err != nil {
		return 0, err
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	var opts []rmi.Option
	if gob {
		opts = append(opts, rmi.WithGobEnvelope())
	}
	client, err := rmi.Dial(addr.String(), "tok", opts...)
	if err != nil {
		return 0, err
	}
	defer client.Close()
	errs := make(chan error, p)
	start := time.Now()
	for c := 0; c < p; c++ {
		go func() {
			for i := 0; i < calls; i++ {
				var reply merge.PollReply
				if err := client.Call(merge.RMIObjectName+".Poll", merge.PollArgs{
					SessionID: "s", SinceVersion: rep.Version,
				}, &reply); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for c := 0; c < p; c++ {
		if err := <-errs; err != nil {
			return 0, err
		}
	}
	secs := time.Since(start).Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	return float64(p*calls) / secs, nil
}

// decodeAllocs measures heap allocations per wire-frame decode (the
// client side of a warm poll) with the pooled free list on and off.
// Pooled steady state is allocation-free: the decode copies into a
// recycled buffer and Release returns it.
func decodeAllocs() (pooled, unpooled float64, err error) {
	h := aida.NewHistogram1D("h", "", 100, 0, 100)
	for f := 0; f < 1000; f++ {
		h.Fill(float64(f % 100))
	}
	st, err := aida.StateOf(h)
	if err != nil {
		return 0, 0, err
	}
	frame, err := aida.EncodeObjectFrame(&st)
	if err != nil {
		return 0, 0, err
	}
	raw := append([]byte(nil), frame...)
	measure := func(pooling bool) float64 {
		aida.SetFramePooling(pooling)
		defer aida.SetFramePooling(true)
		// Warm the free list so the measurement sees steady state.
		var f aida.ObjectFrame
		for i := 0; i < 16; i++ {
			f.GobDecode(raw)
			f.Release()
		}
		const n = 2000
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		for i := 0; i < n; i++ {
			f.GobDecode(raw)
			f.Release()
		}
		runtime.ReadMemStats(&m1)
		return float64(m1.Mallocs-m0.Mallocs) / n
	}
	return measure(true), measure(false), nil
}
