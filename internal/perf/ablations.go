package perf

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/des"
	"github.com/ipa-grid/ipa/internal/gram"
	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/netsim"
	"github.com/ipa-grid/ipa/internal/rmi"
	"github.com/ipa-grid/ipa/internal/scheduler"
	"github.com/ipa-grid/ipa/internal/shard"
)

// A1 — the dedicated timely queue (§2.3, §6). Engine-start latency on a
// fully loaded cluster, with and without a preempting interactive queue.

// QueueAblationResult reports start latencies.
type QueueAblationResult struct {
	// DedicatedMS is the engine-start latency with a preempting
	// interactive queue.
	DedicatedMS int64
	// SharedMS is the latency when engines wait in the batch queue
	// behind backlogged work (bounded by the probe timeout).
	SharedMS int64
	// SharedTimedOut reports the shared-queue probe never started.
	SharedTimedOut bool
}

// QueueAblation measures both configurations on a real scheduler whose
// batch backlog holds every slot for longer than the probe window.
func QueueAblation(nodes int, probeTimeout time.Duration) (QueueAblationResult, error) {
	var out QueueAblationResult
	run := func(preempting bool) (time.Duration, bool, error) {
		var nc []scheduler.NodeConfig
		for i := 0; i < nodes; i++ {
			nc = append(nc, scheduler.NodeConfig{Name: fmt.Sprintf("n%02d", i), Slots: 1})
		}
		cluster, err := scheduler.New(nc, []scheduler.QueueConfig{
			{Name: "interactive", Priority: 10, Preempting: preempting},
			{Name: "batch", Priority: 1, Preemptible: true},
		})
		if err != nil {
			return 0, false, err
		}
		defer cluster.Close()
		jm := gram.NewJobManager(cluster)
		block := make(chan struct{})
		defer close(block)
		jm.RegisterLauncher("batch-work", func(ctx context.Context, node string, idx int, jd gram.JobDescription) error {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil
		})
		jm.RegisterLauncher("ipa-engine", func(ctx context.Context, node string, idx int, jd gram.JobDescription) error {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil
		})
		// Saturate the farm with long batch work (plus a backlog).
		if _, err := jm.Submit(gram.JobDescription{Executable: "batch-work", Count: nodes * 2, Queue: "batch"}); err != nil {
			return 0, false, err
		}
		job, err := jm.Submit(gram.JobDescription{Executable: "ipa-engine", Count: nodes, Queue: "interactive"})
		if err != nil {
			return 0, false, err
		}
		lat, err := job.WaitActive(probeTimeout)
		timedOut := err != nil
		job.Cancel()
		return lat, timedOut, nil
	}
	ded, dTimeout, err := run(true)
	if err != nil {
		return out, err
	}
	if dTimeout {
		return out, fmt.Errorf("perf: dedicated queue timed out — preemption broken")
	}
	shared, sTimeout, err := run(false)
	if err != nil {
		return out, err
	}
	out.DedicatedMS = ded.Milliseconds()
	out.SharedMS = shared.Milliseconds()
	out.SharedTimedOut = sTimeout
	return out, nil
}

// A2 — hierarchical merging (§2.5). Root-manager load (publishes handled
// by the root) and wall time, flat vs two-level.

// MergeAblationRow is one configuration's outcome.
type MergeAblationRow struct {
	Workers       int
	Mode          string // "flat" or "tree"
	RootPublishes int64
	WallMS        int64
}

// MergeAblation publishes `rounds` snapshots from each of `workers`
// engines, each snapshot carrying `objects` histograms, in both shapes.
func MergeAblation(workers, rounds, objects, groupSize int) ([]MergeAblationRow, error) {
	mkTree := func(seed int) aida.TreeState {
		t := aida.NewTree()
		for o := 0; o < objects; o++ {
			h := aida.NewHistogram1D(fmt.Sprintf("h%d", o), "", 50, 0, 100)
			for f := 0; f < 100; f++ {
				h.Fill(float64((seed*31 + o*17 + f) % 100))
			}
			t.Put("/a", h)
		}
		st, _ := t.State()
		return *st
	}
	var out []MergeAblationRow

	// Flat: every engine publishes straight to the root.
	root := merge.NewManager()
	counting := &countingPublisher{inner: root}
	start := time.Now()
	var rep merge.PublishReply
	for r := 0; r < rounds; r++ {
		for w := 0; w < workers; w++ {
			if err := counting.Publish(merge.PublishArgs{
				SessionID: "s", WorkerID: fmt.Sprintf("w%03d", w), Seq: int64(r + 1),
				Tree: mkTree(w), EventsDone: int64(r), EventsTotal: int64(rounds),
			}, &rep); err != nil {
				return nil, err
			}
		}
	}
	var poll merge.PollReply
	if err := root.Poll(merge.PollArgs{SessionID: "s"}, &poll); err != nil {
		return nil, err
	}
	out = append(out, MergeAblationRow{Workers: workers, Mode: "flat",
		RootPublishes: counting.count, WallMS: time.Since(start).Milliseconds()})

	// Tree: groups of groupSize behind sub-mergers that batch a full
	// group round before forwarding.
	root2 := merge.NewManager()
	counting2 := &countingPublisher{inner: root2}
	groups := map[int]*merge.SubMerger{}
	start = time.Now()
	for r := 0; r < rounds; r++ {
		for w := 0; w < workers; w++ {
			gid := w / groupSize
			sm := groups[gid]
			if sm == nil {
				sm = merge.NewSubMerger(fmt.Sprintf("group-%02d", gid), "s", counting2, groupSize)
				groups[gid] = sm
			}
			if err := sm.Publish(merge.PublishArgs{
				SessionID: "s", WorkerID: fmt.Sprintf("w%03d", w), Seq: int64(r + 1),
				Tree: mkTree(w), EventsDone: int64(r), EventsTotal: int64(rounds),
			}, &rep); err != nil {
				return nil, err
			}
		}
	}
	for _, sm := range groups {
		if err := sm.Flush(); err != nil {
			return nil, err
		}
	}
	if err := root2.Poll(merge.PollArgs{SessionID: "s"}, &poll); err != nil {
		return nil, err
	}
	out = append(out, MergeAblationRow{Workers: workers, Mode: "tree",
		RootPublishes: counting2.count, WallMS: time.Since(start).Milliseconds()})
	return out, nil
}

type countingPublisher struct {
	inner *merge.Manager
	count int64
}

func (c *countingPublisher) Publish(args merge.PublishArgs, reply *merge.PublishReply) error {
	c.count++
	return c.inner.Publish(args, reply)
}

// A3 — parallel GridFTP streams (§3.4). Transfer time of one file over a
// high-latency WAN whose per-stream throughput is window-limited.

// StreamAblationRow is one stream-count outcome.
type StreamAblationRow struct {
	Streams int
	Seconds float64
	Speedup float64
}

// StreamAblation models a 2006 transatlantic path: per-TCP-stream rate
// capped (window/RTT) well under the 10 MB/s bottleneck link.
func StreamAblation(sizeMB float64, streamCounts []int) []StreamAblationRow {
	const linkMBps = 10.0
	const perStreamMBps = 1.4 // 64 KB window / ~45 ms RTT
	var out []StreamAblationRow
	var base float64
	for _, s := range streamCounts {
		k := des.New()
		net := netsim.New(k)
		link := net.AddLink("wan", linkMBps)
		var done des.Time
		barrier := des.NewBarrier(s, func() { done = k.Now() })
		for i := 0; i < s; i++ {
			net.StartFlow(sizeMB/float64(s), []*netsim.Link{link},
				netsim.FlowOpts{RateCap: perStreamMBps, Latency: 0.2},
				func(*netsim.Flow) { barrier.Arrive() })
		}
		if err := k.Run(); err != nil {
			panic(err)
		}
		row := StreamAblationRow{Streams: s, Seconds: float64(done)}
		if base == 0 {
			base = row.Seconds
		}
		row.Speedup = base / row.Seconds
		out = append(out, row)
	}
	return out
}

// A5 — incremental snapshot publishing. Publish-side cost of a steady
// interactive session (each worker keeps filling a few of its histograms)
// under the delta protocol vs the retained full-snapshot baseline.

// PublishAblationRow is one mode's outcome.
type PublishAblationRow struct {
	Mode    string // "full" or "delta"
	Workers int
	Rounds  int
	Objects int
	Touched int
	// WallMS is the wall time for all rounds (publishes + one
	// incremental poll per round).
	WallMS int64
	// AllocsPerRound is the mean heap allocation count per round.
	AllocsPerRound float64
	// WireBytesPerPublish is the gob-encoded size of one steady-state
	// publish (what the RMI layer would put on the wire).
	WireBytesPerPublish int64
}

// PublishAblation runs `rounds` steady-state rounds over `workers`
// engines each holding `objects` histograms of which `touched` change per
// round, in both snapshot modes.
func PublishAblation(workers, rounds, objects, touched int) ([]PublishAblationRow, error) {
	if touched > objects {
		touched = objects
	}
	var out []PublishAblationRow
	for _, mode := range []string{"full", "delta"} {
		m := merge.NewManager()
		trees := make([]*aida.Tree, workers)
		hists := make([][]*aida.Histogram1D, workers)
		for w := range trees {
			trees[w] = aida.NewTree()
			hists[w] = make([]*aida.Histogram1D, objects)
			for o := 0; o < objects; o++ {
				h, err := trees[w].H1D("/a", fmt.Sprintf("h%02d", o), "", 100, 0, 100)
				if err != nil {
					return nil, err
				}
				for f := 0; f < 1000; f++ {
					h.Fill(float64((w*31 + f) % 100))
				}
				hists[w][o] = h
			}
		}
		seqs := make([]int64, workers)
		var rep merge.PublishReply
		publish := func(w int) error {
			seqs[w]++
			args := merge.PublishArgs{
				SessionID: "s", WorkerID: fmt.Sprintf("w%03d", w), Seq: seqs[w],
			}
			if mode == "full" {
				st, err := trees[w].State()
				if err != nil {
					return err
				}
				args.Tree = *st
			} else {
				d, err := trees[w].Delta()
				if err != nil {
					return err
				}
				args.Delta = d
			}
			return m.Publish(args, &rep)
		}
		// Baseline round (not measured): every worker announces its tree.
		for w := 0; w < workers; w++ {
			if err := publish(w); err != nil {
				return nil, err
			}
		}
		var poll merge.PollReply
		if err := m.Poll(merge.PollArgs{SessionID: "s"}, &poll); err != nil {
			return nil, err
		}
		since := poll.Version
		// One steady-state publish measured for wire size.
		for o := 0; o < touched; o++ {
			hists[0][o].Fill(50)
		}
		var wireBytes int64
		{
			args := merge.PublishArgs{SessionID: "s", WorkerID: "w000", Seq: seqs[0] + 1}
			if mode == "full" {
				st, err := trees[0].State()
				if err != nil {
					return nil, err
				}
				args.Tree = *st
			} else {
				d, err := trees[0].Delta()
				if err != nil {
					return nil, err
				}
				args.Delta = d
			}
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(&args); err != nil {
				return nil, err
			}
			wireBytes = int64(buf.Len())
			seqs[0]++
			if err := m.Publish(args, &rep); err != nil {
				return nil, err
			}
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for r := 0; r < rounds; r++ {
			for w := 0; w < workers; w++ {
				for o := 0; o < touched; o++ {
					hists[w][(r+o)%objects].Fill(float64((r + o) % 100))
				}
				if err := publish(w); err != nil {
					return nil, err
				}
			}
			poll = merge.PollReply{}
			if err := m.Poll(merge.PollArgs{SessionID: "s", SinceVersion: since}, &poll); err != nil {
				return nil, err
			}
			since = poll.Version
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		out = append(out, PublishAblationRow{
			Mode: mode, Workers: workers, Rounds: rounds, Objects: objects, Touched: touched,
			WallMS:              wall.Milliseconds(),
			AllocsPerRound:      float64(after.Mallocs-before.Mallocs) / float64(rounds),
			WireBytesPerPublish: wireBytes,
		})
	}
	return out, nil
}

// A6 — hierarchical delta forwarding (§2.5 composed with the
// incremental pipeline). Upstream cost of SubMerger flushes when each
// group forwards touched-only deltas vs republishing its whole merged
// tree (the legacy full-flush baseline).

// HierarchyAblationRow is one forwarding mode's outcome.
type HierarchyAblationRow struct {
	Mode    string // "full-flush" or "delta-flush"
	Groups  int
	Workers int // per group
	Rounds  int
	Objects int
	Touched int
	// UpstreamBytesPerFlush is the mean gob-encoded size of one upstream
	// publish in steady state (what the RMI layer would put on the wire).
	UpstreamBytesPerFlush int64
	// AllocsPerRound is the mean heap allocation count per round
	// (publishes + flushes + the upstream wire encode).
	AllocsPerRound float64
	WallMS         int64
}

// wirePublisher gob-encodes every publish — the work the RMI layer
// would do — before delegating, and accumulates the wire bytes.
type wirePublisher struct {
	inner merge.Publisher
	bytes int64
	calls int64
}

func (p *wirePublisher) Publish(args merge.PublishArgs, reply *merge.PublishReply) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&args); err != nil {
		return err
	}
	p.bytes += int64(buf.Len())
	p.calls++
	return p.inner.Publish(args, reply)
}

// HierarchyAblation runs `rounds` steady-state rounds over groups×
// workers engines (each holding `objects` histograms of which `touched`
// change per round) behind per-group SubMergers, in both forwarding
// modes.
func HierarchyAblation(groups, workersPerGroup, rounds, objects, touched int) ([]HierarchyAblationRow, error) {
	if touched > objects {
		touched = objects
	}
	var out []HierarchyAblationRow
	for _, mode := range []string{"full-flush", "delta-flush"} {
		root := merge.NewManager()
		wire := &wirePublisher{inner: root}
		subs := make([]*merge.SubMerger, groups)
		for g := range subs {
			subs[g] = merge.NewSubMerger(fmt.Sprintf("group-%02d", g), "s", wire, workersPerGroup)
			subs[g].ForwardFull = mode == "full-flush"
		}
		nw := groups * workersPerGroup
		trees := make([]*aida.Tree, nw)
		hists := make([][]*aida.Histogram1D, nw)
		for w := range trees {
			trees[w] = aida.NewTree()
			hists[w] = make([]*aida.Histogram1D, objects)
			for o := 0; o < objects; o++ {
				h, err := trees[w].H1D("/a", fmt.Sprintf("h%02d", o), "", 100, 0, 100)
				if err != nil {
					return nil, err
				}
				for f := 0; f < 1000; f++ {
					h.Fill(float64((w*31 + f) % 100))
				}
				hists[w][o] = h
			}
		}
		seqs := make([]int64, nw)
		var rep merge.PublishReply
		publish := func(w int) error {
			d, err := trees[w].Delta()
			if err != nil {
				return err
			}
			seqs[w]++
			return subs[w/workersPerGroup].Publish(merge.PublishArgs{
				SessionID: "s", WorkerID: fmt.Sprintf("w%03d", w), Seq: seqs[w], Delta: d,
			}, &rep)
		}
		// Baseline round (not measured): every worker announces its tree.
		for w := 0; w < nw; w++ {
			if err := publish(w); err != nil {
				return nil, err
			}
		}
		baseBytes, baseCalls := wire.bytes, wire.calls
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for r := 0; r < rounds; r++ {
			for w := 0; w < nw; w++ {
				for o := 0; o < touched; o++ {
					hists[w][(r+o)%objects].Fill(float64((r + o) % 100))
				}
				if err := publish(w); err != nil {
					return nil, err
				}
			}
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		flushes := wire.calls - baseCalls
		if flushes == 0 {
			return nil, fmt.Errorf("perf: hierarchy ablation made no upstream flushes")
		}
		out = append(out, HierarchyAblationRow{
			Mode: mode, Groups: groups, Workers: workersPerGroup,
			Rounds: rounds, Objects: objects, Touched: touched,
			UpstreamBytesPerFlush: (wire.bytes - baseBytes) / flushes,
			AllocsPerRound:        float64(after.Mallocs-before.Mallocs) / float64(rounds),
			WallMS:                wall.Milliseconds(),
		})
	}
	return out, nil
}

// A7 — the encoded-frame poll cache. Per-poll cost when N clients poll
// the same merged state, with the cache on (one encode serves everyone)
// vs off (every poll re-encodes every object).

// PollCacheAblationRow is one configuration's outcome.
type PollCacheAblationRow struct {
	Mode    string // "uncached" or "cached"
	Clients int
	Objects int
	// AllocsPerPoll is the mean heap allocation count per full poll.
	AllocsPerPoll float64
	// MicrosPerPoll is the mean wall time per full poll.
	MicrosPerPoll float64
	// Hits / Misses are the manager's cache counters after the run.
	Hits, Misses int64
}

// PollCacheAblation publishes `objects` histograms once, then serves
// `clients` identical full polls in both cache modes.
func PollCacheAblation(clients, objects int) ([]PollCacheAblationRow, error) {
	var out []PollCacheAblationRow
	for _, mode := range []string{"uncached", "cached"} {
		m := merge.NewManager()
		m.DisableEncodeCache = mode == "uncached"
		tree := aida.NewTree()
		for o := 0; o < objects; o++ {
			h, err := tree.H1D("/a", fmt.Sprintf("h%02d", o), "", 100, 0, 100)
			if err != nil {
				return nil, err
			}
			for f := 0; f < 1000; f++ {
				h.Fill(float64(f % 100))
			}
		}
		d, err := tree.Delta()
		if err != nil {
			return nil, err
		}
		var rep merge.PublishReply
		if err := m.Publish(merge.PublishArgs{SessionID: "s", WorkerID: "w", Seq: 1, Delta: d}, &rep); err != nil {
			return nil, err
		}
		// Prime: the first poll pays the encodes in either mode.
		var warm merge.PollReply
		if err := m.Poll(merge.PollArgs{SessionID: "s", Full: true}, &warm); err != nil {
			return nil, err
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for c := 0; c < clients; c++ {
			var poll merge.PollReply
			if err := m.Poll(merge.PollArgs{SessionID: "s", Full: true}, &poll); err != nil {
				return nil, err
			}
			if len(poll.Entries) != objects {
				return nil, fmt.Errorf("perf: poll returned %d of %d objects", len(poll.Entries), objects)
			}
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		hits, misses := m.CacheStats("s")
		out = append(out, PollCacheAblationRow{
			Mode: mode, Clients: clients, Objects: objects,
			AllocsPerPoll: float64(after.Mallocs-before.Mallocs) / float64(clients),
			MicrosPerPoll: float64(wall.Microseconds()) / float64(clients),
			Hits:          hits, Misses: misses,
		})
	}
	return out, nil
}

// A8 — compressed wire frames. Size of one steady-state snapshot in
// plain (version 1) vs DEFLATE (version 2) frames — the per-connection
// choice for WAN-deployed workers.

// WireCompressionRow is the two frame sizes for one snapshot shape.
type WireCompressionRow struct {
	Objects    int
	PlainBytes int
	FlateBytes int
}

// WireCompressionAblation encodes a baseline snapshot of `objects`
// partially filled histograms both ways.
func WireCompressionAblation(objects int) (WireCompressionRow, error) {
	tree := aida.NewTree()
	for o := 0; o < objects; o++ {
		h, err := tree.H1D("/a", fmt.Sprintf("h%02d", o), "", 200, 0, 100)
		if err != nil {
			return WireCompressionRow{}, err
		}
		// Sparse fills: most bins empty, the WAN-snapshot shape where
		// compression pays.
		for f := 0; f < 50; f++ {
			h.Fill(float64((o*13 + f*7) % 100))
		}
	}
	d, err := tree.FullDelta()
	if err != nil {
		return WireCompressionRow{}, err
	}
	plain, err := aida.AppendDeltaState(nil, d)
	if err != nil {
		return WireCompressionRow{}, err
	}
	packed, err := aida.AppendDeltaStateFlate(nil, d)
	if err != nil {
		return WireCompressionRow{}, err
	}
	return WireCompressionRow{Objects: objects, PlainBytes: len(plain), FlateBytes: len(packed)}, nil
}

// A4 — incremental result polling (§3.7). Wire bytes per poll cycle when
// only one of H histograms changed, full vs incremental.

// PollAblationResult compares polling strategies.
type PollAblationResult struct {
	Objects          int
	FullBytes        int
	IncrementalBytes int
}

// PollAblation publishes H histograms, then one delta, and measures the
// gob-encoded reply sizes of a full poll vs an incremental poll.
func PollAblation(objects int) (PollAblationResult, error) {
	m := merge.NewManager()
	mk := func(bump int) aida.TreeState {
		t := aida.NewTree()
		for o := 0; o < objects; o++ {
			h := aida.NewHistogram1D(fmt.Sprintf("h%02d", o), "", 100, 0, 100)
			for f := 0; f < 1000; f++ {
				h.Fill(float64(f % 100))
			}
			if o == 0 {
				for f := 0; f < bump; f++ {
					h.Fill(50)
				}
			}
			t.Put("/a", h)
		}
		st, _ := t.State()
		return *st
	}
	var rep merge.PublishReply
	if err := m.Publish(merge.PublishArgs{SessionID: "s", WorkerID: "w", Seq: 1, Tree: mk(0)}, &rep); err != nil {
		return PollAblationResult{}, err
	}
	var first merge.PollReply
	if err := m.Poll(merge.PollArgs{SessionID: "s"}, &first); err != nil {
		return PollAblationResult{}, err
	}
	// One histogram changes.
	if err := m.Publish(merge.PublishArgs{SessionID: "s", WorkerID: "w", Seq: 2, Tree: mk(7)}, &rep); err != nil {
		return PollAblationResult{}, err
	}
	size := func(args merge.PollArgs) (int, error) {
		var reply merge.PollReply
		if err := m.Poll(args, &reply); err != nil {
			return 0, err
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&reply); err != nil {
			return 0, err
		}
		return buf.Len(), nil
	}
	full, err := size(merge.PollArgs{SessionID: "s", Full: true})
	if err != nil {
		return PollAblationResult{}, err
	}
	inc, err := size(merge.PollArgs{SessionID: "s", SinceVersion: first.Version})
	if err != nil {
		return PollAblationResult{}, err
	}
	return PollAblationResult{Objects: objects, FullBytes: full, IncrementalBytes: inc}, nil
}

// A9 — the sharded merge fabric. Publish+poll throughput of N
// concurrent sessions against routers of increasing shard count: one
// manager serializes every session behind one lock, while consistent-
// hash sharding lets unrelated sessions merge and poll in parallel.

// ShardAblationRow is one shard count's outcome.
type ShardAblationRow struct {
	Shards   int
	Sessions int
	Workers  int // per session
	Rounds   int
	Objects  int
	// PublishesPerSec / PollsPerSec are aggregate fabric throughput
	// across all concurrent sessions.
	PublishesPerSec float64
	PollsPerSec     float64
	WallMS          int64
}

// ShardAblation runs `sessions` concurrent sessions — each driving
// `workers` delta-publishing engines (1 of `objects` histograms touched
// per round) and one incremental polling client — against a router over
// each shard count in turn.
func ShardAblation(shardCounts []int, sessions, workers, rounds, objects int) ([]ShardAblationRow, error) {
	var out []ShardAblationRow
	for _, n := range shardCounts {
		router := shard.NewRouter(0)
		for i := 0; i < n; i++ {
			if err := router.AddShard(fmt.Sprintf("shard%02d", i), merge.NewManager()); err != nil {
				return nil, err
			}
		}
		errs := make(chan error, sessions)
		start := time.Now()
		for s := 0; s < sessions; s++ {
			sid := fmt.Sprintf("sess-%02d", s)
			go func() {
				trees := make([]*aida.Tree, workers)
				hists := make([][]*aida.Histogram1D, workers)
				transports := make([]*merge.Transport, workers)
				for w := range trees {
					trees[w] = aida.NewTree()
					hists[w] = make([]*aida.Histogram1D, objects)
					for o := 0; o < objects; o++ {
						h, err := trees[w].H1D("/a", fmt.Sprintf("h%02d", o), "", 100, 0, 100)
						if err != nil {
							errs <- err
							return
						}
						for f := 0; f < 200; f++ {
							h.Fill(float64((w*31 + f) % 100))
						}
						hists[w][o] = h
					}
					transports[w] = merge.NewTransport(sid, fmt.Sprintf("w%02d", w), router)
				}
				var sinceVersion int64
				for r := 0; r < rounds; r++ {
					for w := 0; w < workers; w++ {
						hists[w][r%objects].Fill(float64(r % 100))
						_, err := transports[w].Send(func(full bool) (merge.Snapshot, error) {
							var d *aida.DeltaState
							var err error
							if full {
								d, err = trees[w].FullDelta()
							} else {
								d, err = trees[w].Delta()
							}
							return merge.Snapshot{Delta: d}, err
						})
						if err != nil {
							errs <- err
							return
						}
					}
					var poll merge.PollReply
					if err := router.Poll(merge.PollArgs{SessionID: sid, SinceVersion: sinceVersion}, &poll); err != nil {
						errs <- err
						return
					}
					sinceVersion = poll.Version
				}
				errs <- nil
			}()
		}
		for s := 0; s < sessions; s++ {
			if err := <-errs; err != nil {
				return nil, err
			}
		}
		wall := time.Since(start)
		secs := wall.Seconds()
		if secs <= 0 {
			secs = 1e-9
		}
		out = append(out, ShardAblationRow{
			Shards: n, Sessions: sessions, Workers: workers, Rounds: rounds, Objects: objects,
			PublishesPerSec: float64(sessions*rounds*workers) / secs,
			PollsPerSec:     float64(sessions*rounds) / secs,
			WallMS:          wall.Milliseconds(),
		})
	}
	return out, nil
}

// A10 — fine-grained merge-fabric locking and RMI pipelining. The
// coarse baseline serializes every Publish/Poll/Stats of a Manager on
// one mutex (why BENCH_3's A9 curve was nearly flat); the fine-grained
// fabric gives every session its own RWMutex and answers quiescent
// polls from an atomic snapshot with no lock at all.

// LockAblationRow is one (mode, shards, sessions) cell's outcome.
type LockAblationRow struct {
	Mode     string // "coarse" or "fine"
	Shards   int
	Sessions int
	Workers  int // publishing workers per session
	Pollers  int // polling clients per session
	Rounds   int
	// PublishesPerSec is aggregate fabric publish throughput.
	PublishesPerSec float64
	// PollsPerSec is aggregate client poll throughput (the pollers
	// free-run for the duration of the publish load).
	PollsPerSec float64
	// FastPollFrac is the fraction of polls answered on the lock-free
	// quiescent path (always 0 in coarse mode, which disables it).
	FastPollFrac float64
	WallMS       int64
}

// LockAblation drives, for every (shard count × session count) pair,
// `workers` delta-publishing engines and `pollers` free-running
// incremental pollers per session against a router over fine-grained
// and coarse-locked managers in turn.
func LockAblation(shardCounts, sessionCounts []int, workers, pollers, rounds, objects int) ([]LockAblationRow, error) {
	var out []LockAblationRow
	for _, mode := range []string{"coarse", "fine"} {
		for _, nShards := range shardCounts {
			for _, nSessions := range sessionCounts {
				row, err := lockAblationCell(mode, nShards, nSessions, workers, pollers, rounds, objects)
				if err != nil {
					return nil, err
				}
				out = append(out, row)
			}
		}
	}
	return out, nil
}

func lockAblationCell(mode string, nShards, nSessions, workers, pollers, rounds, objects int) (LockAblationRow, error) {
	router := shard.NewRouter(0)
	var mgrs []*merge.Manager
	for i := 0; i < nShards; i++ {
		m := merge.NewManager()
		m.CoarseLocking = mode == "coarse"
		mgrs = append(mgrs, m)
		if err := router.AddShard(fmt.Sprintf("shard%02d", i), m); err != nil {
			return LockAblationRow{}, err
		}
	}
	errs := make(chan error, nSessions)
	var stop atomic.Bool
	var pollCount, fastBase atomic.Int64
	var pollErr atomic.Pointer[error]
	var pollWG sync.WaitGroup
	start := time.Now()
	for s := 0; s < nSessions; s++ {
		sid := fmt.Sprintf("sess-%02d", s)
		go func() {
			trees := make([]*aida.Tree, workers)
			hists := make([][]*aida.Histogram1D, workers)
			transports := make([]*merge.Transport, workers)
			for w := range trees {
				trees[w] = aida.NewTree()
				hists[w] = make([]*aida.Histogram1D, objects)
				for o := 0; o < objects; o++ {
					h, err := trees[w].H1D("/a", fmt.Sprintf("h%02d", o), "", 100, 0, 100)
					if err != nil {
						errs <- err
						return
					}
					for f := 0; f < 200; f++ {
						h.Fill(float64((w*31 + f) % 100))
					}
					hists[w][o] = h
				}
				transports[w] = merge.NewTransport(sid, fmt.Sprintf("w%02d", w), router)
			}
			for r := 0; r < rounds; r++ {
				for w := 0; w < workers; w++ {
					hists[w][r%objects].Fill(float64(r % 100))
					_, err := transports[w].Send(func(full bool) (merge.Snapshot, error) {
						var d *aida.DeltaState
						var err error
						if full {
							d, err = trees[w].FullDelta()
						} else {
							d, err = trees[w].Delta()
						}
						return merge.Snapshot{Delta: d}, err
					})
					if err != nil {
						errs <- err
						return
					}
				}
			}
			errs <- nil
		}()
		for p := 0; p < pollers; p++ {
			pollWG.Add(1)
			go func() {
				defer pollWG.Done()
				var since int64
				for !stop.Load() {
					var reply merge.PollReply
					if err := router.Poll(merge.PollArgs{SessionID: sid, SinceVersion: since}, &reply); err != nil {
						// Surface the failure: a silently-exiting poller
						// would leave the cell green with merely fewer
						// polls/s — exactly what the CI -race smoke must
						// not miss.
						pollErr.CompareAndSwap(nil, &err)
						return
					}
					since = reply.Version
					pollCount.Add(1)
				}
			}()
		}
	}
	var firstErr error
	for s := 0; s < nSessions; s++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	wall := time.Since(start)
	// Snapshot the poll count at the same instant as the wall clock:
	// polls completing while the pollers drain after stop would
	// otherwise land in the numerator but not the denominator.
	pollsInWindow := pollCount.Load()
	stop.Store(true)
	pollWG.Wait()
	if firstErr == nil {
		if ep := pollErr.Load(); ep != nil {
			firstErr = *ep
		}
	}
	if firstErr != nil {
		return LockAblationRow{}, firstErr
	}
	for s := 0; s < nSessions; s++ {
		sid := fmt.Sprintf("sess-%02d", s)
		for _, m := range mgrs {
			fastBase.Add(m.FastPolls(sid))
		}
	}
	secs := wall.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	row := LockAblationRow{
		Mode: mode, Shards: nShards, Sessions: nSessions,
		Workers: workers, Pollers: pollers, Rounds: rounds,
		PublishesPerSec: float64(nSessions*rounds*workers) / secs,
		PollsPerSec:     float64(pollsInWindow) / secs,
		WallMS:          wall.Milliseconds(),
	}
	// The fraction uses the complete post-drain counts so numerator and
	// denominator cover the same poll population.
	if n := pollCount.Load(); n > 0 {
		row.FastPollFrac = float64(fastBase.Load()) / float64(n)
	}
	return row, nil
}

// RMIPipelineRow is one RMI concurrency mode's outcome.
type RMIPipelineRow struct {
	Mode        string // "serialized" or "pipelined"
	Callers     int
	Calls       int // per caller
	CallsPerSec float64
	WallMS      int64
}

// RMIPipelineAblation measures `callers` goroutines sharing ONE RMI
// connection, each issuing `calls` quiescent polls against a manager
// with published state — the interactive many-pollers-one-socket
// pattern. Serialized is the pre-pipelining client (one in-flight call
// at a time); pipelined tags requests with sequence numbers and lets a
// reader goroutine match out-of-order replies.
func RMIPipelineAblation(callers, calls int) ([]RMIPipelineRow, error) {
	mgr := merge.NewManager()
	tree := aida.NewTree()
	h, err := tree.H1D("/a", "h", "", 100, 0, 100)
	if err != nil {
		return nil, err
	}
	for f := 0; f < 500; f++ {
		h.Fill(float64(f % 100))
	}
	d, err := tree.FullDelta()
	if err != nil {
		return nil, err
	}
	var rep merge.PublishReply
	if err := mgr.Publish(merge.PublishArgs{SessionID: "s", WorkerID: "w", Seq: 1, Delta: d}, &rep); err != nil {
		return nil, err
	}
	srv := rmi.NewServer(nil)
	if err := srv.Register(merge.RMIObjectName, mgr); err != nil {
		return nil, err
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	var out []RMIPipelineRow
	for _, mode := range []string{"serialized", "pipelined"} {
		var opts []rmi.Option
		if mode == "serialized" {
			opts = append(opts, rmi.WithSerializedCalls())
		}
		client, err := rmi.Dial(addr.String(), "tok", opts...)
		if err != nil {
			return nil, err
		}
		errs := make(chan error, callers)
		start := time.Now()
		for c := 0; c < callers; c++ {
			go func() {
				for i := 0; i < calls; i++ {
					var reply merge.PollReply
					if err := client.Call(merge.RMIObjectName+".Poll", merge.PollArgs{
						SessionID: "s", SinceVersion: rep.Version,
					}, &reply); err != nil {
						errs <- err
						return
					}
				}
				errs <- nil
			}()
		}
		var firstErr error
		for c := 0; c < callers; c++ {
			if err := <-errs; err != nil && firstErr == nil {
				firstErr = err
			}
		}
		wall := time.Since(start)
		client.Close()
		if firstErr != nil {
			return nil, firstErr
		}
		secs := wall.Seconds()
		if secs <= 0 {
			secs = 1e-9
		}
		out = append(out, RMIPipelineRow{
			Mode: mode, Callers: callers, Calls: calls,
			CallsPerSec: float64(callers*calls) / secs,
			WallMS:      wall.Milliseconds(),
		})
	}
	return out, nil
}

// A11 — placement as a subsystem. (a) RCU routing: the Router's owner
// resolution is one atomic placement-table load vs the retained
// mutex-per-call baseline — the fabric's last global serialization
// point. (b) Load-weighted rebalancing: a Balancer probing lock-free
// per-session publish+poll rates migrates the hottest sessions off an
// overloaded shard. (c) Fault re-homing: a killed shard is detected by
// the Health prober, its sessions re-home lazily, and the engines'
// re-baseline restores every update.

// RouteAblationRow is one routing mode's outcome.
type RouteAblationRow struct {
	Mode     string // "locked" or "rcu"
	Shards   int
	Sessions int
	Pollers  int // per session
	Polls    int // per poller
	// PollsPerSec is aggregate quiescent-poll throughput — isolating
	// the router's resolution cost, since the managers answer these
	// from one atomic load.
	PollsPerSec float64
	WallMS      int64
}

// RouteAblation hammers a router of `shards` managers with
// sessions×pollers goroutines, each issuing `polls` quiescent polls,
// with owner resolution locked vs RCU.
func RouteAblation(shards, sessions, pollers, polls int) ([]RouteAblationRow, error) {
	var out []RouteAblationRow
	for _, mode := range []string{"locked", "rcu"} {
		router := shard.NewRouter(0)
		router.LockedRouting = mode == "locked"
		for i := 0; i < shards; i++ {
			if err := router.AddShard(fmt.Sprintf("shard%02d", i), merge.NewManager()); err != nil {
				return nil, err
			}
		}
		versions := make([]int64, sessions)
		for s := 0; s < sessions; s++ {
			tree := aida.NewTree()
			h, err := tree.H1D("/a", "h", "", 100, 0, 100)
			if err != nil {
				return nil, err
			}
			for f := 0; f < 200; f++ {
				h.Fill(float64(f % 100))
			}
			d, err := tree.FullDelta()
			if err != nil {
				return nil, err
			}
			var rep merge.PublishReply
			if err := router.Publish(merge.PublishArgs{
				SessionID: fmt.Sprintf("sess-%02d", s), WorkerID: "w0", Seq: 1, Delta: d,
			}, &rep); err != nil {
				return nil, err
			}
			versions[s] = rep.Version
		}
		errs := make(chan error, sessions*pollers)
		start := time.Now()
		for s := 0; s < sessions; s++ {
			sid := fmt.Sprintf("sess-%02d", s)
			since := versions[s]
			for p := 0; p < pollers; p++ {
				go func() {
					for i := 0; i < polls; i++ {
						var reply merge.PollReply
						if err := router.Poll(merge.PollArgs{SessionID: sid, SinceVersion: since}, &reply); err != nil {
							errs <- err
							return
						}
					}
					errs <- nil
				}()
			}
		}
		var firstErr error
		for i := 0; i < sessions*pollers; i++ {
			if err := <-errs; err != nil && firstErr == nil {
				firstErr = err
			}
		}
		wall := time.Since(start)
		if firstErr != nil {
			return nil, firstErr
		}
		secs := wall.Seconds()
		if secs <= 0 {
			secs = 1e-9
		}
		out = append(out, RouteAblationRow{
			Mode: mode, Shards: shards, Sessions: sessions, Pollers: pollers, Polls: polls,
			PollsPerSec: float64(sessions*pollers*polls) / secs,
			WallMS:      wall.Milliseconds(),
		})
	}
	return out, nil
}

// RebalanceAblationRow is one rebalance mode's outcome.
type RebalanceAblationRow struct {
	Mode     string // "off" or "on"
	Shards   int
	Sessions int
	Hot      int // hot sessions, all ring-homed on one shard
	Rounds   int
	// Moves is how many sessions the balancer migrated.
	Moves int64
	// HotShare is the hottest shard's share of the steady per-round load
	// at the end of the run (1/shards would be perfect balance).
	HotShare float64
	// Diverged reports any session whose merged state no longer matches
	// the flat single-manager reference — must stay false.
	Diverged bool
	WallMS   int64
}

// ablationWorker couples one session's fabric transport with a
// flat-reference twin, so the placement ablations can verify merged
// state bit-for-bit after moves and faults.
type ablationWorker struct {
	sid       string
	tree, ref *aida.Tree
	h, refH   *aida.Histogram1D
	tr, refTr *merge.Transport
	perRound  int64 // publishes+polls per round (the rebalance skew)
}

func newAblationWorker(sid string, fabric, flat merge.Publisher) (*ablationWorker, error) {
	w := &ablationWorker{sid: sid, tree: aida.NewTree(), ref: aida.NewTree()}
	var err error
	if w.h, err = w.tree.H1D("/h", "x", "", 10, 0, 10); err != nil {
		return nil, err
	}
	if w.refH, err = w.ref.H1D("/h", "x", "", 10, 0, 10); err != nil {
		return nil, err
	}
	w.tr = merge.NewTransport(sid, "w0", fabric)
	w.refTr = merge.NewTransport(sid, "w0", flat)
	return w, nil
}

// sendSnapshot publishes tree's next delta through tr (a full baseline
// when the transport's state machine asks for one).
func sendSnapshot(tr *merge.Transport, tree *aida.Tree) error {
	_, err := tr.Send(func(full bool) (merge.Snapshot, error) {
		var d *aida.DeltaState
		var err error
		if full {
			d, err = tree.FullDelta()
		} else {
			d, err = tree.Delta()
		}
		return merge.Snapshot{Delta: d}, err
	})
	return err
}

// RebalanceAblation drives `hot` sessions (all ring-homed on one shard)
// at `skew`× the load of `cold` background sessions for `rounds`
// rounds, with the balancer probing between rounds, rebalancing off vs
// on.
func RebalanceAblation(shards, hot, cold, rounds, skew int) ([]RebalanceAblationRow, error) {
	var out []RebalanceAblationRow
	for _, mode := range []string{"off", "on"} {
		router := shard.NewRouter(0)
		for i := 0; i < shards; i++ {
			if err := router.AddShard(fmt.Sprintf("shard%02d", i), merge.NewManager()); err != nil {
				return nil, err
			}
		}
		flat := merge.NewManager()
		hotShard := "shard00"
		var workers []*ablationWorker
		mk := func(sid string, perRound int64) error {
			w, err := newAblationWorker(sid, router, flat)
			if err != nil {
				return err
			}
			w.perRound = perRound
			workers = append(workers, w)
			return nil
		}
		for i, n := 0, 0; n < hot; i++ {
			sid := fmt.Sprintf("hot-%d", i)
			if router.Placement(sid) != hotShard {
				continue
			}
			if err := mk(sid, int64(skew)); err != nil {
				return nil, err
			}
			n++
		}
		for i := 0; i < cold; i++ {
			if err := mk(fmt.Sprintf("cold-%d", i), 1); err != nil {
				return nil, err
			}
		}
		b := shard.NewBalancer(router)
		b.DisableRebalance = mode == "off"
		b.MaxMoves = 2
		b.Band = 0.25
		start := time.Now()
		for _, w := range workers { // baseline
			w.h.Fill(1)
			w.refH.Fill(1)
			if err := sendSnapshot(w.tr, w.tree); err != nil {
				return nil, err
			}
			if err := sendSnapshot(w.refTr, w.ref); err != nil {
				return nil, err
			}
		}
		if _, err := b.RunOnce(); err != nil { // warm the rate window
			return nil, err
		}
		for r := 0; r < rounds; r++ {
			for _, w := range workers {
				for k := int64(0); k < w.perRound; k++ {
					w.h.Fill(float64(r % 10))
					w.refH.Fill(float64(r % 10))
					if err := sendSnapshot(w.tr, w.tree); err != nil {
						return nil, err
					}
					if err := sendSnapshot(w.refTr, w.ref); err != nil {
						return nil, err
					}
					var reply merge.PollReply
					if err := router.Poll(merge.PollArgs{SessionID: w.sid}, &reply); err != nil {
						return nil, err
					}
				}
			}
			if _, err := b.RunOnce(); err != nil {
				return nil, err
			}
		}
		wall := time.Since(start)
		// Final load distribution from the drivers' steady rates and the
		// router's final placements.
		perShard := map[string]int64{}
		var total int64
		for _, w := range workers {
			perShard[router.Placement(w.sid)] += w.perRound
			total += w.perRound
		}
		var hottest int64
		for _, l := range perShard {
			if l > hottest {
				hottest = l
			}
		}
		row := RebalanceAblationRow{
			Mode: mode, Shards: shards, Sessions: len(workers), Hot: hot, Rounds: rounds,
			Moves:    b.Moves(),
			HotShare: float64(hottest) / float64(total),
			WallMS:   wall.Milliseconds(),
		}
		for _, w := range workers {
			same, err := statesMatch(router, flat, w.sid)
			if err != nil {
				return nil, err
			}
			if !same {
				row.Diverged = true
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// statesMatch compares a session's full merged state between two poll
// surfaces.
func statesMatch(a, b interface {
	Poll(args merge.PollArgs, reply *merge.PollReply) error
}, sid string) (bool, error) {
	read := func(p interface {
		Poll(args merge.PollArgs, reply *merge.PollReply) error
	}) (map[string][]byte, error) {
		var reply merge.PollReply
		if err := p.Poll(merge.PollArgs{SessionID: sid, Full: true}, &reply); err != nil {
			return nil, err
		}
		out := make(map[string][]byte, len(reply.Entries))
		for _, e := range reply.Entries {
			st, err := e.State()
			if err != nil {
				return nil, err
			}
			buf, err := aida.AppendObjectState(nil, &st)
			if err != nil {
				return nil, err
			}
			out[e.Path] = buf
		}
		return out, nil
	}
	sa, err := read(a)
	if err != nil {
		return false, err
	}
	sb, err := read(b)
	if err != nil {
		return false, err
	}
	if len(sa) != len(sb) {
		return false, nil
	}
	for k, v := range sa {
		if !bytes.Equal(sb[k], v) {
			return false, nil
		}
	}
	return true, nil
}

// faultShard wraps a Manager and fails every call once killed — the
// crash model for the recovery ablation.
type faultShard struct {
	inner *merge.Manager
	dead  atomic.Bool
}

var errShardDown = fmt.Errorf("perf: injected shard death")

func (f *faultShard) call(do func() error) error {
	if f.dead.Load() {
		return errShardDown
	}
	return do()
}

func (f *faultShard) Publish(a merge.PublishArgs, r *merge.PublishReply) error {
	return f.call(func() error { return f.inner.Publish(a, r) })
}
func (f *faultShard) PublishBatch(a merge.PublishBatchArgs, r *merge.PublishBatchReply) error {
	return f.call(func() error { return f.inner.PublishBatch(a, r) })
}
func (f *faultShard) Poll(a merge.PollArgs, r *merge.PollReply) error {
	return f.call(func() error { return f.inner.Poll(a, r) })
}
func (f *faultShard) Reset(a merge.ResetArgs, r *merge.ResetReply) error {
	return f.call(func() error { return f.inner.Reset(a, r) })
}
func (f *faultShard) Flush(a merge.FlushArgs, r *merge.FlushReply) error {
	return f.call(func() error { return f.inner.Flush(a, r) })
}
func (f *faultShard) Export(a merge.ExportArgs, r *merge.ExportReply) error {
	return f.call(func() error { return f.inner.Export(a, r) })
}
func (f *faultShard) Import(a merge.ImportArgs, r *merge.ImportReply) error {
	return f.call(func() error { return f.inner.Import(a, r) })
}
func (f *faultShard) Stats(a merge.StatsArgs, r *merge.StatsReply) error {
	return f.call(func() error { return f.inner.Stats(a, r) })
}
func (f *faultShard) Seal(a merge.SealArgs, r *merge.SealReply) error {
	return f.call(func() error { return f.inner.Seal(a, r) })
}
func (f *faultShard) DropSession(a merge.DropArgs, r *merge.DropReply) error {
	return f.call(func() error { return f.inner.DropSession(a, r) })
}
func (f *faultShard) SessionList(a merge.SessionsArgs, r *merge.SessionsReply) error {
	return f.call(func() error { return f.inner.SessionList(a, r) })
}
func (f *faultShard) Mirror(a merge.MirrorArgs, r *merge.MirrorReply) error {
	return f.call(func() error { return f.inner.Mirror(a, r) })
}
func (f *faultShard) Promote(a merge.PromoteArgs, r *merge.PromoteReply) error {
	return f.call(func() error { return f.inner.Promote(a, r) })
}
func (f *faultShard) Fence(a merge.FenceArgs, r *merge.FenceReply) error {
	return f.call(func() error { return f.inner.Fence(a, r) })
}

// RecoveryAblationRow is the kill-a-shard outcome.
type RecoveryAblationRow struct {
	Shards   int
	Sessions int
	// Killed names the murdered shard; KilledSessions how many sessions
	// it owned.
	Killed         string
	KilledSessions int
	// ProbeRounds is how many health rounds detection took (the
	// configured threshold, by construction).
	ProbeRounds int
	// Recovered counts sessions whose post-recovery state matches the
	// flat reference exactly; Lost reports any that do not.
	Recovered int
	Lost      bool
	WallMS    int64
}

// RecoveryAblation publishes `rounds` rounds across `sessions`
// sessions, kills the shard owning the most, lets the Health prober
// mark it dead, and verifies every session's state after the engines
// re-baseline onto the surviving shards.
func RecoveryAblation(shards, sessions, rounds int) (RecoveryAblationRow, error) {
	router := shard.NewRouter(0)
	faults := map[string]*faultShard{}
	for i := 0; i < shards; i++ {
		name := fmt.Sprintf("shard%02d", i)
		fs := &faultShard{inner: merge.NewManager()}
		faults[name] = fs
		if err := router.AddShard(name, fs); err != nil {
			return RecoveryAblationRow{}, err
		}
	}
	flat := merge.NewManager()
	var workers []*ablationWorker
	for s := 0; s < sessions; s++ {
		w, err := newAblationWorker(fmt.Sprintf("sess-%02d", s), router, flat)
		if err != nil {
			return RecoveryAblationRow{}, err
		}
		workers = append(workers, w)
	}
	start := time.Now()
	publishAll := func(x float64, tolerateFabricErr bool) error {
		for _, w := range workers {
			w.h.Fill(x)
			w.refH.Fill(x)
			if err := sendSnapshot(w.tr, w.tree); err != nil && !tolerateFabricErr {
				return err
			}
			if err := sendSnapshot(w.refTr, w.ref); err != nil {
				return err
			}
		}
		return nil
	}
	for r := 0; r < rounds; r++ {
		if err := publishAll(float64(r), false); err != nil {
			return RecoveryAblationRow{}, err
		}
	}
	// Kill the shard owning the most sessions.
	owned := map[string]int{}
	for _, w := range workers {
		owned[router.Placement(w.sid)]++
	}
	victim, max := "", -1
	for name, n := range owned {
		if n > max {
			victim, max = name, n
		}
	}
	faults[victim].dead.Store(true)
	row := RecoveryAblationRow{
		Shards: shards, Sessions: sessions, Killed: victim, KilledSessions: max,
	}
	h := shard.NewHealth(router)
	h.Threshold = 2
	for len(router.DeadShards()) == 0 {
		h.RunOnce()
		row.ProbeRounds++
		if row.ProbeRounds > 10 {
			return row, fmt.Errorf("perf: health prober never detected the killed shard")
		}
	}
	// Recovery: the first post-kill publish of an orphaned session draws
	// NeedFull from its new home; the next carries the full re-baseline.
	for r := 0; r < rounds; r++ {
		if err := publishAll(float64(10+r), true); err != nil {
			return row, err
		}
	}
	for _, w := range workers {
		same, err := statesMatch(router, flat, w.sid)
		if err != nil {
			return row, err
		}
		if same {
			row.Recovered++
		} else {
			row.Lost = true
		}
	}
	row.WallMS = time.Since(start).Milliseconds()
	return row, nil
}
