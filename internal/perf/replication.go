// A12 — replicated shards and durable session state (the robustness
// tentpole): replication overhead on the publish path, epoch-fenced
// failover after a shard kill with the engines already gone, and WAL
// replay after a manager restart.

package perf

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/shard"
)

// ReplicationAblationRow is one mode (replication on/off) of the
// kill-after-engines-finished experiment.
type ReplicationAblationRow struct {
	Mode     string // "repl" | "norepl"
	Shards   int
	Sessions int
	Rounds   int
	// Publishes and PublishPerSec cover the steady publish phase through
	// the fabric only (the flat reference twin is driven untimed), so
	// the two modes compare the same work with and without mirroring.
	Publishes     int64
	PublishPerSec float64
	// Mirrored counts replica applies (0 with replication off).
	Mirrored int64
	// Killed names the murdered shard; KilledSessions how many sessions
	// it owned when it died — after every engine had finished.
	Killed         string
	KilledSessions int
	ProbeRounds    int
	// FailoverMS spans kill → death detected → replicas promoted and
	// the placement table flipped (in-process probe rounds, no ticker).
	FailoverMS float64
	Promoted   int
	// Recovered/Lost count sessions whose post-failover merged state
	// does / does not match the flat reference. With the engines gone
	// nothing can re-baseline, so recovery is exactly what the replicas
	// preserved; norepl documents the seed behavior (state gone).
	Recovered int
	Lost      int
	WallMS    int64
}

// ReplicationAblation publishes `rounds` rounds across `sessions`
// sessions on a sharded fabric, stops the engines, kills the
// most-loaded shard, and measures detection-to-promotion time and how
// much merged state survives — replication on vs off.
func ReplicationAblation(shards, sessions, rounds int) ([]ReplicationAblationRow, error) {
	var out []ReplicationAblationRow
	for _, mode := range []string{"repl", "norepl"} {
		router := shard.NewRouter(0)
		router.Replicate = mode == "repl"
		faults := map[string]*faultShard{}
		for i := 0; i < shards; i++ {
			name := fmt.Sprintf("shard%02d", i)
			fs := &faultShard{inner: merge.NewManager()}
			faults[name] = fs
			if err := router.AddShard(name, fs); err != nil {
				return nil, err
			}
		}
		flat := merge.NewManager()
		var workers []*ablationWorker
		for s := 0; s < sessions; s++ {
			w, err := newAblationWorker(fmt.Sprintf("sess-%02d", s), router, flat)
			if err != nil {
				return nil, err
			}
			workers = append(workers, w)
		}
		start := time.Now()
		var fabricNS int64
		var publishes int64
		for r := 0; r < rounds; r++ {
			for _, w := range workers {
				w.h.Fill(float64(r % 10))
				w.refH.Fill(float64(r % 10))
				t0 := time.Now()
				if err := sendSnapshot(w.tr, w.tree); err != nil {
					return nil, err
				}
				fabricNS += time.Since(t0).Nanoseconds()
				publishes++
				if err := sendSnapshot(w.refTr, w.ref); err != nil {
					return nil, err
				}
			}
		}
		row := ReplicationAblationRow{
			Mode: mode, Shards: shards, Sessions: sessions, Rounds: rounds,
			Publishes: publishes,
		}
		if fabricNS > 0 {
			row.PublishPerSec = float64(publishes) / (float64(fabricNS) / 1e9)
		}
		// The engines are done: no more publishes, so nothing can
		// re-baseline lost state. Kill the shard owning the most
		// sessions.
		owned := map[string]int{}
		for _, w := range workers {
			owned[router.Placement(w.sid)]++
		}
		victim, max := "", -1
		for name, n := range owned {
			if n > max {
				victim, max = name, n
			}
		}
		row.Killed, row.KilledSessions = victim, max
		faults[victim].dead.Store(true)
		killAt := time.Now()
		h := shard.NewHealth(router)
		h.Threshold = 2
		for len(router.DeadShards()) == 0 {
			h.RunOnce()
			row.ProbeRounds++
			if row.ProbeRounds > 10 {
				return nil, fmt.Errorf("perf: health prober never detected the killed shard")
			}
		}
		row.FailoverMS = float64(time.Since(killAt).Nanoseconds()) / 1e6
		row.Promoted = int(router.Promotions())
		// Counted after failover: its drain barrier has flushed the
		// asynchronous mirror stream by now.
		row.Mirrored = router.Mirrored()
		for _, w := range workers {
			same, err := statesMatch(router, flat, w.sid)
			if err != nil {
				return nil, err
			}
			if same {
				row.Recovered++
			} else {
				row.Lost++
			}
		}
		row.WallMS = time.Since(start).Milliseconds()
		out = append(out, row)
	}
	return out, nil
}

// WALAblationRow reports the crash-restart durability micro: publish
// with a fsync-per-record WAL, reopen the log into a cold manager, and
// compare merged state byte-for-byte.
type WALAblationRow struct {
	Sessions int
	Rounds   int
	// LogBytes is the WAL size on disk at the simulated crash.
	LogBytes int64
	// Replayed is the record count applied on restart; ReplayMS the
	// open+replay wall time.
	Replayed int
	ReplayMS float64
	// Intact: every session's merged state after replay is byte-identical
	// to the pre-crash manager's.
	Intact bool
}

// WALAblation runs the restart experiment in a temp dir.
func WALAblation(sessions, rounds int) (WALAblationRow, error) {
	row := WALAblationRow{Sessions: sessions, Rounds: rounds}
	dir, err := os.MkdirTemp("", "ipa-wal-*")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "manager.wal")
	w, err := merge.OpenWAL(path, merge.WALOptions{SyncEvery: 1})
	if err != nil {
		return row, err
	}
	m1 := merge.NewManager()
	m1.SetWAL(w)
	type driver struct {
		sid  string
		tree *aida.Tree
		h    *aida.Histogram1D
		tr   *merge.Transport
	}
	var drivers []*driver
	for s := 0; s < sessions; s++ {
		d := &driver{sid: fmt.Sprintf("wal-%02d", s), tree: aida.NewTree()}
		if d.h, err = d.tree.H1D("/h", "x", "", 10, 0, 10); err != nil {
			return row, err
		}
		d.tr = merge.NewTransport(d.sid, "w0", m1)
		drivers = append(drivers, d)
	}
	for r := 0; r < rounds; r++ {
		for _, d := range drivers {
			d.h.Fill(float64(r % 10))
			if err := sendSnapshot(d.tr, d.tree); err != nil {
				return row, err
			}
		}
	}
	// Crash: drop the manager on the floor, keeping only the log. Close
	// flushes nothing new (SyncEvery=1 already fsync'd every record).
	if err := w.Close(); err != nil {
		return row, err
	}
	if st, err := os.Stat(path); err == nil {
		row.LogBytes = st.Size()
	}
	m2 := merge.NewManager()
	t0 := time.Now()
	w2, err := merge.OpenWAL(path, merge.WALOptions{})
	if err != nil {
		return row, err
	}
	defer w2.Close()
	n, err := w2.Replay(m2)
	if err != nil {
		return row, err
	}
	row.Replayed = n
	row.ReplayMS = float64(time.Since(t0).Nanoseconds()) / 1e6
	row.Intact = true
	for _, d := range drivers {
		same, err := statesMatch(m1, m2, d.sid)
		if err != nil {
			return row, err
		}
		if !same {
			row.Intact = false
		}
	}
	return row, nil
}
