// A15 — chaos schedule over the K-replica fabric: a seeded kill
// schedule murders up to K shards in randomized order — the second
// victim armed to die mid-failover, partway through the first victim's
// promotion call stream — with a flaky replication plane (seeded
// transient Mirror/Export/Import failures) underneath, and asserts
// every session's merged state survives byte-identical to the flat
// single-manager reference. The run then injects a silent-drift replica
// (a foreign-epoch copy at a plausible version, the residue a zombie
// incarnation would leave) and requires the anti-entropy loop to detect
// and re-baseline it within two probe rounds. Chain-depth overhead rows
// at K=0..K frame the cost of the protection.

package perf

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/shard"
)

// chaosRand is the splitmix64 stream driving the schedule: same seed,
// same victims, same fuses.
type chaosRand struct{ state uint64 }

func (r *chaosRand) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (r *chaosRand) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// chaosShard wraps a Manager with the chaos failure model: an outright
// kill (dead), an armed fuse that kills the shard a precise number of
// calls later — how a victim dies mid-failover instead of at a tidy
// boundary — and a seeded stream of transient faults on the
// replication-plane calls (Mirror/Export/Import), which the chain's
// self-healing must absorb. Publish/Poll/Stats stay clean so the
// drivers and the health prober see only real deaths.
type chaosShard struct {
	inner *merge.Manager
	dead  atomic.Bool
	armed atomic.Bool
	fuse  atomic.Int64 // calls remaining before an armed shard dies

	flaky     atomic.Bool
	flakySeed uint64
	flakyN    atomic.Uint64
}

var errChaosTransient = fmt.Errorf("perf: injected transient replication fault")

// arm schedules death `calls` dispatched calls from now.
func (c *chaosShard) arm(calls int64) {
	c.fuse.Store(calls)
	c.armed.Store(true)
}

func (c *chaosShard) call(do func() error) error {
	if c.armed.Load() && c.fuse.Add(-1) < 0 {
		c.dead.Store(true)
	}
	if c.dead.Load() {
		return errShardDown
	}
	return do()
}

// replCall is call() plus the transient-fault stream: ~1 in 16 calls
// fail while flaky is on.
func (c *chaosShard) replCall(do func() error) error {
	return c.call(func() error {
		if c.flaky.Load() {
			x := c.flakySeed + 0x9e3779b97f4a7c15*c.flakyN.Add(1)
			x ^= x >> 30
			x *= 0xbf58476d1ce4e5b9
			x ^= x >> 27
			if x%16 == 0 {
				return errChaosTransient
			}
		}
		return do()
	})
}

func (c *chaosShard) Publish(a merge.PublishArgs, r *merge.PublishReply) error {
	return c.call(func() error { return c.inner.Publish(a, r) })
}
func (c *chaosShard) PublishBatch(a merge.PublishBatchArgs, r *merge.PublishBatchReply) error {
	return c.call(func() error { return c.inner.PublishBatch(a, r) })
}
func (c *chaosShard) Poll(a merge.PollArgs, r *merge.PollReply) error {
	return c.call(func() error { return c.inner.Poll(a, r) })
}
func (c *chaosShard) Reset(a merge.ResetArgs, r *merge.ResetReply) error {
	return c.call(func() error { return c.inner.Reset(a, r) })
}
func (c *chaosShard) Flush(a merge.FlushArgs, r *merge.FlushReply) error {
	return c.call(func() error { return c.inner.Flush(a, r) })
}
func (c *chaosShard) Export(a merge.ExportArgs, r *merge.ExportReply) error {
	return c.replCall(func() error { return c.inner.Export(a, r) })
}
func (c *chaosShard) Import(a merge.ImportArgs, r *merge.ImportReply) error {
	return c.replCall(func() error { return c.inner.Import(a, r) })
}
func (c *chaosShard) Stats(a merge.StatsArgs, r *merge.StatsReply) error {
	return c.call(func() error { return c.inner.Stats(a, r) })
}
func (c *chaosShard) Seal(a merge.SealArgs, r *merge.SealReply) error {
	return c.call(func() error { return c.inner.Seal(a, r) })
}
func (c *chaosShard) DropSession(a merge.DropArgs, r *merge.DropReply) error {
	return c.call(func() error { return c.inner.DropSession(a, r) })
}
func (c *chaosShard) SessionList(a merge.SessionsArgs, r *merge.SessionsReply) error {
	return c.call(func() error { return c.inner.SessionList(a, r) })
}
func (c *chaosShard) Mirror(a merge.MirrorArgs, r *merge.MirrorReply) error {
	return c.replCall(func() error { return c.inner.Mirror(a, r) })
}
func (c *chaosShard) Promote(a merge.PromoteArgs, r *merge.PromoteReply) error {
	return c.call(func() error { return c.inner.Promote(a, r) })
}
func (c *chaosShard) Fence(a merge.FenceArgs, r *merge.FenceReply) error {
	return c.call(func() error { return c.inner.Fence(a, r) })
}

// ChaosOverheadRow is the steady-state publish cost of one chain depth.
type ChaosOverheadRow struct {
	Depth         int
	Publishes     int64
	PublishPerSec float64
}

// ChaosVictim is one scheduled shard death.
type ChaosVictim struct {
	Shard         string
	OwnedSessions int
	// MidFailover marks a victim armed to die during the previous
	// victim's failover call stream rather than killed outright.
	MidFailover bool
	// Fuse is the armed victim's remaining call budget at arm time.
	Fuse int64
}

// ChaosResult is the full A15 outcome.
type ChaosResult struct {
	Shards   int
	Sessions int
	Rounds   int
	// Depth is the chain length K of the chaos run; Kills how many
	// shards the schedule murders (≤ K, so survival is required).
	Depth int
	Kills int
	Seed  uint64
	// Overhead frames the publish cost of K=0..Depth chains.
	Overhead []ChaosOverheadRow
	Victims  []ChaosVictim
	// ProbeRounds is the health rounds until every victim was detected
	// (and its failover completed); FailoverMS spans first kill → last
	// victim's sessions re-homed.
	ProbeRounds int
	FailoverMS  float64
	Promoted    int
	Mirrored    int64
	// Recovered counts sessions byte-identical to the flat reference
	// after the full schedule; Lost must stay 0.
	Recovered int
	Lost      int
	// DriftHop is the "session/shard" copy doctored with a foreign
	// epoch; DriftRounds how many anti-entropy sweeps its repair took
	// (the acceptance bar is ≤ 2); DriftRepaired that the copy ended
	// converged with its owner.
	DriftHop      string
	DriftRounds   int
	DriftRepaired bool
	WallMS        int64
}

// chaosOverhead measures the steady publish path at one chain depth
// (no faults, plain managers).
func chaosOverhead(shards, sessions, rounds, depth int) (ChaosOverheadRow, error) {
	row := ChaosOverheadRow{Depth: depth}
	router := shard.NewRouter(0)
	router.Replicate = depth > 0
	router.ReplicaDepth = depth
	for i := 0; i < shards; i++ {
		if err := router.AddShard(fmt.Sprintf("shard%02d", i), merge.NewManager()); err != nil {
			return row, err
		}
	}
	flat := merge.NewManager()
	var workers []*ablationWorker
	for s := 0; s < sessions; s++ {
		w, err := newAblationWorker(fmt.Sprintf("chaos-%02d", s), router, flat)
		if err != nil {
			return row, err
		}
		workers = append(workers, w)
	}
	// Untimed warm-up: the first send per worker is a full baseline (and
	// pays chain assignment at depth > 0) — keep that out of the steady-
	// state figure so depths compare like for like.
	for r := 0; r < 2; r++ {
		for _, w := range workers {
			w.h.Fill(float64(r % 10))
			w.refH.Fill(float64(r % 10))
			if err := sendSnapshot(w.tr, w.tree); err != nil {
				return row, err
			}
			if err := sendSnapshot(w.refTr, w.ref); err != nil {
				return row, err
			}
		}
	}
	var fabricNS int64
	for r := 0; r < rounds; r++ {
		for _, w := range workers {
			w.h.Fill(float64(r % 10))
			w.refH.Fill(float64(r % 10))
			t0 := time.Now()
			if err := sendSnapshot(w.tr, w.tree); err != nil {
				return row, err
			}
			fabricNS += time.Since(t0).Nanoseconds()
			row.Publishes++
			if err := sendSnapshot(w.refTr, w.ref); err != nil {
				return row, err
			}
		}
	}
	if fabricNS > 0 {
		row.PublishPerSec = float64(row.Publishes) / (float64(fabricNS) / 1e9)
	}
	return row, nil
}

// ChaosAblation runs the A15 schedule: overhead rows for chain depths
// 0..depth, then the seeded multi-kill run at depth K with per-shard
// WALs wired into the failover tail-replay hook, and finally the
// silent-drift injection against the anti-entropy loop.
func ChaosAblation(shards, sessions, rounds, kills, depth int, seed uint64) (*ChaosResult, error) {
	if kills >= shards {
		return nil, fmt.Errorf("perf: chaos schedule kills %d of %d shards — nothing would survive", kills, shards)
	}
	if kills > depth {
		return nil, fmt.Errorf("perf: chaos schedule kills %d shards but the chain depth is %d — survival is not promised", kills, depth)
	}
	res := &ChaosResult{Shards: shards, Sessions: sessions, Rounds: rounds, Depth: depth, Kills: kills, Seed: seed}
	start := time.Now()
	for k := 0; k <= depth; k++ {
		row, err := chaosOverhead(shards, sessions, rounds, k)
		if err != nil {
			return nil, err
		}
		res.Overhead = append(res.Overhead, row)
	}

	// The chaos fabric: chaosShard wrappers, per-shard fsync'd WALs, and
	// the WAL-tail handoff hook — a dead primary's fsync'd records the
	// asynchronous mirror stream never delivered are replayed into the
	// promoted copy.
	dir, err := os.MkdirTemp("", "ipa-chaos-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	router := shard.NewRouter(0)
	router.Replicate = true
	router.ReplicaDepth = depth
	rng := chaosRand{state: seed}
	shardNames := make([]string, 0, shards)
	cshards := map[string]*chaosShard{}
	inners := map[string]*merge.Manager{}
	for i := 0; i < shards; i++ {
		name := fmt.Sprintf("shard%02d", i)
		m := merge.NewManager()
		w, err := merge.OpenWAL(filepath.Join(dir, name+".wal"), merge.WALOptions{SyncEvery: 1})
		if err != nil {
			return nil, err
		}
		defer w.Close()
		m.SetWAL(w)
		cs := &chaosShard{inner: m, flakySeed: rng.next()}
		cs.flaky.Store(true)
		if err := router.AddShard(name, cs); err != nil {
			return nil, err
		}
		shardNames = append(shardNames, name)
		cshards[name] = cs
		inners[name] = m
	}
	router.WALTail = func(deadShard, sessionID, targetShard string) (int, error) {
		target, ok := inners[targetShard]
		if !ok {
			return 0, fmt.Errorf("perf: no manager for shard %q", targetShard)
		}
		return merge.ReplaySessionInto(filepath.Join(dir, deadShard+".wal"), sessionID, target)
	}

	flat := merge.NewManager()
	var workers []*ablationWorker
	for s := 0; s < sessions; s++ {
		w, err := newAblationWorker(fmt.Sprintf("chaos-%02d", s), router, flat)
		if err != nil {
			return nil, err
		}
		workers = append(workers, w)
	}
	for r := 0; r < rounds; r++ {
		for _, w := range workers {
			w.h.Fill(float64(r % 10))
			w.refH.Fill(float64(r % 10))
			if err := sendSnapshot(w.tr, w.tree); err != nil {
				return nil, err
			}
			if err := sendSnapshot(w.refTr, w.ref); err != nil {
				return nil, err
			}
		}
	}

	// The seeded schedule. Victim 1 (killed outright) is drawn from the
	// shards owning sessions; later victims from the remaining shards —
	// each armed with a small call fuse so it dies partway through the
	// preceding failover's call stream (probes, drains, re-baselines,
	// promotions all burn the fuse).
	owned := map[string]int{}
	for _, w := range workers {
		owned[router.Placement(w.sid)]++
	}
	var owners []string
	for _, name := range shardNames {
		if owned[name] > 0 {
			owners = append(owners, name)
		}
	}
	sort.Strings(owners)
	picked := map[string]bool{}
	first := owners[rng.intn(len(owners))]
	picked[first] = true
	res.Victims = append(res.Victims, ChaosVictim{Shard: first, OwnedSessions: owned[first]})
	for len(res.Victims) < kills {
		rest := make([]string, 0, shards)
		for _, name := range shardNames {
			if !picked[name] {
				rest = append(rest, name)
			}
		}
		v := rest[rng.intn(len(rest))]
		picked[v] = true
		fuse := int64(3 + rng.intn(10))
		res.Victims = append(res.Victims, ChaosVictim{Shard: v, OwnedSessions: owned[v], MidFailover: true, Fuse: fuse})
	}
	killAt := time.Now()
	cshards[first].dead.Store(true)
	for _, v := range res.Victims[1:] {
		cshards[v.Shard].arm(v.Fuse)
	}

	h := shard.NewHealth(router)
	h.Threshold = 2
	for len(router.DeadShards()) < kills {
		h.RunOnce()
		res.ProbeRounds++
		if res.ProbeRounds > 40*kills {
			return nil, fmt.Errorf("perf: chaos health prober detected only %d of %d victims", len(router.DeadShards()), kills)
		}
	}
	res.FailoverMS = float64(time.Since(killAt).Nanoseconds()) / 1e6
	res.Promoted = int(router.Promotions())
	res.Mirrored = router.Mirrored()

	// Quiet the transient-fault stream before verification: the chain's
	// self-healing absorbed it during the storm; the checks below must
	// measure what the fabric preserved, not inject fresh noise.
	for _, cs := range cshards {
		cs.flaky.Store(false)
	}
	deadNow := map[string]bool{}
	for _, d := range router.DeadShards() {
		deadNow[d] = true
	}
	for _, w := range workers {
		if deadNow[router.Placement(w.sid)] {
			res.Lost++
			continue
		}
		same, err := statesMatch(router, flat, w.sid)
		if err != nil {
			return nil, err
		}
		if same {
			res.Recovered++
		} else {
			res.Lost++
		}
	}

	// Silent-drift injection: doctor one surviving replica copy with a
	// foreign epoch at a plausible version — the residue a zombie
	// incarnation would leave — and require the anti-entropy loop to
	// detect and re-baseline it within two sweeps.
	var driftSID, driftHop string
	for off := 0; off < len(workers); off++ {
		w := workers[(rng.intn(len(workers))+off)%len(workers)]
		if chain := router.ReplicasOf(w.sid); len(chain) > 0 {
			driftSID, driftHop = w.sid, chain[0]
			break
		}
	}
	if driftSID != "" {
		ownerName := router.Placement(driftSID)
		var exp merge.ExportReply
		if err := inners[ownerName].Export(merge.ExportArgs{SessionID: driftSID}, &exp); err != nil || !exp.Found {
			return nil, fmt.Errorf("perf: chaos drift injection: exporting %s from %s: %v", driftSID, ownerName, err)
		}
		var ir merge.ImportReply
		if err := inners[driftHop].Import(merge.ImportArgs{
			SessionID: driftSID, Version: exp.Version, Epoch: exp.Epoch + 1000,
			Workers: exp.Workers, Removed: exp.Removed, Logs: exp.Logs,
			LastTraceID: exp.LastTraceID,
		}, &ir); err != nil {
			return nil, fmt.Errorf("perf: chaos drift injection: %v", err)
		}
		res.DriftHop = driftSID + "/" + driftHop
		ae := shard.NewAntiEntropy(router)
		for round := 1; round <= 2; round++ {
			res.DriftRounds = round
			for _, repaired := range ae.RunOnce() {
				if repaired == res.DriftHop {
					res.DriftRepaired = true
				}
			}
			if res.DriftRepaired {
				break
			}
		}
		// Repaired means converged: the copy must agree with its owner
		// on (epoch, version) again.
		if res.DriftRepaired {
			for _, hop := range router.ReplicaLagChain(driftSID) {
				if hop.Shard == driftHop && (hop.Stale || hop.Lag > 0) {
					res.DriftRepaired = false
				}
			}
		}
	}
	res.WallMS = time.Since(start).Milliseconds()
	return res, nil
}
