// Package perf regenerates the paper's evaluation (§4) with a calibrated
// discrete-event simulation of the 2006 test environment: the client's
// home WAN, SLAC's site WAN, the shared-disk splitter, the site LAN to 16
// worker nodes, and the 866 MHz engines — none of which exist on a laptop.
//
// Every constant derives from the paper's own measurements (see Params).
// The experiments reproduce Table 1 (local vs Grid), Table 2 (staging and
// analysis vs node count), Figure 5 (time surfaces over dataset size ×
// nodes), and the §4 fitted equations, plus the ablations DESIGN.md calls
// out. EXPERIMENTS.md records paper-vs-measured for each.
package perf

import (
	"fmt"

	"github.com/ipa-grid/ipa/internal/des"
	"github.com/ipa-grid/ipa/internal/netsim"
)

// Params are the calibrated physical constants of the simulated site.
type Params struct {
	// ClientWANMBps is the scientist's home-institution WAN bandwidth:
	// Table 1 downloads 471 MB in 32 min → 0.245 MB/s.
	ClientWANMBps float64
	// SiteWANMBps is the Grid site's uplink used when the manager pulls
	// the whole dataset: Table 2's constant 63 s for 471 MB → 7.48 MB/s.
	SiteWANMBps float64
	// SplitMBps is the splitter's sequential scan rate: 471 MB in
	// ~120 s → 3.93 MB/s.
	SplitMBps float64
	// SplitPartOverheadS is the extra I/O cost per produced part file
	// ("only has a very small input/output overhead for the number of
	// split files").
	SplitPartOverheadS float64
	// LANMBps is one worker's LAN link: fit of the move-parts column,
	// T ≈ XferInitS + (X/N)/LANMBps → 8.03 MB/s.
	LANMBps float64
	// XferInitS is the fixed transfer-initiation cost of the parts phase
	// (GridFTP session setup + shared-disk read-back before streaming).
	XferInitS float64
	// CodeStageS stages the 15 kB analysis bundle: Table 1 says 7 s,
	// dominated by control-channel round trips, not bandwidth.
	CodeStageS float64
	// EngineMBps is one 866 MHz worker's analysis rate: Table 2's
	// single-node 471 MB in 330 s → 1.427 MB/s.
	EngineMBps float64
	// LocalMBps is the scientist's 1.7 GHz desktop rate: Table 1's
	// 13 min for 471 MB → 0.604 MB/s. (The paper notes the desktop is
	// the faster CPU; its slower *effective* rate in Table 1 reflects
	// single-threaded I/O+analysis on a workstation disk.)
	LocalMBps float64
	// SerialFrac is the non-parallelizable fraction of the grid
	// analysis (event-loop startup, snapshot merging, straggler tail),
	// fit from Table 2's endpoints: 330 s @ 1 node, 78 s @ 16 → 0.186.
	SerialFrac float64
	// SourceUplinkMBps caps the shared disk's aggregate outbound rate
	// during the parts phase (high enough not to bind at N ≤ 16).
	SourceUplinkMBps float64
}

// PaperParams returns the constants calibrated to the paper's §4 numbers.
func PaperParams() Params {
	return Params{
		ClientWANMBps:      471.0 / (32 * 60), // 0.245
		SiteWANMBps:        471.0 / 63,        // 7.48
		SplitMBps:          471.0 / 120,       // 3.93
		SplitPartOverheadS: 0.25,
		LANMBps:            8.03,
		XferInitS:          46.3,
		CodeStageS:         7.0,
		EngineMBps:         471.0 / 330, // 1.427
		LocalMBps:          471.0 / 780, // 0.604
		SerialFrac:         0.186,
		SourceUplinkMBps:   1000,
	}
}

// EquationCalibratedParams returns constants tuned so the DES reproduces
// the paper's §4 fitted equations (T_local = 11.5·X and T_grid = 0.38·X +
// 53 + (62 + 5.3·X)/N) rather than the raw tables. The paper's equations
// and tables disagree with each other (the 5.3 s/MB analysis coefficient
// vs Table 2's measured 0.7 s/MB; the 6.2 s/MB WAN coefficient vs
// Table 1's 4.1) — see EXPERIMENTS.md. Figure 5 plots the equations, so
// reproducing it exactly needs this calibration. The LAN rate of 7.6 MB/s
// makes the parts term equal 62/N at the paper's 471 MB operating point.
func EquationCalibratedParams() Params {
	return Params{
		ClientWANMBps:      1 / 6.2,  // the equations' 6.2·X WAN term
		SiteWANMBps:        1 / 0.13, // 0.13·X
		SplitMBps:          1 / 0.25, // 0.25·X
		SplitPartOverheadS: 0,
		LANMBps:            471.0 / 62, // 62/N at X = 471
		XferInitS:          46,
		CodeStageS:         7,
		EngineMBps:         1 / 5.3, // the equations' 5.3·X/N
		LocalMBps:          1 / 5.3, // local analysis term of 11.5 = 6.2 + 5.3
		SerialFrac:         0,
		SourceUplinkMBps:   100000,
	}
}

// GridRun is the simulated timeline of one interactive Grid session
// staging + analyzing a dataset (the Table 1/2 phases).
type GridRun struct {
	SizeMB    float64
	Nodes     int
	MoveWhole des.Time
	Split     des.Time
	MoveParts des.Time
	StageCode des.Time
	Analysis  des.Time
}

// StageTotal sums the dataset staging phases (Table 1's "Stage Dataset").
func (g GridRun) StageTotal() des.Time { return g.MoveWhole + g.Split + g.MoveParts }

// Total is the whole wall-clock pipeline.
func (g GridRun) Total() des.Time { return g.StageTotal() + g.StageCode + g.Analysis }

// LocalRun is the desktop baseline of Table 1.
type LocalRun struct {
	SizeMB     float64
	GetDataset des.Time
	Analysis   des.Time
}

// Total is download + single-CPU analysis.
func (l LocalRun) Total() des.Time { return l.GetDataset + l.Analysis }

// SimulateGrid runs the full staged pipeline on the DES: WAN fetch flow,
// splitter scan, N parallel LAN flows (max-min shared at the source
// uplink), code staging, and the Amdahl-model engine phase.
func SimulateGrid(p Params, sizeMB float64, nodes int) GridRun {
	if nodes <= 0 || sizeMB < 0 {
		panic(fmt.Sprintf("perf: bad grid run size=%v nodes=%d", sizeMB, nodes))
	}
	k := des.New()
	net := netsim.New(k)
	run := GridRun{SizeMB: sizeMB, Nodes: nodes}

	wan := net.AddLink("site-wan", p.SiteWANMBps)
	uplink := net.AddLink("shared-disk-uplink", p.SourceUplinkMBps)
	workers := make([]*netsim.Link, nodes)
	for i := range workers {
		workers[i] = net.AddLink(fmt.Sprintf("lan-node%02d", i), p.LANMBps)
	}

	var tWholeDone, tSplitDone, tPartsDone des.Time
	// Phase 1: move the whole dataset over the site WAN.
	net.StartFlow(sizeMB, []*netsim.Link{wan}, netsim.FlowOpts{Label: "move-whole"}, func(f *netsim.Flow) {
		tWholeDone = k.Now()
		// Phase 2: the splitter's sequential scan + per-part overhead.
		splitDur := des.Time(sizeMB/p.SplitMBps + p.SplitPartOverheadS*float64(nodes))
		k.After(splitDur, func() {
			tSplitDone = k.Now()
			// Phase 3: N part transfers in parallel, sharing the
			// shared-disk uplink, after the initiation cost.
			barrier := des.NewBarrier(nodes, func() { tPartsDone = k.Now() })
			part := sizeMB / float64(nodes)
			for i := 0; i < nodes; i++ {
				net.StartFlow(part, []*netsim.Link{uplink, workers[i]},
					netsim.FlowOpts{Label: fmt.Sprintf("part-%d", i), Latency: des.Time(p.XferInitS)},
					func(f *netsim.Flow) { barrier.Arrive() })
			}
		})
	})
	if err := k.Run(); err != nil {
		panic("perf: grid simulation diverged: " + err.Error())
	}
	run.MoveWhole = tWholeDone
	run.Split = tSplitDone - tWholeDone
	run.MoveParts = tPartsDone - tSplitDone
	run.StageCode = des.Time(p.CodeStageS)
	// Phase 4: Amdahl engine model. T1 is the single-node scan time;
	// the serial fraction covers session fan-out, snapshot merging and
	// the straggler tail the paper's Table 2 exhibits.
	t1 := sizeMB / p.EngineMBps
	run.Analysis = des.Time(p.SerialFrac*t1 + (1-p.SerialFrac)*t1/float64(nodes))
	return run
}

// SimulateLocal runs the Table 1 desktop baseline.
func SimulateLocal(p Params, sizeMB float64) LocalRun {
	return LocalRun{
		SizeMB:     sizeMB,
		GetDataset: des.Time(sizeMB / p.ClientWANMBps),
		Analysis:   des.Time(sizeMB / p.LocalMBps),
	}
}

// Paper-reported values (for EXPERIMENTS.md comparisons).

// PaperTable1 holds the paper's Table 1 rows in seconds.
type PaperTable1Values struct {
	LocalGet, LocalAnalysis, LocalTotal          float64
	GridStage, GridCode, GridAnalysis, GridTotal float64
	DatasetMB                                    float64
	GridNodes                                    int
}

// PaperTable1 returns the published Table 1 numbers.
func PaperTable1() PaperTable1Values {
	return PaperTable1Values{
		DatasetMB: 471, GridNodes: 16,
		LocalGet: 32 * 60, LocalAnalysis: 13 * 60, LocalTotal: 45 * 60,
		GridStage: 174, GridCode: 7, GridAnalysis: 258, GridTotal: 259,
	}
}

// Table2Row is one row of Table 2 (seconds).
type Table2Row struct {
	Nodes     int
	MoveWhole float64
	Split     float64
	MoveParts float64
	Analysis  float64
}

// PaperTable2 returns the published Table 2 rows.
func PaperTable2() []Table2Row {
	return []Table2Row{
		{1, 63, 120, 105, 330},
		{2, 63, 120, 77, 287},
		{4, 63, 115, 70, 190},
		{8, 63, 117, 65, 148},
		{16, 63, 124, 50, 78},
	}
}

// Table2 simulates the Table 2 sweep at 471 MB.
func Table2(p Params) []Table2Row {
	out := make([]Table2Row, 0, 5)
	for _, n := range []int{1, 2, 4, 8, 16} {
		run := SimulateGrid(p, 471, n)
		out = append(out, Table2Row{
			Nodes:     n,
			MoveWhole: float64(run.MoveWhole),
			Split:     float64(run.Split),
			MoveParts: float64(run.MoveParts),
			Analysis:  float64(run.Analysis),
		})
	}
	return out
}

// Table1Result pairs simulated values with the paper's.
type Table1Result struct {
	Local LocalRun
	Grid  GridRun
	Paper PaperTable1Values
}

// Table1 simulates the Table 1 comparison (471 MB, 16 nodes).
func Table1(p Params) Table1Result {
	return Table1Result{
		Local: SimulateLocal(p, 471),
		Grid:  SimulateGrid(p, 471, 16),
		Paper: PaperTable1(),
	}
}

// Paper §4 fitted equations.

// PaperLocalT evaluates the paper's local model T = 11.5·X.
func PaperLocalT(x float64) float64 { return 11.5 * x }

// PaperGridT evaluates the paper's grid model
// T = 0.38·X + 53 + (62 + 5.3·X)/N.
func PaperGridT(x float64, n int) float64 {
	return 0.38*x + 53 + (62+5.3*x)/float64(n)
}

// Crossover returns the dataset size above which the Grid beats local for
// a node count, under the given time functions; it scans [0.1, 10000] MB.
func Crossover(n int, localT func(float64) float64, gridT func(float64, int) float64) float64 {
	lo, hi := 0.1, 10000.0
	if gridT(hi, n) >= localT(hi) {
		return -1 // grid never wins in range
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if gridT(mid, n) < localT(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
