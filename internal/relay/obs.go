// Telemetry for the read fan-out tier. Package-global families shared
// by every relay in the process — per-relay detail stays on the relay's
// own atomics (surfaced via Stats), keeping cardinality flat.

package relay

import "github.com/ipa-grid/ipa/internal/obs"

var (
	obsSubscriptions = obs.GetGauge("ipa_relay_subscriptions",
		"Open upstream session subscriptions across all relays.")
	obsUpPolls = obs.GetCounter("ipa_relay_upstream_polls_total",
		"Subscription poll exchanges issued upstream.")
	obsDownPolls = obs.GetCounter("ipa_relay_downstream_polls_total",
		"Downstream reads re-served from relay-local merged copies.")
	obsRebaselines = obs.GetCounter("ipa_relay_rebaselines_total",
		"Subscription re-baselines after an upstream epoch change or regression.")
	obsSyncSeconds = obs.GetHistogram("ipa_relay_sync_seconds",
		"One subscription exchange (upstream poll + local republish) in seconds.", nil)
	obsSSEClients = obs.GetGauge("ipa_relay_sse_clients",
		"Live SSE clients attached to the gateway.")
	obsSSEFrames = obs.GetCounter("ipa_relay_sse_frames_total",
		"SSE update frames pushed to clients (post-coalescing).")
	obsSSECoalesced = obs.GetCounter("ipa_relay_sse_coalesced_total",
		"Upstream versions folded into an already-pending SSE frame.")
)
