// Package relay is the fabric's read fan-out tier. A Relay subscribes
// ONCE per session to the owning shard's delta stream — polling
// incrementally and republishing each batch into a private
// merge.Manager through the same generation-stamped merge.Transport the
// engines use, pointed downhill — and re-serves any number of
// downstream pollers from that local merged copy. Downstream reads hit
// the local manager's lock-free quiescent fast path and encoded-frame
// cache, so N viewers cost the owning shard one subscription stream
// instead of N poll round-trips, and because the codec is
// deterministic, relay-served frames are byte-identical to the owner's.
//
// Relays compose: a Relay's upstream may itself be a Relay (a
// relay-of-relay tree for geographic tiers), and each hop forwards an
// accumulated max(local, downstream) queue-depth hint on its
// subscription polls, so leaf congestion widens flush intervals at the
// root — backpressure beyond one hop.
//
// Self-healing mirrors the client rules: an upstream epoch change or
// same-epoch version regression (failover promotion, fault re-home)
// re-baselines the subscription — the local copy is dropped, which
// mints a fresh local epoch, so downstream clients full-resync in turn.
// An upstream that stops knowing the session (version 0) leaves the
// local copy serving its final state rather than tearing it down under
// the viewers.
package relay

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/rmi"
)

// Poller is the upstream read surface a relay subscribes through: the
// shard router's origin poller, a remote manager over RMI, or another
// Relay (tree tiers).
type Poller interface {
	Poll(args merge.PollArgs, reply *merge.PollReply) error
}

// ObjectName is the RMI registration name for a relay ("AIDARelay" —
// the manager registers each relay under ObjectName+"/"+name so one
// process can host several tiers).
func ObjectName(name string) string { return "AIDARelay/" + name }

// Relay mirrors sessions from an upstream Poller into a local
// merge.Manager and re-serves downstream polls from it.
type Relay struct {
	name     string
	upstream Poller
	// releaseUp: upstream replies crossed the wire, so their decoded
	// frames go back to the frame pool after the delta is built. Never
	// set for in-process upstreams, whose replies share the owner's
	// encode cache (releasing those would corrupt later polls).
	releaseUp bool
	local     *merge.Manager

	// Interval is the subscription poll cadence (0 = no background
	// loop; tests and embedders drive syncs via SyncNow). Set before
	// Subscribe.
	Interval time.Duration
	// AutoSubscribe makes the first downstream poll of an unknown
	// session open its subscription on demand. Set before use.
	AutoSubscribe bool

	mu     sync.Mutex
	closed bool
	subs   sync.Map // sessionID → *subscription

	// downDepth accumulates the max queue-depth hint reported by
	// downstream tiers (child relays, the SSE gateway) since the last
	// subscription poll drained it.
	downDepth atomic.Int64
	upPolls   atomic.Int64
	downPolls atomic.Int64
	clients   atomic.Int64
}

type subscription struct {
	sid string

	// syncMu serializes syncOnce between the background loop and
	// SyncNow; the fields below it are guarded by it.
	syncMu    sync.Mutex
	tr        *merge.Transport
	upVersion int64
	upEpoch   int64

	// progress is the upstream per-worker progress at upVersion,
	// re-served verbatim on downstream polls (the local manager only
	// sees one aggregate "worker", the relay itself).
	progress atomic.Pointer[[]merge.WorkerProgress]
	// lastSyncNS is the wall clock of the last successful upstream
	// exchange (unix nanos); staleness lag is measured against it.
	lastSyncNS atomic.Int64
	// lastSyncDurNS is the duration of the last sync — a sync slower
	// than the poll interval marks this relay itself as lagging.
	lastSyncDurNS atomic.Int64
	// rebaselines mirrors the transport's re-baseline count (plus one
	// per epoch-flip transport replacement) into an atomic, so Stats
	// never touches the syncMu-guarded transport. rebaseBase carries
	// the total across transport replacements (guarded by syncMu).
	rebaselines atomic.Int64
	rebaseBase  int64

	stop chan struct{}
	done chan struct{}
}

// New creates a relay named name subscribing through upstream. The
// upstream is probed for a WireReplies marker (RemotePoller has one) to
// decide frame-release discipline.
func New(name string, upstream Poller) *Relay {
	r := &Relay{name: name, upstream: upstream, local: merge.NewManager()}
	if w, ok := upstream.(interface{ WireReplies() bool }); ok && w.WireReplies() {
		r.releaseUp = true
	}
	return r
}

// Name returns the relay's registered name.
func (r *Relay) Name() string { return r.name }

// Local exposes the relay's private merged copy — tests inject
// NeedFull-style damage through it, and the gateway renders from it.
func (r *Relay) Local() *merge.Manager { return r.local }

// errUnchanged aborts a transport send without consuming a generation:
// the upstream had nothing new (or doesn't know the session), so the
// local version must not churn — downstream quiescent polls stay on
// the lock-free fast path.
var errUnchanged = errors.New("relay: upstream unchanged")

// errEpochFlip aborts a send because the upstream state was rebuilt
// (new epoch, or a same-epoch version regression): the local copy must
// be dropped and re-baselined.
var errEpochFlip = errors.New("relay: upstream epoch changed")

// Subscribe opens the session's upstream subscription (idempotent).
// With a positive Interval the background loop starts polling; either
// way the first sync happens on the next SyncNow or tick.
func (r *Relay) Subscribe(sessionID string) error {
	if _, ok := r.subs.Load(sessionID); ok {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("relay %s: closed", r.name)
	}
	if _, ok := r.subs.Load(sessionID); ok {
		return nil
	}
	s := &subscription{
		sid:  sessionID,
		tr:   merge.NewTransport(sessionID, "relay:"+r.name, r.local),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	r.subs.Store(sessionID, s)
	obsSubscriptions.Add(1)
	if r.Interval > 0 {
		go r.loop(s)
	} else {
		close(s.done)
	}
	return nil
}

func (r *Relay) loop(s *subscription) {
	defer close(s.done)
	t := time.NewTicker(r.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			// Errors are retried on the next tick; the transport's
			// re-baseline state machine covers anything half-applied.
			r.syncOnce(s)
		}
	}
}

// SyncNow forces one synchronous subscription exchange for a session
// (no-op for unsubscribed sessions). Tests use it for deterministic
// sequencing; the gateway uses it for freshness on first attach.
func (r *Relay) SyncNow(sessionID string) error {
	v, ok := r.subs.Load(sessionID)
	if !ok {
		return nil
	}
	return r.syncOnce(v.(*subscription))
}

// syncOnce performs one upstream poll → local publish exchange.
func (r *Relay) syncOnce(s *subscription) error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	for attempt := 0; ; attempt++ {
		err := r.syncLocked(s)
		switch {
		case err == nil || errors.Is(err, errUnchanged):
			return nil
		case errors.Is(err, errEpochFlip) && attempt == 0:
			// The upstream state was rebuilt under us (failover
			// promotion, fault re-home). Drop the local copy — the
			// replacement session gets a fresh local epoch, so
			// downstream clients discard their mirrors too — and
			// re-baseline immediately.
			obsRebaselines.Inc()
			s.rebaseBase += s.tr.Rebaselines() + 1
			s.rebaselines.Store(s.rebaseBase)
			r.local.Drop(s.sid)
			s.tr = merge.NewTransport(s.sid, "relay:"+r.name, r.local)
			s.upVersion, s.upEpoch = 0, 0
			s.progress.Store(nil)
			continue
		case errors.Is(err, errEpochFlip):
			// Flipped twice in one sync: let the next tick retry.
			return nil
		default:
			return err
		}
	}
}

func (r *Relay) syncLocked(s *subscription) error {
	if s.upVersion != 0 && r.local.Version(s.sid) == 0 {
		// The local copy was wiped under the subscription (an injected
		// NeedFull, an operator drop). An unchanged upstream would
		// otherwise skip publishing forever; rebuild from a fresh
		// baseline instead.
		return errEpochFlip
	}
	var nextVersion, nextEpoch int64
	var nextProgress []merge.WorkerProgress
	t0 := time.Now()
	_, err := s.tr.Send(func(full bool) (merge.Snapshot, error) {
		args := merge.PollArgs{SessionID: s.sid, DownstreamDepth: r.reportableDepth()}
		if full {
			args.Full = true
		} else {
			args.SinceVersion = s.upVersion
		}
		var pr merge.PollReply
		if err := r.upstream.Poll(args, &pr); err != nil {
			return merge.Snapshot{}, err
		}
		r.upPolls.Add(1)
		obsUpPolls.Inc()
		if pr.Version == 0 && pr.Epoch == 0 {
			// Upstream doesn't know the session (dropped, fenced, or
			// mid-failover): keep serving the local copy's final state.
			return merge.Snapshot{}, errUnchanged
		}
		if s.upEpoch != 0 && pr.Epoch != 0 && pr.Epoch != s.upEpoch {
			r.releaseReply(&pr)
			return merge.Snapshot{}, errEpochFlip
		}
		if !full && pr.Version < s.upVersion {
			// Same-epoch version regression: a legacy peer without epoch
			// stamps rebuilt the state. Treat like an epoch flip.
			r.releaseReply(&pr)
			return merge.Snapshot{}, errEpochFlip
		}
		if !full && !pr.Changed && pr.Version == s.upVersion {
			s.lastSyncNS.Store(time.Now().UnixNano())
			return merge.Snapshot{}, errUnchanged
		}
		d := &aida.DeltaState{Full: full}
		for _, e := range pr.Entries {
			st, err := e.State()
			if err != nil {
				return merge.Snapshot{}, err
			}
			d.Entries = append(d.Entries, aida.TreeEntry{Path: e.Path, Object: st})
		}
		if !full {
			d.Removed = pr.Removed
		}
		snap := merge.Snapshot{Delta: d, Log: strings.Join(pr.Logs, "\n")}
		for _, p := range pr.Progress {
			snap.Done += p.EventsDone
			snap.Total += p.EventsTotal
		}
		nextVersion, nextEpoch, nextProgress = pr.Version, pr.Epoch, pr.Progress
		// The decoded states above copied out of the frame buffers, so a
		// wire-crossing reply's frames can go back to the pool now.
		r.releaseReply(&pr)
		return snap, nil
	})
	if err != nil {
		return err
	}
	s.upVersion, s.upEpoch = nextVersion, nextEpoch
	s.progress.Store(&nextProgress)
	s.rebaselines.Store(s.rebaseBase + s.tr.Rebaselines())
	now := time.Now()
	s.lastSyncNS.Store(now.UnixNano())
	s.lastSyncDurNS.Store(now.Sub(t0).Nanoseconds())
	obsSyncSeconds.Observe(now.Sub(t0).Seconds())
	return nil
}

// releaseReply recycles a wire-decoded reply's frames. In-process
// upstream replies share the owner's encode cache and are left alone.
func (r *Relay) releaseReply(pr *merge.PollReply) {
	if r.releaseUp {
		pr.Release()
	}
}

// reportableDepth is the queue-depth hint carried on the next upstream
// poll: the max of what downstream tiers reported (drained with decay,
// so a quiet leaf fades out) and this relay's own lag (a sync slower
// than the poll interval counts as one queued consumer).
func (r *Relay) reportableDepth() int {
	var d int64
	for {
		cur := r.downDepth.Load()
		if cur <= 0 {
			break
		}
		if r.downDepth.CompareAndSwap(cur, cur-1) {
			d = cur
			break
		}
	}
	if r.Interval > 0 && time.Duration(maxSubDur(r)) > r.Interval && d < 1 {
		d = 1
	}
	return int(d)
}

func maxSubDur(r *Relay) int64 {
	var max int64
	r.subs.Range(func(_, v any) bool {
		if d := v.(*subscription).lastSyncDurNS.Load(); d > max {
			max = d
		}
		return true
	})
	return max
}

// ReportDownstream folds a downstream consumer count / queue depth into
// the hint forwarded upstream (max-accumulate; the SSE gateway calls
// this when client buffers back up).
func (r *Relay) ReportDownstream(depth int) {
	for {
		cur := r.downDepth.Load()
		if int64(depth) <= cur || r.downDepth.CompareAndSwap(cur, int64(depth)) {
			return
		}
	}
}

// AddClient / DropClient track attached long-lived consumers (SSE
// clients) for the fan-out stats.
func (r *Relay) AddClient()  { r.clients.Add(1) }
func (r *Relay) DropClient() { r.clients.Add(-1) }

// Poll re-serves a downstream read from the local merged copy
// (RMI-compatible — the same wire surface as a Manager, so core.Client
// needs no new protocol). A child relay's accumulated depth hint is
// captured here and zeroed before the local delegate, so it is
// forwarded upstream rather than double-counted locally.
func (r *Relay) Poll(args merge.PollArgs, reply *merge.PollReply) error {
	if args.DownstreamDepth > 0 {
		r.ReportDownstream(args.DownstreamDepth)
		args.DownstreamDepth = 0
	}
	r.downPolls.Add(1)
	obsDownPolls.Inc()
	if r.AutoSubscribe {
		if _, ok := r.subs.Load(args.SessionID); !ok {
			if err := r.Subscribe(args.SessionID); err != nil {
				return err
			}
			// Serve the first poll fresh rather than empty.
			if err := r.SyncNow(args.SessionID); err != nil {
				return err
			}
		}
	}
	if err := r.local.Poll(args, reply); err != nil {
		return err
	}
	if v, ok := r.subs.Load(args.SessionID); ok {
		if p := v.(*subscription).progress.Load(); p != nil && len(*p) > 0 {
			reply.Progress = *p
		}
	}
	return nil
}

// Unsubscribe stops a session's subscription loop and forgets its
// local copy.
func (r *Relay) Unsubscribe(sessionID string) {
	if v, ok := r.subs.LoadAndDelete(sessionID); ok {
		s := v.(*subscription)
		close(s.stop)
		<-s.done
		obsSubscriptions.Add(-1)
		r.local.Drop(sessionID)
	}
}

// Drop tears down a session (the router broadcasts session teardown
// here alongside the shards).
func (r *Relay) Drop(sessionID string) { r.Unsubscribe(sessionID) }

// Close stops every subscription loop. The local copies keep serving
// whatever they last mirrored until the relay is dropped.
func (r *Relay) Close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.subs.Range(func(k, v any) bool {
		s := v.(*subscription)
		close(s.stop)
		<-s.done
		r.subs.Delete(k)
		obsSubscriptions.Add(-1)
		return true
	})
}

// Stats is a relay's observable state for /fabric/status and the
// client watch view.
type Stats struct {
	Name     string
	Sessions int
	// UpPolls / DownPolls count subscription exchanges vs re-served
	// reads; FanOut is their ratio — how many downstream reads one
	// upstream exchange amortizes.
	UpPolls   int64
	DownPolls int64
	FanOut    float64
	// Clients counts attached long-lived consumers (SSE).
	Clients int64
	// StalenessMS is the oldest subscription's time since its last
	// successful upstream exchange — the staleness bound a reader of
	// this relay observes.
	StalenessMS float64
	// Rebaselines counts forwarded full baselines after the first
	// (upstream failovers, handoffs, injected NeedFulls).
	Rebaselines int64
}

// Stats snapshots the relay's counters. Lock-free.
func (r *Relay) Stats() Stats {
	st := Stats{
		Name:      r.name,
		UpPolls:   r.upPolls.Load(),
		DownPolls: r.downPolls.Load(),
		Clients:   r.clients.Load(),
	}
	now := time.Now().UnixNano()
	r.subs.Range(func(_, v any) bool {
		s := v.(*subscription)
		st.Sessions++
		if last := s.lastSyncNS.Load(); last > 0 {
			if ms := float64(now-last) / 1e6; ms > st.StalenessMS {
				st.StalenessMS = ms
			}
		}
		st.Rebaselines += s.rebaselines.Load()
		return true
	})
	if st.UpPolls > 0 {
		st.FanOut = float64(st.DownPolls) / float64(st.UpPolls)
	}
	return st
}

// RemotePoller adapts an RMI connection into a Poller for relays
// subscribing to a shard (or parent relay) on another node.
type RemotePoller struct {
	client *rmi.Client
	target string
}

// NewRemotePoller wraps an RMI connection. object is the remote
// registration name ("" = the root manager).
func NewRemotePoller(client *rmi.Client, object string) *RemotePoller {
	if object == "" {
		object = merge.RMIObjectName
	}
	return &RemotePoller{client: client, target: object + ".Poll"}
}

// Poll implements Poller over the wire.
func (p *RemotePoller) Poll(args merge.PollArgs, reply *merge.PollReply) error {
	return p.client.Call(p.target, args, reply)
}

// WireReplies marks replies as wire-decoded: their frames are pool
// buffers the relay must Release after re-publishing.
func (p *RemotePoller) WireReplies() bool { return true }
