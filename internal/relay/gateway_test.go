package relay_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/relay"
)

// readSSEFrame consumes one well-formed "event: update" frame from the
// stream, failing the test on any malformed framing.
func readSSEFrame(t *testing.T, br *bufio.Reader) map[string]any {
	t.Helper()
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimRight(line, "\n") != "event: update" {
		t.Fatalf("malformed SSE frame: want %q, got %q", "event: update", line)
	}
	line, err = br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "data: ") {
		t.Fatalf("malformed SSE frame: data line = %q", line)
	}
	var payload map[string]any
	if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &payload); err != nil {
		t.Fatalf("SSE data is not JSON: %v (%q)", err, line)
	}
	if blank, err := br.ReadString('\n'); err != nil || blank != "\n" {
		t.Fatalf("malformed SSE frame: want blank separator, got %q (%v)", blank, err)
	}
	return payload
}

// TestGatewaySSE drives the browser-facing surface end to end: an SSE
// client sees correctly framed update events, a burst of publishes
// coalesces into one frame (version jumps, no intermediate frames),
// and the render endpoints serve SVG/text/XML off the relay's local
// copy.
func TestGatewaySSE(t *testing.T) {
	mgr := merge.NewManager()
	const sid = "sse-sess"
	tree := aida.NewTree()
	h, err := tree.H1D("/h", "x", "", 10, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	tr := merge.NewTransport(sid, "w0", mgr)
	h.Fill(1)
	sendSnap(t, tr, tree)

	rel := relay.New("gw", mgr)
	rel.AutoSubscribe = true
	rel.Interval = time.Millisecond
	defer rel.Close()

	gw := relay.NewGateway(rel)
	gw.Tick = 5 * time.Millisecond
	srv := httptest.NewServer(gw)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/events/" + sid)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	first := readSSEFrame(t, br)
	if first["session"] != sid {
		t.Fatalf("first frame session = %v", first["session"])
	}
	v1, _ := first["version"].(float64)
	if v1 <= 0 {
		t.Fatalf("first frame version = %v", first["version"])
	}
	paths, _ := first["paths"].([]any)
	if len(paths) == 0 {
		t.Fatal("first frame named no paths")
	}

	// Burst: several publishes inside one client tick must coalesce
	// into a single frame whose version jumps past the intermediates.
	for i := 0; i < 5; i++ {
		h.Fill(float64(i % 10))
		sendSnap(t, tr, tree)
	}
	second := readSSEFrame(t, br)
	v2, _ := second["version"].(float64)
	if v2 <= v1 {
		t.Fatalf("second frame version %v did not advance past %v", v2, v1)
	}

	// Render plane, all off the relay's local copy.
	get := func(path string) (string, string) {
		t.Helper()
		r2, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer r2.Body.Close()
		if r2.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, r2.StatusCode)
		}
		var sb strings.Builder
		if _, err := fmt.Fprint(&sb, readAll(t, r2)); err != nil {
			t.Fatal(err)
		}
		return sb.String(), r2.Header.Get("Content-Type")
	}
	if body, ct := get("/view/" + sid + "?path=/h/x"); ct != "image/svg+xml" || !strings.Contains(body, "<svg") {
		t.Fatalf("/view served %q (%d bytes)", ct, len(body))
	}
	if body, _ := get("/tree/" + sid); !strings.Contains(body, "/h/x") {
		t.Fatalf("/tree missing the histogram path: %q", body)
	}
	if body, ct := get("/xml/" + sid); ct != "application/xml" || !strings.Contains(body, "histogram1d") {
		t.Fatalf("/xml served %q: %.80q", ct, body)
	}
	if body, ct := get("/live/" + sid); !strings.Contains(ct, "text/html") || !strings.Contains(body, "EventSource") {
		t.Fatalf("/live served %q", ct)
	}

	if st := rel.Stats(); st.Clients != 1 {
		t.Fatalf("relay clients = %d, want 1 (the SSE stream)", st.Clients)
	}
}

func readAll(t *testing.T, r *http.Response) string {
	t.Helper()
	var sb strings.Builder
	br := bufio.NewReader(r.Body)
	for {
		b, err := br.ReadString('\n')
		sb.WriteString(b)
		if err != nil {
			return sb.String()
		}
	}
}
