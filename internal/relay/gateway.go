// The HTTP/SSE live-view gateway: the browser-facing edge of the read
// fan-out tier. Each SSE client gets one goroutine that polls the
// gateway's relay once per tick — hitting the relay-local lock-free
// fast path when nothing changed — and pushes at most one `update`
// frame per tick, so a burst of upstream publishes coalesces into a
// single event per client. Rendering reuses the aida SVG/XML/text
// renderers over the relay's local merged copy; no new protocol, no
// per-viewer load on the owning shard.
//
// Endpoint contract (all GET):
//
//	/events/{session}        SSE stream of JSON update frames:
//	                         event: update
//	                         data: {"session","version","epoch","resync",
//	                                "paths","removed","done","total","logs"}
//	                         A `resync` frame means the upstream state was
//	                         rebuilt (failover): discard and re-fetch views.
//	/live/{session}          HTML live view (EventSource + SVG refresh).
//	/view/{session}?path=P   SVG rendering of the object at P.
//	/tree/{session}          text object-browser summary.
//	/xml/{session}           full AIDA XML export.
package relay

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"time"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/merge"
)

// Gateway serves live session views from a relay over HTTP/SSE.
type Gateway struct {
	relay *Relay
	// Tick is the per-client coalescing interval: each SSE client sees
	// at most one update frame per Tick (default 200ms).
	Tick time.Duration
	mux  *http.ServeMux
}

// NewGateway wraps a relay in the HTTP/SSE surface.
func NewGateway(r *Relay) *Gateway {
	g := &Gateway{relay: r, Tick: 200 * time.Millisecond}
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("GET /events/{session}", g.events)
	g.mux.HandleFunc("GET /live/{session}", g.live)
	g.mux.HandleFunc("GET /view/{session}", g.view)
	g.mux.HandleFunc("GET /tree/{session}", g.tree)
	g.mux.HandleFunc("GET /xml/{session}", g.xml)
	return g
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// sseFrame is one update event's JSON payload.
type sseFrame struct {
	Session string `json:"session"`
	Version int64  `json:"version"`
	Epoch   int64  `json:"epoch"`
	// Resync marks a post-failover rebuild: the version space restarted,
	// so viewers must discard cached state and treat Paths as complete.
	Resync  bool     `json:"resync,omitempty"`
	Paths   []string `json:"paths,omitempty"`
	Removed []string `json:"removed,omitempty"`
	Done    int64    `json:"done"`
	Total   int64    `json:"total"`
	Logs    []string `json:"logs,omitempty"`
}

func (g *Gateway) events(w http.ResponseWriter, r *http.Request) {
	sid := r.PathValue("session")
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	g.relay.AddClient()
	obsSSEClients.Add(1)
	defer func() {
		g.relay.DropClient()
		obsSSEClients.Add(-1)
	}()
	tick := g.Tick
	if tick <= 0 {
		tick = 200 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	enc := json.NewEncoder(w)
	var since, sinceEpoch int64
	push := func() bool {
		var reply merge.PollReply
		args := merge.PollArgs{SessionID: sid, SinceVersion: since}
		if err := g.relay.Poll(args, &reply); err != nil || reply.Version == 0 {
			return true // session unknown yet; keep waiting
		}
		resync := since > 0 && (reply.Version < since ||
			(reply.Epoch != 0 && sinceEpoch != 0 && reply.Epoch != sinceEpoch))
		if resync {
			// The relay re-baselined under us; restart from zero so the
			// next frame carries the complete rebuilt state.
			since, sinceEpoch = 0, 0
			reply = merge.PollReply{}
			if err := g.relay.Poll(merge.PollArgs{SessionID: sid}, &reply); err != nil || reply.Version == 0 {
				return true
			}
		}
		if !reply.Changed && reply.Version == since && !resync {
			return true
		}
		f := sseFrame{
			Session: sid, Version: reply.Version, Epoch: reply.Epoch,
			Resync: resync, Removed: reply.Removed, Logs: reply.Logs,
		}
		for _, e := range reply.Entries {
			f.Paths = append(f.Paths, e.Path)
		}
		for _, p := range reply.Progress {
			f.Done += p.EventsDone
			f.Total += p.EventsTotal
		}
		t0 := time.Now()
		if _, err := fmt.Fprintf(w, "event: update\ndata: "); err != nil {
			return false
		}
		if err := enc.Encode(f); err != nil { // Encode appends one \n
			return false
		}
		if _, err := fmt.Fprintf(w, "\n"); err != nil {
			return false
		}
		fl.Flush()
		obsSSEFrames.Inc()
		if since > 0 && reply.Version > since+1 {
			// The versions between since and reply.Version were coalesced
			// into this one frame.
			obsSSECoalesced.Add(reply.Version - since - 1)
		}
		if time.Since(t0) > tick {
			// This client cannot drain one frame per tick: surface the
			// congestion so the hint propagates up the subscription.
			g.relay.ReportDownstream(1)
		}
		since, sinceEpoch = reply.Version, reply.Epoch
		return true
	}
	if !push() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-t.C:
			if !push() {
				return
			}
		}
	}
}

func (g *Gateway) view(w http.ResponseWriter, r *http.Request) {
	sid := r.PathValue("session")
	path := r.URL.Query().Get("path")
	tree, _, err := g.relay.Local().MergedTree(sid)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	obj := tree.Get(path)
	if obj == nil {
		http.Error(w, "no such object", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	w.Header().Set("Cache-Control", "no-cache")
	if h, ok := obj.(*aida.Histogram1D); ok {
		if err := aida.WriteSVGH1D(w, h, 640, 400); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	// Non-H1D objects get their text summary wrapped in an SVG so the
	// live page can treat every path as an image.
	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="640" height="60">`+
		`<text x="8" y="24" font-family="monospace" font-size="13">%s  [%s]  entries=%d</text></svg>`,
		html.EscapeString(path), html.EscapeString(string(obj.Kind())), obj.EntriesCount())
}

func (g *Gateway) tree(w http.ResponseWriter, r *http.Request) {
	tree, ver, err := g.relay.Local().MergedTree(r.PathValue("session"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "version %d\n%s", ver, aida.RenderTree(tree))
}

func (g *Gateway) xml(w http.ResponseWriter, r *http.Request) {
	tree, _, err := g.relay.Local().MergedTree(r.PathValue("session"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	if err := aida.WriteXML(w, tree); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (g *Gateway) live(w http.ResponseWriter, r *http.Request) {
	sid := r.PathValue("session")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, livePage, html.EscapeString(sid))
}

// livePage is the zero-dependency live view: subscribe to the SSE
// stream, keep an <img> per object path, and re-fetch only the paths
// each update frame names.
const livePage = `<!DOCTYPE html>
<html><head><title>ipa live — %[1]s</title><style>
body{font-family:sans-serif;margin:1em;background:#fafafa}
img{border:1px solid #ccc;margin:4px;background:#fff}
#status{color:#555;font-size:90%%}
</style></head><body>
<h2>session %[1]s</h2><div id="status">connecting…</div><div id="plots"></div>
<script>
const sid=%[1]q, plots={}, status=document.getElementById('status');
const es=new EventSource('/events/'+encodeURIComponent(sid));
es.addEventListener('update',ev=>{
  const f=JSON.parse(ev.data);
  status.textContent='version '+f.version+' — '+f.done+'/'+f.total+' events';
  if(f.resync){for(const p in plots){plots[p].remove();delete plots[p];}}
  for(const p of f.removed||[]){if(plots[p]){plots[p].remove();delete plots[p];}}
  for(const p of f.paths||[]){
    let img=plots[p];
    if(!img){img=document.createElement('img');plots[p]=img;
      document.getElementById('plots').appendChild(img);}
    img.src='/view/'+encodeURIComponent(sid)+'?path='+encodeURIComponent(p)+'&v='+f.version;
  }
});
es.onerror=()=>{status.textContent='disconnected — retrying…';};
</script></body></html>
`
