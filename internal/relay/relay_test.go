package relay_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/relay"
	"github.com/ipa-grid/ipa/internal/rmi"
	"github.com/ipa-grid/ipa/internal/shard"
)

// sendSnap publishes tree's next delta through tr (a full baseline when
// the transport's state machine asks for one).
func sendSnap(t *testing.T, tr *merge.Transport, tree *aida.Tree) {
	t.Helper()
	if _, err := tr.Send(func(full bool) (merge.Snapshot, error) {
		var d *aida.DeltaState
		var err error
		if full {
			d, err = tree.FullDelta()
		} else {
			d, err = tree.Delta()
		}
		return merge.Snapshot{Delta: d}, err
	}); err != nil {
		t.Fatal(err)
	}
}

// frames reads a session's full merged state from a poll surface as
// path → encoded object bytes (the byte-identity currency of the
// equivalence tests).
func frames(t *testing.T, p relay.Poller, sid string) map[string][]byte {
	t.Helper()
	var reply merge.PollReply
	if err := p.Poll(merge.PollArgs{SessionID: sid, Full: true}, &reply); err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(reply.Entries))
	for _, e := range reply.Entries {
		st, err := e.State()
		if err != nil {
			t.Fatal(err)
		}
		buf, err := aida.AppendObjectState(nil, &st)
		if err != nil {
			t.Fatal(err)
		}
		out[e.Path] = buf
	}
	return out
}

func sameFrames(a, b map[string][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if !bytes.Equal(b[k], v) {
			return false
		}
	}
	return true
}

// TestRelayTreeEquivalence drives sessions through fills, object
// removals, a rewind (Reset), a live handoff, and an injected NeedFull
// at each relay tier, and asserts after every step that a two-level
// relay tree (router → r1 → r2) serves frames byte-identical to
// polling the owning shard directly. Run under -race this also
// exercises the subscription loops against concurrent downstream
// pollers.
func TestRelayTreeEquivalence(t *testing.T) {
	router := shard.NewRouter(0)
	for i := 0; i < 3; i++ {
		if err := router.AddShard(fmt.Sprintf("shard%02d", i), merge.NewManager()); err != nil {
			t.Fatal(err)
		}
	}
	r1 := relay.New("r1", router.OriginPoller())
	r1.AutoSubscribe = true
	r1.Interval = time.Millisecond
	defer r1.Close()
	r2 := relay.New("r2", r1)
	r2.AutoSubscribe = true
	r2.Interval = time.Millisecond
	defer r2.Close()

	type sess struct {
		sid  string
		tree *aida.Tree
		h    *aida.Histogram1D
		tr   *merge.Transport
	}
	var sessions []*sess
	for i := 0; i < 3; i++ {
		s := &sess{sid: fmt.Sprintf("eq-%d", i), tree: aida.NewTree()}
		var err error
		if s.h, err = s.tree.H1D("/h", "x", "", 10, 0, 10); err != nil {
			t.Fatal(err)
		}
		s.tr = merge.NewTransport(s.sid, "w0", router)
		sessions = append(sessions, s)
	}

	// settle pumps both tiers enough times to drain any NeedFull /
	// epoch-flip re-baseline chain (each needs at most two exchanges).
	settle := func(sid string) {
		t.Helper()
		for i := 0; i < 3; i++ {
			if err := r1.SyncNow(sid); err != nil {
				t.Fatal(err)
			}
			if err := r2.SyncNow(sid); err != nil {
				t.Fatal(err)
			}
		}
	}
	check := func(step string) {
		t.Helper()
		for _, s := range sessions {
			settle(s.sid)
			want := frames(t, router.OriginPoller(), s.sid)
			if got := frames(t, r1, s.sid); !sameFrames(want, got) {
				t.Fatalf("%s: tier-1 relay frames diverged for %s", step, s.sid)
			}
			if got := frames(t, r2, s.sid); !sameFrames(want, got) {
				t.Fatalf("%s: tier-2 relay frames diverged for %s", step, s.sid)
			}
		}
	}

	// Concurrent downstream pollers on the leaf tier for the duration of
	// the drive — they assert nothing, they just race the sync loops.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			since := map[string]int64{}
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range sessions {
					var reply merge.PollReply
					if err := r2.Poll(merge.PollArgs{SessionID: s.sid, SinceVersion: since[s.sid]}, &reply); err == nil {
						since[s.sid] = reply.Version
					}
				}
			}
		}()
	}
	defer func() { close(stop); wg.Wait() }()

	// Fills, plus extra objects that come and go (removals ride deltas).
	for r := 0; r < 6; r++ {
		for _, s := range sessions {
			s.h.Fill(float64(r))
			if r == 2 {
				if _, err := s.tree.H1D("/tmp/x", "x", "", 4, 0, 4); err != nil {
					t.Fatal(err)
				}
			}
			if r == 4 {
				s.tree.Rm("/tmp/x")
			}
			sendSnap(t, s.tr, s.tree)
		}
		check(fmt.Sprintf("round %d", r))
	}

	// Rewind: Reset clears the merged state (all paths go to Removed);
	// the engines then republish, which the transport answers with a
	// fresh baseline.
	for _, s := range sessions {
		if err := router.Reset(merge.ResetArgs{SessionID: s.sid}, &merge.ResetReply{}); err != nil {
			t.Fatal(err)
		}
		s.h.Fill(9)
		sendSnap(t, s.tr, s.tree) // answered NeedFull: arms the re-baseline
		sendSnap(t, s.tr, s.tree) // full baseline
	}
	check("rewind")

	// Live handoff: move every session off its current owner; the
	// migrated copy keeps serving and the relays follow incrementally.
	for _, s := range sessions {
		from := router.Placement(s.sid)
		for _, name := range router.Shards() {
			if name != from {
				if err := router.MoveSession(s.sid, name); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
		s.h.Fill(3)
		sendSnap(t, s.tr, s.tree)
	}
	check("handoff")

	// Injected NeedFull at each tier: wipe a relay's local copy under
	// its transport. The next sync is refused (NeedFull), the one after
	// republishes the full baseline; the dropped copy's replacement gets
	// a fresh local epoch, so the tier below re-baselines in turn.
	r1.Local().Drop(sessions[0].sid)
	check("needfull tier-1")
	r2.Local().Drop(sessions[1].sid)
	check("needfull tier-2")

	if st := r1.Stats(); st.Rebaselines == 0 {
		t.Fatalf("tier-1 relay reported no rebaselines after injected NeedFull: %+v", st)
	}
}

// TestRelayFailoverConvergence kills a replicated session's primary
// shard and asserts the relay re-baselines onto the promoted replica,
// mints a fresh downstream epoch (so polling clients full-resync), and
// converges byte-identical to the new owner.
func TestRelayFailoverConvergence(t *testing.T) {
	router := shard.NewRouter(0)
	router.Replicate = true
	for i := 0; i < 3; i++ {
		if err := router.AddShard(fmt.Sprintf("shard%02d", i), merge.NewManager()); err != nil {
			t.Fatal(err)
		}
	}
	rel := relay.New("fo", router.OriginPoller())
	rel.AutoSubscribe = true
	defer rel.Close()

	const sid = "failover-sess"
	tree := aida.NewTree()
	h, err := tree.H1D("/h", "x", "", 10, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	tr := merge.NewTransport(sid, "w0", router)
	for r := 0; r < 8; r++ {
		h.Fill(float64(r % 10))
		sendSnap(t, tr, tree)
	}
	if err := rel.Subscribe(sid); err != nil {
		t.Fatal(err)
	}
	if err := rel.SyncNow(sid); err != nil {
		t.Fatal(err)
	}

	// A downstream client's view before the failure: its cursor holds
	// the relay's local version and epoch.
	var before merge.PollReply
	if err := rel.Poll(merge.PollArgs{SessionID: sid}, &before); err != nil {
		t.Fatal(err)
	}
	if before.Epoch == 0 || before.Version == 0 {
		t.Fatalf("relay served no epoch/version before failover: %+v", before)
	}

	owner := router.Placement(sid)
	if _, promoted := router.MarkDead(owner); len(promoted) == 0 {
		t.Fatalf("killing %s promoted nothing", owner)
	}
	// The promotion minted a new upstream epoch: the next syncs detect
	// the flip, drop the local copy, and re-baseline.
	for i := 0; i < 3; i++ {
		if err := rel.SyncNow(sid); err != nil {
			t.Fatal(err)
		}
	}

	var after merge.PollReply
	if err := rel.Poll(merge.PollArgs{SessionID: sid, SinceVersion: before.Version}, &after); err != nil {
		t.Fatal(err)
	}
	if after.Epoch == 0 || after.Epoch == before.Epoch {
		t.Fatalf("relay epoch did not flip after failover: before %d after %d", before.Epoch, after.Epoch)
	}
	// The client resync rule (epoch changed) now triggers a full
	// re-poll; the rebuilt state must match the promoted owner's
	// byte-for-byte.
	want := frames(t, router.OriginPoller(), sid)
	if got := frames(t, rel, sid); !sameFrames(want, got) {
		t.Fatal("relay frames diverged from the promoted owner after failover")
	}
	if len(want) == 0 {
		t.Fatal("promoted owner lost the session state entirely")
	}
}

// TestRelayReleaseContractOverRMI extends the frame release contract
// across the relay hop: the relay subscribes to a manager over a real
// RMI connection (wire-decoded replies it must Release back to the
// pool), re-serves downstream — and repeated syncs with pooled-buffer
// reuse must never corrupt the re-served state. The downstream hop is
// wire too: a client polls the relay over RMI and Releases its replies
// after use, per the PR-7 contract.
func TestRelayReleaseContractOverRMI(t *testing.T) {
	mgr := merge.NewManager()
	upSrv := rmi.NewServer(nil)
	if err := upSrv.Register(merge.RMIObjectName, mgr); err != nil {
		t.Fatal(err)
	}
	upAddr, err := upSrv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer upSrv.Close()
	upClient, err := rmi.Dial(upAddr.String(), "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer upClient.Close()

	rel := relay.New("wan", relay.NewRemotePoller(upClient, ""))
	rel.AutoSubscribe = true
	defer rel.Close()

	downSrv := rmi.NewServer(nil)
	if err := downSrv.Register(relay.ObjectName("wan"), rel); err != nil {
		t.Fatal(err)
	}
	downAddr, err := downSrv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer downSrv.Close()
	downClient, err := rmi.Dial(downAddr.String(), "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer downClient.Close()

	const sid = "wire-sess"
	tree := aida.NewTree()
	h, err := tree.H1D("/h", "x", "", 50, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	tr := merge.NewTransport(sid, "w0", mgr)
	for r := 0; r < 12; r++ {
		for f := 0; f < 40; f++ {
			h.Fill(float64((r + f) % 50))
		}
		sendSnap(t, tr, tree)
		// Each sync decodes wire frames, republishes locally, and must
		// Release the pooled buffers; round-tripping every publish makes
		// any aliasing between pool reuse and the local copy visible.
		if err := rel.Subscribe(sid); err != nil {
			t.Fatal(err)
		}
		if err := rel.SyncNow(sid); err != nil {
			t.Fatal(err)
		}
	}

	want := frames(t, mgr, sid)
	// Downstream over the wire, twice, Releasing between polls: the
	// second decode reuses the first poll's returned buffers.
	for pass := 0; pass < 2; pass++ {
		var reply merge.PollReply
		if err := downClient.Call(relay.ObjectName("wan")+".Poll", merge.PollArgs{SessionID: sid, Full: true}, &reply); err != nil {
			t.Fatal(err)
		}
		got := make(map[string][]byte, len(reply.Entries))
		for _, e := range reply.Entries {
			st, err := e.State()
			if err != nil {
				t.Fatal(err)
			}
			buf, err := aida.AppendObjectState(nil, &st)
			if err != nil {
				t.Fatal(err)
			}
			got[e.Path] = buf
		}
		reply.Release()
		if !sameFrames(want, got) {
			t.Fatalf("pass %d: wire-served relay frames diverged from the origin", pass)
		}
	}
	if len(want) == 0 {
		t.Fatal("origin manager served no state")
	}
}

// TestRelayBackpressurePropagation walks a depth hint up a two-tier
// relay chain: the leaf reports congested downstream consumers, the
// hint rides the subscription polls hop by hop, and the owning
// manager's flush state turns Busy — then decays back to quiet once
// the congestion stops being reported.
func TestRelayBackpressurePropagation(t *testing.T) {
	mgr := merge.NewManager()
	const sid = "bp-sess"
	tree := aida.NewTree()
	h, err := tree.H1D("/h", "x", "", 10, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	tr := merge.NewTransport(sid, "w0", mgr)
	h.Fill(1)
	sendSnap(t, tr, tree)

	parent := relay.New("parent", mgr)
	parent.AutoSubscribe = true
	defer parent.Close()
	leaf := relay.New("leaf", parent)
	leaf.AutoSubscribe = true
	defer leaf.Close()
	if err := leaf.Subscribe(sid); err != nil {
		t.Fatal(err)
	}
	if err := leaf.SyncNow(sid); err != nil {
		t.Fatal(err)
	}

	// Quiet baseline: no hint, the owner reports no queue.
	fs, err := mgr.FlushState(sid, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Busy {
		t.Fatalf("owner busy before any congestion was reported: %+v", fs)
	}

	// The leaf's consumers back up; its next subscription poll carries
	// the hint to the parent, whose next poll carries it to the owner.
	leaf.ReportDownstream(4)
	if err := leaf.SyncNow(sid); err != nil {
		t.Fatal(err)
	}
	if err := parent.SyncNow(sid); err != nil {
		t.Fatal(err)
	}
	fs, err = mgr.FlushState(sid, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !fs.Busy || fs.QueueDepth == 0 {
		t.Fatalf("depth hint did not reach the owner: %+v", fs)
	}

	// The hint decays as it is read instead of latching Busy forever.
	for i := 0; i < 8; i++ {
		if _, err := mgr.FlushState(sid, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	fs, err = mgr.FlushState(sid, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Busy {
		t.Fatalf("depth hint never decayed: %+v", fs)
	}
}
