// Package rmi is the Remote Method Invocation layer of the reference
// implementation (the "thin black arrows" of the paper's Figure 2).
//
// The JAS client polls the AIDA manager over RMI, and engines push result
// snapshots the same way. The wire protocol is gob-encoded request/response
// frames over TCP. Like the original — "all of the RMI connections are
// insecure, but ... none of the RMI objects could be instantiated without
// first creating a secure session with the Web Service" (§3.7) — every call
// carries a session token that the server validates before dispatch.
//
// Calls are pipelined: one connection carries any number of concurrent
// in-flight requests. Each request is tagged with a sequence number; the
// server dispatches every request to its own goroutine and writes
// responses as they complete (possibly out of order), and a per-client
// reader goroutine matches each response back to its caller. A slow call
// therefore never head-of-line-blocks a fast one on the same connection
// — the property that lets N polling clients share one socket (ablation
// A10). WithSerializedCalls restores the old one-call-at-a-time behavior
// as the ablation baseline.
//
// Objects are plain Go values; any exported method with the signature
//
//	func (o *T) Method(args A, reply *B) error
//
// is callable as "ObjectName.Method".
package rmi

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ipa-grid/ipa/internal/obs"
)

// writerPool recycles per-connection write buffers: gob emits several
// small messages per call (header, body) and buffering coalesces them
// into one syscall per request/response instead of one per message.
var writerPool = sync.Pool{
	New: func() any { return bufio.NewWriterSize(nil, 8192) },
}

// TokenValidator authorizes a session token for an object/method pair.
// A nil validator on the server accepts everything (for tests only).
type TokenValidator func(token, object, method string) error

// ErrBadToken is the canonical rejection returned by validators.
var ErrBadToken = errors.New("rmi: invalid or expired session token")

// ErrClientClosed rejects calls on a closed client.
var ErrClientClosed = errors.New("rmi: client closed")

// request is the wire header preceding the gob-encoded argument.
// Trace is optional: a zero context encodes to nothing extra, and old
// gob decoders silently drop the field (gob struct evolution), so
// traced clients interoperate with pre-trace servers.
type request struct {
	Seq    uint64
	Object string
	Method string
	Token  string
	Trace  obs.TraceContext
}

// response is the wire header preceding the gob-encoded reply.
type response struct {
	Seq uint64
	Err string
}

type methodInfo struct {
	fn        reflect.Value
	argType   reflect.Type // value type
	replyType reflect.Type // pointer element type
	hist      *obs.Histogram
}

type objectInfo struct {
	methods map[string]*methodInfo
}

// Server exports objects over a listener.
type Server struct {
	mu       sync.RWMutex
	objects  map[string]*objectInfo
	validate TokenValidator

	// faults, when set, injects failures into dispatch (see SetFaults).
	faults atomic.Pointer[faultState]

	// gobOnly disables envelope v2 negotiation, simulating an old peer
	// so tests can exercise the client's gob fallback.
	gobOnly bool

	lnMu     sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
}

// NewServer creates a server; validate may be nil to accept all tokens.
func NewServer(validate TokenValidator) *Server {
	return &Server{
		objects:  make(map[string]*objectInfo),
		validate: validate,
		conns:    make(map[net.Conn]struct{}),
	}
}

var errType = reflect.TypeOf((*error)(nil)).Elem()

// Register exports obj's suitable methods under name.
// It returns an error if no method matches the required signature.
func (s *Server) Register(name string, obj any) error {
	if name == "" || obj == nil {
		return errors.New("rmi: empty registration")
	}
	t := reflect.TypeOf(obj)
	info := &objectInfo{methods: make(map[string]*methodInfo)}
	v := reflect.ValueOf(obj)
	for i := 0; i < t.NumMethod(); i++ {
		m := t.Method(i)
		mt := m.Type
		// Signature: receiver, args, *reply → error.
		if mt.NumIn() != 3 || mt.NumOut() != 1 || mt.Out(0) != errType {
			continue
		}
		if mt.In(2).Kind() != reflect.Pointer {
			continue
		}
		info.methods[m.Name] = &methodInfo{
			fn:        v.Method(i),
			argType:   mt.In(1),
			replyType: mt.In(2).Elem(),
			hist:      serverCallHist(m.Name),
		}
	}
	if len(info.methods) == 0 {
		return fmt.Errorf("rmi: %q has no methods of form Method(args T, reply *U) error", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.objects[name]; dup {
		return fmt.Errorf("rmi: object %q already registered", name)
	}
	s.objects[name] = info
	return nil
}

// Unregister withdraws an object; in-flight calls complete, later calls
// fail with "no object". Used when a merge shard is drained out of a
// live fabric.
func (s *Server) Unregister(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, name)
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) {
	s.lnMu.Lock()
	s.listener = ln
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.lnMu.Lock()
		if s.closed {
			s.lnMu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.lnMu.Unlock()
		go s.serveConn(conn)
	}
}

// ListenAndServe starts serving on addr and returns the bound address.
func (s *Server) ListenAndServe(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go s.Serve(ln)
	return ln.Addr(), nil
}

// Close stops the listener and all connections.
func (s *Server) Close() {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
}

// connWriter serializes response writes on one server connection: each
// response (header + body) is encoded and flushed as one atomic unit,
// so concurrently-completing handlers interleave at response, not gob
// message, granularity.
type connWriter struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	enc  *gob.Encoder // gob envelope

	// v2 envelope state: reusable header scratch plus the connection's
	// persistent payload gob stream (penc writes into pbuf, which ships
	// length-prefixed behind the binary header).
	v2      bool
	scratch []byte
	pbuf    bytes.Buffer
	penc    *gob.Encoder
}

// writeError sends an error response (with the placeholder body the
// gob envelope requires; the v2 envelope sends none).
func (w *connWriter) writeError(seq uint64, msg string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.v2 {
		w.writeErrorV2(seq, msg)
		return
	}
	if w.enc.Encode(&response{Seq: seq, Err: msg}) != nil {
		w.fail()
		return
	}
	if w.enc.Encode(struct{}{}) != nil {
		w.fail()
		return
	}
	if w.bw.Flush() != nil {
		w.fail()
	}
}

// writeReply sends a success response carrying reply's value.
func (w *connWriter) writeReply(seq uint64, reply reflect.Value) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.v2 {
		w.writeReplyV2(seq, reply)
		return
	}
	if w.enc.Encode(&response{Seq: seq}) != nil {
		w.fail()
		return
	}
	if w.enc.EncodeValue(reply) != nil {
		w.fail()
		return
	}
	if w.bw.Flush() != nil {
		w.fail()
	}
}

// fail closes the connection so the read loop (and the client) notice a
// half-written response instead of desynchronizing the stream. Caller
// holds w.mu.
func (w *connWriter) fail() { w.conn.Close() }

// maxInFlightPerConn bounds concurrently-dispatched requests on one
// connection: past it the read loop blocks, which TCP turns into
// backpressure on the client. Generous for pipelined pollers, but a
// runaway (or malicious) client can no longer grow server goroutines
// and queued replies without bound.
const maxInFlightPerConn = 256

func (s *Server) serveConn(conn net.Conn) {
	bw := writerPool.Get().(*bufio.Writer)
	bw.Reset(conn)
	w := &connWriter{conn: conn, bw: bw}
	var handlers sync.WaitGroup
	defer func() {
		conn.Close()
		// Handlers may still be writing; only pool the buffer after the
		// last one is done with it.
		handlers.Wait()
		bw.Reset(nil) // drop the conn reference before pooling
		writerPool.Put(bw)
		s.lnMu.Lock()
		delete(s.conns, conn)
		s.lnMu.Unlock()
	}()
	// Envelope negotiation: a v2 client leads with the magic before any
	// gob bytes; a gob client's first request header never matches it
	// (and is always ≥4 bytes, so the peek cannot stall a legacy peer).
	br := bufio.NewReaderSize(conn, 8192)
	if first, err := br.Peek(4); err == nil && !s.gobOnly && bytes.Equal(first, v2Magic[:]) {
		br.Discard(4)
		if _, err := conn.Write(v2Magic[:]); err != nil {
			return
		}
		w.v2 = true
		w.penc = gob.NewEncoder(&w.pbuf)
		serverConnsV2.Inc()
		s.serveV2(conn, br, w, &handlers)
		return
	}
	serverConnsGob.Inc()
	w.enc = gob.NewEncoder(bw)
	dec := gob.NewDecoder(br)
	slots := make(chan struct{}, maxInFlightPerConn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken connection
		}
		if !s.dispatch(&req, dec, w, &handlers, slots) {
			return
		}
	}
}

// dispatch resolves and launches one request. The argument is decoded
// inline — the read loop owns the stream — and the handler then runs in
// its own goroutine so a slow method never blocks the next request on
// the same connection. Returns false when the stream is broken.
func (s *Server) dispatch(req *request, dec *gob.Decoder, w *connWriter, handlers *sync.WaitGroup, slots chan struct{}) bool {
	fail := func(msg string) bool {
		// The argument still needs draining to keep the stream aligned;
		// decode into a throwaway interface.
		var discard any
		dec.Decode(&discard)
		w.writeError(req.Seq, msg)
		return true
	}
	s.mu.RLock()
	obj := s.objects[req.Object]
	s.mu.RUnlock()
	if obj == nil {
		return fail(fmt.Sprintf("rmi: no object %q", req.Object))
	}
	m := obj.methods[req.Method]
	if m == nil {
		return fail(fmt.Sprintf("rmi: %s has no method %q", req.Object, req.Method))
	}
	if s.validate != nil {
		if err := s.validate(req.Token, req.Object, req.Method); err != nil {
			return fail(err.Error())
		}
	}
	if fs := s.faults.Load(); fs != nil {
		switch fs.decide() {
		case faultError:
			faultErrors.Inc()
			return fail(ErrInjected)
		case faultDrop:
			// Sever without answering: the caller sees a broken
			// transport, like a crash mid-call.
			faultDrops.Inc()
			return false
		case faultDelay:
			faultDelays.Inc()
			time.Sleep(fs.f.Delay)
		}
	}
	argp := reflect.New(m.argType)
	if err := dec.DecodeValue(argp); err != nil {
		w.writeError(req.Seq, "rmi: decoding argument: "+err.Error())
		// The stream is desynchronized; drop the connection.
		return false
	}
	tc := req.Trace.NextHop()
	recoverTrace(argp.Interface(), tc)
	seq := req.Seq
	target := req.Object + "." + req.Method
	slots <- struct{}{} // blocks past maxInFlightPerConn
	handlers.Add(1)
	go func() {
		defer func() {
			<-slots
			handlers.Done()
		}()
		t0 := obs.Now()
		reply := reflect.New(m.replyType)
		out := m.fn.Call([]reflect.Value{argp.Elem(), reply})
		if !t0.IsZero() {
			d := time.Since(t0)
			m.hist.Observe(d.Seconds())
			obs.RecordSpan(tc, target, d)
		}
		if errv := out[0].Interface(); errv != nil {
			w.writeError(seq, errv.(error).Error())
			return
		}
		w.writeReply(seq, reply)
	}()
	return true
}

// RemoteError is an error string that crossed the wire.
type RemoteError string

func (e RemoteError) Error() string { return string(e) }

// pendingCall is one in-flight request awaiting its response.
type pendingCall struct {
	reply any
	done  chan error // buffered(1); receives nil, RemoteError, or a transport error
}

// clientConn is one live connection's pipelining state. A new one is
// built on every (re)connect so stale responses can never be matched
// against a fresh connection's calls.
type clientConn struct {
	conn net.Conn

	wmu sync.Mutex // serializes request writes (header+args+flush)
	bw  *bufio.Writer
	enc *gob.Encoder // gob envelope

	// v2 envelope write state (guarded by wmu): reusable header scratch
	// and the persistent payload gob stream.
	v2   bool
	hdr  []byte
	pbuf bytes.Buffer
	penc *gob.Encoder

	br  *bufio.Reader // owned by the read loop (v2 envelope)
	dec *gob.Decoder  // owned by the read loop (gob envelope)

	pmu     sync.Mutex
	seq     uint64
	pending map[uint64]*pendingCall
	broken  error
}

// register allocates a sequence number for pc, or reports the
// connection broken.
func (cc *clientConn) register(pc *pendingCall) (uint64, error) {
	cc.pmu.Lock()
	defer cc.pmu.Unlock()
	if cc.broken != nil {
		return 0, cc.broken
	}
	cc.seq++
	cc.pending[cc.seq] = pc
	return cc.seq, nil
}

// take removes and returns the pending call for seq (nil if none).
func (cc *clientConn) take(seq uint64) *pendingCall {
	cc.pmu.Lock()
	defer cc.pmu.Unlock()
	pc := cc.pending[seq]
	delete(cc.pending, seq)
	return pc
}

// fail marks the connection broken, closes it, and delivers err to
// every caller still waiting. Safe to call from both the read loop and
// writers; each pending call is delivered exactly once because removal
// from the map is what grants the right to send on done.
func (cc *clientConn) fail(err error) {
	cc.pmu.Lock()
	if cc.broken == nil {
		cc.broken = err
	}
	stranded := cc.pending
	cc.pending = make(map[uint64]*pendingCall)
	cc.pmu.Unlock()
	cc.conn.Close()
	for _, pc := range stranded {
		pc.done <- err
	}
}

// Client is an RMI client. It is safe for concurrent use: calls are
// pipelined over one connection — each request is sequence-tagged, a
// reader goroutine matches responses (which the server may send out of
// order) back to their callers, so concurrent Calls never wait on each
// other, only on their own replies.
type Client struct {
	mu         sync.Mutex // guards cc, token, closed
	cc         *clientConn
	token      string
	addr       string
	compressed bool
	closed     bool

	// serialized is the ablation baseline: one in-flight call at a time.
	serialized bool
	callMu     sync.Mutex // held per-call in serialized mode

	// gobEnv pins the gob envelope (ablation); v2Fallback records a
	// failed v2 negotiation so reconnects stop re-probing an old peer.
	gobEnv     bool
	v2Fallback bool

	// retry bounds dial attempts (see WithRetry); jrand is the jitter
	// stream, lazily seeded from the address.
	retry RetryPolicy
	jrand uint64
}

// Option configures a client connection at Dial time.
type Option func(*Client)

// WithCompressedFrames marks the connection as preferring compressed
// snapshot frames — the choice for WAN-deployed workers where snapshot
// bytes dominate the link. The RMI layer itself stays payload-agnostic:
// snapshot publishers consult Compressed() and select the compressed
// wire version on the states they send (decoders accept either).
func WithCompressedFrames() Option {
	return func(c *Client) { c.compressed = true }
}

// WithSerializedCalls restores the pre-pipelining behavior — at most
// one in-flight call per connection — retained as the A10 ablation
// baseline.
func WithSerializedCalls() Option {
	return func(c *Client) { c.serialized = true }
}

// WithGobEnvelope pins the connection to the original reflection-gob
// request/response framing instead of negotiating the binary v2
// envelope — the retained A13 ablation baseline.
func WithGobEnvelope() Option {
	return func(c *Client) { c.gobEnv = true }
}

// Compressed reports whether this connection prefers compressed frames.
func (c *Client) Compressed() bool { return c.compressed }

// BinaryEnvelope reports whether the live connection speaks the binary
// v2 envelope (false after a gob fallback or under WithGobEnvelope).
func (c *Client) BinaryEnvelope() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cc != nil && c.cc.v2
}

// Dial connects to an RMI server. token rides along on every call.
func Dial(addr, token string, opts ...Option) (*Client, error) {
	c := &Client{addr: addr, token: token}
	for _, opt := range opts {
		opt(c)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.connLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// connLocked returns the live connection, dialing a fresh one if
// needed (honoring the client's retry policy). Caller holds c.mu.
func (c *Client) connLocked() (*clientConn, error) {
	return c.connRetryLocked(nil)
}

// adoptConnLocked wraps a freshly dialed conn as the client's live
// connection — negotiating the v2 envelope unless pinned to gob, and
// redialing in gob mode when the peer turns out to be old — and starts
// its read loop. Caller holds c.mu.
func (c *Client) adoptConnLocked(conn net.Conn) (*clientConn, error) {
	useV2 := !c.gobEnv && !c.v2Fallback
	if useV2 {
		if err := clientNegotiateV2(conn); err != nil {
			// Old peer (or it died mid-handshake): remember the
			// downgrade — later reconnects skip the probe — and redial
			// speaking plain gob.
			conn.Close()
			c.v2Fallback = true
			conn2, derr := net.Dial("tcp", c.addr)
			if derr != nil {
				return nil, fmt.Errorf("rmi: gob fallback redial: %w", derr)
			}
			conn = conn2
			useV2 = false
		}
	}
	bw := bufio.NewWriterSize(conn, 8192)
	cc := &clientConn{
		conn: conn, bw: bw,
		pending: make(map[uint64]*pendingCall),
	}
	if useV2 {
		cc.v2 = true
		cc.penc = gob.NewEncoder(&cc.pbuf)
		cc.br = bufio.NewReaderSize(conn, 8192)
	} else {
		cc.enc = gob.NewEncoder(bw)
		cc.dec = gob.NewDecoder(conn)
	}
	c.cc = cc
	if cc.v2 {
		clientConnsV2.Inc()
		go c.readLoopV2(cc)
	} else {
		clientConnsGob.Inc()
		go c.readLoop(cc)
	}
	return cc, nil
}

// drop forgets cc if it is still the client's current connection, so
// the next Call dials afresh.
func (c *Client) drop(cc *clientConn) {
	c.mu.Lock()
	if c.cc == cc {
		c.cc = nil
	}
	c.mu.Unlock()
}

// readLoop owns cc's decoder: it reads response headers, matches them
// to pending calls by sequence number, and decodes each reply body
// directly into the caller's reply value (stream order: body always
// directly follows its header). Any decode failure poisons the
// connection — a gob stream cannot be resynchronized.
func (c *Client) readLoop(cc *clientConn) {
	for {
		var resp response
		if err := cc.dec.Decode(&resp); err != nil {
			c.drop(cc)
			cc.fail(fmt.Errorf("rmi: reading response: %w", err))
			return
		}
		pc := cc.take(resp.Seq)
		if pc == nil {
			// A response nobody asked for: the stream is untrustworthy.
			c.drop(cc)
			cc.fail(fmt.Errorf("rmi: unmatched response seq %d", resp.Seq))
			return
		}
		if resp.Err != "" {
			// Drain the placeholder body.
			var discard struct{}
			if err := cc.dec.Decode(&discard); err != nil {
				pc.done <- RemoteError(resp.Err)
				c.drop(cc)
				cc.fail(fmt.Errorf("rmi: reading response: %w", err))
				return
			}
			pc.done <- RemoteError(resp.Err)
			continue
		}
		if err := cc.dec.Decode(pc.reply); err != nil {
			err = fmt.Errorf("rmi: reading reply: %w", err)
			pc.done <- err
			c.drop(cc)
			cc.fail(err)
			return
		}
		pc.done <- nil
	}
}

// Close shuts the connection; in-flight calls fail with ErrClientClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	cc := c.cc
	c.cc = nil
	c.mu.Unlock()
	if cc != nil {
		cc.fail(ErrClientClosed)
	}
	return nil
}

// SetToken replaces the session token (after session renewal).
func (c *Client) SetToken(token string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.token = token
}

// Call invokes object.method with args, decoding the result into reply
// (a pointer). Remote failures come back as RemoteError. Safe for any
// number of concurrent callers; see the Client comment.
func (c *Client) Call(objectDotMethod string, args any, reply any) error {
	obj, method, ok := splitTarget(objectDotMethod)
	if !ok {
		return fmt.Errorf("rmi: bad call target %q (want Object.Method)", objectDotMethod)
	}
	if c.serialized {
		c.callMu.Lock()
		defer c.callMu.Unlock()
	}
	c.mu.Lock()
	cc, err := c.connLocked()
	token := c.token
	c.mu.Unlock()
	if err != nil {
		return err
	}
	t0 := obs.Now()
	tc := traceOf(args)
	pc := &pendingCall{reply: reply, done: make(chan error, 1)}
	seq, err := cc.register(pc)
	if err != nil {
		return err
	}
	cc.wmu.Lock()
	if cc.v2 {
		err = cc.writeRequestV2(seq, obj, method, token, tc, args)
	} else {
		req := request{Seq: seq, Object: obj, Method: method, Token: token, Trace: tc}
		err = cc.enc.Encode(&req)
		if err == nil {
			err = cc.enc.Encode(args)
		}
		if err == nil {
			err = cc.bw.Flush()
		}
	}
	cc.wmu.Unlock()
	if err != nil {
		err = fmt.Errorf("rmi: sending request: %w", err)
		c.drop(cc)
		cc.fail(err)
		// fail delivered err to our own pending call too; drain it so
		// the channel logic stays single-shot.
		<-pc.done
		return err
	}
	err = <-pc.done
	if !t0.IsZero() {
		callHist(objectDotMethod, method).ObserveSince(t0)
	}
	return err
}

func splitTarget(s string) (obj, method string, ok bool) {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return s[:i], s[i+1:], s[:i] != "" && s[i+1:] != ""
		}
	}
	return "", "", false
}

// ensure io is linked for interface docs (kept minimal).
var _ io.Closer = (*Client)(nil)
