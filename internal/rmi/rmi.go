// Package rmi is the Remote Method Invocation layer of the reference
// implementation (the "thin black arrows" of the paper's Figure 2).
//
// The JAS client polls the AIDA manager over RMI, and engines push result
// snapshots the same way. The wire protocol is gob-encoded request/response
// frames over TCP. Like the original — "all of the RMI connections are
// insecure, but ... none of the RMI objects could be instantiated without
// first creating a secure session with the Web Service" (§3.7) — every call
// carries a session token that the server validates before dispatch.
//
// Objects are plain Go values; any exported method with the signature
//
//	func (o *T) Method(args A, reply *B) error
//
// is callable as "ObjectName.Method".
package rmi

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"
)

// writerPool recycles per-connection write buffers: gob emits several
// small messages per call (header, body) and buffering coalesces them
// into one syscall per request/response instead of one per message.
var writerPool = sync.Pool{
	New: func() any { return bufio.NewWriterSize(nil, 8192) },
}

// TokenValidator authorizes a session token for an object/method pair.
// A nil validator on the server accepts everything (for tests only).
type TokenValidator func(token, object, method string) error

// ErrBadToken is the canonical rejection returned by validators.
var ErrBadToken = errors.New("rmi: invalid or expired session token")

// request is the wire header preceding the gob-encoded argument.
type request struct {
	Seq    uint64
	Object string
	Method string
	Token  string
}

// response is the wire header preceding the gob-encoded reply.
type response struct {
	Seq uint64
	Err string
}

type methodInfo struct {
	fn        reflect.Value
	argType   reflect.Type // value type
	replyType reflect.Type // pointer element type
}

type objectInfo struct {
	methods map[string]*methodInfo
}

// Server exports objects over a listener.
type Server struct {
	mu       sync.RWMutex
	objects  map[string]*objectInfo
	validate TokenValidator

	lnMu     sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
}

// NewServer creates a server; validate may be nil to accept all tokens.
func NewServer(validate TokenValidator) *Server {
	return &Server{
		objects:  make(map[string]*objectInfo),
		validate: validate,
		conns:    make(map[net.Conn]struct{}),
	}
}

var errType = reflect.TypeOf((*error)(nil)).Elem()

// Register exports obj's suitable methods under name.
// It returns an error if no method matches the required signature.
func (s *Server) Register(name string, obj any) error {
	if name == "" || obj == nil {
		return errors.New("rmi: empty registration")
	}
	t := reflect.TypeOf(obj)
	info := &objectInfo{methods: make(map[string]*methodInfo)}
	v := reflect.ValueOf(obj)
	for i := 0; i < t.NumMethod(); i++ {
		m := t.Method(i)
		mt := m.Type
		// Signature: receiver, args, *reply → error.
		if mt.NumIn() != 3 || mt.NumOut() != 1 || mt.Out(0) != errType {
			continue
		}
		if mt.In(2).Kind() != reflect.Pointer {
			continue
		}
		info.methods[m.Name] = &methodInfo{
			fn:        v.Method(i),
			argType:   mt.In(1),
			replyType: mt.In(2).Elem(),
		}
	}
	if len(info.methods) == 0 {
		return fmt.Errorf("rmi: %q has no methods of form Method(args T, reply *U) error", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.objects[name]; dup {
		return fmt.Errorf("rmi: object %q already registered", name)
	}
	s.objects[name] = info
	return nil
}

// Unregister withdraws an object; in-flight calls complete, later calls
// fail with "no object". Used when a merge shard is drained out of a
// live fabric.
func (s *Server) Unregister(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, name)
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) {
	s.lnMu.Lock()
	s.listener = ln
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.lnMu.Lock()
		if s.closed {
			s.lnMu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.lnMu.Unlock()
		go s.serveConn(conn)
	}
}

// ListenAndServe starts serving on addr and returns the bound address.
func (s *Server) ListenAndServe(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go s.Serve(ln)
	return ln.Addr(), nil
}

// Close stops the listener and all connections.
func (s *Server) Close() {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	bw := writerPool.Get().(*bufio.Writer)
	bw.Reset(conn)
	defer func() {
		conn.Close()
		bw.Reset(nil) // drop the conn reference before pooling
		writerPool.Put(bw)
		s.lnMu.Lock()
		delete(s.conns, conn)
		s.lnMu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(bw)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken connection
		}
		s.handle(&req, dec, enc)
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) handle(req *request, dec *gob.Decoder, enc *gob.Encoder) {
	fail := func(msg string) {
		// The argument still needs draining to keep the stream aligned;
		// decode into a throwaway interface.
		var discard any
		dec.Decode(&discard)
		enc.Encode(&response{Seq: req.Seq, Err: msg})
		enc.Encode(struct{}{})
	}
	s.mu.RLock()
	obj := s.objects[req.Object]
	s.mu.RUnlock()
	if obj == nil {
		fail(fmt.Sprintf("rmi: no object %q", req.Object))
		return
	}
	m := obj.methods[req.Method]
	if m == nil {
		fail(fmt.Sprintf("rmi: %s has no method %q", req.Object, req.Method))
		return
	}
	if s.validate != nil {
		if err := s.validate(req.Token, req.Object, req.Method); err != nil {
			fail(err.Error())
			return
		}
	}
	argp := reflect.New(m.argType)
	if err := dec.DecodeValue(argp); err != nil {
		enc.Encode(&response{Seq: req.Seq, Err: "rmi: decoding argument: " + err.Error()})
		enc.Encode(struct{}{})
		return
	}
	reply := reflect.New(m.replyType)
	out := m.fn.Call([]reflect.Value{argp.Elem(), reply})
	if errv := out[0].Interface(); errv != nil {
		enc.Encode(&response{Seq: req.Seq, Err: errv.(error).Error()})
		enc.Encode(struct{}{})
		return
	}
	if err := enc.Encode(&response{Seq: req.Seq}); err != nil {
		return
	}
	enc.EncodeValue(reply)
}

// RemoteError is an error string that crossed the wire.
type RemoteError string

func (e RemoteError) Error() string { return string(e) }

// Client is a synchronous RMI client. It is safe for concurrent use; calls
// are serialized over one connection (sufficient for the polling pattern).
type Client struct {
	mu         sync.Mutex
	conn       net.Conn
	bw         *bufio.Writer
	dec        *gob.Decoder
	enc        *gob.Encoder
	seq        uint64
	token      string
	addr       string
	compressed bool
}

// Option configures a client connection at Dial time.
type Option func(*Client)

// WithCompressedFrames marks the connection as preferring compressed
// snapshot frames — the choice for WAN-deployed workers where snapshot
// bytes dominate the link. The RMI layer itself stays payload-agnostic:
// snapshot publishers consult Compressed() and select the compressed
// wire version on the states they send (decoders accept either).
func WithCompressedFrames() Option {
	return func(c *Client) { c.compressed = true }
}

// Compressed reports whether this connection prefers compressed frames.
func (c *Client) Compressed() bool { return c.compressed }

// Dial connects to an RMI server. token rides along on every call.
func Dial(addr, token string, opts ...Option) (*Client, error) {
	c := &Client{addr: addr, token: token}
	for _, opt := range opts {
		opt(c)
	}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) connect() error {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("rmi: dialing %s: %w", c.addr, err)
	}
	c.conn = conn
	c.bw = bufio.NewWriterSize(conn, 8192)
	c.dec = gob.NewDecoder(conn)
	c.enc = gob.NewEncoder(c.bw)
	return nil
}

// Close shuts the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		return c.conn.Close()
	}
	return nil
}

// SetToken replaces the session token (after session renewal).
func (c *Client) SetToken(token string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.token = token
}

// Call invokes object.method with args, decoding the result into reply
// (a pointer). Remote failures come back as RemoteError.
func (c *Client) Call(objectDotMethod string, args any, reply any) error {
	obj, method, ok := splitTarget(objectDotMethod)
	if !ok {
		return fmt.Errorf("rmi: bad call target %q (want Object.Method)", objectDotMethod)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		if err := c.connect(); err != nil {
			return err
		}
	}
	c.seq++
	req := request{Seq: c.seq, Object: obj, Method: method, Token: c.token}
	if err := c.enc.Encode(&req); err != nil {
		c.reset()
		return fmt.Errorf("rmi: sending request: %w", err)
	}
	if err := c.enc.Encode(args); err != nil {
		c.reset()
		return fmt.Errorf("rmi: sending args: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		c.reset()
		return fmt.Errorf("rmi: sending request: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		c.reset()
		return fmt.Errorf("rmi: reading response: %w", err)
	}
	if resp.Err != "" {
		// Drain the placeholder body.
		var discard struct{}
		c.dec.Decode(&discard)
		return RemoteError(resp.Err)
	}
	if err := c.dec.Decode(reply); err != nil {
		c.reset()
		return fmt.Errorf("rmi: reading reply: %w", err)
	}
	return nil
}

func (c *Client) reset() {
	if c.conn != nil {
		c.conn.Close()
	}
	c.conn = nil
	c.bw = nil
	c.dec, c.enc = nil, nil
}

func splitTarget(s string) (obj, method string, ok bool) {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return s[:i], s[i+1:], s[:i] != "" && s[i+1:] != ""
		}
	}
	return "", "", false
}

// ensure io is linked for interface docs (kept minimal).
var _ io.Closer = (*Client)(nil)
