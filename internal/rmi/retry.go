// Dial retry: bounded exponential backoff with deterministic jitter,
// replacing the one-shot connect on paths that must survive transient
// faults — a replica shard restarting, a manager briefly partitioned.
// Off by default (Attempts <= 1 keeps the old single-try behavior);
// opted into per client via WithRetry.

package rmi

import (
	"context"
	"fmt"
	"net"
	"time"
)

// RetryPolicy bounds reconnect attempts for one client.
type RetryPolicy struct {
	// Attempts is the total connect attempts per (re)dial (<=1 = one
	// try, no retry — the default).
	Attempts int
	// Base is the first backoff delay (default 50ms); each further
	// attempt doubles it.
	Base time.Duration
	// Max caps the backoff (default 2s).
	Max time.Duration
}

// WithRetry makes the client retry failed dials — both the initial
// connect and every transparent re-dial after a broken connection —
// with exponential backoff and ±20% jitter (seeded from the address,
// so a fleet of clients retrying the same restarted shard does not
// reconnect in lockstep).
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p }
}

// DialContext is Dial with cancellation: the context bounds the initial
// connect, including its retry backoff waits.
func DialContext(ctx context.Context, addr, token string, opts ...Option) (*Client, error) {
	c := &Client{addr: addr, token: token}
	for _, opt := range opts {
		opt(c)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.connRetryLocked(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

// connRetryLocked dials with the client's retry policy. Caller holds
// c.mu; the lock is released around backoff waits so Close (and other
// callers) are never blocked behind a retrying dial — after each wait
// the client state is re-checked, and a connection another caller
// established meanwhile is reused.
func (c *Client) connRetryLocked(ctx context.Context) (*clientConn, error) {
	if c.closed {
		return nil, ErrClientClosed
	}
	if c.cc != nil {
		return c.cc, nil
	}
	attempts := c.retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	base := c.retry.Base
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxd := c.retry.Max
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			dialRetries.Inc()
			delay := base << uint(attempt-1)
			if delay > maxd {
				delay = maxd
			}
			delay = c.jitterLocked(delay)
			c.mu.Unlock()
			err := sleepCtx(ctx, delay)
			c.mu.Lock()
			if err != nil {
				return nil, err
			}
			if c.closed {
				return nil, ErrClientClosed
			}
			if c.cc != nil {
				return c.cc, nil
			}
		}
		var conn net.Conn
		var err error
		if ctx != nil {
			var d net.Dialer
			conn, err = d.DialContext(ctx, "tcp", c.addr)
		} else {
			conn, err = net.Dial("tcp", c.addr)
		}
		if err == nil {
			cc, aerr := c.adoptConnLocked(conn)
			if aerr == nil {
				return cc, nil
			}
			// Adoption only fails on the gob-fallback redial; retry it
			// like any other dial failure.
			err = aerr
		}
		lastErr = err
		if ctx != nil && ctx.Err() != nil {
			break
		}
	}
	return nil, fmt.Errorf("rmi: dialing %s: %w", c.addr, lastErr)
}

// jitterLocked draws delay ±20% from a per-client xorshift stream
// seeded by the address. Caller holds c.mu.
func (c *Client) jitterLocked(delay time.Duration) time.Duration {
	if c.jrand == 0 {
		h := uint64(14695981039346656037) // FNV-1a offset basis
		for i := 0; i < len(c.addr); i++ {
			h = (h ^ uint64(c.addr[i])) * 1099511628211
		}
		c.jrand = h | 1
	}
	c.jrand ^= c.jrand << 13
	c.jrand ^= c.jrand >> 7
	c.jrand ^= c.jrand << 17
	frac := float64(c.jrand%1024)/1024*0.4 - 0.2
	return time.Duration((1 + frac) * float64(delay))
}

// sleepCtx sleeps, cut short by ctx (nil ctx = plain sleep).
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
