// Envelope v2: a hand-rolled length-prefixed binary header replacing
// the reflection-gob request/response framing. The payloads (args and
// replies) still ride a persistent per-connection gob stream — the big
// states inside them already use the aida binary codec via their
// GobEncode hooks — but the per-call header shrinks from a reflected
// struct encode to a dozen appended bytes, and every payload is length
// prefixed, so error responses need no placeholder body and a receiver
// can skip a frame without decoding it.
//
// Negotiation: a dialing client sends the 4-byte magic "IPA2" before
// anything else; a v2-capable server peeks it, echoes it back, and
// both sides switch to binary framing. An old peer chokes on the magic
// (its gob decoder kills the connection) or never acks, so the client
// falls back: it redials speaking plain gob and remembers the
// downgrade for later reconnects. WithGobEnvelope skips negotiation
// entirely — the retained ablation baseline (A13).
//
// v2 frame layout (uvarint = unsigned varint, str = uvarint len + bytes):
//
//	request:  'Q' seq(uvarint) object(str) method(str) token(str)
//	          tflag(1B; 0=untraced 1=traced)
//	          tflag 1: traceID(8B BE) spanID(8B BE) hop(uvarint)
//	          n(uvarint) payload(n)
//	response: 'S' seq(uvarint) status(1B; 0=ok 1=err)
//	          status 1: msg(str)          — no payload
//	          status 0: n(uvarint) payload(n)
//
// The trace block is this repo's only v2 revision so far; both ends of
// a v2 connection ship together, so no flag negotiation is needed (gob
// peers never see v2 frames — they carry the trace as an optional gob
// struct field instead).
package rmi

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"
	"time"

	"github.com/ipa-grid/ipa/internal/obs"
)

var v2Magic = [4]byte{'I', 'P', 'A', '2'}

const (
	frameRequest = 'Q'
	frameReply   = 'S'

	// maxHeaderString bounds object/method/token/error strings; a
	// corrupt length must not drive an allocation.
	maxHeaderString = 1 << 16
	// maxPayloadBytes bounds one call's payload.
	maxPayloadBytes = 1 << 30
	// maxPooledWire caps the per-connection reusable payload read
	// buffer: a one-off giant frame must not pin memory for the
	// connection's lifetime (same rule as the aida encode pools).
	maxPooledWire = 1 << 20
)

// v2AckTimeout bounds the wait for the server's negotiation ack. An
// old gob peer usually kills the connection instead (instant error);
// the deadline covers peers that merely go silent.
var v2AckTimeout = 3 * time.Second

// clientNegotiateV2 runs the dial-time handshake on a fresh
// connection. Any failure means "old peer" to the caller.
func clientNegotiateV2(conn net.Conn) error {
	if _, err := conn.Write(v2Magic[:]); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(v2AckTimeout))
	var ack [4]byte
	_, err := io.ReadFull(conn, ack[:])
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		return err
	}
	if ack != v2Magic {
		return errors.New("rmi: bad envelope ack")
	}
	return nil
}

// byteFeeder hands a persistent gob decoder exactly one frame's
// payload at a time. It implements io.ByteReader so gob does not wrap
// it in a bufio.Reader (which could hoard bytes across frames).
type byteFeeder struct{ b []byte }

func (f *byteFeeder) set(b []byte) { f.b = b }

func (f *byteFeeder) remaining() int { return len(f.b) }

func (f *byteFeeder) Read(p []byte) (int, error) {
	if len(f.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, f.b)
	f.b = f.b[n:]
	return n, nil
}

func (f *byteFeeder) ReadByte() (byte, error) {
	if len(f.b) == 0 {
		return 0, io.EOF
	}
	c := f.b[0]
	f.b = f.b[1:]
	return c, nil
}

func appendWireString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readWireString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > maxHeaderString {
		return "", fmt.Errorf("rmi: header string of %d bytes", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// readPayload reads one length-prefixed payload into a reusable
// buffer, growing (and retaining, up to maxPooledWire) as needed.
func readPayload(br *bufio.Reader, buf *[]byte) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > maxPayloadBytes {
		return nil, fmt.Errorf("rmi: payload of %d bytes", n)
	}
	var b []byte
	if int(n) <= cap(*buf) {
		b = (*buf)[:n]
	} else {
		b = make([]byte, n)
		if n <= maxPooledWire {
			*buf = b
		}
	}
	if _, err := io.ReadFull(br, b); err != nil {
		return nil, err
	}
	return b, nil
}

// --- server side ---

// serveV2 is the binary-envelope read loop: the v2 counterpart of the
// gob loop in serveConn. Argument decode stays inline (the loop owns
// the payload gob stream); handlers run in their own goroutines
// exactly like the gob path.
func (s *Server) serveV2(conn net.Conn, br *bufio.Reader, w *connWriter, handlers *sync.WaitGroup) {
	slots := make(chan struct{}, maxInFlightPerConn)
	feed := &byteFeeder{}
	pdec := gob.NewDecoder(feed)
	var payload []byte
	for {
		t, err := br.ReadByte()
		if err != nil || t != frameRequest {
			return
		}
		seq, err := binary.ReadUvarint(br)
		if err != nil {
			return
		}
		object, err := readWireString(br)
		if err != nil {
			return
		}
		method, err := readWireString(br)
		if err != nil {
			return
		}
		token, err := readWireString(br)
		if err != nil {
			return
		}
		tc, err := readTraceBlock(br)
		if err != nil {
			return
		}
		body, err := readPayload(br, &payload)
		if err != nil {
			return
		}
		if !s.dispatchV2(seq, object, method, token, tc, body, feed, pdec, w, handlers, slots) {
			return
		}
	}
}

// dispatchV2 resolves and launches one v2 request. The payload is
// already consumed off the wire, so unlike the gob path a rejected
// call needs no drain and cannot desynchronize the stream. Returns
// false when the connection must drop (payload gob state poisoned, or
// an injected crash).
func (s *Server) dispatchV2(seq uint64, object, method, token string, trace obs.TraceContext, payload []byte,
	feed *byteFeeder, pdec *gob.Decoder, w *connWriter, handlers *sync.WaitGroup, slots chan struct{}) bool {
	fail := func(msg string) bool {
		// The payload still carries this call's share of the persistent
		// gob stream's type definitions; run it through the decoder (into
		// a throwaway, like the gob path's drain) so later calls reusing
		// those types still decode.
		feed.set(payload)
		var discard any
		pdec.Decode(&discard)
		ok := feed.remaining() == 0
		feed.set(nil)
		w.writeError(seq, msg)
		return ok
	}
	s.mu.RLock()
	obj := s.objects[object]
	s.mu.RUnlock()
	if obj == nil {
		return fail(fmt.Sprintf("rmi: no object %q", object))
	}
	m := obj.methods[method]
	if m == nil {
		return fail(fmt.Sprintf("rmi: %s has no method %q", object, method))
	}
	if s.validate != nil {
		if err := s.validate(token, object, method); err != nil {
			return fail(err.Error())
		}
	}
	if fs := s.faults.Load(); fs != nil {
		switch fs.decide() {
		case faultError:
			faultErrors.Inc()
			return fail(ErrInjected)
		case faultDrop:
			faultDrops.Inc()
			return false
		case faultDelay:
			faultDelays.Inc()
			time.Sleep(fs.f.Delay)
		}
	}
	feed.set(payload)
	argp := reflect.New(m.argType)
	if err := pdec.DecodeValue(argp); err != nil || feed.remaining() != 0 {
		// The persistent payload gob stream may hold partial type state;
		// drop the connection rather than trust it (same rule as gob
		// envelope desync).
		w.writeError(seq, "rmi: decoding argument")
		return false
	}
	tc := trace.NextHop()
	recoverTrace(argp.Interface(), tc)
	target := object + "." + method
	slots <- struct{}{} // blocks past maxInFlightPerConn
	handlers.Add(1)
	go func() {
		defer func() {
			<-slots
			handlers.Done()
		}()
		t0 := obs.Now()
		reply := reflect.New(m.replyType)
		out := m.fn.Call([]reflect.Value{argp.Elem(), reply})
		if !t0.IsZero() {
			d := time.Since(t0)
			m.hist.Observe(d.Seconds())
			obs.RecordSpan(tc, target, d)
		}
		if errv := out[0].Interface(); errv != nil {
			w.writeError(seq, errv.(error).Error())
			return
		}
		w.writeReply(seq, reply)
	}()
	return true
}

// readTraceBlock parses the optional request trace block: one flag
// byte, then (when set) two big-endian 8-byte IDs and a hop uvarint.
func readTraceBlock(br *bufio.Reader) (obs.TraceContext, error) {
	var tc obs.TraceContext
	flag, err := br.ReadByte()
	if err != nil {
		return tc, err
	}
	if flag == 0 {
		return tc, nil
	}
	if flag != 1 {
		return tc, fmt.Errorf("rmi: bad trace flag 0x%02x", flag)
	}
	var idb [16]byte
	if _, err := io.ReadFull(br, idb[:]); err != nil {
		return tc, err
	}
	tc.TraceID = binary.BigEndian.Uint64(idb[:8])
	tc.SpanID = binary.BigEndian.Uint64(idb[8:])
	hop, err := binary.ReadUvarint(br)
	if err != nil {
		return tc, err
	}
	tc.Hop = uint32(hop)
	return tc, nil
}

// writeErrorV2 emits an error response frame. Caller holds w.mu.
func (w *connWriter) writeErrorV2(seq uint64, msg string) {
	hdr := w.scratch[:0]
	hdr = append(hdr, frameReply)
	hdr = binary.AppendUvarint(hdr, seq)
	hdr = append(hdr, 1)
	hdr = appendWireString(hdr, msg)
	w.scratch = hdr
	if _, err := w.bw.Write(hdr); err != nil {
		w.fail()
		return
	}
	if w.bw.Flush() != nil {
		w.fail()
	}
}

// writeReplyV2 emits a success response frame: the reply value is gob
// encoded into the connection's persistent payload stream (scratch
// buffer), then shipped behind a binary header with its length.
// Caller holds w.mu.
func (w *connWriter) writeReplyV2(seq uint64, reply reflect.Value) {
	w.pbuf.Reset()
	if w.penc.EncodeValue(reply) != nil {
		w.fail()
		return
	}
	hdr := w.scratch[:0]
	hdr = append(hdr, frameReply)
	hdr = binary.AppendUvarint(hdr, seq)
	hdr = append(hdr, 0)
	hdr = binary.AppendUvarint(hdr, uint64(w.pbuf.Len()))
	w.scratch = hdr
	if _, err := w.bw.Write(hdr); err != nil {
		w.fail()
		return
	}
	if _, err := w.bw.Write(w.pbuf.Bytes()); err != nil {
		w.fail()
		return
	}
	if w.bw.Flush() != nil {
		w.fail()
	}
}

// --- client side ---

// writeRequestV2 encodes args into the connection's persistent payload
// gob stream and ships them behind a binary request header. Caller
// holds cc.wmu.
func (cc *clientConn) writeRequestV2(seq uint64, object, method, token string, trace obs.TraceContext, args any) error {
	cc.pbuf.Reset()
	if err := cc.penc.Encode(args); err != nil {
		return err
	}
	hdr := cc.hdr[:0]
	hdr = append(hdr, frameRequest)
	hdr = binary.AppendUvarint(hdr, seq)
	hdr = appendWireString(hdr, object)
	hdr = appendWireString(hdr, method)
	hdr = appendWireString(hdr, token)
	if trace.Valid() {
		hdr = append(hdr, 1)
		hdr = binary.BigEndian.AppendUint64(hdr, trace.TraceID)
		hdr = binary.BigEndian.AppendUint64(hdr, trace.SpanID)
		hdr = binary.AppendUvarint(hdr, uint64(trace.Hop))
	} else {
		hdr = append(hdr, 0)
	}
	hdr = binary.AppendUvarint(hdr, uint64(cc.pbuf.Len()))
	cc.hdr = hdr
	if _, err := cc.bw.Write(hdr); err != nil {
		return err
	}
	if _, err := cc.bw.Write(cc.pbuf.Bytes()); err != nil {
		return err
	}
	return cc.bw.Flush()
}

// readLoopV2 is the binary-envelope response loop: headers are
// hand-parsed, reply payloads decode through the connection's
// persistent gob stream straight into the caller's reply value — same
// matching and poisoning discipline as the gob read loop.
func (c *Client) readLoopV2(cc *clientConn) {
	feed := &byteFeeder{}
	pdec := gob.NewDecoder(feed)
	var payload []byte
	die := func(err error) {
		c.drop(cc)
		cc.fail(err)
	}
	for {
		t, err := cc.br.ReadByte()
		if err != nil {
			die(fmt.Errorf("rmi: reading response: %w", err))
			return
		}
		if t != frameReply {
			die(fmt.Errorf("rmi: bad response frame 0x%02x", t))
			return
		}
		seq, err := binary.ReadUvarint(cc.br)
		if err != nil {
			die(fmt.Errorf("rmi: reading response: %w", err))
			return
		}
		status, err := cc.br.ReadByte()
		if err != nil {
			die(fmt.Errorf("rmi: reading response: %w", err))
			return
		}
		if status != 0 {
			msg, err := readWireString(cc.br)
			if err != nil {
				die(fmt.Errorf("rmi: reading response: %w", err))
				return
			}
			pc := cc.take(seq)
			if pc == nil {
				die(fmt.Errorf("rmi: unmatched response seq %d", seq))
				return
			}
			pc.done <- RemoteError(msg)
			continue
		}
		body, err := readPayload(cc.br, &payload)
		if err != nil {
			die(fmt.Errorf("rmi: reading response: %w", err))
			return
		}
		pc := cc.take(seq)
		if pc == nil {
			die(fmt.Errorf("rmi: unmatched response seq %d", seq))
			return
		}
		feed.set(body)
		if err := pdec.Decode(pc.reply); err != nil || feed.remaining() != 0 {
			if err == nil {
				err = errors.New("rmi: reply payload not fully consumed")
			}
			err = fmt.Errorf("rmi: reading reply: %w", err)
			pc.done <- err
			die(err)
			return
		}
		pc.done <- nil
	}
}
