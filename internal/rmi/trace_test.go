package rmi

import (
	"testing"

	"github.com/ipa-grid/ipa/internal/obs"
)

// traceArgs implements obs.Carrier/Setter so the client lifts the
// context into the envelope and the server injects it back.
type traceArgs struct {
	Msg   string
	Trace obs.TraceContext
}

func (a traceArgs) TraceCtx() obs.TraceContext      { return a.Trace }
func (a *traceArgs) SetTraceCtx(t obs.TraceContext) { a.Trace = t }

type traceReply struct {
	Msg   string
	Trace obs.TraceContext
}

type traceService struct{}

// Echo reports the trace context the server-side dispatch recovered.
func (s *traceService) Echo(args traceArgs, reply *traceReply) error {
	reply.Msg = args.Msg
	reply.Trace = args.Trace
	return nil
}

func startTraceServer(t *testing.T) string {
	t.Helper()
	s := NewServer(nil)
	if err := s.Register("Trace", &traceService{}); err != nil {
		t.Fatal(err)
	}
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return addr.String()
}

// testTracePropagation drives one traced and one untraced call and
// checks the server saw a hop-advanced copy of the same trace.
func testTracePropagation(t *testing.T, opts ...Option) {
	addr := startTraceServer(t)
	c, err := Dial(addr, "tok", opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sent := obs.NewTrace()
	if !sent.Valid() {
		t.Fatal("NewTrace returned an untraced context with recording enabled")
	}
	var reply traceReply
	if err := c.Call("Trace.Echo", traceArgs{Msg: "hi", Trace: sent}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Msg != "hi" {
		t.Fatalf("payload corrupted: %+v", reply)
	}
	if reply.Trace.TraceID != sent.TraceID {
		t.Errorf("server trace ID %x, want %x", reply.Trace.TraceID, sent.TraceID)
	}
	if reply.Trace.Hop != sent.Hop+1 {
		t.Errorf("server hop = %d, want %d", reply.Trace.Hop, sent.Hop+1)
	}
	if reply.Trace.SpanID == sent.SpanID {
		t.Errorf("server span ID not re-minted across the hop")
	}

	// An untraced call must arrive untraced: the envelope's empty trace
	// block must not invent a context.
	var bare traceReply
	if err := c.Call("Trace.Echo", traceArgs{Msg: "bare"}, &bare); err != nil {
		t.Fatal(err)
	}
	if bare.Trace.Valid() {
		t.Errorf("untraced call arrived traced: %+v", bare.Trace)
	}
}

func TestTracePropagationV2(t *testing.T) { testTracePropagation(t) }

func TestTracePropagationGob(t *testing.T) { testTracePropagation(t, WithGobEnvelope()) }

// TestTraceDisabledCostsNothing: with recording ablated, the client
// must send the untraced (zero) context.
func TestTraceDisabledCostsNothing(t *testing.T) {
	defer obs.SetDisabled(false)
	obs.SetDisabled(true)
	addr := startTraceServer(t)
	c, err := Dial(addr, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var reply traceReply
	if err := c.Call("Trace.Echo", traceArgs{Msg: "off", Trace: obs.NewTrace()}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Trace.Valid() {
		t.Errorf("disabled tracing still propagated a context: %+v", reply.Trace)
	}
}
