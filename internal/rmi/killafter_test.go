package rmi

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDialContextCancelMidBackoffWait pins the sharper contract behind
// TestDialContextCancelCutsBackoff: the cancellation arrives while the
// retry loop is provably *inside* a backoff sleep (the first connect to
// a dead port fails in microseconds; the policy then owes a 10s wait),
// and the dial must return the context's own error immediately — not a
// wrapped dial failure, and not after the wait runs out.
func TestDialContextCancelMidBackoffWait(t *testing.T) {
	addr := reserveAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(60 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := DialContext(ctx, addr, "tok",
		WithRetry(RetryPolicy{Attempts: 5, Base: 10 * time.Second, Max: 30 * time.Second}))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("canceled dial succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("cancel mid-backoff returned after %v, want well under the 10s wait", elapsed)
	}
}

// TestKillAfterSeversFromExactPoint: the armed crash must be exact —
// the first KillAfter dispatched calls answer normally, and from the
// next call on the server is dead to everyone: in-flight connections
// see their transport severed (not a RemoteError reply), and even a
// brand-new client (the handshake is not a dispatched call) loses its
// first dispatch the same way. This is the primitive chaos schedules
// lean on to kill a shard mid-failover instead of at a tidy boundary.
func TestKillAfterSeversFromExactPoint(t *testing.T) {
	s, addr := startServer(t, nil)
	s.SetFaults(&Faults{KillAfter: 3})
	c, err := Dial(addr, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 1; i <= 3; i++ {
		var sum float64
		if err := c.Call("Calc.Add", addArgs{1, 2}, &sum); err != nil || sum != 3 {
			t.Fatalf("call %d before the fuse burned: sum=%v err=%v", i, sum, err)
		}
	}
	err = c.Call("Calc.Add", addArgs{1, 2}, new(float64))
	if err == nil {
		t.Fatal("call past the kill point succeeded")
	}
	if _, ok := err.(RemoteError); ok {
		t.Fatalf("kill surfaced as a RemoteError (%v), want a severed transport", err)
	}
	// Dead means dead: a fresh connection handshakes fine but its first
	// dispatched call is severed too — the counter is the server's, not
	// the connection's.
	c2, err := Dial(addr, "tok")
	if err != nil {
		t.Fatalf("handshake on the killed server failed outright: %v", err)
	}
	defer c2.Close()
	if err := c2.Call("Calc.Add", addArgs{1, 2}, new(float64)); err == nil {
		t.Fatal("fresh connection called through the armed kill")
	}
}
