// Fault injection: a server can be told to error, drop, or delay a
// configurable fraction of dispatched calls, driven by a seeded
// deterministic stream — so failover and retry tests exercise real
// partial failures (lost replies, hung calls, broken connections)
// reproducibly instead of only clean process kills.

package rmi

import (
	"sync/atomic"
	"time"
)

// Faults configures injected failures on a server. Fractions are in
// [0,1] and evaluated per dispatched call, in order: error, then drop,
// then delay (one fault per call).
type Faults struct {
	// Seed drives the deterministic per-call stream; the same seed and
	// call order reproduce the same faults.
	Seed uint64
	// ErrorFrac answers the call with an injected RemoteError.
	ErrorFrac float64
	// DropFrac severs the connection without answering — the caller
	// sees a broken transport, exactly like a mid-call crash.
	DropFrac float64
	// DelayFrac stalls the connection's read loop for Delay before the
	// call proceeds — pipelined requests behind it queue, like a
	// congested or flaky link.
	DelayFrac float64
	Delay     time.Duration
	// KillAfter, when > 0, arms a deterministic crash: the first
	// KillAfter dispatched calls proceed normally (modulo the fractions
	// above), then every later call severs its connection unanswered —
	// the server is "dead" from a precise point in the call stream on.
	// Chaos schedules use this to kill a shard mid-failover or
	// mid-handoff instead of at a tidy boundary.
	KillAfter uint64
}

// ErrInjected is the message injected error replies carry.
const ErrInjected = "rmi: injected fault"

type faultKind int

const (
	faultNone faultKind = iota
	faultError
	faultDrop
	faultDelay
)

// faultState pairs the config with the call counter feeding the stream.
type faultState struct {
	f Faults
	n atomic.Uint64
}

// decide rolls the next value of the seeded stream into a fault kind.
func (fs *faultState) decide() faultKind {
	n := fs.n.Add(1)
	if fs.f.KillAfter > 0 && n > fs.f.KillAfter {
		return faultDrop // armed kill: dead from this point in the stream on
	}
	// splitmix64 over seed+counter: stateless, race-free, reproducible.
	x := fs.f.Seed + 0x9e3779b97f4a7c15*n
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	r := float64(x>>11) / float64(1<<53)
	switch {
	case r < fs.f.ErrorFrac:
		return faultError
	case r < fs.f.ErrorFrac+fs.f.DropFrac:
		return faultDrop
	case r < fs.f.ErrorFrac+fs.f.DropFrac+fs.f.DelayFrac:
		return faultDelay
	default:
		return faultNone
	}
}

// SetFaults installs (or, with nil, clears) fault injection. Takes
// effect on the next dispatched call; connections stay up.
func (s *Server) SetFaults(f *Faults) {
	if f == nil {
		s.faults.Store(nil)
		return
	}
	s.faults.Store(&faultState{f: *f})
}
