package rmi

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// calcService is a test object.
type calcService struct {
	mu    sync.Mutex
	calls int
}

type addArgs struct{ A, B float64 }

func (c *calcService) Add(args addArgs, reply *float64) error {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	*reply = args.A + args.B
	return nil
}

func (c *calcService) Fail(args struct{}, reply *string) error {
	return errors.New("deliberate failure")
}

// unsuitable methods must be skipped, not break registration.
func (c *calcService) NotRemote() int { return 0 }

type echoService struct{}

type echoArgs struct {
	Msg  string
	Nums []int
	Map  map[string]string
}

func (e *echoService) Echo(args echoArgs, reply *echoArgs) error {
	*reply = args
	return nil
}

func startServer(t *testing.T, validate TokenValidator) (*Server, string) {
	t.Helper()
	s := NewServer(validate)
	if err := s.Register("Calc", &calcService{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("Echo", &echoService{}); err != nil {
		t.Fatal(err)
	}
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, addr.String()
}

func TestBasicCall(t *testing.T) {
	_, addr := startServer(t, nil)
	c, err := Dial(addr, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var sum float64
	if err := c.Call("Calc.Add", addArgs{2, 3}, &sum); err != nil {
		t.Fatal(err)
	}
	if sum != 5 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestComplexTypesRoundTrip(t *testing.T) {
	_, addr := startServer(t, nil)
	c, _ := Dial(addr, "tok")
	defer c.Close()
	in := echoArgs{Msg: "hello", Nums: []int{1, 2, 3}, Map: map[string]string{"a": "b"}}
	var out echoArgs
	if err := c.Call("Echo.Echo", in, &out); err != nil {
		t.Fatal(err)
	}
	if out.Msg != in.Msg || len(out.Nums) != 3 || out.Map["a"] != "b" {
		t.Fatalf("echo = %+v", out)
	}
}

func TestRemoteErrorPropagates(t *testing.T) {
	_, addr := startServer(t, nil)
	c, _ := Dial(addr, "tok")
	defer c.Close()
	var out string
	err := c.Call("Calc.Fail", struct{}{}, &out)
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("err = %v", err)
	}
	if _, ok := err.(RemoteError); !ok {
		t.Fatalf("error type %T, want RemoteError", err)
	}
	// The connection must remain usable after a remote error.
	var sum float64
	if err := c.Call("Calc.Add", addArgs{1, 1}, &sum); err != nil || sum != 2 {
		t.Fatalf("call after error: %v %v", sum, err)
	}
}

func TestUnknownObjectAndMethod(t *testing.T) {
	_, addr := startServer(t, nil)
	c, _ := Dial(addr, "tok")
	defer c.Close()
	var out float64
	if err := c.Call("Nope.Add", addArgs{1, 2}, &out); err == nil {
		t.Fatal("unknown object accepted")
	}
	if err := c.Call("Calc.Nope", addArgs{1, 2}, &out); err == nil {
		t.Fatal("unknown method accepted")
	}
	// Still aligned afterwards.
	if err := c.Call("Calc.Add", addArgs{1, 2}, &out); err != nil || out != 3 {
		t.Fatalf("stream misaligned after failures: %v %v", out, err)
	}
}

func TestBadCallTarget(t *testing.T) {
	_, addr := startServer(t, nil)
	c, _ := Dial(addr, "tok")
	defer c.Close()
	var out float64
	if err := c.Call("NoDotHere", addArgs{}, &out); err == nil {
		t.Fatal("target without dot accepted")
	}
}

func TestTokenValidation(t *testing.T) {
	validate := func(token, object, method string) error {
		if token != "valid-session" {
			return ErrBadToken
		}
		return nil
	}
	_, addr := startServer(t, validate)

	good, _ := Dial(addr, "valid-session")
	defer good.Close()
	var sum float64
	if err := good.Call("Calc.Add", addArgs{4, 5}, &sum); err != nil || sum != 9 {
		t.Fatalf("valid token rejected: %v", err)
	}

	bad, _ := Dial(addr, "stolen")
	defer bad.Close()
	err := bad.Call("Calc.Add", addArgs{4, 5}, &sum)
	if err == nil || !strings.Contains(err.Error(), "invalid or expired") {
		t.Fatalf("invalid token accepted: %v", err)
	}
	// SetToken upgrades the connection.
	bad.SetToken("valid-session")
	if err := bad.Call("Calc.Add", addArgs{1, 2}, &sum); err != nil || sum != 3 {
		t.Fatalf("token upgrade failed: %v", err)
	}
}

func TestRegisterRejectsMethodlessObject(t *testing.T) {
	s := NewServer(nil)
	type empty struct{}
	if err := s.Register("Empty", &empty{}); err == nil {
		t.Fatal("object without RMI methods registered")
	}
	if err := s.Register("", &calcService{}); err == nil {
		t.Fatal("empty name registered")
	}
	if err := s.Register("Calc", &calcService{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("Calc", &calcService{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr, "tok")
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				var sum float64
				if err := c.Call("Calc.Add", addArgs{float64(g), float64(i)}, &sum); err != nil {
					t.Error(err)
					return
				}
				if sum != float64(g+i) {
					t.Errorf("sum = %v, want %v", sum, g+i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestConcurrentCallsOneClient(t *testing.T) {
	_, addr := startServer(t, nil)
	c, _ := Dial(addr, "tok")
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				var sum float64
				if err := c.Call("Calc.Add", addArgs{float64(g), 1}, &sum); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestServerClose(t *testing.T) {
	s, addr := startServer(t, nil)
	c, _ := Dial(addr, "tok")
	var sum float64
	if err := c.Call("Calc.Add", addArgs{1, 1}, &sum); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := c.Call("Calc.Add", addArgs{1, 1}, &sum); err == nil {
		t.Fatal("call succeeded after server close")
	}
}

// sleepService exposes a deliberately slow method next to a fast one,
// for pipelining interleaving tests.
type sleepService struct{}

type sleepArgs struct{ MS int }

func (s *sleepService) Sleep(args sleepArgs, reply *int) error {
	time.Sleep(time.Duration(args.MS) * time.Millisecond)
	*reply = args.MS
	return nil
}

type pingArgs struct{ N int }

func (s *sleepService) Ping(args pingArgs, reply *int) error {
	*reply = args.N
	return nil
}

// TestPipelinedOutOfOrderReplies: on one connection, a fast call issued
// after a slow one must complete first — the server dispatches
// concurrently and the client matches the out-of-order replies back to
// their callers by sequence number.
func TestPipelinedOutOfOrderReplies(t *testing.T) {
	s := NewServer(nil)
	if err := s.Register("Svc", &sleepService{}); err != nil {
		t.Fatal(err)
	}
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c, err := Dial(addr.String(), "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	slowDone := make(chan error, 1)
	go func() {
		var got int
		err := c.Call("Svc.Sleep", sleepArgs{MS: 400}, &got)
		if err == nil && got != 400 {
			err = fmt.Errorf("slow reply = %d, want 400", got)
		}
		slowDone <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the slow request hit the wire first
	start := time.Now()
	var fast int
	if err := c.Call("Svc.Ping", pingArgs{N: 7}, &fast); err != nil {
		t.Fatal(err)
	}
	if fast != 7 {
		t.Fatalf("fast reply = %d, want 7", fast)
	}
	if d := time.Since(start); d > 300*time.Millisecond {
		t.Fatalf("fast call head-of-line-blocked behind the slow one (%v)", d)
	}
	select {
	case err := <-slowDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slow call never completed")
	}
}

// TestPipelinedCallsMatchCallers hammers one client from many
// goroutines (run under -race): every reply must reach exactly the
// caller that asked for it.
func TestPipelinedCallsMatchCallers(t *testing.T) {
	for _, serialized := range []bool{false, true} {
		t.Run(fmt.Sprintf("serialized=%v", serialized), func(t *testing.T) {
			_, addr := startServer(t, nil)
			var opts []Option
			if serialized {
				opts = append(opts, WithSerializedCalls())
			}
			c, err := Dial(addr, "tok", opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						want := echoArgs{
							Msg:  fmt.Sprintf("g%d-i%d", g, i),
							Nums: []int{g, i},
						}
						var got echoArgs
						if err := c.Call("Echo.Echo", want, &got); err != nil {
							t.Error(err)
							return
						}
						if got.Msg != want.Msg || len(got.Nums) != 2 || got.Nums[0] != g || got.Nums[1] != i {
							t.Errorf("reply %+v does not match request %+v", got, want)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TestPipelinedSlowCallsOverlap: two slow calls on one connection run
// concurrently on the server, so their wall time is ~max, not ~sum.
func TestPipelinedSlowCallsOverlap(t *testing.T) {
	s := NewServer(nil)
	if err := s.Register("Svc", &sleepService{}); err != nil {
		t.Fatal(err)
	}
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c, err := Dial(addr.String(), "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var got int
			if err := c.Call("Svc.Sleep", sleepArgs{MS: 200}, &got); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if d := time.Since(start); d > 380*time.Millisecond {
		t.Fatalf("2 × 200ms calls took %v: not overlapped", d)
	}
}

// TestPipelinedErrorsMatchCallers: remote errors interleaved with
// successes land on the right callers.
func TestPipelinedErrorsMatchCallers(t *testing.T) {
	_, addr := startServer(t, nil)
	c, err := Dial(addr, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				var s string
				err := c.Call("Calc.Fail", struct{}{}, &s)
				if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
					t.Errorf("Fail returned %v", err)
					return
				}
				var sum float64
				if err := c.Call("Calc.Add", addArgs{A: float64(i), B: 1}, &sum); err != nil {
					t.Error(err)
					return
				}
				if sum != float64(i)+1 {
					t.Errorf("Add = %v, want %v", sum, float64(i)+1)
					return
				}
			}
		}()
	}
	wg.Wait()
}
