// Telemetry hooks for the RMI layer: per-method call latency on both
// ends, connection counts by negotiated envelope, dial retries, and
// injected-fault counts. Recording is a handful of atomics per call and
// collapses to nothing under the obs ablation switch.

package rmi

import (
	"sync"

	"github.com/ipa-grid/ipa/internal/obs"
)

var (
	clientConnsV2 = obs.GetCounter("ipa_rmi_client_connects_total",
		"RMI client connections established, by negotiated envelope.", "envelope", "v2")
	clientConnsGob = obs.GetCounter("ipa_rmi_client_connects_total",
		"RMI client connections established, by negotiated envelope.", "envelope", "gob")
	serverConnsV2 = obs.GetCounter("ipa_rmi_server_connects_total",
		"RMI server connections accepted, by negotiated envelope.", "envelope", "v2")
	serverConnsGob = obs.GetCounter("ipa_rmi_server_connects_total",
		"RMI server connections accepted, by negotiated envelope.", "envelope", "gob")
	dialRetries = obs.GetCounter("ipa_rmi_client_dial_retries_total",
		"RMI dial attempts beyond the first (WithRetry backoff redials).")
	faultErrors = obs.GetCounter("ipa_rmi_faults_injected_total",
		"Injected dispatch faults, by kind.", "kind", "error")
	faultDrops = obs.GetCounter("ipa_rmi_faults_injected_total",
		"Injected dispatch faults, by kind.", "kind", "drop")
	faultDelays = obs.GetCounter("ipa_rmi_faults_injected_total",
		"Injected dispatch faults, by kind.", "kind", "delay")
)

// clientCallHist caches the per-method client latency histogram by Call
// target, so the hot path pays one sync.Map load instead of a label
// signature build. Histograms are labeled by bare method name — bounded
// regardless of how many shard objects a server exports.
var clientCallHist sync.Map // objectDotMethod → *obs.Histogram

func callHist(target, method string) *obs.Histogram {
	if h, ok := clientCallHist.Load(target); ok {
		return h.(*obs.Histogram)
	}
	h := obs.GetHistogram("ipa_rmi_client_call_seconds",
		"RMI client call latency (seconds), by method.", nil, "method", method)
	clientCallHist.Store(target, h)
	return h
}

// serverCallHist builds the per-method server dispatch histogram at
// Register time, so dispatch pays zero registry lookups.
func serverCallHist(method string) *obs.Histogram {
	return obs.GetHistogram("ipa_rmi_server_call_seconds",
		"RMI server dispatch latency (seconds), by method.", nil, "method", method)
}

// traceOf lifts a trace context out of call arguments that carry one
// (the untraced zero context otherwise).
func traceOf(args any) obs.TraceContext {
	if c, ok := args.(obs.Carrier); ok {
		return c.TraceCtx()
	}
	return obs.TraceContext{}
}

// recoverTrace stores the envelope's hop-advanced context into decoded
// arguments that accept one; argp must be a pointer value.
func recoverTrace(argp any, tc obs.TraceContext) {
	if !tc.Valid() {
		return
	}
	if s, ok := argp.(obs.Setter); ok {
		s.SetTraceCtx(tc)
	}
}
