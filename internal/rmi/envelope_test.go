// Envelope v2 coverage: the binary header negotiated at dial must be
// transparent to callers — same results, same error surface, same
// pipelining — and the gob fallback must keep a v2 client talking to a
// v1-only server (and vice versa via WithGobEnvelope).
package rmi

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestV2IsTheNegotiatedDefault(t *testing.T) {
	_, addr := startServer(t, nil)
	c, err := Dial(addr, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.BinaryEnvelope() {
		t.Fatal("fresh dial against a current server should negotiate the v2 envelope")
	}
	var sum float64
	if err := c.Call("Calc.Add", addArgs{A: 2, B: 3}, &sum); err != nil || sum != 5 {
		t.Fatalf("Add over v2 = %v, %v", sum, err)
	}
}

func TestWithGobEnvelopePinsV1(t *testing.T) {
	srv, addr := startServer(t, nil)
	defer srv.Close()
	c, err := Dial(addr, "tok", WithGobEnvelope())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.BinaryEnvelope() {
		t.Fatal("WithGobEnvelope client reports the binary envelope")
	}
	var sum float64
	if err := c.Call("Calc.Add", addArgs{A: 2, B: 3}, &sum); err != nil || sum != 5 {
		t.Fatalf("Add over pinned gob = %v, %v", sum, err)
	}
}

func TestGobFallbackAgainstOldServer(t *testing.T) {
	// A v1-only peer never acks the magic; after the negotiation timeout
	// the client must redial in gob mode and work normally.
	s := NewServer(nil)
	s.gobOnly = true
	if err := s.Register("Calc", &calcService{}); err != nil {
		t.Fatal(err)
	}
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	prev := v2AckTimeout
	v2AckTimeout = 200 * time.Millisecond
	defer func() { v2AckTimeout = prev }()

	c, err := Dial(addr.String(), "tok")
	if err != nil {
		t.Fatalf("dial against v1-only server: %v", err)
	}
	defer c.Close()
	if c.BinaryEnvelope() {
		t.Fatal("client claims v2 against a server that never acked it")
	}
	for i := 0; i < 5; i++ {
		var sum float64
		if err := c.Call("Calc.Add", addArgs{A: float64(i), B: 1}, &sum); err != nil || sum != float64(i)+1 {
			t.Fatalf("call %d over fallback = %v, %v", i, sum, err)
		}
	}
}

func TestV2ErrorSurfaceMatchesGob(t *testing.T) {
	for _, gob := range []bool{false, true} {
		_, addr := startServer(t, nil)
		var opts []Option
		if gob {
			opts = append(opts, WithGobEnvelope())
		}
		c, err := Dial(addr, "tok", opts...)
		if err != nil {
			t.Fatal(err)
		}

		var out string
		err = c.Call("Calc.Fail", struct{}{}, &out)
		var re RemoteError
		if !errors.As(err, &re) || !strings.Contains(err.Error(), "deliberate failure") {
			t.Fatalf("gob=%v: Fail error = %v, want RemoteError with message", gob, err)
		}
		if err := c.Call("NoSuch.Method", struct{}{}, &out); err == nil || !strings.Contains(err.Error(), "no object") {
			t.Fatalf("gob=%v: unknown object error = %v", gob, err)
		}
		if err := c.Call("Calc.NoSuch", struct{}{}, &out); err == nil || !strings.Contains(err.Error(), "no method") {
			t.Fatalf("gob=%v: unknown method error = %v", gob, err)
		}
		// The connection must stay usable after every rejection — the
		// persistent payload codec may not desync.
		var sum float64
		if err := c.Call("Calc.Add", addArgs{A: 1, B: 2}, &sum); err != nil || sum != 3 {
			t.Fatalf("gob=%v: Add after rejections = %v, %v", gob, sum, err)
		}
		c.Close()
	}
}

func TestV2ConcurrentPipelinedCalls(t *testing.T) {
	_, addr := startServer(t, nil)
	c, err := Dial(addr, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.BinaryEnvelope() {
		t.Fatal("expected v2")
	}
	const callers, calls = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				var sum float64
				a, b := float64(g), float64(i)
				if err := c.Call("Calc.Add", addArgs{A: a, B: b}, &sum); err != nil {
					errs <- err
					return
				}
				if sum != a+b {
					errs <- fmt.Errorf("caller %d call %d: reply %v, want %v", g, i, sum, a+b)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestV2ComplexPayloadRoundTrip(t *testing.T) {
	_, addr := startServer(t, nil)
	c, err := Dial(addr, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	in := echoArgs{Msg: strings.Repeat("x", 4096), Nums: []int{1, 2, 3}, Map: map[string]string{"k": "v"}}
	var out echoArgs
	if err := c.Call("Echo.Echo", in, &out); err != nil {
		t.Fatal(err)
	}
	if out.Msg != in.Msg || len(out.Nums) != 3 || out.Map["k"] != "v" {
		t.Fatalf("echo mangled the payload: %+v", out)
	}
}
