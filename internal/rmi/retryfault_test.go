package rmi

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"
)

// reserveAddr grabs a free loopback port and releases it, so a test can
// start a server there *after* a client has begun dialing it.
func reserveAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestRetryDialSucceedsWhenServerStartsLate: the retry policy must ride
// out a connect window where the server is not up yet — the restarting-
// shard case the policy exists for.
func TestRetryDialSucceedsWhenServerStartsLate(t *testing.T) {
	addr := reserveAddr(t)
	go func() {
		time.Sleep(120 * time.Millisecond)
		s := NewServer(nil)
		if err := s.Register("Calc", &calcService{}); err != nil {
			t.Error(err)
			return
		}
		if _, err := s.ListenAndServe(addr); err != nil {
			t.Error(err)
			return
		}
		t.Cleanup(s.Close)
	}()
	c, err := Dial(addr, "tok", WithRetry(RetryPolicy{Attempts: 30, Base: 20 * time.Millisecond, Max: 100 * time.Millisecond}))
	if err != nil {
		t.Fatalf("retrying dial never reached the late server: %v", err)
	}
	defer c.Close()
	var sum float64
	if err := c.Call("Calc.Add", addArgs{2, 3}, &sum); err != nil || sum != 5 {
		t.Fatalf("call after retried dial: %v %v", sum, err)
	}
}

// TestRetryGivesUpAfterAttempts: a bounded policy must fail fast when
// the target stays down, not spin forever.
func TestRetryGivesUpAfterAttempts(t *testing.T) {
	addr := reserveAddr(t)
	start := time.Now()
	_, err := Dial(addr, "tok", WithRetry(RetryPolicy{Attempts: 3, Base: 5 * time.Millisecond, Max: 20 * time.Millisecond}))
	if err == nil {
		t.Fatal("dial of a dead address succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("3-attempt dial took %v", elapsed)
	}
}

// TestDialContextCancelCutsBackoff: cancellation must interrupt the
// retry loop mid-backoff, not wait out the remaining attempts.
func TestDialContextCancelCutsBackoff(t *testing.T) {
	addr := reserveAddr(t)
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := DialContext(ctx, addr, "tok", WithRetry(RetryPolicy{Attempts: 100, Base: 50 * time.Millisecond, Max: 2 * time.Second}))
	if err == nil {
		t.Fatal("canceled dial succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("canceled dial returned after %v", elapsed)
	}
}

// TestFaultInjectionError: ErrorFrac 1 answers every call with the
// injected remote error, and clearing the faults restores service on
// the same connection.
func TestFaultInjectionError(t *testing.T) {
	s, addr := startServer(t, nil)
	s.SetFaults(&Faults{Seed: 7, ErrorFrac: 1})
	c, err := Dial(addr, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var sum float64
	callErr := c.Call("Calc.Add", addArgs{1, 2}, &sum)
	if callErr == nil || !strings.Contains(callErr.Error(), ErrInjected) {
		t.Fatalf("err = %v, want injected fault", callErr)
	}
	if _, ok := callErr.(RemoteError); !ok {
		t.Fatalf("injected error surfaced as %T, want RemoteError", callErr)
	}
	s.SetFaults(nil)
	if err := c.Call("Calc.Add", addArgs{1, 2}, &sum); err != nil || sum != 3 {
		t.Fatalf("call after clearing faults: %v %v", sum, err)
	}
}

// TestFaultInjectionErrorFraction: a partial ErrorFrac injects roughly
// that fraction, deterministically — some calls fail, the rest answer
// correctly on the same connection.
func TestFaultInjectionErrorFraction(t *testing.T) {
	s, addr := startServer(t, nil)
	s.SetFaults(&Faults{Seed: 42, ErrorFrac: 0.5})
	c, err := Dial(addr, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	injected := 0
	for i := 0; i < 100; i++ {
		var sum float64
		err := c.Call("Calc.Add", addArgs{float64(i), 1}, &sum)
		switch {
		case err == nil:
			if sum != float64(i)+1 {
				t.Fatalf("call %d answered %v", i, sum)
			}
		case strings.Contains(err.Error(), ErrInjected):
			injected++
		default:
			t.Fatalf("call %d: unexpected error %v", i, err)
		}
	}
	if injected < 25 || injected > 75 {
		t.Fatalf("ErrorFrac 0.5 injected %d/100", injected)
	}
}

// TestFaultInjectionDropBreaksTransport: a dropped call severs the
// connection like a mid-call crash; a retrying client then re-dials and
// recovers once the faults clear.
func TestFaultInjectionDropBreaksTransport(t *testing.T) {
	s, addr := startServer(t, nil)
	c, err := Dial(addr, "tok", WithRetry(RetryPolicy{Attempts: 10, Base: 5 * time.Millisecond, Max: 50 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var sum float64
	if err := c.Call("Calc.Add", addArgs{1, 1}, &sum); err != nil {
		t.Fatal(err)
	}
	s.SetFaults(&Faults{Seed: 3, DropFrac: 1})
	dropErr := c.Call("Calc.Add", addArgs{1, 1}, &sum)
	if dropErr == nil {
		t.Fatal("dropped call answered")
	}
	if _, ok := dropErr.(RemoteError); ok {
		t.Fatalf("drop surfaced as a remote error (%v), want a transport failure", dropErr)
	}
	s.SetFaults(nil)
	if err := c.Call("Calc.Add", addArgs{2, 2}, &sum); err != nil || sum != 4 {
		t.Fatalf("reconnect after drop: %v %v", sum, err)
	}
}

// TestFaultInjectionDelayStallsCall: DelayFrac stalls the dispatch for
// the configured duration before the call proceeds.
func TestFaultInjectionDelayStallsCall(t *testing.T) {
	s, addr := startServer(t, nil)
	s.SetFaults(&Faults{Seed: 9, DelayFrac: 1, Delay: 80 * time.Millisecond})
	c, err := Dial(addr, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	var sum float64
	if err := c.Call("Calc.Add", addArgs{3, 4}, &sum); err != nil || sum != 7 {
		t.Fatalf("delayed call: %v %v", sum, err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("delayed call returned in %v, want >= 80ms", elapsed)
	}
}
