// Package dataset implements the record container format used by IPA.
//
// The paper targets "record or event based" data where "the same analysis is
// to be performed on each event" (§1) and datasets "can be split and where
// the analysis results can be logically merged". The container is therefore
// a flat sequence of opaque, length-prefixed records plus a sparse offset
// index so a splitter can cut the file at exact record boundaries without
// scanning it (§3.4), and a CRC so staging can be verified end to end.
//
// Layout:
//
//	magic "IPADS1\x00\x00"                          (8 bytes)
//	records: uvarint length ‖ payload               (repeated)
//	index:   uint64 offset of record 0, K, 2K, …    (big endian)
//	trailer: indexOff, indexCount, indexEvery,
//	         recordCount, payloadBytes, crc32, magic (48 bytes)
//
// The trailer lives at the end so writers stream sequentially; readers need
// io.ReaderAt (a file) and start from the last 48 bytes.
package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

var (
	magic        = [8]byte{'I', 'P', 'A', 'D', 'S', '1', 0, 0}
	trailerMagic = [8]byte{'I', 'P', 'A', 'T', 'R', '1', 0, 0}
)

const (
	trailerSize = 8 + 8 + 4 + 8 + 8 + 4 + 8
	// DefaultIndexEvery is the sparse-index stride: one offset entry per
	// this many records. 64 keeps the index ~0.1% of typical event files
	// while bounding a seek's forward scan.
	DefaultIndexEvery = 64
	// MaxRecordSize guards readers against corrupt length prefixes.
	MaxRecordSize = 1 << 30
)

// ErrCorrupt is returned when magic numbers, sizes, or checksums disagree.
var ErrCorrupt = errors.New("dataset: corrupt container")

// Writer streams records into a container.
type Writer struct {
	w          *bufio.Writer
	underlying io.Writer
	off        int64
	count      int64
	payload    int64
	indexEvery uint32
	index      []uint64
	crc        uint32
	closed     bool
	err        error
	varintBuf  [binary.MaxVarintLen64]byte
}

// NewWriter begins a container on w with the default index stride.
func NewWriter(w io.Writer) (*Writer, error) {
	return NewWriterStride(w, DefaultIndexEvery)
}

// NewWriterStride begins a container with an explicit index stride.
func NewWriterStride(w io.Writer, indexEvery uint32) (*Writer, error) {
	if indexEvery == 0 {
		return nil, errors.New("dataset: indexEvery must be ≥ 1")
	}
	dw := &Writer{w: bufio.NewWriterSize(w, 1<<16), underlying: w, indexEvery: indexEvery}
	if _, err := dw.w.Write(magic[:]); err != nil {
		return nil, err
	}
	dw.off = int64(len(magic))
	return dw, nil
}

// Append writes one record. Records may be empty but not nil-length-bounded.
func (w *Writer) Append(record []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("dataset: append after Close")
	}
	if len(record) > MaxRecordSize {
		return fmt.Errorf("dataset: record of %d bytes exceeds max %d", len(record), MaxRecordSize)
	}
	if w.count%int64(w.indexEvery) == 0 {
		w.index = append(w.index, uint64(w.off))
	}
	n := binary.PutUvarint(w.varintBuf[:], uint64(len(record)))
	if _, err := w.w.Write(w.varintBuf[:n]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(record); err != nil {
		w.err = err
		return err
	}
	w.crc = crc32.Update(w.crc, crc32.IEEETable, record)
	w.off += int64(n) + int64(len(record))
	w.count++
	w.payload += int64(len(record))
	return nil
}

// Count returns the number of records appended so far.
func (w *Writer) Count() int64 { return w.count }

// Close writes the index and trailer. The underlying writer is not closed.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	indexOff := w.off
	var buf [8]byte
	for _, o := range w.index {
		binary.BigEndian.PutUint64(buf[:], o)
		if _, err := w.w.Write(buf[:]); err != nil {
			w.err = err
			return err
		}
	}
	var tr [trailerSize]byte
	binary.BigEndian.PutUint64(tr[0:8], uint64(indexOff))
	binary.BigEndian.PutUint64(tr[8:16], uint64(len(w.index)))
	binary.BigEndian.PutUint32(tr[16:20], w.indexEvery)
	binary.BigEndian.PutUint64(tr[20:28], uint64(w.count))
	binary.BigEndian.PutUint64(tr[28:36], uint64(w.payload))
	binary.BigEndian.PutUint32(tr[36:40], w.crc)
	copy(tr[40:48], trailerMagic[:])
	if _, err := w.w.Write(tr[:]); err != nil {
		w.err = err
		return err
	}
	return w.w.Flush()
}

// Reader provides random and sequential access to a container.
type Reader struct {
	ra         io.ReaderAt
	size       int64
	count      int64
	payload    int64
	crc        uint32
	indexEvery uint32
	index      []uint64
	indexOff   int64
}

// NewReader opens a container from a random-access byte source.
func NewReader(ra io.ReaderAt, size int64) (*Reader, error) {
	if size < int64(len(magic))+trailerSize {
		return nil, fmt.Errorf("%w: %d bytes is too small", ErrCorrupt, size)
	}
	var head [8]byte
	if _, err := ra.ReadAt(head[:], 0); err != nil {
		return nil, err
	}
	if head != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, head[:])
	}
	var tr [trailerSize]byte
	if _, err := ra.ReadAt(tr[:], size-trailerSize); err != nil {
		return nil, err
	}
	if *(*[8]byte)(tr[40:48]) != trailerMagic {
		return nil, fmt.Errorf("%w: bad trailer magic", ErrCorrupt)
	}
	r := &Reader{
		ra:         ra,
		size:       size,
		indexOff:   int64(binary.BigEndian.Uint64(tr[0:8])),
		count:      int64(binary.BigEndian.Uint64(tr[20:28])),
		payload:    int64(binary.BigEndian.Uint64(tr[28:36])),
		crc:        binary.BigEndian.Uint32(tr[36:40]),
		indexEvery: binary.BigEndian.Uint32(tr[16:20]),
	}
	indexCount := int64(binary.BigEndian.Uint64(tr[8:16]))
	if r.indexEvery == 0 || indexCount < 0 || r.indexOff < int64(len(magic)) ||
		r.indexOff+indexCount*8 != size-trailerSize {
		return nil, fmt.Errorf("%w: inconsistent trailer", ErrCorrupt)
	}
	want := (r.count + int64(r.indexEvery) - 1) / int64(r.indexEvery)
	if indexCount != want {
		return nil, fmt.Errorf("%w: index has %d entries, want %d", ErrCorrupt, indexCount, want)
	}
	raw := make([]byte, indexCount*8)
	if _, err := ra.ReadAt(raw, r.indexOff); err != nil {
		return nil, err
	}
	r.index = make([]uint64, indexCount)
	for i := range r.index {
		r.index[i] = binary.BigEndian.Uint64(raw[i*8:])
	}
	return r, nil
}

// NumRecords returns the record count.
func (r *Reader) NumRecords() int64 { return r.count }

// PayloadBytes returns the sum of record payload sizes.
func (r *Reader) PayloadBytes() int64 { return r.payload }

// CRC32 returns the stored IEEE checksum over all payloads.
func (r *Reader) CRC32() uint32 { return r.crc }

// OffsetOf returns the byte offset where record i begins.
func (r *Reader) OffsetOf(i int64) (int64, error) {
	if i < 0 || i > r.count {
		return 0, fmt.Errorf("dataset: record %d out of range [0,%d]", i, r.count)
	}
	if i == r.count {
		return r.indexOff, nil // one past the last record
	}
	slot := i / int64(r.indexEvery)
	off := int64(r.index[slot])
	cur := slot * int64(r.indexEvery)
	it := &Iterator{r: r, off: off, next: cur}
	for cur < i {
		if err := it.skip(); err != nil {
			return 0, err
		}
		cur++
	}
	return it.off, nil
}

// Record reads record i.
func (r *Reader) Record(i int64) ([]byte, error) {
	if i < 0 || i >= r.count {
		return nil, fmt.Errorf("dataset: record %d out of range [0,%d)", i, r.count)
	}
	off, err := r.OffsetOf(i)
	if err != nil {
		return nil, err
	}
	it := &Iterator{r: r, off: off, next: i}
	return it.Next()
}

// Iter returns an iterator positioned at record from (inclusive),
// stopping before record to (exclusive). to == -1 means "to the end".
func (r *Reader) Iter(from, to int64) (*Iterator, error) {
	if to == -1 {
		to = r.count
	}
	if from < 0 || to > r.count || from > to {
		return nil, fmt.Errorf("dataset: bad range [%d,%d) of %d", from, to, r.count)
	}
	off, err := r.OffsetOf(from)
	if err != nil {
		return nil, err
	}
	return &Iterator{r: r, off: off, next: from, stop: to}, nil
}

// VerifyChecksum re-reads every record and compares the running CRC with the
// trailer value.
func (r *Reader) VerifyChecksum() error {
	it, err := r.Iter(0, r.count)
	if err != nil {
		return err
	}
	var crc uint32
	for {
		rec, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		crc = crc32.Update(crc, crc32.IEEETable, rec)
	}
	if crc != r.crc {
		return fmt.Errorf("%w: checksum %08x, trailer says %08x", ErrCorrupt, crc, r.crc)
	}
	return nil
}

// Iterator walks records sequentially.
type Iterator struct {
	r    *Reader
	off  int64
	next int64
	stop int64
	buf  []byte
}

// Index returns the index of the record that Next will return.
func (it *Iterator) Index() int64 { return it.next }

// Next returns the next record, or io.EOF past the end of the range.
// The returned slice is owned by the caller (freshly allocated).
func (it *Iterator) Next() ([]byte, error) {
	if it.stop != 0 && it.next >= it.stop {
		return nil, io.EOF
	}
	if it.next >= it.r.count {
		return nil, io.EOF
	}
	length, n, err := it.readUvarint()
	if err != nil {
		return nil, err
	}
	if length > MaxRecordSize {
		return nil, fmt.Errorf("%w: record length %d", ErrCorrupt, length)
	}
	rec := make([]byte, length)
	if length > 0 {
		if _, err := it.r.ra.ReadAt(rec, it.off+int64(n)); err != nil {
			return nil, fmt.Errorf("dataset: reading record %d: %w", it.next, err)
		}
	}
	it.off += int64(n) + int64(length)
	it.next++
	return rec, nil
}

// skip advances past one record without materializing it.
func (it *Iterator) skip() error {
	length, n, err := it.readUvarint()
	if err != nil {
		return err
	}
	it.off += int64(n) + int64(length)
	it.next++
	return nil
}

func (it *Iterator) readUvarint() (val uint64, n int, err error) {
	if it.buf == nil {
		it.buf = make([]byte, binary.MaxVarintLen64)
	}
	m, err := it.r.ra.ReadAt(it.buf, it.off)
	if err != nil && err != io.EOF {
		return 0, 0, err
	}
	if m == 0 {
		return 0, 0, fmt.Errorf("%w: truncated at offset %d", ErrCorrupt, it.off)
	}
	val, n = binary.Uvarint(it.buf[:m])
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: bad varint at offset %d", ErrCorrupt, it.off)
	}
	return val, n, nil
}

// Create opens path for writing and returns a container writer plus a
// closer that finalizes both the container and the file.
func Create(path string) (*Writer, func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w, err := NewWriter(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	closer := func() error {
		if err := w.Close(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return w, closer, nil
}

// CreateRaw opens path as a plain byte sink with a closer — for callers
// (like the splitter) that drive their own container Writer over the file.
func CreateRaw(path string) (io.Writer, func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// Open opens a container file for reading. Close the returned file when done.
func Open(path string) (*Reader, *os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	r, err := NewReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f, nil
}
