package dataset

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// memFile adapts a bytes.Buffer into an io.ReaderAt.
type memFile struct{ b []byte }

func (m *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.b)) {
		return 0, io.EOF
	}
	n := copy(p, m.b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func build(t testing.TB, records [][]byte, stride uint32) *Reader {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriterStride(&buf, stride)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&memFile{buf.Bytes()}, int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRoundTrip(t *testing.T) {
	recs := [][]byte{[]byte("alpha"), []byte(""), []byte("gamma gamma"), {0, 1, 2, 255}}
	r := build(t, recs, 2)
	if r.NumRecords() != int64(len(recs)) {
		t.Fatalf("NumRecords = %d, want %d", r.NumRecords(), len(recs))
	}
	for i, want := range recs {
		got, err := r.Record(int64(i))
		if err != nil {
			t.Fatalf("Record(%d): %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Record(%d) = %q, want %q", i, got, want)
		}
	}
	if err := r.VerifyChecksum(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyContainer(t *testing.T) {
	r := build(t, nil, 64)
	if r.NumRecords() != 0 {
		t.Fatalf("NumRecords = %d, want 0", r.NumRecords())
	}
	it, err := r.Iter(0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(); err != io.EOF {
		t.Fatalf("Next on empty = %v, want EOF", err)
	}
}

func TestIteratorRange(t *testing.T) {
	var recs [][]byte
	for i := 0; i < 100; i++ {
		recs = append(recs, []byte(fmt.Sprintf("record-%03d", i)))
	}
	r := build(t, recs, 7) // stride that doesn't divide the boundaries
	it, err := r.Iter(33, 66)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for i := 33; ; i++ {
		rec, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("record-%03d", i); string(rec) != want {
			t.Fatalf("record %d = %q, want %q", i, rec, want)
		}
		n++
	}
	if n != 33 {
		t.Fatalf("iterated %d records, want 33", n)
	}
}

func TestIterBadRanges(t *testing.T) {
	r := build(t, [][]byte{[]byte("x")}, 64)
	for _, c := range []struct{ from, to int64 }{{-1, 0}, {0, 2}, {1, 0}} {
		if _, err := r.Iter(c.from, c.to); err == nil {
			t.Fatalf("Iter(%d,%d) accepted", c.from, c.to)
		}
	}
}

func TestRecordOutOfRange(t *testing.T) {
	r := build(t, [][]byte{[]byte("x")}, 64)
	if _, err := r.Record(1); err == nil {
		t.Fatal("Record(1) of 1-record file accepted")
	}
	if _, err := r.Record(-1); err == nil {
		t.Fatal("Record(-1) accepted")
	}
}

func TestOffsetOfMonotonic(t *testing.T) {
	var recs [][]byte
	for i := 0; i < 50; i++ {
		recs = append(recs, bytes.Repeat([]byte{byte(i)}, i%17))
	}
	r := build(t, recs, 8)
	prev := int64(-1)
	for i := int64(0); i <= r.NumRecords(); i++ {
		off, err := r.OffsetOf(i)
		if err != nil {
			t.Fatal(err)
		}
		if off <= prev {
			t.Fatalf("OffsetOf(%d) = %d not monotonic (prev %d)", i, off, prev)
		}
		prev = off
	}
}

func TestCorruptMagic(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Append([]byte("hi"))
	w.Close()
	b := buf.Bytes()
	b[0] = 'X'
	if _, err := NewReader(&memFile{b}, int64(len(b))); err == nil {
		t.Fatal("corrupt magic accepted")
	}
}

func TestCorruptTrailer(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Append([]byte("hi"))
	w.Close()
	b := buf.Bytes()
	b[len(b)-1] ^= 0xff
	if _, err := NewReader(&memFile{b}, int64(len(b))); err == nil {
		t.Fatal("corrupt trailer accepted")
	}
}

func TestChecksumDetectsFlippedBit(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	payload := bytes.Repeat([]byte("data"), 100)
	w.Append(payload)
	w.Close()
	b := buf.Bytes()
	b[20] ^= 1 // flip a payload bit
	r, err := NewReader(&memFile{b}, int64(len(b)))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.VerifyChecksum(); err == nil {
		t.Fatal("flipped payload bit not detected")
	}
}

func TestTooSmall(t *testing.T) {
	if _, err := NewReader(&memFile{[]byte("tiny")}, 4); err == nil {
		t.Fatal("4-byte file accepted")
	}
}

func TestAppendAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Close()
	if err := w.Append([]byte("late")); err == nil {
		t.Fatal("append after close accepted")
	}
}

func TestFileHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.ipa")
	w, closer, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := closer(); err != nil {
		t.Fatal(err)
	}
	r, f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if r.NumRecords() != 10 {
		t.Fatalf("NumRecords = %d", r.NumRecords())
	}
	rec, err := r.Record(7)
	if err != nil || rec[0] != 7 {
		t.Fatalf("Record(7) = %v, %v", rec, err)
	}
}

func TestOpenMissing(t *testing.T) {
	if _, _, err := Open(filepath.Join(t.TempDir(), "nope.ipa")); err == nil {
		t.Fatal("missing file opened")
	}
}

func TestOpenNotAContainer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, bytes.Repeat([]byte("junk"), 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); err == nil {
		t.Fatal("junk file accepted as container")
	}
}

// Property: any slice of random records survives a round trip with every
// stride, in order, under both random and sequential access.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8, stride uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%60) + 1
		st := uint32(stride%16) + 1
		recs := make([][]byte, count)
		for i := range recs {
			recs[i] = make([]byte, rng.Intn(200))
			rng.Read(recs[i])
		}
		r := build(t, recs, st)
		if r.NumRecords() != int64(count) {
			return false
		}
		// Sequential.
		it, err := r.Iter(0, -1)
		if err != nil {
			return false
		}
		for i := 0; ; i++ {
			rec, err := it.Next()
			if err == io.EOF {
				if i != count {
					return false
				}
				break
			}
			if err != nil || !bytes.Equal(rec, recs[i]) {
				return false
			}
		}
		// Random access at a few indices.
		for _, i := range []int{0, count / 2, count - 1} {
			rec, err := r.Record(int64(i))
			if err != nil || !bytes.Equal(rec, recs[i]) {
				return false
			}
		}
		return r.VerifyChecksum() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
