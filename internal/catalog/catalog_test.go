package catalog

import (
	"bytes"
	"strings"
	"testing"
)

func buildCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	if err := c.Mkdir("/lc/zh"); err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.SetAttr("/lc", "experiment", "lc"))
	must(c.SetAttr("/lc", "energy", "500"))
	must(c.SetAttr("/lc/zh", "process", "e+e- -> ZH"))
	must(c.AddDataset("/lc/zh", DatasetRef{
		ID: "ds-001", Name: "zh-500-run1", SizeMB: 471, Records: 500000, Format: "lc-event",
	}, map[string]string{"detector": "sid", "year": "2006"}))
	must(c.AddDataset("/lc/zh", DatasetRef{
		ID: "ds-002", Name: "zh-500-run2", SizeMB: 120, Records: 130000, Format: "lc-event",
	}, map[string]string{"detector": "ld"}))
	must(c.AddDataset("/lc", DatasetRef{
		ID: "ds-003", Name: "calib", SizeMB: 3, Records: 4000, Format: "raw",
	}, nil))
	must(c.Mkdir("/bio"))
	must(c.SetAttr("/bio", "experiment", "dna"))
	must(c.AddDataset("/bio", DatasetRef{
		ID: "ds-004", Name: "genome-x", SizeMB: 42, Records: 9000, Format: "dna-seq",
	}, nil))
	return c
}

func TestBrowse(t *testing.T) {
	c := buildCatalog(t)
	top, err := c.List("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0].Path != "/bio" || top[1].Path != "/lc" {
		t.Fatalf("top = %+v", top)
	}
	zh, err := c.List("/lc/zh")
	if err != nil {
		t.Fatal(err)
	}
	if len(zh) != 2 || !strings.HasSuffix(zh[0].Path, "zh-500-run1") {
		t.Fatalf("zh = %+v", zh)
	}
	if zh[0].Dataset == nil || zh[0].Dataset.SizeMB != 471 {
		t.Fatalf("dataset ref = %+v", zh[0].Dataset)
	}
	if _, err := c.List("/nope"); err == nil {
		t.Fatal("List of missing dir succeeded")
	}
}

func TestFindByID(t *testing.T) {
	c := buildCatalog(t)
	info, err := c.FindByID("ds-001")
	if err != nil {
		t.Fatal(err)
	}
	if info.Path != "/lc/zh/zh-500-run1" {
		t.Fatalf("path = %q", info.Path)
	}
	if _, err := c.FindByID("ds-999"); err == nil {
		t.Fatal("phantom ID resolved")
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	c := buildCatalog(t)
	err := c.AddDataset("/lc", DatasetRef{ID: "ds-001", Name: "dup"}, nil)
	if err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

func TestQueryBuiltinsAndInheritance(t *testing.T) {
	c := buildCatalog(t)
	cases := []struct {
		q    string
		want []string
	}{
		{`experiment == "lc"`, []string{"ds-003", "ds-001", "ds-002"}},
		{`experiment == "lc" && size > 100`, []string{"ds-001", "ds-002"}},
		{`detector == "sid"`, []string{"ds-001"}},
		{`energy >= 500`, []string{"ds-003", "ds-001", "ds-002"}}, // inherited from /lc
		{`name ~ "zh-*"`, []string{"ds-001", "ds-002"}},
		{`format == "dna-seq"`, []string{"ds-004"}},
		{`has(detector)`, []string{"ds-001", "ds-002"}},
		{`!has(detector) && experiment == "lc"`, []string{"ds-003"}},
		{`records > 100000 || format == "raw"`, []string{"ds-003", "ds-001", "ds-002"}},
		{`size > 1000`, nil},
		{`true`, []string{"ds-004", "ds-003", "ds-001", "ds-002"}},
		{`(experiment == "dna") || (detector == "ld")`, []string{"ds-004", "ds-002"}},
		{`year == 2006`, []string{"ds-001"}}, // numeric compare on string attr
	}
	for _, tc := range cases {
		got, err := c.Query(tc.q)
		if err != nil {
			t.Fatalf("query %q: %v", tc.q, err)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("query %q returned %d results, want %d (%v)", tc.q, len(got), len(tc.want), got)
		}
		for i, info := range got {
			if info.Dataset.ID != tc.want[i] {
				t.Fatalf("query %q result %d = %s, want %s", tc.q, i, info.Dataset.ID, tc.want[i])
			}
		}
	}
}

func TestQuerySyntaxErrors(t *testing.T) {
	c := buildCatalog(t)
	for _, q := range []string{
		"", "   ", "energy >", "(energy > 1", `name == "unterminated`,
		"&& energy", "energy == 5 extra", "has(", "energy = 5",
	} {
		if _, err := c.Query(q); err == nil {
			t.Errorf("query %q accepted", q)
		}
	}
}

func TestRemove(t *testing.T) {
	c := buildCatalog(t)
	if err := c.Remove("/lc/zh"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FindByID("ds-001"); err == nil {
		t.Fatal("removed dataset still indexed")
	}
	if _, err := c.FindByID("ds-002"); err == nil {
		t.Fatal("removed subtree dataset still indexed")
	}
	if _, err := c.FindByID("ds-003"); err != nil {
		t.Fatal("sibling dataset lost")
	}
	if err := c.Remove("/nope"); err == nil {
		t.Fatal("Remove of missing entry succeeded")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	c := buildCatalog(t)
	var buf bytes.Buffer
	if err := c.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same datasets, same inherited-query behaviour.
	for _, q := range []string{`true`, `experiment == "lc" && size > 100`, `detector == "sid"`} {
		a, _ := c.Query(q)
		b, err := back.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %q: %d vs %d after round trip", q, len(a), len(b))
		}
		for i := range a {
			if a[i].Dataset.ID != b[i].Dataset.ID {
				t.Fatalf("query %q order changed", q)
			}
		}
	}
	info, err := back.Get("/lc/zh/zh-500-run1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Attrs["detector"] != "sid" || info.Dataset.Records != 500000 {
		t.Fatalf("attrs lost in round trip: %+v", info)
	}
}

func TestXMLRejectsGarbage(t *testing.T) {
	if _, err := ReadXML(strings.NewReader("never xml")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDatasetUnderDatasetRejected(t *testing.T) {
	c := buildCatalog(t)
	err := c.AddDataset("/lc/zh/zh-500-run1", DatasetRef{ID: "x", Name: "y"}, nil)
	if err == nil {
		t.Fatal("dataset nested under dataset accepted")
	}
}
