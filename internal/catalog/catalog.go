// Package catalog implements the Dataset Catalog Service (DCS) of §3.3:
// "a Web Service that allows us either to browse for an interesting
// dataset, or to search for interesting data using a query language that
// operates on the metadata. The Catalog makes no assumptions about the
// type of metadata ... except that the metadata consists of key-value
// pairs stored in a hierarchical tree."
//
// Directories carry attributes that leaf datasets inherit, so a query like
// `experiment == "lc" && energy >= 500` matches datasets whose ancestors
// define the keys. Catalogs persist as XML.
package catalog

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// DatasetRef is the resolvable pointer a catalog leaf holds — "what is
// chosen by the user from the catalog is a pointer to the actual dataset"
// (§2.2). The ID feeds the locator service.
type DatasetRef struct {
	ID      string
	Name    string
	SizeMB  float64
	Records int64
	Format  string // record codec, e.g. "lc-event"
}

type entry struct {
	name     string
	attrs    map[string]string
	dataset  *DatasetRef // nil for directories
	children map[string]*entry
	parent   *entry
}

// Catalog is the metadata tree. Safe for concurrent use.
type Catalog struct {
	mu   sync.RWMutex
	root *entry
	byID map[string]string // dataset ID → path
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{
		root: &entry{name: "", attrs: map[string]string{}, children: map[string]*entry{}},
		byID: map[string]string{},
	}
}

func split(path string) []string {
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func joinPath(segs []string) string { return "/" + strings.Join(segs, "/") }

// lookup walks to an entry. Caller holds a lock.
func (c *Catalog) lookup(path string) *entry {
	e := c.root
	for _, seg := range split(path) {
		e = e.children[seg]
		if e == nil {
			return nil
		}
	}
	return e
}

// mkdirs creates directories down to path. Caller holds the write lock.
func (c *Catalog) mkdirs(segs []string) (*entry, error) {
	e := c.root
	for _, seg := range segs {
		next := e.children[seg]
		if next == nil {
			next = &entry{name: seg, attrs: map[string]string{}, children: map[string]*entry{}, parent: e}
			e.children[seg] = next
		}
		if next.dataset != nil {
			return nil, fmt.Errorf("catalog: %q is a dataset, not a folder", seg)
		}
		e = next
	}
	return e, nil
}

// Mkdir creates a directory path.
func (c *Catalog) Mkdir(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.mkdirs(split(path))
	return err
}

// SetAttr sets a metadata key on an existing entry (dir or dataset).
func (c *Catalog) SetAttr(path, key, value string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.lookup(path)
	if e == nil {
		return fmt.Errorf("catalog: no entry %q", path)
	}
	if key == "" {
		return fmt.Errorf("catalog: empty attribute key")
	}
	e.attrs[key] = value
	return nil
}

// AddDataset registers a dataset leaf under dirPath with local attributes.
func (c *Catalog) AddDataset(dirPath string, ref DatasetRef, attrs map[string]string) error {
	if ref.ID == "" || ref.Name == "" {
		return fmt.Errorf("catalog: dataset needs ID and Name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byID[ref.ID]; dup {
		return fmt.Errorf("catalog: duplicate dataset ID %q", ref.ID)
	}
	dir, err := c.mkdirs(split(dirPath))
	if err != nil {
		return err
	}
	if _, exists := dir.children[ref.Name]; exists {
		return fmt.Errorf("catalog: %s/%s already exists", dirPath, ref.Name)
	}
	leaf := &entry{
		name: ref.Name, attrs: map[string]string{},
		dataset: &DatasetRef{}, parent: dir, children: map[string]*entry{},
	}
	*leaf.dataset = ref
	for k, v := range attrs {
		leaf.attrs[k] = v
	}
	dir.children[ref.Name] = leaf
	c.byID[ref.ID] = joinPath(append(split(dirPath), ref.Name))
	return nil
}

// Remove deletes an entry (and any subtree).
func (c *Catalog) Remove(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.lookup(path)
	if e == nil || e.parent == nil {
		return fmt.Errorf("catalog: no entry %q", path)
	}
	var drop func(*entry)
	drop = func(x *entry) {
		if x.dataset != nil {
			delete(c.byID, x.dataset.ID)
		}
		for _, ch := range x.children {
			drop(ch)
		}
	}
	drop(e)
	delete(e.parent.children, e.name)
	return nil
}

// Info is a browse row: one catalog entry with its effective metadata.
type Info struct {
	Path    string
	IsDir   bool
	Attrs   map[string]string // local attributes only
	Dataset *DatasetRef       // nil for directories
}

// List returns the immediate children of a directory, sorted by name —
// the rows of the Figure 3 dataset-chooser dialog.
func (c *Catalog) List(path string) ([]Info, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e := c.lookup(path)
	if e == nil {
		return nil, fmt.Errorf("catalog: no entry %q", path)
	}
	names := make([]string, 0, len(e.children))
	for n := range e.children {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Info, 0, len(names))
	base := split(path)
	for _, n := range names {
		ch := e.children[n]
		out = append(out, c.infoFor(ch, joinPath(append(append([]string{}, base...), n))))
	}
	return out, nil
}

func (c *Catalog) infoFor(e *entry, path string) Info {
	info := Info{Path: path, IsDir: e.dataset == nil, Attrs: map[string]string{}}
	for k, v := range e.attrs {
		info.Attrs[k] = v
	}
	if e.dataset != nil {
		ref := *e.dataset
		info.Dataset = &ref
	}
	return info
}

// Get returns one entry's Info.
func (c *Catalog) Get(path string) (Info, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e := c.lookup(path)
	if e == nil {
		return Info{}, fmt.Errorf("catalog: no entry %q", path)
	}
	return c.infoFor(e, joinPath(split(path))), nil
}

// FindByID resolves a dataset ID to its Info.
func (c *Catalog) FindByID(id string) (Info, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	path, ok := c.byID[id]
	if !ok {
		return Info{}, fmt.Errorf("catalog: no dataset with ID %q", id)
	}
	return c.infoFor(c.lookup(path), path), nil
}

// effectiveAttrs merges ancestor attributes (nearest wins) plus builtins.
func effectiveAttrs(e *entry, path string) map[string]string {
	attrs := map[string]string{}
	chain := []*entry{}
	for x := e; x != nil; x = x.parent {
		chain = append(chain, x)
	}
	// Apply root-first so closer entries override.
	for i := len(chain) - 1; i >= 0; i-- {
		for k, v := range chain[i].attrs {
			attrs[k] = v
		}
	}
	attrs["path"] = path
	if e.dataset != nil {
		attrs["name"] = e.dataset.Name
		attrs["id"] = e.dataset.ID
		attrs["size"] = fmt.Sprintf("%g", e.dataset.SizeMB)
		attrs["records"] = fmt.Sprintf("%d", e.dataset.Records)
		attrs["format"] = e.dataset.Format
	} else {
		attrs["name"] = e.name
	}
	return attrs
}

// Query evaluates a metadata query over every dataset leaf and returns
// matches sorted by path. See the query language in query.go.
func (c *Catalog) Query(q string) ([]Info, error) {
	expr, err := parseQuery(q)
	if err != nil {
		return nil, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Info
	var walk func(e *entry, segs []string)
	walk = func(e *entry, segs []string) {
		if e.dataset != nil {
			path := joinPath(segs)
			if expr.eval(effectiveAttrs(e, path)) {
				out = append(out, c.infoFor(e, path))
			}
			return
		}
		names := make([]string, 0, len(e.children))
		for n := range e.children {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			walk(e.children[n], append(segs, n))
		}
	}
	walk(c.root, nil)
	return out, nil
}

// Datasets returns every dataset Info, sorted by path.
func (c *Catalog) Datasets() []Info {
	out, _ := c.Query("true")
	return out
}

// XML persistence.

type xmlEntry struct {
	XMLName  xml.Name   `xml:"entry"`
	Name     string     `xml:"name,attr"`
	Attrs    []xmlAttr  `xml:"attr"`
	Dataset  *xmlRef    `xml:"dataset"`
	Children []xmlEntry `xml:"entry"`
}

type xmlAttr struct {
	Key   string `xml:"key,attr"`
	Value string `xml:"value,attr"`
}

type xmlRef struct {
	ID      string  `xml:"id,attr"`
	Name    string  `xml:"name,attr"`
	SizeMB  float64 `xml:"sizeMB,attr"`
	Records int64   `xml:"records,attr"`
	Format  string  `xml:"format,attr"`
}

func toXML(e *entry) xmlEntry {
	x := xmlEntry{Name: e.name}
	keys := make([]string, 0, len(e.attrs))
	for k := range e.attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		x.Attrs = append(x.Attrs, xmlAttr{k, e.attrs[k]})
	}
	if e.dataset != nil {
		x.Dataset = &xmlRef{e.dataset.ID, e.dataset.Name, e.dataset.SizeMB, e.dataset.Records, e.dataset.Format}
	}
	names := make([]string, 0, len(e.children))
	for n := range e.children {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		x.Children = append(x.Children, toXML(e.children[n]))
	}
	return x
}

// WriteXML serializes the catalog.
func (c *Catalog) WriteXML(w io.Writer) error {
	c.mu.RLock()
	doc := struct {
		XMLName xml.Name   `xml:"catalog"`
		Entries []xmlEntry `xml:"entry"`
	}{}
	root := toXML(c.root)
	doc.Entries = root.Children
	c.mu.RUnlock()
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// ReadXML loads a catalog.
func ReadXML(r io.Reader) (*Catalog, error) {
	var doc struct {
		XMLName xml.Name   `xml:"catalog"`
		Entries []xmlEntry `xml:"entry"`
	}
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("catalog: parsing xml: %w", err)
	}
	c := New()
	var load func(parent string, x xmlEntry) error
	load = func(parent string, x xmlEntry) error {
		path := parent + "/" + x.Name
		if x.Dataset != nil {
			attrs := map[string]string{}
			for _, a := range x.Attrs {
				attrs[a.Key] = a.Value
			}
			ref := DatasetRef{x.Dataset.ID, x.Dataset.Name, x.Dataset.SizeMB, x.Dataset.Records, x.Dataset.Format}
			return c.AddDataset(parent, ref, attrs)
		}
		if err := c.Mkdir(path); err != nil {
			return err
		}
		for _, a := range x.Attrs {
			if err := c.SetAttr(path, a.Key, a.Value); err != nil {
				return err
			}
		}
		for _, ch := range x.Children {
			if err := load(path, ch); err != nil {
				return err
			}
		}
		return nil
	}
	for _, e := range doc.Entries {
		if err := load("", e); err != nil {
			return nil, err
		}
	}
	return c, nil
}
