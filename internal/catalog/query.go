package catalog

import (
	"fmt"
	"path"
	"strconv"
	"strings"
)

// The catalog query language (§3.3 "search for interesting data using a
// query language that operates on the metadata"):
//
//	expr   := or
//	or     := and ("||" and)*
//	and    := not ("&&" not)*
//	not    := "!" not | primary
//	primary:= "(" expr ")" | "has(" key ")" | "true" | "false" | comparison
//	comp   := key op literal
//	op     := == != < <= > >= ~        (~ is glob match)
//	key    := identifier (letters, digits, '_', '-', '.')
//	literal:= "quoted string" | number | bare-word
//
// Comparisons are numeric when both sides parse as numbers, else string.
// Missing keys make any comparison false (so !has(x) is the way to test
// absence). Builtin keys: name, id, path, size (MB), records, format.

type queryExpr interface {
	eval(attrs map[string]string) bool
}

type qBool bool

func (b qBool) eval(map[string]string) bool { return bool(b) }

type qNot struct{ x queryExpr }

func (n qNot) eval(a map[string]string) bool { return !n.x.eval(a) }

type qAnd struct{ l, r queryExpr }

func (x qAnd) eval(a map[string]string) bool { return x.l.eval(a) && x.r.eval(a) }

type qOr struct{ l, r queryExpr }

func (x qOr) eval(a map[string]string) bool { return x.l.eval(a) || x.r.eval(a) }

type qHas struct{ key string }

func (h qHas) eval(a map[string]string) bool { _, ok := a[h.key]; return ok }

type qCmp struct {
	key string
	op  string
	lit string
}

func (c qCmp) eval(a map[string]string) bool {
	v, ok := a[c.key]
	if !ok {
		return false
	}
	if c.op == "~" {
		matched, err := path.Match(c.lit, v)
		return err == nil && matched
	}
	lf, lerr := strconv.ParseFloat(v, 64)
	rf, rerr := strconv.ParseFloat(c.lit, 64)
	if lerr == nil && rerr == nil {
		switch c.op {
		case "==":
			return lf == rf
		case "!=":
			return lf != rf
		case "<":
			return lf < rf
		case "<=":
			return lf <= rf
		case ">":
			return lf > rf
		case ">=":
			return lf >= rf
		}
	}
	switch c.op {
	case "==":
		return v == c.lit
	case "!=":
		return v != c.lit
	case "<":
		return v < c.lit
	case "<=":
		return v <= c.lit
	case ">":
		return v > c.lit
	case ">=":
		return v >= c.lit
	}
	return false
}

// query tokenizer.

type qToken struct {
	kind string // "ident", "str", "op", "(", ")", "eof"
	text string
}

func qLex(src string) ([]qToken, error) {
	var toks []qToken
	i := 0
	isIdent := func(c byte) bool {
		return c == '_' || c == '-' || c == '.' || c == '*' || c == '?' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')':
			toks = append(toks, qToken{string(c), string(c)})
			i++
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("catalog: unterminated string in query")
			}
			toks = append(toks, qToken{"str", src[i+1 : j]})
			i = j + 1
		case strings.HasPrefix(src[i:], "&&"), strings.HasPrefix(src[i:], "||"),
			strings.HasPrefix(src[i:], "=="), strings.HasPrefix(src[i:], "!="),
			strings.HasPrefix(src[i:], "<="), strings.HasPrefix(src[i:], ">="):
			toks = append(toks, qToken{"op", src[i : i+2]})
			i += 2
		case c == '<' || c == '>' || c == '!' || c == '~':
			toks = append(toks, qToken{"op", string(c)})
			i++
		case isIdent(c):
			j := i
			for j < len(src) && isIdent(src[j]) {
				j++
			}
			toks = append(toks, qToken{"ident", src[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("catalog: unexpected %q in query", string(c))
		}
	}
	toks = append(toks, qToken{"eof", ""})
	return toks, nil
}

type qParser struct {
	toks []qToken
	pos  int
}

func (p *qParser) cur() qToken { return p.toks[p.pos] }

func (p *qParser) advance() qToken {
	t := p.toks[p.pos]
	if t.kind != "eof" {
		p.pos++
	}
	return t
}

// parseQuery compiles a query string.
func parseQuery(src string) (queryExpr, error) {
	if strings.TrimSpace(src) == "" {
		return nil, fmt.Errorf("catalog: empty query")
	}
	toks, err := qLex(src)
	if err != nil {
		return nil, err
	}
	p := &qParser{toks: toks}
	expr, err := p.or()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != "eof" {
		return nil, fmt.Errorf("catalog: trailing %q in query", p.cur().text)
	}
	return expr, nil
}

func (p *qParser) or() (queryExpr, error) {
	l, err := p.and()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == "op" && p.cur().text == "||" {
		p.advance()
		r, err := p.and()
		if err != nil {
			return nil, err
		}
		l = qOr{l, r}
	}
	return l, nil
}

func (p *qParser) and() (queryExpr, error) {
	l, err := p.not()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == "op" && p.cur().text == "&&" {
		p.advance()
		r, err := p.not()
		if err != nil {
			return nil, err
		}
		l = qAnd{l, r}
	}
	return l, nil
}

func (p *qParser) not() (queryExpr, error) {
	if p.cur().kind == "op" && p.cur().text == "!" {
		p.advance()
		x, err := p.not()
		if err != nil {
			return nil, err
		}
		return qNot{x}, nil
	}
	return p.primary()
}

func (p *qParser) primary() (queryExpr, error) {
	t := p.cur()
	switch {
	case t.kind == "(":
		p.advance()
		x, err := p.or()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != ")" {
			return nil, fmt.Errorf("catalog: missing ')' in query")
		}
		p.advance()
		return x, nil
	case t.kind == "ident" && t.text == "true":
		p.advance()
		return qBool(true), nil
	case t.kind == "ident" && t.text == "false":
		p.advance()
		return qBool(false), nil
	case t.kind == "ident" && t.text == "has" && p.toks[p.pos+1].kind == "(":
		p.advance() // has
		p.advance() // (
		key := p.advance()
		if key.kind != "ident" && key.kind != "str" {
			return nil, fmt.Errorf("catalog: has() needs a key")
		}
		if p.cur().kind != ")" {
			return nil, fmt.Errorf("catalog: missing ')' after has(%s", key.text)
		}
		p.advance()
		return qHas{key.text}, nil
	case t.kind == "ident" || t.kind == "str":
		key := p.advance()
		op := p.cur()
		if op.kind != "op" || op.text == "&&" || op.text == "||" || op.text == "!" {
			return nil, fmt.Errorf("catalog: expected comparison after %q", key.text)
		}
		p.advance()
		lit := p.cur()
		if lit.kind != "ident" && lit.kind != "str" {
			return nil, fmt.Errorf("catalog: expected value after %q %s", key.text, op.text)
		}
		p.advance()
		return qCmp{key: key.text, op: op.text, lit: lit.text}, nil
	default:
		return nil, fmt.Errorf("catalog: unexpected %q in query", t.text)
	}
}
