// Package splitter implements the Splitter service of §2.2/§3.4: "the
// splitter service will import the dataset from the actual location and
// split it into a pre-configured number of approximately equal parts. The
// number of parts ... depends on the number of analysis engines started by
// the session service."
//
// Splitting is record-aware: parts cut at exact record boundaries (the
// dataset container's sparse index makes boundary lookup cheap), each part
// is itself a valid container, and the plan reports byte imbalance — the
// straggler source the Table 2 analysis column exhibits.
package splitter

import (
	"fmt"
	"io"

	"github.com/ipa-grid/ipa/internal/dataset"
)

// Part describes one split output.
type Part struct {
	Index      int
	FromRecord int64 // inclusive
	ToRecord   int64 // exclusive
	Bytes      int64 // payload + framing bytes of the record range
}

// Records returns the record count of the part.
func (p Part) Records() int64 { return p.ToRecord - p.FromRecord }

// Plan is a full split layout.
type Plan struct {
	Parts        []Part
	TotalRecords int64
	TotalBytes   int64
}

// Imbalance returns max(part bytes) / mean(part bytes) — 1.0 is perfect.
func (p Plan) Imbalance() float64 {
	if len(p.Parts) == 0 || p.TotalBytes == 0 {
		return 1
	}
	mean := float64(p.TotalBytes) / float64(len(p.Parts))
	maxB := 0.0
	for _, part := range p.Parts {
		if b := float64(part.Bytes); b > maxB {
			maxB = b
		}
	}
	if mean == 0 {
		return 1
	}
	return maxB / mean
}

// PlanRecords cuts the reader's records into n contiguous ranges with
// equal record counts (remainder spread over the first parts), mirroring
// the paper's "approximately equal parts". Parts may be empty when the
// dataset has fewer records than parts.
func PlanRecords(r *dataset.Reader, n int) (Plan, error) {
	if n <= 0 {
		return Plan{}, fmt.Errorf("splitter: need ≥1 part, got %d", n)
	}
	total := r.NumRecords()
	plan := Plan{TotalRecords: total}
	base := total / int64(n)
	rem := total % int64(n)
	var from int64
	for i := 0; i < n; i++ {
		count := base
		if int64(i) < rem {
			count++
		}
		to := from + count
		startOff, err := r.OffsetOf(from)
		if err != nil {
			return Plan{}, err
		}
		endOff, err := r.OffsetOf(to)
		if err != nil {
			return Plan{}, err
		}
		plan.Parts = append(plan.Parts, Part{
			Index: i, FromRecord: from, ToRecord: to, Bytes: endOff - startOff,
		})
		plan.TotalBytes += endOff - startOff
		from = to
	}
	return plan, nil
}

// PartSink supplies a writer for each part; the returned close function
// finalizes it (e.g. closing the part file).
type PartSink func(part Part) (io.Writer, func() error, error)

// WriteParts materializes the plan: each part becomes a standalone dataset
// container holding its record range. It returns per-part payload bytes.
//
// The splitter "must iterate through the entire dataset in all cases"
// (§4) — this is the sequential pass whose ~120 s cost dominates the
// Table 2 split column.
func WriteParts(r *dataset.Reader, plan Plan, sink PartSink) ([]int64, error) {
	written := make([]int64, len(plan.Parts))
	for i, part := range plan.Parts {
		w, closeFn, err := sink(part)
		if err != nil {
			return written, fmt.Errorf("splitter: opening part %d: %w", part.Index, err)
		}
		dw, err := dataset.NewWriter(w)
		if err != nil {
			closeFn()
			return written, err
		}
		it, err := r.Iter(part.FromRecord, part.ToRecord)
		if err != nil {
			closeFn()
			return written, err
		}
		for {
			rec, err := it.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				closeFn()
				return written, fmt.Errorf("splitter: reading record %d: %w", it.Index(), err)
			}
			if err := dw.Append(rec); err != nil {
				closeFn()
				return written, err
			}
			written[i] += int64(len(rec))
		}
		if err := dw.Close(); err != nil {
			closeFn()
			return written, err
		}
		if err := closeFn(); err != nil {
			return written, err
		}
	}
	return written, nil
}

// SplitFile splits the container at srcPath into n part files created by
// makePath(i) and returns the plan. Convenience for the common
// file-to-files case.
func SplitFile(srcPath string, n int, makePath func(i int) string) (Plan, error) {
	r, f, err := dataset.Open(srcPath)
	if err != nil {
		return Plan{}, err
	}
	defer f.Close()
	plan, err := PlanRecords(r, n)
	if err != nil {
		return Plan{}, err
	}
	_, err = WriteParts(r, plan, func(part Part) (io.Writer, func() error, error) {
		w, closer, err := dataset.CreateRaw(makePath(part.Index))
		if err != nil {
			return nil, nil, err
		}
		return w, closer, nil
	})
	return plan, err
}
