package splitter

import (
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/ipa-grid/ipa/internal/dataset"
	"github.com/ipa-grid/ipa/internal/locator"
)

// buildDataset writes count records of varying size and reopens it.
func buildDataset(t testing.TB, dir string, count int, seed int64) (*dataset.Reader, func()) {
	t.Helper()
	path := filepath.Join(dir, "src.ipa")
	w, closer, err := dataset.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < count; i++ {
		rec := make([]byte, 10+rng.Intn(90))
		rng.Read(rec)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := closer(); err != nil {
		t.Fatal(err)
	}
	r, f, err := dataset.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return r, func() { f.Close() }
}

func TestPlanCoversAllRecordsExactly(t *testing.T) {
	r, done := buildDataset(t, t.TempDir(), 103, 1)
	defer done()
	plan, err := PlanRecords(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Parts) != 4 {
		t.Fatalf("%d parts", len(plan.Parts))
	}
	var total int64
	prev := int64(0)
	for _, p := range plan.Parts {
		if p.FromRecord != prev {
			t.Fatalf("gap: part %d starts at %d, want %d", p.Index, p.FromRecord, prev)
		}
		prev = p.ToRecord
		total += p.Records()
	}
	if total != 103 || prev != 103 {
		t.Fatalf("coverage: total=%d end=%d", total, prev)
	}
	// 103 = 4*25 + 3 → three parts of 26, one of 25.
	if plan.Parts[0].Records() != 26 || plan.Parts[3].Records() != 25 {
		t.Fatalf("record distribution: %v", plan.Parts)
	}
}

func TestPlanMorePartsThanRecords(t *testing.T) {
	r, done := buildDataset(t, t.TempDir(), 3, 2)
	defer done()
	plan, err := PlanRecords(r, 8)
	if err != nil {
		t.Fatal(err)
	}
	var nonEmpty int
	for _, p := range plan.Parts {
		if p.Records() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 3 {
		t.Fatalf("%d non-empty parts, want 3", nonEmpty)
	}
}

func TestPlanValidation(t *testing.T) {
	r, done := buildDataset(t, t.TempDir(), 10, 3)
	defer done()
	if _, err := PlanRecords(r, 0); err == nil {
		t.Fatal("0 parts accepted")
	}
}

func TestWritePartsAreValidContainers(t *testing.T) {
	dir := t.TempDir()
	r, done := buildDataset(t, dir, 250, 4)
	defer done()
	plan, err := PlanRecords(r, 5)
	if err != nil {
		t.Fatal(err)
	}
	paths := map[int]string{}
	_, err = WriteParts(r, plan, func(p Part) (io.Writer, func() error, error) {
		path := filepath.Join(dir, fmt.Sprintf("part%d.ipa", p.Index))
		paths[p.Index] = path
		return dataset.CreateRaw(path)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reassemble and compare to the source, record by record.
	var all [][]byte
	for i := 0; i < 5; i++ {
		pr, pf, err := dataset.Open(paths[i])
		if err != nil {
			t.Fatalf("part %d: %v", i, err)
		}
		if pr.NumRecords() != plan.Parts[i].Records() {
			t.Fatalf("part %d has %d records, plan says %d", i, pr.NumRecords(), plan.Parts[i].Records())
		}
		if err := pr.VerifyChecksum(); err != nil {
			t.Fatalf("part %d checksum: %v", i, err)
		}
		it, _ := pr.Iter(0, -1)
		for {
			rec, err := it.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, rec)
		}
		pf.Close()
	}
	if int64(len(all)) != r.NumRecords() {
		t.Fatalf("reassembled %d records, want %d", len(all), r.NumRecords())
	}
	it, _ := r.Iter(0, -1)
	for i := 0; ; i++ {
		rec, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if string(rec) != string(all[i]) {
			t.Fatalf("record %d differs after split", i)
		}
	}
}

func TestSplitFileHelper(t *testing.T) {
	dir := t.TempDir()
	r, done := buildDataset(t, dir, 64, 5)
	done()
	_ = r
	plan, err := SplitFile(filepath.Join(dir, "src.ipa"), 3, func(i int) string {
		return filepath.Join(dir, fmt.Sprintf("out%d.ipa", i))
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalRecords != 64 {
		t.Fatalf("plan records = %d", plan.TotalRecords)
	}
	for i := 0; i < 3; i++ {
		pr, pf, err := dataset.Open(filepath.Join(dir, fmt.Sprintf("out%d.ipa", i)))
		if err != nil {
			t.Fatal(err)
		}
		if pr.NumRecords() == 0 {
			t.Fatalf("part %d empty", i)
		}
		pf.Close()
	}
}

func TestImbalanceReasonable(t *testing.T) {
	r, done := buildDataset(t, t.TempDir(), 1000, 6)
	defer done()
	plan, err := PlanRecords(r, 8)
	if err != nil {
		t.Fatal(err)
	}
	if imb := plan.Imbalance(); imb < 1.0 || imb > 1.2 {
		t.Fatalf("imbalance %.3f outside [1.0, 1.2] for 1000 random records", imb)
	}
}

// Property: any (record count, part count) combination conserves records
// and produces monotone contiguous ranges.
func TestQuickPlanInvariants(t *testing.T) {
	dir := t.TempDir()
	f := func(recs uint8, parts uint8) bool {
		n := int(recs)%200 + 1
		k := int(parts)%16 + 1
		r, done := buildDataset(t, dir, n, int64(n*1000+k))
		defer done()
		plan, err := PlanRecords(r, k)
		if err != nil {
			return false
		}
		var total int64
		prev := int64(0)
		for _, p := range plan.Parts {
			if p.FromRecord != prev || p.ToRecord < p.FromRecord {
				return false
			}
			prev = p.ToRecord
			total += p.Records()
		}
		// Equal split: no two parts differ by more than one record.
		var minR, maxR int64 = 1 << 62, 0
		for _, p := range plan.Parts {
			if p.Records() < minR {
				minR = p.Records()
			}
			if p.Records() > maxR {
				maxR = p.Records()
			}
		}
		return total == int64(n) && prev == int64(n) && maxR-minR <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLocatorResolution(t *testing.T) {
	s := locator.New("splitter://manager:9001")
	if err := s.Register("ds-001", locator.Replica{URL: "gsiftp://remote:2811/d1", Site: "fnal", Priority: 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("ds-001", locator.Replica{URL: "gsiftp://local:2811/d1", Site: "slac", Priority: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("ds-001", locator.Replica{URL: "gsiftp://local2:2811/d1", Site: "slac", Priority: 9}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Resolve("ds-001", "slac")
	if err != nil {
		t.Fatal(err)
	}
	// Same-site first, then priority within site.
	if res.Replicas[0].URL != "gsiftp://local2:2811/d1" {
		t.Fatalf("best replica = %+v", res.Replicas[0])
	}
	if res.Replicas[1].URL != "gsiftp://local:2811/d1" {
		t.Fatalf("second replica = %+v", res.Replicas[1])
	}
	if res.Replicas[2].Site != "fnal" {
		t.Fatalf("third replica = %+v", res.Replicas[2])
	}
	if res.SplitterEndpoint != "splitter://manager:9001" {
		t.Fatalf("splitter = %q", res.SplitterEndpoint)
	}
	// Per-dataset splitter override.
	s.SetSplitter("ds-001", "splitter://special:9002")
	res, _ = s.Resolve("ds-001", "slac")
	if res.SplitterEndpoint != "splitter://special:9002" {
		t.Fatal("splitter override ignored")
	}
	// From a different site, remote priority wins.
	res, _ = s.Resolve("ds-001", "fnal")
	if res.Replicas[0].Site != "fnal" {
		t.Fatal("site preference broken")
	}
	if _, err := s.Resolve("ds-404", "slac"); err == nil {
		t.Fatal("unknown dataset resolved")
	}
	if !s.Known("ds-001") || s.Known("ds-404") {
		t.Fatal("Known() wrong")
	}
	if dup := s.Register("ds-001", locator.Replica{URL: "gsiftp://local:2811/d1", Site: "x"}); dup == nil {
		t.Fatal("duplicate replica accepted")
	}
	if !s.Unregister("ds-001", "gsiftp://local:2811/d1") {
		t.Fatal("unregister missed")
	}
	if s.Unregister("ds-001", "gsiftp://local:2811/d1") {
		t.Fatal("double unregister")
	}
}
