package wsrf

import (
	"encoding/xml"
	"errors"
	"testing"
	"time"

	"github.com/ipa-grid/ipa/internal/gsi"
)

type pingReq struct {
	XMLName xml.Name `xml:"ping"`
	Msg     string   `xml:"msg"`
	N       int      `xml:"n"`
}

type pingResp struct {
	XMLName xml.Name `xml:"pong"`
	Msg     string   `xml:"msg"`
	N       int      `xml:"n"`
}

func startContainer(t *testing.T, authz Authorizer) (*Container, *Client) {
	t.Helper()
	c := NewContainer(authz)
	c.Register("Ping.Echo", func(ctx *OpContext, decode func(any) error) (any, error) {
		var req pingReq
		if err := decode(&req); err != nil {
			return nil, Faultf(FaultBadInput, "%v", err)
		}
		return &pingResp{Msg: req.Msg, N: req.N + 1}, nil
	})
	c.Register("Ping.Fail", func(ctx *OpContext, decode func(any) error) (any, error) {
		return nil, Faultf(FaultBadInput, "deliberate")
	})
	c.Register("Ping.Boom", func(ctx *OpContext, decode func(any) error) (any, error) {
		return nil, errors.New("plain internal error")
	})
	if err := c.ListenHTTP("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, NewClient(c.Addr(), nil)
}

func TestCallRoundTrip(t *testing.T) {
	_, client := startContainer(t, nil)
	var resp pingResp
	if err := client.Call("Ping.Echo", "", &pingReq{Msg: "hi", N: 41}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Msg != "hi" || resp.N != 42 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestFaultPropagation(t *testing.T) {
	_, client := startContainer(t, nil)
	err := client.Call("Ping.Fail", "", nil, nil)
	f, ok := err.(*Fault)
	if !ok {
		t.Fatalf("err = %v (%T), want *Fault", err, err)
	}
	if f.Code != FaultBadInput || f.Message != "deliberate" {
		t.Fatalf("fault = %+v", f)
	}
}

func TestNonFaultErrorBecomesInternal(t *testing.T) {
	_, client := startContainer(t, nil)
	err := client.Call("Ping.Boom", "", nil, nil)
	f, ok := err.(*Fault)
	if !ok || f.Code != FaultInternal {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownOperation(t *testing.T) {
	_, client := startContainer(t, nil)
	err := client.Call("Nope.Nothing", "", nil, nil)
	f, ok := err.(*Fault)
	if !ok || f.Code != FaultNoSuchOp {
		t.Fatalf("err = %v", err)
	}
}

func TestAuthorizerDenies(t *testing.T) {
	authz := func(id *gsi.Identity, action string) error {
		if action == "Ping.Echo" {
			return Faultf(FaultDenied, "not today")
		}
		return nil
	}
	_, client := startContainer(t, authz)
	err := client.Call("Ping.Echo", "", &pingReq{}, &pingResp{})
	f, ok := err.(*Fault)
	if !ok || f.Code != FaultDenied {
		t.Fatalf("err = %v", err)
	}
	if err := client.Call("Ping.Fail", "", nil, nil); err == nil ||
		err.(*Fault).Code != FaultBadInput {
		t.Fatalf("unrelated op affected: %v", err)
	}
}

func TestResourceKeyReachesHandler(t *testing.T) {
	c := NewContainer(nil)
	var seenKey string
	c.Register("Res.Touch", func(ctx *OpContext, decode func(any) error) (any, error) {
		seenKey = ctx.ResourceKey
		return nil, nil
	})
	if err := c.ListenHTTP("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	client := NewClient(c.Addr(), nil)
	if err := client.Call("Res.Touch", "key-123", nil, nil); err != nil {
		t.Fatal(err)
	}
	if seenKey != "key-123" {
		t.Fatalf("resource key = %q", seenKey)
	}
}

func TestMutualTLSIdentityReachesHandler(t *testing.T) {
	ca, err := gsi.NewCA("test ca")
	if err != nil {
		t.Fatal(err)
	}
	host, _ := ca.IssueHost("manager", []string{"localhost", "127.0.0.1"}, time.Hour)
	user, _ := ca.IssueUser("lc-vo", "alice", time.Hour)
	proxy, _ := gsi.NewProxy(user, time.Hour)

	c := NewContainer(nil)
	var gotDN string
	var viaProxy bool
	c.Register("Who.Am", func(ctx *OpContext, decode func(any) error) (any, error) {
		if ctx.Identity != nil {
			gotDN = ctx.Identity.DN
			viaProxy = ctx.Identity.ViaProxy
		}
		return nil, nil
	})
	if err := c.ListenTLS("127.0.0.1:0", host, ca.Pool()); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cfg := gsi.ClientTLSConfig(proxy, ca.Pool())
	cfg.ServerName = "localhost"
	client := NewClient(c.Addr(), cfg)
	if err := client.Call("Who.Am", "", nil, nil); err != nil {
		t.Fatal(err)
	}
	if gotDN != "/O=IPA Grid/OU=lc-vo/CN=alice" || !viaProxy {
		t.Fatalf("identity = %q viaProxy=%v", gotDN, viaProxy)
	}
}

func TestResourceHomeLifecycle(t *testing.T) {
	destroyed := []string{}
	h := NewResourceHome(func(r *Resource) { destroyed = append(destroyed, r.Key) })
	r := h.Create("payload", 0)
	if got, err := h.Get(r.Key); err != nil || got.Value != "payload" {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if h.Len() != 1 {
		t.Fatal("Len wrong")
	}
	if err := h.Destroy(r.Key); err != nil {
		t.Fatal(err)
	}
	if len(destroyed) != 1 || destroyed[0] != r.Key {
		t.Fatal("onDestroy not invoked")
	}
	if _, err := h.Get(r.Key); err == nil {
		t.Fatal("destroyed resource still resolvable")
	}
	if err := h.Destroy(r.Key); err == nil {
		t.Fatal("double destroy accepted")
	}
}

func TestResourceExpiry(t *testing.T) {
	h := NewResourceHome(nil)
	r := h.Create("x", time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	if _, err := h.Get(r.Key); err == nil {
		t.Fatal("expired resource resolvable")
	}
	if n := h.Sweep(time.Now()); n != 1 {
		t.Fatalf("Sweep removed %d", n)
	}
	if h.Len() != 0 {
		t.Fatal("expired resource not swept")
	}
}

func TestSetTermination(t *testing.T) {
	h := NewResourceHome(nil)
	r := h.Create("x", time.Millisecond)
	if err := h.SetTermination(r.Key, time.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := h.Get(r.Key); err != nil {
		t.Fatal("renewed resource expired anyway")
	}
	if err := h.SetTermination("nope", time.Time{}); err == nil {
		t.Fatal("SetTermination on missing resource accepted")
	}
}

func TestKeysAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		k := NewKey()
		if seen[k] {
			t.Fatal("duplicate resource key")
		}
		seen[k] = true
	}
}
