// Package wsrf is the Web-Service container of the manager node — the
// stand-in for the Globus Toolkit 4.0 WSRF container that hosts the
// paper's control, session, catalog, locator and splitter services (§3).
//
// It provides XML envelopes over HTTP(S) with operation dispatch, Grid
// authentication (mutual TLS with proxy chains via the gsi package),
// per-operation authorization hooks, and the WS-Resource pattern: "creating
// an instance of a Web Service means creation of an instance of Web Service
// 'resources' that can be accessed and operated by this Web Service"
// (§3.2) — stateful resources addressed by endpoint references with
// scheduled termination times.
package wsrf

import (
	"bytes"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"encoding/hex"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/ipa-grid/ipa/internal/gsi"
)

// envelope is the wire frame for requests and responses.
type envelope struct {
	XMLName  xml.Name `xml:"envelope"`
	Action   string   `xml:"action"`
	Resource string   `xml:"resource,omitempty"`
	Body     inner    `xml:"body"`
}

type inner struct {
	Data []byte `xml:",innerxml"`
}

// Fault is a remote operation failure.
type Fault struct {
	XMLName xml.Name `xml:"fault"`
	Code    string   `xml:"code"`
	Message string   `xml:"message"`
}

// Error implements error.
func (f *Fault) Error() string { return fmt.Sprintf("wsrf: fault %s: %s", f.Code, f.Message) }

// Fault codes used by the framework services.
const (
	FaultDenied    = "AuthorizationDenied"
	FaultNoSuchOp  = "NoSuchOperation"
	FaultNoSuchRes = "NoSuchResource"
	FaultBadInput  = "BadInput"
	FaultInternal  = "InternalError"
)

// Faultf builds a fault error.
func Faultf(code, format string, args ...any) *Fault {
	return &Fault{Code: code, Message: fmt.Sprintf(format, args...)}
}

// OpContext carries per-call state into operation handlers.
type OpContext struct {
	// Identity is the authenticated Grid identity (nil on plain HTTP).
	Identity *gsi.Identity
	// ResourceKey addresses a WS-Resource instance ("" for static ops).
	ResourceKey string
}

// Handler implements one operation. decode unmarshals the request body
// into a caller-supplied struct; the returned value is marshaled as the
// response body.
type Handler func(ctx *OpContext, decode func(any) error) (any, error)

// Authorizer vets an authenticated identity for a service operation before
// the handler runs. Returning an error produces an authorization fault.
type Authorizer func(id *gsi.Identity, action string) error

// Container hosts services.
type Container struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	authz    Authorizer
	roots    *x509.CertPool

	server   *http.Server
	listener net.Listener
	addr     string
	secure   bool
}

// NewContainer creates an empty container; authz may be nil (allow all).
func NewContainer(authz Authorizer) *Container {
	return &Container{handlers: make(map[string]Handler), authz: authz}
}

// Register installs a handler for "Service.Operation".
func (c *Container) Register(action string, h Handler) {
	if !strings.Contains(action, ".") || h == nil {
		panic(fmt.Sprintf("wsrf: bad registration %q", action))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.handlers[action]; dup {
		panic(fmt.Sprintf("wsrf: duplicate action %q", action))
	}
	c.handlers[action] = h
}

// Addr returns the bound listen address (after ListenHTTP/ListenTLS).
func (c *Container) Addr() string { return c.addr }

// Secure reports whether the container serves TLS.
func (c *Container) Secure() bool { return c.secure }

// ListenHTTP serves without transport security (tests, trusted hosts).
func (c *Container) ListenHTTP(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return c.serve(ln, false, nil)
}

// ListenTLS serves with Grid mutual TLS: clients must present a proxy or
// end-entity chain rooted in the given pool.
func (c *Container) ListenTLS(addr string, host *gsi.Credential, roots *x509.CertPool) error {
	cfg := gsi.ServerTLSConfig(host, roots)
	ln, err := tls.Listen("tcp", addr, cfg)
	if err != nil {
		return err
	}
	c.roots = roots
	return c.serve(ln, true, roots)
}

func (c *Container) serve(ln net.Listener, secure bool, roots *x509.CertPool) error {
	c.listener = ln
	c.addr = ln.Addr().String()
	c.secure = secure
	mux := http.NewServeMux()
	mux.HandleFunc("/wsrf", c.handleHTTP)
	c.server = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go c.server.Serve(ln)
	return nil
}

// Close stops serving.
func (c *Container) Close() error {
	if c.server != nil {
		return c.server.Close()
	}
	return nil
}

func (c *Container) handleHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "wsrf: POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		http.Error(w, "wsrf: reading request", http.StatusBadRequest)
		return
	}
	var env envelope
	if err := xml.Unmarshal(body, &env); err != nil {
		writeFault(w, Faultf(FaultBadInput, "malformed envelope: %v", err))
		return
	}
	ctx := &OpContext{ResourceKey: env.Resource}
	if r.TLS != nil && c.roots != nil {
		id, err := gsi.PeerIdentity(*r.TLS, c.roots)
		if err != nil {
			writeFault(w, Faultf(FaultDenied, "authentication: %v", err))
			return
		}
		ctx.Identity = id
	}
	c.mu.RLock()
	h := c.handlers[env.Action]
	authz := c.authz
	c.mu.RUnlock()
	if h == nil {
		writeFault(w, Faultf(FaultNoSuchOp, "no operation %q", env.Action))
		return
	}
	if authz != nil {
		if err := authz(ctx.Identity, env.Action); err != nil {
			writeFault(w, Faultf(FaultDenied, "%v", err))
			return
		}
	}
	decode := func(v any) error {
		if len(bytes.TrimSpace(env.Body.Data)) == 0 {
			return nil // empty request body is fine for niladic ops
		}
		return xml.Unmarshal(env.Body.Data, v)
	}
	result, err := h(ctx, decode)
	if err != nil {
		var f *Fault
		if errors.As(err, &f) {
			writeFault(w, f)
		} else {
			writeFault(w, Faultf(FaultInternal, "%v", err))
		}
		return
	}
	writeEnvelope(w, env.Action+"Response", "", result)
}

func writeFault(w http.ResponseWriter, f *Fault) {
	writeEnvelope(w, "Fault", "", f)
}

func writeEnvelope(w http.ResponseWriter, action, resource string, body any) {
	inner, err := marshalBody(body)
	if err != nil {
		http.Error(w, "wsrf: encoding response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	env := envelope{Action: action, Resource: resource, Body: inner}
	out, err := xml.Marshal(env)
	if err != nil {
		http.Error(w, "wsrf: encoding envelope", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.Write([]byte(xml.Header))
	w.Write(out)
}

func marshalBody(v any) (inner, error) {
	if v == nil {
		return inner{}, nil
	}
	b, err := xml.Marshal(v)
	if err != nil {
		return inner{}, err
	}
	return inner{Data: b}, nil
}

// EPR is an endpoint reference: where a service lives plus which resource
// instance a call addresses (the "pointer" the control service returns to
// the client at session creation, §3.2).
type EPR struct {
	XMLName  xml.Name `xml:"epr"`
	Address  string   `xml:"address"`  // host:port of the container
	Service  string   `xml:"service"`  // service name
	Resource string   `xml:"resource"` // resource key
	Secure   bool     `xml:"secure"`
}

// Client calls operations on a remote container.
type Client struct {
	base string
	http *http.Client
}

// NewClient targets a container at addr. tlsCfg nil means plain HTTP.
func NewClient(addr string, tlsCfg *tls.Config) *Client {
	scheme := "http"
	transport := &http.Transport{}
	if tlsCfg != nil {
		scheme = "https"
		transport.TLSClientConfig = tlsCfg
	}
	return &Client{
		base: scheme + "://" + addr + "/wsrf",
		http: &http.Client{Transport: transport, Timeout: 60 * time.Second},
	}
}

// Call invokes Service.Operation with an optional resource key. req may be
// nil; resp may be nil to ignore the body. Remote faults return *Fault.
func (c *Client) Call(action, resourceKey string, req, resp any) error {
	body, err := marshalBody(req)
	if err != nil {
		return fmt.Errorf("wsrf: encoding request: %w", err)
	}
	env := envelope{Action: action, Resource: resourceKey, Body: body}
	payload, err := xml.Marshal(env)
	if err != nil {
		return err
	}
	httpResp, err := c.http.Post(c.base, "text/xml", bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("wsrf: calling %s: %w", action, err)
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("wsrf: reading response: %w", err)
	}
	if httpResp.StatusCode != http.StatusOK {
		return fmt.Errorf("wsrf: %s: HTTP %d: %s", action, httpResp.StatusCode, strings.TrimSpace(string(raw)))
	}
	var renv envelope
	if err := xml.Unmarshal(raw, &renv); err != nil {
		return fmt.Errorf("wsrf: malformed response envelope: %w", err)
	}
	if renv.Action == "Fault" {
		var f Fault
		if err := xml.Unmarshal(renv.Body.Data, &f); err != nil {
			return Faultf(FaultInternal, "undecodable fault")
		}
		return &f
	}
	if resp != nil {
		if err := xml.Unmarshal(renv.Body.Data, resp); err != nil {
			return fmt.Errorf("wsrf: decoding %s response: %w", action, err)
		}
	}
	return nil
}

// Resource is one stateful WS-Resource instance.
type Resource struct {
	Key         string
	Value       any
	Created     time.Time
	Termination time.Time // zero = no scheduled destruction
}

// Expired reports whether the resource is past its termination time.
func (r *Resource) Expired(now time.Time) bool {
	return !r.Termination.IsZero() && now.After(r.Termination)
}

// ResourceHome manages the resource instances of one service (the WSRF
// "resource home"). It is safe for concurrent use.
type ResourceHome struct {
	mu        sync.RWMutex
	resources map[string]*Resource
	onDestroy func(*Resource)
}

// NewResourceHome creates a home; onDestroy (optional) runs for every
// destroyed or expired resource (cleanup of engines, files, …).
func NewResourceHome(onDestroy func(*Resource)) *ResourceHome {
	return &ResourceHome{resources: make(map[string]*Resource), onDestroy: onDestroy}
}

// NewKey generates a fresh unguessable resource key.
func NewKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("wsrf: no entropy: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// Create registers a new resource with a lifetime (0 = immortal).
func (h *ResourceHome) Create(value any, lifetime time.Duration) *Resource {
	r := &Resource{Key: NewKey(), Value: value, Created: time.Now()}
	if lifetime > 0 {
		r.Termination = time.Now().Add(lifetime)
	}
	h.mu.Lock()
	h.resources[r.Key] = r
	h.mu.Unlock()
	return r
}

// Get fetches a live resource; expired resources are treated as missing.
func (h *ResourceHome) Get(key string) (*Resource, error) {
	h.mu.RLock()
	r := h.resources[key]
	h.mu.RUnlock()
	if r == nil || r.Expired(time.Now()) {
		return nil, Faultf(FaultNoSuchRes, "no resource %q", key)
	}
	return r, nil
}

// SetTermination reschedules destruction (WS-ResourceLifetime).
func (h *ResourceHome) SetTermination(key string, t time.Time) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := h.resources[key]
	if r == nil {
		return Faultf(FaultNoSuchRes, "no resource %q", key)
	}
	r.Termination = t
	return nil
}

// Destroy removes a resource immediately.
func (h *ResourceHome) Destroy(key string) error {
	h.mu.Lock()
	r := h.resources[key]
	delete(h.resources, key)
	h.mu.Unlock()
	if r == nil {
		return Faultf(FaultNoSuchRes, "no resource %q", key)
	}
	if h.onDestroy != nil {
		h.onDestroy(r)
	}
	return nil
}

// Sweep destroys expired resources and reports how many were removed.
func (h *ResourceHome) Sweep(now time.Time) int {
	h.mu.Lock()
	var expired []*Resource
	for k, r := range h.resources {
		if r.Expired(now) {
			expired = append(expired, r)
			delete(h.resources, k)
		}
	}
	h.mu.Unlock()
	for _, r := range expired {
		if h.onDestroy != nil {
			h.onDestroy(r)
		}
	}
	return len(expired)
}

// StartSweeper runs Sweep periodically until stop is closed.
func (h *ResourceHome) StartSweeper(interval time.Duration, stop <-chan struct{}) {
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				h.Sweep(time.Now())
			case <-stop:
				return
			}
		}
	}()
}

// Len returns the number of live resources.
func (h *ResourceHome) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.resources)
}
